(* Benchmark harness: regenerates every figure of the paper's evaluation
   (section 7) on the simulated multicore described in DESIGN.md, and times
   the compiler itself with Bechamel (one Test.make per figure/table).

   Problem sizes are scaled with the simulated caches (DESIGN.md section 1);
   the claims under reproduction are the performance *shapes* — who wins, by
   what factor, where parallelism and locality pay — not absolute GFLOPS. *)

let line = String.make 78 '-'

let section title =
  Printf.printf "\n%s\n=== %s ===\n%s\n%!" line title line

type scheme = { sname : string; result : Driver.result }

let simulate ?(cores = 4) (s : scheme) params =
  Machine.simulate
    { Machine.default_machine with Machine.ncores = cores }
    s.result.Driver.code ~params

let gflops r = r.Machine.gflops

(* ------------------- machine-readable results (JSON) --------------------- *)

(* Every table cell printed below is also recorded here and dumped to
   BENCH_results.json at the end, so plots/regressions can consume the run
   without scraping stdout. *)
type cell = {
  figure : string;
  series : string;
  x_label : string;
  x : int;
  sim : Machine.sim_result;
}

let cells : cell list ref = ref []

let record ~figure ~series ~x_label ~x sim =
  cells := { figure; series; x_label; x; sim } :: !cells

(* Scalar measurements that are not machine simulations (compile wall-clock,
   solver counters, ...): written into the same JSON array as objects with a
   "metric" key, so consumers can tell the two shapes apart. *)
type metric = {
  m_figure : string;
  m_series : string;
  m_metric : string;
  m_value : float;
}

let metrics : metric list ref = ref []

let record_metric ~figure ~series ~metric v =
  metrics := { m_figure = figure; m_series = series; m_metric = metric; m_value = v } :: !metrics

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let write_results path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i c ->
          if i > 0 then output_string oc ",\n";
          Printf.fprintf oc
            "  {\"figure\": \"%s\", \"series\": \"%s\", \"x_label\": \
             \"%s\", \"x\": %d, \"gflops\": %.6f, \"cycles\": %.0f, \
             \"l1_misses\": %d, \"l2_misses\": %d}"
            (json_escape c.figure) (json_escape c.series)
            (json_escape c.x_label) c.x c.sim.Machine.gflops
            c.sim.Machine.cycles c.sim.Machine.l1_misses
            c.sim.Machine.l2_misses)
        (List.rev !cells);
      List.iter
        (fun m ->
          Printf.fprintf oc
            ",\n  {\"figure\": \"%s\", \"series\": \"%s\", \"metric\": \
             \"%s\", \"value\": %.6f}"
            (json_escape m.m_figure) (json_escape m.m_series)
            (json_escape m.m_metric) m.m_value)
        (List.rev !metrics);
      output_string oc "\n]\n");
  Printf.printf "\nmachine-readable results written to %s (%d cells)\n" path
    (List.length !cells + List.length !metrics)

(* print a table: rows indexed by [xs] (printed with [pp_x]), one column per
   scheme, cell = simulated GFLOPS; every cell is also [record]ed *)
let table ~figure ~xlabel ~xs ~(pp_x : int -> string)
    ~(schemes : scheme list) ~(run : scheme -> int -> Machine.sim_result) =
  Printf.printf "%-10s" xlabel;
  List.iter (fun s -> Printf.printf "%16s" s.sname) schemes;
  Printf.printf "\n%!";
  List.iter
    (fun x ->
      Printf.printf "%-10s" (pp_x x);
      List.iter
        (fun s ->
          let sim = run s x in
          record ~figure ~series:s.sname ~x_label:xlabel ~x sim;
          Printf.printf "%16.3f" (gflops sim))
        schemes;
      Printf.printf "\n%!")
    xs

let pp_int = string_of_int

(* The autotuned variant (lib/tune): tile sizes / fusion / unroll searched
   empirically at one representative problem size, then simulated across the
   figure's sweep like every other scheme.  Evaluations are cached under
   PLUTO_TUNE_CACHE (default .pluto-tune-cache), so reruns are free; the
   search order is pinned by PLUTO_FUZZ_SEED. *)
let tuned_scheme ?(budget = 12) p ~params =
  let cache_dir =
    match Sys.getenv_opt "PLUTO_TUNE_CACHE" with
    | Some "" -> None
    | Some d -> Some d
    | None -> Some ".pluto-tune-cache"
  in
  let report, best =
    Tune.search ~jobs:2 ~budget ?cache_dir ~seed:(Gen.seed_of_env ()) ~params p
  in
  Format.printf "%a@." Tune.pp_report_summary report;
  match best with
  | Some r -> [ { sname = "pluto+tune"; result = r } ]
  | None -> []

(* ------------------------------- Figure 3 -------------------------------- *)

let fig3 () =
  section
    "Figure 3: imperfectly nested 1-d Jacobi — transformation and tiled code";
  let p = Kernels.program Kernels.jacobi_1d in
  let r = Driver.compile p in
  Format.printf "%a@." Pluto.Auto.pp_transform r.Driver.transform;
  Printf.printf
    "(expected, paper Fig 3(e): c1 = t, c2 = 2t+i for S1 / 2t+j+1 for S2)\n";
  Printf.printf "\ntiled + pipelined-parallel code (cf. Fig 3(d)):\n";
  Codegen.print_loop_nest Format.std_formatter r.Driver.code;
  r

(* ------------------------------- Figure 6 -------------------------------- *)

let fig6 () =
  section "Figure 6: imperfectly nested 1-d Jacobi stencil — performance";
  let k = Kernels.jacobi_1d in
  let p = Kernels.program k in
  let pluto = { sname = "pluto"; result = Driver.compile p } in
  let icc = { sname = "icc(orig)"; result = Baselines.original p } in
  let affine =
    { sname = "affine-part"; result = Baselines.jacobi_affine_partition p }
  in
  (* the schedule the paper quotes for this kernel (th = 2t / 2t+1,
     allocation 2t+i), forced like the paper does for its comparisons; the
     automatic Feautrier scheduler (which rediscovers the same schedule) is
     compared in the ablation section *)
  let sched =
    { sname = "sched-fco"; result = Baselines.jacobi_scheduling_fco p }
  in
  let innerp = { sname = "inner-par"; result = Baselines.inner_parallel p } in
  let tuned = tuned_scheme p ~params:[ ("T", 64); ("N", 2000) ] in
  Printf.printf "\n(a) single core GFLOPS vs problem size (T = 64):\n";
  table ~figure:"fig6a" ~xlabel:"N"
    ~xs:[ 1000; 2000; 4000; 8000 ]
    ~pp_x:pp_int
    ~schemes:([ icc; pluto; affine; sched ] @ tuned)
    ~run:(fun s n ->
      simulate ~cores:1 s (Kernels.params_vector p [ ("T", 64); ("N", n) ]));
  Printf.printf "\n(b) GFLOPS vs cores (N = 8000, T = 128):\n";
  let params = Kernels.params_vector p [ ("T", 128); ("N", 8000) ] in
  table ~figure:"fig6b" ~xlabel:"cores" ~xs:[ 1; 2; 3; 4 ] ~pp_x:pp_int
    ~schemes:([ icc; innerp; sched; affine; pluto ] @ tuned)
    ~run:(fun s c -> simulate ~cores:c s params)

(* ----------------------------- Figures 7 / 8 ----------------------------- *)

let fig7_8 () =
  section "Figure 7: 2-d FDTD — transformation";
  let k = Kernels.fdtd_2d in
  let p = Kernels.program k in
  let t0 = Unix.gettimeofday () in
  let r = Driver.compile p in
  Printf.printf "(transformation found in %.1fs)\n" (Unix.gettimeofday () -. t0);
  Format.printf "%a@." Pluto.Auto.pp_transform r.Driver.transform;
  Printf.printf
    "(expected, paper Fig 7: one fully permutable band of three hyperplanes;\n\
    \ shifting + fusion + time skewing, the 2-d statement sunk into the band)\n";
  section "Figure 8: 2-d FDTD — performance";
  let pluto = { sname = "pluto"; result = r } in
  let icc = { sname = "icc(orig)"; result = Baselines.original p } in
  let innerp = { sname = "inner-par"; result = Baselines.inner_parallel p } in
  let tuned =
    tuned_scheme p ~params:[ ("tmax", 32); ("nx", 64); ("ny", 64) ]
  in
  Printf.printf "\n(a) GFLOPS vs cores (nx = ny = 100, tmax = 32):\n";
  let params =
    Kernels.params_vector p [ ("tmax", 32); ("nx", 100); ("ny", 100) ]
  in
  table ~figure:"fig8a" ~xlabel:"cores" ~xs:[ 1; 2; 3; 4 ] ~pp_x:pp_int
    ~schemes:([ icc; innerp; pluto ] @ tuned)
    ~run:(fun s c -> simulate ~cores:c s params);
  Printf.printf
    "\n(b) inner-parallel-only comparison vs size (4 cores, tmax = 32):\n";
  table ~figure:"fig8b" ~xlabel:"nx=ny" ~xs:[ 48; 64; 100 ] ~pp_x:pp_int
    ~schemes:([ icc; innerp; pluto ] @ tuned)
    ~run:(fun s n ->
      simulate ~cores:4 s
        (Kernels.params_vector p [ ("tmax", 32); ("nx", n); ("ny", n) ]))

(* ----------------------------- Figures 9 / 10 ---------------------------- *)

let fig9_10 () =
  section "Figure 9: LU decomposition — transformation and tiled code";
  let k = Kernels.lu in
  let p = Kernels.program k in
  let r = Driver.compile p in
  Format.printf "%a@." Pluto.Auto.pp_transform r.Driver.transform;
  Printf.printf
    "(expected, paper 5.2: S1: (k, j, k); S2: (k, j, i); one 3-d band)\n";
  Printf.printf "\n1-d pipelined parallel + tiled code (cf. Fig 9(c)):\n";
  Codegen.print_loop_nest Format.std_formatter r.Driver.code;
  section "Figure 10: LU decomposition — performance";
  let pluto = { sname = "pluto"; result = r } in
  let icc = { sname = "icc(orig)"; result = Baselines.original p } in
  let sched = { sname = "sched-based"; result = Baselines.lu_scheduling p } in
  let innerp = { sname = "inner-par"; result = Baselines.inner_parallel p } in
  let tuned = tuned_scheme p ~params:[ ("N", 150) ] in
  Printf.printf "\n(a) single core GFLOPS vs problem size:\n";
  table ~figure:"fig10a" ~xlabel:"N" ~xs:[ 64; 100; 150 ] ~pp_x:pp_int
    ~schemes:([ icc; pluto ] @ tuned)
    ~run:(fun s n -> simulate ~cores:1 s [| n |]);
  Printf.printf "\n(b) GFLOPS vs cores (N = 150):\n";
  table ~figure:"fig10b" ~xlabel:"cores" ~xs:[ 1; 2; 3; 4 ] ~pp_x:pp_int
    ~schemes:([ icc; innerp; sched; pluto ] @ tuned)
    ~run:(fun s c -> simulate ~cores:c s [| 150 |])

(* ------------------------------- Figure 12 ------------------------------- *)

let fig12 () =
  section "Figure 12: MVT (x1 = x1 + A y1; x2 = x2 + A' y2) — performance";
  let k = Kernels.mvt in
  let p = Kernels.program k in
  let r = Driver.compile p in
  Format.printf "%a@." Pluto.Auto.pp_transform r.Driver.transform;
  Printf.printf
    "(expected, paper Fig 11/12: ij fused with ji — S2 permuted so the RAR\n\
    \ distance on A is zero on both hyperplanes; pipelined parallelism)\n";
  let pluto = { sname = "pluto(ij-ji)"; result = r } in
  let icc = { sname = "untransformed"; result = Baselines.original p } in
  let fuse_ij = { sname = "fuse-ij-ij"; result = Baselines.mvt_fuse_ij_ij p } in
  let unfused =
    { sname = "unfused-par"; result = Baselines.mvt_unfused_parallel p }
  in
  Printf.printf "\nGFLOPS on 4 cores vs problem size:\n";
  table ~figure:"fig12a" ~xlabel:"N" ~xs:[ 300; 600; 1000 ] ~pp_x:pp_int
    ~schemes:[ icc; unfused; fuse_ij; pluto ]
    ~run:(fun s n -> simulate ~cores:4 s [| n |]);
  Printf.printf "\nGFLOPS vs cores (N = 600):\n";
  table ~figure:"fig12b" ~xlabel:"cores" ~xs:[ 1; 2; 3; 4 ] ~pp_x:pp_int
    ~schemes:[ icc; unfused; fuse_ij; pluto ]
    ~run:(fun s c -> simulate ~cores:c s [| 600 |])

(* ------------------------------- Figure 13 ------------------------------- *)

let fig13 () =
  section "Figure 13: 3-d Gauss-Seidel SOR — 1-d vs 2-d pipelined parallel";
  let k = Kernels.seidel in
  let p = Kernels.program k in
  let deps = Deps.compute p in
  let tr = Pluto.Auto.transform p deps in
  Format.printf "%a@." Pluto.Auto.pp_transform tr;
  Printf.printf
    "(expected, paper 7: space dimensions skewed w.r.t. time; all three\n\
    \ dimensions tilable; two degrees of pipelined parallelism available)\n";
  let wave m =
    {
      sname = Printf.sprintf "pluto-%dd-pipe" m;
      result =
        Driver.compile_with_transform
          ~options:{ Driver.default_options with Driver.wavefront = m }
          p deps tr;
    }
  in
  let icc = { sname = "icc(orig)"; result = Baselines.original p } in
  Printf.printf "\nGFLOPS vs cores (N = 120, T = 32):\n";
  let params = Kernels.params_vector p [ ("T", 32); ("N", 120) ] in
  table ~figure:"fig13" ~xlabel:"cores" ~xs:[ 1; 2; 3; 4 ] ~pp_x:pp_int
    ~schemes:[ icc; wave 1; wave 2 ]
    ~run:(fun s c -> simulate ~cores:c s params)

(* ------------------------------- ablations -------------------------------- *)

(* Ablation studies of the design choices DESIGN.md calls out: the bounding
   cost function, input dependences, intra-tile reordering, wavefront depth,
   tile sizes, and one vs two levels of tiling. *)
let ablations () =
  section "Ablations (design choices of DESIGN.md section 4)";
  (* A1: the cost function itself (legality-only search) on MVT *)
  let p = Kernels.program Kernels.mvt in
  let nocost =
    Driver.compile
      ~options:
        {
          Driver.default_options with
          Driver.auto =
            { Pluto.Auto.default_config with Pluto.Auto.use_cost_bound = false };
        }
      p
  in
  let nocost = { sname = "no-cost-fn"; result = nocost } in
  let norar =
    Driver.compile
      ~options:
        {
          Driver.default_options with
          Driver.auto =
            { Pluto.Auto.default_config with Pluto.Auto.input_deps = false };
        }
      p
  in
  let norar = { sname = "no-RAR"; result = norar } in
  let pluto = { sname = "pluto"; result = Driver.compile p } in
  Printf.printf
    "\nA1/A2: MVT, 4 cores — drop the bounding objective / drop RAR deps:\n";
  table ~figure:"A1" ~xlabel:"N" ~xs:[ 600 ] ~pp_x:pp_int
    ~schemes:[ nocost; norar; pluto ]
    ~run:(fun s n -> simulate ~cores:4 s [| n |]);
  (* A3: intra-tile reordering (vectorization) on matmul *)
  let p = Kernels.program Kernels.matmul in
  let deps = Deps.compute p in
  let tr = Pluto.Auto.transform p deps in
  let without =
    {
      sname = "no-intra-reorder";
      result =
        Driver.compile_with_transform
          ~options:{ Driver.default_options with Driver.intra_reorder = false }
          p deps tr;
    }
  in
  let base =
    { sname = "pluto"; result = Driver.compile_with_transform p deps tr }
  in
  Printf.printf "\nA3: matmul, 4 cores — intra-tile reordering (5.4):\n";
  table ~figure:"A3" ~xlabel:"N" ~xs:[ 140 ] ~pp_x:pp_int ~schemes:[ without; base ]
    ~run:(fun s n -> simulate ~cores:4 s [| n |]);
  (* A4: degrees of pipelined parallelism on LU *)
  let p = Kernels.program Kernels.lu in
  let deps = Deps.compute p in
  let tr = Pluto.Auto.transform p deps in
  let wave m =
    {
      sname = Printf.sprintf "wavefront=%d" m;
      result =
        Driver.compile_with_transform
          ~options:{ Driver.default_options with Driver.wavefront = m }
          p deps tr;
    }
  in
  Printf.printf "\nA4: LU N=150, 4 cores — wavefront degrees (Algorithm 2):\n";
  table ~figure:"A4" ~xlabel:"N" ~xs:[ 150 ] ~pp_x:pp_int
    ~schemes:[ wave 0; wave 1; wave 2 ]
    ~run:(fun s n -> simulate ~cores:4 s [| n |]);
  (* A5: tile sizes on jacobi (the empirical-search enablement of section 1) *)
  let p = Kernels.program Kernels.jacobi_1d in
  let deps = Deps.compute p in
  let tr = Pluto.Auto.transform p deps in
  let params = Kernels.params_vector p [ ("T", 128); ("N", 8000) ] in
  let with_tau tau =
    {
      sname = Printf.sprintf "tau=%d" tau;
      result =
        Driver.compile_with_transform
          ~options:{ Driver.default_options with Driver.tile_size = Some tau }
          p deps tr;
    }
  in
  Printf.printf "\nA5: 1-d Jacobi, 4 cores — tile size sweep:\n";
  Printf.printf "%-10s" "tau";
  List.iter (fun tau -> Printf.printf "%16d" tau) [ 8; 16; 32; 64 ];
  Printf.printf "\n%-10s" "GFLOPS";
  List.iter
    (fun tau ->
      let sim = simulate ~cores:4 (with_tau tau) params in
      record ~figure:"A5" ~series:"pluto" ~x_label:"tau" ~x:tau sim;
      Printf.printf "%16.3f" (gflops sim))
    [ 8; 16; 32; 64 ];
  Printf.printf "\n";
  (* A6: one vs two levels of tiling (5.2 "tiling multiple times") *)
  let bands = Pluto.Tiling.bands_of tr in
  let b = List.hd bands in
  let tiled sizes_list name =
    let bands_sizes = [ (b, sizes_list) ] in
    let tgt = Pluto.Tiling.tile_levels tr ~bands_sizes in
    let levels = Pluto.Tiling.target_band_levels_multi tr ~bands_sizes b in
    let tgt = Pluto.Tiling.wavefront tgt ~levels ~degrees:1 in
    { sname = name; result = { (Driver.compile_with_transform p deps tr) with Driver.code = Codegen.generate tgt; target = tgt } }
  in
  let one = tiled [ Array.make 2 32 ] "1-level(32)" in
  let two = tiled [ Array.make 2 64; Array.make 2 8 ] "2-level(64,8)" in
  Printf.printf "\nA6: 1-d Jacobi, 4 cores — one vs two levels of tiling:\n";
  table ~figure:"A6" ~xlabel:"scheme" ~xs:[ 0 ] ~pp_x:(fun _ -> "GFLOPS")
    ~schemes:[ one; two ]
    ~run:(fun s _ -> simulate ~cores:4 s params)

(* automatic scheduling-based compilation (lib/baselines/feautrier.ml): the
   schedule dimensions are found automatically and then run through the SAME
   tiling/wavefront pipeline as Pluto — with time tiling granted to it, the
   gap to Pluto narrows to schedule quality (stride-2 wavefronts, mod
   guards), which our model prices mildly; the paper's larger gap includes
   icc choking on the non-unimodular code. *)
let ablation_auto_scheduler () =
  Printf.printf
    "\nA7: automatic Feautrier+FCO scheduler vs Pluto (both tiled, 4 cores):\n";
  Printf.printf "%-16s %16s %16s\n" "kernel" "sched-auto" "pluto";
  List.iter
    (fun (k : Kernels.t) ->
      let p = Kernels.program k in
      let params = Kernels.params_vector p k.Kernels.bench_params in
      let g series (r : Driver.result) =
        let sim = Machine.simulate Machine.default_machine r.Driver.code ~params in
        record ~figure:"A7" ~series ~x_label:k.Kernels.name ~x:0 sim;
        sim.Machine.gflops
      in
      Printf.printf "%-16s %16.3f %16.3f\n%!" k.Kernels.name
        (g "sched-auto" (Feautrier.compile p))
        (g "pluto" (Driver.compile p)))
    [ Kernels.jacobi_1d; Kernels.lu; Kernels.seidel ]

(* ------------------------- system statistics ----------------------------- *)

(* A summary of what the compiler does to every kernel: dependence counts by
   kind, transformation depth, band structure, generated-code size.  Useful
   when comparing against other polyhedral tools. *)
(* -------------------------- solver substrate ------------------------------ *)

(* A/B the incremental solver (warm-started branch-and-bound, warm lexmin,
   LP/feasibility memoization, canonical emptiness cache) against the cold
   reference on the tuner path, where the same dependence systems and LPs
   recur across candidates.  jobs:1 keeps the search in-process so the
   counters accumulate in this process, and the disk cache is disabled so
   both runs really solve.  The generated winner must be identical — the
   warm paths change how answers are computed, never the answers. *)
let solver_substrate () =
  section "Solver substrate: incremental (warm) vs cold-start, tuner path";
  let run_one (k : Kernels.t) params warm =
    Milp.set_warm warm;
    Polyhedra.set_empty_cache warm;
    Milp.clear_caches ();
    Polyhedra.clear_caches ();
    Stats.reset ();
    let p = Kernels.program k in
    let t0 = Unix.gettimeofday () in
    let _report, best =
      Tune.search ~jobs:1 ~budget:8 ~candidate_time_s:5.0
        ~seed:(Gen.seed_of_env ()) ~params p
    in
    let dt = Unix.gettimeofday () -. t0 in
    let counters = Stats.counters () in
    let c name = try List.assoc name counters with Not_found -> 0 in
    let code =
      match best with
      | Some r -> Putil.string_of_format Codegen.print_c r.Driver.code
      | None -> ""
    in
    (dt, c, code)
  in
  List.iter
    (fun ((k : Kernels.t), params) ->
      let cold_dt, cold_c, cold_code = run_one k params false in
      let warm_dt, warm_c, warm_code = run_one k params true in
      Milp.set_warm true;
      Polyhedra.set_empty_cache true;
      Printf.printf "\n%s (tune budget 8, jobs 1):\n" k.Kernels.name;
      Printf.printf "  %-28s %12s %12s %9s\n" "" "cold" "warm" "ratio";
      List.iter
        (fun name ->
          let a = cold_c name and b = warm_c name in
          let ratio = if b = 0 then Float.infinity else float a /. float b in
          Printf.printf "  %-28s %12d %12d %8.2fx\n" name a b ratio)
        [ "milp.cold_builds"; "milp.solves"; "milp.pivots"; "fm.eliminations" ];
      List.iter
        (fun name ->
          Printf.printf "  %-28s %12s %12d\n" name "-" (warm_c name))
        [
          "milp.warm_starts";
          "milp.feasible_cache_hits";
          "milp.lp_cache_hits";
          "poly.empty_cache_hits";
        ];
      Printf.printf "  %-28s %11.3fs %11.3fs %8.2fx\n" "search wall-clock"
        cold_dt warm_dt
        (if warm_dt > 0. then cold_dt /. warm_dt else Float.infinity);
      Printf.printf "  winner code identical: %b\n"
        (String.equal cold_code warm_code))
    [
      (Kernels.matmul, [ ("N", 64) ]);
      (Kernels.jacobi_1d, [ ("T", 16); ("N", 256) ]);
    ]

(* ------------------------- batch throughput ------------------------------- *)

(* The batch compilation layer: every kernel written out as a .c file and
   compiled through [Batch.run], measuring files/second and total ILP solves
   for jobs=1 vs jobs=4 and for a cold vs warm persistent solver store.  The
   generated code must be identical in all four configurations — scheduling
   and caching change how fast the answers arrive, never the answers. *)
let batch_throughput () =
  section "Batch compilation: worker pool + persistent solver store";
  Pool.with_temp_dir ~prefix:"pluto_bench_batch" (fun dir ->
      let files =
        List.map
          (fun (k : Kernels.t) ->
            let path = Filename.concat dir (k.Kernels.name ^ ".c") in
            let oc = open_out path in
            output_string oc k.Kernels.source;
            close_out oc;
            path)
          Kernels.all
      in
      let n = List.length files in
      let run label ~jobs ?cache_dir () =
        Milp.clear_caches ();
        Polyhedra.clear_caches ();
        Stats.reset ();
        let t0 = Unix.gettimeofday () in
        let m = Batch.run ~jobs ?cache_dir files in
        let dt = Unix.gettimeofday () -. t0 in
        Store.set_dir None;
        let c name =
          match List.assoc_opt name (Stats.counters ()) with
          | Some v -> v
          | None -> 0
        in
        Printf.printf "  %-26s %5.1f files/s  %6d solves  %6d store hits\n%!"
          label
          (float n /. dt)
          (c "milp.solves") (c "store.hits");
        List.map (fun (e : Batch.entry) -> e.Batch.e_code) m.Batch.m_entries
      in
      Printf.printf "  %d kernels through plutocc --batch:\n" n;
      let seq = run "jobs=1, no store" ~jobs:1 () in
      let par = run "jobs=4, no store" ~jobs:4 () in
      let cache = Filename.concat dir "cache" in
      let cold = run "jobs=4, cold store" ~jobs:4 ~cache_dir:cache () in
      let warm = run "jobs=4, warm store" ~jobs:4 ~cache_dir:cache () in
      Printf.printf "  generated code identical across all runs: %b\n"
        (seq = par && par = cold && cold = warm))

(* ------------------------- store resilience ------------------------------ *)

(* The cost of surviving infrastructure faults: the kernel corpus compiled
   against the sharded solver store fault-free and then under a seeded
   fault schedule (failed/crashed publishes, corrupt reads, SIGKILLed
   workers — lib/fault).  Output must be bit-identical either way; the
   delta is pure retry/recompute overhead.  Afterwards [Store.gc] heals the
   crash orphans and a warm run shows the surviving cache still pays. *)
let store_resilience () =
  section "Store resilience: batch compilation under injected faults";
  Pool.with_temp_dir ~prefix:"pluto_bench_chaos" (fun dir ->
      let files =
        List.map
          (fun (k : Kernels.t) ->
            let path = Filename.concat dir (k.Kernels.name ^ ".c") in
            let oc = open_out path in
            output_string oc k.Kernels.source;
            close_out oc;
            path)
          Kernels.all
      in
      let n = List.length files in
      let run label ?config ~cache_dir () =
        Milp.clear_caches ();
        Polyhedra.clear_caches ();
        Stats.reset ();
        Fault.install config;
        let t0 = Unix.gettimeofday () in
        let m = Batch.run ~jobs:4 ~cache_dir files in
        let dt = Unix.gettimeofday () -. t0 in
        Fault.install None;
        Store.set_dir None;
        let c name =
          match List.assoc_opt name (Stats.counters ()) with
          | Some v -> v
          | None -> 0
        in
        Printf.printf
          "  %-26s %5.1f files/s  %5d injected  %4d retries  %4d write fails\n%!"
          label
          (float n /. dt)
          (c "fault.injected") (c "pool.retries") (c "store.write_failures");
        List.map (fun (e : Batch.entry) -> e.Batch.e_code) m.Batch.m_entries
      in
      Printf.printf "  %d kernels, jobs=4, shared sharded store:\n" n;
      let clean = run "fault-free" ~cache_dir:(Filename.concat dir "c0") () in
      let config =
        {
          Fault.seed = 20080613;
          Fault.rate = 0.05;
          Fault.only = [];
          Fault.fail_at = [ ("pool.worker.kill", [ 1 ]) ];
        }
      in
      let chaos_cache = Filename.concat dir "c1" in
      let faulted = run "5% fault rate + kill" ~config ~cache_dir:chaos_cache () in
      Store.set_dir (Some chaos_cache);
      Store.gc ~max_tmp_age_s:0.0 ();
      let warm = run "after gc, warm survivor" ~cache_dir:chaos_cache () in
      Store.set_dir None;
      Printf.printf "  generated code identical across all runs: %b\n"
        (clean = faulted && faulted = warm))

(* ------------------------ fast scheduling path ---------------------------- *)

(* A/B of the fast fusion/dimension-matching rung (lib/core/fastmatch)
   against the exact ILP over the whole kernel corpus: scheduling-time ILP
   solves (the dependence-analysis feasibility probes are warmed out of the
   count first), compile_robust wall-clock, the fast path's verdict, and
   the simulated performance of both results.  The fastpath differential
   suite holds accepted schedules to bit-identical execution; this section
   shows what taking the fast rung saves and costs. *)
let fast_scheduling () =
  section "Fast scheduling path: fusion + dimension matching vs exact ILP";
  let nofast = { Driver.default_options with Driver.fast_schedule = false } in
  let run options p =
    (* warm the dependence-analysis probe memos so milp.solves below counts
       only what the scheduling rungs spend *)
    ignore (Deps.compute p : Deps.t list);
    Stats.reset ();
    let t0 = Unix.gettimeofday () in
    match Driver.compile_robust ~options p with
    | Ok (r, ds) ->
        let dt = Unix.gettimeofday () -. t0 in
        let solves =
          match List.assoc_opt "milp.solves" (Stats.counters ()) with
          | Some v -> v
          | None -> 0
        in
        (r, ds, dt, solves)
    | Error _ -> failwith "compile_robust failed on a corpus kernel"
  in
  Printf.printf "%-16s %8s | %7s %7s | %9s %9s | %8s %8s\n" "kernel" "verdict"
    "solves" "solves" "time" "time" "GFLOPS" "GFLOPS";
  Printf.printf "%-16s %8s | %7s %7s | %9s %9s | %8s %8s\n" "" "" "fast" "ilp"
    "fast" "ilp" "fast" "ilp";
  let fast_solves = ref 0 and ilp_solves = ref 0 in
  let fast_time = ref 0.0 and ilp_time = ref 0.0 in
  List.iter
    (fun (k : Kernels.t) ->
      let p = Kernels.program k in
      let fr, fds, ft, fs = run Driver.default_options p in
      let ir, _, it, is = run nofast p in
      let verdict =
        if Diag.has_code fds "fastpath-accepted" then "accept" else "reject"
      in
      let params = Kernels.params_vector p k.Kernels.bench_params in
      let g series (r : Driver.result) =
        let sim =
          Machine.simulate Machine.default_machine r.Driver.code ~params
        in
        record ~figure:"fastpath" ~series ~x_label:k.Kernels.name ~x:0 sim;
        sim.Machine.gflops
      in
      let fg = g "fast-on" fr and ig = g "fast-off" ir in
      List.iter
        (fun (metric, v) ->
          record_metric ~figure:"fastpath" ~series:k.Kernels.name ~metric v)
        [
          ("ilp_solves_fast", float fs);
          ("ilp_solves_ilp", float is);
          ("compile_s_fast", ft);
          ("compile_s_ilp", it);
          ("accepted", if verdict = "accept" then 1.0 else 0.0);
        ];
      fast_solves := !fast_solves + fs;
      ilp_solves := !ilp_solves + is;
      fast_time := !fast_time +. ft;
      ilp_time := !ilp_time +. it;
      Printf.printf
        "%-16s %8s | %7d %7d | %8.3fs %8.3fs | %8.3f %8.3f\n%!" k.Kernels.name
        verdict fs is ft it fg ig)
    Kernels.all;
  let ratio a b = if a = 0 then Float.infinity else float b /. float a in
  Printf.printf
    "%-16s %8s | %7d %7d | %8.3fs %8.3fs |   (solve cut %.1fx, wall %.2fx)\n"
    "total" "" !fast_solves !ilp_solves !fast_time !ilp_time
    (ratio !fast_solves !ilp_solves)
    (if !fast_time > 0.0 then !ilp_time /. !fast_time else Float.infinity);
  record_metric ~figure:"fastpath" ~series:"total" ~metric:"ilp_solves_fast"
    (float !fast_solves);
  record_metric ~figure:"fastpath" ~series:"total" ~metric:"ilp_solves_ilp"
    (float !ilp_solves);
  record_metric ~figure:"fastpath" ~series:"total" ~metric:"compile_s_fast"
    !fast_time;
  record_metric ~figure:"fastpath" ~series:"total" ~metric:"compile_s_ilp"
    !ilp_time

(* --------------------------- reduction-aware ------------------------------ *)

(* --reductions A/B over the kernels with markable accumulations: simulated
   performance, parallel-loop counts and the emitted OpenMP clauses, flag
   on vs off.  The flag-off runs double as the no-regression reference —
   with nothing marked the pipeline must behave exactly as before. *)
let reductions () =
  section "Reduction-aware scheduling: --reductions on vs off";
  let on_opts = { Driver.default_options with Driver.reductions = true } in
  let rec par_levels = function
    | Codegen.For { level; parallel; body; _ } ->
        (if parallel then [ level ] else [])
        @ List.concat_map par_levels body
    | Codegen.Leaf _ -> []
  in
  let outer_parallel (r : Driver.result) =
    List.mem 0
      (List.concat_map par_levels r.Driver.code.Codegen.body)
  in
  let clauses (r : Driver.result) =
    String.concat ","
      (List.sort_uniq compare
         (List.concat_map
            (fun cs -> List.map (fun (o, v) -> o ^ ":" ^ v) cs)
            (Array.to_list r.Driver.code.Codegen.reductions)))
  in
  Printf.printf "%-12s | %9s %9s | %7s %7s | %s\n" "kernel" "GFLOPS-off"
    "GFLOPS-on" "out-off" "out-on" "clauses";
  List.iter
    (fun (k : Kernels.t) ->
      let p = Kernels.program k in
      let compile options =
        match Driver.compile_robust ~options p with
        | Ok (r, _) -> r
        | Error _ -> failwith "compile_robust failed on a corpus kernel"
      in
      let off = compile Driver.default_options in
      let on = compile on_opts in
      let params = Kernels.params_vector p k.Kernels.bench_params in
      let g series r =
        let sim =
          Machine.simulate Machine.default_machine r.Driver.code ~params
        in
        record ~figure:"Reductions" ~series ~x_label:k.Kernels.name ~x:0 sim;
        sim.Machine.gflops
      in
      let goff = g "reductions-off" off and gon = g "reductions-on" on in
      List.iter
        (fun (metric, v) ->
          record_metric ~figure:"Reductions" ~series:k.Kernels.name ~metric v)
        [
          ("outer_parallel_off", if outer_parallel off then 1.0 else 0.0);
          ("outer_parallel_on", if outer_parallel on then 1.0 else 0.0);
          ("marked_edges",
           float
             (List.length
                (List.filter (fun d -> d.Deps.reduction) on.Driver.deps)));
        ];
      Printf.printf "%-12s | %9.3f %9.3f | %7b %7b | %s\n%!" k.Kernels.name
        goff gon (outer_parallel off) (outer_parallel on)
        (match clauses on with "" -> "-" | c -> c))
    [ Kernels.dot; Kernels.histogram; Kernels.mvt; Kernels.lu ]

(* ------------------------ compilation service ----------------------------- *)

(* The plutod daemon (lib/server): the kernel corpus requested over the
   Unix socket against a cold daemon and then again against its warm
   caches, compared with a standalone cold [Batch.run].  The daemon's
   second pass must answer every request from its result cache — strictly
   fewer ILP solves than any cold run — and every response must be
   bit-identical to what the standalone batch produced. *)
let daemon_service () =
  section "Compilation service: plutod daemon vs standalone batch";
  Pool.with_temp_dir ~prefix:"pluto_bench_daemon" (fun dir ->
      let sources =
        List.map
          (fun (k : Kernels.t) -> (k.Kernels.name ^ ".c", k.Kernels.source))
          Kernels.all
      in
      let n = List.length sources in
      (* standalone reference: a cold batch over the same corpus *)
      let files =
        List.map
          (fun (name, src) ->
            let path = Filename.concat dir name in
            let oc = open_out path in
            output_string oc src;
            close_out oc;
            path)
          sources
      in
      Milp.clear_caches ();
      Polyhedra.clear_caches ();
      Stats.reset ();
      let t0 = Unix.gettimeofday () in
      let m = Batch.run ~jobs:2 files in
      let batch_dt = Unix.gettimeofday () -. t0 in
      let batch_solves =
        match List.assoc_opt "milp.solves" (Stats.counters ()) with
        | Some v -> v
        | None -> 0
      in
      let batch_codes =
        List.map (fun (e : Batch.entry) -> e.Batch.e_code) m.Batch.m_entries
      in
      Printf.printf "  %d kernels, jobs=2:\n" n;
      Printf.printf "  %-26s %5.1f files/s  %6d solves\n%!"
        "standalone cold batch"
        (float n /. batch_dt)
        batch_solves;
      (* the daemon, forked with cold caches of its own *)
      let socket = Filename.concat dir "d.sock" in
      let pid = Unix.fork () in
      if pid = 0 then begin
        (try
           Milp.clear_caches ();
           Polyhedra.clear_caches ();
           Stats.reset ();
           Store.set_dir None;
           Server.run
             { (Server.default_config ~socket_path:socket) with Server.jobs = 2 }
         with _ -> Unix._exit 1);
        Unix._exit 0
      end;
      let rec wait_ready tries =
        match Client.connect socket with
        | Some fd -> Client.close fd
        | None ->
            if tries = 0 then failwith "plutod did not come up"
            else begin
              Unix.sleepf 0.02;
              wait_ready (tries - 1)
            end
      in
      wait_ready 500;
      let daemon_counter name =
        match Client.stats ~socket with
        | Error _ -> 0
        | Ok line -> (
            match Manifest.Json.parse line with
            | Error _ -> 0
            | Ok j -> (
                match
                  Option.bind (Manifest.Json.mem "stats" j)
                    (Manifest.Json.mem "counters")
                with
                | Some c ->
                    int_of_float (Manifest.Json.num_mem name c ~default:0.0)
                | None -> 0))
      in
      let pass label =
        let solves0 = daemon_counter "milp.solves" in
        let hits0 = daemon_counter "server.result_cache_hits" in
        let t0 = Unix.gettimeofday () in
        let codes =
          List.map
            (fun (name, source) ->
              match
                Client.compile ~socket ~options:Driver.default_options ~name
                  ~source ()
              with
              | `Daemon (Ok r) -> r.Client.r_entry.Manifest.e_code
              | `Daemon (Error _) | `No_daemon -> None)
            sources
        in
        let dt = Unix.gettimeofday () -. t0 in
        let solves = daemon_counter "milp.solves" - solves0 in
        let hits = daemon_counter "server.result_cache_hits" - hits0 in
        Printf.printf "  %-26s %5.1f files/s  %6d solves  %6d cache hits\n%!"
          label
          (float n /. dt)
          solves hits;
        record_metric ~figure:"daemon" ~series:label ~metric:"files_per_s"
          (float n /. dt);
        record_metric ~figure:"daemon" ~series:label ~metric:"ilp_solves"
          (float solves);
        (codes, solves)
      in
      let cold_codes, _ = pass "daemon pass 1 (cold)" in
      let warm_codes, warm_solves = pass "daemon pass 2 (warm)" in
      ignore (Client.shutdown ~socket);
      ignore (Unix.waitpid [] pid);
      record_metric ~figure:"daemon" ~series:"standalone" ~metric:"ilp_solves"
        (float batch_solves);
      record_metric ~figure:"daemon" ~series:"standalone" ~metric:"files_per_s"
        (float n /. batch_dt);
      Printf.printf
        "  daemon responses bit-identical to the standalone batch: %b\n"
        (cold_codes = batch_codes && warm_codes = batch_codes);
      Printf.printf
        "  warm pass solves strictly below a cold run: %b (%d vs %d)\n"
        (warm_solves < batch_solves)
        warm_solves batch_solves)

let statistics () =
  section "System statistics (all kernels)";
  Printf.printf "%-16s %5s %5s %5s %5s %5s %6s %6s %6s %5s\n" "kernel" "stmts"
    "flow" "anti" "out" "RAR" "levels" "bands" "width" "ast";
  List.iter
    (fun (k : Kernels.t) ->
      try
        let p = Kernels.program k in
        let ds = Deps.compute p in
        let count kind = List.length (List.filter (fun d -> d.Deps.kind = kind) ds) in
        let tr = Pluto.Auto.transform p ds in
        let bands = Pluto.Tiling.bands_of tr in
        let width =
          List.fold_left (fun a b -> max a b.Pluto.Tiling.b_len) 0 bands
        in
        let r = Driver.compile_with_transform p ds tr in
        Printf.printf "%-16s %5d %5d %5d %5d %5d %6d %6d %6d %5d\n%!"
          k.Kernels.name
          (List.length p.Ir.stmts)
          (count Deps.Flow) (count Deps.Anti) (count Deps.Output)
          (count Deps.Input) tr.Pluto.Types.nlevels (List.length bands) width
          (Codegen.size r.Driver.code)
      with e ->
        Printf.printf "%-16s FAILED: %s\n%!" k.Kernels.name (Printexc.to_string e))
    Kernels.all

(* ------------------ compiler timing (section 7, Bechamel) ----------------- *)

let bechamel_compile_times () =
  section
    "Transformation tool runtime (paper: \"runs quite fast\") — Bechamel, \
     one Test.make per kernel";
  let open Bechamel in
  let open Toolkit in
  let compile_test (k : Kernels.t) =
    (* parse once; benchmark dependence analysis + transform + codegen *)
    let p = Kernels.program k in
    Test.make ~name:k.Kernels.name (Staged.stage (fun () -> Driver.compile p))
  in
  let grouped =
    Test.make_grouped ~name:"compile"
      (List.map compile_test
         [ Kernels.jacobi_1d; Kernels.lu; Kernels.mvt; Kernels.seidel; Kernels.matmul ])
  in
  let cfg =
    Benchmark.cfg ~limit:8 ~quota:(Time.second 5.0) ~kde:None
      ~sampling:(`Linear 1) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "%-28s %16s\n" "kernel (full pipeline)" "time/run";
  Hashtbl.iter
    (fun name est ->
      let t =
        match Analyze.OLS.estimates est with Some [ t ] -> t | _ -> Float.nan
      in
      Printf.printf "%-28s %13.3f ms\n" name (t /. 1e6))
    results;
  Printf.printf
    "(the paper reports fractions of a second with PipLib/CLooG in C; this\n\
    \ OCaml reproduction solves the same ILPs with an exact bignum simplex)\n"

(* --------------------------------- main ---------------------------------- *)

let () =
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "Pluto reproduction benchmark suite — regenerates the paper's figures on\n\
     the simulated quad-core (see DESIGN.md for the machine model/scaling).\n";
  ignore (fig3 ());
  fig6 ();
  fig9_10 ();
  fig12 ();
  fig13 ();
  fig7_8 ();
  ablations ();
  ablation_auto_scheduler ();
  solver_substrate ();
  batch_throughput ();
  store_resilience ();
  fast_scheduling ();
  reductions ();
  daemon_service ();
  statistics ();
  bechamel_compile_times ();
  write_results "BENCH_results.json";
  Printf.printf "\n%s\ntotal benchmark time: %.1fs\n" line
    (Unix.gettimeofday () -. t0)
