(** loadgen — drive a running [plutod] daemon with many concurrent clients
    and verify that overload stays structured.

    The generator forks [--workers] processes ({!Pool.map}); each runs its
    share of [--clients] clients on one nonblocking [select] loop, so a
    thousand concurrent connections cost a handful of processes.  Clients
    come in four kinds, chosen deterministically from the global client id:

    - {b oversize}: sends a newline-free blob far over the daemon's
      [--max-request-bytes] and must get a structured [bad-request] entry
      followed by the daemon closing the connection;
    - {b slow}: pipelines many cached compile requests, then drains the
      responses in 512-byte nibbles with a delay — the slow-reader shape
      that must trip the daemon's output backpressure, never its memory;
    - {b unique}: compiles a whitespace-variant of a kernel no other
      client sends (distinct digest → a real compile job), creating queue
      pressure and solver-cache churn;
    - {b normal}/{b pipeline}: everyone else compiles one of a few shared
      kernels (1 or [--pipeline] requests per connection) — massively
      duplicated sources, so dedup/coalescing and the result cache carry
      the bulk of the load.

    Every response is checked: successful compiles of a shared kernel must
    be bit-identical to the reference code the parent computed in-process
    (exactly what standalone [plutocc] emits); [server-busy] at the
    connection level triggers reconnect-with-backoff; [server-busy] at the
    request level is counted as a structured rejection.  After the storm,
    the parent runs one warm pass over the shared kernels on a fresh
    connection and requires cached, bit-identical answers.

    Exit status 0 iff there were zero parity mismatches, zero unexpected
    failures, and zero protocol errors.  A JSON summary goes to stdout
    (and [--json FILE]). *)

open Cmdliner

(* ------------------------------ client kinds ------------------------------ *)

type kind = Normal | Pipeline | Slow | Oversize | Unique

let kind_name = function
  | Normal -> "normal"
  | Pipeline -> "pipeline"
  | Slow -> "slow"
  | Oversize -> "oversize"
  | Unique -> "unique"

(* Everything a worker needs, as pure marshalable data. *)
type worker_spec = {
  ws_socket : string;
  ws_ids : int list;  (* global client ids this worker runs *)
  ws_n_oversize : int;
  ws_n_slow : int;
  ws_n_unique : int;
  ws_pipeline : int;  (* requests per Pipeline client *)
  ws_slow_requests : int;  (* requests per Slow client *)
  ws_kernels : (string * string) list;  (* name, source *)
  ws_expected : (string * string) list;  (* kernel name -> reference code *)
  ws_deadline_s : float;  (* per-worker wall clock *)
}

type summary = {
  mutable s_clients : int;
  mutable s_requests : int;
  mutable s_responses : int;
  mutable s_ok : int;
  mutable s_parity_ok : int;
  mutable s_parity_bad : int;
  mutable s_busy : int;  (* request-level server-busy *)
  mutable s_conn_busy : int;  (* connection-level rejections seen *)
  mutable s_gave_up : int;  (* clients that never got in *)
  mutable s_bad_request : int;
  mutable s_failures : int;  (* Failed entries with unexpected codes *)
  mutable s_errors : string list;  (* hard errors, capped *)
}

let new_summary () =
  {
    s_clients = 0;
    s_requests = 0;
    s_responses = 0;
    s_ok = 0;
    s_parity_ok = 0;
    s_parity_bad = 0;
    s_busy = 0;
    s_conn_busy = 0;
    s_gave_up = 0;
    s_bad_request = 0;
    s_failures = 0;
    s_errors = [];
  }

let add_error sum msg =
  if List.length sum.s_errors < 20 then sum.s_errors <- msg :: sum.s_errors

(* ------------------------------ client state ------------------------------ *)

type cstate = Connecting | Active | Finished

type client = {
  c_id : int;
  c_kind : kind;
  c_kernel : string;  (* shared-kernel name ("" for oversize) *)
  mutable c_fd : Unix.file_descr option;
  mutable c_state : cstate;
  mutable c_send : string;
  mutable c_send_pos : int;
  mutable c_expect : int;
  mutable c_got : int;
  c_rbuf : Buffer.t;
  mutable c_attempts : int;
  mutable c_next_at : float;  (* no socket activity before this time *)
  mutable c_write_dead : bool;  (* daemon closed on us mid-send (EPIPE) *)
}

let kind_of_id spec i =
  (* deterministic global mix: the first ids are the special shapes *)
  if i < spec.ws_n_oversize then Oversize
  else if i < spec.ws_n_oversize + spec.ws_n_slow then Slow
  else if i < spec.ws_n_oversize + spec.ws_n_slow + spec.ws_n_unique then
    Unique
  else if i mod 3 = 0 then Pipeline
  else Normal

let request ~options ~name ~source =
  Client.compile_request ~options ~name ~source () ^ "\n"

let repeat n s =
  let b = Buffer.create (n * String.length s) in
  for _ = 1 to n do
    Buffer.add_string b s
  done;
  Buffer.contents b

let make_client spec i =
  let kind = kind_of_id spec i in
  let options = Driver.default_options in
  let kname, ksrc =
    List.nth spec.ws_kernels (i mod List.length spec.ws_kernels)
  in
  let kernel, send, expect =
    match kind with
    | Oversize ->
        (* newline-free garbage well past any sane request cap *)
        ("", String.make (256 * 1024) 'x', 1)
    | Slow ->
        ( kname,
          repeat spec.ws_slow_requests (request ~options ~name:kname ~source:ksrc),
          spec.ws_slow_requests )
    | Unique ->
        (* a whitespace suffix changes the digest, not the program: a real
           compile job nobody else's request coalesces with *)
        ("", request ~options ~name:kname ~source:(ksrc ^ String.make (1 + i) ' '), 1)
    | Pipeline ->
        ( kname,
          repeat spec.ws_pipeline (request ~options ~name:kname ~source:ksrc),
          spec.ws_pipeline )
    | Normal -> (kname, request ~options ~name:kname ~source:ksrc, 1)
  in
  {
    c_id = i;
    c_kind = kind;
    c_kernel = kernel;
    c_fd = None;
    c_state = Connecting;
    c_send = send;
    c_send_pos = 0;
    c_expect = expect;
    c_got = 0;
    c_rbuf = Buffer.create 4096;
    c_attempts = 0;
    c_next_at = 0.0;
    c_write_dead = false;
  }

(* ------------------------------- worker loop ------------------------------ *)

let close_client c =
  (match c.c_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  c.c_fd <- None

let finish c =
  close_client c;
  c.c_state <- Finished

(* The daemon answered "go away" at the connection level ([name] is
   ["<connect>"]): reconnect with backoff, up to a cap. *)
let conn_rejected sum now c =
  sum.s_conn_busy <- sum.s_conn_busy + 1;
  close_client c;
  c.c_attempts <- c.c_attempts + 1;
  if c.c_attempts > 8 then begin
    sum.s_gave_up <- sum.s_gave_up + 1;
    c.c_state <- Finished
  end
  else begin
    Buffer.clear c.c_rbuf;
    c.c_send_pos <- 0;
    c.c_got <- 0;
    c.c_write_dead <- false;
    c.c_state <- Connecting;
    c.c_next_at <- now +. (0.05 *. float_of_int c.c_attempts)
  end

let handle_response spec sum now c line =
  sum.s_responses <- sum.s_responses + 1;
  match Client.parse_response line with
  | Error msg ->
      add_error sum
        (Printf.sprintf "client %d (%s): unparseable response: %s" c.c_id
           (kind_name c.c_kind) msg);
      finish c
  | Ok resp ->
      let e = resp.Client.r_entry in
      if Client.is_busy resp then
        if e.Manifest.e_file = "<connect>" then conn_rejected sum now c
        else begin
          (* request-level rejection: structured, expected under load *)
          sum.s_busy <- sum.s_busy + 1;
          c.c_got <- c.c_got + 1
        end
      else begin
        c.c_got <- c.c_got + 1;
        match e.Manifest.e_status with
        | Manifest.Failed ->
            if Diag.has_code e.Manifest.e_diags "bad-request" then begin
              sum.s_bad_request <- sum.s_bad_request + 1;
              if c.c_kind <> Oversize then
                add_error sum
                  (Printf.sprintf "client %d (%s): unexpected bad-request"
                     c.c_id (kind_name c.c_kind))
            end
            else begin
              sum.s_failures <- sum.s_failures + 1;
              add_error sum
                (Printf.sprintf "client %d (%s): compile failed" c.c_id
                   (kind_name c.c_kind))
            end
        | Manifest.Success | Manifest.Degraded -> (
            sum.s_ok <- sum.s_ok + 1;
            (* shared kernels must be bit-identical to the in-process
               reference — the same answer standalone plutocc gives *)
            match List.assoc_opt c.c_kernel spec.ws_expected with
            | None -> ()
            | Some expected ->
                if e.Manifest.e_code = Some expected then
                  sum.s_parity_ok <- sum.s_parity_ok + 1
                else begin
                  sum.s_parity_bad <- sum.s_parity_bad + 1;
                  add_error sum
                    (Printf.sprintf "client %d: %s response differs from \
                                     standalone plutocc"
                       c.c_id c.c_kernel)
                end)
      end

let drain_lines spec sum now c =
  let data = Buffer.contents c.c_rbuf in
  let start = ref 0 in
  let continue = ref true in
  while !continue && c.c_state = Active do
    match String.index_from_opt data !start '\n' with
    | Some nl ->
        let line = String.sub data !start (nl - !start) in
        start := nl + 1;
        if String.trim line <> "" then handle_response spec sum now c line
    | None -> continue := false
  done;
  if c.c_state = Active || c.c_state = Connecting then begin
    let data_len = String.length data in
    Buffer.clear c.c_rbuf;
    if c.c_state = Active && !start < data_len then
      Buffer.add_substring c.c_rbuf data !start (data_len - !start)
  end

let try_connect sum now c socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () ->
      Unix.set_nonblock fd;
      c.c_fd <- Some fd;
      c.c_state <- Active
  | exception Unix.Unix_error (e, _, _) -> (
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (* a full backlog looks like ECONNREFUSED/EAGAIN: back off and retry
         like a connection-level rejection *)
      match e with
      | Unix.ECONNREFUSED | Unix.EAGAIN | Unix.EINTR | Unix.ECONNRESET ->
          conn_rejected sum now c
      | _ ->
          add_error sum
            (Printf.sprintf "client %d: connect: %s" c.c_id
               (Unix.error_message e));
          c.c_state <- Finished)

let client_wants_read c = c.c_state = Active && c.c_got < c.c_expect

(* An oversize client has seen its structured answer once any response
   arrived; the daemon closing afterwards is the contract, not an error. *)
let sawed_off c = c.c_got >= 1

let client_wants_write c =
  c.c_state = Active
  && (not c.c_write_dead)
  && c.c_send_pos < String.length c.c_send

let run_worker (spec : worker_spec) : summary =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sum = new_summary () in
  let clients = List.map (make_client spec) spec.ws_ids in
  sum.s_clients <- List.length clients;
  List.iter
    (fun c ->
      sum.s_requests <-
        (sum.s_requests + if c.c_kind = Oversize then 1 else c.c_expect))
    clients;
  let chunk = Bytes.create 65536 in
  let t_end = Unix.gettimeofday () +. spec.ws_deadline_s in
  let live () = List.exists (fun c -> c.c_state <> Finished) clients in
  while live () && Unix.gettimeofday () < t_end do
    let now = Unix.gettimeofday () in
    (* connect whoever is due *)
    List.iter
      (fun c ->
        if c.c_state = Connecting && now >= c.c_next_at then
          try_connect sum now c spec.ws_socket)
      clients;
    let reads =
      List.filter_map
        (fun c ->
          if client_wants_read c && now >= c.c_next_at then c.c_fd else None)
        clients
    in
    let writes =
      List.filter_map
        (fun c -> if client_wants_write c then c.c_fd else None)
        clients
    in
    (if reads = [] && writes = [] then
       (* everyone is backing off; sleep until the earliest wake-up *)
       let wake =
         List.fold_left
           (fun acc c ->
             if c.c_state = Finished then acc else Float.min acc c.c_next_at)
           (now +. 0.05) clients
       in
       (if wake > now then Unix.sleepf (Float.min 0.05 (wake -. now)))
     else
      match Unix.select reads writes [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready_r, ready_w, _ ->
          let now = Unix.gettimeofday () in
          List.iter
            (fun c ->
              match c.c_fd with
              | Some fd when List.memq fd ready_w && client_wants_write c -> (
                  let len = String.length c.c_send - c.c_send_pos in
                  match Unix.write_substring fd c.c_send c.c_send_pos len with
                  | n -> c.c_send_pos <- c.c_send_pos + n
                  | exception
                      Unix.Unix_error
                        ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                    ->
                      ()
                  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
                    ->
                      (* daemon closed on us mid-send; whatever it already
                         answered is still readable *)
                      c.c_write_dead <- true
                  | exception Unix.Unix_error (e, _, _) ->
                      add_error sum
                        (Printf.sprintf "client %d: write: %s" c.c_id
                           (Unix.error_message e));
                      finish c)
              | _ -> ())
            clients;
          List.iter
            (fun c ->
              match c.c_fd with
              | Some fd when List.memq fd ready_r && client_wants_read c -> (
                  (* slow readers nibble and then sit out a beat *)
                  let want =
                    if c.c_kind = Slow then 512 else Bytes.length chunk
                  in
                  match Unix.read fd chunk 0 want with
                  | exception
                      Unix.Unix_error
                        ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                    ->
                      ()
                  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                      if c.c_kind = Oversize && sawed_off c then finish c
                      else conn_rejected sum now c
                  | 0 ->
                      (* EOF: fine for an oversize client that got its
                         bad-request, or a connection-level rejection that
                         arrived without a line; early EOF otherwise *)
                      if c.c_kind = Oversize && sawed_off c then finish c
                      else if c.c_got < c.c_expect then conn_rejected sum now c
                      else finish c
                  | n ->
                      Buffer.add_subbytes c.c_rbuf chunk 0 n;
                      drain_lines spec sum now c;
                      if c.c_kind = Slow && c.c_state = Active then
                        c.c_next_at <- now +. 0.002)
              | _ -> ())
            clients);
    (* completion sweep — every iteration, since a client can finish its
       last response on one pass and see no further readiness *)
    List.iter
      (fun c ->
        if
          c.c_state = Active
          && c.c_got >= c.c_expect
          && (c.c_write_dead
             || c.c_send_pos >= String.length c.c_send
             || c.c_kind = Oversize)
        then finish c)
      clients
  done;
  List.iter
    (fun c ->
      if c.c_state <> Finished then begin
        add_error sum
          (Printf.sprintf "client %d (%s): timed out with %d/%d responses"
             c.c_id (kind_name c.c_kind) c.c_got c.c_expect);
        finish c
      end)
    clients;
  sum

(* ------------------------------ orchestration ----------------------------- *)

let merge_summaries sums =
  let t = new_summary () in
  List.iter
    (fun s ->
      t.s_clients <- t.s_clients + s.s_clients;
      t.s_requests <- t.s_requests + s.s_requests;
      t.s_responses <- t.s_responses + s.s_responses;
      t.s_ok <- t.s_ok + s.s_ok;
      t.s_parity_ok <- t.s_parity_ok + s.s_parity_ok;
      t.s_parity_bad <- t.s_parity_bad + s.s_parity_bad;
      t.s_busy <- t.s_busy + s.s_busy;
      t.s_conn_busy <- t.s_conn_busy + s.s_conn_busy;
      t.s_gave_up <- t.s_gave_up + s.s_gave_up;
      t.s_bad_request <- t.s_bad_request + s.s_bad_request;
      t.s_failures <- t.s_failures + s.s_failures;
      t.s_errors <- s.s_errors @ t.s_errors)
    sums;
  t

let summary_json t ~warm_parity ~worker_failures =
  Printf.sprintf
    "{\"clients\": %d, \"requests\": %d, \"responses\": %d, \"ok\": %d, \
     \"parity_ok\": %d, \"parity_bad\": %d, \"busy\": %d, \"conn_busy\": %d, \
     \"gave_up\": %d, \"bad_request\": %d, \"failures\": %d, \
     \"worker_failures\": %d, \"warm_parity\": %s, \"errors\": [%s]}"
    t.s_clients t.s_requests t.s_responses t.s_ok t.s_parity_ok t.s_parity_bad
    t.s_busy t.s_conn_busy t.s_gave_up t.s_bad_request t.s_failures
    worker_failures
    (if warm_parity then "true" else "false")
    (String.concat ", "
       (List.map Manifest.json_string (List.rev t.s_errors)))

(* The reference: exactly what the daemon's compile task (and standalone
   plutocc) produces for this source under default options. *)
let reference_code ~name ~source =
  match
    Driver.compile_source_robust ~options:Driver.default_options ~strict:false
      ~verify:false ~name source
  with
  | Error _ -> None
  | Ok (r, _) ->
      Some
        (Format.asprintf "%a" (fun fmt c -> Codegen.print_c fmt c)
           r.Driver.code)

let shared_kernels () =
  [ Kernels.matmul; Kernels.jacobi_1d; Kernels.mvt ]
  |> List.map (fun k -> (k.Kernels.name ^ ".c", k.Kernels.source))

let main socket clients workers pipeline slow_requests n_oversize n_slow
    n_unique deadline json_out =
  let kernels = shared_kernels () in
  let expected =
    List.filter_map
      (fun (name, source) ->
        Option.map (fun c -> (name, c)) (reference_code ~name ~source))
      kernels
  in
  if List.length expected <> List.length kernels then begin
    prerr_endline "loadgen: in-process reference compile failed";
    exit 1
  end;
  let ids = Putil.range clients in
  let workers = max 1 workers in
  let spec_of ws_ids =
    {
      ws_socket = socket;
      ws_ids;
      ws_n_oversize = n_oversize;
      ws_n_slow = n_slow;
      ws_n_unique = n_unique;
      ws_pipeline = max 1 pipeline;
      ws_slow_requests = max 1 slow_requests;
      ws_kernels = kernels;
      ws_expected = expected;
      ws_deadline_s = deadline;
    }
  in
  (* deal ids round-robin so every worker gets a slice of every kind *)
  let buckets = Array.make workers [] in
  List.iter (fun i -> buckets.(i mod workers) <- i :: buckets.(i mod workers)) ids;
  let specs =
    Array.to_list buckets
    |> List.filter_map (fun ids ->
           if ids = [] then None else Some (spec_of (List.rev ids)))
  in
  let outcomes =
    Pool.map ~jobs:workers ~task_timeout_s:(deadline +. 30.0) ~retries:0
      ~f:run_worker specs
  in
  let sums, worker_failures =
    List.fold_left
      (fun (acc, fails) (o : summary Pool.outcome) ->
        match o.Pool.value with
        | Ok s -> (s :: acc, fails)
        | Error d ->
            prerr_endline
              (Format.asprintf "loadgen: worker failed: %a" Diag.pp d);
            (acc, fails + 1))
      ([], 0) outcomes
  in
  let total = merge_summaries sums in
  (* warm pass: after the storm, the shared kernels must come back cached
     and bit-identical on a fresh connection *)
  let warm_parity =
    List.for_all
      (fun (name, source) ->
        match
          Client.compile ~socket ~options:Driver.default_options ~name
            ~source ()
        with
        | `No_daemon ->
            prerr_endline "loadgen: daemon gone before the warm pass";
            false
        | `Daemon (Error msg) ->
            prerr_endline ("loadgen: warm pass protocol error: " ^ msg);
            false
        | `Daemon (Ok resp) ->
            let e = resp.Client.r_entry in
            let expect = List.assoc name expected in
            if Client.is_busy resp then begin
              prerr_endline "loadgen: daemon still busy on the warm pass";
              false
            end
            else if e.Manifest.e_code <> Some expect then begin
              prerr_endline
                ("loadgen: warm response for " ^ name
               ^ " differs from standalone plutocc");
              false
            end
            else true)
      kernels
  in
  let json = summary_json total ~warm_parity ~worker_failures in
  print_endline json;
  (match json_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc json;
          output_char oc '\n'));
  if
    total.s_parity_bad = 0 && total.s_failures = 0 && total.s_errors = []
    && worker_failures = 0 && warm_parity && total.s_ok > 0
  then 0
  else 1

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket of the running plutod.")

let clients_arg =
  Arg.(
    value & opt int 1000
    & info [ "clients" ] ~docv:"N" ~doc:"Total concurrent clients.")

let workers_arg =
  Arg.(
    value & opt int 8
    & info [ "workers" ] ~docv:"P"
        ~doc:"Forked generator processes sharing the clients.")

let pipeline_arg =
  Arg.(
    value & opt int 8
    & info [ "pipeline" ] ~docv:"B"
        ~doc:"Requests sent in one burst by each pipelining client.")

let slow_requests_arg =
  Arg.(
    value & opt int 150
    & info [ "slow-requests" ] ~docv:"R"
        ~doc:
          "Cached requests each slow-reader client pipelines before \
           draining the responses in 512-byte nibbles.")

let oversize_arg =
  Arg.(
    value & opt int 8
    & info [ "oversize" ] ~docv:"N" ~doc:"Clients sending oversize requests.")

let slow_arg =
  Arg.(
    value & opt int 8
    & info [ "slow" ] ~docv:"N" ~doc:"Slow-reader clients.")

let unique_arg =
  Arg.(
    value & opt int 16
    & info [ "unique" ] ~docv:"N"
        ~doc:"Clients compiling a unique source variant (real compile jobs).")

let deadline_arg =
  Arg.(
    value & opt float 300.0
    & info [ "deadline" ] ~docv:"S"
        ~doc:"Per-worker wall-clock budget; stragglers are reported.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Also write the JSON summary here.")

let cmd =
  let doc = "concurrent load generator for the plutod daemon" in
  let info = Cmd.info "loadgen" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const main $ socket_arg $ clients_arg $ workers_arg $ pipeline_arg
      $ slow_requests_arg $ oversize_arg $ slow_arg $ unique_arg
      $ deadline_arg $ json_arg)

let () = exit (Cmd.eval' cmd)
