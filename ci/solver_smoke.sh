#!/bin/sh
# Solver-substrate smoke test.
#
# Compiles examples/matmul.c with --stats-json and fails if:
#   - any counter listed in ci/solver-smoke-ceiling.json exceeds its ceiling
#     (a regression in the incremental ILP/FM hot path), or
#   - the warm-start telemetry is absent (milp.warm_starts = 0 would mean
#     the incremental solver paths are silently disabled).
#
# Run from anywhere; uses `dune exec` so it works in CI and locally.
set -eu

cd "$(dirname "$0")/.."
ceiling_file=ci/solver-smoke-ceiling.json
stats_file=$(mktemp)
trap 'rm -f "$stats_file"' EXIT

# --no-fast-schedule: this job measures the exact ILP substrate, which the
# fast scheduling path would bypass entirely (ci/fastpath_smoke.sh covers
# the fast path's own ceilings).
PLUTO_TUNE_CACHE="" dune exec bin/plutocc.exe -- examples/matmul.c \
  --no-fast-schedule --stats-json "$stats_file" -o /dev/null

# Pull `"name": <int>` out of a one-line JSON file (no jq dependency).
counter() {
  sed -n 's/.*"'"$1"'": \([0-9][0-9]*\).*/\1/p' "$2" | head -n 1
}

status=0
for name in "milp.solves" "milp.cold_builds"; do
  actual=$(counter "$name" "$stats_file")
  ceiling=$(counter "$name" "$ceiling_file")
  if [ -z "$actual" ]; then
    echo "solver-smoke: FAIL: counter $name missing from --stats-json output" >&2
    status=1
  elif [ -z "$ceiling" ]; then
    echo "solver-smoke: FAIL: no ceiling for $name in $ceiling_file" >&2
    status=1
  elif [ "$actual" -gt "$ceiling" ]; then
    echo "solver-smoke: FAIL: $name = $actual exceeds ceiling $ceiling" >&2
    status=1
  else
    echo "solver-smoke: ok: $name = $actual (ceiling $ceiling)"
  fi
done

warm=$(counter "milp.warm_starts" "$stats_file")
if [ -z "$warm" ] || [ "$warm" -eq 0 ]; then
  echo "solver-smoke: FAIL: milp.warm_starts = ${warm:-absent}; the warm solver paths appear to be disabled" >&2
  status=1
else
  echo "solver-smoke: ok: milp.warm_starts = $warm"
fi

exit $status
