#!/bin/sh
# Daemon (plutod) smoke test.
#
# Starts plutod on a temp socket with a persistent --cache-dir, pushes the
# example corpus through `plutocc --batch --connect` twice, and fails if:
#   - any request fails (server.failures > 0), or
#   - the daemon output is not bit-identical to a standalone local
#     `plutocc --batch` over the same inputs, or
#   - the warm second pass is not served without fresh compiles (its
#     milp.solves delta must stay under the ceiling in
#     ci/server-smoke-ceiling.json AND strictly below the cold local run's
#     solve count), or
#   - the daemon does not drain cleanly on --request-shutdown (exit 0,
#     socket file removed).
#
# Run from anywhere; builds with dune, then drives the installed binaries
# directly so backgrounding the daemon is reliable.
set -eu

cd "$(dirname "$0")/.."
ceiling_file=ci/server-smoke-ceiling.json
work=$(mktemp -d)
daemon_pid=""
cleanup() {
  rm -rf "$work"
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2> /dev/null || true
}
trap cleanup EXIT

dune build bin/plutocc.exe bin/plutod.exe
plutocc=_build/default/bin/plutocc.exe
plutod=_build/default/bin/plutod.exe
sock="$work/plutod.sock"

# Pull `"name": <int>` out of a one-line JSON file (no jq dependency).
counter() {
  sed -n 's/.*"'"$1"'": \([0-9][0-9]*\).*/\1/p' "$2" | head -n 1
}

status=0
n_inputs=$(ls examples/*.c | wc -l | tr -d ' ')

# standalone local reference: cold, no cache
"$plutocc" --batch examples/*.c -o "$work/local" \
  --batch-manifest "$work/local.json" --stats-json "$work/local-stats.json"
cold_solves=$(counter "milp.solves" "$work/local-stats.json")

"$plutod" --socket "$sock" --jobs 2 --cache-dir "$work/cache" &
daemon_pid=$!
i=0
while [ ! -S "$sock" ] && [ $i -lt 150 ]; do sleep 0.1; i=$((i + 1)); done
if ! "$plutod" --socket "$sock" --ping > /dev/null; then
  echo "server-smoke: FAIL: daemon did not come up on $sock" >&2
  exit 1
fi

# pass 1 (cold daemon) and pass 2 (warm: everything from the result cache)
"$plutocc" --batch examples/*.c --connect "$sock" -o "$work/pass1" \
  --batch-manifest "$work/pass1.json"
"$plutod" --socket "$sock" --query-stats > "$work/stats1.json"
"$plutocc" --batch examples/*.c --connect "$sock" -o "$work/pass2" \
  --batch-manifest "$work/pass2.json"
"$plutod" --socket "$sock" --query-stats > "$work/stats2.json"

# every request must actually have gone through the daemon...
requests=$(counter "server.requests" "$work/stats2.json")
if [ "${requests:-0}" -lt $((2 * n_inputs)) ]; then
  echo "server-smoke: FAIL: daemon served ${requests:-0} requests, expected >= $((2 * n_inputs)) (local fallback kicked in?)" >&2
  status=1
else
  echo "server-smoke: ok: daemon served $requests requests over $n_inputs inputs x 2 passes"
fi

# ...and none may fail
failures=$(counter "server.failures" "$work/stats2.json")
failures=${failures:-0}
failure_ceiling=$(counter "server.failures" "$ceiling_file")
if [ "$failures" -gt "$failure_ceiling" ]; then
  echo "server-smoke: FAIL: server.failures = $failures (ceiling $failure_ceiling)" >&2
  status=1
else
  echo "server-smoke: ok: server.failures = $failures"
fi

# daemon output must be exactly what a standalone plutocc produces
if diff -r "$work/local" "$work/pass1" > /dev/null; then
  echo "server-smoke: ok: daemon output bit-identical to standalone plutocc"
else
  echo "server-smoke: FAIL: daemon output differs from standalone plutocc" >&2
  status=1
fi
if diff -r "$work/pass1" "$work/pass2" > /dev/null; then
  echo "server-smoke: ok: warm pass bit-identical to cold pass"
else
  echo "server-smoke: FAIL: warm pass output differs from cold pass" >&2
  status=1
fi

# the warm pass must be served from the daemon's caches: its ILP solve
# delta stays under the checked-in ceiling and strictly below a cold run
solves1=$(counter "milp.solves" "$work/stats1.json")
solves2=$(counter "milp.solves" "$work/stats2.json")
warm_delta=$((${solves2:-0} - ${solves1:-0}))
warm_ceiling=$(counter "milp.solves" "$ceiling_file")
if [ -z "$cold_solves" ] || [ -z "$warm_ceiling" ]; then
  echo "server-smoke: FAIL: missing milp.solves counter or ceiling" >&2
  status=1
elif [ "$warm_delta" -gt "$warm_ceiling" ]; then
  echo "server-smoke: FAIL: warm pass did $warm_delta ILP solves (ceiling $warm_ceiling)" >&2
  status=1
elif [ "$warm_delta" -ge "$cold_solves" ]; then
  echo "server-smoke: FAIL: warm pass solves ($warm_delta) not below a cold run's ($cold_solves)" >&2
  status=1
else
  echo "server-smoke: ok: warm pass did $warm_delta ILP solves (cold run: $cold_solves)"
fi

hits=$(counter "server.result_cache_hits" "$work/stats2.json")
if [ "${hits:-0}" -lt "$n_inputs" ]; then
  echo "server-smoke: FAIL: only ${hits:-0} result-cache hits on the warm pass (expected >= $n_inputs)" >&2
  status=1
else
  echo "server-smoke: ok: server.result_cache_hits = $hits"
fi

# graceful drain: acknowledged, exit 0, socket file gone
if ! "$plutod" --socket "$sock" --request-shutdown; then
  echo "server-smoke: FAIL: daemon did not acknowledge shutdown" >&2
  status=1
fi
if wait "$daemon_pid"; then
  echo "server-smoke: ok: daemon drained and exited 0"
else
  echo "server-smoke: FAIL: daemon exited non-zero" >&2
  status=1
fi
daemon_pid=""
if [ -e "$sock" ]; then
  echo "server-smoke: FAIL: socket file left behind after drain" >&2
  status=1
else
  echo "server-smoke: ok: socket file removed"
fi

exit $status
