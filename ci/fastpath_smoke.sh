#!/bin/sh
# Fast-scheduling-path smoke test.
#
# Two halves:
#
#   1. The differential half: runs the `fastpath` alcotest suite, which
#      compiles the whole kernel corpus with the fast path on AND off and
#      requires 100% bit-identical execution results between the two (plus
#      the matcher property tests and the >= 5x scheduling-solve cut).
#
#   2. The ceiling half: compiles each example kernel with --stats-json (fast
#      path on, the default) and fails if milp.solves exceeds its ceiling
#      in ci/fastpath-smoke-ceiling.json, or if the expected fast-path
#      verdict (accept / clean reject) changes.  This is what catches the
#      fast path silently rotting: a kernel that stops being accepted shows
#      up here as an ILP solve count jumping above its ceiling.
#
# Run from anywhere; uses `dune exec` so it works in CI and locally.
set -eu

cd "$(dirname "$0")/.."
ceiling_file=ci/fastpath-smoke-ceiling.json
stats_file=$(mktemp)
trap 'rm -f "$stats_file"' EXIT

echo "fastpath-smoke: differential suite (fast path vs exact ILP)"
dune exec test/test_main.exe -- test fastpath -e

# Pull `"name": <value>` fields out of one-line JSON (no jq dependency).
counter() {
  sed -n 's/.*"'"$1"'": \([0-9][0-9]*\).*/\1/p' "$2" | head -n 1
}
field() {
  sed -n 's/.*"'"$1"'": "\([a-z]*\)".*/\1/p' "$2" | head -n 1
}

status=0
for kernel in matmul lu mvt jacobi-1d; do
  PLUTO_TUNE_CACHE="" dune exec bin/plutocc.exe -- "examples/$kernel.c" \
    --stats-json "$stats_file" -o /dev/null

  solves=$(counter "milp.solves" "$stats_file")
  solves=${solves:-0}
  ceiling=$(counter "$kernel.milp.solves" "$ceiling_file")
  if [ -z "$ceiling" ]; then
    echo "fastpath-smoke: FAIL: no ceiling for $kernel in $ceiling_file" >&2
    status=1
  elif [ "$solves" -gt "$ceiling" ]; then
    echo "fastpath-smoke: FAIL: $kernel milp.solves = $solves exceeds ceiling $ceiling" >&2
    status=1
  else
    echo "fastpath-smoke: ok: $kernel milp.solves = $solves (ceiling $ceiling)"
  fi

  verdict=$(field "$kernel.verdict" "$ceiling_file")
  accepts=$(counter "fastpath.accepts" "$stats_file")
  rejects=$(counter "fastpath.rejects" "$stats_file")
  case "$verdict" in
  accept)
    if [ "${accepts:-0}" -ge 1 ]; then
      echo "fastpath-smoke: ok: $kernel accepted by the fast path"
    else
      echo "fastpath-smoke: FAIL: $kernel no longer accepted by the fast path" >&2
      status=1
    fi
    ;;
  reject)
    # a clean rejection: the counter fires, the compile still succeeds
    # (plutocc already exited 0 above thanks to `set -e`)
    if [ "${rejects:-0}" -ge 1 ]; then
      echo "fastpath-smoke: ok: $kernel cleanly rejected (exact ILP fallback)"
    else
      echo "fastpath-smoke: FAIL: $kernel expected a fast-path rejection" >&2
      status=1
    fi
    ;;
  *)
    echo "fastpath-smoke: FAIL: no verdict for $kernel in $ceiling_file" >&2
    status=1
    ;;
  esac
done

exit $status
