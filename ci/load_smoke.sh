#!/bin/sh
# Daemon (plutod) load test: bounded resources under a 1000-client storm.
#
# Starts plutod with deliberately tight caps (connections, pipelining,
# queue, request/output bytes, solver-cache entries), then drives it with
# bench/loadgen: >= 1000 concurrent clients mixing single-shot, pipelined,
# slow-reader, oversize-request, and unique-source traffic.  Fails if:
#   - loadgen reports any parity mismatch (accepted responses must be
#     bit-identical to standalone plutocc), unexpected failure, or
#     protocol error,
#   - the daemon crashes (server.crashes > 0) or its peak RSS (VmHWM)
#     exceeds the ceiling in ci/load-smoke-ceiling.json,
#   - overload was not exercised: the run must produce structured
#     rejections (server.busy_rejections > 0), bad-requests
#     (server.bad_requests > 0), slow-reader stalls
#     (server.slow_reader_stalls > 0), and solver-cache evictions
#     (server.cache_evicted > 0) — otherwise the caps were never hit and
#     the test proves nothing,
#   - a warm pass after the storm needs more ILP solves than the ceiling
#     (the solver caches must still be useful after eviction pressure), or
#   - the daemon does not drain cleanly on --request-shutdown.
set -eu

cd "$(dirname "$0")/.."
ceiling_file=ci/load-smoke-ceiling.json
work=$(mktemp -d)
daemon_pid=""
cleanup() {
  rm -rf "$work"
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2> /dev/null || true
}
trap cleanup EXIT

dune build bin/plutod.exe bench/loadgen.exe
plutod=_build/default/bin/plutod.exe
loadgen=_build/default/bench/loadgen.exe
sock="$work/plutod.sock"

# Pull `"name": <int>` out of a one-line JSON file (no jq dependency).
counter() {
  sed -n 's/.*"'"$1"'": \([0-9][0-9]*\).*/\1/p' "$2" | head -n 1
}

status=0

# Tight caps so every bound is actually exercised by a 1000-client storm:
# connections capped below the client count, a short pipeline window, a
# small queue, a request-size limit the oversize clients exceed, an output
# window the slow readers overflow, and a solver-cache budget the unique
# sources bust.
"$plutod" --socket "$sock" --jobs 2 --cache-dir "$work/cache" \
  --max-connections 512 --max-pipeline 4 --max-queue 8 \
  --max-request-bytes 64K --max-output-bytes 4K --solver-cache-entries 64 &
daemon_pid=$!
i=0
while [ ! -S "$sock" ] && [ $i -lt 150 ]; do sleep 0.1; i=$((i + 1)); done
if ! "$plutod" --socket "$sock" --ping > /dev/null; then
  echo "load-smoke: FAIL: daemon did not come up on $sock" >&2
  exit 1
fi

if "$loadgen" --socket "$sock" --clients 1000 --workers 8 \
  --json "$work/loadgen.json" > "$work/loadgen.out" 2> "$work/loadgen.err"; then
  echo "load-smoke: ok: loadgen pass clean"
  cat "$work/loadgen.out"
else
  echo "load-smoke: FAIL: loadgen reported errors" >&2
  cat "$work/loadgen.out" "$work/loadgen.err" >&2
  status=1
fi

# the daemon must have survived the storm
if ! kill -0 "$daemon_pid" 2> /dev/null; then
  echo "load-smoke: FAIL: daemon died during the load test" >&2
  exit 1
fi

# peak RSS stays under the checked-in ceiling
rss_kb=$(awk '/VmHWM/ {print $2}' "/proc/$daemon_pid/status" 2> /dev/null || echo "")
rss_ceiling=$(counter "max_rss_kb" "$ceiling_file")
if [ -z "$rss_kb" ]; then
  echo "load-smoke: skip: no /proc/$daemon_pid/status (not linux?)"
elif [ "$rss_kb" -gt "$rss_ceiling" ]; then
  echo "load-smoke: FAIL: daemon peak RSS ${rss_kb}kB over ceiling ${rss_ceiling}kB" >&2
  status=1
else
  echo "load-smoke: ok: daemon peak RSS ${rss_kb}kB (ceiling ${rss_ceiling}kB)"
fi

"$plutod" --socket "$sock" --query-stats > "$work/stats.json"

# zero tolerance: no unhandled exceptions in the event loop
crashes=$(counter "server.crashes" "$work/stats.json")
if [ "${crashes:-0}" -gt 0 ]; then
  echo "load-smoke: FAIL: server.crashes = $crashes" >&2
  status=1
else
  echo "load-smoke: ok: server.crashes = 0"
fi

# every cap must actually have fired, or the storm proved nothing
for c in server.busy_rejections server.bad_requests \
  server.slow_reader_stalls server.cache_evicted; do
  v=$(counter "$c" "$work/stats.json")
  if [ "${v:-0}" -gt 0 ]; then
    echo "load-smoke: ok: $c = $v"
  else
    echo "load-smoke: FAIL: $c = ${v:-0} (cap never exercised)" >&2
    status=1
  fi
done

# warm pass after the storm: the shared kernels must still be served from
# cache — the solver-cache eviction may not have wiped the daemon's value
solves_before=$(counter "milp.solves" "$work/stats.json")
"$loadgen" --socket "$sock" --clients 12 --workers 2 \
  --oversize 0 --slow 0 --unique 0 > "$work/warm.out" || {
  echo "load-smoke: FAIL: warm pass after the storm failed" >&2
  cat "$work/warm.out" >&2
  status=1
}
"$plutod" --socket "$sock" --query-stats > "$work/stats-warm.json"
solves_after=$(counter "milp.solves" "$work/stats-warm.json")
warm_delta=$((${solves_after:-0} - ${solves_before:-0}))
warm_ceiling=$(counter "milp.solves" "$ceiling_file")
if [ "$warm_delta" -gt "$warm_ceiling" ]; then
  echo "load-smoke: FAIL: warm pass did $warm_delta ILP solves (ceiling $warm_ceiling)" >&2
  status=1
else
  echo "load-smoke: ok: warm pass did $warm_delta ILP solves (ceiling $warm_ceiling)"
fi

# graceful drain: acknowledged, exit 0, socket file gone
if ! "$plutod" --socket "$sock" --request-shutdown; then
  echo "load-smoke: FAIL: daemon did not acknowledge shutdown" >&2
  status=1
fi
if wait "$daemon_pid"; then
  echo "load-smoke: ok: daemon drained and exited 0"
else
  echo "load-smoke: FAIL: daemon exited non-zero" >&2
  status=1
fi
daemon_pid=""
if [ -e "$sock" ]; then
  echo "load-smoke: FAIL: socket file left behind after drain" >&2
  status=1
else
  echo "load-smoke: ok: socket file removed"
fi

exit $status
