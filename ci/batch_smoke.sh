#!/bin/sh
# Batch-compilation smoke test.
#
# Compiles examples/*.c twice through `plutocc --batch` with a persistent
# --cache-dir and fails if:
#   - the warm rerun's generated C is not bit-identical to the cold run's, or
#   - the warm rerun does not do strictly fewer ILP solves than the cold run
#     (the persistent solver store is silently disabled), or
#   - the warm run's counters exceed the ceilings in
#     ci/batch-smoke-ceiling.json, or
#   - solver counters differ between --jobs 1 and --jobs 4 on the same
#     inputs (lost or double-counted worker stats).
#
# Run from anywhere; uses `dune exec` so it works in CI and locally.
set -eu

cd "$(dirname "$0")/.."
ceiling_file=ci/batch-smoke-ceiling.json
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

batch() {
  # $1 = output dir, $2 = counters JSON file; remaining args appended
  out="$1"; err="$2"; shift 2
  dune exec bin/plutocc.exe -- --batch examples/*.c -o "$work/$out" \
    --batch-manifest "$work/$out.json" --stats-json "$work/$err" "$@"
}

counter() {
  sed -n 's/.*"'"$1"'": \([0-9][0-9]*\).*/\1/p' "$2" | head -n 1
}

status=0

batch cold cold.err --cache-dir "$work/cache" --jobs 2
batch warm warm.err --cache-dir "$work/cache" --jobs 2

if diff -r "$work/cold" "$work/warm" > /dev/null; then
  echo "batch-smoke: ok: warm rerun output is bit-identical"
else
  echo "batch-smoke: FAIL: warm rerun output differs from cold run" >&2
  status=1
fi

cold_solves=$(counter "milp.solves" "$work/cold.err")
warm_solves=$(counter "milp.solves" "$work/warm.err")
warm_hits=$(counter "store.hits" "$work/warm.err")
if [ -z "$cold_solves" ] || [ -z "$warm_solves" ]; then
  echo "batch-smoke: FAIL: milp.solves missing from --stats-json output" >&2
  status=1
elif [ "$warm_solves" -ge "$cold_solves" ]; then
  echo "batch-smoke: FAIL: warm milp.solves = $warm_solves not below cold $cold_solves" >&2
  status=1
else
  echo "batch-smoke: ok: milp.solves $cold_solves cold -> $warm_solves warm"
fi
if [ -z "$warm_hits" ] || [ "$warm_hits" -eq 0 ]; then
  echo "batch-smoke: FAIL: warm run had no store hits" >&2
  status=1
else
  echo "batch-smoke: ok: store.hits = $warm_hits on the warm run"
fi

for name in "milp.solves" "store.misses"; do
  # a counter never incremented is absent from the JSON: that is 0
  actual=$(counter "$name" "$work/warm.err")
  actual=${actual:-0}
  ceiling=$(counter "$name" "$ceiling_file")
  if [ -z "$ceiling" ]; then
    echo "batch-smoke: FAIL: no ceiling for $name in $ceiling_file" >&2
    status=1
  elif [ "$actual" -gt "$ceiling" ]; then
    echo "batch-smoke: FAIL: warm $name = $actual exceeds ceiling $ceiling" >&2
    status=1
  else
    echo "batch-smoke: ok: warm $name = $actual (ceiling $ceiling)"
  fi
done

# --jobs must not change solver totals (worker stats are merged, every file
# starts from empty in-memory caches); no cache dir so scheduling cannot
# change store hits either.  --stats-json keeps the counters parseable even
# when diagnostics land on stderr.
batch j1 j1.err --jobs 1
batch j4 j4.err --jobs 4
for name in "milp.solves" "milp.cold_builds" "milp.pivots" \
            "poly.empty_cache_misses" "fm.eliminations"; do
  a=$(counter "$name" "$work/j1.err")
  b=$(counter "$name" "$work/j4.err")
  if [ "${a:-absent}" != "${b:-absent}" ]; then
    echo "batch-smoke: FAIL: $name differs across --jobs: $a (jobs=1) vs $b (jobs=4)" >&2
    status=1
  else
    echo "batch-smoke: ok: $name = $a under both --jobs 1 and --jobs 4"
  fi
done
if diff -r "$work/j1" "$work/j4" > /dev/null; then
  echo "batch-smoke: ok: --jobs 1 and --jobs 4 outputs are bit-identical"
else
  echo "batch-smoke: FAIL: output differs between --jobs 1 and --jobs 4" >&2
  status=1
fi

exit $status
