#!/bin/sh
# Reduction-aware scheduling smoke test (--reductions).
#
# Three halves:
#
#   1. The unit/differential half: runs the `reductions` alcotest suite
#      (detection, marking, alias analysis, clause precision, the
#      reduction-aware validator, tolerance equivalence).
#
#   2. The gain half: compiles dot/histogram/mvt with and without
#      --reductions and fails unless the flag turns their serialized
#      outermost loop into a parallel one, carrying exactly the OpenMP
#      reduction clauses recorded in ci/reduction-smoke-ceiling.json.
#      Every flag-on compile runs under --check (semantic equivalence,
#      tolerance compare for marked-reduction programs) and --verify
#      (legality modulo reassociation), so plutocc's exit code vouches
#      for soundness, not just shape.
#
#   3. The no-op half: kernels the relaxation cannot help (lu, whose
#      cross-statement flow dependences serialize the outer loop anyway)
#      and kernels with nothing to mark (jacobi-1d) must compile
#      bit-identically with the flag on and off — and the flag-off
#      output of every kernel here must be bit-identical across runs.
#
# Run from anywhere; uses `dune exec` so it works in CI and locally.
set -eu

cd "$(dirname "$0")/.."
ceiling_file=ci/reduction-smoke-ceiling.json
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "reduction-smoke: unit + differential suite"
dune exec test/test_main.exe -- test reductions -e

# histogram lives in lib/kernels; materialize it as a .c input
cat > "$tmpdir/histogram.c" <<'EOF'
double data[N][M], h[M];
for (i = 0; i < N; i++)
  for (j = 0; j < M; j++)
    h[j] = h[j] + data[i][j];
EOF

field() {
  sed -n 's/.*"'"$1"'": "\([^"]*\)".*/\1/p' "$ceiling_file" | head -n 1
}

# Is the outermost loop of the emitted nest parallel?  True iff an
# `omp parallel for` pragma appears before the first `for (` line.
outer_parallel() {
  pragma=$(grep -n 'omp parallel for' "$1" | head -n 1 | cut -d: -f1)
  loop=$(grep -n 'for (' "$1" | head -n 1 | cut -d: -f1)
  [ -n "$pragma" ] && [ -n "$loop" ] && [ "$pragma" -lt "$loop" ]
}

clauses_of() {
  grep -o 'reduction([^)]*)' "$1" | sort -u | paste -sd, - || true
}

status=0
for kernel in dot histogram mvt lu jacobi-1d; do
  case "$kernel" in
  histogram) src="$tmpdir/histogram.c" ;;
  *) src="examples/$kernel.c" ;;
  esac

  off="$tmpdir/$kernel.off.c"
  off2="$tmpdir/$kernel.off2.c"
  on="$tmpdir/$kernel.on.c"
  dune exec bin/plutocc.exe -- "$src" -o "$off"
  dune exec bin/plutocc.exe -- "$src" -o "$off2"
  # --check and --verify make a wrong relaxation a hard (exit-code) failure
  dune exec bin/plutocc.exe -- "$src" --reductions --check --verify -o "$on"

  if ! cmp -s "$off" "$off2"; then
    echo "reduction-smoke: FAIL: $kernel flag-off output not deterministic" >&2
    status=1
  fi

  gains=$(field "$kernel.gains_outer_parallel")
  case "$gains" in
  yes)
    if outer_parallel "$off"; then
      echo "reduction-smoke: FAIL: $kernel outer loop already parallel without --reductions" >&2
      status=1
    elif ! outer_parallel "$on"; then
      echo "reduction-smoke: FAIL: $kernel outer loop still serial under --reductions" >&2
      status=1
    else
      echo "reduction-smoke: ok: $kernel gains a parallel outer loop"
    fi
    want=$(field "$kernel.clauses")
    got=$(clauses_of "$on")
    if [ "$got" = "$want" ]; then
      echo "reduction-smoke: ok: $kernel clauses = $want"
    else
      echo "reduction-smoke: FAIL: $kernel clauses '$got' != expected '$want'" >&2
      status=1
    fi
    ;;
  no)
    if [ "$(field "$kernel.flag_noop")" = "yes" ] && ! cmp -s "$off" "$on"; then
      echo "reduction-smoke: FAIL: $kernel output changed under --reductions (expected bit-identical)" >&2
      status=1
    else
      echo "reduction-smoke: ok: $kernel bit-identical with the flag on (nothing to gain)"
    fi
    ;;
  *)
    echo "reduction-smoke: FAIL: no expectation for $kernel in $ceiling_file" >&2
    status=1
    ;;
  esac
done

exit $status
