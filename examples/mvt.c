/* Matrix-vector transpose sequence (the paper's Figure 11).
   Try:  plutocc --batch examples/*.c --batch-manifest manifest.json */
double A[N][N], x1[N], x2[N], y1[N], y2[N];
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    x1[i] = x1[i] + A[i][j] * y1[j];
for (k = 0; k < N; k++)
  for (l = 0; l < N; l++)
    x2[k] = x2[k] + A[l][k] * y2[l];
