/* Dense matrix-matrix multiplication.
   Try:  plutocc --tune --jobs 2 examples/matmul.c */
double A[N][N], B[N][N], C[N][N];
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    for (k = 0; k < N; k++)
      C[i][j] = C[i][j] + A[i][k] * B[k][j];
