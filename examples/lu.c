/* LU decomposition without pivoting (the paper's Figure 2).
   Try:  plutocc --batch examples/*.c -o out/ --cache-dir .pluto-cache */
double a[N][N];
for (k = 0; k < N; k++) {
  for (j = k + 1; j < N; j++)
    a[k][j] = a[k][j] / a[k][k];
  for (i = k + 1; i < N; i++)
    for (j = k + 1; j < N; j++)
      a[i][j] = a[i][j] - a[i][k] * a[k][j];
}
