/* Imperfectly nested 1-d Jacobi stencil (the paper's Figure 3).
   Try:  plutocc --tune --tune-report report.json examples/jacobi-1d.c */
double a[N], b[N];
for (t = 0; t < T; t++) {
  for (i = 2; i < N - 1; i++)
    b[i] = 0.333 * (a[i-1] + a[i] + a[i+1]);
  for (j = 2; j < N - 1; j++)
    a[j] = b[j];
}
