/* Dot product: a single-cell accumulator s[0] carries a flow dependence
   from every iteration to the next, so the classic model serializes the
   loop completely.  With reduction-aware scheduling the self-update is
   recognized as an associative sum and the loop parallelizes with an
   OpenMP reduction clause.
   Try:  plutocc examples/dot.c --reductions --check */
double a[N], b[N], s[2];
for (i = 0; i < N; i++)
  s[0] = s[0] + a[i] * b[i];
