type options = {
  tile : bool;
  tile_size : int option;
  tile_sizes : int array option;
  parallelize : bool;
  wavefront : int;
  intra_reorder : bool;
  unroll_jam : int;
  min_band_tile : int;
  auto : Pluto.Auto.config;
  context_min : int;
}

let default_options =
  {
    tile = true;
    tile_size = None;
    tile_sizes = None;
    parallelize = true;
    wavefront = 1;
    intra_reorder = true;
    unroll_jam = 1;
    min_band_tile = 2;
    auto = Pluto.Auto.default_config;
    context_min = 1;
  }

let paper_options = default_options

type result = {
  program : Ir.program;
  deps : Deps.t list;
  transform : Pluto.Types.transform;
  target : Pluto.Types.target;
  code : Codegen.t;
}

let narrays (p : Ir.program) = List.length p.Ir.arrays

(* Tile sizes: uniform, either given or from the rough cache model (an L1 of
   the simulated machine: 2 KB = 256 doubles). *)
let sizes_for options (b : Pluto.Tiling.band) na =
  match options.tile_sizes with
  | Some sizes when Array.length sizes > 0 ->
      (* rectangular tiles: one size per band level, the last size repeated
         for bands deeper than the given vector *)
      Array.init b.Pluto.Tiling.b_len (fun j ->
          sizes.(min j (Array.length sizes - 1)))
  | _ ->
      let tau =
        match options.tile_size with
        | Some t -> t
        | None ->
            Pluto.Tiling.default_tile_size ~band_width:b.Pluto.Tiling.b_len
              ~cache_elems:2048 ~narrays:na
      in
      Array.make b.Pluto.Tiling.b_len tau

let intra_levels_of_band ~(bands_sizes : (Pluto.Tiling.band * int array) list)
    (b : Pluto.Tiling.band) =
  let supers_before =
    Putil.sum_by
      (fun ((b' : Pluto.Tiling.band), _) ->
        if b'.Pluto.Tiling.b_start <= b.Pluto.Tiling.b_start then
          b'.Pluto.Tiling.b_len
        else 0)
      bands_sizes
  in
  List.init b.Pluto.Tiling.b_len (fun j ->
      supers_before + b.Pluto.Tiling.b_start + j)

let build_target options (tr : Pluto.Types.transform) =
  let bands = Pluto.Tiling.bands_of tr in
  let na = narrays tr.Pluto.Types.program in
  let tiled_bands =
    List.filter
      (fun (b : Pluto.Tiling.band) ->
        options.tile && b.Pluto.Tiling.b_len >= options.min_band_tile)
      bands
  in
  let bands_sizes = List.map (fun b -> (b, sizes_for options b na)) tiled_bands in
  let tgt =
    if bands_sizes = [] then Pluto.Tiling.untiled_target tr
    else Pluto.Tiling.tile tr ~bands_sizes
  in
  let tgt =
    if not options.parallelize then
      (* strip all parallel marks *)
      { tgt with Pluto.Types.tpar = Array.map (fun _ -> Pluto.Types.Seq) tgt.Pluto.Types.tpar }
    else begin
      match bands_sizes with
      | [] ->
          (* untiled: mark outer parallel loops *)
          Pluto.Tiling.mark_outer_parallel
            { tgt with Pluto.Types.tpar = Array.map (fun _ -> Pluto.Types.Seq) tgt.Pluto.Types.tpar }
            ~max_degrees:1
      | (b, _) :: _ ->
          let tgt =
            { tgt with Pluto.Types.tpar = Array.map (fun _ -> Pluto.Types.Seq) tgt.Pluto.Types.tpar }
          in
          let levels = Pluto.Tiling.target_band_levels tr ~bands_sizes b in
          (* if the first tile-space loop is parallel, just mark it; else
             wavefront (Algorithm 2) *)
          let first = List.hd levels in
          let first_parallel =
            match tgt.Pluto.Types.tkinds.(first) with
            | Pluto.Types.Loop { parallel; _ } -> parallel
            | Pluto.Types.Scalar -> false
          in
          if first_parallel then begin
            let tpar = Array.copy tgt.Pluto.Types.tpar in
            tpar.(first) <- Pluto.Types.Par;
            { tgt with Pluto.Types.tpar = tpar }
          end
          else if options.wavefront > 0 then
            Pluto.Tiling.wavefront tgt ~levels ~degrees:options.wavefront
          else tgt
    end
  in
  let tgt =
    if options.intra_reorder then
      List.fold_left
        (fun tgt (b, _) ->
          let intra_levels = intra_levels_of_band ~bands_sizes b in
          let has_parallel =
            List.exists
              (fun l ->
                match tgt.Pluto.Types.tkinds.(l) with
                | Pluto.Types.Loop { parallel = true; _ } -> true
                | _ -> false)
              intra_levels
          in
          if has_parallel then
            Pluto.Tiling.move_parallel_innermost tgt ~intra_levels
          else
            (* §5.4: force vectorization of the best spatial-locality level
               with an ignore-dependence pragma *)
            Pluto.Tiling.force_vectorize_innermost tgt ~intra_levels)
        tgt bands_sizes
    else tgt
  in
  tgt

let compile_with_transform ?(options = default_options) program deps transform =
  let target = build_target options transform in
  let code =
    Stats.time "pass.codegen" (fun () ->
        Codegen.generate ~context_min:options.context_min target)
  in
  let code =
    if options.unroll_jam > 1 then
      Codegen.with_unroll_innermost code ~factor:options.unroll_jam
    else code
  in
  { program; deps; transform; target; code }

let compile ?(options = default_options) program =
  let deps =
    Stats.time "pass.deps" (fun () ->
        Deps.compute ~input_deps:options.auto.Pluto.Auto.input_deps program)
  in
  let transform =
    Stats.time "pass.transform" (fun () ->
        Pluto.Auto.transform ~config:options.auto program deps)
  in
  compile_with_transform ~options program deps transform

let compile_source ?options ?name src =
  compile ?options (Frontend.parse_program ?name src)

let compile_original ?(options = default_options) program =
  let deps = Deps.compute program in
  let transform = Pluto.Auto.identity_transform ~config:options.auto program deps in
  let target = Pluto.Tiling.untiled_target transform in
  (* original code: no OpenMP marks (icc's auto-parallelizer fails on these) *)
  let target =
    { target with Pluto.Types.tpar = Array.map (fun _ -> Pluto.Types.Seq) target.Pluto.Types.tpar }
  in
  let code = Codegen.generate ~context_min:options.context_min target in
  { program; deps; transform; target; code }

(* ---------------- robust compilation: the degradation ladder ------------- *)

(* Run one rung, converting every failure mode into a diagnostic.  Anything
   that is not an explicit out-of-memory / interrupt is caught: the whole
   point of [compile_robust] is that no input can crash the process. *)
let attempt ~what f =
  match f () with
  | v -> Ok v
  | exception Diag.Budget_exceeded msg ->
      Error (Diag.errorf ~code:"budget" "%s: resource budget exceeded: %s" what msg)
  | exception Diag.Diagnostic d ->
      Error { d with Diag.message = what ^ ": " ^ d.Diag.message }
  | exception Pluto.Auto.No_transform msg ->
      Error (Diag.errorf ~code:"no-transform" "%s: no transformation found: %s" what msg)
  | exception Feautrier_core.No_schedule msg ->
      Error (Diag.errorf ~code:"no-schedule" "%s: no schedule found: %s" what msg)
  | exception Stack_overflow ->
      Error (Diag.errorf ~code:"internal" "%s: stack overflow" what)
  | exception ((Out_of_memory | Sys.Break) as e) -> raise e
  | exception e ->
      Error (Diag.errorf ~code:"internal" "%s: %s" what (Printexc.to_string e))

let demote (d : Diag.t) = { d with Diag.sev = Diag.Warning }
let promote (d : Diag.t) = { d with Diag.sev = Diag.Error }

let degraded ds =
  Diag.has_code ds "degraded-feautrier"
  || Diag.has_code ds "degraded-identity"
  || Diag.has_code ds "degraded-tune"

let verify ?param_lo ?param_hi ?claim_ctx ?params (r : result) =
  Verify.validate ?param_lo ?param_hi ?claim_ctx ?params r.program r.deps
    r.transform r.code

let compile_robust ?(options = default_options) ?(strict = false)
    ?(verify = false) program =
  let validate_rung ~what r =
    if not verify then Ok r
    else
      match
        Verify.validate r.program r.deps r.transform r.code
      with
      | rep when Verify.ok rep -> Ok r
      | rep ->
          Error
            (Diag.errorf ~code:"verify-failed"
               "%s: translation validation rejected the emitted code: %s" what
               (Format.asprintf "%a" Verify.pp_report rep))
      | exception ((Out_of_memory | Sys.Break) as e) -> raise e
      | exception e ->
          Error
            (Diag.errorf ~code:"verify-failed" "%s: validator raised: %s" what
               (Printexc.to_string e))
  in
  let rung ~what f =
    Result.bind (attempt ~what f) (validate_rung ~what)
  in
  let rung_auto () = compile ~options program in
  let rung_feautrier () =
    let deps = Deps.compute ~input_deps:false program in
    let fcfg =
      { Feautrier_core.config with
        Pluto.Auto.budget = options.auto.Pluto.Auto.budget;
        Pluto.Auto.search_time_limit_s =
          options.auto.Pluto.Auto.search_time_limit_s;
      }
    in
    let tr, fco = Feautrier_core.scheduling_transform ~config:fcfg program deps in
    let options = if fco then options else { options with tile = false } in
    compile_with_transform ~options program deps tr
  in
  let rung_identity () = compile_original ~options program in
  match rung ~what:"Pluto auto transformation" rung_auto with
  | Ok r -> Ok (r, [])
  | Error d1 ->
      if strict then Error [ promote d1 ]
      else begin
        let w1 =
          Diag.warningf ~code:"degraded-feautrier"
            "Pluto search failed; falling back to the Feautrier/FCO baseline \
             schedule"
        in
        match rung ~what:"Feautrier baseline scheduler" rung_feautrier with
        | Ok r -> Ok (r, [ demote d1; w1 ])
        | Error d2 -> (
            let w2 =
              Diag.warningf ~code:"degraded-identity"
                "Feautrier baseline failed; emitting the original program \
                 order (no transformation)"
            in
            match rung ~what:"identity schedule" rung_identity with
            | Ok r -> Ok (r, [ demote d1; w1; demote d2; w2 ])
            | Error d3 ->
                Error [ promote d1; promote d2; promote d3 ])
      end

let compile_source_robust ?options ?strict ?verify ?name src =
  match Frontend.parse_program_diag ?name src with
  | Error ds -> Error ds
  | Ok (program, warns) -> (
      match compile_robust ?options ?strict ?verify program with
      | Ok (r, ds) -> Ok (r, warns @ ds)
      | Error ds -> Error (warns @ ds))
