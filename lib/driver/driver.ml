type options = {
  tile : bool;
  tile_size : int option;
  tile_sizes : int array option;
  parallelize : bool;
  wavefront : int;
  intra_reorder : bool;
  unroll_jam : int;
  min_band_tile : int;
  auto : Pluto.Auto.config;
  context_min : int;
  fast_schedule : bool;
  break_fastpath : bool;
  reductions : bool;
}

let default_options =
  {
    tile = true;
    tile_size = None;
    tile_sizes = None;
    parallelize = true;
    wavefront = 1;
    intra_reorder = true;
    unroll_jam = 1;
    min_band_tile = 2;
    auto = Pluto.Auto.default_config;
    context_min = 1;
    fast_schedule = true;
    break_fastpath = false;
    reductions = false;
  }

let paper_options = default_options

type result = {
  program : Ir.program;
  deps : Deps.t list;
  transform : Pluto.Types.transform;
  target : Pluto.Types.target;
  code : Codegen.t;
}

let narrays (p : Ir.program) = List.length p.Ir.arrays

(* Tile sizes: uniform, either given or from the rough cache model (an L1 of
   the simulated machine: 2 KB = 256 doubles). *)
let sizes_for options (b : Pluto.Tiling.band) na =
  match options.tile_sizes with
  | Some sizes when Array.length sizes > 0 ->
      (* rectangular tiles: one size per band level, the last size repeated
         for bands deeper than the given vector *)
      Array.init b.Pluto.Tiling.b_len (fun j ->
          sizes.(min j (Array.length sizes - 1)))
  | _ ->
      let tau =
        match options.tile_size with
        | Some t -> t
        | None ->
            Pluto.Tiling.default_tile_size ~band_width:b.Pluto.Tiling.b_len
              ~cache_elems:2048 ~narrays:na
      in
      Array.make b.Pluto.Tiling.b_len tau

let intra_levels_of_band ~(bands_sizes : (Pluto.Tiling.band * int array) list)
    (b : Pluto.Tiling.band) =
  let supers_before =
    Putil.sum_by
      (fun ((b' : Pluto.Tiling.band), _) ->
        if b'.Pluto.Tiling.b_start <= b.Pluto.Tiling.b_start then
          b'.Pluto.Tiling.b_len
        else 0)
      bands_sizes
  in
  List.init b.Pluto.Tiling.b_len (fun j ->
      supers_before + b.Pluto.Tiling.b_start + j)

let build_target options (tr : Pluto.Types.transform) =
  let bands = Pluto.Tiling.bands_of tr in
  let na = narrays tr.Pluto.Types.program in
  let tiled_bands =
    List.filter
      (fun (b : Pluto.Tiling.band) ->
        options.tile && b.Pluto.Tiling.b_len >= options.min_band_tile)
      bands
  in
  let bands_sizes = List.map (fun b -> (b, sizes_for options b na)) tiled_bands in
  let tgt =
    if bands_sizes = [] then Pluto.Tiling.untiled_target tr
    else Pluto.Tiling.tile tr ~bands_sizes
  in
  let tgt =
    if not options.parallelize then
      (* strip all parallel marks *)
      { tgt with Pluto.Types.tpar = Array.map (fun _ -> Pluto.Types.Seq) tgt.Pluto.Types.tpar }
    else begin
      match bands_sizes with
      | [] ->
          (* untiled: mark outer parallel loops *)
          Pluto.Tiling.mark_outer_parallel
            { tgt with Pluto.Types.tpar = Array.map (fun _ -> Pluto.Types.Seq) tgt.Pluto.Types.tpar }
            ~max_degrees:1
      | (b, _) :: _ ->
          let tgt =
            { tgt with Pluto.Types.tpar = Array.map (fun _ -> Pluto.Types.Seq) tgt.Pluto.Types.tpar }
          in
          let levels = Pluto.Tiling.target_band_levels tr ~bands_sizes b in
          (* if the first tile-space loop is parallel, just mark it; else
             wavefront (Algorithm 2) *)
          let first = List.hd levels in
          let first_parallel =
            match tgt.Pluto.Types.tkinds.(first) with
            | Pluto.Types.Loop { parallel; _ } -> parallel
            | Pluto.Types.Scalar -> false
          in
          if first_parallel then begin
            let tpar = Array.copy tgt.Pluto.Types.tpar in
            tpar.(first) <- Pluto.Types.Par;
            { tgt with Pluto.Types.tpar = tpar }
          end
          else if options.wavefront > 0 then
            Pluto.Tiling.wavefront tgt ~levels ~degrees:options.wavefront
          else tgt
    end
  in
  let tgt =
    if options.intra_reorder then
      List.fold_left
        (fun tgt (b, _) ->
          let intra_levels = intra_levels_of_band ~bands_sizes b in
          let has_parallel =
            List.exists
              (fun l ->
                match tgt.Pluto.Types.tkinds.(l) with
                | Pluto.Types.Loop { parallel = true; _ } -> true
                | _ -> false)
              intra_levels
          in
          if has_parallel then
            Pluto.Tiling.move_parallel_innermost tgt ~intra_levels
          else
            (* §5.4: force vectorization of the best spatial-locality level
               with an ignore-dependence pragma *)
            Pluto.Tiling.force_vectorize_innermost tgt ~intra_levels)
        tgt bands_sizes
    else tgt
  in
  tgt

(* ------------------------ OpenMP reduction clauses ------------------------ *)

(* Per target level, the [reduction(op:array)] clauses the C printer must
   attach to a parallel loop at that level.  A parallel level [l] needs a
   clause for reduction statement [S] exactly when it {e carries} S's marked
   self-dependence under the final schedule: two instances of S with equal
   scattering prefix 0..l-1, a strictly positive difference at [l], and the
   same accumulator cell.  That is one integer-emptiness test per (level,
   statement) pair over two copies of S's extended (post-tiling) domain —
   e.g. MVT's outer-parallel [x1[i] += ...] is empty here (different [i] ⇒
   different cell ⇒ no clause) while its inner [j]-parallel variant is not.
   The clause privatizes the whole array (OpenMP 4.5 C array reductions),
   which is correct for cell accumulators too: private copies start at the
   op's identity and the combiner folds per-thread contributions into the
   live-in values.  A solver-budget blowup conservatively attaches the
   clause — a superfluous clause is semantically harmless, a missing one is
   a race. *)
let reduction_clauses ~ctx (tgt : Pluto.Types.target) (deps : Deps.t list) =
  let nlevels = tgt.Pluto.Types.tnlevels in
  let clauses = Array.make nlevels [] in
  let np = List.length tgt.Pluto.Types.tprogram.Ir.params in
  let red_stmts =
    List.sort_uniq compare
      (List.filter_map
         (fun (d : Deps.t) ->
           if d.Deps.reduction then Some d.Deps.src.Ir.id else None)
         deps)
  in
  List.iter
    (fun sid ->
      let ts = List.nth tgt.Pluto.Types.tstmts sid in
      match Ir.reduction_of_stmt ts.Pluto.Types.stmt with
      | None -> ()
      | Some r ->
          let s = ts.Pluto.Types.stmt in
          let next = Array.length ts.Pluto.Types.ext_iters in
          let m = Ir.depth s in
          let nv = (2 * next) + np in
          let width = nv + 1 in
          (* variables: [ext_iters copy 1 @ ext_iters copy 2 @ params] *)
          let embed offset (c : Polyhedra.constr) =
            let coefs = Vec.zero width in
            for j = 0 to next - 1 do
              coefs.(offset + j) <- c.Polyhedra.coefs.(j)
            done;
            for j = 0 to np - 1 do
              coefs.((2 * next) + j) <- c.Polyhedra.coefs.(next + j)
            done;
            coefs.(width - 1) <- c.Polyhedra.coefs.(next + np);
            { c with Polyhedra.coefs }
          in
          let base_cs =
            List.map (embed 0) ts.Pluto.Types.ext_domain.Polyhedra.cs
            @ List.map (embed next) ts.Pluto.Types.ext_domain.Polyhedra.cs
          in
          (* same accumulator cell in both copies (the original iterators are
             the trailing [m] extended iterators) *)
          let acc_eqs =
            List.map
              (fun k ->
                let row = r.Ir.red_acc.Ir.map.(k) in
                let coefs = Vec.zero width in
                for j = 0 to m - 1 do
                  coefs.(next - m + j) <- Bigint.of_int (-row.(j));
                  coefs.(next + (next - m) + j) <- Bigint.of_int row.(j)
                done;
                Polyhedra.eq coefs)
              (Putil.range (Array.length r.Ir.red_acc.Ir.map))
          in
          let fix =
            List.map
              (fun j ->
                let c = Vec.zero width in
                c.((2 * next) + j) <- Bigint.one;
                c.(width - 1) <- Bigint.of_int (-ctx);
                Polyhedra.eq c)
              (Putil.range np)
          in
          let trow_delta l =
            let row = ts.Pluto.Types.trows.(l) in
            let coefs = Vec.zero width in
            for j = 0 to next - 1 do
              coefs.(j) <- Bigint.of_int (-row.(j));
              coefs.(next + j) <- Bigint.of_int row.(j)
            done;
            coefs
          in
          for l = 0 to nlevels - 1 do
            if tgt.Pluto.Types.tpar.(l) = Pluto.Types.Par then begin
              let prefix_eqs =
                List.map (fun k -> Polyhedra.eq (trow_delta k)) (Putil.range l)
              in
              let ge1 =
                let c = trow_delta l in
                c.(width - 1) <- Bigint.minus_one;
                Polyhedra.ge c
              in
              let sys =
                Polyhedra.of_constrs nv
                  (base_cs @ acc_eqs @ fix @ prefix_eqs @ [ ge1 ])
              in
              let carries =
                try
                  if Polyhedra.is_empty_cached ~integer:true sys then false
                  else Option.is_some (Milp.feasible_cached sys)
                with Diag.Budget_exceeded _ -> true
              in
              if carries then begin
                let clause =
                  (Ir.binop_symbol r.Ir.red_op, s.Ir.lhs.Ir.arr)
                in
                if not (List.mem clause clauses.(l)) then
                  clauses.(l) <- clauses.(l) @ [ clause ]
              end
            end
          done)
    red_stmts;
  clauses

let compile_with_transform ?(options = default_options) program deps transform =
  let target = build_target options transform in
  let code =
    Stats.time "pass.codegen" (fun () ->
        Codegen.generate ~context_min:options.context_min target)
  in
  let code =
    if options.unroll_jam > 1 then
      Codegen.with_unroll_innermost code ~factor:options.unroll_jam
    else code
  in
  let code =
    if options.reductions then
      Codegen.with_reductions code
        (Stats.time "pass.reduction_clauses" (fun () ->
             reduction_clauses ~ctx:options.auto.Pluto.Auto.ctx target deps))
    else code
  in
  { program; deps; transform; target; code }

let compile ?(options = default_options) program =
  let deps =
    Stats.time "pass.deps" (fun () ->
        Deps.compute ~input_deps:options.auto.Pluto.Auto.input_deps
          ~reductions:options.reductions program)
  in
  let transform =
    Stats.time "pass.transform" (fun () ->
        Pluto.Auto.transform ~config:options.auto program deps)
  in
  compile_with_transform ~options program deps transform

let compile_source ?options ?name src =
  compile ?options (Frontend.parse_program ?name src)

let compile_original ?(options = default_options) program =
  let deps = Deps.compute ~reductions:options.reductions program in
  let transform = Pluto.Auto.identity_transform ~config:options.auto program deps in
  let target = Pluto.Tiling.untiled_target transform in
  (* original code: no OpenMP marks (icc's auto-parallelizer fails on these) *)
  let target =
    { target with Pluto.Types.tpar = Array.map (fun _ -> Pluto.Types.Seq) target.Pluto.Types.tpar }
  in
  let code = Codegen.generate ~context_min:options.context_min target in
  { program; deps; transform; target; code }

(* ---------------- robust compilation: the degradation ladder ------------- *)

(* Run one rung, converting every failure mode into a diagnostic.  Anything
   that is not an explicit out-of-memory / interrupt is caught: the whole
   point of [compile_robust] is that no input can crash the process. *)
let attempt ~what f =
  match f () with
  | v -> Ok v
  | exception Diag.Budget_exceeded msg ->
      Error (Diag.errorf ~code:"budget" "%s: resource budget exceeded: %s" what msg)
  | exception Diag.Diagnostic d ->
      Error { d with Diag.message = what ^ ": " ^ d.Diag.message }
  | exception Pluto.Auto.No_transform msg ->
      Error (Diag.errorf ~code:"no-transform" "%s: no transformation found: %s" what msg)
  | exception Feautrier_core.No_schedule msg ->
      Error (Diag.errorf ~code:"no-schedule" "%s: no schedule found: %s" what msg)
  | exception Stack_overflow ->
      Error (Diag.errorf ~code:"internal" "%s: stack overflow" what)
  | exception ((Out_of_memory | Sys.Break) as e) -> raise e
  | exception e ->
      Error (Diag.errorf ~code:"internal" "%s: %s" what (Printexc.to_string e))

let demote (d : Diag.t) = { d with Diag.sev = Diag.Warning }
let promote (d : Diag.t) = { d with Diag.sev = Diag.Error }

(* ------------------------- the fast scheduling rung ----------------------- *)

(* Cached outcome of the fast matcher for one (program, options) pair.
   Accepts are stored only after translation validation passed, so a warm
   hit skips both the matcher and the validator; rejects are cached too —
   re-deriving "this program needs the ILP" costs as much as the first
   attempt did. *)
type fast_cached =
  | Fast_accepted of {
      fc_kinds : Pluto.Types.level_kind array;
      fc_rows : int array array array;
      fc_satisfied : (int * int) list;  (* sorted (dep id, level) *)
    }
  | Fast_rejected of string

let fast_store_kind = "fastpath"

(* The cache key covers the whole compilation request: any option (tile
   sizes, bounds, wavefronting...) changes the generated code the validator
   signed off on. *)
let fast_key (program : Ir.program) (options : options) =
  match Marshal.to_string (program, options) [] with
  | s -> Some (Digest.to_hex (Digest.string s))
  | exception _ -> None

let cached_of_transform (t : Pluto.Types.transform) =
  let sat =
    Hashtbl.fold (fun d l acc -> (d, l) :: acc) t.Pluto.Types.satisfied_at []
  in
  Fast_accepted
    {
      fc_kinds = t.Pluto.Types.kinds;
      fc_rows = t.Pluto.Types.rows;
      fc_satisfied = List.sort compare sat;
    }

let transform_of_cached program deps = function
  | Fast_rejected reason -> Error reason
  | Fast_accepted { fc_kinds; fc_rows; fc_satisfied } ->
      let satisfied_at = Hashtbl.create 16 in
      List.iter (fun (d, l) -> Hashtbl.replace satisfied_at d l) fc_satisfied;
      Ok
        {
          Pluto.Types.program;
          deps;
          nlevels = Array.length fc_kinds;
          kinds = fc_kinds;
          rows = fc_rows;
          satisfied_at;
        }

let loop_levels (t : Pluto.Types.transform) =
  Array.fold_left
    (fun a k ->
      match k with Pluto.Types.Loop _ -> a + 1 | Pluto.Types.Scalar -> a)
    0 t.Pluto.Types.kinds

(* --break-fastpath: deliberately corrupt an accepted fast schedule so that
   only the validator stands between it and the output — negate every
   statement's row at the outermost loop level that strongly satisfies a
   dependence (reversing those dependences), falling back to the first loop
   level when satisfaction is all-scalar. *)
let break_transform (t : Pluto.Types.transform) =
  let is_loop l =
    match t.Pluto.Types.kinds.(l) with
    | Pluto.Types.Loop _ -> true
    | Pluto.Types.Scalar -> false
  in
  let target = ref None in
  Hashtbl.iter
    (fun _ l ->
      if is_loop l then
        match !target with
        | Some b when b <= l -> ()
        | _ -> target := Some l)
    t.Pluto.Types.satisfied_at;
  if !target = None then
    Array.iteri
      (fun l _ -> if !target = None && is_loop l then target := Some l)
      t.Pluto.Types.kinds;
  match !target with
  | None -> t
  | Some l ->
      let rows =
        Array.map
          (fun (srows : int array array) ->
            Array.mapi
              (fun i row ->
                if i = l then Array.map (fun c -> -c) row else row)
              srows)
          t.Pluto.Types.rows
      in
      { t with Pluto.Types.rows = rows }

(* One attempt at the fast rung: matcher (or cache) -> codegen -> translation
   validation.  [Error reason] is a clean rejection (fall back to the ILP);
   exceptions are the caller's [attempt] wall's problem.  [revalidate] forces
   validation even on a warm cache hit (the [~verify] contract of
   [compile_robust] is that every returned result was validated this run). *)
let try_fast ~options ~revalidate program =
  let deps =
    Stats.time "pass.deps" (fun () ->
        Deps.compute ~input_deps:options.auto.Pluto.Auto.input_deps
          ~reductions:options.reductions program)
  in
  let key = if options.break_fastpath then None else fast_key program options in
  let cache_read () =
    match key with
    | None -> None
    | Some key ->
        (Store.read_versioned ~version:Pluto.Fastmatch.version
           ~kind:fast_store_kind ~key
          : fast_cached option)
  in
  let cache_write v =
    match key with
    | None -> ()
    | Some key ->
        Store.write_versioned ~version:Pluto.Fastmatch.version
          ~kind:fast_store_kind ~key v
  in
  let finish ~validated tr =
    let r = compile_with_transform ~options program deps tr in
    let validate () =
      match Verify.validate r.program r.deps r.transform r.code with
      | rep when Verify.ok rep -> Ok ()
      | rep ->
          Error
            (Format.asprintf
               "translation validation rejected the fast schedule: %a"
               Verify.pp_report rep)
    in
    let verdict = if validated && not revalidate then Ok () else validate () in
    match verdict with
    | Ok () ->
        if not validated then cache_write (cached_of_transform tr);
        (* a lower-bound estimate: the exact search solves at least one
           hyperplane lexmin ILP per loop level it emits *)
        Stats.add "fastpath.ilp_avoided" (loop_levels tr);
        Ok r
    | Error reason -> Error reason
  in
  match cache_read () with
  | Some (Fast_rejected reason) -> Error reason
  | Some (Fast_accepted _ as c) -> (
      match transform_of_cached program deps c with
      | Error reason -> Error reason
      | Ok tr -> finish ~validated:true tr)
  | None -> (
      match
        Stats.time "pass.transform" (fun () ->
            Pluto.Fastmatch.schedule ~config:options.auto program deps)
      with
      | exception Pluto.Fastmatch.No_fast_schedule reason ->
          cache_write (Fast_rejected reason);
          Error reason
      | tr ->
          let tr =
            if options.break_fastpath then break_transform tr else tr
          in
          (* a deliberately broken schedule must never be published *)
          finish ~validated:false tr)

let degraded ds =
  Diag.has_code ds "degraded-feautrier"
  || Diag.has_code ds "degraded-identity"
  || Diag.has_code ds "degraded-tune"

let verify ?param_lo ?param_hi ?claim_ctx ?params (r : result) =
  Verify.validate ?param_lo ?param_hi ?claim_ctx ?params r.program r.deps
    r.transform r.code

let compile_robust ?(options = default_options) ?(strict = false)
    ?(verify = false) program =
  let validate_rung ~what r =
    if not verify then Ok r
    else
      match
        Verify.validate r.program r.deps r.transform r.code
      with
      | rep when Verify.ok rep -> Ok r
      | rep ->
          Error
            (Diag.errorf ~code:"verify-failed"
               "%s: translation validation rejected the emitted code: %s" what
               (Format.asprintf "%a" Verify.pp_report rep))
      | exception ((Out_of_memory | Sys.Break) as e) -> raise e
      | exception e ->
          Error
            (Diag.errorf ~code:"verify-failed" "%s: validator raised: %s" what
               (Printexc.to_string e))
  in
  let rung ~what f =
    Result.bind (attempt ~what f) (validate_rung ~what)
  in
  let rung_auto () = compile ~options program in
  let rung_feautrier () =
    let deps =
      Deps.compute ~input_deps:false ~reductions:options.reductions program
    in
    let fcfg =
      { Feautrier_core.config with
        Pluto.Auto.budget = options.auto.Pluto.Auto.budget;
        Pluto.Auto.search_time_limit_s =
          options.auto.Pluto.Auto.search_time_limit_s;
      }
    in
    let tr, fco = Feautrier_core.scheduling_transform ~config:fcfg program deps in
    let options = if fco then options else { options with tile = false } in
    compile_with_transform ~options program deps tr
  in
  let rung_identity () = compile_original ~options program in
  (* Top rung: the fast (fusion + dimension-matching) scheduler.  Its
     accepts are translation-validated before being trusted; every other
     outcome — clean rejection, validation failure, crash — is one
     structured warning and a fall-through to the exact ILP below. *)
  let fast =
    if not options.fast_schedule then None
    else begin
      Stats.incr "fastpath.attempts";
      match
        attempt ~what:"fast scheduling path" (fun () ->
            try_fast ~options ~revalidate:verify program)
      with
      | Ok (Ok r) ->
          Stats.incr "fastpath.accepts";
          Some (Ok r)
      | Ok (Error reason) ->
          Stats.incr "fastpath.rejects";
          Some (Error reason)
      | Error d ->
          Stats.incr "fastpath.rejects";
          Some (Error d.Diag.message)
    end
  in
  match fast with
  | Some (Ok r) ->
      Ok
        ( r,
          [
            Diag.note ~code:"fastpath-accepted"
              "fast scheduling path accepted a validated permutation/fusion \
               schedule (no ILP solves)";
          ] )
  | (None | Some (Error _)) as fast -> (
      let fast_warns =
        match fast with
        | Some (Error reason) ->
            [
              Diag.warningf ~code:"fastpath-rejected"
                "fast scheduling path rejected (%s); falling back to the \
                 exact ILP"
                reason;
            ]
        | _ -> []
      in
      match rung ~what:"Pluto auto transformation" rung_auto with
      | Ok r -> Ok (r, fast_warns)
      | Error d1 ->
          if strict then Error [ promote d1 ]
          else begin
            let w1 =
              Diag.warningf ~code:"degraded-feautrier"
                "Pluto search failed; falling back to the Feautrier/FCO \
                 baseline schedule"
            in
            match rung ~what:"Feautrier baseline scheduler" rung_feautrier with
            | Ok r -> Ok (r, fast_warns @ [ demote d1; w1 ])
            | Error d2 -> (
                let w2 =
                  Diag.warningf ~code:"degraded-identity"
                    "Feautrier baseline failed; emitting the original \
                     program order (no transformation)"
                in
                match rung ~what:"identity schedule" rung_identity with
                | Ok r -> Ok (r, fast_warns @ [ demote d1; w1; demote d2; w2 ])
                | Error d3 -> Error [ promote d1; promote d2; promote d3 ])
          end)

let compile_source_robust ?options ?strict ?verify ?name src =
  match Frontend.parse_program_diag ?name src with
  | Error ds -> Error ds
  | Ok (program, warns) -> (
      match compile_robust ?options ?strict ?verify program with
      | Ok (r, ds) -> Ok (r, warns @ ds)
      | Error ds -> Error (warns @ ds))
