(** The Feautrier + Griebl-FCO scheduler core — an automatic
    minimum-latency affine scheduler with forward-communication-only
    completion (the "scheduling-based (time tiling)" comparison scheme of
    §7).  It lives next to {!Driver} (rather than in the baselines library)
    because the driver's graceful-degradation ladder uses it as the middle
    rung between the Pluto search and the identity schedule; the
    {!Feautrier} module in [lib/baselines] re-exports it together with the
    end-to-end [compile] wrapper.

    Feautrier's algorithm ([20, 21] in the paper) finds minimum-latency
    affine schedules: a 1-d schedule θ_S per statement such that every
    dependence is strongly satisfied (δ_e >= 1 everywhere), with the latency
    bound u·p + w >= θ_S(i) minimized (the same Farkas machinery as the
    Pluto search, §3.2).  When no 1-d schedule exists, the classic greedy
    multidimensional extension applies: satisfy as many dependences as
    possible per dimension (here: require δ >= 0 for all, δ >= 1 for a
    maximal feasible subset found greedily) and recurse on the rest.

    Griebl's forward-communication-only completion then pads every statement
    to full rank with additional rows that keep all dependences non-negative
    (δ >= 0), which is exactly what enables time tiling of the schedule
    dimension: the resulting rows form a permutable band in our terminology.

    The schedules found this way are typically non-unimodular (θ = 2k + ...)
    — the "code complexity" the paper blames for the scheme's slowdowns
    shows up as modulo guards in the generated code. *)

open Pluto.Types

(* schedule coefficients use a slightly larger space than the Pluto search
   since θ must cover whole dependence chains *)
let config =
  {
    Pluto.Auto.default_config with
    Pluto.Auto.coeff_bound = 4;
    shift_bound = 10;
    input_deps = false;
  }

(* ILP layout (like Auto's, but local): [u (np); w; per statement: c's, c0].
   Schedules have no use for the secondary bound. *)
type layout = { nilp : int; np : int; stmt_off : int array; stmt_depth : int array }

let make_layout (p : Ir.program) =
  let np = Ir.nparams p in
  let n = List.length p.Ir.stmts in
  let stmt_off = Array.make n 0 and stmt_depth = Array.make n 0 in
  let off = ref (np + 1) in
  List.iter
    (fun s ->
      stmt_off.(s.Ir.id) <- !off;
      stmt_depth.(s.Ir.id) <- Ir.depth s;
      off := !off + Ir.depth s + 1)
    p.Ir.stmts;
  { nilp = !off; np; stmt_off; stmt_depth }

(* δ_e as a symbolic form over the local layout *)
let delta_form lay (d : Deps.t) =
  let ms = Ir.depth d.Deps.src and mt = Ir.depth d.Deps.dst in
  let width = ms + mt + lay.np + 1 in
  let form = Array.init width (fun _ -> Array.make (lay.nilp + 1) 0) in
  let off_s = lay.stmt_off.(d.Deps.src.Ir.id) in
  let off_t = lay.stmt_off.(d.Deps.dst.Ir.id) in
  for j = 0 to ms - 1 do
    form.(j).(off_s + j) <- form.(j).(off_s + j) - 1
  done;
  for j = 0 to mt - 1 do
    form.(ms + j).(off_t + j) <- form.(ms + j).(off_t + j) + 1
  done;
  form.(width - 1).(off_t + mt) <- form.(width - 1).(off_t + mt) + 1;
  form.(width - 1).(off_s + ms) <- form.(width - 1).(off_s + ms) - 1;
  form

(* the same form minus 1: δ - 1 >= 0 is strong satisfaction *)
let delta_minus_one lay d =
  let f = delta_form lay d in
  let last = Array.length f - 1 in
  f.(last).(lay.nilp) <- f.(last).(lay.nilp) - 1;
  f

(* latency bounding: ∀ i in D_S : u·p + w - θ_S(i) >= 0 *)
let latency_form lay (s : Ir.stmt) =
  let m = Ir.depth s in
  let width = m + lay.np + 1 in
  let form = Array.init width (fun _ -> Array.make (lay.nilp + 1) 0) in
  let off = lay.stmt_off.(s.Ir.id) in
  for j = 0 to m - 1 do
    form.(j).(off + j) <- -1
  done;
  for j = 0 to lay.np - 1 do
    form.(m + j).(j) <- 1
  done;
  form.(width - 1).(lay.np) <- 1;
  form.(width - 1).(off + m) <- -1;
  form

let var_bounds cfg lay =
  let n = lay.nilp in
  let ub j b =
    let r = Vec.zero (n + 1) in
    r.(j) <- Bigint.minus_one;
    r.(n) <- Bigint.of_int b;
    Polyhedra.ge r
  in
  let cs = ref [] in
  for j = 0 to lay.np - 1 do
    cs := ub j cfg.Pluto.Auto.u_bound :: !cs
  done;
  cs := ub lay.np cfg.Pluto.Auto.w_bound :: !cs;
  Array.iteri
    (fun id off ->
      for j = 0 to lay.stmt_depth.(id) - 1 do
        cs := ub (off + j) cfg.Pluto.Auto.coeff_bound :: !cs
      done;
      cs := ub (off + lay.stmt_depth.(id)) cfg.Pluto.Auto.shift_bound :: !cs)
    lay.stmt_off;
  Polyhedra.of_constrs n !cs

(* rows (c's + c0 per statement) from an ILP point *)
let rows_of lay (x : Bigint.t array) =
  Array.mapi
    (fun id off ->
      let m = lay.stmt_depth.(id) in
      Array.init (m + 1) (fun j -> Bigint.to_int x.(off + j)))
    lay.stmt_off

exception No_schedule of string

(* Greedy multidimensional schedule: at each dimension, require δ >= 0 for
   all unsatisfied deps, δ >= 1 for a greedily maximal subset, and minimize
   the latency bound (u, w first in the lexmin).  [strong.(i)] caches the
   Farkas systems. *)
let schedule_rows ?(config = config) (p : Ir.program) (deps : Deps.t list) =
  let budget = config.Pluto.Auto.budget in
  let lay = make_layout p in
  let legality = List.filter Deps.is_legality deps in
  let weak =
    List.map
      (fun d ->
        (d, Pluto.Farkas.constraints ~nilp:lay.nilp ~form:(delta_form lay d) ~poly:d.Deps.poly))
      legality
  in
  let strong =
    List.map
      (fun d ->
        (d.Deps.id, Pluto.Farkas.constraints ~nilp:lay.nilp ~form:(delta_minus_one lay d) ~poly:d.Deps.poly))
      legality
  in
  let latency =
    List.fold_left
      (fun sys s ->
        Polyhedra.meet sys
          (Pluto.Farkas.constraints ~nilp:lay.nilp ~form:(latency_form lay s)
             ~poly:
               (let m = Ir.depth s in
                ignore m;
                s.Ir.domain)))
      (var_bounds config lay) p.Ir.stmts
  in
  let order = Putil.range (lay.np + 1) in
  let dims = ref [] in
  let unsatisfied = ref (List.map (fun d -> d.Deps.id) legality) in
  let deadline =
    Option.map
      (fun dt -> Sys.time () +. dt)
      config.Pluto.Auto.search_time_limit_s
  in
  let check_deadline () =
    match deadline with
    | Some d when Sys.time () > d ->
        raise
          (Diag.Budget_exceeded
             (Printf.sprintf "Feautrier schedule search exceeded %gs"
                (Option.get config.Pluto.Auto.search_time_limit_s)))
    | _ -> ()
  in
  let guard = ref 0 in
  while !unsatisfied <> [] && !guard < 8 do
    incr guard;
    check_deadline ();
    (* base: δ >= 0 for every unsatisfied dep + latency bound *)
    let base =
      List.fold_left
        (fun sys (d, cs) ->
          if List.mem d.Deps.id !unsatisfied then Polyhedra.meet sys cs else sys)
        latency weak
    in
    (* greedily add strong satisfaction for as many deps as possible *)
    let chosen = ref [] in
    let sys = ref base in
    List.iter
      (fun id ->
        check_deadline ();
        let cs = List.assoc id strong in
        let candidate = Polyhedra.meet !sys cs in
        match Milp.lexmin_order ~nonneg:true ~budget candidate order with
        | Some _ ->
            sys := candidate;
            chosen := id :: !chosen
        | None -> ())
      !unsatisfied;
    if !chosen = [] then
      raise (No_schedule "no dependence can be strongly satisfied");
    (* solve with the full lexmin to fix all coefficients *)
    let full_order =
      order
      @ List.concat
          (Array.to_list
             (Array.mapi
                (fun id off ->
                  List.rev (List.init lay.stmt_depth.(id) (fun j -> off + j))
                  @ [ off + lay.stmt_depth.(id) ])
                lay.stmt_off))
    in
    (match Milp.lexmin_order ~nonneg:true ~budget !sys full_order with
    | None -> raise (No_schedule "greedy system became infeasible")
    | Some x ->
        dims := rows_of lay x :: !dims;
        unsatisfied :=
          List.filter (fun id -> not (List.mem id !chosen)) !unsatisfied)
  done;
  if !unsatisfied <> [] then raise (No_schedule "greedy scheduler did not converge");
  List.rev !dims

(* FCO completion: pad every statement to full rank with additional rows
   that keep every dependence forward (δ >= 0 via the weak Farkas systems)
   and are linearly independent of the rows found so far — Griebl's
   forward-communication-only condition, which is what makes the schedule
   band time-tilable.  When no such row exists the completion falls back to
   arbitrary (unit) rows, which are legal for execution order (every
   dependence is already strongly satisfied by a schedule dimension) but not
   for tiling; the caller is told via [fco]. *)

let independence_constraints lay (hmats : int array list array) =
  let n = lay.nilp in
  let cs = ref [] in
  Array.iteri
    (fun id rows ->
      let m = lay.stmt_depth.(id) in
      if m > 0 then begin
        let rank rs =
          if rs = [] then 0
          else Mat.rank (Mat.of_int_rows (Array.of_list rs))
        in
        let lin = List.map (fun r -> Array.sub r 0 m) rows in
        if rank lin < m then begin
          let ortho =
            if lin = [] then
              List.map
                (fun i ->
                  Vec.init m (fun j -> if i = j then Bigint.one else Bigint.zero))
                (Putil.range m)
            else Mat.orthogonal_complement (Mat.of_int_rows (Array.of_list lin))
          in
          if ortho <> [] then begin
            let off = lay.stmt_off.(id) in
            let sum = Vec.zero (n + 1) in
            List.iter
              (fun (row : Vec.t) ->
                let r = Vec.zero (n + 1) in
                for j = 0 to m - 1 do
                  r.(off + j) <- row.(j);
                  sum.(off + j) <- Bigint.add sum.(off + j) row.(j)
                done;
                cs := Polyhedra.ge r :: !cs)
              ortho;
            sum.(n) <- Bigint.minus_one;
            cs := Polyhedra.ge sum :: !cs
          end
        end
      end)
    hmats;
  Polyhedra.of_constrs n !cs

(** [scheduling_transform p deps] — the full §7 baseline: Feautrier schedule
    dimensions first, Griebl FCO completion to full rank.  Returns the
    transform and whether the completion satisfied the FCO condition (only
    then is time tiling of the band legal). *)
let scheduling_transform ?(config = config) (p : Ir.program) (deps : Deps.t list) :
    transform * bool =
  let budget = config.Pluto.Auto.budget in
  let sched = schedule_rows ~config p deps in
  let lay = make_layout p in
  let legality = List.filter Deps.is_legality deps in
  let weak_all =
    List.fold_left
      (fun sys d ->
        Polyhedra.meet sys
          (Pluto.Farkas.constraints ~nilp:lay.nilp ~form:(delta_form lay d)
             ~poly:d.Deps.poly))
      (var_bounds config lay) legality
  in
  let nstmts = List.length p.Ir.stmts in
  let hmats =
    Array.init nstmts (fun id -> List.map (fun lv -> lv.(id)) sched)
  in
  let full_rank () =
    List.for_all
      (fun (s : Ir.stmt) ->
        let m = Ir.depth s in
        m = 0
        || Mat.rank
             (Mat.of_int_rows
                (Array.of_list
                   (List.map (fun r -> Array.sub r 0 m) hmats.(s.Ir.id))))
           = m)
      p.Ir.stmts
  in
  let fco = ref true in
  let extra = ref [] in
  let order =
    Putil.range (lay.np + 1)
    @ List.concat
        (Array.to_list
           (Array.mapi
              (fun id off ->
                List.rev (List.init lay.stmt_depth.(id) (fun j -> off + j))
                @ [ off + lay.stmt_depth.(id) ])
              lay.stmt_off))
  in
  let guard = ref 0 in
  while (not (full_rank ())) && !guard < 6 do
    incr guard;
    let sys = Polyhedra.meet weak_all (independence_constraints lay hmats) in
    match Milp.lexmin_order ~nonneg:true ~budget sys order with
    | Some x ->
        let rows = rows_of lay x in
        extra := !extra @ [ rows ];
        Array.iteri (fun id r -> hmats.(id) <- hmats.(id) @ [ r ]) rows
    | None ->
        (* no FCO row exists: fall back to unit completion (legal order,
           no time tiling) *)
        fco := false;
        List.iter
          (fun (s : Ir.stmt) ->
            let m = Ir.depth s in
            let rank rs =
              if rs = [] then 0
              else Mat.rank (Mat.of_int_rows (Array.of_list rs))
            in
            let lin () = List.map (fun r -> Array.sub r 0 m) hmats.(s.Ir.id) in
            for j = 0 to m - 1 do
              let unit = Array.init m (fun q -> if q = j then 1 else 0) in
              if rank (lin () @ [ unit ]) > rank (lin ()) then begin
                let row = Array.make (m + 1) 0 in
                row.(j) <- 1;
                hmats.(s.Ir.id) <- hmats.(s.Ir.id) @ [ row ]
              end
            done)
          p.Ir.stmts;
        (* pad extra levels statement-wise below *)
        ()
  done;
  let nlevels =
    Array.fold_left (fun acc l -> max acc (List.length l)) 0 hmats
  in
  let rows =
    Array.mapi
      (fun id lst ->
        let m = lay.stmt_depth.(id) in
        let arr = Array.of_list lst in
        Array.init nlevels (fun l ->
            if l < Array.length arr then arr.(l) else Array.make (m + 1) 0))
      hmats
  in
  (Pluto.Auto.annotate p deps ~rows ~scalar:(Array.make nlevels false), !fco)
