(** The shared compile-result schema: one entry per compiled source, one
    manifest per run — and exactly one JSON encoding of both.

    [plutocc --batch] writes manifests of these entries to disk and the
    compile daemon ([plutod], {!Server}) answers every request with one
    entry on the wire, so the two surfaces can never drift: both go through
    {!entry_to_json}.  The daemon additionally needs to *parse* requests and
    responses, so the minimal JSON reader lives here too ({!Json}), next to
    the encoders it must stay in sync with. *)

type status = Success | Degraded | Failed

type entry = {
  e_file : string;
  e_status : status;
  e_rung : string;  (** "fast" | "auto" | "feautrier" | "identity" | "none" *)
  e_diags : Diag.t list;
  e_code : string option;  (** rendered C, absent on failure *)
  e_output : string option;  (** where the parent wrote it, if [out_dir] *)
  e_elapsed_s : float;
  e_retried : bool;  (** a crashed worker attempt preceded this result *)
}

type manifest = {
  m_jobs : int;
  m_cache_dir : string option;
  m_entries : entry list;
  m_elapsed_s : float;
  m_counters : (string * int) list;  (** aggregated across all workers *)
}

let status_name = function
  | Success -> "ok"
  | Degraded -> "degraded"
  | Failed -> "error"

let status_of_name = function
  | "ok" -> Some Success
  | "degraded" -> Some Degraded
  | "error" -> Some Failed
  | _ -> None

(* ------------------------------- encoding -------------------------------- *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let diag_to_json (d : Diag.t) =
  Printf.sprintf "{\"severity\": %s, \"code\": %s, \"message\": %s}"
    (json_string (Diag.severity_name d.Diag.sev))
    (json_string d.Diag.code)
    (json_string d.Diag.message)

(* [extra] appends raw (already-encoded) fields into the same object: the
   daemon tacks its "code"/"cached"/"coalesced"/"stats" fields onto the
   exact encoding the batch manifest uses. *)
let entry_to_json ?(include_code = false) ?(extra = []) e =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"file\": %s, \"status\": %s, \"rung\": %s, \"output\": %s, \
        \"elapsed_s\": %.6f, \"retried\": %b, \"diagnostics\": [%s]"
       (json_string e.e_file)
       (json_string (status_name e.e_status))
       (json_string e.e_rung)
       (match e.e_output with None -> "null" | Some p -> json_string p)
       e.e_elapsed_s e.e_retried
       (String.concat ", " (List.map diag_to_json e.e_diags)));
  if include_code then
    Buffer.add_string b
      (Printf.sprintf ", \"code\": %s"
         (match e.e_code with None -> "null" | Some c -> json_string c));
  List.iter
    (fun (k, raw) -> Buffer.add_string b (Printf.sprintf ", %s: %s" (json_string k) raw))
    extra;
  Buffer.add_char b '}';
  Buffer.contents b

let counters_to_json counters =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "%s: %d" (json_string k) v))
    (List.sort compare counters);
  Buffer.add_char b '}';
  Buffer.contents b

let manifest_to_json m =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" m.m_jobs);
  Buffer.add_string b
    (Printf.sprintf "  \"cache_dir\": %s,\n"
       (match m.m_cache_dir with None -> "null" | Some d -> json_string d));
  Buffer.add_string b (Printf.sprintf "  \"elapsed_s\": %.6f,\n" m.m_elapsed_s);
  Buffer.add_string b "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b ("    " ^ entry_to_json e))
    m.m_entries;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b ("  \"stats\": " ^ counters_to_json m.m_counters);
  Buffer.add_string b "\n}\n";
  Buffer.contents b

(* -------------------------------- parsing -------------------------------- *)

(* A minimal JSON reader for the daemon protocol: requests and responses are
   one object per line, written either by {!entry_to_json} above or by the
   [plutocc --connect] client.  Recursive descent, no dependencies; numbers
   are floats (the protocol never needs 2^53-scale integers). *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

  let parse_string s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let next () =
      if !pos >= n then bad "unexpected end of input"
      else begin
        let c = s.[!pos] in
        incr pos;
        c
      end
    in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          incr pos;
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      let g = next () in
      if g <> c then bad "expected %C at offset %d, got %C" c (!pos - 1) g
    in
    let lit word v =
      String.iter expect word;
      v
    in
    let hex4 () =
      let v = ref 0 in
      for _ = 1 to 4 do
        let c = next () in
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> bad "bad hex digit %C in \\u escape" c
        in
        v := (!v * 16) + d
      done;
      !v
    in
    let add_utf8 b cp =
      if cp < 0x80 then Buffer.add_char b (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else if cp < 0x10000 then begin
        Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let string_body () =
      let b = Buffer.create 32 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents b
        | '\\' ->
            (match next () with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                let cp = hex4 () in
                (* surrogate pair *)
                if cp >= 0xD800 && cp <= 0xDBFF then begin
                  expect '\\';
                  expect 'u';
                  let lo = hex4 () in
                  if lo < 0xDC00 || lo > 0xDFFF then
                    bad "unpaired UTF-16 surrogate"
                  else
                    add_utf8 b
                      (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else add_utf8 b cp
            | c -> bad "bad escape \\%C" c);
            go ()
        | c ->
            Buffer.add_char b c;
            go ()
      in
      go ()
    in
    let number () =
      let start = !pos in
      let consume () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
            incr pos;
            true
        | _ -> false
      in
      while consume () do
        ()
      done;
      let lit = String.sub s start (!pos - start) in
      match float_of_string_opt lit with
      | Some f -> Num f
      | None -> bad "bad number %S" lit
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | None -> bad "unexpected end of input"
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let fields = ref [] in
            let rec field () =
              skip_ws ();
              expect '"';
              let k = string_body () in
              skip_ws ();
              expect ':';
              let v = value () in
              fields := (k, v) :: !fields;
              skip_ws ();
              match next () with
              | ',' -> field ()
              | '}' -> ()
              | c -> bad "expected ',' or '}' in object, got %C" c
            in
            field ();
            Obj (List.rev !fields)
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Arr []
          end
          else begin
            let items = ref [] in
            let rec item () =
              let v = value () in
              items := v :: !items;
              skip_ws ();
              match next () with
              | ',' -> item ()
              | ']' -> ()
              | c -> bad "expected ',' or ']' in array, got %C" c
            in
            item ();
            Arr (List.rev !items)
          end
      | Some '"' ->
          incr pos;
          Str (string_body ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some ('-' | '0' .. '9') -> number ()
      | Some c -> bad "unexpected character %C" c
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then bad "trailing bytes after JSON value (offset %d)" !pos;
    v

  let parse s =
    match parse_string s with v -> Ok v | exception Bad m -> Error m

  let mem k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None

  let str = function Str s -> Some s | _ -> None
  let num = function Num f -> Some f | _ -> None
  let bool = function Bool b -> Some b | _ -> None

  let str_mem k j ~default =
    match mem k j with Some (Str s) -> s | _ -> default

  let bool_mem k j ~default =
    match mem k j with Some (Bool b) -> b | _ -> default

  let num_mem k j ~default =
    match mem k j with Some (Num f) -> f | _ -> default
end

(* --------------------------- entry round trip ----------------------------- *)

let diag_of_json j =
  let sev =
    match Json.str_mem "severity" j ~default:"error" with
    | "warning" -> Diag.Warning
    | "note" -> Diag.Note
    | _ -> Diag.Error
  in
  let code = Json.str_mem "code" j ~default:"unknown" in
  let message = Json.str_mem "message" j ~default:"" in
  { Diag.sev; code; span = None; message }

(** Parse an entry object written by {!entry_to_json} back into an {!entry}
    (spans are not carried on the wire; they come back as [None]). *)
let entry_of_json j =
  match Json.mem "status" j with
  | None -> Error "entry: missing \"status\""
  | Some s -> (
      match Option.bind (Json.str s) status_of_name with
      | None -> Error "entry: bad \"status\""
      | Some e_status ->
          let e_diags =
            match Json.mem "diagnostics" j with
            | Some (Json.Arr ds) -> List.map diag_of_json ds
            | _ -> []
          in
          Ok
            {
              e_file = Json.str_mem "file" j ~default:"<wire>";
              e_status;
              e_rung = Json.str_mem "rung" j ~default:"none";
              e_diags;
              e_code = Option.bind (Json.mem "code" j) Json.str;
              e_output = Option.bind (Json.mem "output" j) Json.str;
              e_elapsed_s = Json.num_mem "elapsed_s" j ~default:0.0;
              e_retried = Json.bool_mem "retried" j ~default:false;
            })

(* ------------------------- compile options wire --------------------------- *)

(* The daemon must compile exactly as a standalone [plutocc] with the same
   flags would, so the client serializes every CLI-expressible option and
   the decoder starts from [Driver.default_options] and overrides exactly
   the fields present.  The rendering is canonical (fixed field order, no
   whitespace variation): the daemon's dedup digest hashes it directly. *)
let options_to_json (o : Driver.options) =
  let int_opt = function None -> "null" | Some v -> string_of_int v in
  let int_arr_opt = function
    | None -> "null"
    | Some a ->
        "["
        ^ String.concat "," (List.map string_of_int (Array.to_list a))
        ^ "]"
  in
  Printf.sprintf
    "{\"tile\": %b, \"tile_size\": %s, \"tile_sizes\": %s, \"parallelize\": \
     %b, \"wavefront\": %d, \"intra_reorder\": %b, \"unroll_jam\": %d, \
     \"min_band_tile\": %d, \"input_deps\": %b, \"fast_schedule\": %b, \
     \"break_fastpath\": %b, \"reductions\": %b}"
    o.Driver.tile (int_opt o.Driver.tile_size)
    (int_arr_opt o.Driver.tile_sizes)
    o.Driver.parallelize o.Driver.wavefront o.Driver.intra_reorder
    o.Driver.unroll_jam o.Driver.min_band_tile
    o.Driver.auto.Pluto.Auto.input_deps o.Driver.fast_schedule
    o.Driver.break_fastpath o.Driver.reductions

let options_of_json j =
  let d = Driver.default_options in
  let b k default = Json.bool_mem k j ~default in
  let i k default = int_of_float (Json.num_mem k j ~default:(float default)) in
  let int_opt k default =
    match Json.mem k j with
    | Some (Json.Num f) -> Some (int_of_float f)
    | Some Json.Null -> None
    | _ -> default
  in
  let int_arr_opt k default =
    match Json.mem k j with
    | Some (Json.Arr xs) ->
        let ints =
          List.filter_map (fun x -> Option.map int_of_float (Json.num x)) xs
        in
        if List.length ints = List.length xs then Some (Array.of_list ints)
        else default
    | Some Json.Null -> None
    | _ -> default
  in
  {
    d with
    Driver.tile = b "tile" d.Driver.tile;
    tile_size = int_opt "tile_size" d.Driver.tile_size;
    tile_sizes = int_arr_opt "tile_sizes" d.Driver.tile_sizes;
    parallelize = b "parallelize" d.Driver.parallelize;
    wavefront = i "wavefront" d.Driver.wavefront;
    intra_reorder = b "intra_reorder" d.Driver.intra_reorder;
    unroll_jam = i "unroll_jam" d.Driver.unroll_jam;
    min_band_tile = i "min_band_tile" d.Driver.min_band_tile;
    auto =
      {
        d.Driver.auto with
        Pluto.Auto.input_deps = b "input_deps" d.Driver.auto.Pluto.Auto.input_deps;
      };
    fast_schedule = b "fast_schedule" d.Driver.fast_schedule;
    break_fastpath = b "break_fastpath" d.Driver.break_fastpath;
    reductions = b "reductions" d.Driver.reductions;
  }
