(** Batch compilation: many source files through {!Driver.compile_robust},
    fanned out over the shared {!Pool} ([plutocc --batch]).

    Each file is one pool task: it is parsed, scheduled down the
    graceful-degradation ladder, rendered to C, and the result crosses the
    fork boundary as pure data (the rendered string plus diagnostics).  A
    crashing or timed-out worker costs exactly one entry — the pool's
    structured failure becomes that file's error diagnostic and every other
    file is unaffected.

    Every task clears the in-memory solver caches before compiling, so
    cross-file amortization happens only through the persistent {!Store}
    ([--cache-dir]); consequently [--stats] solver totals are identical for
    [--jobs 1] and [--jobs N] on the same inputs (the forked and sequential
    paths see the same — empty — starting caches).  With [cache_size]
    ([--cache-size]) the store's LRU eviction keeps the cache directory
    under the byte budget; the final eviction pass runs before the manifest
    is assembled. *)

(* The entry/manifest schema and its JSON encoding live in {!Manifest},
   shared verbatim with the compile daemon's wire protocol.  The type
   equations keep [Batch.Success], [m.Batch.m_entries] etc. working for
   existing callers. *)

type status = Manifest.status = Success | Degraded | Failed

type entry = Manifest.entry = {
  e_file : string;
  e_status : status;
  e_rung : string;
  e_diags : Diag.t list;
  e_code : string option;
  e_output : string option;
  e_elapsed_s : float;
  e_retried : bool;
}

type manifest = Manifest.manifest = {
  m_jobs : int;
  m_cache_dir : string option;
  m_entries : entry list;
  m_elapsed_s : float;
  m_counters : (string * int) list;
}

(* What a worker ships back: pure data only (no closures, no Codegen.t). *)
type task_result = {
  t_code : string option;
  t_diags : Diag.t list;
  t_rung : string;
}

let rung_of ds =
  (* identity implies the feautrier rung also failed — check it first *)
  if Diag.has_code ds "degraded-identity" then "identity"
  else if Diag.has_code ds "degraded-feautrier" then "feautrier"
  else if Diag.has_code ds "fastpath-accepted" then "fast"
  else "auto"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compile_one ~options ~strict ~verify ((name, src) : string * string) :
    task_result =
  (* cross-file sharing goes through the persistent store only: start every
     file from empty in-memory caches, exactly as a freshly forked worker
     would, so counters do not depend on --jobs *)
  Milp.clear_caches ();
  Polyhedra.clear_caches ();
  match Driver.compile_source_robust ~options ~strict ~verify ~name src with
  | Error ds -> { t_code = None; t_diags = ds; t_rung = "none" }
  | Ok (r, warns) ->
      let code =
        Format.asprintf "%a" (fun fmt c -> Codegen.print_c fmt c) r.Driver.code
      in
      { t_code = Some code; t_diags = warns; t_rung = rung_of warns }

let entry_of_outcome file (o : task_result Pool.outcome) =
  match o.Pool.value with
  | Ok t ->
      let status =
        match t.t_code with
        | None -> Failed
        | Some _ -> if Driver.degraded t.t_diags then Degraded else Success
      in
      {
        e_file = file;
        e_status = status;
        e_rung = t.t_rung;
        e_diags = t.t_diags;
        e_code = t.t_code;
        e_output = None;
        e_elapsed_s = o.Pool.elapsed_s;
        e_retried = o.Pool.retried;
      }
  | Error d ->
      {
        e_file = file;
        e_status = Failed;
        e_rung = "none";
        e_diags = [ d ];
        e_code = None;
        e_output = None;
        e_elapsed_s = o.Pool.elapsed_s;
        e_retried = o.Pool.retried;
      }

let error_entry file d =
  {
    e_file = file;
    e_status = Failed;
    e_rung = "none";
    e_diags = [ d ];
    e_code = None;
    e_output = None;
    e_elapsed_s = 0.0;
    e_retried = false;
  }

let ensure_dir dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let output_name file = Filename.remove_extension (Filename.basename file) ^ ".pluto.c"

let write_output out_dir e =
  match (out_dir, e.e_code) with
  | Some dir, Some code ->
      ensure_dir dir;
      let path = Filename.concat dir (output_name e.e_file) in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc code);
      { e with e_output = Some path }
  | _ -> e

let run ?(options = Driver.default_options) ?(strict = false)
    ?(verify = false) ?(jobs = 1) ?task_timeout_s ?cache_dir ?cache_size
    ?out_dir (files : string list) : manifest =
  let t0 = Unix.gettimeofday () in
  Store.set_dir cache_dir;
  (match cache_size with
  | Some _ -> Store.set_budget cache_size
  | None -> ());
  (* read sources in the parent: an unreadable file is a structured entry,
     not a worker crash, and tasks ship self-contained data to workers *)
  let inputs =
    List.map
      (fun file ->
        match read_file file with
        | src -> Ok (file, src)
        | exception Sys_error msg ->
            Error (file, Diag.errorf ~code:"io" "%s" msg))
      files
  in
  let pool_tasks =
    List.filter_map (function Ok t -> Some t | Error _ -> None) inputs
  in
  let outcomes =
    Pool.map ~jobs ?task_timeout_s
      ~f:(compile_one ~options ~strict ~verify)
      pool_tasks
  in
  let rec assemble inputs outcomes acc =
    match (inputs, outcomes) with
    | [], [] -> List.rev acc
    | Error (f, d) :: tl, os -> assemble tl os (error_entry f d :: acc)
    | Ok (f, _) :: tl, o :: os -> assemble tl os (entry_of_outcome f o :: acc)
    | _ -> assert false (* one outcome per pool task, in order *)
  in
  let entries = assemble inputs outcomes [] in
  let entries = List.map (write_output out_dir) entries in
  (* the run never publishes a manifest while the store is over budget *)
  Store.evict_to_budget ();
  {
    m_jobs = jobs;
    m_cache_dir = cache_dir;
    m_entries = entries;
    m_elapsed_s = Unix.gettimeofday () -. t0;
    m_counters = Stats.counters ();
  }

(* Exit-code policy, mirroring single-file mode: 1 if anything failed hard,
   2 if everything compiled but some file needed a fallback rung, else 0. *)
let exit_code m =
  if List.exists (fun e -> e.e_status = Failed) m.m_entries then 1
  else if List.exists (fun e -> e.e_status = Degraded) m.m_entries then 2
  else 0

(* ------------------------------ manifest JSON ----------------------------- *)

(* One encoding for batch manifests and daemon responses: {!Manifest}. *)
let json_string = Manifest.json_string
let status_name = Manifest.status_name
let diag_to_json = Manifest.diag_to_json
let entry_to_json e = Manifest.entry_to_json e
let manifest_to_json = Manifest.manifest_to_json
