(** End-to-end driver: the programmatic equivalent of running the [plutocc]
    tool.  Wires together dependence analysis, the transformation search,
    tiling, parallelization and code generation with the policy described in
    the paper (§5–§6):

    - find hyperplanes (Auto.transform);
    - tile every permutable band of width >= [min_band_tile] (Algorithm 1),
      with tile sizes from the rough cache model unless given;
    - if the outermost tile loop is parallel, mark it for OpenMP; otherwise
      extract [wavefront] degrees of pipelined parallelism (Algorithm 2);
    - optionally move an intra-tile parallel loop innermost (§5.4) for
      vectorization. *)

type options = {
  tile : bool;
  tile_size : int option;  (** uniform tile size; [None] = rough model *)
  tile_sizes : int array option;
      (** rectangular tiles: per-band-level sizes, outermost first, the last
          entry repeated for deeper bands; takes precedence over
          [tile_size].  The tuner's search space lives here. *)
  parallelize : bool;
  wavefront : int;  (** degrees of pipelined parallelism to extract *)
  intra_reorder : bool;  (** §5.4 post-pass *)
  unroll_jam : int;
      (** unroll-jam factor applied to innermost parallel/vectorized loops
          ({!Codegen.with_unroll_innermost}); 1 = off *)
  min_band_tile : int;  (** minimum band width worth tiling *)
  auto : Pluto.Auto.config;
  context_min : int;
  fast_schedule : bool;
      (** try the fast fusion/dimension-matching scheduler
          ({!Pluto.Fastmatch}) before the exact ILP in {!compile_robust};
          accepted schedules are translation-validated first, rejections
          fall back to the ILP with a ["fastpath-rejected"] warning.
          Default on ([--no-fast-schedule] turns it off). *)
  break_fastpath : bool;
      (** testing hook ([--break-fastpath]): deliberately corrupt any
          accepted fast schedule before validation, proving the rejection
          path end to end.  Poisoned results are never cached. *)
  reductions : bool;
      (** reduction-aware compilation ([--reductions], default off):
          associative/commutative self-updates are detected and their
          self-dependences marked ({!Deps.compute}), the schedulers relax
          marked edges (parallelizing dot products, histograms and the
          accumulation dimensions of lu/mvt), parallel loops that carry a
          marked reduction get OpenMP [reduction(op:array)] clauses, and the
          translation validator switches to legality modulo reassociation
          for the marked edges only.  Execution of such programs matches the
          original order up to floating-point reassociation
          ({!Machine.equivalent} [~tolerance]), not bit-exactly. *)
}

val default_options : options

(** Options matching the paper's main experiments: tile + parallelize with
    one degree of pipelined parallelism, intra-tile reordering on. *)
val paper_options : options

type result = {
  program : Ir.program;
  deps : Deps.t list;
  transform : Pluto.Types.transform;
  target : Pluto.Types.target;
  code : Codegen.t;
}

(** [compile ?options program] runs the full pipeline.
    @raise Pluto.Auto.No_transform if the search fails. *)
val compile : ?options:options -> Ir.program -> result

(** [compile_source ?options ?name src] parses first. *)
val compile_source : ?options:options -> ?name:string -> string -> result

(** [compile_with_transform ?options program deps transform] skips the search
    and applies tiling/parallelization/codegen to an externally supplied
    transformation (used by the baseline schemes). *)
val compile_with_transform :
  ?options:options -> Ir.program -> Deps.t list -> Pluto.Types.transform -> result

(** The identity (original program order) pipeline — the "native compiler"
    baseline; no tiling or parallelization. *)
val compile_original : ?options:options -> Ir.program -> result

(** {1 Robust compilation: the graceful-degradation ladder}

    [compile_robust] never raises (other than genuine out-of-memory /
    interrupt): every failure of a scheduling rung — [No_transform], solver
    budget exhaustion ([Diag.Budget_exceeded]), or any unexpected exception —
    is recorded as a warning diagnostic and the next rung is tried:

    + the fast fusion/dimension-matching scheduler ({!Pluto.Fastmatch}),
      when [options.fast_schedule] — zero ILP solves, and its output only
      counts if the translation validator accepts it (an accept is recorded
      as a ["fastpath-accepted"] note, a fall-through as a
      ["fastpath-rejected"] warning — which is {e not} a degradation:
      {!degraded} stays false and the CLI still exits 0);
    + the Pluto automatic transformation ({!compile});
    + the Feautrier + Griebl-FCO baseline schedule ({!Feautrier_core}), with
      the same solver budget;
    + the untiled identity schedule ({!compile_original}).

    The identity rung can only fail if dependence analysis itself fails, in
    which case no semantically-safe code can be emitted and the whole
    compilation is a hard error.

    With [strict:true] the ladder is disabled: the first failure returns
    [Error] immediately (the CLI's [--strict]). *)

(** [compile_robust ?options ?strict ?verify p] — [Ok (result, warnings)]
    where the warnings record each degradation step (codes
    ["degraded-feautrier"], ["degraded-identity"] plus the demoted failure
    reasons), or [Error diagnostics] when no rung could emit code.

    With [verify:true] every rung's output is additionally checked by the
    translation validator ({!Verify.validate}); a rung whose output fails
    validation is treated exactly like a rung that crashed (code
    ["verify-failed"]) and the ladder degrades to the next rung. *)
val compile_robust :
  ?options:options ->
  ?strict:bool ->
  ?verify:bool ->
  Ir.program ->
  (result * Diag.t list, Diag.t list) Stdlib.result

(** [compile_source_robust ?options ?strict ?verify ?name src] — parse first
    (collecting all frontend diagnostics), then {!compile_robust}. *)
val compile_source_robust :
  ?options:options ->
  ?strict:bool ->
  ?verify:bool ->
  ?name:string ->
  string ->
  (result * Diag.t list, Diag.t list) Stdlib.result

(** [degraded ds] — does the diagnostic list record a degradation step? (The
    CLI maps this to exit code 2.) *)
val degraded : Diag.t list -> bool

(** [attempt ~what f] — the ladder's exception wall: run [f], converting any
    failure ([Diag.Budget_exceeded], [Diag.Diagnostic], scheduler
    give-ups, stack overflow, anything unexpected) into an [Error]
    diagnostic prefixed with [what].  Only genuine out-of-memory/interrupt
    conditions propagate.  Exposed for tests and embedders building their
    own rungs. *)
val attempt : what:string -> (unit -> 'a) -> ('a, Diag.t) Stdlib.result

(** [verify ?param_lo ?param_hi ?claim_ctx ?params r] — run the independent
    translation validator ({!Verify.validate}) on a compilation result:
    re-proves schedule legality over the dependence polyhedra and that the
    generated AST scans exactly the original iteration domains. *)
val verify :
  ?param_lo:int ->
  ?param_hi:int ->
  ?claim_ctx:int ->
  ?params:int array ->
  result ->
  Verify.report
