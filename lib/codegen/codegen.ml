open Pluto.Types

type iexpr =
  | Affine of int array
  | Floord of iexpr * int
  | Ceild of iexpr * int
  | Emin of iexpr list
  | Emax of iexpr list

type guard = Ge0 of int array | Mod0 of int array * int

type ast =
  | For of {
      level : int;
      parallel : bool;
      lb : iexpr;
      ub : iexpr;
      body : ast list;
    }
  | Leaf of {
      stmt_idx : int;
      guards : guard list;
      args : (int array * int) array;
    }

type t = {
  target : Pluto.Types.target;
  nlevels : int;
  nparams : int;
  body : ast list;
  unroll : int array;
  reductions : (string * string) list array;
}

exception Codegen_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

(* ------------------------- LP redundancy pruning ------------------------- *)

(* Drop inequalities implied by the rest of the system (rational test). *)
let prune_lp (sys : Polyhedra.t) =
  let cs = Array.of_list sys.Polyhedra.cs in
  let n = sys.Polyhedra.nvars in
  let kept = Array.map (fun _ -> true) cs in
  Array.iteri
    (fun i (c : Polyhedra.constr) ->
      if c.Polyhedra.kind = Polyhedra.Ge then begin
        let rest =
          List.concat
            (List.mapi
               (fun j k -> if j <> i && kept.(j) then [ k ] else [])
               (Array.to_list cs))
        in
        let obj = Array.init n (fun v -> Q.of_bigint c.Polyhedra.coefs.(v)) in
        match Milp.lp (Polyhedra.of_constrs n rest) obj with
        | Milp.Lp_optimal (v, _) ->
            let vk = Q.add v (Q.of_bigint c.Polyhedra.coefs.(n)) in
            if Q.sign vk >= 0 then kept.(i) <- false
        | Milp.Lp_unbounded | Milp.Lp_infeasible -> ()
      end)
    cs;
  let cs' =
    List.concat
      (List.mapi (fun i k -> if kept.(i) then [ k ] else []) (Array.to_list cs))
  in
  { sys with Polyhedra.cs = cs' }

(* ----------------------- per-statement preparation ----------------------- *)

type stmt_info = {
  si_idx : int;
  si_ts : tstmt;
  si_projs : Polyhedra.t array;  (* level l: over (c_0..c_l live, params) *)
  si_args : (int array * int) array;  (* per ext iterator *)
  si_mod_guards : guard list;
}

(* Choose a full-rank subset of scattering rows and invert it to express the
   extended iterators as (affine in c) / divisor. *)
let invert_scattering ~nlevels ~np (ts : tstmt) =
  let k = Array.length ts.ext_iters in
  let width = nlevels + np + 1 in
  let chosen = ref [] in
  let rank_of rows =
    if rows = [] then 0
    else Mat.rank (Mat.of_int_rows (Array.of_list (List.map (fun l -> Array.sub ts.trows.(l) 0 k) rows)))
  in
  for l = 0 to Array.length ts.trows - 1 do
    if rank_of !chosen < k && rank_of (!chosen @ [ l ]) > rank_of !chosen then
      chosen := !chosen @ [ l ]
  done;
  if rank_of !chosen < k then
    fail "scattering of %s has rank %d < %d extended iterators"
      ts.stmt.Ir.name (rank_of !chosen) k;
  let levels = Array.of_list !chosen in
  let r = Mat.of_int_rows (Array.map (fun l -> Array.sub ts.trows.(l) 0 k) levels) in
  let inv =
    match Mat.inverse r with
    | Some m -> m
    | None -> fail "scattering inversion failed for %s" ts.stmt.Ir.name
  in
  let args =
    Array.init k (fun i ->
        (* x_i = sum_j inv[i][j] * (c_{levels[j]} - const_j) *)
        let d =
          Array.fold_left
            (fun acc q -> Bigint.lcm acc (Q.den q))
            Bigint.one inv.(i)
        in
        let row = Array.make width 0 in
        Array.iteri
          (fun j l ->
            let a =
              Bigint.to_int
                (Bigint.div (Bigint.mul (Q.num inv.(i).(j)) d) (Q.den inv.(i).(j)))
            in
            row.(l) <- row.(l) + a;
            let cst = ts.trows.(l).(k) in
            row.(width - 1) <- row.(width - 1) - (a * cst))
          levels;
        (row, Bigint.to_int d))
  in
  let mod_guards =
    Array.to_list args
    |> List.filter_map (fun (row, d) -> if d > 1 then Some (Mod0 (row, d)) else None)
  in
  (args, mod_guards)

let prepare ~context_min (tgt : target) =
  let nlevels = tgt.tnlevels in
  let np = List.length tgt.tprogram.Ir.params in
  List.filter_map
    (fun (si_idx, ts) ->
      let ext_n = Array.length ts.ext_iters in
      (* E_S over [c (nlevels); x (ext_n); params (np)] *)
      let nv = nlevels + ext_n + np in
      let dom = Polyhedra.insert_vars ts.ext_domain ~at:0 ~count:nlevels in
      let eqs =
        List.map
          (fun l ->
            let row = Vec.zero (nv + 1) in
            row.(l) <- Bigint.one;
            let tr = ts.trows.(l) in
            for q = 0 to ext_n - 1 do
              row.(nlevels + q) <- Bigint.of_int (-tr.(q))
            done;
            row.(nv) <- Bigint.of_int (-tr.(ext_n));
            Polyhedra.eq row)
          (Putil.range nlevels)
      in
      let context =
        List.map
          (fun j ->
            let row = Vec.zero (nv + 1) in
            row.(nlevels + ext_n + j) <- Bigint.one;
            row.(nv) <- Bigint.of_int (-context_min);
            Polyhedra.ge row)
          (Putil.range np)
      in
      let esys = Polyhedra.meet dom (Polyhedra.of_constrs nv (eqs @ context)) in
      (* eliminate the extended iterators *)
      match
        Polyhedra.eliminate_many esys
          (List.map (fun q -> nlevels + q) (Putil.range ext_n))
      with
      | None -> None (* empty domain: statement never executes *)
      | Some projected -> (
          (* an emptiness discovered anywhere down the projection chain means
             the statement never executes (e.g. a domain empty only by
             integer reasoning): drop it *)
          let exception Empty_statement in
          try
            let projected =
              Polyhedra.drop_vars projected ~at:nlevels ~count:ext_n
            in
            let si_projs = Array.make nlevels projected in
            let rec down l sys =
              si_projs.(l) <- prune_lp sys;
              if l > 0 then
                match Polyhedra.eliminate sys l with
                | None -> raise Empty_statement
                | Some sys' -> down (l - 1) sys'
            in
            (match Polyhedra.simplify ~integer:true projected with
            | None -> raise Empty_statement
            | Some p -> down (nlevels - 1) p);
            let si_args, si_mod_guards = invert_scattering ~nlevels ~np ts in
            Some { si_idx; si_ts = ts; si_projs; si_args; si_mod_guards }
          with Empty_statement -> None))
    (List.mapi (fun i ts -> (i, ts)) tgt.tstmts)

(* ------------------------------ generation ------------------------------- *)

let bigrow_to_int (v : Vec.t) = Array.map Bigint.to_int v

(* lower bound expr from a constraint  a*c_l + rest >= 0, a > 0:
   c_l >= ceild(-rest, a) *)
let lb_expr ~level (c : Polyhedra.constr) =
  let row = bigrow_to_int c.Polyhedra.coefs in
  let a = row.(level) in
  assert (a > 0);
  let rest = Array.mapi (fun j v -> if j = level then 0 else -v) row in
  if a = 1 then Affine rest else Ceild (Affine rest, a)

let ub_expr ~level (c : Polyhedra.constr) =
  let row = bigrow_to_int c.Polyhedra.coefs in
  let a = row.(level) in
  assert (a < 0);
  let rest = Array.mapi (fun j v -> if j = level then 0 else v) row in
  if a = -1 then Affine rest else Floord (Affine rest, -a)

(* drop the extended-iterator columns from the projection row widths: the
   projections are already over (c, params) only, width nlevels+np+1. *)


let rec equal_iexpr a b =
  match (a, b) with
  | Affine x, Affine y -> x = y
  | Floord (x, d), Floord (y, e) | Ceild (x, d), Ceild (y, e) ->
      d = e && equal_iexpr x y
  | Emin xs, Emin ys | Emax xs, Emax ys ->
      List.length xs = List.length ys && List.for_all2 equal_iexpr xs ys
  | _ -> false

let mk_max = function [ e ] -> e | es -> Emax es
let mk_min = function [ e ] -> e | es -> Emin es

(* Minimal leaf guards: constraints of the statement's innermost projection
   that are not implied (rational LP) by the constraints already enforced by
   the enclosing loop bounds.  The projection system is exactly statement
   membership (modulo the stride guards), so this both minimizes and
   completes the per-level guard accumulation. *)
let leaf_guards (si : stmt_info) ~nlevels ~(enforced : Polyhedra.constr list) =
  let full = si.si_projs.(nlevels - 1) in
  let nv = full.Polyhedra.nvars in
  let enforced_sys = Polyhedra.of_constrs nv enforced in
  let implied (c : Polyhedra.constr) =
    List.exists (fun e -> Polyhedra.equal_constr e c) enforced
    ||
    let obj = Array.init nv (fun v -> Q.of_bigint c.Polyhedra.coefs.(v)) in
    match Milp.lp enforced_sys obj with
    | Milp.Lp_optimal (v, _) ->
        Q.sign (Q.add v (Q.of_bigint c.Polyhedra.coefs.(nv))) >= 0
    | Milp.Lp_unbounded | Milp.Lp_infeasible -> false
  in
  List.concat_map
    (fun (c : Polyhedra.constr) ->
      match c.Polyhedra.kind with
      | Polyhedra.Ge -> if implied c then [] else [ Ge0 (bigrow_to_int c.Polyhedra.coefs) ]
      | Polyhedra.Eq ->
          let pos = { c with Polyhedra.kind = Polyhedra.Ge } in
          let neg = { pos with Polyhedra.coefs = Vec.neg c.Polyhedra.coefs } in
          List.filter_map
            (fun g ->
              if implied g then None else Some (Ge0 (bigrow_to_int g.Polyhedra.coefs)))
            [ pos; neg ])
    full.Polyhedra.cs

(* Separation at a loop level: partition the active statements into groups
   whose c_l ranges may overlap; distinct groups are provably disjoint AND
   uniformly ordered (for every shared outer prefix), so they can be emitted
   as consecutive loops while preserving the scattering order. *)
let separate_groups ~l (active : (stmt_info * Polyhedra.constr list) list) =
  match active with
  | [] | [ _ ] -> [ active ]
  | _ ->
      let arr = Array.of_list active in
      let n = Array.length arr in
      let proj i = (fst arr.(i)).si_projs.(l) in
      let nonempty sys = not (Polyhedra.is_empty_rational sys) in
      let overlap i j = nonempty (Polyhedra.meet (proj i) (proj j)) in
      (* [before i j]: every c_l of statement i is strictly below every c_l of
         statement j under any common outer prefix.  Rename j's c_l to a fresh
         column and test emptiness of { c_l(i) >= c_l(j) }. *)
      let before i j =
        let a = proj i and b = proj j in
        let w = a.Polyhedra.nvars in
        let wa = Polyhedra.insert_vars a ~at:w ~count:1 in
        let wb0 = Polyhedra.insert_vars b ~at:w ~count:1 in
        let wb =
          {
            wb0 with
            Polyhedra.cs =
              List.map
                (fun (c : Polyhedra.constr) ->
                  let coefs = Vec.copy c.Polyhedra.coefs in
                  coefs.(w) <- coefs.(l);
                  coefs.(l) <- Bigint.zero;
                  { c with Polyhedra.coefs })
                wb0.Polyhedra.cs;
          }
        in
        let ge =
          let r = Vec.zero (w + 2) in
          r.(l) <- Bigint.one;
          r.(w) <- Bigint.minus_one;
          Polyhedra.ge r
        in
        not (nonempty (Polyhedra.add (Polyhedra.meet wa wb) ge))
      in
      let parent = Array.init n (fun i -> i) in
      let rec find i = if parent.(i) = i then i else find parent.(i) in
      let union i j = parent.(find i) <- find j in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if find i <> find j then
            if overlap i j || ((not (before i j)) && not (before j i)) then
              union i j
        done
      done;
      let reps = List.sort_uniq compare (List.map find (Putil.range n)) in
      if List.length reps = 1 then [ active ]
      else begin
        let groups =
          List.map
            (fun r ->
              let members =
                List.concat
                  (List.mapi
                     (fun i entry -> if find i = r then [ (i, entry) ] else [])
                     active)
              in
              members)
            reps
        in
        List.sort
          (fun ga gb ->
            let ia, _ = List.hd ga and ib, _ = List.hd gb in
            if before ia ib then -1 else 1)
          groups
        |> List.map (List.map snd)
      end

let generate ?(context_min = 1) (tgt : target) =
  let nlevels = tgt.tnlevels in
  let np = List.length tgt.tprogram.Ir.params in
  let infos = prepare ~context_min tgt in
  let width = nlevels + np + 1 in
  let context_rows =
    List.map
      (fun j ->
        let row = Vec.zero width in
        row.(nlevels + j) <- Bigint.one;
        row.(width - 1) <- Bigint.of_int (-context_min);
        Polyhedra.ge row)
      (Putil.range np)
  in
  (* [active]: statement plus the constraint rows its enclosing loops enforce *)
  let rec gen l (active : (stmt_info * Polyhedra.constr list) list) : ast list =
    if active = [] then []
    else if l = nlevels then
      List.map
        (fun (si, enforced) ->
          Leaf
            {
              stmt_idx = si.si_idx;
              guards = leaf_guards si ~nlevels ~enforced @ si.si_mod_guards;
              args = si.si_args;
            })
        active
    else begin
      match tgt.tkinds.(l) with
      | Scalar ->
          (* group by the constant scattering value, ascending *)
          let value (si, _) =
            let ts = si.si_ts in
            let k = Array.length ts.ext_iters in
            let row = ts.trows.(l) in
            if Array.exists (fun q -> q <> 0) (Array.sub row 0 k) then
              fail "scalar level %d of %s has iterator coefficients" l
                ts.stmt.Ir.name;
            row.(k)
          in
          let groups = Hashtbl.create 4 in
          List.iter
            (fun entry ->
              let v = value entry in
              Hashtbl.replace groups v
                (entry :: (try Hashtbl.find groups v with Not_found -> [])))
            active;
          let values = List.sort_uniq compare (List.map value active) in
          List.concat_map
            (fun v ->
              let const = Array.make width 0 in
              const.(width - 1) <- v;
              let eq_row = Vec.zero width in
              eq_row.(l) <- Bigint.one;
              eq_row.(width - 1) <- Bigint.of_int (-v);
              let group =
                List.rev (Hashtbl.find groups v)
                |> List.map (fun (si, enf) -> (si, Polyhedra.eq eq_row :: enf))
              in
              [
                For
                  {
                    level = l;
                    parallel = false;
                    lb = Affine const;
                    ub = Affine const;
                    body = gen (l + 1) group;
                  };
              ])
            values
      | Loop _ ->
          (* Quilleré-lite separation: statements whose c_l ranges provably
             never overlap (for any shared outer prefix) are emitted as
             consecutive loops instead of one union loop with guards — this
             is what keeps, e.g., LU's 2-d statement from being scanned by
             the 3-d statement's loops. *)
          let groups = separate_groups ~l active in
          List.concat_map
            (fun group ->
              let with_bounds =
                List.map
                  (fun (si, enforced) ->
                    let lower, upper, _rest =
                      Polyhedra.bounds_on si.si_projs.(l) l
                    in
                    if lower = [] || upper = [] then
                      fail "level %d of %s is unbounded" l
                        si.si_ts.stmt.Ir.name;
                    let lb = mk_max (List.map (lb_expr ~level:l) lower) in
                    let ub = mk_min (List.map (ub_expr ~level:l) upper) in
                    ((si, enforced), (lb, ub, lower @ upper)))
                  group
              in
              let (_, (lb0, ub0, _)) = List.hd with_bounds in
              let all_same =
                List.for_all
                  (fun (_, (lb, ub, _)) ->
                    equal_iexpr lb lb0 && equal_iexpr ub ub0)
                  with_bounds
              in
              let lb, ub =
                if all_same then (lb0, ub0)
                else
                  ( mk_min (List.map (fun (_, (lb, _, _)) -> lb) with_bounds),
                    mk_max (List.map (fun (_, (_, ub, _)) -> ub) with_bounds) )
              in
              let active' =
                if all_same then
                  (* the loop bounds enforce each statement's own rows *)
                  List.map
                    (fun ((si, enforced), (_, _, rows)) ->
                      (si, rows @ enforced))
                    with_bounds
                else begin
                  (* a bound row present in EVERY statement's bound set is
                     still enforced by the union loop *)
                  match with_bounds with
                  | [] -> []
                  | (_, (_, _, rows0)) :: rest ->
                      let shared =
                        List.filter
                          (fun r ->
                            List.for_all
                              (fun (_, (_, _, rows)) ->
                                List.exists (Polyhedra.equal_constr r) rows)
                              rest)
                          rows0
                      in
                      List.map
                        (fun ((si, enforced), _) -> (si, shared @ enforced))
                        with_bounds
                end
              in
              [
                For
                  {
                    level = l;
                    parallel = tgt.tpar.(l) = Par;
                    lb;
                    ub;
                    body = gen (l + 1) active';
                  };
              ])
            groups
    end
  in
  let body = gen 0 (List.map (fun si -> (si, context_rows)) infos) in
  {
    target = tgt;
    nlevels;
    nparams = np;
    body;
    unroll = Array.make nlevels 1;
    reductions = Array.make nlevels [];
  }

let rec ast_size = function
  | For { body; _ } -> 1 + Putil.sum_by ast_size body
  | Leaf _ -> 1

let size t = Putil.sum_by ast_size t.body

(* ------------------------------ unroll-jam ------------------------------- *)

(* A loop is "innermost" when its body contains no further loop; eligible for
   the unroll-jam annotation when its level is a parallel hyperplane or a
   §5.4 forced-vectorization level — the loops whose iterations are
   independent, so jamming is legal by the same argument that justifies the
   OpenMP/ivdep marks already on them. *)
let with_unroll_innermost t ~factor =
  if factor <= 1 then t
  else begin
    let eligible level =
      t.target.tvec.(level)
      || Pluto.Types.is_parallel_loop t.target.tkinds.(level)
      || t.target.tpar.(level) = Pluto.Types.Par
    in
    let unroll = Array.copy t.unroll in
    let marked = ref false in
    let rec walk = function
      | Leaf _ -> ()
      | For { level; body; _ } ->
          let has_inner_for =
            List.exists (function For _ -> true | Leaf _ -> false) body
          in
          if (not has_inner_for) && eligible level then begin
            unroll.(level) <- factor;
            marked := true
          end;
          List.iter walk body
    in
    List.iter walk t.body;
    if !marked then { t with unroll } else t
  end

let unrolled_levels t =
  List.filter (fun l -> t.unroll.(l) > 1) (Putil.range (Array.length t.unroll))

(* --------------------------- reduction clauses --------------------------- *)

let with_reductions t clauses =
  if Array.length clauses <> t.nlevels then
    invalid_arg "Codegen.with_reductions: clause array length";
  { t with reductions = clauses }

(* ------------------------------- C printer ------------------------------- *)

let var_names t =
  Array.append
    (Array.init t.nlevels (fun l -> Printf.sprintf "c%d" (l + 1)))
    (Array.of_list t.target.tprogram.Ir.params)

let rec pp_iexpr names fmt = function
  | Affine row -> Ir.pp_affine_row names fmt row
  | Floord (e, d) -> Format.fprintf fmt "floord(%a,%d)" (pp_iexpr names) e d
  | Ceild (e, d) -> Format.fprintf fmt "ceild(%a,%d)" (pp_iexpr names) e d
  | Emin es -> pp_nested names "min" fmt es
  | Emax es -> pp_nested names "max" fmt es

and pp_nested names f fmt = function
  | [] -> invalid_arg "Codegen.pp_nested: empty"
  | [ e ] -> pp_iexpr names fmt e
  | e :: rest ->
      Format.fprintf fmt "%s(%a,%a)" f (pp_iexpr names) e (pp_nested names f) rest

let pp_guard names fmt = function
  | Ge0 row -> Format.fprintf fmt "%a >= 0" (Ir.pp_affine_row names) row
  | Mod0 (row, d) -> Format.fprintf fmt "pmod(%a,%d) == 0" (Ir.pp_affine_row names) row d

let rec pp_ast t names fmt node =
  match node with
  | For { level; parallel; lb; ub; body } ->
      let v = names.(level) in
      if t.target.Pluto.Types.tvec.(level) then
        (* vectorization forced by the transformation framework (§5.4) *)
        Format.fprintf fmt "@,#pragma ivdep";
      if t.unroll.(level) > 1 then
        Format.fprintf fmt "@,#pragma unroll(%d)" t.unroll.(level);
      if parallel then begin
        let privates =
          List.init (t.nlevels - level - 1) (fun j -> names.(level + 1 + j))
        in
        (* whole-array OpenMP reductions (4.5 C array reductions): each
           thread privatizes the array zero-initialized and the combiner
           folds the per-thread contributions into the live-in values, which
           is exactly what an [x op= e] accumulation computes *)
        let reds =
          List.map
            (fun (op, var) -> Printf.sprintf " reduction(%s:%s)" op var)
            t.reductions.(level)
        in
        Format.fprintf fmt "@,#pragma omp parallel for%s%s"
          (match privates with
          | [] -> ""
          | _ -> Printf.sprintf " private(%s)" (String.concat "," privates))
          (String.concat "" reds)
      end;
      (match (lb, ub) with
      | Affine a, Affine b when a = b ->
          Format.fprintf fmt "@,@[<v 2>{ /* %s = constant */@,%s = %a;%a@]@,}" v v
            (pp_iexpr names) lb (pp_body t names) body
      | _ ->
          Format.fprintf fmt "@,@[<v 2>for (%s = %a; %s <= %a; %s++) {%a@]@,}" v
            (pp_iexpr names) lb v (pp_iexpr names) ub v (pp_body t names) body)
  | Leaf { stmt_idx; guards; args } ->
      let ts = List.nth t.target.tstmts stmt_idx in
      let m = Ir.depth ts.stmt in
      let ext_n = Array.length ts.ext_iters in
      let orig_args = Array.sub args (ext_n - m) m in
      let pp_arg fmt (row, d) =
        if d = 1 then Ir.pp_affine_row names fmt row
        else Format.fprintf fmt "(%a)/%d" (Ir.pp_affine_row names) row d
      in
      let pp_call fmt () =
        Format.fprintf fmt "%s(%a);" ts.stmt.Ir.name
          (Putil.pp_list ", " pp_arg)
          (Array.to_list orig_args)
      in
      if guards = [] then Format.fprintf fmt "@,%a" pp_call ()
      else
        Format.fprintf fmt "@,@[<v 2>if (%a) {@,%a@]@,}"
          (Putil.pp_list " && " (pp_guard names))
          guards pp_call ()

and pp_body t names fmt body =
  List.iter (fun node -> pp_ast t names fmt node) body

let print_loop_nest fmt t =
  let names = var_names t in
  Format.fprintf fmt "@[<v>";
  List.iter (fun node -> pp_ast t names fmt node) t.body;
  Format.fprintf fmt "@]@."

let array_size_expr param_names (a : Ir.array_info) =
  (* product of "(extent + 2)" factors, as C source *)
  if Array.length a.Ir.extents = 0 then "1"
  else
    String.concat " * "
      (Array.to_list
         (Array.map
            (fun ext ->
              Printf.sprintf "(%s + 2)"
                (Putil.string_of_format (Ir.pp_affine_row param_names) ext))
            a.Ir.extents))

let print_c ?(instrument = false) fmt t =
  let p = t.target.tprogram in
  let names = var_names t in
  Format.fprintf fmt "@[<v>/* Generated by plutocc (OCaml Pluto reproduction) */@,";
  Format.fprintf fmt "#include <stdio.h>@,#include <stdlib.h>@,";
  if instrument then Format.fprintf fmt "#include <time.h>@,";
  Format.fprintf fmt "#ifdef _OPENMP@,#include <omp.h>@,#endif@,";
  Format.fprintf fmt
    "#define floord(n,d) (((n)<0) ? -((-(n)+(d)-1)/(d)) : (n)/(d))@,";
  Format.fprintf fmt
    "#define ceild(n,d)  (((n)<0) ? -((-(n))/(d)) : ((n)+(d)-1)/(d))@,";
  Format.fprintf fmt "#define pmod(n,d)   (((n)%%(d)+(d))%%(d))@,";
  Format.fprintf fmt "#define max(a,b)    (((a)>(b)) ? (a) : (b))@,";
  Format.fprintf fmt "#define min(a,b)    (((a)<(b)) ? (a) : (b))@,@,";
  List.iter
    (fun prm -> Format.fprintf fmt "#ifndef %s@,#define %s 500@,#endif@," prm prm)
    p.Ir.params;
  Format.fprintf fmt "@,";
  let param_names = Array.of_list p.Ir.params in
  List.iter
    (fun (a : Ir.array_info) ->
      if Array.length a.Ir.extents = 0 then
        Format.fprintf fmt "double %s;@," a.Ir.aname
      else begin
        Format.fprintf fmt "double %s" a.Ir.aname;
        Array.iter
          (fun ext ->
            Format.fprintf fmt "[%a + 2]" (Ir.pp_affine_row param_names) ext)
          a.Ir.extents;
        Format.fprintf fmt ";@,"
      end)
    p.Ir.arrays;
  Format.fprintf fmt "@,";
  (* statement macros over original iterator names *)
  List.iter
    (fun s ->
      Format.fprintf fmt "#define %s(%s) { %s }@," s.Ir.name
        (String.concat "," s.Ir.iters)
        s.Ir.text)
    p.Ir.stmts;
  if instrument then begin
    (* deterministic pseudo-random initialization — identical across the
       binaries being compared, which is all that matters *)
    let lines =
      [
        "";
        "static double init_value(long q) {";
        "  long z = (q + 40503) * 69069 % 1073741824;";
        "  z = (z ^ (z >> 13)) * 31337 % 1073741824;";
        "  return (double)(z % 65536) / 65536.0;";
        "}";
      ]
    in
    List.iter (fun l -> Format.fprintf fmt "@,%s" l) lines
  end;
  Format.fprintf fmt "@,@[<v 2>int main() {@,int %s;"
    (String.concat ", "
       (List.init t.nlevels (fun l -> Printf.sprintf "c%d" (l + 1))));
  if instrument then begin
    Format.fprintf fmt "@,long q_;@,struct timespec t0_, t1_;";
    List.iter
      (fun (a : Ir.array_info) ->
        if Array.length a.Ir.extents = 0 then
          Format.fprintf fmt "@,%s = init_value(0);" a.Ir.aname
        else
          Format.fprintf fmt "@,%s"
            (Printf.sprintf
               "for (q_ = 0; q_ < %s; q_++) ((double *)%s)[q_] = init_value(q_);"
               (array_size_expr param_names a) a.Ir.aname))
      p.Ir.arrays;
    Format.fprintf fmt "@,clock_gettime(CLOCK_MONOTONIC, &t0_);"
  end;
  List.iter (fun node -> pp_ast t names fmt node) t.body;
  if instrument then begin
    Format.fprintf fmt "@,clock_gettime(CLOCK_MONOTONIC, &t1_);";
    Format.fprintf fmt "@,%s"
      "printf(\"time %.9f\\n\", (t1_.tv_sec - t0_.tv_sec) + 1e-9 * (t1_.tv_nsec - t0_.tv_nsec));";
    List.iter
      (fun (a : Ir.array_info) ->
        if Array.length a.Ir.extents = 0 then
          Format.fprintf fmt "@,%s"
            (Printf.sprintf "printf(\"checksum %s %%.17g\\n\", %s);" a.Ir.aname
               a.Ir.aname)
        else
          Format.fprintf fmt "@,%s"
            (Printf.sprintf
               "{ double s_ = 0.0; for (q_ = 0; q_ < %s; q_++) s_ += ((double *)%s)[q_] * (double)(q_ %% 97 + 1); printf(\"checksum %s %%.17g\\n\", s_); }"
               (array_size_expr param_names a) a.Ir.aname a.Ir.aname))
      p.Ir.arrays
  end;
  Format.fprintf fmt "@,return 0;@]@,}@]@."

(** Internal entry points exposed for the test suite. *)
module For_tests = struct
  let pp_iexpr = pp_iexpr
end

(* ------------------------- AST evaluation semantics ----------------------- *)

(* The single definition of what the emitted C computes for bounds, guards and
   statement arguments.  Both executors of the AST — the {!Machine}
   interpreter/simulator and the {!Verify} domain-coverage checker — evaluate
   through here, so a disagreement between them can only come from the AST
   itself, not from divergent evaluators. *)
module Eval = struct
  let floord n d = if n >= 0 then n / d else -((-n + d - 1) / d)
  let ceild n d = if n >= 0 then (n + d - 1) / d else -(-n / d)

  (* env has width nlevels + nparams; affine rows have width env+1. *)
  let affine (row : int array) (env : int array) =
    let n = Array.length env in
    let acc = ref row.(n) in
    for j = 0 to n - 1 do
      if row.(j) <> 0 then acc := !acc + (row.(j) * env.(j))
    done;
    !acc

  let rec iexpr (e : iexpr) env =
    match e with
    | Affine row -> affine row env
    | Floord (e, d) -> floord (iexpr e env) d
    | Ceild (e, d) -> ceild (iexpr e env) d
    | Emin es -> List.fold_left (fun acc e -> min acc (iexpr e env)) max_int es
    | Emax es -> List.fold_left (fun acc e -> max acc (iexpr e env)) min_int es

  let guard (g : guard) env =
    match g with
    | Ge0 row -> affine row env >= 0
    | Mod0 (row, d) ->
        let v = affine row env in
        ((v mod d) + d) mod d = 0

  (* Original-iterator values of a statement instance from its leaf [args]
     (per extended iterator: affine row and divisor); the original iterators
     are the trailing [m] extended iterators.
     @raise Failure if a divisor does not divide exactly (the AST is missing
     a stride guard). *)
  let leaf_iters (leaf_args : (int array * int) array) env m =
    let ext_n = Array.length leaf_args in
    Array.init m (fun j ->
        let row, d = leaf_args.(ext_n - m + j) in
        let v = affine row env in
        if d = 1 then v
        else begin
          if ((v mod d) + d) mod d <> 0 then
            failwith
              "Codegen.Eval: non-integral iterator value (missing stride guard?)";
          v / d
        end)
end
