(** Polyhedra scanning under statement-wise scattering functions — the
    repository's CLooG substitute — plus the OpenMP C emitter.

    Given a {!Pluto.Types.target} (per-statement extended domains and
    scattering rows), produces a loop AST that visits every statement instance
    exactly once, in the lexicographic order of its scattering vector:

    - each scattering level becomes a loop whose bounds come from exact
      Fourier–Motzkin projection of the statement's extended polyhedron
      (with LP-based redundancy pruning);
    - scalar (static) levels separate statements into sequential groups;
    - when several statements share a loop, the loop spans the union of their
      ranges and per-statement affine guards select the right instances;
    - statement instances are recovered from scattering values by inverting
      the (full-rank) scattering; non-unimodular scatterings yield exact
      divisions and modulo guards (CLooG's strides);
    - loops marked parallel by the transformation carry an OpenMP annotation.

    The same AST is consumed by the performance simulator ({!Machine}) and by
    {!print_c}. *)

(** Integer expressions over scattering variables and parameters.  [Affine]
    rows have fixed width [nlevels + nparams + 1] (constant last). *)
type iexpr =
  | Affine of int array
  | Floord of iexpr * int
  | Ceild of iexpr * int
  | Emin of iexpr list
  | Emax of iexpr list

type guard =
  | Ge0 of int array  (** affine row >= 0, width [nlevels + nparams + 1] *)
  | Mod0 of int array * int  (** affine row ≡ 0 (mod d) *)

type ast =
  | For of {
      level : int;
      parallel : bool;
      lb : iexpr;
      ub : iexpr;
      body : ast list;
    }
  | Leaf of {
      stmt_idx : int;  (** index into the target's statement list *)
      guards : guard list;
      args : (int array * int) array;
          (** per extended iterator: (affine row, divisor) — the iterator's
              value is row·(c, p, 1) / divisor (exact when guards hold) *)
    }

type t = {
  target : Pluto.Types.target;
  nlevels : int;
  nparams : int;
  body : ast list;
  unroll : int array;
      (** per-level unroll-jam factor (all 1 from {!generate}); a purely
          cost-model/pragma annotation — iteration order and semantics are
          unchanged, so validation is unaffected.  The C printer emits
          [#pragma unroll(f)] and the {!Machine} simulator amortizes loop
          control overhead over [f] (and charges a remainder-loop cost per
          entry), pricing the classic unroll-jam trade-off. *)
  reductions : (string * string) list array;
      (** per-level [reduction(op:array)] clauses (all empty from
          {!generate}; the driver attaches them under [--reductions]): a
          parallel loop at that level carries a marked reduction whose
          accumulator lives in [array], so the C printer appends whole-array
          OpenMP reduction clauses to the loop's pragma.  Like [unroll] this
          is annotation only — the sequential interpreter and the validator
          see the same iteration order either way. *)
}

exception Codegen_error of string

(** [generate target] scans the union of statement polyhedra under the target
    scattering.  [context_min] (default 1) is the assumed lower bound on every
    structure parameter (CLooG's context).
    @raise Codegen_error on non-full-rank scatterings or unbounded loops. *)
val generate : ?context_min:int -> Pluto.Types.target -> t

(** [with_unroll_innermost t ~factor] marks every innermost loop whose level
    is a parallel loop (or a §5.4 forced-vectorization level) with unroll
    factor [factor] — the loops the tuner's unroll-jam knob targets.  Returns
    [t] unchanged if [factor <= 1] or no loop is eligible. *)
val with_unroll_innermost : t -> factor:int -> t

(** The levels currently carrying an unroll factor > 1. *)
val unrolled_levels : t -> int list

(** [with_reductions t clauses] — attach per-level [(op, array)] reduction
    clauses ([clauses] must have length [nlevels]).
    @raise Invalid_argument on a length mismatch. *)
val with_reductions : t -> (string * string) list array -> t

(** [print_c fmt t] emits compilable C with OpenMP pragmas, [floord]/[ceild]/
    [min]/[max] macros, array declarations and a [main] driver.  With
    [instrument:true] the driver deterministically initializes every array,
    times the loop nest with [clock_gettime] and prints per-array position-
    weighted checksums — the native-execution validation/benchmark mode used
    by {!Runner}. *)
val print_c : ?instrument:bool -> Format.formatter -> t -> unit

(** [print_loop_nest fmt t] emits only the transformed loop nest (the part a
    source-to-source tool would splice back). *)
val print_loop_nest : Format.formatter -> t -> unit

(** Count of AST nodes, for tests and reporting. *)
val size : t -> int

(** Internal entry points exposed for the test suite; not part of the stable
    API. *)
module For_tests : sig
  val pp_iexpr : string array -> Format.formatter -> iexpr -> unit
end

(** The single definition of what the emitted C computes for loop bounds,
    guards and statement arguments.  Every executor of the AST — the
    {!Machine} interpreter/simulator and the [Verify] domain-coverage
    checker — evaluates through here, so a disagreement between them can only
    come from the AST itself, never from divergent evaluators.

    Environments [env] have width [nlevels + nparams] (scattering variables
    then parameters); affine rows have width [nlevels + nparams + 1]. *)
module Eval : sig
  val floord : int -> int -> int
  val ceild : int -> int -> int

  (** [affine row env] evaluates [row·(env, 1)]. *)
  val affine : int array -> int array -> int

  val iexpr : iexpr -> int array -> int
  val guard : guard -> int array -> bool

  (** [leaf_iters args env m] recovers the [m] original-iterator values of a
      statement instance from its leaf [args] (the original iterators are the
      trailing [m] extended iterators).
      @raise Failure if a divisor does not divide exactly (a missing stride
      guard in the AST). *)
  val leaf_iters : (int array * int) array -> int array -> int -> int array
end
