(* See client.mli. *)

type response = {
  r_entry : Manifest.entry;
  r_cached : bool;
  r_coalesced : bool;
  r_raw : string;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Read until the first '\n'.  One response per request and requests are
   synchronous here, so nothing ever follows the newline. *)
let recv_line fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (e, _, _) ->
        (* a daemon hangup (reset mid-read) is a first-class answer, like
           EOF — callers fall back to local compilation *)
        Error ("read failed: " ^ Unix.error_message e)
    | 0 ->
        if Buffer.length buf = 0 then Error "connection closed by daemon"
        else Ok (Buffer.contents buf)
    | n -> (
        match Bytes.index_from_opt chunk 0 '\n' with
        | Some nl when nl < n ->
            Buffer.add_subbytes buf chunk 0 nl;
            Ok (Buffer.contents buf)
        | _ ->
            Buffer.add_subbytes buf chunk 0 n;
            go ())
  in
  go ()

let roundtrip fd line =
  match send_all fd (line ^ "\n") with
  | () -> recv_line fd
  | exception Unix.Unix_error (e, _, _) ->
      Error ("send failed: " ^ Unix.error_message e)

let compile_request ?deadline_s ?(strict = false) ?(verify = false) ~options
    ~name ~source () =
  Printf.sprintf
    "{\"op\": \"compile\", \"name\": %s, \"source\": %s, \"options\": %s, \
     \"strict\": %b, \"verify\": %b%s}"
    (Manifest.json_string name)
    (Manifest.json_string source)
    (Manifest.options_to_json options)
    strict verify
    (match deadline_s with
    | Some d -> Printf.sprintf ", \"deadline_s\": %g" d
    | None -> "")

let parse_response raw =
  match Manifest.Json.parse raw with
  | Error msg -> Error (Printf.sprintf "unparseable response: %s" msg)
  | Ok j -> (
      match Manifest.entry_of_json j with
      | Error msg -> Error msg
      | Ok r_entry ->
          Ok
            {
              r_entry;
              r_cached = Manifest.Json.bool_mem "cached" j ~default:false;
              r_coalesced =
                Manifest.Json.bool_mem "coalesced" j ~default:false;
              r_raw = raw;
            })

let is_busy (r : response) =
  r.r_entry.Manifest.e_status = Manifest.Failed
  && Diag.has_code r.r_entry.Manifest.e_diags "server-busy"

let compile_fd fd ?deadline_s ?strict ?verify ~options ~name ~source () =
  let req =
    compile_request ?deadline_s ?strict ?verify ~options ~name ~source ()
  in
  Result.bind (roundtrip fd req) parse_response

let compile ~socket ?deadline_s ?strict ?verify ~options ~name ~source () =
  match connect socket with
  | None -> `No_daemon
  | Some fd ->
      Fun.protect
        ~finally:(fun () -> close fd)
        (fun () ->
          `Daemon
            (compile_fd fd ?deadline_s ?strict ?verify ~options ~name ~source
               ()))

let admin ~socket line =
  match connect socket with
  | None -> Error "no daemon listening"
  | Some fd ->
      Fun.protect ~finally:(fun () -> close fd) (fun () -> roundtrip fd line)

let stats ~socket = admin ~socket "{\"op\": \"stats\"}"

let op_is line op =
  match Manifest.Json.parse line with
  | Ok j -> Manifest.Json.str_mem "op" j ~default:"" = op
  | Error _ -> false

let ping ~socket =
  match admin ~socket "{\"op\": \"ping\"}" with
  | Ok line -> op_is line "pong"
  | Error _ -> false

let shutdown ~socket =
  match admin ~socket "{\"op\": \"shutdown\"}" with
  | Ok line -> op_is line "shutting-down"
  | Error _ -> false
