(* See server.mli.  Single-threaded [select] event loop multiplexing three
   kinds of file descriptors: listeners (accept), client connections
   (request lines in, response lines out), and the pipes of forked compile
   workers ({!Pool.start} handles).  All compile work happens in workers;
   the loop itself only parses, hashes, caches, and shuffles bytes, so one
   slow compile never blocks another client's cache hit.

   Every resource here is bounded (DESIGN.md §15): connections, queued
   jobs, per-connection pipelining, the input buffer, and the output
   buffer all have configured caps.  Overflow never kills the daemon and
   never grows memory: admission overflow answers with a structured
   [server-busy] entry, oversize requests with [bad-request], and a slow
   reader simply stops being read from until its output drains. *)

let protocol_version = "plutod-v1"

type config = {
  socket_path : string;
  tcp_port : int option;
  jobs : int;
  options : Driver.options;
  default_deadline_s : float option;
  result_cache_entries : int;
  max_connections : int;
  max_pipeline : int;
  max_queue : int;
  max_request_bytes : int;
  max_output_bytes : int;
  solver_cache_entries : int option;
}

let default_config ~socket_path =
  {
    socket_path;
    tcp_port = None;
    jobs = 2;
    options = Driver.default_options;
    default_deadline_s = None;
    result_cache_entries = 256;
    (* [Unix.select] tops out at FD_SETSIZE (1024) descriptors; leave room
       for listeners and worker pipes below it. *)
    max_connections = 768;
    max_pipeline = 32;
    max_queue = 256;
    max_request_bytes = 8 * 1024 * 1024;
    max_output_bytes = 4 * 1024 * 1024;
    solver_cache_entries = None;
  }

(* ------------------------------ request digest ---------------------------- *)

let request_digest ~options ~strict ~verify ~source =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            protocol_version;
            Manifest.options_to_json options;
            string_of_bool strict;
            string_of_bool verify;
            source;
          ]))

(* ------------------------------ worker task ------------------------------- *)

type task_payload = {
  q_name : string;
  q_source : string;
  q_options : Driver.options;
  q_strict : bool;
  q_verify : bool;
}

(* Pure data across the fork boundary: the compile result, the worker's
   per-request counter delta (its Stats were reset at fork), and the
   in-memory solver-cache entries it added on top of the inherited hot
   tables. *)
type task_reply = {
  t_code : string option;
  t_diags : Diag.t list;
  t_rung : string;
  t_counters : (string * int) list;
  t_milp_j : Milp.cache_journal;
  t_poly_j : Polyhedra.cache_journal;
}

(* Unlike {!Batch.compile_one}, the caches are *not* cleared: the worker
   inherited the daemon's hot tables and that is the whole point.  What it
   adds is journaled and shipped back for the daemon to absorb. *)
let compile_task (q : task_payload) : task_reply =
  Milp.set_cache_journal true;
  Polyhedra.set_cache_journal true;
  let t_code, t_diags, t_rung =
    match
      Driver.compile_source_robust ~options:q.q_options ~strict:q.q_strict
        ~verify:q.q_verify ~name:q.q_name q.q_source
    with
    | Error ds -> (None, ds, "none")
    | Ok (r, warns) ->
        let code =
          Format.asprintf "%a" (fun fmt c -> Codegen.print_c fmt c) r.Driver.code
        in
        (Some code, warns, Batch.rung_of warns)
  in
  {
    t_code;
    t_diags;
    t_rung;
    t_counters = Stats.counters ();
    t_milp_j = Milp.take_cache_journal ();
    t_poly_j = Polyhedra.take_cache_journal ();
  }

(* ----------------------------- result caching ----------------------------- *)

(* What outlives a request: enough to rebuild a response (and nothing
   process-specific), stored in the in-memory LRU and, sub-versioned by
   [protocol_version], in the persistent store. *)
type cached = { c_code : string option; c_diags : Diag.t list; c_rung : string }

let store_kind = "server-result"

(* ------------------------------- connections ------------------------------ *)

(* Responses go back in request order per connection: each request claims a
   slot in a FIFO at parse time and fills it whenever its answer is ready
   (cache hits immediately, compiles later); the writer drains filled slots
   from the head only. *)
type slot = { mutable s_resp : string option }

(* Output is staged in two pieces: [out_data]/[out_pos] is the flattened
   front chunk currently being written (partial writes only advance the
   offset — no re-copy), and [out] is a Buffer accumulating whatever was
   produced since the last flatten.  [closing] connections have stopped
   parsing input (their byte stream is corrupt or they were told to go
   away) but still drain pending responses before the socket closes;
   [stalled] marks a connection excluded from the read set because its
   unread output exceeds the budget — the select-loop backpressure. *)
type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  out : Buffer.t;
  mutable out_data : string;
  mutable out_pos : int;
  slots : slot Queue.t;
  mutable alive : bool;
  mutable closing : bool;
  mutable stalled : bool;
}

let pending_out conn =
  String.length conn.out_data - conn.out_pos + Buffer.length conn.out

type waiter = {
  w_conn : conn;
  w_slot : slot;
  w_name : string;
  w_t0 : float;
  w_coalesced : bool;
}

type job = {
  j_digest : string;
  j_payload : task_payload;
  mutable j_waiters : waiter list;  (* newest first *)
  mutable j_handle : task_reply Pool.handle option;  (* None while queued *)
  j_deadline : float option;  (* absolute; from the first requester *)
}

type state = {
  cfg : config;
  t_start : float;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  inflight : (string, job) Hashtbl.t;  (* digest -> job (queued or running) *)
  queue : job Queue.t;  (* FIFO of jobs awaiting a worker *)
  mutable running : job list;
  mutable n_running : int;
  lru : (string, cached * int ref) Hashtbl.t;
  mutable lru_tick : int;
  draining : bool ref;
}

let iter_conns st f = Hashtbl.iter (fun _ c -> f c) st.conns

(* ------------------------------- responses -------------------------------- *)

let entry_of_result ~name ~elapsed (c : cached) =
  let status =
    match c.c_code with
    | None -> Manifest.Failed
    | Some _ ->
        if Driver.degraded c.c_diags then Manifest.Degraded
        else Manifest.Success
  in
  {
    Manifest.e_file = name;
    e_status = status;
    e_rung = c.c_rung;
    e_diags = c.c_diags;
    e_code = c.c_code;
    e_output = None;
    e_elapsed_s = elapsed;
    e_retried = false;
  }

let flush_slots conn =
  let rec go () =
    match Queue.peek_opt conn.slots with
    | Some { s_resp = Some line } ->
        ignore (Queue.pop conn.slots);
        Buffer.add_string conn.out line;
        Buffer.add_char conn.out '\n';
        go ()
    | _ -> ()
  in
  go ()

let respond conn slot line =
  slot.s_resp <- Some line;
  flush_slots conn

let respond_entry ?(extra = []) conn slot entry =
  if entry.Manifest.e_status = Manifest.Failed then
    Stats.incr "server.failures";
  respond conn slot (Manifest.entry_to_json ~include_code:true ~extra entry)

let bool_field b = if b then "true" else "false"

let respond_result ?(cached = false) ?(coalesced = false) ?stats conn slot
    ~name ~elapsed c =
  let extra =
    [ ("cached", bool_field cached); ("coalesced", bool_field coalesced) ]
    @ match stats with None -> [] | Some s -> [ ("stats", s) ]
  in
  respond_entry ~extra conn slot (entry_of_result ~name ~elapsed c)

let error_entry ~name ~elapsed d =
  entry_of_result ~name ~elapsed { c_code = None; c_diags = [ d ]; c_rung = "none" }

let busy_line ~name msg =
  Manifest.entry_to_json ~include_code:true
    ~extra:[ ("busy", "true") ]
    (error_entry ~name ~elapsed:0.0 (Diag.errorf ~code:"server-busy" "%s" msg))

(* A structured admission rejection: the request gets a normal Failed entry
   whose diagnostic code is ["server-busy"], so clients can distinguish
   "overloaded, try again / fall back locally" from a real compile error. *)
let respond_busy conn slot ~name msg =
  Stats.incr "server.busy_rejections";
  respond conn slot (busy_line ~name msg)

(* --------------------------------- LRU ------------------------------------ *)

let lru_find st digest =
  match Hashtbl.find_opt st.lru digest with
  | None -> None
  | Some (c, tick) ->
      st.lru_tick <- st.lru_tick + 1;
      tick := st.lru_tick;
      Some c

let lru_add st digest c =
  if not (Hashtbl.mem st.lru digest) then begin
    st.lru_tick <- st.lru_tick + 1;
    Hashtbl.replace st.lru digest (c, ref st.lru_tick);
    if Hashtbl.length st.lru > st.cfg.result_cache_entries then
      ignore
        (Putil.Lru.trim st.lru ~budget:st.cfg.result_cache_entries
           ~tick:(fun (_, t) -> !t))
  end

(* ------------------------------ job lifecycle ----------------------------- *)

let spawn_ready st =
  let now = Unix.gettimeofday () in
  (* FIFO: oldest queued job first; jobs whose waiters all disconnected
     while queued are dropped instead of burning a worker *)
  let rec go () =
    if st.n_running < st.cfg.jobs && not (Queue.is_empty st.queue) then begin
      let job = Queue.pop st.queue in
      (* closing connections keep their waiters: their already-claimed
         slots still get answered before the socket closes *)
      job.j_waiters <- List.filter (fun w -> w.w_conn.alive) job.j_waiters;
      if job.j_waiters = [] then begin
        Hashtbl.remove st.inflight job.j_digest;
        Stats.incr "server.jobs_abandoned";
        go ()
      end
      else begin
        let task_timeout_s =
          Option.map (fun d -> Float.max 0.001 (d -. now)) job.j_deadline
        in
        Stats.incr "server.compiles";
        job.j_handle <-
          Some (Pool.start ?task_timeout_s ~f:compile_task job.j_payload);
        st.running <- job :: st.running;
        st.n_running <- st.n_running + 1;
        go ()
      end
    end
  in
  go ()

let job_done st job =
  Hashtbl.remove st.inflight job.j_digest;
  st.running <- List.filter (fun j -> j != job) st.running;
  st.n_running <- st.n_running - 1

let answer_waiters job ~f =
  let now = Unix.gettimeofday () in
  List.iter
    (fun w ->
      if w.w_conn.alive then
        f w ~name:w.w_name ~elapsed:(now -. w.w_t0) ~coalesced:w.w_coalesced)
    (List.rev job.j_waiters)

let finish_job st job (o : task_reply Pool.outcome) =
  job_done st job;
  match o.Pool.value with
  | Ok r ->
      (* keep the daemon's solver caches hot for the next fork; the absorb
         itself LRU-trims the tables back under the configured budget *)
      Stats.add "server.cache_absorbed"
        (Milp.cache_journal_length r.t_milp_j
        + Polyhedra.cache_journal_length r.t_poly_j);
      Stats.add "server.cache_evicted"
        (Milp.absorb_cache_journal r.t_milp_j
        + Polyhedra.absorb_cache_journal r.t_poly_j);
      let c = { c_code = r.t_code; c_diags = r.t_diags; c_rung = r.t_rung } in
      if c.c_code <> None then begin
        lru_add st job.j_digest c;
        Store.write_versioned ~version:protocol_version ~kind:store_kind
          ~key:job.j_digest c
      end;
      let stats = Manifest.counters_to_json r.t_counters in
      answer_waiters job ~f:(fun w ~name ~elapsed ~coalesced ->
          respond_result ~coalesced ~stats w.w_conn w.w_slot ~name ~elapsed c)
  | Error d ->
      (* crash/timeout: the structured diagnostic is the response *)
      answer_waiters job ~f:(fun w ~name ~elapsed ~coalesced ->
          respond_result ~coalesced w.w_conn w.w_slot ~name ~elapsed
            { c_code = None; c_diags = [ d ]; c_rung = "none" })

let deadline_diag d =
  Diag.errorf ~code:"pool-timeout"
    "request exceeded its %gs deadline; the compile worker was killed" d

let kill_expired st =
  let now = Unix.gettimeofday () in
  List.iter
    (fun job ->
      match job.j_deadline with
      | Some d when now > d ->
          (match job.j_handle with Some h -> Pool.kill h | None -> ());
          Stats.incr "server.deadline_expired";
          job_done st job;
          answer_waiters job ~f:(fun w ~name ~elapsed ~coalesced ->
              respond_result ~coalesced w.w_conn w.w_slot ~name ~elapsed
                {
                  c_code = None;
                  c_diags = [ deadline_diag (d -. now +. (now -. w.w_t0)) ];
                  c_rung = "none";
                })
      | _ -> ())
    st.running

(* ------------------------------- requests --------------------------------- *)

let push_slot conn =
  let s = { s_resp = None } in
  Queue.push s conn.slots;
  s

let bad_request conn msg =
  Stats.incr "server.bad_requests";
  let slot = push_slot conn in
  respond_entry conn slot
    (error_entry ~name:"<request>" ~elapsed:0.0
       (Diag.errorf ~code:"bad-request" "%s" msg))

(* Stop parsing this connection's input but let already-claimed slots be
   answered and the output drain; the sweep in the main loop closes the
   socket once both are empty.  Reads continue (and are discarded) so a
   client hangup is still noticed immediately. *)
let begin_close conn =
  conn.closing <- true;
  Buffer.clear conn.inbuf

let handle_compile st conn j =
  let module J = Manifest.Json in
  let name = J.str_mem "name" j ~default:"<request>" in
  (* per-connection pipelining cap: [slots] holds every request not yet
     answered-and-flushed, so its length is this client's outstanding debt *)
  if Queue.length conn.slots >= st.cfg.max_pipeline then
    respond_busy conn (push_slot conn) ~name
      (Printf.sprintf
         "per-connection pipelining limit (%d outstanding requests) reached"
         st.cfg.max_pipeline)
  else
    match J.mem "source" j with
    | Some (J.Str source) ->
        let options =
          match J.mem "options" j with
          | Some (J.Obj _ as o) -> Manifest.options_of_json o
          | _ -> st.cfg.options
        in
        let strict = J.bool_mem "strict" j ~default:false in
        let verify = J.bool_mem "verify" j ~default:false in
        let deadline_s =
          match J.mem "deadline_s" j with
          | Some (J.Num f) when f > 0.0 -> Some f
          | _ -> st.cfg.default_deadline_s
        in
        let digest = request_digest ~options ~strict ~verify ~source in
        let slot = push_slot conn in
        let t0 = Unix.gettimeofday () in
        let serve_cached c =
          respond_result ~cached:true conn slot ~name
            ~elapsed:(Unix.gettimeofday () -. t0)
            c
        in
        (match lru_find st digest with
        | Some c ->
            Stats.incr "server.result_cache_hits";
            serve_cached c
        | None -> (
            Stats.incr "server.result_cache_misses";
            match
              (Store.read_versioned ~version:protocol_version ~kind:store_kind
                 ~key:digest
                : cached option)
            with
            | Some c ->
                Stats.incr "server.result_store_hits";
                lru_add st digest c;
                serve_cached c
            | None -> (
                let waiter =
                  {
                    w_conn = conn;
                    w_slot = slot;
                    w_name = name;
                    w_t0 = t0;
                    w_coalesced = Hashtbl.mem st.inflight digest;
                  }
                in
                match Hashtbl.find_opt st.inflight digest with
                | Some job ->
                    (* identical program+options already compiling (or
                       queued): join it — one compile, every waiter answered
                       from it *)
                    Stats.incr "server.dedup_coalesced";
                    job.j_waiters <- waiter :: job.j_waiters
                | None ->
                    (* global admission cap: joining an in-flight compile is
                       free, but a *new* job needs queue room *)
                    if Queue.length st.queue >= st.cfg.max_queue then
                      respond_busy conn slot ~name
                        (Printf.sprintf
                           "compile queue full (%d jobs queued); retry or \
                            compile locally"
                           st.cfg.max_queue)
                    else begin
                      let job =
                        {
                          j_digest = digest;
                          j_payload =
                            {
                              q_name = name;
                              q_source = source;
                              q_options = options;
                              q_strict = strict;
                              q_verify = verify;
                            };
                          j_waiters = [ waiter ];
                          j_handle = None;
                          j_deadline =
                            Option.map (fun s -> t0 +. s) deadline_s;
                        }
                      in
                      Hashtbl.add st.inflight digest job;
                      Queue.push job st.queue
                    end)))
    | _ -> bad_request conn "compile request lacks a \"source\" string"

let stats_json st =
  Printf.sprintf
    "{\"op\": \"stats\", \"protocol\": %s, \"uptime_s\": %.3f, \"inflight\": \
     %d, \"queued\": %d, \"connections\": %d, \"result_cache_entries\": %d, \
     \"solver_cache_entries\": %d, \"stats\": %s}"
    (Manifest.json_string protocol_version)
    (Unix.gettimeofday () -. st.t_start)
    (Hashtbl.length st.inflight) (Queue.length st.queue)
    (Hashtbl.length st.conns) (Hashtbl.length st.lru)
    (Milp.cache_entry_count () + Polyhedra.cache_entry_count ())
    (Stats.to_json ())

let handle_line st conn line =
  Stats.incr "server.requests";
  match Manifest.Json.parse line with
  | Error msg -> bad_request conn (Printf.sprintf "unparseable request: %s" msg)
  | Ok j -> (
      match Manifest.Json.str_mem "op" j ~default:"compile" with
      | "compile" -> handle_compile st conn j
      | "stats" -> respond conn (push_slot conn) (stats_json st)
      | "ping" ->
          respond conn (push_slot conn)
            (Printf.sprintf "{\"op\": \"pong\", \"protocol\": %s}"
               (Manifest.json_string protocol_version))
      | "shutdown" ->
          respond conn (push_slot conn) "{\"op\": \"shutting-down\"}";
          st.draining := true
      | op -> bad_request conn (Printf.sprintf "unknown op %S" op))

(* -------------------------------- socket IO ------------------------------- *)

let close_conn st conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove st.conns conn.fd
  end

let read_chunk = Bytes.create 65536

let conn_readable st conn =
  match
    Fault.unix_error "server.read" Unix.EIO "read";
    Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk)
  with
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> close_conn st conn
  | 0 -> close_conn st conn
  | n ->
      if conn.closing then
        (* input after a protocol error is discarded; reading on just
           detects the client hanging up *)
        ()
      else begin
        Buffer.add_subbytes conn.inbuf read_chunk 0 n;
        (* split complete lines off the front of the buffer; a handled line
           may close or start closing the connection mid-loop (bad request,
           shutdown), after which the rest of the bytes are dead *)
        let data = Buffer.contents conn.inbuf in
        let dlen = String.length data in
        let start = ref 0 in
        let scanning = ref true in
        while !scanning && conn.alive && not conn.closing do
          match String.index_from_opt data !start '\n' with
          | Some nl ->
              let line = String.sub data !start (nl - !start) in
              start := nl + 1;
              if String.trim line <> "" then handle_line st conn line
          | None -> scanning := false
        done;
        if conn.alive && not conn.closing then begin
          Buffer.clear conn.inbuf;
          if !start < dlen then
            Buffer.add_substring conn.inbuf data !start (dlen - !start);
          (* bound [inbuf]: a newline-free request longer than the cap can
             never complete, so reject it instead of buffering forever *)
          if Buffer.length conn.inbuf > st.cfg.max_request_bytes then begin
            bad_request conn
              (Printf.sprintf
                 "request line exceeds the %d-byte limit (--max-request-bytes)"
                 st.cfg.max_request_bytes);
            begin_close conn
          end
        end
      end

let conn_writable st conn =
  if conn.out_pos >= String.length conn.out_data then begin
    (* flatten the staged Buffer exactly once per drained chunk *)
    conn.out_data <- Buffer.contents conn.out;
    conn.out_pos <- 0;
    Buffer.clear conn.out
  end;
  let len = String.length conn.out_data - conn.out_pos in
  if len > 0 then
    match
      Fault.unix_error "server.write" Unix.EIO "write";
      Unix.write_substring conn.fd conn.out_data conn.out_pos len
    with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn st conn
    | n ->
        (* partial writes only advance the offset — no O(n²) re-copying *)
        conn.out_pos <- conn.out_pos + n;
        if conn.out_pos >= String.length conn.out_data then begin
          conn.out_data <- "";
          conn.out_pos <- 0
        end

(* Accept one pending connection; [true] when something was accepted (the
   caller loops until the nonblocking listener runs dry). *)
let accept_conn st listener =
  match
    Fault.unix_error "server.accept" Unix.EMFILE "accept";
    Unix.accept listener
  with
  | exception Unix.Unix_error _ -> false
  | fd, _ ->
      if Hashtbl.length st.conns >= st.cfg.max_connections then begin
        (* over the connection cap: still answer with a structured busy
           line (best-effort — the socket buffer is empty, one line fits)
           so the client knows to back off instead of seeing a bare RST *)
        Stats.incr "server.busy_rejections";
        let line =
          busy_line ~name:"<connect>"
            (Printf.sprintf "connection limit (%d) reached"
               st.cfg.max_connections)
          ^ "\n"
        in
        (try ignore (Unix.write_substring fd line 0 (String.length line))
         with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        true
      end
      else begin
        Stats.incr "server.connections";
        (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
        Hashtbl.replace st.conns fd
          {
            fd;
            inbuf = Buffer.create 4096;
            out = Buffer.create 4096;
            out_data = "";
            out_pos = 0;
            slots = Queue.create ();
            alive = true;
            closing = false;
            stalled = false;
          };
        true
      end

let rec accept_all st listener =
  if accept_conn st listener then accept_all st listener

(* ------------------------------- listeners -------------------------------- *)

let bind_unix path =
  if Sys.file_exists path then begin
    (* stale socket file from a dead daemon?  probe before stealing it *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith
        (Printf.sprintf "plutod: a daemon is already listening on %s" path);
    (try Sys.remove path with Sys_error _ -> ())
  end;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 1024;
  fd

let bind_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 1024;
  fd

(* -------------------------------- main loop ------------------------------- *)

let run cfg =
  (* a client gone mid-write must be an EPIPE error on our write, not death *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (match cfg.solver_cache_entries with
  | Some n ->
      (* forked workers inherit the budget, so their tables stay bounded
         too; the journals they ship back are deltas, re-trimmed on absorb *)
      Milp.set_cache_budget n;
      Polyhedra.set_cache_budget n
  | None -> ());
  let listeners =
    bind_unix cfg.socket_path
    :: (match cfg.tcp_port with Some p -> [ bind_tcp p ] | None -> [])
  in
  List.iter
    (fun fd -> try Unix.set_nonblock fd with Unix.Unix_error _ -> ())
    listeners;
  let st =
    {
      cfg;
      t_start = Unix.gettimeofday ();
      conns = Hashtbl.create 64;
      inflight = Hashtbl.create 16;
      queue = Queue.create ();
      running = [];
      n_running = 0;
      lru = Hashtbl.create 64;
      lru_tick = 0;
      draining = ref false;
    }
  in
  let remove_socket () =
    try Sys.remove cfg.socket_path with Sys_error _ -> ()
  in
  (* belt and braces: if some later layer installs the {!Pool.Cleanup}
     signal handlers over ours, the socket file still gets removed *)
  let cleanup_id = Pool.Cleanup.register remove_socket in
  (* graceful drain on the first SIGTERM/SIGINT; a second one means "now" *)
  let on_signal _ =
    if !(st.draining) then begin
      remove_socket ();
      Unix._exit 130
    end
    else st.draining := true
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  (* last-resort guard: one request must never take the daemon (and every
     other client) down.  Anything that escapes a dispatch is counted and
     the offending connection closed; ["server.crashes"] staying 0 under
     the load suite is the proof the guard is dead code in practice. *)
  let guard ?conn st f =
    try f ()
    with
    | Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exn ->
        Stats.incr "server.crashes";
        prerr_endline
          (Printf.sprintf "plutod: dispatch error: %s"
             (Printexc.to_string exn));
        (match conn with Some c -> close_conn st c | None -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        listeners;
      iter_conns st (fun c ->
          try Unix.close c.fd with Unix.Unix_error _ -> ());
      remove_socket ();
      Pool.Cleanup.release cleanup_id)
    (fun () ->
      let finished () =
        !(st.draining)
        && Queue.is_empty st.queue
        && st.running = []
        && Hashtbl.fold (fun _ c acc -> acc && pending_out c = 0) st.conns
             true
      in
      while not (finished ()) do
        spawn_ready st;
        kill_expired st;
        (* sweep: closing connections whose every claimed slot has been
           answered and whose output has drained can finally close *)
        let done_closing =
          Hashtbl.fold
            (fun _ c acc ->
              if c.closing && Queue.is_empty c.slots && pending_out c = 0
              then c :: acc
              else acc)
            st.conns []
        in
        List.iter (fun c -> close_conn st c) done_closing;
        let now = Unix.gettimeofday () in
        let conn_reads =
          Hashtbl.fold
            (fun fd c acc ->
              (* backpressure: a connection whose unread output exceeds the
                 budget stops being read from — its requests (and its
                 bytes) wait in the kernel until it drains what it asked
                 for.  Closing connections are still read (and discarded)
                 to notice hangups. *)
              if
                (not c.closing)
                && pending_out c > st.cfg.max_output_bytes
              then begin
                if not c.stalled then begin
                  c.stalled <- true;
                  Stats.incr "server.slow_reader_stalls"
                end;
                acc
              end
              else begin
                c.stalled <- false;
                fd :: acc
              end)
            st.conns []
        in
        let reads =
          (if !(st.draining) then [] else listeners)
          @ conn_reads
          @ List.filter_map
              (fun j -> Option.bind j.j_handle Pool.handle_fd)
              st.running
        in
        let writes =
          Hashtbl.fold
            (fun fd c acc -> if pending_out c > 0 then fd :: acc else acc)
            st.conns []
        in
        let timeout =
          (* wake for the next deadline, and periodically to notice the
             drain flag flipped by a signal *)
          List.fold_left
            (fun acc j ->
              match j.j_deadline with
              | Some d -> Float.min acc (Float.max 0.001 (d -. now))
              | None -> acc)
            0.5 st.running
        in
        match Unix.select reads writes [] timeout with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) ->
            (* a connection closed by a mid-iteration dispatch can leave a
               dead fd in this iteration's sets; the next loop rebuilds
               them from live state *)
            ()
        | ready_r, ready_w, _ ->
            List.iter
              (fun fd ->
                if List.memq fd listeners then
                  (* accept everything ready, not one per wakeup: the
                     nonblocking listener raises EAGAIN when drained *)
                  guard st (fun () -> accept_all st fd)
                else
                  match Hashtbl.find_opt st.conns fd with
                  | Some conn ->
                      guard ~conn st (fun () -> conn_readable st conn)
                  | None -> (
                      match
                        List.find_opt
                          (fun j ->
                            Option.bind j.j_handle Pool.handle_fd
                            = Some fd)
                          st.running
                      with
                      | Some job ->
                          guard st (fun () ->
                              match Pool.pump (Option.get job.j_handle) with
                              | `Pending -> ()
                              | `Done o -> finish_job st job o)
                      | None -> ()))
              ready_r;
            List.iter
              (fun fd ->
                match Hashtbl.find_opt st.conns fd with
                | Some conn ->
                    guard ~conn st (fun () -> conn_writable st conn)
                | None -> ())
              ready_w
      done)
