(** Client side of the [plutod] protocol (see {!Server}).

    Used by [plutocc --connect SOCK], the tests, and the bench harness.
    Every helper is synchronous: send one request line, read one response
    line.  [`No_daemon] (nothing listening on the socket) is a first-class
    answer so callers can fall back to local compilation — the CLI contract
    of [--connect]. *)

type response = {
  r_entry : Manifest.entry;  (** the decoded manifest entry, code included *)
  r_cached : bool;  (** served from the daemon's result cache or store *)
  r_coalesced : bool;  (** joined an identical in-flight compile *)
  r_raw : string;  (** the response line as received *)
}

(** [is_busy r] — the daemon rejected this request at admission (code
    ["server-busy"]: connection, pipelining, or queue cap).  Callers
    should treat it like [`No_daemon] and compile locally: the result is
    an overload signal, never a compile failure. *)
val is_busy : response -> bool

(** Decode one response line into a {!response}.  Exposed for clients
    that multiplex their own sockets (the load generator) instead of
    using the synchronous helpers below. *)
val parse_response : string -> (response, string) result

(** Connect to the daemon; [None] when nothing is listening (absent or
    stale socket). *)
val connect : string -> Unix.file_descr option

val close : Unix.file_descr -> unit

(** One round trip on an open connection: send [line], read the response
    line.  [Error] on a dropped connection. *)
val roundtrip : Unix.file_descr -> string -> (string, string) result

(** Build a compile request line (canonical options encoding — the same
    bytes the daemon digests for dedup). *)
val compile_request :
  ?deadline_s:float -> ?strict:bool -> ?verify:bool ->
  options:Driver.options -> name:string -> source:string -> unit -> string

(** Compile over an open connection. *)
val compile_fd :
  Unix.file_descr ->
  ?deadline_s:float -> ?strict:bool -> ?verify:bool ->
  options:Driver.options -> name:string -> source:string -> unit ->
  (response, string) result

(** One-shot compile: connect, compile, close.  [`No_daemon] when nothing
    listens on [socket]. *)
val compile :
  socket:string ->
  ?deadline_s:float -> ?strict:bool -> ?verify:bool ->
  options:Driver.options -> name:string -> source:string -> unit ->
  [ `Daemon of (response, string) result | `No_daemon ]

(** The daemon's aggregate [{"op":"stats"}] response line. *)
val stats : socket:string -> (string, string) result

(** Liveness probe: [true] iff a daemon answered the ping. *)
val ping : socket:string -> bool

(** Ask the daemon to drain and exit; [true] iff it acknowledged. *)
val shutdown : socket:string -> bool
