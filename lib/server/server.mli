(** Compilation-as-a-service: the [plutod] daemon core.

    A long-lived server that answers compile requests over a Unix-domain
    socket (and optionally TCP on localhost), amortizing everything a
    standalone [plutocc] pays per run: process startup, cold in-memory
    solver caches, and store round-trips.

    {2 Protocol}

    Newline-delimited JSON, one object per line in each direction.
    Requests carry an ["op"]:

    - [{"op": "compile", "name": f, "source": src, "options": {...},
        "strict": b, "verify": b, "deadline_s": s}] — compile [src].
      [options] uses the canonical encoding of {!Manifest.options_to_json};
      omitted fields (or the whole object) default to the daemon's
      configured options.  The response is exactly a batch-manifest entry
      ({!Manifest.entry_to_json} — same encoder, so batch manifests and
      daemon responses can never drift) extended with ["code"] (the
      rendered C), ["cached"], ["coalesced"], and ["stats"] (the worker's
      per-request counter delta, fresh compiles only).
    - [{"op": "stats"}] — aggregate daemon observability: uptime, in-flight
      count, and the full {!Stats.to_json} tables (workers' deltas merged).
    - [{"op": "ping"}] — liveness probe, answered with [{"op": "pong"}].
    - [{"op": "shutdown"}] — begin a graceful drain, as if SIGTERMed.

    {2 Semantics}

    Each compile is one forked {!Pool} worker ({!Pool.start}), so a crash
    or deadline overrun costs exactly that request.  Requests are deduped
    by digest of (protocol version, canonical options, strict, verify,
    source): an identical request arriving while a compile is in flight
    joins it — one compile, every waiter answered from the single result
    (counter ["server.dedup_coalesced"]).  Finished results enter an
    in-memory LRU and the persistent {!Store} (kind ["server-result"],
    sub-versioned by {!protocol_version}), so a restarted daemon serves
    warm from disk.  Workers inherit the daemon's hot in-memory solver
    caches by fork and journal what they add ({!Milp.take_cache_journal});
    the daemon absorbs each delta, so the caches heat up monotonically
    across requests without ever marshaling whole tables.

    SIGTERM/SIGINT (or [{"op": "shutdown"}]) starts a graceful drain: stop
    accepting, finish and answer every accepted request, remove the socket
    file, return.  A second signal exits immediately (still removing the
    socket).  Fault sites ["server.accept"], ["server.read"],
    ["server.write"] let the chaos harness hit every socket boundary.

    {2 Bounded resources (DESIGN.md §15)}

    Every per-client and global resource has a configured cap, and
    overflow is answered, never absorbed:

    - [max_connections]: connections over the cap are accepted, answered
      with one structured [server-busy] entry, and closed.
    - [max_pipeline]: a connection with that many unanswered requests gets
      [server-busy] for further ones until responses drain.
    - [max_queue]: a compile that would queue a {e new} job (cache hits
      and coalesced joins are exempt) gets [server-busy] when the queue is
      full.
    - [max_request_bytes]: a newline-free request longer than this gets a
      [bad-request] entry and the connection enters a draining close.
    - [max_output_bytes]: a connection whose unread output exceeds this is
      excluded from the read set until it drains — real backpressure; the
      daemon's memory per slow reader stays bounded.
    - [solver_cache_entries]: entry budget for the absorbed [Milp] and
      [Polyhedra] hot caches ({!Milp.set_cache_budget}); LRU eviction,
      counted by ["server.cache_evicted"].

    A [server-busy]/[bad-request] rejection is a normal Failed manifest
    entry whose diagnostic carries that code, so clients can fall back
    locally ({!Client.is_busy}).

    Counters: the ["server.*"] family documented in {!Stats}. *)

(** Version stamp of the wire protocol and of stored results.  Bump when
    the request digest inputs or the response encoding change: a restarted
    daemon then re-keys its store entries instead of serving skew. *)
val protocol_version : string

type config = {
  socket_path : string;
  tcp_port : int option;  (** also listen on 127.0.0.1:port *)
  jobs : int;  (** max concurrent compile workers *)
  options : Driver.options;  (** defaults for requests that omit options *)
  default_deadline_s : float option;
      (** per-request wall-clock budget when the request names none;
          exceeding it kills the worker and answers with the structured
          ["pool-timeout"] diagnostic *)
  result_cache_entries : int;  (** in-memory result LRU capacity *)
  max_connections : int;
      (** connection cap (default 768 — [Unix.select] tops out at 1024
          descriptors); overflow gets one [server-busy] line and a close *)
  max_pipeline : int;  (** outstanding requests per connection *)
  max_queue : int;  (** queued (not yet running) compile jobs, globally *)
  max_request_bytes : int;
      (** upper bound on one request line (and thus on a connection's
          input buffer); longer is [bad-request] + close *)
  max_output_bytes : int;
      (** per-connection unread-output budget before the daemon stops
          reading from that connection (backpressure) *)
  solver_cache_entries : int option;
      (** entry budget for each absorbed solver-cache table; [None] keeps
          the library default (100k per table) *)
}

val default_config : socket_path:string -> config

(** Compute the dedup/result-cache digest of a request — exposed so tests
    and tools can predict cache keys. *)
val request_digest :
  options:Driver.options -> strict:bool -> verify:bool -> source:string ->
  string

(** Run the daemon until a graceful drain completes.  Binds the socket
    (replacing a stale socket file left by a dead daemon; refuses to start
    when a live daemon already listens — [Failure]), serves, and removes
    the socket file on every exit path, including SIGINT/SIGTERM. *)
val run : config -> unit
