(** Reusable crash-isolated worker pool over [Unix.fork].

    Extracted from the autotuner and generalized so every layer that fans
    work out across processes — the tuner's candidate evaluations, the batch
    compilation driver, tests — shares one pool with one failure story:

    - a worker that dies (signal, [_exit], OOM-kill) or writes a truncated
      payload yields a structured {!Diag.t} (code ["worker-crashed"]) after
      its retries are exhausted — never a parent exception;
    - crashed tasks are retried on fresh workers with exponential backoff
      ([retry_backoff_s * 2^(attempt-1)]); a retry that would start past
      the optional overall [retry_deadline_s] is abandoned with code
      ["pool-deadline"];
    - a task exceeding the per-task SIGALRM wall-clock budget yields code
      ["pool-timeout"];
    - an exception raised by the task function yields code
      ["worker-exception"] (deterministic failures are not retried);
    - an [EINTR]'d pipe read (real, or injected via {!Fault} site
      ["pool.read.eintr"]) is retried, never mistaken for end-of-stream;
    - the in-flight set is bounded by [jobs]; remaining work queues.

    Workers ship a {!Stats.snapshot} alongside their result and the parent
    merges it, so counters and timers ([--stats]) are accurate regardless of
    [jobs].  The sequential path ([jobs <= 1]) uses the same reset/merge
    accounting, so a task can read its own per-task counters in either mode
    and totals are mode-independent.

    Results are keyed by task index and returned in input order: scheduling
    cannot affect what the caller sees.  Task inputs and outputs cross the
    fork boundary via [Marshal], so both must be pure data (no closures, no
    custom blocks); keep payloads self-contained.

    Fault injection ({!Fault}): per spawn, the parent draws whether the
    child SIGKILLs itself (site ["pool.worker.kill"]) or truncates its
    result payload (["pool.payload.truncate"]); both exercise exactly the
    crash/retry machinery above.

    Counters: ["pool.tasks"], ["pool.spawned"], ["pool.crashes"],
    ["pool.retries"], ["pool.backoff_waits"], ["pool.timeouts"],
    ["pool.eintr_retries"]. *)

type 'r outcome = {
  value : ('r, Diag.t) result;
      (** the task's result, or the structured failure described above *)
  retried : bool;  (** at least one crashed attempt preceded this outcome *)
  elapsed_s : float;  (** wall-clock of the final attempt *)
}

(** [map ~jobs ?task_timeout_s ?retries ?retry_backoff_s ?retry_deadline_s
    ~f tasks] — run [f] on every task, at most [jobs] concurrently on
    forked workers ([jobs <= 1] runs in-process), each under
    [task_timeout_s] seconds of wall clock (omit or [<= 0] = unlimited).
    Crashed tasks are retried on a fresh worker up to [retries] times
    (default 1), delayed by [retry_backoff_s * 2^(attempt-1)] seconds
    (default base 0.05); with [retry_deadline_s], no retry is started after
    that many seconds from the call.  Outcomes are in input order. *)
val map :
  jobs:int ->
  ?task_timeout_s:float ->
  ?retries:int ->
  ?retry_backoff_s:float ->
  ?retry_deadline_s:float ->
  f:('a -> 'r) ->
  'a list ->
  'r outcome list

(** {1 Single asynchronous tasks}

    The compile daemon multiplexes many in-flight compiles over [select];
    it needs workers it can start, poll, and kill individually.  A handle
    wraps exactly one forked worker running one task: the owner adds
    {!handle_fd} to its select set and calls {!pump} whenever it is
    readable.  There are no retries on this path — a crashed worker is
    reported as its ["worker-crashed"] outcome and the caller decides. *)

type 'r handle

(** [start ?task_timeout_s ~f x] — fork one worker running [f x] under the
    optional SIGALRM budget, with the same stats-shipping protocol and
    fault sites as {!map} workers. *)
val start : ?task_timeout_s:float -> f:('a -> 'r) -> 'a -> 'r handle

(** The worker's pipe, to select on; [None] once the task is done. *)
val handle_fd : 'r handle -> Unix.file_descr option

(** Read available payload bytes.  Returns [`Done outcome] after worker
    EOF (the worker is reaped and its stats delta merged, exactly like
    {!map}); further calls return the same outcome. *)
val pump : 'r handle -> [ `Pending | `Done of 'r outcome ]

(** SIGKILL the worker and reap it; the handle becomes [`Done] with a
    ["worker-crashed"] outcome.  No-op if already done.  Used to enforce
    per-request deadlines from the parent side. *)
val kill : 'r handle -> unit

(** {1 Signal-exit cleanup}

    Cleanup closures run when the process dies via SIGINT or SIGTERM — so
    temp directories ({!with_temp_dir}) and daemon socket files don't
    outlive their owner.  Handlers are installed lazily on first
    [register]; any previously installed handler is chained, otherwise the
    default disposition is restored and the signal re-raised, preserving
    the exit status.  The registry is per-process: forked children never
    run (or keep) their parent's cleanups. *)
module Cleanup : sig
  (** [register f] — run [f] on signal exit, until {!release}d.  Returns a
      token. *)
  val register : (unit -> unit) -> int

  val release : int -> unit
end

(** [with_temp_dir ?prefix f] — run [f dir] on a freshly created private
    temporary directory, removing it afterwards — including when the
    process dies via SIGINT/SIGTERM mid-[f] (see {!Cleanup}).  The
    directory is created atomically ([mkdir] with a fresh name, retried on
    [EEXIST]) — the mkdtemp discipline — so concurrent processes can never
    race a probe-then-create window. *)
val with_temp_dir : ?prefix:string -> (string -> 'a) -> 'a

(** [fresh_temp_dir ?prefix ()] — just the atomic creation; the caller owns
    cleanup. *)
val fresh_temp_dir : ?prefix:string -> unit -> string
