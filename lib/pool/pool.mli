(** Reusable crash-isolated worker pool over [Unix.fork].

    Extracted from the autotuner and generalized so every layer that fans
    work out across processes — the tuner's candidate evaluations, the batch
    compilation driver, tests — shares one pool with one failure story:

    - a worker that dies (signal, [_exit], OOM-kill) or writes a truncated
      payload yields a structured {!Diag.t} (code ["worker-crashed"]) and
      one retry on a fresh worker — never a parent exception;
    - a task exceeding the per-task SIGALRM wall-clock budget yields code
      ["pool-timeout"];
    - an exception raised by the task function yields code
      ["worker-exception"] (deterministic failures are not retried);
    - the in-flight set is bounded by [jobs]; remaining work queues.

    Workers ship a {!Stats.snapshot} alongside their result and the parent
    merges it, so counters and timers ([--stats]) are accurate regardless of
    [jobs].  The sequential path ([jobs <= 1]) uses the same reset/merge
    accounting, so a task can read its own per-task counters in either mode
    and totals are mode-independent.

    Results are keyed by task index and returned in input order: scheduling
    cannot affect what the caller sees.  Task inputs and outputs cross the
    fork boundary via [Marshal], so both must be pure data (no closures, no
    custom blocks); keep payloads self-contained.

    Counters: ["pool.tasks"], ["pool.spawned"], ["pool.crashes"],
    ["pool.retries"], ["pool.timeouts"]. *)

type 'r outcome = {
  value : ('r, Diag.t) result;
      (** the task's result, or the structured failure described above *)
  retried : bool;  (** at least one crashed attempt preceded this outcome *)
  elapsed_s : float;  (** wall-clock of the final attempt *)
}

(** [map ~jobs ?task_timeout_s ?retries ~f tasks] — run [f] on every task,
    at most [jobs] concurrently on forked workers ([jobs <= 1] runs
    in-process), each under [task_timeout_s] seconds of wall clock (omit or
    [<= 0] = unlimited).  Crashed tasks are retried on a fresh worker up to
    [retries] times (default 1).  Outcomes are in input order. *)
val map :
  jobs:int ->
  ?task_timeout_s:float ->
  ?retries:int ->
  f:('a -> 'r) ->
  'a list ->
  'r outcome list

(** [with_temp_dir ?prefix f] — run [f dir] on a freshly created private
    temporary directory, removing it afterwards.  The directory is created
    atomically ([mkdir] with a fresh name, retried on [EEXIST]) — the
    mkdtemp discipline — so concurrent processes can never race a
    probe-then-create window. *)
val with_temp_dir : ?prefix:string -> (string -> 'a) -> 'a

(** [fresh_temp_dir ?prefix ()] — just the atomic creation; the caller owns
    cleanup. *)
val fresh_temp_dir : ?prefix:string -> unit -> string
