(* See pool.mli.  The design target is crash isolation: a worker that dies,
   hangs past its budget, or writes a truncated payload must surface as a
   structured per-task error (and bounded retries), never as a parent
   exception.

   Protocol: each worker is a [Unix.fork] with a dedicated pipe.  The worker
   resets {!Stats}, runs the task under an optional SIGALRM budget, marshals
   [(result, stats snapshot)] up the pipe and hard-exits with [Unix._exit]
   (so the parent's buffered output is never flushed twice).  The parent
   drains every worker's pipe with [select] *before* reaping it — a payload
   larger than the pipe buffer (batch workers ship whole generated C files)
   would otherwise deadlock worker-write against parent-wait — and then
   parses the accumulated bytes with [Marshal.from_string], mapping any
   parse failure or abnormal exit to the structured crash path.

   Crashed tasks are requeued with exponential backoff
   (retry_backoff_s * 2^(attempt-1)); a retry whose start time would fall
   past the optional overall deadline is not attempted and the task fails
   with code "pool-deadline".

   Fault injection ({!Fault}): the parent decides per spawn whether the
   child should SIGKILL itself ("pool.worker.kill") or truncate its payload
   ("pool.payload.truncate") — decided parent-side so the per-site call
   index advances once per spawn and retries draw fresh decisions — and the
   pipe-read path can be hit with EINTR storms ("pool.read.eintr"), which
   are retried like real EINTRs. *)

type 'r outcome = {
  value : ('r, Diag.t) result;
  retried : bool;
  elapsed_s : float;
}

(* What crosses the pipe: the task's own result or a structured failure,
   plus the worker's stats delta. *)
type wire_error = Wire_exn of string | Wire_timeout of float

exception Task_timeout

(* Run [f] under a SIGALRM wall-clock budget ([None]/[<= 0] = unlimited). *)
let with_timeout ~seconds f =
  match seconds with
  | Some s when s > 0.0 ->
      let old =
        Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Task_timeout))
      in
      Fun.protect
        ~finally:(fun () ->
          ignore (Unix.alarm 0);
          Sys.set_signal Sys.sigalrm old)
        (fun () ->
          ignore (Unix.alarm (max 1 (int_of_float (Float.ceil s))));
          f ())
  | _ -> f ()

let timeout_diag s =
  Diag.errorf ~code:"pool-timeout"
    "worker task exceeded its %gs wall-clock budget" s

let exn_diag msg = Diag.errorf ~code:"worker-exception" "worker task raised: %s" msg

let crash_diag ~attempts status =
  let how =
    match status with
    | Some (Unix.WEXITED n) -> Printf.sprintf "exited with code %d" n
    | Some (Unix.WSIGNALED s) -> Printf.sprintf "killed by signal %d" s
    | Some (Unix.WSTOPPED s) -> Printf.sprintf "stopped by signal %d" s
    | None -> "produced no parseable result"
  in
  Diag.errorf ~code:"worker-crashed"
    "worker %s without a complete result payload (%d attempt%s)" how attempts
    (if attempts = 1 then "" else "s")

let deadline_diag ~attempts deadline_s =
  Diag.errorf ~code:"pool-deadline"
    "worker crashed and the retry would start past the pool's %gs deadline \
     (%d attempt%s)"
    deadline_s attempts
    (if attempts = 1 then "" else "s")

let of_wire = function
  | Ok v -> Ok v
  | Error (Wire_exn msg) -> Error (exn_diag msg)
  | Error (Wire_timeout s) ->
      Stats.incr "pool.timeouts";
      Error (timeout_diag s)

(* ------------------------------ sequential ------------------------------- *)

(* jobs <= 1: run in-process, but with the same stats accounting as a forked
   worker (reset before the task, merge the delta after), so per-task
   counters read by [f] and the parent's totals are mode-independent. *)
let run_sequential ?task_timeout_s ~f x =
  let parent = Stats.snapshot () in
  Stats.reset ();
  let t0 = Unix.gettimeofday () in
  let res =
    match with_timeout ~seconds:task_timeout_s (fun () -> f x) with
    | v -> Ok v
    | exception Task_timeout ->
        Error (Wire_timeout (Option.value task_timeout_s ~default:0.0))
    | exception ((Out_of_memory | Sys.Break) as e) ->
        let task = Stats.snapshot () in
        Stats.reset ();
        Stats.merge parent;
        Stats.merge task;
        raise e
    | exception e -> Error (Wire_exn (Printexc.to_string e))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let task = Stats.snapshot () in
  Stats.reset ();
  Stats.merge parent;
  Stats.merge task;
  { value = of_wire res; retried = false; elapsed_s = elapsed }

(* --------------------------- signal-safe cleanup -------------------------- *)

(* A registry of cleanup closures run when the process dies via SIGINT or
   SIGTERM, so temp dirs and daemon sockets don't outlive their owner.
   Handlers are installed lazily on first registration; the previous
   handler (if any) is chained, otherwise the default disposition is
   restored and the signal re-raised so the exit status stays honest.
   Cleanups belong to the registering process only: a forked child that
   inherits the table must not delete its parent's resources, so both the
   handler and [register] compare the owner pid. *)
module Cleanup = struct
  let cleanups : (int, unit -> unit) Hashtbl.t = Hashtbl.create 8
  let next_id = ref 0
  let owner : int option ref = ref None
  let prev_int = ref Sys.Signal_default
  let prev_term = ref Sys.Signal_default

  let run_all () =
    Hashtbl.iter (fun _ f -> try f () with _ -> ()) cleanups;
    Hashtbl.reset cleanups

  let handler prev signum =
    if !owner = Some (Unix.getpid ()) then run_all ();
    match !prev with
    | Sys.Signal_handle f -> f signum
    | _ ->
        Sys.set_signal signum Sys.Signal_default;
        Unix.kill (Unix.getpid ()) signum

  let mine_int : Sys.signal_behavior option ref = ref None
  let mine_term : Sys.signal_behavior option ref = ref None

  let install () =
    owner := Some (Unix.getpid ());
    let inst signum prev mine =
      let h = Sys.Signal_handle (handler prev) in
      let old = Sys.signal signum h in
      (* After a fork the displaced disposition may be this module's own
         handler inherited from the parent process: chaining to it would
         recurse forever, and the parent's cleanups are not ours to run —
         treat it as default so the re-kill terminates the process. *)
      prev :=
        (match (!mine, old) with
        | Some (Sys.Signal_handle m), Sys.Signal_handle o when m == o ->
            Sys.Signal_default
        | _ -> old);
      mine := Some h
    in
    inst Sys.sigint prev_int mine_int;
    inst Sys.sigterm prev_term mine_term

  let register f =
    (* first registration in this process (post-fork included): claim the
       registry — inherited entries belong to the parent, drop them here *)
    if !owner <> Some (Unix.getpid ()) then begin
      Hashtbl.reset cleanups;
      install ()
    end;
    incr next_id;
    Hashtbl.replace cleanups !next_id f;
    !next_id

  let release id = Hashtbl.remove cleanups id
end

(* ------------------------------- fork pool ------------------------------- *)

type 'a running = {
  r_idx : int;
  r_task : 'a;
  r_attempts : int; (* attempts already spent, including this one *)
  r_pid : int;
  r_fd : Unix.file_descr;
  r_buf : Buffer.t;
  r_t0 : float;
}

(* A task waiting to (re)start; [p_ready_at] is 0 for first attempts and
   now + backoff for retries. *)
type 'a pending = {
  p_idx : int;
  p_task : 'a;
  p_attempts : int;
  p_ready_at : float;
}

let spawn ?task_timeout_s ~f (p : _ pending) =
  let r, w = Unix.pipe ~cloexec:false () in
  (* fault decisions are drawn in the parent, one per spawn, so a retry of
     a killed worker is a fresh draw rather than a guaranteed repeat *)
  let kill_child = Fault.fire "pool.worker.kill" in
  let truncate_payload = Fault.fire "pool.payload.truncate" in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* worker *)
      Unix.close r;
      (* don't inherit the parent's termination handlers (daemon drain,
         cleanup registry): a signaled worker should just die *)
      Sys.set_signal Sys.sigint Sys.Signal_default;
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      Stats.reset ();
      if kill_child then Unix.kill (Unix.getpid ()) Sys.sigkill;
      let res =
        match with_timeout ~seconds:task_timeout_s (fun () -> f p.p_task) with
        | v -> Ok v
        | exception Task_timeout ->
            Error (Wire_timeout (Option.value task_timeout_s ~default:0.0))
        | exception e -> Error (Wire_exn (Printexc.to_string e))
      in
      (try
         let payload = Marshal.to_string (res, Stats.snapshot ()) [] in
         let payload =
           if truncate_payload then
             String.sub payload 0 (String.length payload / 2)
           else payload
         in
         let oc = Unix.out_channel_of_descr w in
         output_string oc payload;
         flush oc
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close w;
      Stats.incr "pool.spawned";
      {
        r_idx = p.p_idx;
        r_task = p.p_task;
        r_attempts = p.p_attempts + 1;
        r_pid = pid;
        r_fd = r;
        r_buf = Buffer.create 4096;
        r_t0 = Unix.gettimeofday ();
      }

let map ~jobs ?task_timeout_s ?(retries = 1) ?(retry_backoff_s = 0.05)
    ?retry_deadline_s ~f tasks =
  let n = List.length tasks in
  Stats.add "pool.tasks" n;
  if jobs <= 1 then List.map (run_sequential ?task_timeout_s ~f) tasks
  else begin
    let t_start = Unix.gettimeofday () in
    let deadline = Option.map (fun s -> t_start +. s) retry_deadline_s in
    let pending =
      ref
        (List.mapi
           (fun i x -> { p_idx = i; p_task = x; p_attempts = 0; p_ready_at = 0.0 })
           tasks)
    in
    let results : (int, 'r outcome) Hashtbl.t = Hashtbl.create n in
    let running = ref [] in
    let finalize w status =
      let elapsed = Unix.gettimeofday () -. w.r_t0 in
      let payload =
        match
          (Marshal.from_string (Buffer.contents w.r_buf) 0
            : ('r, wire_error) result * Stats.snapshot)
        with
        | p -> Some p
        | exception _ -> None
      in
      match payload with
      | Some (res, snap) ->
          Stats.merge snap;
          Hashtbl.replace results w.r_idx
            { value = of_wire res; retried = w.r_attempts > 1; elapsed_s = elapsed }
      | None ->
          (* dead worker / truncated payload: structured diagnostic, and a
             bounded number of backed-off retries on fresh workers *)
          Stats.incr "pool.crashes";
          let now = Unix.gettimeofday () in
          let backoff =
            retry_backoff_s *. (2.0 ** float_of_int (w.r_attempts - 1))
          in
          let ready_at = now +. backoff in
          let within_deadline =
            match deadline with None -> true | Some d -> ready_at <= d
          in
          if w.r_attempts <= retries && within_deadline then begin
            Stats.incr "pool.retries";
            if backoff > 0.0 then Stats.incr "pool.backoff_waits";
            pending :=
              {
                p_idx = w.r_idx;
                p_task = w.r_task;
                p_attempts = w.r_attempts;
                p_ready_at = ready_at;
              }
              :: !pending
          end
          else
            Hashtbl.replace results w.r_idx
              {
                value =
                  (if within_deadline then
                     Error (crash_diag ~attempts:w.r_attempts status)
                   else
                     Error
                       (deadline_diag ~attempts:w.r_attempts
                          (Option.get retry_deadline_s)));
                retried = w.r_attempts > 1;
                elapsed_s = elapsed;
              }
    in
    let chunk = Bytes.create 65536 in
    (* EINTR (real or injected) is a retry, never end-of-stream; any other
       read error means the payload can't complete — treat it as EOF so the
       truncated-payload crash path takes over. *)
    let rec read_pipe fd =
      if Fault.fire "pool.read.eintr" then begin
        Stats.incr "pool.eintr_retries";
        read_pipe fd
      end
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | n -> n
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            Stats.incr "pool.eintr_retries";
            read_pipe fd
        | exception Unix.Unix_error _ -> 0
    in
    let step timeout =
      let fds = List.map (fun w -> w.r_fd) !running in
      match Unix.select fds [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          List.iter
            (fun fd ->
              let w = List.find (fun w -> w.r_fd = fd) !running in
              let nread = read_pipe fd in
              if nread > 0 then Buffer.add_subbytes w.r_buf chunk 0 nread
              else begin
                (* EOF: the worker closed its pipe (exit or crash); reap it *)
                Unix.close fd;
                let status =
                  match Unix.waitpid [] w.r_pid with
                  | _, st -> Some st
                  | exception Unix.Unix_error _ -> None
                in
                running := List.filter (fun w' -> w' != w) !running;
                finalize w status
              end)
            ready
    in
    while !pending <> [] || !running <> [] do
      let now = Unix.gettimeofday () in
      let ready, waiting =
        List.partition (fun p -> p.p_ready_at <= now) !pending
      in
      (* oldest attempts first, in index order, for deterministic spawning *)
      let ready =
        List.sort (fun a b -> compare (a.p_ready_at, a.p_idx) (b.p_ready_at, b.p_idx)) ready
      in
      let rec launch = function
        | p :: rest when List.length !running < jobs ->
            running := spawn ?task_timeout_s ~f p :: !running;
            launch rest
        | rest -> rest
      in
      let leftover = launch ready in
      pending := leftover @ waiting;
      let next_retry_in =
        match waiting with
        | [] -> None
        | _ :: _ ->
            let earliest =
              List.fold_left (fun a p -> Float.min a p.p_ready_at) infinity
                waiting
            in
            Some (Float.max 0.001 (earliest -. now))
      in
      if !running <> [] then
        step (match next_retry_in with None -> -1.0 | Some s -> s)
      else
        (* nothing in flight: sleep until the first backed-off retry is due *)
        match next_retry_in with
        | Some s -> Unix.sleepf s
        | None -> ()
    done;
    List.mapi (fun i _ -> Hashtbl.find results i) tasks
  end

(* --------------------------- temp directories ---------------------------- *)

(* mkdtemp-style: create a fresh directory directly and atomically (mkdir
   fails with EEXIST instead of racing a name probe), retrying with a new
   name on collision.  This replaces the temp_file/remove/mkdir dance whose
   TOCTOU window let concurrent batch/tune runs collide. *)
let temp_counter = ref 0

let fresh_temp_dir ?(prefix = "pluto") () =
  let base = Filename.get_temp_dir_name () in
  let rec create tries =
    if tries > 1000 then
      failwith "Pool.fresh_temp_dir: cannot create a fresh temporary directory"
    else begin
      incr temp_counter;
      let name =
        Printf.sprintf "%s.%d.%d.%06x" prefix (Unix.getpid ()) !temp_counter
          (Hashtbl.hash (Unix.gettimeofday (), !temp_counter) land 0xFFFFFF)
      in
      let dir = Filename.concat base name in
      match Unix.mkdir dir 0o700 with
      | () -> dir
      | exception Unix.Unix_error ((Unix.EEXIST | Unix.EINTR), _, _) ->
          create (tries + 1)
    end
  in
  create 0

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let with_temp_dir ?prefix f =
  let dir = fresh_temp_dir ?prefix () in
  (* registered for signal exit too: a SIGINT/SIGTERM mid-[f] must not leak
     the directory (Fun.protect only covers normal return and exceptions) *)
  let id = Cleanup.register (fun () -> rm_rf dir) in
  Fun.protect
    ~finally:(fun () ->
      Cleanup.release id;
      rm_rf dir)
    (fun () -> f dir)

(* --------------------------- single async tasks --------------------------- *)

(* The daemon's event loop multiplexes many compiles over [select]; it needs
   workers it can start, poll, and kill individually rather than a blocking
   [map].  A handle wraps one spawned worker; the owner selects on
   [handle_fd] and calls [pump] when it's readable.  No retries here — a
   crashed worker surfaces as its structured diagnostic and the caller
   decides (the daemon answers the client with it). *)

type 'r handle = {
  mutable h_state : [ `Running of unit running | `Done of 'r outcome ];
}

let start ?task_timeout_s ~f x =
  let p = { p_idx = 0; p_task = (); p_attempts = 0; p_ready_at = 0.0 } in
  let w = spawn ?task_timeout_s ~f:(fun () -> f x) p in
  Stats.incr "pool.tasks";
  { h_state = `Running w }

let handle_fd h =
  match h.h_state with `Running w -> Some w.r_fd | `Done _ -> None

let reap pid =
  match Unix.waitpid [] pid with
  | _, st -> Some st
  | exception Unix.Unix_error _ -> None

let pump h =
  match h.h_state with
  | `Done o -> `Done o
  | `Running w ->
      let chunk = Bytes.create 65536 in
      let rec read_once () =
        if Fault.fire "pool.read.eintr" then begin
          Stats.incr "pool.eintr_retries";
          read_once ()
        end
        else
          match Unix.read w.r_fd chunk 0 (Bytes.length chunk) with
          | n -> n
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              Stats.incr "pool.eintr_retries";
              read_once ()
          | exception Unix.Unix_error _ -> 0
      in
      let n = read_once () in
      if n > 0 then begin
        Buffer.add_subbytes w.r_buf chunk 0 n;
        `Pending
      end
      else begin
        (* EOF: worker exited (or crashed); reap and parse *)
        Unix.close w.r_fd;
        let status = reap w.r_pid in
        let elapsed = Unix.gettimeofday () -. w.r_t0 in
        let o =
          match
            (Marshal.from_string (Buffer.contents w.r_buf) 0
              : ('r, wire_error) result * Stats.snapshot)
          with
          | res, snap ->
              Stats.merge snap;
              { value = of_wire res; retried = false; elapsed_s = elapsed }
          | exception _ ->
              Stats.incr "pool.crashes";
              {
                value = Error (crash_diag ~attempts:1 status);
                retried = false;
                elapsed_s = elapsed;
              }
        in
        h.h_state <- `Done o;
        `Done o
      end

let kill h =
  match h.h_state with
  | `Done _ -> ()
  | `Running w ->
      (try Unix.kill w.r_pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try Unix.close w.r_fd with Unix.Unix_error _ -> ());
      let status = reap w.r_pid in
      h.h_state <-
        `Done
          {
            value = Error (crash_diag ~attempts:1 status);
            retried = false;
            elapsed_s = Unix.gettimeofday () -. w.r_t0;
          }
