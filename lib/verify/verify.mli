(** Independent translation validation for the whole pipeline.

    Given a computed transformation and the generated loop AST, this module
    re-proves — per compilation, from scratch, and deliberately {e not}
    through the Farkas-dual machinery of {!Pluto.Auto} that produced the
    schedule — the two facts the compiler's correctness rests on:

    {b Legality (schedule).}  For every legality (flow/anti/output) dependence
    edge [e] of the DDG with polyhedron [P_e], the per-level satisfaction form
    δ_l(s,t) = φ_dst,l(t) − φ_src,l(s) must be {e lexicographically positive}
    over every integer point of [P_e]: writing Z_k for the prefix hypothesis
    δ_0 = … = δ_{k−1} = 0,

    - for every level [k]: [P_e ∧ Z_k ∧ δ_k ≤ −1] has no integer point, and
    - [P_e ∧ Z_nlevels] (every component zero: the pair would be unordered)
      has no integer point.

    Each obligation is discharged by a direct integer-emptiness test on the
    {e instance space} ({!Polyhedra} + {!Milp} branch-and-bound) with the
    structure parameters bounded in [[param_lo, param_hi]] — a witness is a
    concrete pair of statement instances executed in the wrong order, which is
    reported in the failure message.  Because the schedule must be legal for
    {e all} parameter values, any witness is a genuine miscompilation.

    In addition the transform's own {e claims} are re-checked with parameters
    fixed to [claim_ctx] (the concrete context the search used to justify
    them): a dependence recorded as strongly satisfied at level [L] must have
    [δ_l ≥ 0] for [l < L] and [δ_L ≥ 1] over all of [P_e], and a level marked
    parallel must carry no dependence — [P_e ∧ Z_l ∧ (δ_l ≥ 1 ∨ δ_l ≤ −1)]
    empty for every dependence not yet satisfied before [l].

    {b Legality modulo reassociation (reductions).}  Dependence edges marked
    [reduction] are exempt from the order obligations above — reassociating
    an associative/commutative accumulation is exactly the freedom the
    [--reductions] pipeline exploits — so the {e marking} becomes the proof
    obligation instead: each marked edge must be a self-dependence of a
    syntactic self-update whose endpoints are the accumulator access, and no
    other read of the accumulator's array may alias the accumulator cell
    anywhere in the domain (an integer-emptiness test per read, parameters
    bounded in [[param_lo, param_hi]]; failures carry code ["reduction"]).
    With reductions off no edge is marked and validation is exactly the
    bit-strict check above.

    {b Domain coverage (code generation).}  The generated AST must scan
    exactly the original iteration domain of every statement: walking the AST
    (bounds, guards and statement arguments evaluated through
    {!Codegen.Eval}, the same integer semantics the interpreter executes) and
    collecting every visited instance must produce, per statement, each point
    of the statement's domain {e exactly once} — compared point-by-point
    against an enumeration of the domain obtained independently of both the
    code generator and the interpreter's Fourier–Motzkin scan (coordinate
    bounds from rational LP, box scan, membership by
    {!Polyhedra.sat_point}). *)

(** One failed (or undischargeable) proof obligation. *)
type failure = {
  f_code : string;
      (** stable code: ["legality"], ["unordered"], ["satisfaction"],
          ["parallelism"], ["reduction"], ["coverage"], ["budget"],
          ["internal"] *)
  f_message : string;
}

type report = {
  legality_obligations : int;
      (** integer-emptiness obligations discharged for schedule legality *)
  claim_obligations : int;
      (** obligations discharged for satisfaction/parallelism claims *)
  instances_checked : int;
      (** statement instances compared in the coverage check *)
  failures : failure list;
}

val ok : report -> bool

(** [validate_transform ?param_lo ?param_hi ?claim_ctx p deps t] discharges
    the legality and claim obligations.  Defaults: parameters bounded in
    [[1, 10]] for legality, fixed to [claim_ctx = 100] (the search's context)
    for claim checks.  Never raises: budget exhaustion and unexpected errors
    become failures with codes ["budget"] / ["internal"]. *)
val validate_transform :
  ?param_lo:int ->
  ?param_hi:int ->
  ?claim_ctx:int ->
  Ir.program ->
  Deps.t list ->
  Pluto.Types.transform ->
  report

(** [validate_coverage ~params p cg] checks that the AST scans each
    statement's domain exactly once at the given concrete parameter values
    (which must respect the [context_min] the code was generated with). *)
val validate_coverage : params:int array -> Ir.program -> Codegen.t -> report

(** [validate ?param_lo ?param_hi ?claim_ctx ?params p deps t cg] — both
    checks; [params] defaults to every parameter set to 6. *)
val validate :
  ?param_lo:int ->
  ?param_hi:int ->
  ?claim_ctx:int ->
  ?params:int array ->
  Ir.program ->
  Deps.t list ->
  Pluto.Types.transform ->
  Codegen.t ->
  report

val pp_report : Format.formatter -> report -> unit

(** Schedule mutations for exercising the rejection path (the test suite and
    plutocc's [--break-schedule]); not part of the stable API. *)
module For_tests : sig
  (** Negate every statement's row at the first genuine loop level (loop
      reversal) — illegal whenever that level carries a dependence.  [None]
      if the transform has no loop level. *)
  val reverse_first_loop :
    Pluto.Types.transform -> Pluto.Types.transform option
end
