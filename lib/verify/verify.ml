(* See verify.mli for the proof obligations.  Everything here goes out of its
   way NOT to share reasoning with the code under test: legality is
   re-established by integer-emptiness tests on the dependence polyhedra
   themselves (never through the Farkas dual the search solved), and domain
   coverage compares the AST's visited instances against an enumeration that
   uses neither the code generator's projections nor the interpreter's
   Fourier-Motzkin scan. *)

type failure = { f_code : string; f_message : string }

type report = {
  legality_obligations : int;
  claim_obligations : int;
  instances_checked : int;
  failures : failure list;
}

let ok r = r.failures = []

let empty_report =
  { legality_obligations = 0; claim_obligations = 0; instances_checked = 0; failures = [] }

let merge a b =
  {
    legality_obligations = a.legality_obligations + b.legality_obligations;
    claim_obligations = a.claim_obligations + b.claim_obligations;
    instances_checked = a.instances_checked + b.instances_checked;
    failures = a.failures @ b.failures;
  }

let failf code fmt = Printf.ksprintf (fun m -> { f_code = code; f_message = m }) fmt

(* ------------------------- constraint construction ------------------------ *)

(* p_j in [lo, hi] for the trailing [np] columns of an [nv]-variable system. *)
let param_box ~nv ~np ~lo ~hi =
  List.concat_map
    (fun j ->
      let col = nv - np + j in
      let ge_lo = Vec.zero (nv + 1) in
      ge_lo.(col) <- Bigint.one;
      ge_lo.(nv) <- Bigint.of_int (-lo);
      let le_hi = Vec.zero (nv + 1) in
      le_hi.(col) <- Bigint.minus_one;
      le_hi.(nv) <- Bigint.of_int hi;
      [ Polyhedra.ge ge_lo; Polyhedra.ge le_hi ])
    (Putil.range np)

let param_fix ~nv ~np ~ctx =
  List.map
    (fun j ->
      let r = Vec.zero (nv + 1) in
      r.(nv - np + j) <- Bigint.one;
      r.(nv) <- Bigint.of_int (-ctx);
      Polyhedra.eq r)
    (Putil.range np)

(* delta <= -1  as a constraint row *)
let le_minus1 (delta : Vec.t) =
  let r = Vec.neg delta in
  let w = Array.length r in
  r.(w - 1) <- Bigint.sub r.(w - 1) Bigint.one;
  Polyhedra.ge r

(* delta >= 1 *)
let ge_1 (delta : Vec.t) =
  let r = Vec.copy delta in
  let w = Array.length r in
  r.(w - 1) <- Bigint.sub r.(w - 1) Bigint.one;
  Polyhedra.ge r

(* delta <= 0 *)
let le_0 (delta : Vec.t) = Polyhedra.ge (Vec.neg delta)

(* Integer witness of a system, or None when empty.  Canonical (memoized)
   emptiness is tried first — integer tightening is sound because every
   variable is an iteration counter or structure parameter — and the cached
   ILP layer settles the rest. *)
let witness sys =
  if Polyhedra.is_empty_cached ~integer:true sys then None
  else Milp.feasible_cached sys

(* -------------------------------- reporting ------------------------------ *)

let pp_point fmt (pt : Bigint.t array) lo hi =
  Format.fprintf fmt "(";
  for j = lo to hi - 1 do
    if j > lo then Format.fprintf fmt ", ";
    Format.fprintf fmt "%s" (Bigint.to_string pt.(j))
  done;
  Format.fprintf fmt ")"

(* A witness point of a dependence polyhedron, split src/dst/params. *)
let describe_witness (p : Ir.program) (d : Deps.t) (pt : Bigint.t array) =
  let ms = Ir.depth d.Deps.src and mt = Ir.depth d.Deps.dst in
  let np = Ir.nparams p in
  Format.asprintf "%s%a -> %s%a at params %a" d.Deps.src.Ir.name
    (fun fmt () -> pp_point fmt pt 0 ms)
    ()
    d.Deps.dst.Ir.name
    (fun fmt () -> pp_point fmt pt ms (ms + mt))
    ()
    (fun fmt () -> pp_point fmt pt (ms + mt) (ms + mt + np))
    ()

let describe_dep (d : Deps.t) =
  Printf.sprintf "dep #%d %s->%s (%s, %s)" d.Deps.id d.Deps.src.Ir.name
    d.Deps.dst.Ir.name
    (Deps.kind_name d.Deps.kind)
    (match d.Deps.level with
    | Some l -> Printf.sprintf "carried at loop %d" l
    | None -> "loop-independent")

(* ------------------------------ legality --------------------------------- *)

let delta_rows (p : Ir.program) (t : Pluto.Types.transform) (d : Deps.t) =
  Array.init t.Pluto.Types.nlevels (fun l ->
      Deps.satisfaction_row p d
        (Pluto.Types.transform_row t d.Deps.src ~level:l)
        (Pluto.Types.transform_row t d.Deps.dst ~level:l))

(* One guarded obligation: run [f] (an emptiness test producing an optional
   failure), converting budget exhaustion and unexpected exceptions into
   failures rather than aborting validation. *)
let obligation ~count ~failures ~what f =
  incr count;
  match f () with
  | None -> ()
  | Some fl -> failures := fl :: !failures
  | exception Diag.Budget_exceeded msg ->
      failures :=
        failf "budget" "%s: obligation not discharged (budget exhausted: %s)" what
          msg
        :: !failures
  | exception ((Out_of_memory | Sys.Break) as e) -> raise e
  | exception e ->
      failures :=
        failf "internal" "%s: validator error: %s" what (Printexc.to_string e)
        :: !failures

(* Lexicographic positivity of delta over every integer point of the
   dependence polyhedron, parameters bounded in [lo, hi]. *)
let check_dep_legality ~count ~failures ~lo ~hi (p : Ir.program)
    (t : Pluto.Types.transform) (d : Deps.t) =
  let nv = Deps.nvars d in
  let np = Ir.nparams p in
  let deltas = delta_rows p t d in
  let base =
    Polyhedra.meet d.Deps.poly
      (Polyhedra.of_constrs nv (param_box ~nv ~np ~lo ~hi))
  in
  let prefix = ref base in
  (try
     for k = 0 to t.Pluto.Types.nlevels - 1 do
       obligation ~count ~failures
         ~what:(Printf.sprintf "%s level %d" (describe_dep d) k)
         (fun () ->
           match witness (Polyhedra.add !prefix (le_minus1 deltas.(k))) with
           | None -> None
           | Some w ->
               Some
                 (failf "legality"
                    "%s: schedule level %d (%s) steps backwards across the \
                     dependence: %s"
                    (describe_dep d) k
                    (Pluto.Types.level_kind_name t.Pluto.Types.kinds.(k))
                    (describe_witness p d w)));
       prefix := Polyhedra.add !prefix (Polyhedra.eq deltas.(k));
       (* once the all-equal prefix is empty every remaining obligation is
          vacuous: every pair is already strictly ordered *)
       if Polyhedra.is_empty_cached ~integer:true !prefix then raise Exit
     done;
     obligation ~count ~failures ~what:(describe_dep d ^ " (ordering)")
       (fun () ->
         match witness !prefix with
         | None -> None
         | Some w ->
             Some
               (failf "unordered"
                  "%s: schedule leaves a dependent pair unordered (every \
                   level component is zero): %s"
                  (describe_dep d) (describe_witness p d w)))
   with Exit -> ())

(* ---------------------------- claim checking ----------------------------- *)

let check_dep_claims ~count ~failures ~ctx (p : Ir.program)
    (t : Pluto.Types.transform) (d : Deps.t) =
  match Pluto.Types.satisfaction_level t d with
  | None -> ()
  | Some sl ->
      let nv = Deps.nvars d in
      let np = Ir.nparams p in
      let deltas = delta_rows p t d in
      let fixed =
        Polyhedra.meet d.Deps.poly
          (Polyhedra.of_constrs nv (param_fix ~nv ~np ~ctx))
      in
      for l = 0 to sl - 1 do
        obligation ~count ~failures
          ~what:(Printf.sprintf "%s claim level %d" (describe_dep d) l)
          (fun () ->
            match witness (Polyhedra.add fixed (le_minus1 deltas.(l))) with
            | None -> None
            | Some w ->
                Some
                  (failf "satisfaction"
                     "%s: claimed satisfied at level %d but level %d has a \
                      negative component: %s"
                     (describe_dep d) sl l (describe_witness p d w)))
      done;
      obligation ~count ~failures
        ~what:(Printf.sprintf "%s claim satisfaction" (describe_dep d))
        (fun () ->
          match witness (Polyhedra.add fixed (le_0 deltas.(sl))) with
          | None -> None
          | Some w ->
              Some
                (failf "satisfaction"
                   "%s: claimed strongly satisfied at level %d but δ is not \
                    everywhere >= 1 there: %s"
                   (describe_dep d) sl (describe_witness p d w)))

(* A level marked parallel must carry no dependence: restricted to the pairs
   not already ordered by outer levels (prefix of zero components), delta at
   the level must be identically zero. *)
let check_parallel_claims ~count ~failures ~ctx (p : Ir.program)
    (t : Pluto.Types.transform) (deps : Deps.t list) =
  let parallel_levels =
    List.filter
      (fun l -> Pluto.Types.is_parallel_loop t.Pluto.Types.kinds.(l))
      (Putil.range t.Pluto.Types.nlevels)
  in
  if parallel_levels <> [] then
    List.iter
      (fun (d : Deps.t) ->
        if Deps.is_hard d then begin
          let nv = Deps.nvars d in
          let np = Ir.nparams p in
          let deltas = delta_rows p t d in
          let fixed =
            Polyhedra.meet d.Deps.poly
              (Polyhedra.of_constrs nv (param_fix ~nv ~np ~ctx))
          in
          List.iter
            (fun l ->
              let skip =
                match Pluto.Types.satisfaction_level t d with
                | Some sl -> sl < l (* already satisfied above: not live *)
                | None -> false
              in
              if not skip then begin
                let prefix =
                  List.fold_left
                    (fun sys k -> Polyhedra.add sys (Polyhedra.eq deltas.(k)))
                    fixed (Putil.range l)
                in
                let side name c =
                  obligation ~count ~failures
                    ~what:
                      (Printf.sprintf "%s parallel level %d (%s)"
                         (describe_dep d) l name)
                    (fun () ->
                      match witness (Polyhedra.add prefix c) with
                      | None -> None
                      | Some w ->
                          Some
                            (failf "parallelism"
                               "level %d is marked parallel but carries %s \
                                (δ_%d %s 0): %s"
                               l (describe_dep d) l name
                               (describe_witness p d w)))
                in
                side ">" (ge_1 deltas.(l));
                side "<" (le_minus1 deltas.(l))
              end)
            parallel_levels
        end)
      deps

(* ------------------------- reduction-mark soundness ----------------------- *)

(* A marked reduction edge is exempt from every order obligation above, so
   the marking itself becomes a proof obligation: the validator re-derives —
   without trusting the dependence analyzer that set the flag — that the edge
   is a self-dependence of a syntactic associative/commutative self-update
   ({!Ir.reduction_of_stmt}, shared syntax only: the polyhedral work below is
   independent), that both endpoints are the accumulator access, and that no
   other read of the accumulator's array can alias the accumulator cell
   anywhere in the iteration domain with parameters bounded in [lo, hi]. *)
let check_reduction_marks ~count ~failures ~lo ~hi (p : Ir.program)
    (deps : Deps.t list) =
  let np = Ir.nparams p in
  let alias_checked = Hashtbl.create 4 in
  let check_aliases (s : Ir.stmt) =
    if not (Hashtbl.mem alias_checked s.Ir.id) then begin
      Hashtbl.add alias_checked s.Ir.id ();
      let nv = s.Ir.domain.Polyhedra.nvars in
      List.iteri
        (fun i other ->
          if
            String.equal other.Ir.arr s.Ir.lhs.Ir.arr
            && not (Ir.same_access other s.Ir.lhs)
          then
            obligation ~count ~failures
              ~what:
                (Printf.sprintf "%s reduction alias (read %d)" s.Ir.name i)
              (fun () ->
                let eqs =
                  List.map
                    (fun k ->
                      Polyhedra.eq
                        (Vec.sub
                           (Ir.row_to_vec other.Ir.map.(k))
                           (Ir.row_to_vec s.Ir.lhs.Ir.map.(k))))
                    (Putil.range (Array.length other.Ir.map))
                in
                let sys =
                  Polyhedra.meet s.Ir.domain
                    (Polyhedra.of_constrs nv
                       (eqs @ param_box ~nv ~np ~lo ~hi))
                in
                match witness sys with
                | None -> None
                | Some w ->
                    Some
                      (failf "reduction"
                         "%s: read #%d of %s can alias the reduction \
                          accumulator cell at %s — the marked self-update \
                          is not a pure reduction"
                         s.Ir.name i other.Ir.arr
                         (Format.asprintf "%a"
                            (fun fmt () -> pp_point fmt w 0 nv)
                            ()))))
        (Ir.reads_of_expr s.Ir.rhs)
    end
  in
  List.iter
    (fun (d : Deps.t) ->
      if d.Deps.reduction then begin
        obligation ~count ~failures
          ~what:(describe_dep d ^ " (reduction shape)")
          (fun () ->
            if d.Deps.src.Ir.id <> d.Deps.dst.Ir.id then
              Some
                (failf "reduction"
                   "%s: marked reduction edge is not a self-dependence"
                   (describe_dep d))
            else
              match Ir.reduction_of_stmt d.Deps.src with
              | None ->
                  Some
                    (failf "reduction"
                       "%s: marked reduction edge on a statement that is \
                        not an associative/commutative self-update"
                       (describe_dep d))
              | Some r ->
                  if
                    Ir.same_access d.Deps.src_acc r.Ir.red_acc
                    && Ir.same_access d.Deps.dst_acc r.Ir.red_acc
                  then None
                  else
                    Some
                      (failf "reduction"
                         "%s: marked reduction edge does not connect two \
                          accumulator accesses"
                         (describe_dep d)));
        check_aliases d.Deps.src
      end)
    deps

let validate_transform ?(param_lo = 1) ?(param_hi = 10) ?(claim_ctx = 100)
    (p : Ir.program) (deps : Deps.t list) (t : Pluto.Types.transform) =
  let legality_count = ref 0 and claim_count = ref 0 in
  let failures = ref [] in
  List.iter
    (fun d ->
      if Deps.is_hard d then begin
        check_dep_legality ~count:legality_count ~failures ~lo:param_lo
          ~hi:param_hi p t d;
        check_dep_claims ~count:claim_count ~failures ~ctx:claim_ctx p t d
      end)
    deps;
  check_parallel_claims ~count:claim_count ~failures ~ctx:claim_ctx p t deps;
  (* legality modulo reassociation: every edge exempted above must itself be
     proven a reduction edge *)
  check_reduction_marks ~count:legality_count ~failures ~lo:param_lo
    ~hi:param_hi p deps;
  {
    empty_report with
    legality_obligations = !legality_count;
    claim_obligations = !claim_count;
    failures = List.rev !failures;
  }

(* ---------------------------- domain coverage ---------------------------- *)

(* Substitute concrete parameter values into a statement domain (over
   [iters @ params]), producing a system over the iterators alone. *)
let substitute_params (dom : Polyhedra.t) ~m ~np ~(params : int array) =
  let cs =
    List.map
      (fun (c : Polyhedra.constr) ->
        let coefs = Array.make (m + 1) Bigint.zero in
        for j = 0 to m - 1 do
          coefs.(j) <- c.Polyhedra.coefs.(j)
        done;
        let const = ref c.Polyhedra.coefs.(m + np) in
        for j = 0 to np - 1 do
          const :=
            Bigint.add !const
              (Bigint.mul c.Polyhedra.coefs.(m + j) (Bigint.of_int params.(j)))
        done;
        coefs.(m) <- !const;
        { c with Polyhedra.coefs })
      dom.Polyhedra.cs
  in
  Polyhedra.of_constrs m cs

exception Coverage_fail of failure

let coverage_budget_points = 2_000_000

(* Enumerate the integer points of an [m]-variable system: per-coordinate
   rational LP bounds, then a box scan filtered by sat_point.  Independent of
   Fourier-Motzkin projection. *)
let enumerate_box (sys : Polyhedra.t) ~stmt_name =
  let m = sys.Polyhedra.nvars in
  if m = 0 then
    if Polyhedra.sat_point sys [||] then [ [||] ] else []
  else begin
    let bounds = Array.make m (0, -1) in
    let infeasible = ref false in
    for j = 0 to m - 1 do
      if not !infeasible then begin
        let obj_min = Array.init m (fun q -> if q = j then Q.one else Q.zero) in
        let obj_max =
          Array.init m (fun q -> if q = j then Q.minus_one else Q.zero)
        in
        let lo =
          match Milp.lp sys obj_min with
          | Milp.Lp_optimal (v, _) -> Some (Bigint.to_int (Q.ceil v))
          | Milp.Lp_infeasible -> None
          | Milp.Lp_unbounded ->
              raise
                (Coverage_fail
                   (failf "coverage" "statement %s: iteration domain unbounded \
                                      below in dimension %d" stmt_name j))
        in
        let hi =
          match Milp.lp sys obj_max with
          | Milp.Lp_optimal (v, _) -> Some (Bigint.to_int (Q.floor (Q.neg v)))
          | Milp.Lp_infeasible -> None
          | Milp.Lp_unbounded ->
              raise
                (Coverage_fail
                   (failf "coverage" "statement %s: iteration domain unbounded \
                                      above in dimension %d" stmt_name j))
        in
        match (lo, hi) with
        | Some lo, Some hi -> bounds.(j) <- (lo, hi)
        | _ -> infeasible := true
      end
    done;
    if !infeasible then []
    else begin
      let total =
        Array.fold_left
          (fun acc (lo, hi) ->
            if hi < lo then 0 else acc * (hi - lo + 1))
          1 bounds
      in
      if total > coverage_budget_points then
        raise
          (Coverage_fail
             (failf "budget"
                "statement %s: coverage box has %d points (budget %d); use \
                 smaller parameters" stmt_name total coverage_budget_points));
      let pt = Array.make m 0 in
      let acc = ref [] in
      let rec scan j =
        if j = m then begin
          let bpt = Array.map Bigint.of_int pt in
          if Polyhedra.sat_point sys bpt then acc := Array.copy pt :: !acc
        end
        else
          let lo, hi = bounds.(j) in
          for v = lo to hi do
            pt.(j) <- v;
            scan (j + 1)
          done
      in
      scan 0;
      List.rev !acc
    end
  end

(* Walk the AST sequentially, collecting every visited (stmt, iters). *)
let collect_instances (cg : Codegen.t) ~params =
  let np = Array.length params in
  if np <> cg.Codegen.nparams then
    raise
      (Coverage_fail
         (failf "coverage" "parameter vector has %d entries, program has %d" np
            cg.Codegen.nparams));
  let env = Array.make (cg.Codegen.nlevels + np) 0 in
  Array.blit params 0 env cg.Codegen.nlevels np;
  let stmts = Array.of_list cg.Codegen.target.Pluto.Types.tstmts in
  let visited = Array.make (Array.length stmts) [] in
  let rec walk (node : Codegen.ast) =
    match node with
    | Codegen.For { level; lb; ub; body; _ } ->
        let lo = Codegen.Eval.iexpr lb env and hi = Codegen.Eval.iexpr ub env in
        for v = lo to hi do
          env.(level) <- v;
          List.iter walk body
        done
    | Codegen.Leaf { stmt_idx; guards; args } ->
        if List.for_all (fun g -> Codegen.Eval.guard g env) guards then begin
          let s = stmts.(stmt_idx).Pluto.Types.stmt in
          let iters =
            try Codegen.Eval.leaf_iters args env (Ir.depth s)
            with Failure msg ->
              raise
                (Coverage_fail
                   (failf "coverage" "statement %s: %s" s.Ir.name msg))
          in
          visited.(stmt_idx) <- iters :: visited.(stmt_idx)
        end
  in
  List.iter walk cg.Codegen.body;
  (stmts, visited)

let validate_coverage ~params (p : Ir.program) (cg : Codegen.t) =
  let failures = ref [] in
  let instances = ref 0 in
  (try
     let stmts, visited = collect_instances cg ~params in
     let np = Ir.nparams p in
     Array.iteri
       (fun idx (ts : Pluto.Types.tstmt) ->
         let s = ts.Pluto.Types.stmt in
         let m = Ir.depth s in
         let dom = substitute_params s.Ir.domain ~m ~np ~params in
         let expected = enumerate_box dom ~stmt_name:s.Ir.name in
         instances := !instances + List.length expected;
         let got = List.sort compare visited.(idx) in
         let want = List.sort compare expected in
         (* duplicates: an instance visited more than once *)
         let rec first_dup = function
           | a :: (b :: _ as rest) ->
               if compare a b = 0 then Some a else first_dup rest
           | _ -> None
         in
         let pp_iters (it : int array) =
           "("
           ^ String.concat ", " (List.map string_of_int (Array.to_list it))
           ^ ")"
         in
         (match first_dup got with
         | Some it ->
             failures :=
               failf "coverage" "statement %s: instance %s executed more than \
                                 once" s.Ir.name (pp_iters it)
               :: !failures
         | None -> ());
         if got <> want then begin
           let missing =
             List.filter (fun w -> not (List.exists (fun g -> compare g w = 0) got)) want
           in
           let extra =
             List.filter (fun g -> not (List.exists (fun w -> compare g w = 0) want)) got
           in
           let sample l =
             match l with [] -> "-" | it :: _ -> pp_iters it
           in
           failures :=
             failf "coverage"
               "statement %s: AST scans %d instances, domain has %d (missing \
                %d, e.g. %s; extraneous %d, e.g. %s)"
               s.Ir.name (List.length got) (List.length want)
               (List.length missing) (sample missing) (List.length extra)
               (sample extra)
             :: !failures
         end)
       stmts
   with
  | Coverage_fail f -> failures := f :: !failures
  | Diag.Budget_exceeded msg ->
      failures := failf "budget" "coverage: %s" msg :: !failures
  | (Out_of_memory | Sys.Break) as e -> raise e
  | e ->
      failures :=
        failf "internal" "coverage: validator error: %s" (Printexc.to_string e)
        :: !failures);
  { empty_report with instances_checked = !instances; failures = List.rev !failures }

(* --------------------------------- driver -------------------------------- *)

let validate ?param_lo ?param_hi ?claim_ctx ?params (p : Ir.program) deps t cg =
  let params =
    match params with
    | Some ps -> ps
    | None -> Array.make (List.length p.Ir.params) 6
  in
  merge
    (validate_transform ?param_lo ?param_hi ?claim_ctx p deps t)
    (validate_coverage ~params p cg)

(* Schedule mutations used by the test suite and plutocc's hidden
   [--break-schedule] flag to exercise the rejection path end to end. *)
module For_tests = struct
  (* Negate every statement's row at the first genuine loop level: loop
     reversal, illegal whenever that level carries a dependence. *)
  let reverse_first_loop (t : Pluto.Types.transform) =
    let rec find l =
      if l >= t.Pluto.Types.nlevels then None
      else
        match t.Pluto.Types.kinds.(l) with
        | Pluto.Types.Loop _ -> Some l
        | Pluto.Types.Scalar -> find (l + 1)
    in
    match find 0 with
    | None -> None
    | Some l ->
        let rows =
          Array.map
            (fun (stmt_rows : int array array) ->
              Array.mapi
                (fun i row ->
                  if i = l then Array.map (fun c -> -c) row else Array.copy row)
                stmt_rows)
            t.Pluto.Types.rows
        in
        Some { t with Pluto.Types.rows }
end

let pp_report fmt r =
  Format.fprintf fmt
    "%s: %d legality + %d claim obligations discharged, %d instances checked"
    (if ok r then "VERIFIED" else "FAILED")
    r.legality_obligations r.claim_obligations r.instances_checked;
  List.iter
    (fun f -> Format.fprintf fmt "@,[%s] %s" f.f_code f.f_message)
    r.failures
