(** Execution substrate for generated code: a semantic interpreter (used for
    end-to-end equivalence checking of transformations) and a deterministic
    multicore performance simulator (the experimental platform standing in
    for the paper's Core 2 Quad + icc, see DESIGN.md).

    Both walk the {!Codegen} loop AST, so they execute exactly the iteration
    order and memory accesses of the generated program. *)

(** {1 Array memory} *)

type memory

(** [alloc_memory program ~params] lays the program's arrays out row-major in
    one float store, extents evaluated at the given parameter values (a small
    safety margin is added per dimension). *)
val alloc_memory : Ir.program -> params:int array -> memory

(** [init_memory mem] fills every array with deterministic pseudo-random
    values (a hash of the flat index). *)
val init_memory : memory -> unit

(** [memory_data mem] is the underlying store (for comparisons). *)
val memory_data : memory -> float array

(** {1 Semantic interpretation} *)

(** [interpret ?par_reverse cg ~params ~mem] executes the generated program on
    [mem].  With [par_reverse:true], loops marked parallel execute their
    iterations in reverse — a legal schedule iff the parallel marking is
    correct, making it an adversarial check of parallelism.
    Returns the number of statement instances executed. *)
val interpret : ?par_reverse:bool -> Codegen.t -> params:int array -> mem:memory -> int

(** [run_original program ~params ~mem] executes the program in its original
    order directly from the IR (domain enumeration sorted by the 2d+1
    vector) — an oracle independent of the code generator.
    Returns the number of statement instances executed. *)
val run_original : Ir.program -> params:int array -> mem:memory -> int

(** [equivalent program cg ~params] allocates two memories with identical
    contents, runs the original program on one and the generated code on the
    other, and compares bitwise.  With [tolerance:tol] finite values instead
    compare up to [|a - b| <= tol * max(1, |a|, |b|)] (non-finite values
    still bitwise) — only for programs containing marked reductions, whose
    schedules legitimately reassociate floating-point accumulation; every
    other caller keeps the bit-exact default. *)
val equivalent :
  ?par_reverse:bool ->
  ?tolerance:float ->
  Ir.program ->
  Codegen.t ->
  params:int array ->
  bool

(** The shared tolerance for reduction-aware equivalence checks (1e-8):
    [equivalent ~tolerance:reduction_tolerance] is what every caller uses for
    programs with marked reductions. *)
val reduction_tolerance : float

(** {1 Performance simulation} *)

type machine_config = {
  ncores : int;
  l1 : Cache.config;  (** private per core *)
  l2 : Cache.config;  (** shared per pair of cores *)
  l2_group : int;  (** cores sharing one L2 (2 on the Q6600) *)
  flop_cycles : float;  (** cost of one FP op *)
  l1_hit_cycles : float;  (** base cost of any memory access *)
  l1_miss_cycles : float;  (** L1 miss, L2 hit *)
  l2_miss_cycles : float;
      (** effective L2-miss (memory) penalty per access, with hardware
          prefetching/out-of-order overlap folded in *)
  mem_line_cycles : float;
      (** front-side-bus occupancy per memory line: a parallel region cannot
          finish faster than [mem_line_cycles * lines_missed] (bandwidth) *)
  loop_overhead_cycles : float;  (** per loop iteration *)
  guard_cycles : float;  (** per guard row evaluated *)
  barrier_cycles : float;  (** per parallel region (fork/join + barrier) *)
  vector_width : int;  (** speedup factor for vectorizable statements *)
  ghz : float;  (** nominal clock, for GFLOPS reporting *)
}

(** Roughly a scaled-down Core 2 Quad Q6600 (see DESIGN.md on scaling). *)
val default_machine : machine_config

type sim_result = {
  cycles : float;  (** simulated wall-clock cycles (critical path) *)
  total_flops : int;
  instances : int;
  l1_misses : int;
  l2_misses : int;
  seconds : float;  (** cycles / (ghz * 1e9) *)
  gflops : float;
}

(** [simulate cfg cg ~params] runs the performance model: loops marked
    parallel distribute their iterations block-wise over the cores (the
    OpenMP static schedule); each core has a private L1, cores share L2s per
    [l2_group]; a parallel region costs [max] over cores plus a barrier.
    Nested parallel loops run sequentially within their core (one level of
    parallelism is exploited, like the paper's main experiments).
    Memory contents are not computed — only addresses are traced. *)
val simulate : machine_config -> Codegen.t -> params:int array -> sim_result

val pp_result : Format.formatter -> sim_result -> unit

(** Internal entry points exposed for the test suite; not part of the stable
    API. *)
module For_tests : sig
  val eval_iexpr : Codegen.iexpr -> int array -> int
  val guard_holds : Codegen.guard -> int array -> bool
  val leaf_iters : Codegen.t -> (int array * int) array -> int array -> int -> int array
  val enumerate_domain : Ir.stmt -> params:int array -> int array list
end
