(* See machine.mli for the model description. *)

(* ------------------------------ array memory ------------------------------ *)

type array_layout = {
  al_name : string;
  al_base : int;  (* element offset into the store *)
  al_extents : int array;  (* per dimension, margin included *)
  al_strides : int array;  (* element strides, row-major *)
  al_size : int;
}

type memory = {
  layouts : (string * array_layout) list;
  data : float array;
  m_params : int array;
}

let margin = 2

let alloc_memory (p : Ir.program) ~params =
  let np = List.length p.Ir.params in
  if Array.length params <> np then invalid_arg "Machine.alloc_memory: params";
  let base = ref 0 in
  let layouts =
    List.map
      (fun (a : Ir.array_info) ->
        let extents =
          Array.map
            (fun row -> margin + Ir.access_row_value row [||] params)
            a.Ir.extents
        in
        Array.iter
          (fun e ->
            if e <= 0 then
              invalid_arg
                (Printf.sprintf "Machine.alloc_memory: array %s has extent %d"
                   a.Ir.aname e))
          extents;
        let nd = Array.length extents in
        let strides = Array.make nd 1 in
        for d = nd - 2 downto 0 do
          strides.(d) <- strides.(d + 1) * extents.(d + 1)
        done;
        let size = if nd = 0 then 1 else extents.(0) * strides.(0) in
        let l =
          {
            al_name = a.Ir.aname;
            al_base = !base;
            al_extents = extents;
            al_strides = strides;
            al_size = size;
          }
        in
        base := !base + size;
        (a.Ir.aname, l))
      p.Ir.arrays
  in
  { layouts; data = Array.make (max 1 !base) 0.0; m_params = params }

let init_memory mem =
  (* deterministic pseudo-random contents: splitmix-style hash of the index *)
  let hash i =
    let z = (i + 0x9e3779b9) * 0x85ebca6b land 0x3FFFFFFF in
    let z = (z lxor (z lsr 13)) * 0xc2b2ae35 land 0x3FFFFFFF in
    float_of_int (z land 0xFFFF) /. 65536.0
  in
  Array.iteri (fun i _ -> mem.data.(i) <- hash i) mem.data

let memory_data mem = mem.data

let layout mem name =
  match List.assoc_opt name mem.layouts with
  | Some l -> l
  | None -> invalid_arg ("Machine: unknown array " ^ name)

(* Element offset of an access at given iterator/parameter values. *)
let access_offset mem (a : Ir.access) iters params =
  let l = layout mem a.Ir.arr in
  let nd = Array.length a.Ir.map in
  if nd <> Array.length l.al_extents then
    invalid_arg ("Machine: dimensionality mismatch on " ^ a.Ir.arr);
  let off = ref l.al_base in
  for d = 0 to nd - 1 do
    let idx = Ir.access_row_value a.Ir.map.(d) iters params in
    if idx < 0 || idx >= l.al_extents.(d) then
      failwith
        (Printf.sprintf "Machine: out-of-bounds access %s dim %d index %d (extent %d)"
           a.Ir.arr d idx l.al_extents.(d));
    off := !off + (idx * l.al_strides.(d))
  done;
  !off

(* ------------------------- expression evaluation ------------------------- *)

(* Bounds, guards and leaf arguments all evaluate through Codegen.Eval — the
   shared definition of the emitted C's integer semantics (see codegen.mli). *)
let floord = Codegen.Eval.floord
let ceild = Codegen.Eval.ceild
let eval_iexpr = Codegen.Eval.iexpr
let guard_holds = Codegen.Eval.guard

(* statement-body evaluation on real data *)
let rec eval_expr mem (e : Ir.expr) iters params =
  match e with
  | Ir.Const f -> f
  | Ir.Iter i -> float_of_int iters.(i)
  | Ir.Load a -> mem.data.(access_offset mem a iters params)
  | Ir.Unop (`Neg, e) -> -.eval_expr mem e iters params
  | Ir.Binop (op, a, b) -> (
      let va = eval_expr mem a iters params
      and vb = eval_expr mem b iters params in
      match op with
      | Ir.Add -> va +. vb
      | Ir.Sub -> va -. vb
      | Ir.Mul -> va *. vb
      | Ir.Div -> va /. vb)

(* --------------------------- semantic interpreter ------------------------ *)

let leaf_iters (cg : Codegen.t) (leaf_args : (int array * int) array) env m =
  ignore cg;
  Codegen.Eval.leaf_iters leaf_args env m

let interpret ?(par_reverse = false) (cg : Codegen.t) ~params ~mem =
  let np = Array.length params in
  if np <> cg.Codegen.nparams then invalid_arg "Machine.interpret: params";
  let env = Array.make (cg.Codegen.nlevels + np) 0 in
  Array.blit params 0 env cg.Codegen.nlevels np;
  let stmts = Array.of_list cg.Codegen.target.Pluto.Types.tstmts in
  let count = ref 0 in
  let rec exec (node : Codegen.ast) =
    match node with
    | Codegen.For { level; parallel; lb; ub; body } ->
        let lo = eval_iexpr lb env and hi = eval_iexpr ub env in
        if parallel && par_reverse then
          for v = hi downto lo do
            env.(level) <- v;
            List.iter exec body
          done
        else
          for v = lo to hi do
            env.(level) <- v;
            List.iter exec body
          done
    | Codegen.Leaf { stmt_idx; guards; args } ->
        if List.for_all (fun g -> guard_holds g env) guards then begin
          let ts = stmts.(stmt_idx) in
          let s = ts.Pluto.Types.stmt in
          let m = Ir.depth s in
          let iters = leaf_iters cg args env m in
          let v = eval_expr mem s.Ir.rhs iters params in
          mem.data.(access_offset mem s.Ir.lhs iters params) <- v;
          incr count
        end
  in
  List.iter exec cg.Codegen.body;
  !count

(* ------------------------------ oracle order ----------------------------- *)

let enumerate_domain (s : Ir.stmt) ~params =
  (* Scan the domain loop-nest-style: the bounds of iterator [j] come from the
     projection of the domain onto iterators 0..j (inner iterators eliminated
     by exact Fourier-Motzkin), so triangular domains are handled. *)
  let m = Ir.depth s in
  let np = Array.length params in
  if m = 0 then [ [||] ]
  else begin
    let empty_sys =
      Polyhedra.of_constrs (m + np)
        [
          Polyhedra.ge_ints
            (List.init (m + np + 1) (fun q -> if q = m + np then -1 else 0));
        ]
    in
    let projs = Array.make m s.Ir.domain in
    projs.(m - 1) <- s.Ir.domain;
    for j = m - 2 downto 0 do
      match Polyhedra.eliminate projs.(j + 1) (j + 1) with
      | Some sys -> projs.(j) <- sys
      | None -> projs.(j) <- empty_sys
    done;
    let points = ref [] in
    let vals = Array.make m 0 in
    let row_value (row : Vec.t) =
      let n = m + np in
      let acc = ref (Bigint.to_int row.(n)) in
      for j = 0 to m - 1 do
        let c = Bigint.to_int row.(j) in
        if c <> 0 then acc := !acc + (c * vals.(j))
      done;
      for j = 0 to np - 1 do
        acc := !acc + (Bigint.to_int row.(m + j) * params.(j))
      done;
      !acc
    in
    let rec scan j =
      if j = m then points := Array.copy vals :: !points
      else begin
        let lower, upper, _ = Polyhedra.bounds_on projs.(j) j in
        let bound_value (c : Polyhedra.constr) =
          row_value
            (Array.mapi
               (fun q v -> if q = j then Bigint.zero else v)
               c.Polyhedra.coefs)
        in
        let lo =
          List.fold_left
            (fun acc (c : Polyhedra.constr) ->
              let a = Bigint.to_int c.Polyhedra.coefs.(j) in
              max acc (ceild (-bound_value c) a))
            min_int lower
        in
        let hi =
          List.fold_left
            (fun acc (c : Polyhedra.constr) ->
              let a = Bigint.to_int c.Polyhedra.coefs.(j) in
              min acc (floord (bound_value c) (-a)))
            max_int upper
        in
        if lo <= hi && (lo = min_int || hi = max_int) then
          failwith "Machine.enumerate_domain: unbounded iterator";
        for v = lo to hi do
          vals.(j) <- v;
          scan (j + 1)
        done
      end
    in
    scan 0;
    List.rev !points
  end

let run_original (p : Ir.program) ~params ~mem =
  let maxd = List.fold_left (fun a s -> max a (Ir.depth s)) 0 p.Ir.stmts in
  let keylen = (2 * maxd) + 1 in
  let instances =
    List.concat_map
      (fun s ->
        let m = Ir.depth s in
        List.map
          (fun (iters : int array) ->
            let key = Array.make keylen 0 in
            for k = 0 to m - 1 do
              key.(2 * k) <- s.Ir.static.(k);
              key.((2 * k) + 1) <- iters.(k)
            done;
            key.(2 * m) <- s.Ir.static.(m);
            (key, s, iters))
          (enumerate_domain s ~params))
      p.Ir.stmts
  in
  let sorted =
    List.sort
      (fun (k1, s1, _) (k2, s2, _) ->
        let c = compare k1 k2 in
        if c <> 0 then c else compare s1.Ir.id s2.Ir.id)
      instances
  in
  List.iter
    (fun (_, s, iters) ->
      let v = eval_expr mem s.Ir.rhs iters params in
      mem.data.(access_offset mem s.Ir.lhs iters params) <- v)
    sorted;
  List.length sorted

(* The tolerance every reduction-aware caller (plutocc --check, the
   differential suite, the CI smoke job) uses: wide enough for any realistic
   reassociation of the test-size accumulations, still tight enough that a
   genuinely wrong schedule — which reorders non-associative dataflow, not
   just summation — blows through it. *)
let reduction_tolerance = 1e-8

let equivalent ?par_reverse ?tolerance (p : Ir.program) (cg : Codegen.t)
    ~params =
  let mem1 = alloc_memory p ~params in
  let mem2 = alloc_memory p ~params in
  init_memory mem1;
  init_memory mem2;
  let n1 = run_original p ~params ~mem:mem1 in
  let n2 = interpret ?par_reverse cg ~params ~mem:mem2 in
  (* Compare bit patterns, not float values: a legal schedule preserves the
     exact dataflow, so every cell must match to the last bit — including
     NaNs (which programs with runaway recurrences do produce, and which
     compare unequal to themselves under [=]). *)
  let same_bits a b =
    Array.length a = Array.length b
    && (let ok = ref true in
        Array.iteri
          (fun i v ->
            if Int64.bits_of_float v <> Int64.bits_of_float b.(i) then
              ok := false)
          a;
        !ok)
  in
  (* Tolerance mode, for programs whose schedule reassociates marked
     reductions: values must agree up to a mixed relative/absolute error,
     with NaN/infinity bit patterns still required to match exactly (a
     reassociation never turns a finite sum into a NaN of different origin
     without also blowing the tolerance on the way there). *)
  let same_tol tol a b =
    Array.length a = Array.length b
    && (let ok = ref true in
        Array.iteri
          (fun i v ->
            let w = b.(i) in
            let close =
              if Float.is_finite v && Float.is_finite w then
                Float.abs (v -. w)
                <= tol *. Float.max 1.0 (Float.max (Float.abs v) (Float.abs w))
              else Int64.bits_of_float v = Int64.bits_of_float w
            in
            if not close then ok := false)
          a;
        !ok)
  in
  n1 = n2
  &&
  match tolerance with
  | None -> same_bits mem1.data mem2.data
  | Some tol -> same_tol tol mem1.data mem2.data

(* --------------------------- performance model --------------------------- *)

type machine_config = {
  ncores : int;
  l1 : Cache.config;
  l2 : Cache.config;
  l2_group : int;
  flop_cycles : float;
  l1_hit_cycles : float;
  l1_miss_cycles : float;
  l2_miss_cycles : float;
  mem_line_cycles : float;
  loop_overhead_cycles : float;
  guard_cycles : float;
  barrier_cycles : float;
  vector_width : int;
  ghz : float;
}

let default_machine =
  {
    ncores = 4;
    (* Q6600 scaled down ~16x so cache effects appear at simulable problem
       sizes: 2 KB L1 per core, 16 KB L2 per core pair (paper machine: 32 KB
       L1, 4 MB L2 per pair); latencies kept at the real machine's values *)
    l1 = { Cache.size_bytes = 2 * 1024; line_bytes = 64; assoc = 8 };
    l2 = { Cache.size_bytes = 16 * 1024; line_bytes = 64; assoc = 16 };
    l2_group = 2;
    flop_cycles = 1.0;
    l1_hit_cycles = 1.0;
    l1_miss_cycles = 14.0;
    (* effective memory penalty: raw ~165 cycles, largely hidden by the
       Core 2's hardware prefetchers on the streaming patterns here *)
    l2_miss_cycles = 60.0;
    (* sustained (STREAM-like) bandwidth of the platform, ~4 GB/s at
       2.4 GHz: ~1.7 B/cycle, 64 B line -> ~38 cycles *)
    mem_line_cycles = 38.0;
    loop_overhead_cycles = 1.0;
    guard_cycles = 0.25;
    barrier_cycles = 10000.0;
    vector_width = 4;
    ghz = 2.4;
  }

type sim_result = {
  cycles : float;
  total_flops : int;
  instances : int;
  l1_misses : int;
  l2_misses : int;
  seconds : float;
  gflops : float;
}

(* static vectorizability of a leaf w.r.t. the innermost enclosing loop:
   the loop level must be a parallel Loop, and every access must have
   stride 0 or 1 (elements) in that loop variable *)
let leaf_vectorizable (cg : Codegen.t) mem (leaf_args : (int array * int) array)
    (s : Ir.stmt) ~innermost =
  match innermost with
  | None -> false
  | Some level -> (
      match
        if cg.Codegen.target.Pluto.Types.tvec.(level) then
          (* vectorization forced by the §5.4 post-pass *)
          Pluto.Types.Loop { band = -1; parallel = true }
        else cg.Codegen.target.Pluto.Types.tkinds.(level)
      with
      | Pluto.Types.Loop { parallel = true; _ } ->
          let m = Ir.depth s in
          let ext_n = Array.length leaf_args in
          (* d(iter_j)/d(c_level) as a float *)
          let diter =
            Array.init m (fun j ->
                let row, d = leaf_args.(ext_n - m + j) in
                float_of_int row.(level) /. float_of_int d)
          in
          let stride_ok (a : Ir.access) =
            let l = layout mem a.Ir.arr in
            let nd = Array.length a.Ir.map in
            let stride = ref 0.0 in
            for ddim = 0 to nd - 1 do
              let didx = ref 0.0 in
              for j = 0 to m - 1 do
                didx := !didx +. (float_of_int a.Ir.map.(ddim).(j) *. diter.(j))
              done;
              stride := !stride +. (!didx *. float_of_int l.al_strides.(ddim))
            done;
            Float.abs !stride < 1e-9 || Float.abs (!stride -. 1.0) < 1e-9
          in
          List.for_all (fun (_, a) -> stride_ok a) (Ir.accesses s)
      | _ -> false)

let simulate (cfg : machine_config) (cg : Codegen.t) ~params =
  let np = Array.length params in
  if np <> cg.Codegen.nparams then invalid_arg "Machine.simulate: params";
  let p = cg.Codegen.target.Pluto.Types.tprogram in
  let mem = alloc_memory p ~params in
  (* we never touch mem.data; only the layout is used for addresses *)
  let l1s = Array.init cfg.ncores (fun _ -> Cache.create cfg.l1) in
  let nl2 = (cfg.ncores + cfg.l2_group - 1) / cfg.l2_group in
  let l2s = Array.init nl2 (fun _ -> Cache.create cfg.l2) in
  let env = Array.make (cg.Codegen.nlevels + np) 0 in
  Array.blit params 0 env cg.Codegen.nlevels np;
  let stmts = Array.of_list cg.Codegen.target.Pluto.Types.tstmts in
  let flops_of = Array.map (fun ts -> Ir.flops_of_expr ts.Pluto.Types.stmt.Ir.rhs) stmts in
  let total_flops = ref 0 in
  let instances = ref 0 in
  (* memo: vectorizability per (stmt_idx, innermost level) *)
  let vec_memo = Hashtbl.create 16 in
  let region_mem_lines = ref 0 in
  let access_cost core addr =
    if Cache.access l1s.(core) (addr * 8) then cfg.l1_hit_cycles
    else if Cache.access l2s.(core / cfg.l2_group) (addr * 8) then
      cfg.l1_hit_cycles +. cfg.l1_miss_cycles
    else begin
      incr region_mem_lines;
      cfg.l1_hit_cycles +. cfg.l1_miss_cycles +. cfg.l2_miss_cycles
    end
  in
  let rec sim core ~innermost (node : Codegen.ast) : float =
    match node with
    | Codegen.For { level; parallel; lb; ub; body } ->
        let lo = eval_iexpr lb env and hi = eval_iexpr ub env in
        (* unroll-jam pricing: control overhead amortized over the factor,
           plus a per-entry remainder-loop / code-size cost — so large
           factors only pay off on long trip counts *)
        let uf = float_of_int cg.Codegen.unroll.(level) in
        let iter_overhead = cfg.loop_overhead_cycles /. uf in
        let entry_overhead = cfg.loop_overhead_cycles *. (uf -. 1.0) in
        if hi < lo then 0.0
        else if parallel && core < 0 then begin
          (* OpenMP static (block) schedule: contiguous chunks per core —
             preserves the spatial locality of stride-1 parallel loops; the
             region costs the maximum over cores plus a fork/join barrier *)
          let n = hi - lo + 1 in
          let chunk = (n + cfg.ncores - 1) / cfg.ncores in
          let worst = ref 0.0 in
          let lines_before = !region_mem_lines in
          for k = 0 to cfg.ncores - 1 do
            let myo = lo + (k * chunk) in
            let myhi = min hi (myo + chunk - 1) in
            let t = ref (if myhi >= myo then entry_overhead else 0.0) in
            for v = myo to myhi do
              env.(level) <- v;
              t := !t +. iter_overhead;
              List.iter
                (fun nd -> t := !t +. sim k ~innermost:(Some level) nd)
                body
            done;
            if !t > !worst then worst := !t
          done;
          (* shared-bus bandwidth floor over the whole region *)
          let bw =
            cfg.mem_line_cycles *. float_of_int (!region_mem_lines - lines_before)
          in
          Float.max !worst bw +. cfg.barrier_cycles
        end
        else begin
          let core' = if core < 0 then 0 else core in
          let t = ref entry_overhead in
          for v = lo to hi do
            env.(level) <- v;
            t := !t +. iter_overhead;
            List.iter
              (fun nd ->
                t :=
                  !t
                  +. sim (if core < 0 then -1 else core') ~innermost:(Some level) nd)
              body
          done;
          !t
        end
    | Codegen.Leaf { stmt_idx; guards; args } ->
        let core = if core < 0 then 0 else core in
        let gcost = cfg.guard_cycles *. float_of_int (List.length guards) in
        if not (List.for_all (fun g -> guard_holds g env) guards) then gcost
        else begin
          let ts = stmts.(stmt_idx) in
          let s = ts.Pluto.Types.stmt in
          let m = Ir.depth s in
          let iters = leaf_iters cg args env m in
          let vec =
            let key = (stmt_idx, innermost) in
            match Hashtbl.find_opt vec_memo key with
            | Some v -> v
            | None ->
                let v = leaf_vectorizable cg mem args s ~innermost in
                Hashtbl.replace vec_memo key v;
                v
          in
          let flops = flops_of.(stmt_idx) in
          total_flops := !total_flops + flops;
          incr instances;
          let fcost =
            cfg.flop_cycles *. float_of_int flops
            /. if vec then float_of_int cfg.vector_width else 1.0
          in
          let mcost = ref 0.0 in
          List.iter
            (fun (_, a) -> mcost := !mcost +. access_cost core (access_offset mem a iters params))
            (Ir.reads_of_expr s.Ir.rhs |> List.map (fun a -> (Ir.Read, a)));
          mcost := !mcost +. access_cost core (access_offset mem s.Ir.lhs iters params);
          gcost +. fcost +. !mcost
        end
  in
  let cycles =
    List.fold_left (fun acc nd -> acc +. sim (-1) ~innermost:None nd) 0.0 cg.Codegen.body
  in
  let l1_misses = Array.fold_left (fun a c -> a + Cache.misses c) 0 l1s in
  let l2_misses = Array.fold_left (fun a c -> a + Cache.misses c) 0 l2s in
  Stats.incr "machine.simulations";
  Stats.add "machine.mem_accesses"
    (Array.fold_left (fun a c -> a + Cache.hits c + Cache.misses c) 0 l1s);
  Stats.add "machine.l1_misses" l1_misses;
  Stats.add "machine.l2_misses" l2_misses;
  let seconds = cycles /. (cfg.ghz *. 1e9) in
  {
    cycles;
    total_flops = !total_flops;
    instances = !instances;
    l1_misses;
    l2_misses;
    seconds;
    gflops =
      (if seconds > 0.0 then float_of_int !total_flops /. seconds /. 1e9 else 0.0);
  }

let pp_result fmt r =
  Format.fprintf fmt
    "cycles=%.3e flops=%d instances=%d L1miss=%d L2miss=%d time=%.4fs GFLOPS=%.3f"
    r.cycles r.total_flops r.instances r.l1_misses r.l2_misses r.seconds r.gflops

(** Internal entry points exposed for the test suite. *)
module For_tests = struct
  let eval_iexpr = eval_iexpr
  let guard_holds = guard_holds
  let leaf_iters = leaf_iters
  let enumerate_domain = enumerate_domain
end
