(** Polyhedral dependence analysis (the LooPo dependence-tester substitute).

    Computes the Data Dependence Graph of §2.1 of the paper: for every pair of
    accesses to the same array — flow (RAW), anti (WAR), output (WAW) and
    optionally input (RAR) — and for every syntactic ordering level, a
    candidate {e dependence polyhedron} over
    [src_iters @ dst_iters @ params] is built from:

    - both statements' iteration domains,
    - equality of the affine access functions,
    - the original-execution-order constraints at that level (carried at a
      common loop, or loop-independent between syntactically ordered
      statements).

    Candidate polyhedra that contain no integer point (parameters fixed to a
    large context value) are discarded.  This is the memory-based exact
    dependence model the paper uses (including all of anti/output/input; no
    conversion to single assignment). *)

type kind = Flow | Anti | Output | Input

type t = {
  id : int;
  src : Ir.stmt;
  dst : Ir.stmt;
  kind : kind;
  level : int option;
      (** [Some l]: carried by common loop [l] (0-based); [None]:
          loop-independent *)
  poly : Polyhedra.t;  (** over [src.iters @ dst.iters @ params] *)
  src_acc : Ir.access;
  dst_acc : Ir.access;
  reduction : bool;
      (** a self flow/anti/output edge between two instances of a verified
          associative/commutative self-update's accumulator access: legal to
          relax during scheduling (order of combination is immaterial up to
          floating-point reassociation), still real for locality bounding.
          Only ever true when [compute] ran with [reductions:true]. *)
}

(** [is_legality d] — input dependences do not constrain legality (§4.1). *)
val is_legality : t -> bool

(** [is_hard d] — must the schedule preserve this edge's order?  Legality
    edges minus marked reduction edges: the predicate every legality /
    satisfaction / parallelism constraint in the scheduler and validator is
    built from when reductions are enabled (with them off no edge is marked,
    so [is_hard] = [is_legality]). *)
val is_hard : t -> bool

val kind_name : kind -> string

(** [compute ?input_deps ?reductions ?ctx program] builds the DDG edge list.
    [ctx] (default 100) is the parameter value used for the integer emptiness
    test of each candidate polyhedron.  With [reductions:true] (default
    false), self-dependences of associative/commutative self-update
    statements whose accumulator cell is provably not aliased by any other
    read of the same array ({!Ir.reduction_of_stmt} plus a per-read
    polyhedral emptiness test) are marked [reduction]. *)
val compute :
  ?input_deps:bool -> ?reductions:bool -> ?ctx:int -> Ir.program -> t list

(** [nvars d] is the variable count of [d.poly]. *)
val nvars : t -> int

(** [matched_dims d] — subscript-aligned dimension pairs for the fast
    scheduler's dimension matching (Acharya–Bondhugula style): for every
    subscript of the access pair that is an affine function of exactly one
    iterator on each side with equal coefficients, the pair
    [(src_dim, dst_dim)].  E.g. [a[i][j] -> a[k][l]] yields [[(0,0); (1,1)]]
    when [i,j] are the source dims and [k,l] the destination dims.  Input
    (read–read) dependences participate: reuse votes drive fusion. *)
val matched_dims : t -> (int * int) list

(** [satisfaction_row program d row_src row_dst] builds the affine form
    δ = φ_dst(t) − φ_src(s) over the dependence polyhedron's variables, given
    per-statement transformation rows (each over own iters + const, width
    depth+1).  The result row has width [nvars d + 1]. *)
val satisfaction_row : Ir.program -> t -> int array -> int array -> Vec.t

val pp : Format.formatter -> t -> unit
