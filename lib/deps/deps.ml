type kind = Flow | Anti | Output | Input

type t = {
  id : int;
  src : Ir.stmt;
  dst : Ir.stmt;
  kind : kind;
  level : int option;
  poly : Polyhedra.t;
  src_acc : Ir.access;
  dst_acc : Ir.access;
  reduction : bool;
}

let is_legality d = d.kind <> Input
let is_hard d = is_legality d && not d.reduction

let kind_name = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"
  | Input -> "input"

let nvars d = d.poly.Polyhedra.nvars

(* Index of the single iterator with a nonzero coefficient in an access row
   (width m + np + 1), or None when the subscript mixes several iterators or
   none at all.  Rows with a nonzero coefficient on any of the [np] parameter
   columns are rejected too: [A[i+n]] vs [A[i]] is a parametrically long
   distance, not a matched dimension, and letting it vote used to feed the
   fast matcher alignments that ended in avoidable ILP fallbacks. *)
let unit_iter_dim ~m ~np (row : int array) =
  let found = ref None and ok = ref true in
  for j = 0 to m - 1 do
    if row.(j) <> 0 then
      match !found with None -> found := Some j | Some _ -> ok := false
  done;
  for j = m to m + np - 1 do
    if row.(j) <> 0 then ok := false
  done;
  if !ok then !found else None

let matched_dims d =
  let ms = Ir.depth d.src and mt = Ir.depth d.dst in
  let n = Array.length d.src_acc.Ir.map in
  let pairs = ref [] in
  if Array.length d.dst_acc.Ir.map = n then
    for k = n - 1 downto 0 do
      let rs = d.src_acc.Ir.map.(k) and rt = d.dst_acc.Ir.map.(k) in
      let np = Array.length rs - ms - 1 in
      match (unit_iter_dim ~m:ms ~np rs, unit_iter_dim ~m:mt ~np rt) with
      | Some a, Some b when rs.(a) = rt.(b) -> pairs := (a, b) :: !pairs
      | _ -> ()
    done;
  !pairs

(* Widen a row over (m iters + np params + 1) of one statement into the
   combined dependence space (ms + mt + np + 1), placing the iterators at
   [offset]. *)
let embed_row ~m ~np ~offset ~width (coefs : Vec.t) : Vec.t =
  let r = Vec.zero width in
  for j = 0 to m - 1 do
    r.(offset + j) <- coefs.(j)
  done;
  for j = 0 to np - 1 do
    r.(width - 1 - np + j) <- coefs.(m + j)
  done;
  r.(width - 1) <- coefs.(m + np);
  r

let embed_domain ~np ~offset ~width (d : Polyhedra.t) =
  let m = d.Polyhedra.nvars - np in
  List.map
    (fun (c : Polyhedra.constr) ->
      { c with Polyhedra.coefs = embed_row ~m ~np ~offset ~width c.Polyhedra.coefs })
    d.Polyhedra.cs

let embed_int_row ~m ~np ~offset ~width (row : int array) : Vec.t =
  embed_row ~m ~np ~offset ~width (Ir.row_to_vec row)

let satisfaction_row (p : Ir.program) d (row_src : int array)
    (row_dst : int array) : Vec.t =
  let ms = Ir.depth d.src and mt = Ir.depth d.dst in
  let np = Ir.nparams p in
  let width = ms + mt + np + 1 in
  if Array.length row_src <> ms + 1 || Array.length row_dst <> mt + 1 then
    invalid_arg "Deps.satisfaction_row: row widths";
  let r = Vec.zero width in
  for j = 0 to ms - 1 do
    r.(j) <- Bigint.of_int (-row_src.(j))
  done;
  for j = 0 to mt - 1 do
    r.(ms + j) <- Bigint.of_int row_dst.(j)
  done;
  r.(width - 1) <- Bigint.of_int (row_dst.(mt) - row_src.(ms));
  r

(* Ordering constraints "s executed before t" for a given level.
   [level = Some l]: equality on common dims 0..l-1, strict s_l < t_l.
   [level = None]: equality on all common dims (loop-independent); only valid
   when src syntactically precedes dst. *)
let order_constrs ~ms ~width ~level ~common =
  let eq_at k =
    let r = Vec.zero width in
    r.(k) <- Bigint.minus_one;
    r.(ms + k) <- Bigint.one;
    Polyhedra.eq r
  in
  let lt_at k =
    (* t_k - s_k - 1 >= 0 *)
    let r = Vec.zero width in
    r.(k) <- Bigint.minus_one;
    r.(ms + k) <- Bigint.one;
    r.(width - 1) <- Bigint.minus_one;
    Polyhedra.ge r
  in
  match level with
  | Some l ->
      assert (l < common);
      List.map eq_at (Putil.range l) @ [ lt_at l ]
  | None -> List.map eq_at (Putil.range common)

let build_poly (p : Ir.program) src dst ~level src_acc dst_acc =
  let np = Ir.nparams p in
  let ms = Ir.depth src and mt = Ir.depth dst in
  let width = ms + mt + np + 1 in
  let nv = width - 1 in
  let cs_src = embed_domain ~np ~offset:0 ~width src.Ir.domain in
  let cs_dst = embed_domain ~np ~offset:ms ~width dst.Ir.domain in
  let access_eqs =
    if Array.length src_acc.Ir.map <> Array.length dst_acc.Ir.map then
      invalid_arg "Deps: access dimensionality mismatch";
    List.map
      (fun k ->
        let rs = embed_int_row ~m:ms ~np ~offset:0 ~width src_acc.Ir.map.(k) in
        let rt = embed_int_row ~m:mt ~np ~offset:ms ~width dst_acc.Ir.map.(k) in
        Polyhedra.eq (Vec.sub rt rs))
      (Putil.range (Array.length src_acc.Ir.map))
  in
  let common = Ir.common_loops src dst in
  let order = order_constrs ~ms ~width ~level ~common in
  Polyhedra.of_constrs nv (cs_src @ cs_dst @ access_eqs @ order)

(* Integer emptiness with parameters fixed to the context value.  On solver
   budget exhaustion the dependence is conservatively assumed to exist — an
   over-approximated dependence graph only restricts the transformations,
   never their legality. *)
let nonempty ~ctx ~np (poly : Polyhedra.t) =
  try
    let nv = poly.Polyhedra.nvars in
    let fix =
      List.map
        (fun j ->
          let r = Vec.zero (nv + 1) in
          r.(nv - np + j) <- Bigint.one;
          r.(nv) <- Bigint.of_int (-ctx);
          Polyhedra.eq r)
        (Putil.range np)
    in
    let sys = Polyhedra.meet poly (Polyhedra.of_constrs nv fix) in
    (* every variable here is integral (iteration counters), so the
       integer-tightened canonical emptiness test is sound *)
    if Polyhedra.is_empty_cached ~integer:true sys then false
    else match Milp.feasible_cached sys with Some _ -> true | None -> false
  with Diag.Budget_exceeded _ -> true

(* Semantic completion of {!Ir.reduction_of_stmt}: the statement is a genuine
   reduction only if no {e other} read of the accumulator's array can touch
   the accumulator cell anywhere in the iteration domain — e.g. LU's
   [a[i][j] -= a[i][k] * a[k][j]] qualifies because its domain has [j > k]
   and [i > k], making both alias systems integer-empty.  A read with a
   syntactically identical map was already rejected by the Ir half;
   everything else gets a polyhedral emptiness test (parameters fixed to
   [ctx], the same context the dependence tester itself uses). *)
let reduction_of_stmt ~ctx ~np (s : Ir.stmt) =
  match Ir.reduction_of_stmt s with
  | None -> None
  | Some r ->
      let nv = s.Ir.domain.Polyhedra.nvars in
      let may_alias other =
        let eqs =
          List.map
            (fun k ->
              Polyhedra.eq
                (Vec.sub
                   (Ir.row_to_vec other.Ir.map.(k))
                   (Ir.row_to_vec s.Ir.lhs.map.(k))))
            (Putil.range (Array.length other.Ir.map))
        in
        let sys =
          Polyhedra.meet s.Ir.domain (Polyhedra.of_constrs nv eqs)
        in
        nonempty ~ctx ~np sys
      in
      let others =
        List.filter
          (fun a ->
            String.equal a.Ir.arr s.Ir.lhs.arr
            && not (Ir.same_access a s.Ir.lhs))
          (Ir.reads_of_expr s.Ir.rhs)
      in
      if List.exists may_alias others then None else Some r

let compute ?(input_deps = true) ?(reductions = false) ?(ctx = 100)
    (p : Ir.program) =
  let np = Ir.nparams p in
  let deps = ref [] in
  let next = ref 0 in
  (* per-statement reduction verdict, memoized (the alias check solves ILPs) *)
  let red_cache = Hashtbl.create 7 in
  let reduction_acc (s : Ir.stmt) =
    if not reductions then None
    else
      match Hashtbl.find_opt red_cache s.Ir.id with
      | Some r -> r
      | None ->
          let r = reduction_of_stmt ~ctx ~np s in
          Hashtbl.add red_cache s.Ir.id r;
          r
  in
  let consider src dst kind src_acc dst_acc =
    if String.equal src_acc.Ir.arr dst_acc.Ir.arr then begin
      let common = Ir.common_loops src dst in
      let levels =
        let carried = List.map (fun l -> Some l) (Putil.range common) in
        let independent =
          if src.Ir.id <> dst.Ir.id && Ir.precedes_at src dst common then
            [ None ]
          else []
        in
        carried @ independent
      in
      (* a self flow/anti/output edge both of whose endpoints are the
         accumulator access of a verified reduction statement is relaxable *)
      let reduction =
        kind <> Input
        && src.Ir.id = dst.Ir.id
        &&
        match reduction_acc src with
        | Some r ->
            Ir.same_access src_acc r.Ir.red_acc
            && Ir.same_access dst_acc r.Ir.red_acc
        | None -> false
      in
      List.iter
        (fun level ->
          let poly = build_poly p src dst ~level src_acc dst_acc in
          if nonempty ~ctx ~np poly then begin
            let d =
              {
                id = !next;
                src;
                dst;
                kind;
                level;
                poly;
                src_acc;
                dst_acc;
                reduction;
              }
            in
            incr next;
            deps := d :: !deps
          end)
        levels
    end
  in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          (* flow: write(src) -> read(dst) *)
          List.iter
            (fun (k_dst, a_dst) ->
              List.iter
                (fun (k_src, a_src) ->
                  match (k_src, k_dst) with
                  | Ir.Write, Ir.Read -> consider src dst Flow a_src a_dst
                  | Ir.Read, Ir.Write -> consider src dst Anti a_src a_dst
                  | Ir.Write, Ir.Write -> consider src dst Output a_src a_dst
                  | Ir.Read, Ir.Read ->
                      (* Input dependences drive fusion and reuse decisions
                         across statements (the MVT case of §7); within one
                         statement all-pairs RAR edges have parametrically
                         long distances that would mask every other term of
                         the max-bound (4), so, like the paper's tool, we
                         keep only inter-statement read-read pairs (a
                         last-reader approximation; see DESIGN.md). *)
                      if input_deps && src.Ir.id <> dst.Ir.id then
                        consider src dst Input a_src a_dst)
                (Ir.accesses src))
            (Ir.accesses dst))
        p.Ir.stmts)
    p.Ir.stmts;
  List.rev !deps

let pp fmt d =
  let level =
    match d.level with
    | Some l -> Printf.sprintf "loop %d" (l + 1)
    | None -> "loop-independent"
  in
  Format.fprintf fmt "dep %d: %s %s(%s) -> %s(%s) [%s]%s" d.id
    (kind_name d.kind) d.src.Ir.name d.src_acc.Ir.arr d.dst.Ir.name
    d.dst_acc.Ir.arr level
    (if d.reduction then " [reduction]" else "")
