type access_kind = Read | Write

type access = { arr : string; map : int array array }

type binop = Add | Sub | Mul | Div

type expr =
  | Const of float
  | Iter of int
  | Load of access
  | Unop of [ `Neg ] * expr
  | Binop of binop * expr * expr

type stmt = {
  id : int;
  name : string;
  iters : string list;
  domain : Polyhedra.t;
  static : int array;
  lhs : access;
  rhs : expr;
  text : string;
}

type array_info = { aname : string; extents : int array array }

type program = {
  params : string list;
  arrays : array_info list;
  stmts : stmt list;
}

let depth s = List.length s.iters
let nparams p = List.length p.params
let nvars p s = depth s + nparams p

let find_array p name =
  match List.find_opt (fun a -> String.equal a.aname name) p.arrays with
  | Some a -> a
  | None -> invalid_arg ("Ir.find_array: unknown array " ^ name)

let find_stmt p id =
  match List.find_opt (fun s -> s.id = id) p.stmts with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Ir.find_stmt: unknown id %d" id)

let rec reads_of_expr = function
  | Const _ | Iter _ -> []
  | Load a -> [ a ]
  | Unop (_, e) -> reads_of_expr e
  | Binop (_, a, b) -> reads_of_expr a @ reads_of_expr b

let rec flops_of_expr = function
  | Const _ | Iter _ | Load _ -> 0
  | Unop (_, e) -> 1 + flops_of_expr e
  | Binop (_, a, b) -> 1 + flops_of_expr a + flops_of_expr b

let accesses s =
  (Write, s.lhs) :: List.map (fun a -> (Read, a)) (reads_of_expr s.rhs)

(* ------------------------- reduction detection -------------------------- *)

type reduction = { red_op : binop; red_acc : access }

let same_access a b = String.equal a.arr b.arr && a.map = b.map

let binop_symbol = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let reduction_of_stmt s =
  let is_acc a = same_access a s.lhs in
  let rec touches_acc = function
    | Const _ | Iter _ -> false
    | Load a -> is_acc a
    | Unop (_, e) -> touches_acc e
    | Binop (_, a, b) -> touches_acc a || touches_acc b
  in
  let mk op acc rest =
    (* the combined value must not feed back into the update other than
       through the single top-level accumulator load *)
    if touches_acc rest then None else Some { red_op = op; red_acc = acc }
  in
  match s.rhs with
  (* x = x op e: Add/Sub/Mul with the accumulator on the left.  Repeated
     [x -= e_k] applications commute just like sums (each contributes an
     independent negated term), so Sub qualifies in this position; Div is
     excluded because OpenMP has no division reduction to lower it to. *)
  | Binop (((Add | Sub | Mul) as op), Load a, rest) when is_acc a ->
      mk op a rest
  (* x = e op x: only for the commutative combines *)
  | Binop (((Add | Mul) as op), rest, Load a) when is_acc a -> mk op a rest
  | _ -> None

let common_loops a b =
  let da = depth a and db = depth b in
  let lim = min da db in
  let rec go k =
    if k >= lim then k
    else if a.static.(k) = b.static.(k) then go (k + 1)
    else k
  in
  go 0

let precedes_at a b k =
  if k > common_loops a b then
    invalid_arg "Ir.precedes_at: level beyond common loops";
  if a.static.(k) = b.static.(k) then a.id < b.id else a.static.(k) < b.static.(k)

let row_to_vec (r : int array) : Vec.t = Vec.of_int_array r

let access_row_value (row : int array) (iters : int array) (params : int array) =
  let ni = Array.length iters and np = Array.length params in
  if Array.length row <> ni + np + 1 then invalid_arg "Ir.access_row_value";
  let acc = ref row.(ni + np) in
  for j = 0 to ni - 1 do
    acc := !acc + (row.(j) * iters.(j))
  done;
  for j = 0 to np - 1 do
    acc := !acc + (row.(ni + j) * params.(j))
  done;
  !acc

let check_access ~width (a : access) =
  Array.iter
    (fun row ->
      if Array.length row <> width then
        invalid_arg
          (Printf.sprintf "Ir: access to %s has row width %d, expected %d"
             a.arr (Array.length row) width))
    a.map

let mk_stmt ~id ~name ~iters ~nparams ~domain ~static ~lhs ~rhs ~text =
  let m = List.length iters in
  let width = m + nparams + 1 in
  if domain.Polyhedra.nvars <> m + nparams then
    invalid_arg "Ir.mk_stmt: domain variable count mismatch";
  if Array.length static <> m + 1 then
    invalid_arg "Ir.mk_stmt: static vector must have depth+1 entries";
  check_access ~width lhs;
  List.iter (check_access ~width) (reads_of_expr rhs);
  { id; name; iters; domain; static; lhs; rhs; text }

(* ------------------------------- printing ------------------------------- *)

let pp_affine_row names fmt (row : int array) =
  let n = Array.length row - 1 in
  if Array.length names <> n then invalid_arg "Ir.pp_affine_row";
  let first = ref true in
  for j = 0 to n - 1 do
    let a = row.(j) in
    if a <> 0 then begin
      if !first then begin
        if a < 0 then Format.pp_print_string fmt "-";
        first := false
      end
      else Format.pp_print_string fmt (if a < 0 then " - " else " + ");
      if abs a <> 1 then Format.fprintf fmt "%d*" (abs a);
      Format.pp_print_string fmt names.(j)
    end
  done;
  let k = row.(n) in
  if !first then Format.fprintf fmt "%d" k
  else if k > 0 then Format.fprintf fmt " + %d" k
  else if k < 0 then Format.fprintf fmt " - %d" (-k)

let pp_access fmt a =
  Format.fprintf fmt "%s[%d-dim access]" a.arr (Array.length a.map)

let pp_expr iter_names param_names fmt e =
  let names = Array.append iter_names param_names in
  let rec go prec fmt = function
    | Const f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Format.fprintf fmt "%.1f" f
        else Format.fprintf fmt "%g" f
    | Iter i -> Format.pp_print_string fmt iter_names.(i)
    | Load a ->
        Format.fprintf fmt "%s%a" a.arr
          (fun fmt rows ->
            Array.iter
              (fun row -> Format.fprintf fmt "[%a]" (pp_affine_row names) row)
              rows)
          a.map
    | Unop (`Neg, e) -> Format.fprintf fmt "-%a" (go 10) e
    | Binop (op, a, b) ->
        let sym, p =
          match op with
          | Add -> ("+", 1)
          | Sub -> ("-", 1)
          | Mul -> ("*", 2)
          | Div -> ("/", 2)
        in
        if p < prec then
          Format.fprintf fmt "(%a %s %a)" (go p) a sym (go (p + 1)) b
        else Format.fprintf fmt "%a %s %a" (go p) a sym (go (p + 1)) b
  in
  go 0 fmt e

let pp_stmt p fmt s =
  let iter_names = Array.of_list s.iters in
  let param_names = Array.of_list p.params in
  let names = Array.append iter_names param_names in
  Format.fprintf fmt "@[<v>%s (depth %d, static %s):@,  domain: %a@,  body: %s%a = %a;@]"
    s.name (depth s)
    (String.concat "," (List.map string_of_int (Array.to_list s.static)))
    (Polyhedra.pp ~names) s.domain s.lhs.arr
    (fun fmt rows ->
      Array.iter (fun row -> Format.fprintf fmt "[%a]" (pp_affine_row names) row) rows)
    s.lhs.map
    (pp_expr iter_names param_names)
    s.rhs

let pp_program fmt p =
  Format.fprintf fmt "@[<v>program (params: %s)@,%a@]"
    (String.concat ", " p.params)
    (Putil.pp_list "@," (pp_stmt p))
    p.stmts
