(** Polyhedral program representation.

    A program is a sequence of (possibly imperfectly nested) loop nests over
    integer iterators with affine bounds and affine array accesses — the
    static-control-part (SCoP) fragment Pluto handles.  Each statement [S]
    carries:

    - its iteration {e domain}, a polyhedron over [iterators @ parameters];
    - affine {e access functions} for every array reference;
    - a {e static position} vector encoding the original syntactic nesting
      (the classic 2d+1 representation), which defines the original execution
      order for dependence analysis;
    - an executable body used by the simulator for semantic-equivalence
      checks and flop counting.

    Column convention: statement-local affine functions and constraints are
    over [iters(S) @ params @ [1]]; native-int coefficient rows are converted
    to {!Polyhedra} big-integer rows at the boundary. *)

type access_kind = Read | Write

(** An affine array access: [map] has one row per array dimension, each row of
    length [depth + nparams + 1] (constant last). *)
type access = { arr : string; map : int array array }

type binop = Add | Sub | Mul | Div

(** Executable statement bodies: floating-point expressions over affine
    accesses, iterators and constants. *)
type expr =
  | Const of float
  | Iter of int  (** the value of the statement's [i]-th iterator, as a float *)
  | Load of access
  | Unop of [ `Neg ] * expr
  | Binop of binop * expr * expr

(** [stmt] — a program statement.  [static] has length [depth + 1]: position
    among siblings before entering loop 1, ..., position at innermost level. *)
type stmt = {
  id : int;
  name : string;
  iters : string list;
  domain : Polyhedra.t;  (** over [iters @ params] *)
  static : int array;
  lhs : access;
  rhs : expr;
  text : string;  (** original source text, for code printing *)
}

(** Array extents are affine in the parameters: one row per dimension over
    [params @ [1]]. *)
type array_info = { aname : string; extents : int array array }

type program = {
  params : string list;
  arrays : array_info list;
  stmts : stmt list;
}

(** {1 Accessors} *)

val depth : stmt -> int

(** [nvars p s] = iterators of [s] + parameters: the variable count of the
    statement's domain. *)
val nvars : program -> stmt -> int

val nparams : program -> int
val find_array : program -> string -> array_info
val find_stmt : program -> int -> stmt

(** [accesses s] is the write access followed by all read accesses of [s]
    (with duplicates preserved). *)
val accesses : stmt -> (access_kind * access) list

(** {1 Original-order helpers (2d+1 encoding)} *)

(** [common_loops a b] is the number of loops shared syntactically by [a] and
    [b] (the length of the common static prefix, capped by both depths). *)
val common_loops : stmt -> stmt -> int

(** [precedes_at a b k] is true iff [a] syntactically precedes [b] at nesting
    level [k] (0-based; [k] must be <= the number of common loops). *)
val precedes_at : stmt -> stmt -> int -> bool

(** {1 Conversions} *)

(** [row_to_vec r] converts a native-int coefficient row to a big-int row. *)
val row_to_vec : int array -> Vec.t

(** [access_row_value row iters params] evaluates an affine row. *)
val access_row_value : int array -> int array -> int array -> int

(** {1 Building} *)

(** [mk_stmt ~id ~name ~iters ~domain ~static ~lhs ~rhs ~text] with sanity
    checks on dimensions.
    @raise Invalid_argument on inconsistent widths. *)
val mk_stmt :
  id:int ->
  name:string ->
  iters:string list ->
  nparams:int ->
  domain:Polyhedra.t ->
  static:int array ->
  lhs:access ->
  rhs:expr ->
  text:string ->
  stmt

(** [reads_of_expr e] collects all loads in evaluation order. *)
val reads_of_expr : expr -> access list

(** {1 Reduction detection (syntactic half)} *)

(** A statement of the shape [x = x op e] (with [op] associative/commutative
    up to floating-point reassociation): the accumulator access and the
    combine operator. *)
type reduction = { red_op : binop; red_acc : access }

(** [same_access a b] — same array, structurally equal affine maps. *)
val same_access : access -> access -> bool

(** The C/OpenMP spelling of a combine operator. *)
val binop_symbol : binop -> string

(** [reduction_of_stmt s] — [Some r] when [s] is a self-update [x = x op e]
    with [op] in [{+, -, *}] ([-] only with the accumulator on the left) and
    the combined expression [e] never syntactically reloads the accumulator
    cell.  This is only the syntactic half: whether other same-array reads can
    {e alias} the accumulator cell is a polyhedral question answered in
    [Deps] (which also requires the [--reductions] opt-in). *)
val reduction_of_stmt : stmt -> reduction option

(** [flops_of_expr e] counts arithmetic operations. *)
val flops_of_expr : expr -> int

(** {1 Printing} *)

val pp_access : Format.formatter -> access -> unit
val pp_stmt : program -> Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit

(** [pp_expr names nparams] prints an expression with iterator/param names. *)
val pp_expr : string array -> string array -> Format.formatter -> expr -> unit

(** [pp_affine_row names] prints an affine row such as [2*t + i - 1] using the
    given variable names (row length = names + 1). *)
val pp_affine_row : string array -> Format.formatter -> int array -> unit
