(** Exact linear and integer linear programming.

    This module replaces PipLib in the original Pluto tool-chain.  It provides
    an exact rational primal simplex (two-phase, Bland's anti-cycling rule), a
    branch-and-bound integer solver on top of it, and the lexicographic
    minimization used to pick transformation coefficients (eq. (5) of the
    paper).

    Variables are free by default; with [~nonneg:true] they are constrained to
    be non-negative (Pluto's coefficient search uses this, per §4.2 of the
    paper).  Branch-and-bound terminates only on polyhedra whose integer
    optimum is attained in a bounded region; callers are expected to supply
    bounding constraints (the Pluto search bounds coefficients, the dependence
    tester fixes structure parameters).

    {2 Warm-started solving}

    By default the solver is incremental: a branch-and-bound child inherits
    its parent's optimal simplex dictionary, appends the one new bound row
    and repairs feasibility with dual-simplex pivots, and {!lexmin_order}
    fixes coordinates on one living dictionary instead of solving [n]
    independent ILPs.  Warm and cold starts return the same optimal values
    (exact arithmetic; the LP/ILP optimum is path-independent), though
    witness points of degenerate optima may differ within the optimal class.
    [set_warm false] — or [~warm:false] per call — forces the historical
    cold-start behaviour; the property tests use it as the reference oracle.

    Observability counters (see {!Stats}): [milp.solves], [milp.bb_nodes],
    [milp.pivots], [milp.cold_builds], [milp.warm_starts],
    [milp.dual_stalls], [milp.feasible_cache_hits]/[..._misses]. *)

(** Result of rational linear programming. *)
type lp_result =
  | Lp_optimal of Q.t * Q.t array  (** optimal value and a minimizing point *)
  | Lp_infeasible
  | Lp_unbounded

(** [lp ?nonneg sys obj] minimizes [obj·x] over the rational points of [sys].
    [obj] has length [sys.nvars].  Memoized on (system digest, objective)
    unless [set_warm false]; with the persistent {!Store} enabled
    ([--cache-dir]) memoized answers additionally survive across processes.
    Codegen's LP-redundancy pruning ({!Codegen.prune_lp}) issues all its
    probes through here, so code generation shares both caches. *)
val lp : ?nonneg:bool -> Polyhedra.t -> Q.t array -> lp_result

(** Result of integer linear programming. *)
type ilp_result =
  | Ilp_optimal of Bigint.t * Bigint.t array
  | Ilp_infeasible
  | Ilp_unbounded

(** Resource budget for branch-and-bound: a node-count limit and an optional
    wall-clock allowance.  When exhausted the solver raises
    [Diag.Budget_exceeded] instead of running unboundedly — callers at layer
    boundaries catch it and degrade (conservative answer or a lower rung of
    the scheduling ladder). *)
type budget = { max_nodes : int; time_limit_s : float option }

(** 200_000 nodes, no time limit. *)
val default_budget : budget

(** The clock [time_limit_s] is measured on: wall time ([Unix.gettimeofday]),
    so a solver that sleeps or blocks still trips its allowance — not CPU
    time, which stands still in an idle process. *)
val now : unit -> float

(** [set_warm false] disables warm starts globally (every node re-solves
    cold and {!feasible_cached} stops caching); [true] restores the default.
    Benchmarks use it to measure the cold path. *)
val set_warm : bool -> unit

(** [ilp ?nonneg ?budget ?warm sys obj] minimizes the integer objective
    [obj·x] over the integer points of [sys].  [warm] overrides the global
    {!set_warm} toggle for this call.
    @raise Diag.Budget_exceeded when the branch-and-bound tree exceeds the
    budget's node or time limit. *)
val ilp :
  ?nonneg:bool -> ?budget:budget -> ?warm:bool -> Polyhedra.t -> Vec.t ->
  ilp_result

(** [feasible ?nonneg sys] decides whether [sys] contains an integer point and
    returns a witness.
    @raise Diag.Budget_exceeded like {!ilp}. *)
val feasible :
  ?nonneg:bool -> ?budget:budget -> ?warm:bool -> Polyhedra.t ->
  Bigint.t array option

(** [feasible_cached ?nonneg sys] is {!feasible} memoized on the canonical
    form of [sys] (integer tightening — sound only when every variable is
    integral, which holds for all dependence systems).  Budget overruns
    propagate uncached; with [set_warm false] the cache is bypassed.  With
    the persistent {!Store} enabled ([--cache-dir]), in-memory misses
    consult and populate the on-disk store, so feasibility answers survive
    across processes. *)
val feasible_cached :
  ?nonneg:bool -> ?budget:budget -> Polyhedra.t -> Bigint.t array option

(** Drop all memoized feasibility results. *)
val clear_caches : unit -> unit

(** {2 Cache bounds}

    The lp/feasibility tables are LRU-bounded: every entry carries a
    recency tick, and an insert that pushes a table past the budget evicts
    the least-recently-used entries (counter [milp.cache_evictions]).
    Long-lived daemons size this with [--solver-cache-entries]. *)

(** [set_cache_budget n] caps {e each} in-memory solver cache at [n]
    entries (clamped to at least 16; default 100_000). *)
val set_cache_budget : int -> unit

(** Total live entries across the lp and feasibility caches. *)
val cache_entry_count : unit -> int

(** {2 Cache journaling}

    Support for long-lived servers whose forked workers inherit the parent's
    hot in-memory caches: with [set_cache_journal true], every entry added
    to the lp/feasibility caches is also recorded in a journal.  The worker
    takes the journal ({!take_cache_journal}), ships it across the fork
    boundary as pure data, and the parent replays it with
    {!absorb_cache_journal} — so caches stay hot across requests without
    ever marshaling the full tables. *)

type cache_journal

val set_cache_journal : bool -> unit

(** Return the entries journaled since [set_cache_journal true] (or the last
    take), and reset the journal. *)
val take_cache_journal : unit -> cache_journal

(** Number of entries carried by a journal. *)
val cache_journal_length : cache_journal -> int

(** Replay a journal into the in-memory caches and return how many entries
    the post-absorb LRU trim evicted to stay under the budget.  Existing
    keys win (the journal was computed from the same pure functions, so
    values agree). *)
val absorb_cache_journal : cache_journal -> int

(** [lexmin ?nonneg sys] is the lexicographically smallest integer point of
    [sys] (minimizing variable 0 first, then variable 1, ...), or [None] if
    empty.
    @raise Diag.Diagnostic with code ["unbounded"] if some coordinate is
    unbounded below.
    @raise Diag.Budget_exceeded like {!ilp}. *)
val lexmin :
  ?nonneg:bool -> ?budget:budget -> ?warm:bool -> Polyhedra.t ->
  Bigint.t array option

(** [lexmin_order ?nonneg sys order] generalizes {!lexmin} to an explicit
    priority order over a subset of the variables; variables not listed are
    left unoptimized (any feasible value). *)
val lexmin_order :
  ?nonneg:bool -> ?budget:budget -> ?warm:bool -> Polyhedra.t -> int list ->
  Bigint.t array option
