(* Exact two-phase primal simplex over Q, plus incremental branch-and-bound
   and lexicographic minimization.

   Internal form: minimize c·x over { x >= 0 | rows a_i·x + b_i >= 0 }.
   Free variables are handled by the classic split x = x+ - x-.
   Equalities are converted to opposite inequality pairs.

   Dictionary representation (Chvatal): each basic variable is an affine
   function of the nonbasic ones,
       basic_i = tab.(i).(n) + sum_j tab.(i).(j) * nonbasic_j
   and the objective (maximized internally) is
       z = obj.(n) + sum_j obj.(j) * nonbasic_j.
   Bland's rule guarantees termination.

   The incremental layer keeps dictionaries alive across solves: a
   branch-and-bound child appends its one new bound row to a copy of the
   parent's optimal dictionary and repairs primal feasibility with dual
   simplex pivots instead of rebuilding from scratch, and [lexmin_order]
   fixes coordinates on one living dictionary.  [set_warm false] restores the
   historical cold-start behaviour (every node rebuilds); it is the reference
   the property tests compare against. *)

type lp_result =
  | Lp_optimal of Q.t * Q.t array
  | Lp_infeasible
  | Lp_unbounded

type ilp_result =
  | Ilp_optimal of Bigint.t * Bigint.t array
  | Ilp_infeasible
  | Ilp_unbounded

type budget = { max_nodes : int; time_limit_s : float option }

let default_budget = { max_nodes = 200_000; time_limit_s = None }

let warm_enabled = ref true
let set_warm b = warm_enabled := b

type dict = {
  mutable nonbasic : int array; (* variable ids of columns *)
  mutable basis : int array; (* variable ids of rows *)
  mutable tab : Q.t array array; (* m rows, n+1 cols (const last) *)
  mutable obj : Q.t array; (* n+1 cols *)
  mutable next_id : int; (* first unused variable id (for appended slacks) *)
}

let copy_dict d =
  {
    d with
    nonbasic = Array.copy d.nonbasic;
    basis = Array.copy d.basis;
    tab = Array.map Array.copy d.tab;
    obj = Array.copy d.obj;
  }

let pivot d r e =
  Stats.incr "milp.pivots";
  let n = Array.length d.nonbasic in
  let row = d.tab.(r) in
  let a = row.(e) in
  assert (not (Q.is_zero a));
  let inv = Q.inv a in
  (* Express entering variable in terms of the leaving one and the rest. *)
  let new_row =
    Array.init (n + 1) (fun j ->
        if j = e then inv else Q.neg (Q.mul row.(j) inv))
  in
  (* note: coefficient at position e of new_row is the coefficient of the
     *leaving* variable, which takes the entering one's column slot *)
  let substitute target =
    let f = target.(e) in
    if Q.is_zero f then target
    else
      Array.init (n + 1) (fun j ->
          if j = e then Q.mul f new_row.(e)
          else Q.add target.(j) (Q.mul f new_row.(j)))
  in
  for i = 0 to Array.length d.tab - 1 do
    if i <> r then d.tab.(i) <- substitute d.tab.(i)
  done;
  d.obj <- substitute d.obj;
  d.tab.(r) <- new_row;
  let leaving = d.basis.(r) in
  d.basis.(r) <- d.nonbasic.(e);
  d.nonbasic.(e) <- leaving

(* One phase of simplex: maximize the current objective.  Returns [`Optimal]
   or [`Unbounded].  Assumes the dictionary is primal-feasible. *)
let optimize d =
  let n = Array.length d.nonbasic in
  let m = Array.length d.basis in
  let rec loop () =
    (* Bland: entering = smallest var id among columns with positive obj coef *)
    let enter = ref (-1) in
    for j = 0 to n - 1 do
      if Q.sign d.obj.(j) > 0
         && (!enter < 0 || d.nonbasic.(j) < d.nonbasic.(!enter))
      then enter := j
    done;
    if !enter < 0 then `Optimal
    else begin
      let e = !enter in
      (* ratio test over rows with negative coefficient *)
      let leave = ref (-1) in
      let best = ref Q.zero in
      for i = 0 to m - 1 do
        let coef = d.tab.(i).(e) in
        if Q.sign coef < 0 then begin
          let ratio = Q.div d.tab.(i).(n) (Q.neg coef) in
          if !leave < 0 || Q.compare ratio !best < 0
             || (Q.equal ratio !best && d.basis.(i) < d.basis.(!leave))
          then begin
            leave := i;
            best := ratio
          end
        end
      done;
      if !leave < 0 then `Unbounded
      else begin
        pivot d !leave e;
        loop ()
      end
    end
  in
  loop ()

(* Dual simplex: restore primal feasibility of a dictionary whose objective
   row is still dual-feasible (all reduced costs <= 0, i.e. the dictionary
   was optimal before new rows were appended).  Bland-style tie-breaks:
   leaving row = negative constant with the smallest basis id; entering
   column minimizes (-obj_j)/row_j over row_j > 0, ties by smallest variable
   id.  [`Stalled] is a safety valve: past [max_pivots] the caller abandons
   the warm dictionary and re-solves cold. *)
let dual_optimize ?(max_pivots = max_int) d =
  let n = Array.length d.nonbasic in
  let rec loop pivots =
    if pivots > max_pivots then `Stalled
    else begin
      let m = Array.length d.basis in
      let leave = ref (-1) in
      for i = 0 to m - 1 do
        if Q.sign d.tab.(i).(n) < 0
           && (!leave < 0 || d.basis.(i) < d.basis.(!leave))
        then leave := i
      done;
      if !leave < 0 then `Feasible
      else begin
        let r = !leave in
        let row = d.tab.(r) in
        let enter = ref (-1) in
        let best = ref Q.zero in
        for j = 0 to n - 1 do
          if Q.sign row.(j) > 0 then begin
            let ratio = Q.div (Q.neg d.obj.(j)) row.(j) in
            if !enter < 0 || Q.compare ratio !best < 0
               || (Q.equal ratio !best && d.nonbasic.(j) < d.nonbasic.(!enter))
            then begin
              enter := j;
              best := ratio
            end
          end
        done;
        if !enter < 0 then
          (* basic_r = const + sum row_j*nb_j with const < 0 and every
             row_j <= 0: negative for all nonbasic >= 0, hence infeasible *)
          `Infeasible
        else begin
          pivot d r !enter;
          loop (pivots + 1)
        end
      end
    end
  in
  loop 0

let dual_pivot_cap d =
  1000 + (20 * (Array.length d.basis + Array.length d.nonbasic))

(* Install objective: maximize z = -c·x, expressing basic decision variables
   through their rows.  Resets the objective of an existing dictionary, so a
   living dictionary can be re-targeted (warm lexmin). *)
let install_objective d ~nv (c : Q.t array) =
  let n = Array.length d.nonbasic in
  let obj = Array.make (n + 1) Q.zero in
  let add_var vid coef =
    if Q.is_zero coef then ()
    else begin
      match Array.find_index (fun v -> v = vid) d.nonbasic with
      | Some j -> obj.(j) <- Q.add obj.(j) coef
      | None -> (
          match Array.find_index (fun b -> b = vid) d.basis with
          | None -> assert false
          | Some r ->
              for j = 0 to n do
                obj.(j) <- Q.add obj.(j) (Q.mul coef d.tab.(r).(j))
              done)
    end
  in
  for v = 0 to nv - 1 do
    add_var v (Q.neg c.(v))
  done;
  d.obj <- obj

let extract_point nv d =
  let n = Array.length d.nonbasic in
  let x = Array.make nv Q.zero in
  Array.iteri (fun r b -> if b < nv then x.(b) <- d.tab.(r).(n)) d.basis;
  x

(* Append one standard-form row a·x + k >= 0 (over the nv standard decision
   variables) to a dictionary, expressed over the current nonbasic set.  The
   new slack enters the basis; its constant may be negative — the caller
   repairs with {!dual_optimize}. *)
let add_row_std d ~nv ((a : Q.t array), (k : Q.t)) =
  let n = Array.length d.nonbasic in
  let row = Array.make (n + 1) Q.zero in
  row.(n) <- k;
  for v = 0 to nv - 1 do
    let coef = a.(v) in
    if not (Q.is_zero coef) then begin
      match Array.find_index (fun id -> id = v) d.nonbasic with
      | Some j -> row.(j) <- Q.add row.(j) coef
      | None -> (
          match Array.find_index (fun id -> id = v) d.basis with
          | None -> assert false (* decision vars never leave the system *)
          | Some r ->
              for j = 0 to n do
                row.(j) <- Q.add row.(j) (Q.mul coef d.tab.(r).(j))
              done)
    end
  done;
  d.tab <- Array.append d.tab [| row |];
  d.basis <- Array.append d.basis [| d.next_id |];
  d.next_id <- d.next_id + 1

(* Build the initial dictionary for: minimize c·x, x >= 0, rows r·x + k >= 0.
   Slack variable ids follow decision ids.  Returns a primal-optimal
   dictionary for the installed objective, or reports infeasibility or
   unboundedness.  This is the cold path — every call builds from scratch. *)
let solve_standard_dict (nv : int) (rows : (Q.t array * Q.t) list)
    (c : Q.t array) =
  Stats.incr "milp.cold_builds";
  let m = List.length rows in
  let rows = Array.of_list rows in
  let tab =
    Array.init m (fun i ->
        let coefs, k = rows.(i) in
        Array.init (nv + 1) (fun j -> if j = nv then k else coefs.(j)))
  in
  let d =
    {
      nonbasic = Array.init nv (fun j -> j);
      basis = Array.init m (fun i -> nv + i);
      tab;
      obj = Array.make (nv + 1) Q.zero;
      next_id = nv + m + 1 (* nv+m is reserved for the phase-1 auxiliary *);
    }
  in
  (* Phase 1 if some constant is negative. *)
  let min_row = ref (-1) in
  for i = 0 to m - 1 do
    if Q.sign d.tab.(i).(nv) < 0
       && (!min_row < 0 || Q.compare d.tab.(i).(nv) d.tab.(!min_row).(nv) < 0)
    then min_row := i
  done;
  let feasible =
    if !min_row < 0 then true
    else begin
      (* add auxiliary variable with id nv+m; column appended *)
      let aux_id = nv + m in
      let n1 = nv + 1 in
      d.nonbasic <- Array.append d.nonbasic [| aux_id |];
      d.tab <- Array.map (fun row ->
          Array.init (n1 + 1) (fun j ->
              if j = nv then Q.one (* aux column *)
              else if j = n1 then row.(nv) (* const moved right *)
              else row.(j)))
          d.tab;
      d.obj <- Array.init (n1 + 1) (fun j -> if j = nv then Q.minus_one else Q.zero);
      (* first pivot: aux enters, most negative row leaves -> feasible *)
      pivot d !min_row nv;
      (match optimize d with `Optimal -> () | `Unbounded -> assert false);
      let opt = d.obj.(n1) in
      if Q.sign opt < 0 then false
      else begin
        (* drive aux out of the basis if it lingers (at value 0) *)
        (match Array.find_index (fun b -> b = aux_id) d.basis with
        | None -> ()
        | Some r ->
            let col = ref (-1) in
            (try
               for j = 0 to Array.length d.nonbasic - 1 do
                 if d.nonbasic.(j) <> aux_id && not (Q.is_zero d.tab.(r).(j))
                 then begin
                   col := j;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !col >= 0 then pivot d r !col
            else begin
              (* row is identically the aux variable: delete it *)
              let keep = ref [] and kept_basis = ref [] in
              Array.iteri
                (fun i row ->
                  if i <> r then begin
                    keep := row :: !keep;
                    kept_basis := d.basis.(i) :: !kept_basis
                  end)
                d.tab;
              d.tab <- Array.of_list (List.rev !keep);
              d.basis <- Array.of_list (List.rev !kept_basis)
            end);
        (* remove the aux column *)
        (match Array.find_index (fun v -> v = aux_id) d.nonbasic with
        | None -> ()
        | Some jaux ->
            let n1 = Array.length d.nonbasic in
            let strip row =
              Array.init n1 (fun j ->
                  (* drop column jaux; const is at index n1 *)
                  if j < jaux then row.(j) else row.(j + 1))
            in
            d.nonbasic <-
              Array.of_list
                (List.filteri (fun j _ -> j <> jaux) (Array.to_list d.nonbasic));
            d.tab <- Array.map strip d.tab;
            d.obj <- strip d.obj);
        true
      end
    end
  in
  if not feasible then `Infeasible
  else begin
    install_objective d ~nv c;
    match optimize d with `Unbounded -> `Unbounded | `Optimal -> `Optimal d
  end

let solve_standard nv rows c =
  match solve_standard_dict nv rows c with
  | `Infeasible -> Lp_infeasible
  | `Unbounded -> Lp_unbounded
  | `Optimal d ->
      let n = Array.length d.nonbasic in
      Lp_optimal (Q.neg d.obj.(n), extract_point nv d)

(* Translate a Polyhedra.t (+ objective over its nvars) into standard form.
   With [nonneg:false] each variable is split into positive/negative parts. *)
let to_standard ~nonneg (sys : Polyhedra.t) =
  let nv0 = sys.Polyhedra.nvars in
  let nv = if nonneg then nv0 else 2 * nv0 in
  let widen (coefs : Vec.t) =
    let q j = Q.of_bigint coefs.(j) in
    if nonneg then (Array.init nv0 q, q nv0)
    else
      ( Array.init nv (fun j ->
            if j < nv0 then q j else Q.neg (q (j - nv0))),
        q nv0 )
  in
  let rows =
    List.concat_map
      (fun (c : Polyhedra.constr) ->
        let coefs, k = widen c.Polyhedra.coefs in
        match c.Polyhedra.kind with
        | Polyhedra.Ge -> [ (coefs, k) ]
        | Polyhedra.Eq ->
            [ (coefs, k); (Array.map Q.neg coefs, Q.neg k) ])
      sys.Polyhedra.cs
  in
  (nv, nv0, rows)

let recover ~nonneg nv0 (x : Q.t array) =
  if nonneg then Array.sub x 0 nv0
  else Array.init nv0 (fun j -> Q.sub x.(j) x.(j + nv0))

let widen_obj ~nonneg nv nv0 (objective : Q.t array) =
  if nonneg then objective
  else
    Array.init nv (fun j ->
        if j < nv0 then objective.(j) else Q.neg (objective.(j - nv0)))

(* [lp] is a pure function of its arguments, so memoizing on the raw system
   digest plus the objective returns exactly what re-solving would — the
   codegen bound derivations and the verifier's range probes ask the same
   rational LPs over and over across tuner candidates.

   Both tables carry a recency tick per entry and live under one entry
   budget: when an insert pushes a table past the budget, the
   least-recently-used entries are evicted down to a slack below it
   (so the O(n log n) trim amortizes over many inserts) and
   "milp.cache_evictions" counts what was dropped.  Long-running daemons
   set the budget from --solver-cache-entries; the default matches the
   historical 100k reset threshold but degrades gracefully instead of
   dumping the whole table. *)
let cache_budget = ref 100_000
let set_cache_budget n = cache_budget := max 16 n
let cache_tick = ref 0

let next_tick () =
  incr cache_tick;
  !cache_tick

(* Trim [tbl] to a slack below the budget once it exceeds it; returns the
   number of evicted entries (0 when under budget). *)
let trim_cache tbl =
  let b = !cache_budget in
  if Hashtbl.length tbl <= b then 0
  else begin
    let evicted =
      Putil.Lru.trim tbl ~budget:(b - (b / 8)) ~tick:(fun (_, t) -> !t)
    in
    Stats.add "milp.cache_evictions" evicted;
    evicted
  end

let lp_cache : (string, lp_result * int ref) Hashtbl.t = Hashtbl.create 256

(* Cache journaling: when enabled, every entry added to an in-memory cache
   is also recorded in a journal the caller can take and replay elsewhere.
   The compile daemon's forked workers inherit the parent's hot caches,
   journal what they add, and ship the delta back so the parent's caches
   stay hot for the next fork (the tables themselves never cross the pipe). *)
let cache_journal_on = ref false
let lp_journal : (string * lp_result) list ref = ref []

let lp ?(nonneg = false) (sys : Polyhedra.t) (objective : Q.t array) =
  if Array.length objective <> sys.Polyhedra.nvars then
    invalid_arg "Milp.lp: objective length";
  let solve () =
    let nv, nv0, rows = to_standard ~nonneg sys in
    let c = widen_obj ~nonneg nv nv0 objective in
    match solve_standard nv rows c with
    | Lp_optimal (v, x) -> Lp_optimal (v, recover ~nonneg nv0 x)
    | (Lp_infeasible | Lp_unbounded) as r -> r
  in
  if not !warm_enabled then solve ()
  else begin
    let b = Buffer.create 64 in
    Buffer.add_string b (if nonneg then "n:" else "f:");
    Buffer.add_string b (Polyhedra.digest sys);
    Array.iter
      (fun q ->
        Buffer.add_string b (Q.to_string q);
        Buffer.add_char b ',')
      objective;
    let key = Buffer.contents b in
    match Hashtbl.find_opt lp_cache key with
    | Some (r, tick) ->
        Stats.incr "milp.lp_cache_hits";
        tick := next_tick ();
        (match r with
        | Lp_optimal (v, x) -> Lp_optimal (v, Array.copy x)
        | (Lp_infeasible | Lp_unbounded) as r -> r)
    | None ->
        Stats.incr "milp.lp_cache_misses";
        let r =
          match (Store.read ~kind:"milp-lp" ~key : lp_result option) with
          | Some r -> r
          | None ->
              let r = solve () in
              Store.write ~kind:"milp-lp" ~key r;
              r
        in
        Hashtbl.replace lp_cache key (r, ref (next_tick ()));
        ignore (trim_cache lp_cache);
        if !cache_journal_on then lp_journal := (key, r) :: !lp_journal;
        (match r with
        | Lp_optimal (v, x) -> Lp_optimal (v, Array.copy x)
        | (Lp_infeasible | Lp_unbounded) as r -> r)
  end

(* ----------------------------- branch & bound ---------------------------- *)

let row_le sys j (bound : Bigint.t) =
  (* x_j <= bound  ==  -x_j + bound >= 0 *)
  let n = sys.Polyhedra.nvars in
  let coefs = Vec.zero (n + 1) in
  coefs.(j) <- Bigint.minus_one;
  coefs.(n) <- bound;
  Polyhedra.ge coefs

let row_ge sys j (bound : Bigint.t) =
  let n = sys.Polyhedra.nvars in
  let coefs = Vec.zero (n + 1) in
  coefs.(j) <- Bigint.one;
  coefs.(n) <- Bigint.neg bound;
  Polyhedra.ge coefs

(* The same bound as {!row_le}/{!row_ge} in standard coordinates, for
   appending directly to a living dictionary. *)
let std_bound_row ~nonneg ~nv ~nv0 j ~ge (bound : Q.t) =
  let a = Array.make nv Q.zero in
  let s = if ge then Q.one else Q.minus_one in
  a.(j) <- s;
  if not nonneg then a.(nv0 + j) <- Q.neg s;
  (a, if ge then Q.neg bound else bound)

(* The clock time budgets are measured on.  Wall time, as milp.mli promises —
   not Sys.time, whose CPU accounting stands still while the process sleeps
   or waits on I/O, letting a stalled solver blow far past its advertised
   allowance. *)
let now = Unix.gettimeofday

type bb_ctl = {
  bud : budget;
  nodes : int ref;
  deadline : float option;
  warm : bool;
  nonneg : bool;
  nv : int;
  nv0 : int;
  c_std : Q.t array;
  objective : Vec.t;
  mutable best : (Bigint.t * Bigint.t array) option;
  mutable saw_unbounded : bool;
}

(* How a node obtains its LP relaxation's optimal dictionary:
   - [Cold]: build and solve from scratch (the historical behaviour, and the
     fallback whenever a warm dictionary goes stale);
   - [Presolved d]: [d] is already optimal for this node's system (warm
     lexmin hands the shared root dictionary to each coordinate's tree);
   - [Pending d]: [d] is the parent's optimal dictionary plus one appended
     bound row; a dual-simplex repair finishes the solve. *)
type node_start = Cold | Presolved of dict | Pending of dict

let rec bb_node ctl (sys : Polyhedra.t) start =
  incr ctl.nodes;
  Stats.incr "milp.bb_nodes";
  if !(ctl.nodes) > ctl.bud.max_nodes then
    raise
      (Diag.Budget_exceeded
         (Printf.sprintf
            "Milp.ilp: branch-and-bound exceeded the %d-node budget"
            ctl.bud.max_nodes));
  (* [>=]: a zero allowance means the deadline has passed the moment it is
     armed, even when the clock has not ticked between arming and checking. *)
  (match ctl.deadline with
  | Some dl when now () >= dl ->
      raise
        (Diag.Budget_exceeded
           (Printf.sprintf
              "Milp.ilp: branch-and-bound exceeded the %.3fs time budget \
               (%d nodes explored)"
              (Option.get ctl.bud.time_limit_s)
              !(ctl.nodes)))
  | _ -> ());
  let cold () =
    let _, _, rows = to_standard ~nonneg:ctl.nonneg sys in
    solve_standard_dict ctl.nv rows ctl.c_std
  in
  let solved =
    match start with
    | Cold -> cold ()
    | Presolved d -> `Optimal d
    | Pending d -> (
        match dual_optimize ~max_pivots:(dual_pivot_cap d) d with
        | `Feasible ->
            Stats.incr "milp.warm_starts";
            `Optimal d
        | `Infeasible -> `Infeasible
        | `Stalled ->
            Stats.incr "milp.dual_stalls";
            cold ())
  in
  match solved with
  | `Infeasible -> ()
  | `Unbounded ->
      (* The relaxation is unbounded; if an integer point exists the ILP is
         unbounded too (rational ray + integer point); we detect the ray
         here and report unboundedness conservatively. *)
      ctl.saw_unbounded <- true
  | `Optimal d ->
      let n = Array.length d.nonbasic in
      let v = Q.neg d.obj.(n) in
      let x = recover ~nonneg:ctl.nonneg ctl.nv0 (extract_point ctl.nv d) in
      let lower = Q.ceil v in
      let prune =
        match ctl.best with
        | Some (bv, _) -> Bigint.compare lower bv >= 0
        | None -> false
      in
      if not prune then begin
        match Array.find_index (fun q -> not (Q.is_integer q)) x with
        | None ->
            let xi = Array.map Q.to_bigint_exn x in
            let value = Vec.dot ctl.objective xi in
            (match ctl.best with
            | Some (bv, _) when Bigint.compare value bv >= 0 -> ()
            | _ -> ctl.best <- Some (value, xi))
        | Some j ->
            let f = Q.floor x.(j) in
            let branch poly_row std_row =
              let sys' = Polyhedra.add sys poly_row in
              let start' =
                if ctl.warm then begin
                  let d' = copy_dict d in
                  add_row_std d' ~nv:ctl.nv std_row;
                  Pending d'
                end
                else Cold
              in
              bb_node ctl sys' start'
            in
            let fq = Q.of_bigint f in
            let up = Bigint.add f Bigint.one in
            branch (row_le sys j f)
              (std_bound_row ~nonneg:ctl.nonneg ~nv:ctl.nv ~nv0:ctl.nv0 j
                 ~ge:false fq);
            branch (row_ge sys j up)
              (std_bound_row ~nonneg:ctl.nonneg ~nv:ctl.nv ~nv0:ctl.nv0 j
                 ~ge:true (Q.of_bigint up))
      end

let make_ctl ~nonneg ~warm ~budget (sys : Polyhedra.t) (objective : Vec.t) =
  let nv, nv0, _ = to_standard ~nonneg sys in
  let obj_q = Array.map Q.of_bigint objective in
  {
    bud = budget;
    nodes = ref 0;
    deadline =
      (match budget.time_limit_s with
      | None -> None
      | Some dt -> Some (now () +. dt));
    warm;
    nonneg;
    nv;
    nv0;
    c_std = widen_obj ~nonneg nv nv0 obj_q;
    objective;
    best = None;
    saw_unbounded = false;
  }

let ctl_result ctl =
  if ctl.saw_unbounded && ctl.best = None then Ilp_unbounded
  else
    match ctl.best with
    | None -> Ilp_infeasible
    | Some (v, x) -> Ilp_optimal (v, x)

let ilp ?(nonneg = false) ?(budget = default_budget) ?warm (sys : Polyhedra.t)
    (objective : Vec.t) =
  if Array.length objective <> sys.Polyhedra.nvars then
    invalid_arg "Milp.ilp: objective length";
  Stats.incr "milp.solves";
  let warm = match warm with Some b -> b | None -> !warm_enabled in
  let ctl = make_ctl ~nonneg ~warm ~budget sys objective in
  bb_node ctl sys Cold;
  ctl_result ctl

let feasible ?(nonneg = false) ?budget ?warm (sys : Polyhedra.t) =
  match ilp ~nonneg ?budget ?warm sys (Vec.zero sys.Polyhedra.nvars) with
  | Ilp_optimal (_, x) -> Some x
  | Ilp_infeasible -> None
  | Ilp_unbounded -> assert false (* zero objective is never unbounded *)

(* Memoized integer feasibility: systems are canonicalized with integer
   tightening (sound here — every caller's variables range over Z) and keyed
   by digest, so the thousands of near-identical dependence/verify probes
   answer from the table.  Budget overruns propagate uncached. *)
let feasible_cache : (string, Bigint.t array option * int ref) Hashtbl.t =
  Hashtbl.create 1024

let feasible_journal : (string * Bigint.t array option) list ref = ref []

let clear_caches () =
  Hashtbl.reset feasible_cache;
  Hashtbl.reset lp_cache

type cache_journal = {
  j_lp : (string * lp_result) list;
  j_feasible : (string * Bigint.t array option) list;
}

let set_cache_journal on =
  cache_journal_on := on;
  lp_journal := [];
  feasible_journal := []

let take_cache_journal () =
  let j = { j_lp = !lp_journal; j_feasible = !feasible_journal } in
  lp_journal := [];
  feasible_journal := [];
  j

let cache_journal_length j = List.length j.j_lp + List.length j.j_feasible

let cache_entry_count () =
  Hashtbl.length lp_cache + Hashtbl.length feasible_cache

let absorb_cache_journal j =
  List.iter
    (fun (k, r) ->
      if not (Hashtbl.mem lp_cache k) then
        Hashtbl.add lp_cache k (r, ref (next_tick ())))
    j.j_lp;
  List.iter
    (fun (k, r) ->
      if not (Hashtbl.mem feasible_cache k) then
        Hashtbl.add feasible_cache k (r, ref (next_tick ())))
    j.j_feasible;
  trim_cache lp_cache + trim_cache feasible_cache

let feasible_cached ?(nonneg = false) ?budget (sys : Polyhedra.t) =
  if not !warm_enabled then feasible ~nonneg ?budget sys
  else
    match Polyhedra.canon ~integer:true sys with
    | None -> None (* canonicalization proved the system empty *)
    | Some c -> (
        let key = (if nonneg then "n:" else "f:") ^ Polyhedra.digest c in
        match Hashtbl.find_opt feasible_cache key with
        | Some (r, tick) ->
            Stats.incr "milp.feasible_cache_hits";
            tick := next_tick ();
            Option.map Array.copy r
        | None ->
            Stats.incr "milp.feasible_cache_misses";
            let r =
              match
                (Store.read ~kind:"milp-feasible" ~key
                  : Bigint.t array option option)
              with
              | Some r -> r
              | None ->
                  (* budget overruns raise here and propagate uncached *)
                  let r = feasible ~nonneg ?budget c in
                  Store.write ~kind:"milp-feasible" ~key r;
                  r
            in
            Hashtbl.replace feasible_cache key
              (Option.map Array.copy r, ref (next_tick ()));
            ignore (trim_cache feasible_cache);
            if !cache_journal_on then
              feasible_journal :=
                (key, Option.map Array.copy r) :: !feasible_journal;
            r)

(* ------------------------ lexicographic minimum -------------------------- *)

let lexmin_unbounded_error j =
  Diag.Diagnostic
    (Diag.errorf ~code:"unbounded"
       "Milp.lexmin: coordinate %d is unbounded below (the system lacks a \
        lower bound on it; callers must supply bounding constraints)"
       j)

(* Reference path: one independent cold ILP per coordinate. *)
let lexmin_order_cold ~nonneg ?budget (sys : Polyhedra.t) order =
  let n = sys.Polyhedra.nvars in
  let rec fix sys = function
    | [] -> (
        match feasible ~nonneg ?budget ~warm:false sys with
        | None -> None
        | Some x -> Some x)
    | j :: rest -> (
        let obj = Vec.zero n in
        obj.(j) <- Bigint.one;
        match ilp ~nonneg ?budget ~warm:false sys obj with
        | Ilp_infeasible -> None
        | Ilp_unbounded -> raise (lexmin_unbounded_error j)
        | Ilp_optimal (v, _) ->
            let coefs = Vec.zero (n + 1) in
            coefs.(j) <- Bigint.one;
            coefs.(n) <- Bigint.neg v;
            fix (Polyhedra.add sys (Polyhedra.eq coefs)) rest)
  in
  fix sys order

(* Warm path: one living dictionary for the whole prefix chain.  Each
   coordinate re-targets the dictionary's objective, primal-reoptimizes,
   runs its branch-and-bound tree from that presolved root, then pins the
   optimum with two appended rows and a dual repair.  Branch bounds explored
   inside one coordinate's tree are never carried to the next — only the
   x_j = v_j equalities are. *)
let lexmin_order_warm ~nonneg ~budget (sys : Polyhedra.t) order =
  Stats.incr "milp.solves";
  let n = sys.Polyhedra.nvars in
  let nv, nv0, _ = to_standard ~nonneg sys in
  let base_sys = ref sys in
  let base_dict : dict option ref = ref None in
  (* Optimal root dictionary for the standard objective [c_std] over the
     current base system, reusing the living dictionary when possible. *)
  let root_for c_std =
    match !base_dict with
    | Some d -> (
        Stats.incr "milp.warm_starts";
        install_objective d ~nv c_std;
        match optimize d with
        | `Optimal -> `Optimal d
        | `Unbounded -> `Unbounded)
    | None -> (
        let _, _, rows = to_standard ~nonneg !base_sys in
        match solve_standard_dict nv rows c_std with
        | `Optimal d ->
            base_dict := Some d;
            `Optimal d
        | (`Infeasible | `Unbounded) as r -> r)
  in
  let run_bb objective root =
    let ctl = make_ctl ~nonneg ~warm:true ~budget !base_sys objective in
    bb_node ctl !base_sys (Presolved root);
    ctl_result ctl
  in
  let fix_coord j v =
    let coefs = Vec.zero (n + 1) in
    coefs.(j) <- Bigint.one;
    coefs.(n) <- Bigint.neg v;
    base_sys := Polyhedra.add !base_sys (Polyhedra.eq coefs);
    match !base_dict with
    | None -> ()
    | Some d -> (
        let vq = Q.of_bigint v in
        add_row_std d ~nv (std_bound_row ~nonneg ~nv ~nv0 j ~ge:true vq);
        add_row_std d ~nv (std_bound_row ~nonneg ~nv ~nv0 j ~ge:false vq);
        match dual_optimize ~max_pivots:(dual_pivot_cap d) d with
        | `Feasible -> ()
        | `Infeasible | `Stalled ->
            (* the integer optimum is attainable, so this is only ever a
               pivot stall; rebuild cold at the next coordinate *)
            Stats.incr "milp.dual_stalls";
            base_dict := None)
  in
  let coord_objective j =
    let objective = Vec.zero n in
    if j >= 0 then objective.(j) <- Bigint.one;
    let obj_q = Array.map Q.of_bigint objective in
    (objective, widen_obj ~nonneg nv nv0 obj_q)
  in
  let rec fix = function
    | [] -> (
        (* all coordinates pinned: any feasible point is the witness *)
        let objective, c_std = coord_objective (-1) in
        match root_for c_std with
        | `Infeasible -> None
        | `Unbounded -> assert false (* zero objective is never unbounded *)
        | `Optimal root -> (
            match run_bb objective root with
            | Ilp_infeasible -> None
            | Ilp_unbounded -> assert false
            | Ilp_optimal (_, x) -> Some x))
    | j :: rest -> (
        let objective, c_std = coord_objective j in
        match root_for c_std with
        | `Infeasible -> None
        | `Unbounded -> raise (lexmin_unbounded_error j)
        | `Optimal root -> (
            match run_bb objective root with
            | Ilp_infeasible -> None
            | Ilp_unbounded -> raise (lexmin_unbounded_error j)
            | Ilp_optimal (v, _) ->
                fix_coord j v;
                fix rest))
  in
  fix order

let lexmin_order ?(nonneg = false) ?budget ?warm (sys : Polyhedra.t) order =
  let n = sys.Polyhedra.nvars in
  List.iter
    (fun j ->
      if j < 0 || j >= n then invalid_arg "Milp.lexmin_order: bad index")
    order;
  let warm = match warm with Some b -> b | None -> !warm_enabled in
  if warm then
    lexmin_order_warm ~nonneg
      ~budget:(Option.value budget ~default:default_budget)
      sys order
  else lexmin_order_cold ~nonneg ?budget sys order

let lexmin ?nonneg ?budget ?warm sys =
  lexmin_order ?nonneg ?budget ?warm sys (Putil.range sys.Polyhedra.nvars)
