(* Exact two-phase primal simplex over Q, plus branch-and-bound and
   lexicographic minimization.

   Internal form: minimize c·x over { x >= 0 | rows a_i·x + b_i >= 0 }.
   Free variables are handled by the classic split x = x+ - x-.
   Equalities are converted to opposite inequality pairs.

   Dictionary representation (Chvatal): each basic variable is an affine
   function of the nonbasic ones,
       basic_i = tab.(i).(n) + sum_j tab.(i).(j) * nonbasic_j
   and the objective (maximized internally) is
       z = obj.(n) + sum_j obj.(j) * nonbasic_j.
   Bland's rule guarantees termination. *)

type lp_result =
  | Lp_optimal of Q.t * Q.t array
  | Lp_infeasible
  | Lp_unbounded

type ilp_result =
  | Ilp_optimal of Bigint.t * Bigint.t array
  | Ilp_infeasible
  | Ilp_unbounded

type budget = { max_nodes : int; time_limit_s : float option }

let default_budget = { max_nodes = 200_000; time_limit_s = None }

type dict = {
  mutable nonbasic : int array; (* variable ids of columns *)
  mutable basis : int array; (* variable ids of rows *)
  mutable tab : Q.t array array; (* m rows, n+1 cols (const last) *)
  mutable obj : Q.t array; (* n+1 cols *)
}

let pivot d r e =
  let n = Array.length d.nonbasic in
  let row = d.tab.(r) in
  let a = row.(e) in
  assert (not (Q.is_zero a));
  let inv = Q.inv a in
  (* Express entering variable in terms of the leaving one and the rest. *)
  let new_row =
    Array.init (n + 1) (fun j ->
        if j = e then inv else Q.neg (Q.mul row.(j) inv))
  in
  (* note: coefficient at position e of new_row is the coefficient of the
     *leaving* variable, which takes the entering one's column slot *)
  let substitute target =
    let f = target.(e) in
    if Q.is_zero f then target
    else
      Array.init (n + 1) (fun j ->
          if j = e then Q.mul f new_row.(e)
          else Q.add target.(j) (Q.mul f new_row.(j)))
  in
  let new_row_const_part =
    (* new_row currently maps: entering = inv*leaving - sum inv*row_j*nb_j -
       inv*const; fix: we built coefficient for slot e as inv (leaving var),
       others as -row_j*inv including const slot n. *)
    new_row
  in
  for i = 0 to Array.length d.tab - 1 do
    if i <> r then d.tab.(i) <- substitute d.tab.(i)
  done;
  d.obj <- substitute d.obj;
  d.tab.(r) <- new_row_const_part;
  let leaving = d.basis.(r) in
  d.basis.(r) <- d.nonbasic.(e);
  d.nonbasic.(e) <- leaving

(* One phase of simplex: maximize the current objective.  Returns [`Optimal]
   or [`Unbounded].  Assumes the dictionary is primal-feasible. *)
let optimize d =
  let n = Array.length d.nonbasic in
  let m = Array.length d.basis in
  let rec loop () =
    (* Bland: entering = smallest var id among columns with positive obj coef *)
    let enter = ref (-1) in
    for j = 0 to n - 1 do
      if Q.sign d.obj.(j) > 0
         && (!enter < 0 || d.nonbasic.(j) < d.nonbasic.(!enter))
      then enter := j
    done;
    if !enter < 0 then `Optimal
    else begin
      let e = !enter in
      (* ratio test over rows with negative coefficient *)
      let leave = ref (-1) in
      let best = ref Q.zero in
      for i = 0 to m - 1 do
        let coef = d.tab.(i).(e) in
        if Q.sign coef < 0 then begin
          let ratio = Q.div d.tab.(i).(n) (Q.neg coef) in
          if !leave < 0 || Q.compare ratio !best < 0
             || (Q.equal ratio !best && d.basis.(i) < d.basis.(!leave))
          then begin
            leave := i;
            best := ratio
          end
        end
      done;
      if !leave < 0 then `Unbounded
      else begin
        pivot d !leave e;
        loop ()
      end
    end
  in
  loop ()

(* Build the initial dictionary for: minimize c·x, x >= 0, rows r·x + k >= 0.
   Slack variable ids follow decision ids.  Returns a primal-feasible
   dictionary maximizing -c·x, or reports infeasibility. *)
let solve_standard (nv : int) (rows : (Q.t array * Q.t) list) (c : Q.t array) =
  let m = List.length rows in
  let rows = Array.of_list rows in
  let tab =
    Array.init m (fun i ->
        let coefs, k = rows.(i) in
        Array.init (nv + 1) (fun j -> if j = nv then k else coefs.(j)))
  in
  let d =
    {
      nonbasic = Array.init nv (fun j -> j);
      basis = Array.init m (fun i -> nv + i);
      tab;
      obj = Array.make (nv + 1) Q.zero;
    }
  in
  (* Phase 1 if some constant is negative. *)
  let min_row = ref (-1) in
  for i = 0 to m - 1 do
    if Q.sign d.tab.(i).(nv) < 0
       && (!min_row < 0 || Q.compare d.tab.(i).(nv) d.tab.(!min_row).(nv) < 0)
    then min_row := i
  done;
  let feasible =
    if !min_row < 0 then true
    else begin
      (* add auxiliary variable with id nv+m; column appended *)
      let aux_id = nv + m in
      let n1 = nv + 1 in
      d.nonbasic <- Array.append d.nonbasic [| aux_id |];
      d.tab <- Array.map (fun row ->
          Array.init (n1 + 1) (fun j ->
              if j = nv then Q.one (* aux column *)
              else if j = n1 then row.(nv) (* const moved right *)
              else row.(j)))
          d.tab;
      d.obj <- Array.init (n1 + 1) (fun j -> if j = nv then Q.minus_one else Q.zero);
      (* first pivot: aux enters, most negative row leaves -> feasible *)
      pivot d !min_row nv;
      (match optimize d with `Optimal -> () | `Unbounded -> assert false);
      let opt = d.obj.(n1) in
      if Q.sign opt < 0 then false
      else begin
        (* drive aux out of the basis if it lingers (at value 0) *)
        (match Array.find_index (fun b -> b = aux_id) d.basis with
        | None -> ()
        | Some r ->
            let col = ref (-1) in
            (try
               for j = 0 to Array.length d.nonbasic - 1 do
                 if d.nonbasic.(j) <> aux_id && not (Q.is_zero d.tab.(r).(j))
                 then begin
                   col := j;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !col >= 0 then pivot d r !col
            else begin
              (* row is identically the aux variable: delete it *)
              let keep = ref [] and kept_basis = ref [] in
              Array.iteri
                (fun i row ->
                  if i <> r then begin
                    keep := row :: !keep;
                    kept_basis := d.basis.(i) :: !kept_basis
                  end)
                d.tab;
              d.tab <- Array.of_list (List.rev !keep);
              d.basis <- Array.of_list (List.rev !kept_basis)
            end);
        (* remove the aux column *)
        (match Array.find_index (fun v -> v = aux_id) d.nonbasic with
        | None -> ()
        | Some jaux ->
            let n1 = Array.length d.nonbasic in
            let strip row =
              Array.init n1 (fun j ->
                  (* drop column jaux; const is at index n1 *)
                  if j < jaux then row.(j) else row.(j + 1))
            in
            d.nonbasic <-
              Array.of_list
                (List.filteri (fun j _ -> j <> jaux) (Array.to_list d.nonbasic));
            d.tab <- Array.map strip d.tab;
            d.obj <- strip d.obj);
        true
      end
    end
  in
  if not feasible then Lp_infeasible
  else begin
    (* install objective: maximize z = -c·x, expressing basic vars via rows *)
    let n = Array.length d.nonbasic in
    let obj = Array.make (n + 1) Q.zero in
    (* start with -c over decision variables, substituting basics *)
    let add_var vid coef =
      if Q.is_zero coef then ()
      else begin
        match Array.find_index (fun v -> v = vid) d.nonbasic with
        | Some j -> obj.(j) <- Q.add obj.(j) coef
        | None -> (
            match Array.find_index (fun b -> b = vid) d.basis with
            | None -> assert false
            | Some r ->
                for j = 0 to n do
                  obj.(j) <- Q.add obj.(j) (Q.mul coef d.tab.(r).(j))
                done)
      end
    in
    for v = 0 to nv - 1 do
      add_var v (Q.neg c.(v))
    done;
    d.obj <- obj;
    match optimize d with
    | `Unbounded -> Lp_unbounded
    | `Optimal ->
        let n = Array.length d.nonbasic in
        let x = Array.make nv Q.zero in
        Array.iteri
          (fun r b -> if b < nv then x.(b) <- d.tab.(r).(n))
          d.basis;
        Lp_optimal (Q.neg d.obj.(n), x)
  end

(* Translate a Polyhedra.t (+ objective over its nvars) into standard form.
   With [nonneg:false] each variable is split into positive/negative parts. *)
let to_standard ~nonneg (sys : Polyhedra.t) =
  let nv0 = sys.Polyhedra.nvars in
  let nv = if nonneg then nv0 else 2 * nv0 in
  let widen (coefs : Vec.t) =
    let q j = Q.of_bigint coefs.(j) in
    if nonneg then (Array.init nv0 q, q nv0)
    else
      ( Array.init nv (fun j ->
            if j < nv0 then q j else Q.neg (q (j - nv0))),
        q nv0 )
  in
  let rows =
    List.concat_map
      (fun (c : Polyhedra.constr) ->
        let coefs, k = widen c.Polyhedra.coefs in
        match c.Polyhedra.kind with
        | Polyhedra.Ge -> [ (coefs, k) ]
        | Polyhedra.Eq ->
            [ (coefs, k); (Array.map Q.neg coefs, Q.neg k) ])
      sys.Polyhedra.cs
  in
  (nv, nv0, rows)

let recover ~nonneg nv0 (x : Q.t array) =
  if nonneg then Array.sub x 0 nv0
  else Array.init nv0 (fun j -> Q.sub x.(j) x.(j + nv0))

let lp ?(nonneg = false) (sys : Polyhedra.t) (objective : Q.t array) =
  if Array.length objective <> sys.Polyhedra.nvars then
    invalid_arg "Milp.lp: objective length";
  let nv, nv0, rows = to_standard ~nonneg sys in
  let c =
    if nonneg then objective
    else
      Array.init nv (fun j ->
          if j < nv0 then objective.(j) else Q.neg objective.(j - nv0))
  in
  match solve_standard nv rows c with
  | Lp_optimal (v, x) -> Lp_optimal (v, recover ~nonneg nv0 x)
  | (Lp_infeasible | Lp_unbounded) as r -> r

(* ----------------------------- branch & bound ---------------------------- *)

let row_le sys j (bound : Bigint.t) =
  (* x_j <= bound  ==  -x_j + bound >= 0 *)
  let n = sys.Polyhedra.nvars in
  let coefs = Vec.zero (n + 1) in
  coefs.(j) <- Bigint.minus_one;
  coefs.(n) <- bound;
  Polyhedra.ge coefs

let row_ge sys j (bound : Bigint.t) =
  let n = sys.Polyhedra.nvars in
  let coefs = Vec.zero (n + 1) in
  coefs.(j) <- Bigint.one;
  coefs.(n) <- Bigint.neg bound;
  Polyhedra.ge coefs

let ilp ?(nonneg = false) ?(budget = default_budget) (sys : Polyhedra.t)
    (objective : Vec.t) =
  if Array.length objective <> sys.Polyhedra.nvars then
    invalid_arg "Milp.ilp: objective length";
  Stats.incr "milp.solves";
  let obj_q = Array.map Q.of_bigint objective in
  let best : (Bigint.t * Bigint.t array) option ref = ref None in
  let nodes = ref 0 in
  let unbounded = ref false in
  let deadline =
    match budget.time_limit_s with
    | None -> None
    | Some dt -> Some (Sys.time () +. dt)
  in
  let rec go sys =
    incr nodes;
    Stats.incr "milp.bb_nodes";
    if !nodes > budget.max_nodes then
      raise
        (Diag.Budget_exceeded
           (Printf.sprintf
              "Milp.ilp: branch-and-bound exceeded the %d-node budget"
              budget.max_nodes));
    (match deadline with
    | Some d when Sys.time () > d ->
        raise
          (Diag.Budget_exceeded
             (Printf.sprintf
                "Milp.ilp: branch-and-bound exceeded the %.3fs time budget \
                 (%d nodes explored)"
                (Option.get budget.time_limit_s)
                !nodes))
    | _ -> ());
    match lp ~nonneg sys obj_q with
    | Lp_infeasible -> ()
    | Lp_unbounded ->
        (* The relaxation is unbounded; if an integer point exists the ILP is
           unbounded too (rational ray + integer point); we detect the ray
           here and report unboundedness conservatively. *)
        unbounded := true
    | Lp_optimal (v, x) ->
        let lower = Q.ceil v in
        let prune =
          match !best with
          | Some (bv, _) -> Bigint.compare lower bv >= 0
          | None -> false
        in
        if not prune then begin
          match Array.find_index (fun q -> not (Q.is_integer q)) x with
          | None ->
              let xi = Array.map Q.to_bigint_exn x in
              let value = Vec.dot objective xi in
              (match !best with
              | Some (bv, _) when Bigint.compare value bv >= 0 -> ()
              | _ -> best := Some (value, xi))
          | Some j ->
              let f = Q.floor x.(j) in
              go (Polyhedra.add sys (row_le sys j f));
              go (Polyhedra.add sys (row_ge sys j (Bigint.add f Bigint.one)))
        end
  in
  go sys;
  if !unbounded && !best = None then Ilp_unbounded
  else match !best with None -> Ilp_infeasible | Some (v, x) -> Ilp_optimal (v, x)

let feasible ?(nonneg = false) ?budget (sys : Polyhedra.t) =
  match ilp ~nonneg ?budget sys (Vec.zero sys.Polyhedra.nvars) with
  | Ilp_optimal (_, x) -> Some x
  | Ilp_infeasible -> None
  | Ilp_unbounded -> assert false (* zero objective is never unbounded *)

let lexmin_order ?(nonneg = false) ?budget (sys : Polyhedra.t) order =
  let n = sys.Polyhedra.nvars in
  let rec fix sys = function
    | [] -> (
        match feasible ~nonneg ?budget sys with
        | None -> None
        | Some x -> Some x)
    | j :: rest -> (
        if j < 0 || j >= n then invalid_arg "Milp.lexmin_order: bad index";
        let obj = Vec.zero n in
        obj.(j) <- Bigint.one;
        match ilp ~nonneg ?budget sys obj with
        | Ilp_infeasible -> None
        | Ilp_unbounded -> failwith "Milp.lexmin: coordinate unbounded below"
        | Ilp_optimal (v, _) ->
            let coefs = Vec.zero (n + 1) in
            coefs.(j) <- Bigint.one;
            coefs.(n) <- Bigint.neg v;
            fix (Polyhedra.add sys (Polyhedra.eq coefs)) rest)
  in
  fix sys order

let lexmin ?nonneg ?budget sys =
  lexmin_order ?nonneg ?budget sys (Putil.range sys.Polyhedra.nvars)
