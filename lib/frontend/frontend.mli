(** Front-end: a lexer, recursive-descent parser and polyhedral extractor for
    the static-control C subset Pluto accepts.

    Accepted input (the LooPo-scanner substitute):

    {v
    double a[N][N], b[N];        // array declarations; extents affine in params
    for (t = 0; t < T; t++) {    // step-1 counted loops, affine bounds
      for (i = 2; i <= N - 2; i++)
        b[i] = 0.333 * (a[i-1][0] + a[i][0]);
      for (j = 2; j < N - 1; j++)
        a[j][0] = b[j];
    }
    v}

    - loop bounds and array subscripts must be affine in surrounding
      iterators and parameters;
    - any identifier that is not a declared array and not a loop iterator is
      a program parameter;
    - [#] preprocessor lines and comments are ignored;
    - assignments are floating-point expressions over array accesses.

    Errors are reported as structured {!Diag.t} diagnostics with line/column
    positions.  The parser recovers at statement boundaries, so a single run
    reports {e all} syntax and semantic errors in the input, not just the
    first one. *)

exception Parse_error of string

(** [parse_program_diag ?name src] parses and extracts the polyhedral IR.

    - [Ok (program, warnings)] when no errors were found (warnings may still
      be present);
    - [Error diagnostics] with every lexical, syntax and semantic error the
      recovery passes could find, sorted by source position.

    Never raises on malformed input. *)
val parse_program_diag :
  ?name:string -> string -> (Ir.program * Diag.t list, Diag.t list) result

(** [parse_program ~name src] — exception-raising convenience wrapper around
    {!parse_program_diag}.
    @raise Parse_error with all rendered diagnostics (newline-separated) on
    syntax or non-affine constructs. *)
val parse_program : ?name:string -> string -> Ir.program
