exception Parse_error of string

(* --------------------------------- lexer --------------------------------- *)

type token =
  | Tid of string
  | Tint of int
  | Tfloat of float
  | Tfor
  | Tdouble
  | Tfloatkw
  | Tint_kw
  | Tlparen
  | Trparen
  | Tlbrack
  | Trbrack
  | Tlbrace
  | Trbrace
  | Tsemi
  | Tcomma
  | Tassign
  | Tpluseq
  | Tminuseq
  | Tstareq
  | Tplus
  | Tminus
  | Tstar
  | Tslash
  | Tlt
  | Tle
  | Tgt
  | Tge
  | Tinc
  | Teof

let token_name = function
  | Tid s -> Printf.sprintf "identifier %S" s
  | Tint n -> Printf.sprintf "integer %d" n
  | Tfloat f -> Printf.sprintf "float %g" f
  | Tfor -> "'for'"
  | Tdouble -> "'double'"
  | Tfloatkw -> "'float'"
  | Tint_kw -> "'int'"
  | Tlparen -> "'('"
  | Trparen -> "')'"
  | Tlbrack -> "'['"
  | Trbrack -> "']'"
  | Tlbrace -> "'{'"
  | Trbrace -> "'}'"
  | Tsemi -> "';'"
  | Tcomma -> "','"
  | Tassign -> "'='"
  | Tpluseq -> "'+='"
  | Tminuseq -> "'-='"
  | Tstareq -> "'*='"
  | Tplus -> "'+'"
  | Tminus -> "'-'"
  | Tstar -> "'*'"
  | Tslash -> "'/'"
  | Tlt -> "'<'"
  | Tle -> "'<='"
  | Tgt -> "'>'"
  | Tge -> "'>='"
  | Tinc -> "'++'"
  | Teof -> "end of input"

type ptok = { tok : token; line : int; col : int }

(* Tokenize the whole input, collecting a diagnostic per lexical error
   instead of aborting on the first: an unexpected character is skipped, a
   malformed number becomes 0, an unterminated comment ends the token
   stream.  The parser then still sees the rest of the program. *)
let tokenize ~file src =
  let n = String.length src in
  let toks = ref [] in
  let ds = ref [] in
  let line = ref 1 and bol = ref 0 in
  let i = ref 0 in
  let emit tok col = toks := { tok; line = !line; col } :: !toks in
  let lex_error ~col fmt =
    Diag.errorf
      ~span:(Diag.span ~file ~line:!line ~col ())
      ~code:"lex" fmt
  in
  let record d = ds := d :: !ds in
  let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_id c = is_id_start c || (c >= '0' && c <= '9') in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = src.[!i] in
    let col = !i - !bol + 1 in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      (* preprocessor line: skip to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let finished = ref false in
      while not !finished do
        if !i + 1 >= n then begin
          record (lex_error ~col "unterminated comment");
          i := n;
          finished := true
        end
        else if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          i := !i + 2;
          finished := true
        end
        else begin
          if src.[!i] = '\n' then begin
            incr line;
            bol := !i + 1
          end;
          incr i
        end
      done
    end
    else if is_id_start c then begin
      let start = !i in
      while !i < n && is_id src.[!i] do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      let tok =
        match s with
        | "for" -> Tfor
        | "double" -> Tdouble
        | "float" -> Tfloatkw
        | "int" -> Tint_kw
        | _ -> Tid s
      in
      emit tok col
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && (src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = 'E') then begin
        if src.[!i] = '.' then begin
          incr i;
          while !i < n && is_digit src.[!i] do
            incr i
          done
        end;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do
            incr i
          done
        end;
        let text = String.sub src start (!i - start) in
        match float_of_string_opt text with
        | Some f -> emit (Tfloat f) col
        | None ->
            record (lex_error ~col "malformed number %S" text);
            emit (Tfloat 0.) col
      end
      else begin
        let text = String.sub src start (!i - start) in
        match int_of_string_opt text with
        | Some v -> emit (Tint v) col
        | None ->
            record (lex_error ~col "integer literal %S out of range" text);
            emit (Tint 0) col
      end
    end
    else begin
      let two t =
        emit t col;
        i := !i + 2
      in
      let one t =
        emit t col;
        incr i
      in
      match c with
      | '+' when !i + 1 < n && src.[!i + 1] = '+' -> two Tinc
      | '+' when !i + 1 < n && src.[!i + 1] = '=' -> two Tpluseq
      | '-' when !i + 1 < n && src.[!i + 1] = '=' -> two Tminuseq
      | '*' when !i + 1 < n && src.[!i + 1] = '=' -> two Tstareq
      | '<' when !i + 1 < n && src.[!i + 1] = '=' -> two Tle
      | '>' when !i + 1 < n && src.[!i + 1] = '=' -> two Tge
      | '(' -> one Tlparen
      | ')' -> one Trparen
      | '[' -> one Tlbrack
      | ']' -> one Trbrack
      | '{' -> one Tlbrace
      | '}' -> one Trbrace
      | ';' -> one Tsemi
      | ',' -> one Tcomma
      | '=' -> one Tassign
      | '+' -> one Tplus
      | '-' -> one Tminus
      | '*' -> one Tstar
      | '/' -> one Tslash
      | '<' -> one Tlt
      | '>' -> one Tgt
      | _ ->
          record (lex_error ~col "unexpected character %C" c);
          incr i
    end
  done;
  emit Teof (n - !bol + 1);
  (Array.of_list (List.rev !toks), List.rev !ds)

(* ------------------------------ syntax tree ------------------------------ *)

type pos = { pline : int; pcol : int }

type sexpr = { e : snode; epos : pos }

and snode =
  | S_int of int
  | S_float of float
  | S_id of string
  | S_idx of string * sexpr list
  | S_neg of sexpr
  | S_bin of Ir.binop * sexpr * sexpr

type sitem =
  | S_assign of { lhs : string * sexpr list; rhs : sexpr; ipos : pos }
  | S_for of {
      it : string;
      lb : sexpr;
      cmp : [ `Lt | `Le ];
      ub : sexpr;
      body : sitem list;
      ipos : pos;
    }

type decl = { dname : string; dexts : sexpr list; dpos : pos }

(* --------------------------------- parser -------------------------------- *)

type parser_state = {
  toks : ptok array;
  mutable pos : int;
  file : string;
  diags : Diag.t list ref;
}

let peek ps = ps.toks.(ps.pos).tok

let here ps =
  let p = ps.toks.(ps.pos) in
  { pline = p.line; pcol = p.col }

let advance ps = ps.pos <- ps.pos + 1

let record ps d = ps.diags := d :: !(ps.diags)

let span_of ps (p : pos) = Diag.span ~file:ps.file ~line:p.pline ~col:p.pcol ()

(* Syntax errors abort the current statement/declaration only; the recovery
   loops below resynchronize and keep parsing so that every error in the
   input is reported, not just the first. *)
exception Synerr of Diag.t

let syn_error ps pos fmt =
  Printf.ksprintf (fun m -> raise (Synerr (Diag.error ~span:(span_of ps pos) ~code:"parse" m))) fmt

let err_here ps what =
  let p = ps.toks.(ps.pos) in
  syn_error ps
    { pline = p.line; pcol = p.col }
    "expected %s, found %s" what (token_name p.tok)

let expect ps tok what =
  if peek ps = tok then advance ps else err_here ps what

let expect_id ps what =
  match peek ps with
  | Tid s ->
      advance ps;
      s
  | _ -> err_here ps what

let rec parse_expr ps = parse_additive ps

and parse_additive ps =
  let lhs = ref (parse_multiplicative ps) in
  let continue_ = ref true in
  while !continue_ do
    match peek ps with
    | Tplus ->
        advance ps;
        let rhs = parse_multiplicative ps in
        lhs := { e = S_bin (Ir.Add, !lhs, rhs); epos = !lhs.epos }
    | Tminus ->
        advance ps;
        let rhs = parse_multiplicative ps in
        lhs := { e = S_bin (Ir.Sub, !lhs, rhs); epos = !lhs.epos }
    | _ -> continue_ := false
  done;
  !lhs

and parse_multiplicative ps =
  let lhs = ref (parse_unary ps) in
  let continue_ = ref true in
  while !continue_ do
    match peek ps with
    | Tstar ->
        advance ps;
        let rhs = parse_unary ps in
        lhs := { e = S_bin (Ir.Mul, !lhs, rhs); epos = !lhs.epos }
    | Tslash ->
        advance ps;
        let rhs = parse_unary ps in
        lhs := { e = S_bin (Ir.Div, !lhs, rhs); epos = !lhs.epos }
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary ps =
  let pos = here ps in
  match peek ps with
  | Tminus ->
      advance ps;
      { e = S_neg (parse_unary ps); epos = pos }
  | Tplus ->
      advance ps;
      parse_unary ps
  | _ -> parse_primary ps

and parse_primary ps =
  let pos = here ps in
  match peek ps with
  | Tint n ->
      advance ps;
      { e = S_int n; epos = pos }
  | Tfloat f ->
      advance ps;
      { e = S_float f; epos = pos }
  | Tlparen ->
      advance ps;
      let e = parse_expr ps in
      expect ps Trparen "')'";
      e
  | Tid name ->
      advance ps;
      let subs = ref [] in
      while peek ps = Tlbrack do
        advance ps;
        let e = parse_expr ps in
        expect ps Trbrack "']'";
        subs := e :: !subs
      done;
      if !subs = [] then { e = S_id name; epos = pos }
      else { e = S_idx (name, List.rev !subs); epos = pos }
  | _ -> err_here ps "expression"

(* Skip tokens until a plausible statement boundary: just past the next ';',
   or right before a '}' / 'for' / end of input. *)
let resync ps =
  let stop = ref false in
  while not !stop do
    match peek ps with
    | Tsemi ->
        advance ps;
        stop := true
    | Trbrace | Tfor | Teof -> stop := true
    | _ -> advance ps
  done

let rec parse_item ps =
  let ipos = here ps in
  match peek ps with
  | Tfor ->
      advance ps;
      expect ps Tlparen "'('";
      let it = expect_id ps "loop iterator" in
      expect ps Tassign "'='";
      let lb = parse_expr ps in
      expect ps Tsemi "';'";
      let it2_pos = here ps in
      let it2 = expect_id ps "loop iterator in condition" in
      if not (String.equal it it2) then
        record ps
          (Diag.errorf ~span:(span_of ps it2_pos) ~code:"parse"
             "loop condition tests %s, expected %s" it2 it);
      let cmp =
        match peek ps with
        | Tlt ->
            advance ps;
            `Lt
        | Tle ->
            advance ps;
            `Le
        | _ -> err_here ps "'<' or '<='"
      in
      let ub = parse_expr ps in
      expect ps Tsemi "';'";
      let it3_pos = here ps in
      let it3 = expect_id ps "loop iterator in increment" in
      if not (String.equal it it3) then
        record ps
          (Diag.errorf ~span:(span_of ps it3_pos) ~code:"parse"
             "loop increments %s, expected %s" it3 it);
      expect ps Tinc "'++'";
      expect ps Trparen "')'";
      let body =
        if peek ps = Tlbrace then begin
          let brace_pos = here ps in
          advance ps;
          let items = parse_items ps ~in_block:(Some brace_pos) in
          if peek ps = Trbrace then advance ps;
          items
        end
        else [ parse_item ps ]
      in
      S_for { it; lb; cmp; ub; body; ipos }
  | Tid _ -> (
      let e = parse_primary ps in
      let target =
        match e.e with
        | S_idx (name, subs) -> Some (name, subs)
        | S_id name -> Some (name, [])
        | _ -> None
      in
      let compound op =
        match target with
        | Some lhs ->
            advance ps;
            let rhs = parse_expr ps in
            expect ps Tsemi "';'";
            let name, subs = lhs in
            let lhs_expr =
              if subs = [] then { e = S_id name; epos = e.epos }
              else { e = S_idx (name, subs); epos = e.epos }
            in
            S_assign
              { lhs; rhs = { e = S_bin (op, lhs_expr, rhs); epos = e.epos }; ipos }
        | None -> err_here ps "assignment target"
      in
      match (target, peek ps) with
      | Some lhs, Tassign ->
          advance ps;
          let rhs = parse_expr ps in
          expect ps Tsemi "';'";
          S_assign { lhs; rhs; ipos }
      | _, Tpluseq -> compound Ir.Add
      | _, Tminuseq -> compound Ir.Sub
      | _, Tstareq -> compound Ir.Mul
      | _ -> err_here ps "'=' (assignment)")
  | _ -> err_here ps "statement or loop"

(* Parse statements until '}' (when [in_block]) or end of input, recovering
   from syntax errors at statement boundaries. *)
and parse_items ps ~in_block =
  let items = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match peek ps with
    | Trbrace when in_block <> None -> continue_ := false
    | Trbrace ->
        (* stray '}' at top level *)
        record ps
          (Diag.error ~span:(span_of ps (here ps)) ~code:"parse"
             "unmatched '}'");
        advance ps
    | Teof ->
        (match in_block with
        | Some brace_pos ->
            record ps
              (Diag.error ~span:(span_of ps brace_pos) ~code:"parse"
                 "unclosed '{': missing '}' before end of input")
        | None -> ());
        continue_ := false
    | _ -> (
        let start = ps.pos in
        try items := parse_item ps :: !items
        with Synerr d ->
          record ps d;
          if ps.pos = start then advance ps;
          resync ps)
  done;
  List.rev !items

let parse_decls ps =
  let decls = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match peek ps with
    | Tdouble | Tfloatkw | Tint_kw -> (
        let start = ps.pos in
        try
          advance ps;
          let again = ref true in
          while !again do
            let dpos = here ps in
            let name = expect_id ps "declared name" in
            let exts = ref [] in
            while peek ps = Tlbrack do
              advance ps;
              let e = parse_expr ps in
              expect ps Trbrack "']'";
              exts := e :: !exts
            done;
            decls := { dname = name; dexts = List.rev !exts; dpos } :: !decls;
            match peek ps with
            | Tcomma -> advance ps
            | Tsemi ->
                advance ps;
                again := false
            | _ -> err_here ps "',' or ';'"
          done
        with Synerr d ->
          record ps d;
          if ps.pos = start then advance ps;
          resync ps)
    | _ -> continue_ := false
  done;
  List.rev !decls

let parse_toplevel ps =
  let decls = parse_decls ps in
  let items = parse_items ps ~in_block:None in
  (decls, items)

(* --------------------------- semantic analysis --------------------------- *)

(* Semantic errors (non-affine constructs, unknown names, arity mismatches)
   abort only the enclosing statement; the walk records the diagnostic and
   continues with the next statement. *)
exception Semerr of Diag.t

(* Collect loop iterator names (anywhere) so that remaining free identifiers
   are recognized as parameters. *)
let rec collect_iters items acc =
  List.fold_left
    (fun acc item ->
      match item with
      | S_assign _ -> acc
      | S_for { it; body; _ } ->
          collect_iters body (if List.mem it acc then acc else it :: acc))
    acc items

let rec collect_ids_expr e acc =
  match e.e with
  | S_int _ | S_float _ -> acc
  | S_id s -> if List.mem s acc then acc else s :: acc
  | S_idx (_, subs) -> List.fold_left (fun acc e -> collect_ids_expr e acc) acc subs
  | S_neg e -> collect_ids_expr e acc
  | S_bin (_, a, b) -> collect_ids_expr b (collect_ids_expr a acc)

let rec collect_param_candidates items acc =
  List.fold_left
    (fun acc item ->
      match item with
      | S_assign { lhs = _, subs; rhs; _ } ->
          let acc = List.fold_left (fun acc e -> collect_ids_expr e acc) acc subs in
          collect_ids_expr rhs acc
      | S_for { lb; ub; body; _ } ->
          collect_param_candidates body
            (collect_ids_expr ub (collect_ids_expr lb acc)))
    acc items

(* Affine linearization of a source expression over (iters @ params @ [1]).
   Fails on products of variables, division, floats. *)
let affine_of_expr ~file ~iters ~params ~context e =
  let ni = List.length iters and np = List.length params in
  let width = ni + np + 1 in
  let sem_fail pos fmt =
    Printf.ksprintf
      (fun m ->
        raise
          (Semerr
             (Diag.error
                ~span:(Diag.span ~file ~line:pos.pline ~col:pos.pcol ())
                ~code:"non-affine" m)))
      fmt
  in
  let index_of name =
    let rec find i = function
      | [] -> None
      | x :: _ when String.equal x name -> Some i
      | _ :: rest -> find (i + 1) rest
    in
    match find 0 iters with
    | Some i -> Some i
    | None -> (
        match find 0 params with Some i -> Some (ni + i) | None -> None)
  in
  let rec go e =
    match e.e with
    | S_int n ->
        let r = Array.make width 0 in
        r.(width - 1) <- n;
        r
    | S_float _ -> sem_fail e.epos "%s: floating-point value in affine position" context
    | S_id name -> (
        match index_of name with
        | Some i ->
            let r = Array.make width 0 in
            r.(i) <- 1;
            r
        | None -> sem_fail e.epos "%s: unknown identifier %s" context name)
    | S_idx (a, _) -> sem_fail e.epos "%s: array access %s[...] is not affine" context a
    | S_neg e -> Array.map (fun x -> -x) (go e)
    | S_bin (Ir.Add, a, b) -> Array.map2 ( + ) (go a) (go b)
    | S_bin (Ir.Sub, a, b) -> Array.map2 ( - ) (go a) (go b)
    | S_bin (Ir.Mul, a, b) -> (
        let const_of r =
          let nonconst = Array.exists (fun x -> x <> 0) (Array.sub r 0 (width - 1)) in
          if nonconst then None else Some r.(width - 1)
        in
        let ra = go a and rb = go b in
        match (const_of ra, const_of rb) with
        | Some k, _ -> Array.map (fun x -> k * x) rb
        | _, Some k -> Array.map (fun x -> k * x) ra
        | None, None -> sem_fail e.epos "%s: product of variables is not affine" context)
    | S_bin (Ir.Div, _, _) -> sem_fail e.epos "%s: division is not affine" context
  in
  go e

(* If the source carries "#pragma scop" ... "#pragma endscop" markers, only
   the declarations (kept from anywhere before the region) and the marked
   region are considered, like the paper's tool. *)
let restrict_to_scop src =
  let find sub =
    let n = String.length src and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub src i m = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  match (find "#pragma scop", find "#pragma endscop") with
  | Some a, Some b when a < b ->
      let decls = String.sub src 0 a in
      (* keep only declaration-looking lines from the prefix *)
      let decl_lines =
        String.split_on_char '\n' decls
        |> List.filter (fun l ->
               let l = String.trim l in
               String.length l > 6
               && (String.sub l 0 6 = "double"
                  || String.sub l 0 5 = "float"))
      in
      String.concat "\n" decl_lines ^ "\n"
      ^ String.sub src a (b - a)
  | _ -> src

let parse_program_diag ?(name = "<input>") src =
  let file = name in
  let src = restrict_to_scop src in
  let toks, lex_diags = tokenize ~file src in
  let ps = { toks; pos = 0; file; diags = ref [] } in
  let decls, items = parse_toplevel ps in
  let sem_diags = ref [] in
  let sem_record d = sem_diags := d :: !sem_diags in
  let arrays = List.map (fun d -> d.dname) decls in
  let iters = List.rev (collect_iters items []) in
  let candidates = List.rev (collect_param_candidates items []) in
  let params =
    List.filter
      (fun id -> not (List.mem id arrays) && not (List.mem id iters))
      candidates
  in
  (* also allow parameters appearing only in array extents *)
  let params =
    List.fold_left
      (fun params d ->
        List.fold_left
          (fun params e ->
            List.fold_left
              (fun params id ->
                if
                  List.mem id params || List.mem id arrays || List.mem id iters
                then params
                else params @ [ id ])
              params (collect_ids_expr e []))
          params d.dexts)
      params decls
  in
  let np = List.length params in
  let affine ~iters ~context e = affine_of_expr ~file ~iters ~params ~context e in
  let array_infos =
    List.map
      (fun d ->
        let extents =
          List.map
            (fun e ->
              try
                affine ~iters:[]
                  ~context:(Printf.sprintf "extent of %s" d.dname)
                  e
              with Semerr diag ->
                sem_record diag;
                Array.make (np + 1) 0)
            d.dexts
        in
        { Ir.aname = d.dname; extents = Array.of_list extents })
      decls
  in
  let dims_of ~pos a =
    match List.find_opt (fun d -> String.equal d.Ir.aname a) array_infos with
    | Some d -> Array.length d.Ir.extents
    | None ->
        raise
          (Semerr
             (Diag.errorf
                ~span:(Diag.span ~file ~line:pos.pline ~col:pos.pcol ())
                ~code:"unknown-array" "use of undeclared array %s" a))
  in
  (* widen an affine row over (k iters + params + 1) to (m iters + ...) *)
  let widen_row ~from_iters ~to_iters row =
    let k = from_iters and m = to_iters in
    Array.init
      (m + np + 1)
      (fun j -> if j < k then row.(j) else if j < m then 0 else row.(j - m + k))
  in
  let stmts = ref [] in
  let next_id = ref 0 in
  let mk_access ~pos ~iters (a, subs) =
    let expected = dims_of ~pos a in
    if List.length subs <> expected then
      raise
        (Semerr
           (Diag.errorf
              ~span:(Diag.span ~file ~line:pos.pline ~col:pos.pcol ())
              ~code:"arity" "array %s used with %d subscripts, declared with %d"
              a (List.length subs) expected));
    let map =
      List.map
        (fun e ->
          affine ~iters
            ~context:(Printf.sprintf "subscript of %s" a)
            e)
        subs
    in
    { Ir.arr = a; map = Array.of_list map }
  in
  let rec expr_of ~iters e =
    match e.e with
    | S_int n -> Ir.Const (float_of_int n)
    | S_float f -> Ir.Const f
    | S_id s -> (
        if List.mem s arrays then Ir.Load (mk_access ~pos:e.epos ~iters (s, []))
        else
          match List.find_index (String.equal s) iters with
          | Some i -> Ir.Iter i
          | None ->
              raise
                (Semerr
                   (Diag.errorf
                      ~span:(Diag.span ~file ~line:e.epos.pline ~col:e.epos.pcol ())
                      ~code:"unknown-id"
                      "identifier %s in statement body is neither an array nor an iterator"
                      s)))
    | S_idx (a, subs) -> Ir.Load (mk_access ~pos:e.epos ~iters (a, subs))
    | S_neg e -> Ir.Unop (`Neg, expr_of ~iters e)
    | S_bin (op, a, b) -> Ir.Binop (op, expr_of ~iters a, expr_of ~iters b)
  in
  (* walk the loop tree collecting constraints; [constrs] are rows over
     (depth-so-far iters + params + 1).  A semantic error skips only the
     offending statement (or loop bound), so every error is reported. *)
  let rec walk items ~iters ~constrs ~prefix =
    List.iteri
      (fun idx item ->
        match item with
        | S_assign { lhs; rhs; ipos } -> (
            try
              let m = List.length iters in
              let nvars = m + np in
              let cs =
                List.map
                  (fun (row, from_iters) ->
                    Polyhedra.ge
                      (Ir.row_to_vec (widen_row ~from_iters ~to_iters:m row)))
                  constrs
              in
              let domain = Polyhedra.of_constrs nvars cs in
              let static = Array.of_list (List.rev (idx :: prefix)) in
              let lhs_acc = mk_access ~pos:ipos ~iters lhs in
              let rhs_ir = expr_of ~iters rhs in
              let id = !next_id in
              incr next_id;
              let iter_names = Array.of_list iters in
              let param_names = Array.of_list params in
              let text =
                Format.asprintf "%s%a = %a;" lhs_acc.Ir.arr
                  (fun fmt rows ->
                    Array.iter
                      (fun row ->
                        Format.fprintf fmt "[%a]"
                          (Ir.pp_affine_row (Array.append iter_names param_names))
                          row)
                      rows)
                  lhs_acc.Ir.map
                  (Ir.pp_expr iter_names param_names)
                  rhs_ir
              in
              let s =
                Ir.mk_stmt ~id
                  ~name:(Printf.sprintf "S%d" (id + 1))
                  ~iters ~nparams:np ~domain ~static ~lhs:lhs_acc ~rhs:rhs_ir
                  ~text
              in
              stmts := s :: !stmts
            with Semerr d -> sem_record d)
        | S_for { it; lb; cmp; ub; body; ipos } ->
            let it =
              if not (List.mem it iters) then it
              else begin
                sem_record
                  (Diag.errorf
                     ~span:(Diag.span ~file ~line:ipos.pline ~col:ipos.pcol ())
                     ~code:"shadow" "iterator %s shadows an outer loop" it);
                (* keep walking the body under a fresh name so its own
                   errors are still found *)
                it ^ "'"
              end
            in
            let iters' = iters @ [ it ] in
            let k = List.length iters' in
            let zero = Array.make (k - 1 + np + 1) 0 in
            let bound_row ~what e =
              try affine ~iters ~context:(Printf.sprintf "%s of %s" what it) e
              with Semerr d ->
                sem_record d;
                zero
            in
            let lb_row = bound_row ~what:"lower bound" lb in
            let ub_row = bound_row ~what:"upper bound" ub in
            let width = k + np + 1 in
            (* it - lb >= 0 *)
            let lo = Array.make width 0 in
            Array.iteri
              (fun j v ->
                let j' = if j < k - 1 then j else j + 1 in
                lo.(j') <- -v)
              lb_row;
            lo.(k - 1) <- lo.(k - 1) + 1;
            (* ub - it >= 0 (with <: ub - 1 - it >= 0) *)
            let hi = Array.make width 0 in
            Array.iteri
              (fun j v ->
                let j' = if j < k - 1 then j else j + 1 in
                hi.(j') <- v)
              ub_row;
            hi.(k - 1) <- hi.(k - 1) - 1;
            if cmp = `Lt then hi.(width - 1) <- hi.(width - 1) - 1;
            walk body ~iters:iters'
              ~constrs:(constrs @ [ (lo, k); (hi, k) ])
              ~prefix:(idx :: prefix))
      items
  in
  walk items ~iters:[] ~constrs:[] ~prefix:[];
  let diags = lex_diags @ List.rev !(ps.diags) @ List.rev !sem_diags in
  if Diag.has_errors diags then Error (Diag.by_position diags)
  else
    Ok
      ( { Ir.params; arrays = array_infos; stmts = List.rev !stmts },
        Diag.by_position diags )

let parse_program ?(name = "<input>") src =
  match parse_program_diag ~name src with
  | Ok (p, _) -> p
  | Error ds ->
      raise
        (Parse_error
           (String.concat "\n"
              (List.map (fun d -> Format.asprintf "%a" Diag.pp d) ds)))
