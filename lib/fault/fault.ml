(* See fault.mli.  The fail/pass decision hashes (seed, site, n) with MD5 —
   already a dependency via Digest — so schedules are reproducible across
   runs and independent of anything else the process hashed.  State is two
   process-global refs; forked workers inherit both the configuration and
   the per-site counters at fork time, which keeps a whole chaos run
   deterministic for a fixed task-to-worker assignment. *)

type config = {
  seed : int;
  rate : float;
  only : string list;
  fail_at : (string * int list) list;
}

let none = { seed = 0; rate = 0.0; only = []; fail_at = [] }

(* ------------------------------ environment ------------------------------ *)

let getenv name =
  match Sys.getenv_opt name with
  | Some s when String.trim s <> "" -> Some (String.trim s)
  | _ -> None

let split_commas s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")

(* "site@3,site@7,other@1" -> [(site, [3; 7]); (other, [1])] ; malformed
   entries are ignored (fault injection must never itself be a crash). *)
let parse_fail_at s =
  List.fold_left
    (fun acc entry ->
      match String.rindex_opt entry '@' with
      | None -> acc
      | Some i -> (
          let site = String.sub entry 0 i in
          let n = String.sub entry (i + 1) (String.length entry - i - 1) in
          match int_of_string_opt n with
          | Some n when n > 0 && site <> "" -> (
              match List.assoc_opt site acc with
              | Some ns ->
                  (site, ns @ [ n ]) :: List.remove_assoc site acc
              | None -> (site, [ n ]) :: acc)
          | _ -> acc))
    [] (split_commas s)
  |> List.rev

let of_env () =
  let seed = Option.bind (getenv "PLUTO_FAULT_SEED") int_of_string_opt in
  let rate = Option.bind (getenv "PLUTO_FAULT_RATE") float_of_string_opt in
  let only = Option.map split_commas (getenv "PLUTO_FAULT_ONLY") in
  let fail_at = Option.map parse_fail_at (getenv "PLUTO_FAULT_AT") in
  match (seed, rate, only, fail_at) with
  | None, None, None, None -> None
  | _ ->
      Some
        {
          seed = Option.value seed ~default:0;
          rate =
            (match rate with
            | Some r -> Float.max 0.0 (Float.min 1.0 r)
            | None -> if fail_at = None then 0.01 else 0.0);
          only = Option.value only ~default:[];
          fail_at = Option.value fail_at ~default:[];
        }

(* --------------------------------- state --------------------------------- *)

(* [None] = environment not consulted yet; [Some c] = decided. *)
let state : config option option ref = ref None
let counts : (string, int) Hashtbl.t = Hashtbl.create 16

let install c =
  Hashtbl.reset counts;
  state := Some c

let install_from_env () = install (of_env ())

let current () =
  match !state with
  | Some c -> c
  | None ->
      let c = of_env () in
      state := Some c;
      c

let enabled () = current () <> None

(* -------------------------------- firing --------------------------------- *)

let is_prefix ~affix s =
  String.length affix <= String.length s
  && String.equal affix (String.sub s 0 (String.length affix))

let allowed c site =
  c.only = [] || List.exists (fun p -> is_prefix ~affix:p site) c.only

(* First three MD5 bytes of (seed, site, n) as a uniform draw in [0,1). *)
let draw seed site n =
  let h = Digest.string (Printf.sprintf "%d\x00%s\x00%d" seed site n) in
  let v =
    (Char.code h.[0] lsl 16) lor (Char.code h.[1] lsl 8) lor Char.code h.[2]
  in
  float_of_int v /. 16777216.0

let fire site =
  match current () with
  | None -> false
  | Some c ->
      if not (allowed c site) then false
      else begin
        let n = Option.value (Hashtbl.find_opt counts site) ~default:0 + 1 in
        Hashtbl.replace counts site n;
        let hit =
          (match List.assoc_opt site c.fail_at with
          | Some ns -> List.mem n ns
          | None -> false)
          || (c.rate > 0.0 && draw c.seed site n < c.rate)
        in
        if hit then begin
          Stats.incr "fault.injected";
          Stats.incr ("fault." ^ site)
        end;
        hit
      end

let sys_error site =
  if fire site then raise (Sys_error ("injected fault: " ^ site))

let unix_error site err fn =
  if fire site then raise (Unix.Unix_error (err, fn, "injected fault: " ^ site))

(* Deterministic position inside [s], derived from the site's call count so
   repeated injections hit different bytes. *)
let position site s =
  let n = Option.value (Hashtbl.find_opt counts site) ~default:0 in
  let h = Digest.string (Printf.sprintf "%s\x00pos\x00%d" site n) in
  (Char.code h.[0] lsl 16) lor (Char.code h.[1] lsl 8) lor Char.code h.[2]
  |> fun v -> v mod String.length s

let mangle site s =
  if String.length s = 0 || not (fire site) then s
  else begin
    let i = position site s in
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
    Bytes.to_string b
  end

let truncate site s =
  if String.length s = 0 || not (fire site) then s
  else String.sub s 0 (position site s)

let describe c =
  Printf.sprintf "seed=%d rate=%g only=[%s] fail_at=[%s]" c.seed c.rate
    (String.concat "," c.only)
    (String.concat ","
       (List.concat_map
          (fun (site, ns) ->
            List.map (fun n -> Printf.sprintf "%s@%d" site n) ns)
          c.fail_at))
