(** Deterministic seeded fault injection for the I/O infrastructure.

    The translation-validation work (DESIGN.md §8) showed that the scheduler
    is only trustworthy under adversarial differential testing; this module
    applies the same discipline to the parts of the system that touch the
    operating system.  {!Store}, {!Pool} and {!Runner} thread named
    *injection points* through every syscall boundary — opening and writing
    cache entries, fsync, rename, pipe reads, forked workers — and each
    point asks this module whether the present call should fail.  The
    decision is a pure function of [(seed, site, per-site call index)], so a
    fault schedule is reproducible: the same seed injects the same faults at
    the same points.

    Faults surface as the *real* failure would: [Sys_error],
    [Unix.Unix_error] ([ENOSPC], [EINTR], ...), corrupted or truncated
    bytes, or a worker process SIGKILLing itself.  The instrumented layers
    must therefore survive injection through exactly the code paths that
    handle genuine failures — there is no fault-injection-only handling
    anywhere.

    Configuration comes from {!install} (in-process, used by the chaos
    suite; forked children inherit it) or from the environment on first
    use:

    - [PLUTO_FAULT_SEED] — integer seed; setting it enables injection;
    - [PLUTO_FAULT_RATE] — per-call failure probability (default 0.01 when
      a seed is set, 0 otherwise);
    - [PLUTO_FAULT_ONLY] — comma-separated site-name prefixes to restrict
      injection to (e.g. ["store.write,pool."]);
    - [PLUTO_FAULT_AT] — comma-separated [site@N] entries: fail exactly the
      Nth call of that site (works with rate 0, for pinpoint schedules).

    Counters: ["fault.injected"] (total) and ["fault.<site>"] per site, so
    [--stats] shows exactly what a chaos run injected, aggregated across
    forked workers like every other counter. *)

type config = {
  seed : int;
  rate : float;  (** per-call injection probability in [0,1] *)
  only : string list;
      (** site-name prefixes injection is restricted to; [[]] = all sites *)
  fail_at : (string * int list) list;
      (** [(site, ns)]: additionally fail the [n]th call of [site] (1-based)
          for every [n] in [ns], regardless of [rate] *)
}

(** A configuration that never injects (rate 0, no schedules). *)
val none : config

(** Parse the [PLUTO_FAULT_*] environment (see above); [None] when no knob
    is set (empty values count as unset). *)
val of_env : unit -> config option

(** [install (Some c)] activates [c] in this process (and, by fork
    inheritance, in workers spawned afterwards), replacing any environment
    configuration; [install None] disables injection.  Per-site call
    counters restart at zero, so schedules are comparable across installs. *)
val install : config option -> unit

(** Re-read the [PLUTO_FAULT_*] environment now (tests use this after
    [Unix.putenv]). *)
val install_from_env : unit -> unit

(** The active configuration, reading the environment on first use. *)
val current : unit -> config option

val enabled : unit -> bool

(** [fire site] — count one call of [site] and decide whether it should
    fail.  The caller applies the site-appropriate failure itself (raise,
    corrupt, kill, ...); the helpers below cover the common shapes. *)
val fire : string -> bool

(** [sys_error site] — raise [Sys_error] if [fire site]. *)
val sys_error : string -> unit

(** [unix_error site err fn] — raise [Unix.Unix_error (err, fn, _)] if
    [fire site]. *)
val unix_error : string -> Unix.error -> string -> unit

(** [mangle site s] — [s] with one deterministically chosen byte flipped if
    [fire site] (and [s] is non-empty), else [s] unchanged.  Models bit rot
    and torn reads. *)
val mangle : string -> string -> string

(** [truncate site s] — a deterministically chosen strict prefix of [s] if
    [fire site] (and [s] is non-empty), else [s].  Models partial writes
    and truncated pipe payloads. *)
val truncate : string -> string -> string

(** One-line rendering of a configuration, for failure dumps and logs. *)
val describe : config -> string
