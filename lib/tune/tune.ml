(* Model-guided empirical autotuner.  See tune.mli for the architecture; the
   moving parts below are, in order: the candidate space, the footprint
   pruner, the on-disk evaluation cache, single-candidate evaluation under a
   wall-clock budget, the fork worker pool, and the search driver. *)

(* ---------------------------- candidate space ---------------------------- *)

type candidate = {
  c_tile : bool;
  c_sizes : int array option;
  c_fuse_rar : bool;
  c_unroll : int;
}

let default_candidate =
  { c_tile = true; c_sizes = None; c_fuse_rar = true; c_unroll = 1 }

let t64_candidate = { default_candidate with c_sizes = Some [| 64 |] }

let sizes_to_string = function
  | None -> "model"
  | Some sizes ->
      String.concat "x" (Array.to_list (Array.map string_of_int sizes))

let candidate_to_string c =
  if not c.c_tile then
    Printf.sprintf "untiled rar=%s unroll=%d"
      (if c.c_fuse_rar then "on" else "off")
      c.c_unroll
  else
    Printf.sprintf "tile=%s rar=%s unroll=%d" (sizes_to_string c.c_sizes)
      (if c.c_fuse_rar then "on" else "off")
      c.c_unroll

let pp_candidate fmt c = Format.pp_print_string fmt (candidate_to_string c)

let candidate_options (base : Driver.options) c =
  {
    base with
    Driver.tile = c.c_tile;
    tile_size = None;
    tile_sizes = c.c_sizes;
    unroll_jam = c.c_unroll;
    auto = { base.Driver.auto with Pluto.Auto.input_deps = c.c_fuse_rar };
  }

(* Powers of two as the paper suggests, plus rectangular mixes (tall/wide
   tiles trade reuse along one hyperplane against the other — profitable on
   stencils where the time and space tile extents want to differ). *)
let uniform_sizes = [ 4; 8; 16; 32; 64 ]

let rect_sizes =
  [
    [| 8; 32 |]; [| 32; 8 |]; [| 16; 64 |]; [| 64; 16 |];
    [| 8; 128 |]; [| 128; 8 |];
  ]

let unroll_factors = [ 1; 2; 4; 8 ]

let all_candidates () =
  let tiles =
    ((true, None) :: List.map (fun t -> (true, Some [| t |])) uniform_sizes)
    @ List.map (fun s -> (true, Some s)) rect_sizes
    @ [ (false, None) ]
  in
  List.concat_map
    (fun (c_tile, c_sizes) ->
      List.concat_map
        (fun c_fuse_rar ->
          List.map
            (fun c_unroll -> { c_tile; c_sizes; c_fuse_rar; c_unroll })
            unroll_factors)
        [ true; false ])
    tiles

(* --------------------------- footprint pruning --------------------------- *)

let footprint_bytes ~narrays ~band_width sizes =
  if Array.length sizes = 0 || band_width <= 0 then 0
  else begin
    let elems = ref 1 in
    for j = 0 to band_width - 1 do
      elems := !elems * sizes.(min j (Array.length sizes - 1))
    done;
    8 * narrays * !elems
  end

let prunes ~(machine : Machine.machine_config) ~narrays ~band_width c =
  match (c.c_tile, c.c_sizes) with
  | false, _ | _, None -> false (* the rough model clamps itself to cache *)
  | true, Some sizes ->
      band_width > 0
      && footprint_bytes ~narrays ~band_width sizes
         > machine.Machine.l2.Cache.size_bytes

(* Anchors (the default and T=64 configurations) are exempt from pruning:
   their cost is the report's baseline even when the model says they thrash. *)
let enumerate ~machine ~narrays ~band_width =
  let anchors = [ default_candidate; t64_candidate ] in
  let rest =
    List.filter (fun c -> not (List.mem c anchors)) (all_candidates ())
  in
  let survivors, npruned =
    List.fold_left
      (fun (keep, n) c ->
        if prunes ~machine ~narrays ~band_width c then (keep, n + 1)
        else (c :: keep, n))
      ([], 0) rest
  in
  (anchors @ List.rev survivors, npruned)

(* --------------------------- outcomes / report --------------------------- *)

type outcome = {
  o_index : int;
  o_cand : candidate;
  o_cycles : float;
  o_gflops : float;
  o_degraded : bool;
  o_from_cache : bool;
  o_failed : string option;
}

type report = {
  r_name : string;
  r_digest : string;
  r_params : (string * int) list;
  r_seed : int;
  r_jobs : int;
  r_generated : int;
  r_pruned : int;
  r_evaluated : int;
  r_cache_hits : int;
  r_default_cycles : float;
  r_t64_cycles : float;
  r_best : outcome option;
  r_outcomes : outcome list;
  r_elapsed_s : float;
}

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* JSON has no Infinity literal; failed candidates carry "failed" anyway. *)
let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let outcome_to_json o =
  Printf.sprintf
    "{\"index\": %d, \"candidate\": %s, \"cycles\": %s, \"gflops\": %s, \
     \"degraded\": %b, \"from_cache\": %b, \"failed\": %s}"
    o.o_index
    (json_string (candidate_to_string o.o_cand))
    (json_float o.o_cycles) (json_float o.o_gflops) o.o_degraded
    o.o_from_cache
    (match o.o_failed with None -> "null" | Some m -> json_string m)

let report_to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"program\": %s,\n  \"digest\": %s,\n"
       (json_string r.r_name) (json_string r.r_digest));
  Buffer.add_string b "  \"params\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "%s: %d" (json_string k) v))
    r.r_params;
  Buffer.add_string b "},\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"seed\": %d,\n  \"jobs\": %d,\n  \"generated\": %d,\n  \
        \"pruned\": %d,\n  \"evaluated\": %d,\n  \"cache_hits\": %d,\n"
       r.r_seed r.r_jobs r.r_generated r.r_pruned r.r_evaluated r.r_cache_hits);
  Buffer.add_string b
    (Printf.sprintf
       "  \"default_cycles\": %s,\n  \"t64_cycles\": %s,\n"
       (json_float r.r_default_cycles)
       (json_float r.r_t64_cycles));
  Buffer.add_string b
    (Printf.sprintf "  \"best\": %s,\n"
       (match r.r_best with None -> "null" | Some o -> outcome_to_json o));
  Buffer.add_string b
    (Printf.sprintf "  \"elapsed_s\": %.3f,\n" r.r_elapsed_s);
  Buffer.add_string b "  \"outcomes\": [\n";
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b ("    " ^ outcome_to_json o))
    r.r_outcomes;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let pp_report_summary fmt r =
  Format.fprintf fmt
    "@[<v>tuned %s: %d candidates (%d pruned), %d evaluated, %d from cache@,"
    r.r_name r.r_generated r.r_pruned r.r_evaluated r.r_cache_hits;
  (match r.r_best with
  | None -> Format.fprintf fmt "no verified candidate found@,"
  | Some o ->
      Format.fprintf fmt "best: %a — %.3e cycles (%.3f GFLOPS)%s@,"
        pp_candidate o.o_cand o.o_cycles o.o_gflops
        (if o.o_degraded then " [degraded rung]" else "");
      if Float.is_finite r.r_default_cycles && r.r_default_cycles > 0.0 then
        Format.fprintf fmt "vs default (model tiles): %.3e cycles — %.2fx@,"
          r.r_default_cycles
          (r.r_default_cycles /. o.o_cycles);
      if Float.is_finite r.r_t64_cycles && r.r_t64_cycles > 0.0 then
        Format.fprintf fmt "vs uniform T=64: %.3e cycles — %.2fx@,"
          r.r_t64_cycles
          (r.r_t64_cycles /. o.o_cycles));
  Format.fprintf fmt "wall time: %.2fs@]" r.r_elapsed_s

(* ------------------------- persistent eval cache ------------------------- *)

(* One file per (program, machine, params, options, candidate) key; values
   are Int64 float bits so a reread is bit-exact.  Any parse problem is a
   cache miss — never an error. *)

let machine_repr (m : Machine.machine_config) =
  Printf.sprintf
    "cores=%d l1=%d/%d/%d l2=%d/%d/%d grp=%d flop=%g hit=%g l1m=%g l2m=%g \
     line=%g loop=%g guard=%g barrier=%g vec=%d ghz=%g"
    m.Machine.ncores m.Machine.l1.Cache.size_bytes m.Machine.l1.Cache.line_bytes
    m.Machine.l1.Cache.assoc m.Machine.l2.Cache.size_bytes
    m.Machine.l2.Cache.line_bytes m.Machine.l2.Cache.assoc m.Machine.l2_group
    m.Machine.flop_cycles m.Machine.l1_hit_cycles m.Machine.l1_miss_cycles
    m.Machine.l2_miss_cycles m.Machine.mem_line_cycles
    m.Machine.loop_overhead_cycles m.Machine.guard_cycles
    m.Machine.barrier_cycles m.Machine.vector_width m.Machine.ghz

let options_repr (o : Driver.options) =
  let a = o.Driver.auto in
  Printf.sprintf
    "par=%b wf=%d intra=%b mbt=%d ctx=%d cb=%d sb=%d ub=%d wb=%d actx=%d \
     cost=%b nodes=%d ilp_t=%s search_t=%s"
    o.Driver.parallelize o.Driver.wavefront o.Driver.intra_reorder
    o.Driver.min_band_tile o.Driver.context_min a.Pluto.Auto.coeff_bound
    a.Pluto.Auto.shift_bound a.Pluto.Auto.u_bound a.Pluto.Auto.w_bound
    a.Pluto.Auto.ctx a.Pluto.Auto.use_cost_bound
    a.Pluto.Auto.budget.Milp.max_nodes
    (match a.Pluto.Auto.budget.Milp.time_limit_s with
    | None -> "-"
    | Some t -> Printf.sprintf "%g" t)
    (match a.Pluto.Auto.search_time_limit_s with
    | None -> "-"
    | Some t -> Printf.sprintf "%g" t)

let cache_key ~program_repr ~machine ~params ~options cand =
  let params_repr =
    String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) params)
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            "pluto-tune-cache-v1";
            program_repr;
            machine_repr machine;
            params_repr;
            options_repr options;
            candidate_to_string cand;
          ]))

(* cached value: (cycles, gflops, degraded, failed) *)
type payload = float * float * bool * string option

let cache_path dir key = Filename.concat dir (key ^ ".tune")

let cache_read dir key : payload option =
  let path = cache_path dir key in
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            if input_line ic <> "pluto-tune-cache v1" then None
            else begin
              let cycles =
                Int64.float_of_bits (Int64.of_string (input_line ic))
              in
              let gflops =
                Int64.float_of_bits (Int64.of_string (input_line ic))
              in
              let degraded = bool_of_string (input_line ic) in
              let failed =
                match input_line ic with
                | "-" -> None
                | s -> Some (Scanf.unescaped s)
              in
              Some (cycles, gflops, degraded, failed)
            end
          with
          | End_of_file | Failure _ | Invalid_argument _
          | Scanf.Scan_failure _ ->
              None)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

let cache_write dir key ((cycles, gflops, degraded, failed) : payload) =
  try
    mkdir_p dir;
    let path = cache_path dir key in
    let tmp =
      Printf.sprintf "%s.%d.tmp" path (Unix.getpid ())
    in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Printf.fprintf oc "pluto-tune-cache v1\n%Ld\n%Ld\n%b\n%s\n"
          (Int64.bits_of_float cycles)
          (Int64.bits_of_float gflops)
          degraded
          (match failed with None -> "-" | Some m -> String.escaped m));
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> () (* caching is best-effort *)

(* ------------------------ candidate evaluation --------------------------- *)

(* Run [f] under a SIGALRM wall-clock budget, surfacing expiry as the same
   [Diag.Budget_exceeded] the solver budgets use, so a runaway candidate
   degrades exactly like a runaway ILP. *)
let with_wall_budget ~seconds f =
  if seconds <= 0.0 then f ()
  else begin
    let old =
      Sys.signal Sys.sigalrm
        (Sys.Signal_handle
           (fun _ ->
             raise
               (Diag.Budget_exceeded
                  "Tune: per-candidate wall-clock budget exceeded")))
    in
    Fun.protect
      ~finally:(fun () ->
        ignore (Unix.alarm 0);
        Sys.set_signal Sys.sigalrm old)
      (fun () ->
        ignore (Unix.alarm (max 1 (int_of_float (Float.ceil seconds))));
        f ())
  end

let diag_summary ds =
  String.concat "; "
    (List.map (fun (d : Diag.t) -> d.Diag.code ^ ": " ^ d.Diag.message) ds)

let evaluate ~options ~machine ~params_vec ~candidate_time_s program cand :
    payload =
  let opts = candidate_options options cand in
  (* per-candidate budget both ways: the whole-search CPU deadline inside the
     compiler (degrades via the ladder) and a hard wall-clock alarm around
     everything (compile + simulate) *)
  let opts =
    {
      opts with
      Driver.auto =
        {
          opts.Driver.auto with
          Pluto.Auto.search_time_limit_s =
            (match opts.Driver.auto.Pluto.Auto.search_time_limit_s with
            | Some t when candidate_time_s <= 0.0 || t < candidate_time_s ->
                Some t
            | _ when candidate_time_s > 0.0 -> Some candidate_time_s
            | other -> other);
        };
    }
  in
  match
    with_wall_budget ~seconds:candidate_time_s (fun () ->
        match Driver.compile_robust ~options:opts ~verify:true program with
        | Error ds -> Error (diag_summary ds)
        | Ok (r, warns) ->
            let sim = Machine.simulate machine r.Driver.code ~params:params_vec in
            Ok (sim.Machine.cycles, sim.Machine.gflops, Driver.degraded warns))
  with
  | Ok (cycles, gflops, degraded) -> (cycles, gflops, degraded, None)
  | Error msg -> (infinity, 0.0, false, Some msg)
  | exception Diag.Budget_exceeded msg ->
      (infinity, 0.0, false, Some ("budget: " ^ msg))
  | exception ((Out_of_memory | Sys.Break) as e) -> raise e
  | exception e -> (infinity, 0.0, false, Some (Printexc.to_string e))

(* ----------------------------- worker pool ------------------------------- *)

(* Candidate evaluations fan out over the shared {!Pool}.  A worker crash or
   truncated payload comes back as a structured [Diag.t] (after one retry on a
   fresh worker) and is folded into the candidate's failure slot, so the
   search keeps its historical "a bad candidate never kills the search"
   contract.  Timeouts stay inside [evaluate] ([with_wall_budget]), which
   distinguishes a slow candidate from a crashed worker. *)
let run_pool ~jobs (tasks : (int * candidate) list) (eval : candidate -> payload)
    : (int * payload) list =
  let outcomes = Pool.map ~jobs ~f:(fun (_, c) -> eval c) tasks in
  List.map2
    (fun (i, _) (o : payload Pool.outcome) ->
      match o.Pool.value with
      | Ok p -> (i, p)
      | Error d ->
          (i, (infinity, 0.0, false, Some ("worker: " ^ d.Diag.message))))
    tasks outcomes

(* ------------------------------- search ---------------------------------- *)

let default_param_value = 64

(* Deterministic Fisher-Yates from the given state. *)
let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let search ?(options = Driver.default_options)
    ?(machine = Machine.default_machine) ?(jobs = 1) ?(budget = 24)
    ?(candidate_time_s = 20.0) ?cache_dir ?(seed = Putil.Seed.default)
    ?(params = []) (program : Ir.program) =
  let t0 = Unix.gettimeofday () in
  let rng = Putil.Seed.state seed in
  let assoc =
    List.map
      (fun p ->
        ( p,
          match List.assoc_opt p params with
          | Some v -> v
          | None -> default_param_value ))
      program.Ir.params
  in
  let params_vec = Array.of_list (List.map snd assoc) in
  let program_repr = Putil.string_of_format Ir.pp_program program in
  let digest = Digest.to_hex (Digest.string program_repr) in
  let name =
    match program.Ir.stmts with
    | { Ir.name = n; _ } :: _ -> Printf.sprintf "%s… (%s)" n (String.sub digest 0 8)
    | [] -> String.sub digest 0 8
  in
  (* shape the space with the default transform's band structure (best
     effort: an untransformable program still tunes over the ladder) *)
  let narrays = max 1 (List.length program.Ir.arrays) in
  let band_width =
    match
      let deps = Deps.compute program in
      Pluto.Tiling.bands_of
        (Pluto.Auto.transform ~config:options.Driver.auto program deps)
    with
    | bands ->
        List.fold_left (fun a (b : Pluto.Tiling.band) -> max a b.Pluto.Tiling.b_len) 0 bands
    | exception ((Out_of_memory | Sys.Break) as e) -> raise e
    | exception _ -> 2
  in
  let space, npruned = enumerate ~machine ~narrays ~band_width in
  Stats.add "tune.pruned" npruned;
  let generated = List.length space + npruned in
  (* budget subsampling: anchors always survive; the rest of the space is
     shuffled by the pinned seed and truncated *)
  let budget = max 1 budget in
  let chosen =
    match space with
    | d :: t :: rest when budget >= 2 ->
        d :: t :: Putil.take (budget - 2) (shuffle rng rest)
    | l -> Putil.take budget l
  in
  let indexed = List.mapi (fun i c -> (i, c)) chosen in
  (* cache probe (sequential, cheap) *)
  let key_of =
    let tbl = Hashtbl.create 32 in
    fun c ->
      match Hashtbl.find_opt tbl c with
      | Some k -> k
      | None ->
          let k =
            cache_key ~program_repr ~machine ~params:assoc ~options c
          in
          Hashtbl.replace tbl c k;
          k
  in
  let cached, to_eval =
    List.partition_map
      (fun (i, c) ->
        match cache_dir with
        | None -> Right (i, c)
        | Some dir -> (
            match cache_read dir (key_of c) with
            | Some p -> Left (i, c, p)
            | None -> Right (i, c)))
      indexed
  in
  Stats.add "tune.cache_hits" (List.length cached);
  Stats.add "tune.evaluated" (List.length to_eval);
  let eval c =
    evaluate ~options ~machine ~params_vec ~candidate_time_s program c
  in
  let fresh = run_pool ~jobs to_eval eval in
  (* persist fresh results *)
  (match cache_dir with
  | None -> ()
  | Some dir ->
      let cand_of = Hashtbl.create 32 in
      List.iter (fun (i, c) -> Hashtbl.replace cand_of i c) to_eval;
      List.iter
        (fun (i, p) ->
          match Hashtbl.find_opt cand_of i with
          | Some c -> cache_write dir (key_of c) p
          | None -> ())
        fresh);
  let outcomes =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (i, c, (cy, gf, dg, fl)) ->
        Hashtbl.replace tbl i
          {
            o_index = i;
            o_cand = c;
            o_cycles = cy;
            o_gflops = gf;
            o_degraded = dg;
            o_from_cache = true;
            o_failed = fl;
          })
      cached;
    List.iter
      (fun (i, (cy, gf, dg, fl)) ->
        let c = List.assoc i indexed in
        Hashtbl.replace tbl i
          {
            o_index = i;
            o_cand = c;
            o_cycles = cy;
            o_gflops = gf;
            o_degraded = dg;
            o_from_cache = false;
            o_failed = fl;
          })
      fresh;
    List.filter_map (fun (i, _) -> Hashtbl.find_opt tbl i) indexed
  in
  let cycles_of_index i =
    match List.find_opt (fun o -> o.o_index = i) outcomes with
    | Some { o_failed = None; o_cycles; _ } -> o_cycles
    | _ -> infinity
  in
  let best =
    List.fold_left
      (fun acc o ->
        match (o.o_failed, acc) with
        | Some _, _ -> acc
        | None, None -> Some o
        | None, Some b -> if o.o_cycles < b.o_cycles then Some o else acc)
      None outcomes
  in
  let report =
    {
      r_name = name;
      r_digest = digest;
      r_params = assoc;
      r_seed = seed;
      r_jobs = jobs;
      r_generated = generated;
      r_pruned = npruned;
      r_evaluated = List.length to_eval;
      r_cache_hits = List.length cached;
      r_default_cycles = cycles_of_index 0;
      r_t64_cycles = cycles_of_index 1;
      r_best = best;
      r_outcomes = outcomes;
      r_elapsed_s = Unix.gettimeofday () -. t0;
    }
  in
  (* The winning artifact is recompiled in this process (verified again), so
     nothing structured ever crosses the fork boundary. *)
  let best_result =
    match best with
    | None -> None
    | Some o -> (
        match
          Driver.compile_robust
            ~options:(candidate_options options o.o_cand)
            ~verify:true program
        with
        | Ok (r, _) -> Some r
        | Error _ -> None)
  in
  (report, best_result)

module For_tests = struct
  let cache_key ~program_repr ~machine ~params ~options cand =
    cache_key ~program_repr ~machine ~params ~options cand

  let enumerate ~machine ~narrays ~band_width =
    enumerate ~machine ~narrays ~band_width
end
