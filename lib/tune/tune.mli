(** Model-guided empirical autotuner for tile sizes and transform options.

    The paper fixes tile sizes by a rough cache model and names empirical
    tile-size search as future work (§6.3).  This subsystem performs that
    search safely and reproducibly, using the two ingredients the original
    tool lacked: a deterministic cost oracle (the {!Machine} performance
    simulator) and a verified compile pipeline
    ({!Driver.compile_robust}[ ~verify:true] — every candidate's output is
    re-proved legal by the independent translation validator before its cost
    is trusted).

    A search:

    + enumerates a structured candidate space — per-band tile sizes (powers
      of two and rectangular mixes), tile/no-tile, fusion choice (RAR
      dependences in the cost function, which decides e.g. the MVT fusion of
      §7), and an unroll-jam factor for the innermost parallel loop;
    + prunes candidates whose tile data footprint provably exceeds the
      modeled cache;
    + draws the evaluation order and any budget-driven subsampling from one
      pinned {!Random.State.t} (the [PLUTO_FUZZ_SEED] protocol), so a run is
      reproduced exactly by its seed;
    + evaluates candidates — compile, verify, simulate at the given
      parameter values — on a [Unix.fork] worker pool ([~jobs]), each under
      a wall-clock budget that feeds the existing {!Diag.Budget_exceeded}
      degradation ladder;
    + memoizes evaluations in a persistent on-disk cache keyed by
      (program digest, candidate, machine config, parameters), so repeated
      [plutocc --tune] invocations and the bench harness amortize work: a
      warm-cache rerun performs zero evaluations.

    The result is the best *verified* variant, plus a full report. *)

(** One point of the configuration space. *)
type candidate = {
  c_tile : bool;  (** tile permutable bands at all *)
  c_sizes : int array option;
      (** per-band-level tile sizes, outermost first (the last entry repeats
          for deeper bands); [None] = the paper's rough cache model *)
  c_fuse_rar : bool;  (** include read-after-read deps in the cost function *)
  c_unroll : int;  (** unroll-jam factor for the innermost parallel loop *)
}

(** The paper-default configuration (model tile sizes, RAR on, no unroll):
    always candidate 0 of a search, so the report's baseline cost and the
    tuned cost come from the same oracle. *)
val default_candidate : candidate

(** The [T = 64] uniform configuration EXPERIMENTS.md hardcodes — always
    candidate 1, so "tuned vs. T=64" is directly answerable. *)
val t64_candidate : candidate

val pp_candidate : Format.formatter -> candidate -> unit
val candidate_to_string : candidate -> string

(** [candidate_options base c] — driver options for evaluating [c], starting
    from [base] (which supplies parallelization, wavefront depth, solver
    budgets, ...). *)
val candidate_options : Driver.options -> candidate -> Driver.options

(** {1 Footprint pruning} *)

(** [footprint_bytes ~narrays ~band_width sizes] — upper estimate of one
    tile's data footprint: every array touched once per point of a
    [band_width]-deep tile of the given sizes, 8 bytes per element. *)
val footprint_bytes : narrays:int -> band_width:int -> int array -> int

(** [prunes ~machine ~narrays ~band_width c] — true when [c]'s tile
    footprint provably exceeds the modeled (shared L2) cache, so evaluating
    it would be wasted work. *)
val prunes :
  machine:Machine.machine_config -> narrays:int -> band_width:int ->
  candidate -> bool

(** {1 Outcomes and reports} *)

type outcome = {
  o_index : int;  (** position in the search's candidate list *)
  o_cand : candidate;
  o_cycles : float;  (** simulated cycles; [infinity] when failed *)
  o_gflops : float;
  o_degraded : bool;  (** a fallback rung produced the code *)
  o_from_cache : bool;
  o_failed : string option;  (** why no verified code/cost exists *)
}

type report = {
  r_name : string;  (** program name (or digest prefix) *)
  r_digest : string;  (** MD5 of the printed program *)
  r_params : (string * int) list;  (** evaluation parameter binding *)
  r_seed : int;
  r_jobs : int;
  r_generated : int;  (** candidates enumerated before pruning *)
  r_pruned : int;  (** dropped by the footprint model *)
  r_evaluated : int;  (** actually compiled+simulated this run *)
  r_cache_hits : int;
  r_default_cycles : float;  (** cost of {!default_candidate} *)
  r_t64_cycles : float;  (** cost of {!t64_candidate} *)
  r_best : outcome option;  (** cheapest verified candidate *)
  r_outcomes : outcome list;  (** in candidate order — deterministic *)
  r_elapsed_s : float;  (** wall clock; not part of the deterministic state *)
}

val report_to_json : report -> string
val pp_report_summary : Format.formatter -> report -> unit

(** {1 Search} *)

(** [search program] explores the space and returns the report plus the best
    verified compile result (recompiled in the calling process, so the
    artifact never crosses the fork boundary).

    @param options base driver options (default {!Driver.default_options})
    @param machine the cost oracle's machine (default
      {!Machine.default_machine})
    @param jobs fork-pool width; [<= 1] evaluates in-process (default 1)
    @param budget max candidates to evaluate after pruning (default 24);
      the default and T=64 anchors are always kept
    @param candidate_time_s per-candidate wall-clock budget in seconds
      (default 20.); exhaustion degrades/fails that candidate only
    @param cache_dir persistent evaluation cache directory (created on
      demand); omit to disable caching
    @param seed search-order seed (default {!Putil.Seed.default}; the CLI
      passes the [PLUTO_FUZZ_SEED] resolution)
    @param params parameter values for the oracle; parameters of the program
      not bound here default to 64 *)
val search :
  ?options:Driver.options ->
  ?machine:Machine.machine_config ->
  ?jobs:int ->
  ?budget:int ->
  ?candidate_time_s:float ->
  ?cache_dir:string ->
  ?seed:int ->
  ?params:(string * int) list ->
  Ir.program ->
  report * Driver.result option

(** Internal entry points exposed for the test suite. *)
module For_tests : sig
  val cache_key :
    program_repr:string -> machine:Machine.machine_config ->
    params:(string * int) list -> options:Driver.options -> candidate ->
    string

  val enumerate :
    machine:Machine.machine_config -> narrays:int -> band_width:int ->
    candidate list * int
  (** (surviving candidates, pruned count) for the full space. *)
end
