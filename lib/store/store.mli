(** Sharded, self-healing persistent cache store for the solver substrate.

    The in-memory memo tables of {!Polyhedra} ([is_empty_cached]) and
    {!Milp} ([feasible_cached], [lp]) die with the process; this store lets
    them survive across processes — repeated [plutocc] runs, the batch
    driver's forked workers, CI reruns — so a warm rerun answers repeated
    integer-emptiness/feasibility/LP probes from disk instead of re-solving.

    {2 Layout}

    Entries live in 256 hash-prefix shard subdirectories
    ([DIR/ab/kind-<digest>.store], [ab] = first two hex digits of the
    digest), so a hot store never piles hundreds of thousands of files into
    one directory.  An entry file is [MD5(payload) ^ payload] where the
    payload marshals [(version-stamp, full key, value)]; the checksum, the
    stamp and the un-hashed key are all verified on read, so bit rot, a
    torn read, a version skew or a digest collision is detected, counted as
    an eviction, deleted and reported as a miss — corruption can never
    produce a wrong answer, only wasted work.

    {2 Crash safety}

    Publishing an entry is write-to-private-tmp → [fsync] → [rename]: a
    reader can never observe a partial entry.  Every failure path deletes
    the tmp file (counted in ["store.write_failures"]); a writer that dies
    mid-publish leaves an orphaned [.tmp] which the startup/on-demand
    garbage collector ({!gc}, run automatically by {!set_dir}) removes once
    it is old enough to be provably dead.  Concurrent writers race
    benignly — last rename wins, and every racer wrote the same value
    because entries are pure functions of their key.

    {2 Eviction}

    With a byte budget ({!set_budget}; [plutocc --cache-size]) the store
    evicts least-recently-used entries whenever its footprint exceeds the
    budget.  Recency is tracked by an atime-style sidecar touch file per
    entry (bumped on every hit — entry files themselves are immutable), and
    eviction runs under an on-disk lock with stale-lock takeover, so any
    number of concurrent processes can share one budgeted cache directory.

    Counters (see {!Stats}): ["store.hits"], ["store.misses"],
    ["store.writes"], ["store.write_failures"], ["store.evictions"]
    (corrupt/stale entries dropped on read), ["store.lru_evictions"]
    (budget), ["store.gc_orphans"] (tmp/touch/legacy files collected).

    Fault injection ({!Fault}) is threaded through every syscall boundary
    in this module (sites ["store.read.*"], ["store.write.*"]); the chaos
    suite drives compilations through hundreds of seeded fault schedules
    and asserts that none of them can change an answer.

    The store is process-global and disabled by default; [plutocc
    --cache-dir DIR] enables it.  Callers must use distinct [kind] strings
    per value type: the type of the marshaled value is trusted only because
    (version, kind, key) triples are written by exactly one call site. *)

(** Substrate version stamp baked into every entry.  Bump it whenever the
    semantics of any cached value changes (canonical form, solver behaviour,
    value representation): old entries then read as misses. *)
val version : string

(** [set_dir (Some dir)] enables the store (the directory is created on
    first write) and runs a startup {!gc}; [set_dir None] disables it. *)
val set_dir : string option -> unit

val dir : unit -> string option
val enabled : unit -> bool

(** [set_budget (Some bytes)] caps the store's on-disk footprint: writes
    trigger LRU eviction down to the budget (checked every
    [~budget/8] written bytes, and exactly by {!evict_to_budget}).
    [set_budget None] disables eviction. *)
val set_budget : int option -> unit

val budget : unit -> int option

(** [read ~kind ~key] — the stored value, or [None] on any miss (disabled
    store, absent entry, checksum/version/key mismatch, I/O error).  A hit
    refreshes the entry's LRU touch file.  The value type is whatever
    [write] stored under this [kind]; each [kind] must be used at a single
    monomorphic type. *)
val read : kind:string -> key:string -> 'a option

(** [write ~kind ~key v] — persist [v] crash-safely (best-effort: an I/O
    failure deletes the tmp file, counts ["store.write_failures"] and
    degrades to a pure in-memory run). *)
val write : kind:string -> key:string -> 'a -> unit

(** Like {!read}/{!write}, but with a per-kind sub-version appended to the
    entry stamp (["...:kind@version"]): entries written under a different
    sub-version (or none) verify as stamp mismatches — evicted and reported
    as misses — so a call site can re-key all of its entries (e.g. the fast
    scheduler bumping its matcher version, [Pluto.Fastmatch.version])
    without a global store flag day. *)
val read_versioned : version:string -> kind:string -> key:string -> 'a option

val write_versioned :
  version:string -> kind:string -> key:string -> 'a -> unit

(** [gc ?max_tmp_age_s ()] — remove orphaned [.tmp] files older than
    [max_tmp_age_s] seconds (default 600: a live writer's tmp is seconds
    old, a crashed writer's is forever), touch files whose entry is gone,
    and legacy pre-shard entries at the store root.  Safe to run
    concurrently with readers and writers. *)
val gc : ?max_tmp_age_s:float -> unit -> unit

(** Run LRU eviction now, bringing the footprint under the budget (no-op
    without a directory or budget).  Batch runs call this once at the end
    so a manifest is never published over budget. *)
val evict_to_budget : unit -> unit

(** Total size in bytes of all entry files currently in the store (0 when
    disabled).  Touch files and tmps are not counted — the budget governs
    payload bytes. *)
val usage_bytes : unit -> int
