(** Versioned persistent cache store for the solver substrate.

    The in-memory memo tables of {!Polyhedra} ([is_empty_cached]) and
    {!Milp} ([feasible_cached], [lp]) die with the process; this store lets
    them survive across processes — repeated [plutocc] runs, the batch
    driver's forked workers, CI reruns — so a warm rerun answers repeated
    integer-emptiness/feasibility/LP probes from disk instead of re-solving.

    Layout: one file per entry under the configured directory, written with
    the same Marshal + atomic-rename discipline as the autotuner's eval
    cache (partial writes are invisible; concurrent writers race benignly —
    last rename wins, and every racer wrote the same value because entries
    are pure functions of their key).  Every entry embeds a substrate
    version stamp and its full (un-hashed) key; a version mismatch, digest
    collision, or corrupt/truncated file is detected on read, counted as an
    eviction, deleted, and reported as a miss — corruption can never produce
    a wrong answer, only wasted work.

    Counters (see {!Stats}): ["store.hits"], ["store.misses"],
    ["store.evictions"], ["store.writes"].

    The store is process-global and disabled by default; [plutocc
    --cache-dir DIR] enables it.  Callers must use distinct [kind] strings
    per value type: the type of the marshaled value is trusted only because
    (version, kind, key) triples are written by exactly one call site. *)

(** Substrate version stamp baked into every entry.  Bump it whenever the
    semantics of any cached value changes (canonical form, solver behaviour,
    value representation): old entries then read as misses. *)
val version : string

(** [set_dir (Some dir)] enables the store (the directory is created on
    first write); [set_dir None] disables it. *)
val set_dir : string option -> unit

val dir : unit -> string option
val enabled : unit -> bool

(** [read ~kind ~key] — the stored value, or [None] on any miss (disabled
    store, absent entry, version mismatch, corruption).  The value type is
    whatever [write] stored under this [kind]; each [kind] must be used at a
    single monomorphic type. *)
val read : kind:string -> key:string -> 'a option

(** [write ~kind ~key v] — persist [v] (best-effort: I/O errors are
    swallowed; an unwritable directory degrades to a pure in-memory run). *)
val write : kind:string -> key:string -> 'a -> unit
