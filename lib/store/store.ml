(* See store.mli.  Layout: DIR/ab/kind-<digest>.store, ab = first two hex
   digits of the digest (256-way sharding).  An entry file is
   MD5(payload) ^ payload where payload marshals (stamp, key, value) and
   stamp = version ^ ":" ^ kind; checksum, stamp and key are all verified
   on read, so any corruption or skew is an eviction + miss, never a wrong
   answer.  Publish is tmp → fsync → rename; every failure path removes the
   tmp.  LRU recency is a sidecar ".touch" file per entry (entries are
   immutable, so their own mtime is the write time, used as fallback). *)

let version = "pluto-store-v2"

let dir_ref : string option ref = ref None
let budget_ref : int option ref = ref None

(* Bytes written since the last eviction check; budget-relative threshold
   keeps the full-store scan off the per-write path. *)
let bytes_since_check = ref 0

let set_budget b = budget_ref := b
let budget () = !budget_ref
let dir () = !dir_ref
let enabled () = !dir_ref <> None

let rec mkdir_p d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

(* [?version] appends a per-kind sub-version ("@v") to the stamp so one
   call site can re-key all of its entries (e.g. the fast scheduler bumping
   its matcher version) without a global store flag day. *)
let stamp ?version:v kind =
  let s = version ^ ":" ^ kind in
  match v with None -> s | Some v -> s ^ "@" ^ v

let path ?version dir kind key =
  let digest =
    Digest.to_hex (Digest.string (stamp ?version kind ^ "\x00" ^ key))
  in
  Filename.concat
    (Filename.concat dir (String.sub digest 0 2))
    (Printf.sprintf "%s-%s.store" kind digest)

let touch_path file = file ^ ".touch"

(* Bump the entry's LRU timestamp (best-effort; created on first use). *)
let touch file =
  let t = touch_path file in
  try Unix.utimes t 0.0 0.0
  with Unix.Unix_error _ -> (
    try close_out (open_out_bin t) with Sys_error _ -> ())

(* ------------------------------- traversal ------------------------------- *)

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
let is_shard name = String.length name = 2 && String.for_all is_hex name

(* Apply [f] to every file in the store root and in each shard directory. *)
let iter_files dir f =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          let p = Filename.concat dir name in
          if is_shard name && try Sys.is_directory p with Sys_error _ -> false
          then
            match Sys.readdir p with
            | exception Sys_error _ -> ()
            | files -> Array.iter (fun fn -> f (Filename.concat p fn)) files
          else f p)
        names

(* --------------------------------- read ---------------------------------- *)

let evict file =
  Stats.incr "store.evictions";
  (try Sys.remove file with Sys_error _ -> ());
  try Sys.remove (touch_path file) with Sys_error _ -> ()

let read_file_bytes file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_gen version ~kind ~key =
  match !dir_ref with
  | None -> None
  | Some dir -> (
      let file = path ?version dir kind key in
      match
        Fault.sys_error "store.read.open";
        read_file_bytes file
      with
      | exception Sys_error _ ->
          Stats.incr "store.misses";
          None
      | raw -> (
          (* fault site: bit rot / torn read between disk and us *)
          let raw = Fault.mangle "store.read.corrupt" raw in
          let value =
            if String.length raw < 16 then None
            else
              let sum = String.sub raw 0 16 in
              let payload = String.sub raw 16 (String.length raw - 16) in
              if not (String.equal sum (Digest.string payload)) then None
              else
                match
                  (Marshal.from_string payload 0 : string * string * Obj.t)
                with
                | s, k, v ->
                    if String.equal s (stamp ?version kind) && String.equal k key
                    then Some v
                    else None
                | exception _ -> None
          in
          match value with
          | Some v ->
              Stats.incr "store.hits";
              touch file;
              Some (Obj.obj v)
          | None ->
              (* checksum failure, stale version, digest collision, or a
                 corrupt/truncated file: drop it and report a miss *)
              Stats.incr "store.misses";
              evict file;
              None))

let read ~kind ~key = read_gen None ~kind ~key
let read_versioned ~version ~kind ~key = read_gen (Some version) ~kind ~key

(* ------------------------------- eviction -------------------------------- *)

(* (size, LRU time) of an entry; recency is the touch file's mtime, falling
   back to the entry's own (= write time) when the touch is missing. *)
let entry_info file =
  match Unix.stat file with
  | exception Unix.Unix_error _ -> None
  | st ->
      let lru =
        match Unix.stat (touch_path file) with
        | t -> t.Unix.st_mtime
        | exception Unix.Unix_error _ -> st.Unix.st_mtime
      in
      Some (st.Unix.st_size, lru)

let usage_bytes () =
  match !dir_ref with
  | None -> 0
  | Some dir ->
      let total = ref 0 in
      iter_files dir (fun f ->
          if Filename.check_suffix f ".store" then
            match Unix.stat f with
            | st -> total := !total + st.Unix.st_size
            | exception Unix.Unix_error _ -> ());
      !total

(* Concurrent evictors coordinate through an O_EXCL lock file; a lock older
   than [stale_lock_age_s] belongs to a dead evictor and is taken over, so
   a crash while evicting cannot wedge the store. *)
let stale_lock_age_s = 60.0

let with_evict_lock dir f =
  let lock = Filename.concat dir ".evict.lock" in
  let try_create () =
    match
      Unix.openfile lock
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL; Unix.O_CLOEXEC ]
        0o644
    with
    | fd ->
        Unix.close fd;
        true
    | exception Unix.Unix_error _ -> false
  in
  let acquired =
    try_create ()
    ||
    (* stale-lock takeover *)
    match Unix.stat lock with
    | st when Unix.gettimeofday () -. st.Unix.st_mtime > stale_lock_age_s ->
        (try Sys.remove lock with Sys_error _ -> ());
        try_create ()
    | _ | (exception Unix.Unix_error _) -> false
  in
  if acquired then
    Fun.protect
      ~finally:(fun () -> try Sys.remove lock with Sys_error _ -> ())
      f

let evict_to_budget_locked dir budget =
  let entries = ref [] in
  let total = ref 0 in
  iter_files dir (fun f ->
      if Filename.check_suffix f ".store" then
        match entry_info f with
        | Some (size, lru) ->
            entries := (f, size, lru) :: !entries;
            total := !total + size
        | None -> ());
  if !total > budget then begin
    let oldest_first =
      List.sort (fun (_, _, a) (_, _, b) -> compare a b) !entries
    in
    ignore
      (List.fold_left
         (fun total (f, size, _) ->
           if total <= budget then total
           else begin
             (try Sys.remove f with Sys_error _ -> ());
             (try Sys.remove (touch_path f) with Sys_error _ -> ());
             Stats.incr "store.lru_evictions";
             total - size
           end)
         !total oldest_first)
  end

let evict_to_budget () =
  match (!dir_ref, !budget_ref) with
  | Some dir, Some b ->
      bytes_since_check := 0;
      with_evict_lock dir (fun () -> evict_to_budget_locked dir b)
  | _ -> ()

let maybe_evict dir =
  match !budget_ref with
  | None -> ()
  | Some b ->
      if !bytes_since_check >= max (b / 8) 65536 then begin
        bytes_since_check := 0;
        with_evict_lock dir (fun () -> evict_to_budget_locked dir b)
      end

(* --------------------------------- write --------------------------------- *)

(* Simulated process death mid-publish (fault site "store.write.crash"):
   the tmp file is deliberately left behind, exactly as SIGKILL would —
   the GC, not the failure path, must clean it up. *)
exception Crashed

let tmp_counter = ref 0

let write_entry file data =
  let shard = Filename.dirname file in
  mkdir_p shard;
  incr tmp_counter;
  let tmp =
    Filename.concat shard
      (Printf.sprintf ".w%d.%d.tmp" (Unix.getpid ()) !tmp_counter)
  in
  Fault.unix_error "store.write.open" Unix.ENOSPC "open";
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  let closed = ref false in
  let close_fd () =
    if not !closed then begin
      closed := true;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  let len = String.length data in
  try
    if Fault.fire "store.write.crash" then begin
      ignore (Unix.write_substring fd data 0 (len / 2));
      close_fd ();
      raise Crashed
    end;
    if Fault.fire "store.write.partial" then begin
      ignore (Unix.write_substring fd data 0 (len / 2));
      raise (Unix.Unix_error (Unix.ENOSPC, "write", tmp))
    end;
    let rec put pos =
      if pos < len then
        put (pos + Unix.write_substring fd data pos (len - pos))
    in
    put 0;
    Fault.unix_error "store.write.fsync" Unix.EIO "fsync";
    Unix.fsync fd;
    close_fd ();
    Fault.sys_error "store.write.rename";
    Sys.rename tmp file;
    touch file
  with
  | Crashed -> raise Crashed
  | e ->
      (* any failure after the tmp exists must not leak it *)
      close_fd ();
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let write_gen version ~kind ~key value =
  match !dir_ref with
  | None -> ()
  | Some dir -> (
      match
        let payload =
          Marshal.to_string
            ((stamp ?version kind, key, Obj.repr value) : string * string * Obj.t)
            []
        in
        let data = Digest.string payload ^ payload in
        write_entry (path ?version dir kind key) data;
        String.length data
      with
      | written ->
          Stats.incr "store.writes";
          bytes_since_check := !bytes_since_check + written;
          maybe_evict dir
      | exception Crashed -> ()
      | exception (Sys_error _ | Unix.Unix_error _) ->
          Stats.incr "store.write_failures")

let write ~kind ~key value = write_gen None ~kind ~key value

let write_versioned ~version ~kind ~key value =
  write_gen (Some version) ~kind ~key value

(* ----------------------------------- gc ----------------------------------- *)

let gc_with_dir ?(max_tmp_age_s = 600.0) dir =
  let now = Unix.gettimeofday () in
  let collect f =
    match Sys.remove f with
    | () -> Stats.incr "store.gc_orphans"
    | exception Sys_error _ -> ()
  in
  iter_files dir (fun f ->
      if Filename.check_suffix f ".tmp" then begin
        (* a live writer's tmp is seconds old; an older one is orphaned *)
        match Unix.stat f with
        | st when now -. st.Unix.st_mtime >= max_tmp_age_s -> collect f
        | _ | (exception Unix.Unix_error _) -> ()
      end
      else if
        Filename.check_suffix f ".store"
        && String.equal (Filename.dirname f) dir
      then
        (* pre-shard (v1) flat entry: unreachable under the sharded layout *)
        collect f
      else if
        Filename.check_suffix f ".touch"
        && not (Sys.file_exists (Filename.chop_suffix f ".touch"))
      then collect f)

let gc ?max_tmp_age_s () =
  match !dir_ref with
  | None -> ()
  | Some dir -> gc_with_dir ?max_tmp_age_s dir

let set_dir d =
  dir_ref := d;
  bytes_since_check := 0;
  (* startup self-healing: collect what crashed processes left behind *)
  if d <> None then gc ()
