(* See store.mli.  One file per entry; an entry is the marshaled triple
   (stamp, key, value) where stamp = version ^ ":" ^ kind.  The stamp and the
   full key string are verified on every read, so a file written by a
   different substrate version, a different call site, or a colliding digest
   is detected and treated as an eviction + miss — never misread as a value
   of the wrong type. *)

let version = "pluto-store-v1"

let dir_ref : string option ref = ref None

let set_dir d = dir_ref := d
let dir () = !dir_ref
let enabled () = !dir_ref <> None

let rec mkdir_p d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let stamp kind = version ^ ":" ^ kind

let path dir kind key =
  Filename.concat dir
    (Printf.sprintf "%s-%s.store" kind
       (Digest.to_hex (Digest.string (stamp kind ^ "\x00" ^ key))))

let evict file =
  Stats.incr "store.evictions";
  try Sys.remove file with Sys_error _ -> ()

let read ~kind ~key =
  match !dir_ref with
  | None -> None
  | Some dir -> (
      let file = path dir kind key in
      match open_in_bin file with
      | exception Sys_error _ ->
          Stats.incr "store.misses";
          None
      | ic -> (
          let entry =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                match (Marshal.from_channel ic : string * string * Obj.t) with
                | s, k, v ->
                    if String.equal s (stamp kind) && String.equal k key then
                      Some v
                    else None
                | exception _ -> None)
          in
          match entry with
          | Some v ->
              Stats.incr "store.hits";
              Some (Obj.obj v)
          | None ->
              (* stale version, digest collision, or a corrupt/truncated
                 file: drop it and report a miss *)
              Stats.incr "store.misses";
              evict file;
              None))

let write ~kind ~key value =
  match !dir_ref with
  | None -> ()
  | Some dir -> (
      try
        mkdir_p dir;
        let file = path dir kind key in
        let tmp = Filename.temp_file ~temp_dir:dir ".store" ".tmp" in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            Marshal.to_channel oc
              ((stamp kind, key, Obj.repr value) : string * string * Obj.t)
              []);
        Sys.rename tmp file;
        Stats.incr "store.writes"
      with Sys_error _ -> () (* persistence is best-effort *))
