(** Structured random polyhedral-program generator.

    Produces small but adversarial programs in the C subset the front-end
    accepts: 1–3 loop nests of depth 1–3 over a single structure parameter
    [N], at most 4 statements in total, with triangular bounds, imperfect
    nesting, affine accesses with ±1 offsets and occasional reversed
    ([N-1-i]) or transposed index patterns over a small shared array pool —
    so the generated programs carry genuine loop-carried flow/anti/output
    dependences for the scheduler to respect.

    Every access provably stays in bounds for any [N >= 4]: iterators range
    over sub-intervals of [[0, N-1]] such that offsets ±1 and reversals stay
    within the declared extent [N].

    The generator is deterministic in the given {!Random.State.t}: the same
    seed yields the same program, which is how failing inputs are reproduced
    from a printed seed. *)

type t = {
  gen_name : string;  (** stable name derived from the draw, for reporting *)
  gen_source : string;  (** the program, parsable by {!Frontend} *)
}

(** Parameter binding under which generated programs are interpreted:
    small enough to keep differential runs fast, large enough that tile
    sizes and wavefronts actually trigger. [("N", 8)] *)
val check_params : (string * int) list

(** {1 Seeding}

    Both helpers delegate to {!Putil.Seed}, the repository's single source of
    deterministic randomness: the same [PLUTO_FUZZ_SEED] that replays a fuzz
    failure also replays a tuner search order. *)

(** [seed_of_env ()] — the run seed: [PLUTO_FUZZ_SEED] when set, else the
    pinned default (20080613).
    @raise Failure when the variable is set but malformed. *)
val seed_of_env : unit -> int

(** [state_of_seed n] — the [Random.State.t] every randomized consumer should
    draw from. *)
val state_of_seed : int -> Random.State.t

(** Generate one random program. *)
val generate : Random.State.t -> t

(** [parse g] — convenience: parse the generated source.
    @raise Failure if the generator emitted something the front-end rejects
    (a generator bug; the test suite treats this as a failure). *)
val parse : t -> Ir.program
