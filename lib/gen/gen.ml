(* Random polyhedral programs for differential testing.

   Everything is drawn from a caller-supplied [Random.State.t] so a printed
   seed reproduces the exact program.  The shapes are chosen to exercise the
   interesting paths of the pipeline — triangular bounds (skewed domains),
   imperfect nesting (2d+1 scalar dimensions, fusion/distribution), stencil
   offsets (loop-carried dependences at distance 1), reversed and transposed
   accesses (non-trivial h-transformations), and shared arrays across nests
   (inter-nest dependences) — while keeping every access provably in bounds:
   all iterators range inside [1, N-2], so i±1 lies in [0, N-1] and the
   reversal N-1-i lies back in [1, N-2]. *)

type t = { gen_name : string; gen_source : string }

let check_params = [ ("N", 8) ]

let seed_of_env () = Putil.Seed.of_env ~default:Putil.Seed.default ()
let state_of_seed = Putil.Seed.state

(* Shared array pool: every program draws lhs/rhs arrays from here, which is
   what makes dependences (within and across nests) likely. *)
let arrays_2d = [ "A"; "B" ]
let arrays_1d = [ "u"; "v" ]
let iters = [| [ "i"; "j"; "k" ]; [ "p"; "q"; "r" ]; [ "x"; "y"; "z" ] |]

let pick st l = List.nth l (Random.State.int st (List.length l))

(* One index expression over the enclosing iterators (innermost last). *)
let index st encl =
  let v = pick st encl in
  match Random.State.int st 10 with
  | 0 -> v ^ "-1"
  | 1 -> v ^ "+1"
  | 2 -> "N-1-" ^ v
  | 3 -> "1"
  | _ -> v

let array_ref st encl =
  if Random.State.bool st then
    Printf.sprintf "%s[%s][%s]" (pick st arrays_2d) (index st encl)
      (index st encl)
  else Printf.sprintf "%s[%s]" (pick st arrays_1d) (index st encl)

(* rhs: 1-3 operands joined by + / -, each an array reference optionally
   scaled by a small constant or (rarely) multiplied by a second reference.
   Division and large constants are excluded so values stay finite and the
   bit-identical oracle compares meaningful numbers. *)
let rhs st encl =
  let operand () =
    let r = array_ref st encl in
    match Random.State.int st 7 with
    | 0 -> "0.5 * " ^ r
    | 1 -> "0.25 * " ^ r
    | 2 -> r ^ " * " ^ array_ref st encl
    | _ -> r
  in
  let n = 1 + Random.State.int st 3 in
  let buf = Buffer.create 64 in
  Buffer.add_string buf (operand ());
  for _ = 2 to n do
    Buffer.add_string buf (if Random.State.bool st then " + " else " - ");
    Buffer.add_string buf (operand ())
  done;
  Buffer.contents buf

let stmt st encl = Printf.sprintf "%s = %s;" (array_ref st encl) (rhs st encl)

let indent n = String.make (2 * n) ' '

(* A nest of the given depth; [encl] are the iterators of outer nesting
   levels (only non-empty when this is the inner part of an imperfect nest).
   Returns the lines and the number of statements emitted. *)
let rec nest st ~names ~depth ~encl ~budget lines =
  match names with
  | [] ->
      lines := (indent (List.length encl) ^ stmt st encl) :: !lines;
      1
  | v :: rest ->
      let lo =
        match encl with
        | outer :: _ when Random.State.int st 3 = 0 -> outer
        | _ -> "1"
      in
      let header = Printf.sprintf "for (%s = %s; %s < N - 1; %s++)" v lo v v in
      let encl' = v :: encl in
      if depth > 1 then begin
        (* imperfect nesting: sometimes a statement at this level before the
           inner loop *)
        let pre = budget > 1 && Random.State.int st 3 = 0 in
        lines := (indent (List.length encl) ^ header ^ " {") :: !lines;
        let used =
          if pre then begin
            lines := (indent (List.length encl') ^ stmt st encl') :: !lines;
            1
          end
          else 0
        in
        let used =
          used
          + nest st ~names:rest ~depth:(depth - 1) ~encl:encl'
              ~budget:(budget - used) lines
        in
        lines := (indent (List.length encl) ^ "}") :: !lines;
        used
      end
      else begin
        let n = if budget > 1 && Random.State.int st 3 = 0 then 2 else 1 in
        if n > 1 then begin
          lines := (indent (List.length encl) ^ header ^ " {") :: !lines;
          for _ = 1 to n do
            lines := (indent (List.length encl') ^ stmt st encl') :: !lines
          done;
          lines := (indent (List.length encl) ^ "}") :: !lines
        end
        else begin
          lines := (indent (List.length encl) ^ header) :: !lines;
          lines := (indent (List.length encl') ^ stmt st encl') :: !lines
        end;
        n
      end

let generate st =
  let tag = Random.State.int st 0xffffff in
  let nnests = 1 + Random.State.int st 3 in
  let lines = ref [] in
  let budget = ref 4 in
  let nstmts = ref 0 in
  for n = 0 to nnests - 1 do
    if !budget > 0 then begin
      let depth = 1 + Random.State.int st 3 in
      let names = iters.(n mod Array.length iters) in
      let used = nest st ~names ~depth ~encl:[] ~budget:!budget lines in
      budget := !budget - used;
      nstmts := !nstmts + used
    end
  done;
  let body = String.concat "\n" (List.rev !lines) in
  let decls =
    "double A[N][N], B[N][N], u[N], v[N];"
  in
  {
    gen_name = Printf.sprintf "gen-%06x-%ds" tag !nstmts;
    gen_source = decls ^ "\n" ^ body ^ "\n";
  }

let parse g = Frontend.parse_program ~name:g.gen_name g.gen_source
