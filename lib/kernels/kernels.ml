(** The benchmark kernels of the paper's evaluation (§7) plus additional
    kernels used by the examples and tests.  Each kernel carries its source
    in the C subset the front-end accepts, parameter settings for the
    (small) semantic-equivalence checks and the (larger) simulated
    benchmarks, and notes tying it back to the paper. *)

type t = {
  name : string;
  description : string;
  source : string;
  check_params : (string * int) list;  (** small: equivalence checking *)
  bench_params : (string * int) list;  (** larger: performance simulation *)
  paper : string;  (** which figure of the paper it appears in, if any *)
}

(* --------------------------- paper kernels (§7) --------------------------- *)

let jacobi_1d =
  {
    name = "jacobi-1d-imper";
    description = "imperfectly nested 1-d Jacobi stencil (Figure 3/6)";
    paper = "Fig. 3, 6";
    source =
      {|
double a[N], b[N];
for (t = 0; t < T; t++) {
  for (i = 2; i < N - 1; i++)
    b[i] = 0.333 * (a[i-1] + a[i] + a[i+1]);
  for (j = 2; j < N - 1; j++)
    a[j] = b[j];
}
|};
    check_params = [ ("T", 7); ("N", 26) ];
    bench_params = [ ("T", 128); ("N", 8000) ];
  }

let fdtd_2d =
  {
    name = "fdtd-2d";
    description = "2-d finite difference time domain kernel (Figure 7/8)";
    paper = "Fig. 7, 8";
    source =
      {|
double ex[nx][ny], ey[nx + 1][ny], hz[nx][ny];
for (t = 0; t < tmax; t++) {
  for (j = 0; j < ny; j++)
    ey[0][j] = 0.25 * t;
  for (i = 1; i < nx; i++)
    for (j = 0; j < ny; j++)
      ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
  for (i = 0; i < nx; i++)
    for (j = 1; j < ny; j++)
      ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
  for (i = 0; i < nx; i++)
    for (j = 0; j < ny; j++)
      hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
}
|};
    check_params = [ ("tmax", 5); ("nx", 14); ("ny", 13) ];
    bench_params = [ ("tmax", 32); ("nx", 100); ("ny", 100) ];
  }

let lu =
  {
    name = "lu";
    description = "LU decomposition without pivoting (Figure 9/10)";
    paper = "Fig. 2, 9, 10";
    source =
      {|
double a[N][N];
for (k = 0; k < N; k++) {
  for (j = k + 1; j < N; j++)
    a[k][j] = a[k][j] / a[k][k];
  for (i = k + 1; i < N; i++)
    for (j = k + 1; j < N; j++)
      a[i][j] = a[i][j] - a[i][k] * a[k][j];
}
|};
    check_params = [ ("N", 20) ];
    bench_params = [ ("N", 150) ];
  }

let mvt =
  {
    name = "mvt";
    description = "matrix-vector transpose sequence (Figure 11/12)";
    paper = "Fig. 11, 12";
    source =
      {|
double A[N][N], x1[N], x2[N], y1[N], y2[N];
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    x1[i] = x1[i] + A[i][j] * y1[j];
for (k = 0; k < N; k++)
  for (l = 0; l < N; l++)
    x2[k] = x2[k] + A[l][k] * y2[l];
|};
    check_params = [ ("N", 24) ];
    bench_params = [ ("N", 600) ];
  }

let seidel =
  {
    name = "seidel";
    description = "3-d Gauss-Seidel successive over-relaxation (Figure 13)";
    paper = "Fig. 13";
    source =
      {|
double a[N][N];
for (t = 0; t < T; t++)
  for (i = 1; i < N - 1; i++)
    for (j = 1; j < N - 1; j++)
      a[i][j] = (a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1] + a[i][j]) / 5.0;
|};
    check_params = [ ("T", 5); ("N", 16) ];
    bench_params = [ ("T", 32); ("N", 120) ];
  }

(* ------------------------------ extra kernels ----------------------------- *)

let matmul =
  {
    name = "matmul";
    description = "dense matrix-matrix multiplication (quickstart kernel)";
    paper = "-";
    source =
      {|
double A[N][N], B[N][N], C[N][N];
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    for (k = 0; k < N; k++)
      C[i][j] = C[i][j] + A[i][k] * B[k][j];
|};
    check_params = [ ("N", 14) ];
    bench_params = [ ("N", 140) ];
  }

let jacobi_2d =
  {
    name = "jacobi-2d";
    description = "2-d Jacobi stencil with explicit copy-back";
    paper = "-";
    source =
      {|
double a[N][N], b[N][N];
for (t = 0; t < T; t++) {
  for (i = 1; i < N - 1; i++)
    for (j = 1; j < N - 1; j++)
      b[i][j] = 0.2 * (a[i][j] + a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1]);
  for (i = 1; i < N - 1; i++)
    for (j = 1; j < N - 1; j++)
      a[i][j] = b[i][j];
}
|};
    check_params = [ ("T", 4); ("N", 12) ];
    bench_params = [ ("T", 24); ("N", 120) ];
  }

let gemver =
  {
    name = "gemver";
    description = "BLAS-like vector/matrix update sequence (fusion stress)";
    paper = "-";
    source =
      {|
double A[N][N], B[N][N], u1[N], u2[N], v1[N], v2[N], x[N], y[N], w[N], z[N];
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    B[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
for (k = 0; k < N; k++)
  for (l = 0; l < N; l++)
    x[k] = x[k] + B[l][k] * y[l];
for (p = 0; p < N; p++)
  x[p] = x[p] + z[p];
for (q = 0; q < N; q++)
  for (r = 0; r < N; r++)
    w[q] = w[q] + B[q][r] * x[r];
|};
    check_params = [ ("N", 16) ];
    bench_params = [ ("N", 300) ];
  }

let trmm =
  {
    name = "trmm";
    description = "triangular matrix multiplication";
    paper = "-";
    source =
      {|
double A[N][N], B[N][N];
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    for (k = i + 1; k < N; k++)
      B[i][j] = B[i][j] + A[i][k] * B[k][j];
|};
    check_params = [ ("N", 12) ];
    bench_params = [ ("N", 120) ];
  }

let mm2 =
  {
    name = "2mm";
    description = "two chained matrix products (distribution/fusion test)";
    paper = "-";
    source =
      {|
double A[N][N], B[N][N], C[N][N], D[N][N], E[N][N];
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    for (k = 0; k < N; k++)
      C[i][j] = C[i][j] + A[i][k] * B[k][j];
for (p = 0; p < N; p++)
  for (q = 0; q < N; q++)
    for (r = 0; r < N; r++)
      E[p][q] = E[p][q] + C[p][r] * D[r][q];
|};
    check_params = [ ("N", 10) ];
    bench_params = [ ("N", 90) ];
  }

let syrk =
  {
    name = "syrk";
    description = "symmetric rank-k update (triangular output)";
    paper = "-";
    source =
      {|
double A[N][M], C[N][N];
for (i = 0; i < N; i++)
  for (j = 0; j <= i; j++)
    for (k = 0; k < M; k++)
      C[i][j] = C[i][j] + A[i][k] * A[j][k];
|};
    check_params = [ ("N", 12); ("M", 9) ];
    bench_params = [ ("N", 120); ("M", 60) ];
  }

let doitgen =
  {
    name = "doitgen";
    description = "multi-resolution analysis kernel (3-d data, 2 statements)";
    paper = "-";
    source =
      {|
double A[R][Q][P], sum[R][Q][P], C4[P][P];
for (r = 0; r < R; r++)
  for (q = 0; q < Q; q++) {
    for (p = 0; p < P; p++)
      for (s = 0; s < P; s++)
        sum[r][q][p] = sum[r][q][p] + A[r][q][s] * C4[s][p];
    for (w = 0; w < P; w++)
      A[r][q][w] = sum[r][q][w];
  }
|};
    check_params = [ ("R", 5); ("Q", 4); ("P", 6) ];
    bench_params = [ ("R", 30); ("Q", 30); ("P", 30) ];
  }

let gesummv =
  {
    name = "gesummv";
    description = "summed matrix-vector products (fusion of two MVs)";
    paper = "-";
    source =
      {|
double A[N][N], B[N][N], x[N], y[N], tmp[N];
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    tmp[i] = tmp[i] + A[i][j] * x[j];
for (k = 0; k < N; k++)
  for (l = 0; l < N; l++)
    y[k] = y[k] + B[k][l] * x[l];
for (p = 0; p < N; p++)
  y[p] = 3.0 * tmp[p] + 2.0 * y[p];
|};
    check_params = [ ("N", 18) ];
    bench_params = [ ("N", 400) ];
  }

let dot =
  {
    name = "dot";
    description =
      "dot product: a single-cell accumulator that serializes every loop \
       unless reductions are enabled (--reductions)";
    paper = "-";
    source =
      {|
double a[N], b[N], s[2];
for (i = 0; i < N; i++)
  s[0] = s[0] + a[i] * b[i];
|};
    check_params = [ ("N", 40) ];
    bench_params = [ ("N", 40000) ];
  }

let histogram =
  {
    name = "histogram";
    description =
      "column-sum histogram: per-bin accumulators updated across an outer \
       scan; the scan loop parallelizes only with --reductions";
    paper = "-";
    source =
      {|
double data[N][M], h[M];
for (i = 0; i < N; i++)
  for (j = 0; j < M; j++)
    h[j] = h[j] + data[i][j];
|};
    check_params = [ ("N", 24); ("M", 10) ];
    bench_params = [ ("N", 2000); ("M", 64) ];
  }

let all =
  [
    jacobi_1d;
    fdtd_2d;
    lu;
    mvt;
    seidel;
    matmul;
    jacobi_2d;
    gemver;
    trmm;
    mm2;
    syrk;
    doitgen;
    gesummv;
    dot;
    histogram;
  ]

let find name =
  match List.find_opt (fun k -> String.equal k.name name) all with
  | Some k -> k
  | None -> invalid_arg ("Kernels.find: unknown kernel " ^ name)

(** [program k] parses the kernel's source. *)
let program k = Frontend.parse_program ~name:k.name k.source

(** [params_vector prog assoc] orders an association list of parameter values
    according to the program's parameter order.
    @raise Invalid_argument if a parameter is missing. *)
let params_vector (prog : Ir.program) assoc =
  Array.of_list
    (List.map
       (fun p ->
         match List.assoc_opt p assoc with
         | Some v -> v
         | None -> invalid_arg ("Kernels.params_vector: missing " ^ p))
       prog.Ir.params)

(** Parameter vector scaled by a factor applied to every "size-like"
    parameter (those whose default exceeds [threshold]). *)
let scale_params ?(threshold = 0) assoc factor =
  List.map
    (fun (p, v) -> (p, if v > threshold then max 1 (v * factor / 100) else v))
    assoc
