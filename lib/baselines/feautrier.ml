(** The scheduling-based (time tiling) comparison scheme of §7 — a thin
    facade over {!Feautrier_core}, which holds the actual Feautrier + Griebl
    FCO scheduler (it lives in the driver library so the graceful-degradation
    ladder can use it as a rung).  This module adds the end-to-end [compile]
    pipeline used by the evaluation harness. *)

include Feautrier_core

(** The complete automatic scheduling-based pipeline: schedule + FCO
    completion, time-tiled when the FCO condition holds (Griebl), untiled
    otherwise; parallelism from the shared driver policy. *)
let compile ?(options = Driver.default_options) (p : Ir.program) : Driver.result =
  let deps = Deps.compute ~input_deps:false p in
  let tr, fco = scheduling_transform p deps in
  let options = if fco then options else { options with Driver.tile = false } in
  Driver.compile_with_transform ~options p deps tr
