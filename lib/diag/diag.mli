(** Structured diagnostics for the whole pipeline.

    Every layer (frontend, solver, scheduler, driver, CLI) reports problems
    as {!t} values — severity, stable error code, optional source span and a
    human message — instead of ad-hoc exceptions.  The CLI renders them with
    source excerpts; the driver collects them while walking the
    graceful-degradation ladder, so a compilation can finish with warnings
    rather than die on the first failure.

    Two escape hatches are defined as exceptions: {!Budget_exceeded}, the
    resource-budget signal raised by the solvers ({!Milp} branch-and-bound
    node/time limits, {!Polyhedra} Fourier–Motzkin row-explosion guard), and
    {!Diagnostic}, which carries a structured diagnostic out of a library
    layer.  Both are caught at layer boundaries and converted into
    diagnostics. *)

type severity = Error | Warning | Note

(** A source position (1-based line and column) in a named input. *)
type span = { file : string; line : int; col : int }

type t = {
  sev : severity;
  code : string;  (** stable machine-readable code, e.g. "parse", "budget" *)
  span : span option;
  message : string;
}

(** Raised by resource-bounded algorithms when their budget is exhausted.
    The payload says which budget and where. *)
exception Budget_exceeded of string

(** Raised by library layers that hit a structured, reportable failure (for
    example an unbounded lexmin coordinate in {!Milp}).  Like
    {!Budget_exceeded} it is caught at layer boundaries — the driver's
    [attempt] wrapper converts it into its payload so the degradation ladder
    can continue instead of crashing. *)
exception Diagnostic of t

val span : ?file:string -> line:int -> col:int -> unit -> span

val error : ?span:span -> code:string -> string -> t
val warning : ?span:span -> code:string -> string -> t
val note : ?span:span -> code:string -> string -> t

val errorf :
  ?span:span -> code:string -> ('a, unit, string, t) format4 -> 'a

val warningf :
  ?span:span -> code:string -> ('a, unit, string, t) format4 -> 'a

val is_error : t -> bool

(** [has_errors ds] — does the list contain at least one [Error]? *)
val has_errors : t list -> bool

(** [has_code ds code] — is there a diagnostic with this code? *)
val has_code : t list -> string -> bool

val severity_name : severity -> string

(** One-line rendering: [file:line:col: severity[code]: message]. *)
val pp : Format.formatter -> t -> unit

(** Like {!pp} but followed by a source excerpt with a caret marking the
    span, gcc/rustc style, when the diagnostic has a span inside [src]. *)
val pp_with_source : src:string -> Format.formatter -> t -> unit

(** Render a whole list (with excerpts when [src] is given), sorted by
    source position, errors and warnings interleaved in source order. *)
val pp_all : ?src:string -> Format.formatter -> t list -> unit

(** Sort by span (diagnostics without spans last), stable otherwise. *)
val by_position : t list -> t list
