type severity = Error | Warning | Note

type span = { file : string; line : int; col : int }

type t = {
  sev : severity;
  code : string;
  span : span option;
  message : string;
}

exception Budget_exceeded of string

exception Diagnostic of t

let span ?(file = "<input>") ~line ~col () = { file; line; col }

let mk sev ?span ~code message = { sev; code; span; message }

let error ?span ~code message = mk Error ?span ~code message
let warning ?span ~code message = mk Warning ?span ~code message
let note ?span ~code message = mk Note ?span ~code message

let errorf ?span ~code fmt = Printf.ksprintf (error ?span ~code) fmt
let warningf ?span ~code fmt = Printf.ksprintf (warning ?span ~code) fmt

let is_error d = d.sev = Error
let has_errors ds = List.exists is_error ds
let has_code ds code = List.exists (fun d -> String.equal d.code code) ds

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let pp fmt d =
  (match d.span with
  | Some s -> Format.fprintf fmt "%s:%d:%d: " s.file s.line s.col
  | None -> ());
  Format.fprintf fmt "%s[%s]: %s" (severity_name d.sev) d.code d.message

(* The [line]-th (1-based) line of [src], if it exists. *)
let source_line src line =
  let rec go i l =
    if l = line then
      let j =
        match String.index_from_opt src i '\n' with
        | Some j -> j
        | None -> String.length src
      in
      if i <= String.length src then Some (String.sub src i (j - i)) else None
    else
      match String.index_from_opt src i '\n' with
      | Some j -> go (j + 1) (l + 1)
      | None -> None
  in
  if line >= 1 then go 0 1 else None

let pp_with_source ~src fmt d =
  pp fmt d;
  match d.span with
  | None -> ()
  | Some s -> (
      match source_line src s.line with
      | None -> ()
      | Some text ->
          let gutter = Printf.sprintf "%4d | " s.line in
          Format.fprintf fmt "@,%s%s" gutter text;
          let pad = String.make (String.length gutter - 2) ' ' in
          let caret_col = max 0 (min (s.col - 1) (String.length text)) in
          let lead =
            String.init caret_col (fun i ->
                if i < String.length text && text.[i] = '\t' then '\t' else ' ')
          in
          Format.fprintf fmt "@,%s| %s^" pad lead)

let by_position ds =
  let key d = match d.span with Some s -> (0, s.line, s.col) | None -> (1, 0, 0) in
  List.stable_sort (fun a b -> compare (key a) (key b)) ds

let pp_all ?src fmt ds =
  Format.pp_open_vbox fmt 0;
  List.iter
    (fun d ->
      (match src with
      | Some src -> pp_with_source ~src fmt d
      | None -> pp fmt d);
      Format.pp_print_cut fmt ())
    (by_position ds);
  Format.pp_close_box fmt ()
