(** The Pluto automatic transformation algorithm (§3–§4 of the paper).

    Iteratively finds statement-wise affine hyperplanes by solving, at each
    level, the integer program

      lexmin (u, w, u', w', ..., c_S's, ...)

    subject to, for every dependence edge [e] of the DDG:

    - the tiling legality constraints (2): δₑ(s,t) = φ_dst(t) − φ_src(s) >= 0
      for all [(s,t)] in the dependence polyhedron, for every legality
      (flow/anti/output) dependence not yet dismissed;
    - the communication-volume bounding constraints (4):
      δₑ(s,t) <= u·p + w for dependences not yet satisfied, and two-sided
      bounds for input (read-after-read) dependences (§4.1) — against both
      the shared bound (u, w), exactly as in the paper, and a secondary
      bound (u', w') minimized afterwards, which breaks cost ties in favour
      of smaller reuse distances (this makes the MVT fusion of §7
      deterministic; see DESIGN.md §4);

    plus per-statement linear independence with previously found rows
    (eq. (6), via integer orthogonal complements) and the trivial-solution
    avoidance Σ cᵢ >= 1 over non-negative coefficients (§4.2).

    Constraints quantified over dependence polyhedra are linearized with the
    affine form of the Farkas lemma and the multipliers eliminated by
    Gaussian/Fourier–Motzkin elimination ({!Farkas}).

    When no hyperplane exists at a level, the DDG restricted to unsatisfied
    dependences is cut between strongly connected components (a scalar
    dimension: loop distribution), or, failing that, satisfied dependences
    are dismissed and a new band of permutable loops begins.  A final scalar
    dimension orders any statements still tied at every level. *)

type config = {
  coeff_bound : int;  (** upper bound for iterator coefficients (default 4) *)
  shift_bound : int;  (** upper bound for the constant coefficient c₀ *)
  u_bound : int;  (** upper bound for each component of [u] *)
  w_bound : int;  (** upper bound for [w] *)
  ctx : int;  (** parameter value used by concrete satisfaction tests *)
  input_deps : bool;  (** include read-read dependences in the cost function *)
  use_cost_bound : bool;
      (** apply the communication-volume bounding objective (4); disabling it
          leaves a legality-only search (an ablation of the paper's central
          design choice) *)
  budget : Milp.budget;
      (** resource budget for each hyperplane-search ILP; exhaustion degrades
          the search (cut / dismiss / {!No_transform}) instead of diverging *)
  search_time_limit_s : float option;
      (** CPU-time deadline for one whole search (default [None]).  The
          per-ILP [budget] bounds each solver call, but a search makes many
          of them — one hyperplane ILP per level plus concrete satisfaction
          and parallelism tests per live dependence — so the total can grow
          far beyond any single call's limit.  When the deadline passes, the
          search raises {!Diag.Budget_exceeded}, which
          [Driver.compile_robust] turns into a degradation step. *)
}

val default_config : config

exception No_transform of string

(** [transform ?config p deps] runs the search and returns the statement-wise
    transformation (rows, level kinds, satisfaction levels).
    @raise No_transform if the search gets stuck (e.g. a dependence cycle
    requiring coefficients outside the non-negative search space). *)
val transform :
  ?config:config -> Ir.program -> Deps.t list -> Types.transform

(** [annotate p deps ~rows ~scalar] rebuilds satisfaction bookkeeping, band
    structure and per-level parallelism flags for an externally supplied
    transformation ([rows.(stmt_id).(level)] of width depth+1; [scalar.(l)]
    marks static levels).  Used by the baseline schemes and the identity
    transformation. *)
val annotate :
  ?config:config ->
  Ir.program ->
  Deps.t list ->
  rows:int array array array ->
  scalar:bool array ->
  Types.transform

(** [identity_transform p deps] is the original-execution-order scattering
    (the classic 2d+1 form), annotated with parallelism information — the
    "native compiler" view of the program. *)
val identity_transform :
  ?config:config -> Ir.program -> Deps.t list -> Types.transform

val pp_transform : Format.formatter -> Types.transform -> unit

(** Internal entry points exposed for profiling and tests. *)
module For_tests : sig
  type dep_state

  val dep_states : Ir.program -> Deps.t list -> dep_state list
end
