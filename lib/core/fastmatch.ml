(** The fast scheduling path: fusion + dimension matching.

    A cheap approximation of the per-hyperplane ILP of [Auto] in the spirit
    of Acharya & Bondhugula's fusion/permutation-matching scheduler
    (arXiv:1803.10726): instead of solving a lexmin ILP per level, each
    level assigns every statement the {e unit row} of one still-unused
    iterator (a loop permutation — no skews, no shifts), chosen by
    backtracking over candidates ordered by dimension-matching votes from
    the dependence graph's subscript structure ({!Deps.matched_dims}).
    Fusion falls out of the same machinery the exact search uses: SCC cuts
    on the unsatisfied-dependence graph insert scalar distribution levels,
    and everything the cut machinery leaves fused stays fused.

    All legality reasoning here is {e pure Fourier–Motzkin} with the
    parameters left symbolic — the fast path performs zero ILP solves.
    Because the FM test proves emptiness over the rationals, every check is
    conservative: when it cannot prove a property the path gives up
    ([No_fast_schedule]) or degrades the claim (a level is marked
    sequential), never the reverse.  The driver re-validates any accepted
    schedule with the translation validator before trusting it, and falls
    back to the exact ILP on rejection — so this module trades completeness
    for speed, never correctness.

    Band-permutability invariant: δ ≥ 0 is enforced at every loop level for
    ALL non-dismissed legality dependences, including already-satisfied
    ones, exactly as the ILP's legality constraints do — only dismissal
    (band completion) stops constraining an edge.  This is what keeps the
    resulting bands tilable. *)

open Types

exception No_fast_schedule of string

(* Bump when the matcher's search or acceptance rules change: the store
   layer stamps cached fast-path results with this so stale entries from an
   older matcher are version-skew misses, not wrong answers. *)
let version = "fastmatch-v2"

(* Backtracking-node allowance for the whole search.  The matcher is meant
   to be decisively cheaper than one ILP solve; a search that needs more
   nodes than this is a search the exact path should do instead. *)
let node_budget = 4096

let reject fmt = Printf.ksprintf (fun s -> raise (No_fast_schedule s)) fmt

(* --------------------- FM-only conservative checks ----------------------- *)

(* "Is [sys] certainly empty?"  Rational FM emptiness with symbolic
   parameters; a solver-budget blowup is the conservative "cannot prove". *)
let proves_empty sys =
  try Polyhedra.is_empty_cached ~integer:true sys
  with Diag.Budget_exceeded _ -> false

(* δ >= 0 everywhere on the dependence polyhedron (params symbolic)? *)
let delta_always_ge0 (d : Deps.t) (delta : Vec.t) =
  (* δ <= -1  ==  -δ - 1 >= 0 *)
  let w = Array.length delta in
  let r = Vec.neg delta in
  r.(w - 1) <- Bigint.sub r.(w - 1) Bigint.one;
  proves_empty (Polyhedra.add d.Deps.poly (Polyhedra.ge r))

(* δ >= 1 everywhere? *)
let delta_always_ge1 (d : Deps.t) (delta : Vec.t) =
  (* δ <= 0  ==  -δ >= 0 *)
  proves_empty (Polyhedra.add d.Deps.poly (Polyhedra.ge (Vec.neg delta)))

(* δ = 0 everywhere?  (Provably no component along this level.) *)
let delta_always_zero (d : Deps.t) (delta : Vec.t) =
  let w = Array.length delta in
  let plus = Vec.copy delta in
  plus.(w - 1) <- Bigint.sub plus.(w - 1) Bigint.one;
  let minus = Vec.neg delta in
  minus.(w - 1) <- Bigint.sub minus.(w - 1) Bigint.one;
  proves_empty (Polyhedra.add d.Deps.poly (Polyhedra.ge plus))
  && proves_empty (Polyhedra.add d.Deps.poly (Polyhedra.ge minus))

type dep_state = {
  dep : Deps.t;
  mutable satisfied : int option;  (* level of strong satisfaction *)
  mutable dismissed : bool;  (* dropped when a previous band completed *)
}

(* ------------------------------ the search ------------------------------- *)

let schedule ?(config = Auto.default_config) (p : Ir.program)
    (deps : Deps.t list) =
  if config.Auto.coeff_bound < 1 then
    reject "coefficient bound %d forbids even unit permutation rows"
      config.Auto.coeff_bound;
  (match config.Auto.search_time_limit_s with
  | Some t when t <= 0.0 -> reject "search time budget is %g s" t
  | _ -> ());
  let deps =
    if config.Auto.input_deps then deps else List.filter Deps.is_legality deps
  in
  let nstmts = List.length p.Ir.stmts in
  List.iteri
    (fun i s ->
      if s.Ir.id <> i then
        invalid_arg "Fastmatch.schedule: statement ids not sequential")
    p.Ir.stmts;
  let depth = Array.of_list (List.map Ir.depth p.Ir.stmts) in
  let maxd = Array.fold_left max 0 depth in
  (* Only hard edges constrain the matcher: marked reduction edges (like
     input dependences) still cast dimension-matching votes below but never
     veto a permutation or serialize a level. *)
  let states =
    List.filter_map
      (fun d ->
        if Deps.is_hard d then
          Some { dep = d; satisfied = None; dismissed = false }
        else None)
      deps
  in
  let used = Array.init nstmts (fun id -> Array.make depth.(id) false) in
  let rank id =
    Array.fold_left (fun a u -> if u then a + 1 else a) 0 used.(id)
  in
  let all_rows : int array array list ref = ref [] in
  let kinds = ref [] in
  let satisfied_at = Hashtbl.create 16 in
  let band = ref 0 in
  let level = ref 0 in
  let nodes = ref node_budget in
  let spend () =
    decr nodes;
    if !nodes < 0 then reject "matcher node budget (%d) exhausted" node_budget
  in
  let full_rank () =
    List.for_all (fun s -> rank s.Ir.id >= Ir.depth s) p.Ir.stmts
  in
  let live_legality () = List.filter (fun st -> st.satisfied = None) states in
  (* One level: give each statement either the unit row of one unused
     iterator or (at full rank) the zero row, backtracking over candidates
     in dimension-matching vote order and pruning as soon as a dependence
     between two decided statements cannot be proven non-negative. *)
  let find_level () =
    let choice = Array.make nstmts (-1) in
    let row_of id =
      let m = depth.(id) in
      let r = Array.make (m + 1) 0 in
      if choice.(id) >= 0 then r.(choice.(id)) <- 1;
      r
    in
    (* decided = every statement with id <= s; check only edges touching s *)
    let ok_so_far s =
      List.for_all
        (fun st ->
          st.dismissed
          ||
          let a = st.dep.Deps.src.Ir.id and b = st.dep.Deps.dst.Ir.id in
          a > s || b > s
          || (a <> s && b <> s)
          ||
          let delta = Deps.satisfaction_row p st.dep (row_of a) (row_of b) in
          delta_always_ge0 st.dep delta)
        states
    in
    (* dimension-matching votes from already-decided peers at this level;
       input (read-read) dependences vote too — that is what steers fused
       statements onto matching iterators *)
    let votes s =
      let score = Array.make depth.(s) 0 in
      List.iter
        (fun (d : Deps.t) ->
          let a_id = d.Deps.src.Ir.id and b_id = d.Deps.dst.Ir.id in
          if a_id = s && b_id < s && choice.(b_id) >= 0 then
            List.iter
              (fun (a, b) ->
                if b = choice.(b_id) then score.(a) <- score.(a) + 1)
              (Deps.matched_dims d)
          else if b_id = s && a_id < s && choice.(a_id) >= 0 then
            List.iter
              (fun (a, b) ->
                if a = choice.(a_id) then score.(b) <- score.(b) + 1)
              (Deps.matched_dims d))
        deps;
      score
    in
    let rec assign s =
      if s = nstmts then true
      else if rank s >= depth.(s) then begin
        choice.(s) <- -1;
        spend ();
        ok_so_far s && assign (s + 1)
      end
      else begin
        let sc = votes s in
        let cands =
          List.sort
            (fun i j -> compare (-sc.(i), i) (-sc.(j), j))
            (List.filter (fun i -> not used.(s).(i)) (Putil.range depth.(s)))
        in
        let found =
          List.exists
            (fun dim ->
              choice.(s) <- dim;
              spend ();
              ok_so_far s && assign (s + 1))
            cands
        in
        if not found then choice.(s) <- -1;
        found
      end
    in
    if not (assign 0) then None
    else begin
      let rows = Array.init nstmts row_of in
      if Array.for_all (fun (r : int array) ->
             Array.for_all (fun c -> c = 0) r) rows
      then None
      else Some rows
    end
  in
  let mark_satisfaction rows =
    List.iter
      (fun st ->
        if st.satisfied = None then begin
          let d = st.dep in
          let delta =
            Deps.satisfaction_row p d rows.(d.Deps.src.Ir.id)
              rows.(d.Deps.dst.Ir.id)
          in
          if delta_always_ge1 d delta then begin
            st.satisfied <- Some !level;
            Hashtbl.replace satisfied_at d.Deps.id !level
          end
        end)
      states
  in
  let level_parallel rows =
    (* parallel iff every live legality dependence provably has no component
       along this level; "cannot prove" degrades to sequential, never the
       reverse *)
    List.for_all
      (fun st ->
        st.dismissed
        || (match st.satisfied with Some l when l < !level -> true | _ -> false)
        ||
        let d = st.dep in
        let delta =
          Deps.satisfaction_row p d rows.(d.Deps.src.Ir.id)
            rows.(d.Deps.dst.Ir.id)
        in
        delta_always_zero d delta)
      states
  in
  let add_scalar_cut comp =
    let rows =
      Array.init nstmts (fun id ->
          let m = depth.(id) in
          Array.init (m + 1) (fun j -> if j = m then comp.(id) else 0))
    in
    all_rows := rows :: !all_rows;
    kinds := Scalar :: !kinds;
    List.iter
      (fun st ->
        if st.satisfied = None then begin
          let cs = comp.(st.dep.Deps.src.Ir.id)
          and cd = comp.(st.dep.Deps.dst.Ir.id) in
          if cd > cs then begin
            st.satisfied <- Some !level;
            Hashtbl.replace satisfied_at st.dep.Deps.id !level
          end
        end)
      states;
    incr level;
    incr band
  in
  (* Can the dependence still relate a pair at distance zero on every level
     found so far?  FM answers "yes" whenever it cannot prove otherwise. *)
  let weakly_unordered st =
    let d = st.dep in
    let zero_eqs =
      List.map
        (fun lv ->
          Polyhedra.eq
            (Deps.satisfaction_row p d lv.(d.Deps.src.Ir.id)
               lv.(d.Deps.dst.Ir.id)))
        (List.rev !all_rows)
    in
    let sys =
      Polyhedra.meet d.Deps.poly
        (Polyhedra.of_constrs d.Deps.poly.Polyhedra.nvars zero_eqs)
    in
    not (proves_empty sys)
  in
  let stuck_reason = ref "" in
  let progress = ref true in
  while
    !progress
    && ((not (full_rank ())) || live_legality () <> [])
    && !level < 2 * (maxd + nstmts + 2)
  do
    match find_level () with
    | Some rows ->
        all_rows := rows :: !all_rows;
        Array.iteri
          (fun id (r : int array) ->
            for j = 0 to depth.(id) - 1 do
              if r.(j) <> 0 then used.(id).(j) <- true
            done)
          rows;
        mark_satisfaction rows;
        let parallel = level_parallel rows in
        kinds := Loop { band = !band; parallel } :: !kinds;
        incr level
    | None -> (
        let live = live_legality () in
        let edges =
          List.map
            (fun st -> (st.dep.Deps.src.Ir.id, st.dep.Deps.dst.Ir.id))
            live
        in
        let comp, ncomp = Ddg.sccs ~nstmts edges in
        let cross =
          List.exists
            (fun st ->
              comp.(st.dep.Deps.src.Ir.id) <> comp.(st.dep.Deps.dst.Ir.id))
            live
        in
        if ncomp > 1 && cross then add_scalar_cut comp
        else begin
          let dismissed_any = ref false in
          List.iter
            (fun st ->
              if (not st.dismissed) && st.satisfied <> None then begin
                st.dismissed <- true;
                dismissed_any := true
              end)
            states;
          if not !dismissed_any then
            (* weak-satisfaction fallback, as in [Auto.transform]: a live
               dependence provably without an all-zero pair is ordered by
               the prefix and can be dismissed *)
            List.iter
              (fun st ->
                if
                  (not st.dismissed) && st.satisfied = None
                  && not (weakly_unordered st)
                then begin
                  st.dismissed <- true;
                  st.satisfied <- Some (max 0 (!level - 1));
                  dismissed_any := true
                end)
              states;
          if !dismissed_any then incr band
          else begin
            progress := false;
            stuck_reason :=
              Printf.sprintf
                "no permutation row, no useful cut, nothing to dismiss \
                 (level %d, %d live deps)"
                !level (List.length live)
          end
        end)
  done;
  if (not (full_rank ())) && !progress = false then reject "%s" !stuck_reason;
  let residual = List.filter weakly_unordered (live_legality ()) in
  if residual <> [] then begin
    let edges =
      List.map
        (fun st -> (st.dep.Deps.src.Ir.id, st.dep.Deps.dst.Ir.id))
        residual
    in
    let comp, ncomp = Ddg.sccs ~nstmts edges in
    if ncomp > 1 then add_scalar_cut comp
    else if nstmts > 1 then
      reject "cyclic unsatisfied dependences at full rank"
  end;
  let kinds = Array.of_list (List.rev !kinds) in
  (* Profitability: a pure permutation is only worth taking over the exact
     search when it yields one of the two things the paper's cost function
     optimizes for — a permutable band wide enough to tile (two loops, or
     the program's whole depth when that is smaller), or sync-free outer
     parallelism: an outermost loop level provably carrying no dependence
     (the u = 0, w = 0 optimum of the bounding function; for fused programs
     this is the outer-parallel fusion win, e.g. gemver / gesummv).
     Anything narrower — say a sequential outer loop over width-1 bands, as
     the matcher finds for jacobi-1d, whose profitable schedule needs a
     skew — is left to the exact ILP. *)
  let widest =
    let best = ref 0 and run = ref 0 and run_band = ref (-1) in
    Array.iter
      (function
        | Loop { band = b; _ } ->
            if b = !run_band then incr run
            else begin
              run := 1;
              run_band := b
            end;
            if !run > !best then best := !run
        | Scalar ->
            run := 0;
            run_band := -1)
      kinds;
    !best
  in
  let outer_parallel =
    Array.length kinds > 0
    && match kinds.(0) with Loop { parallel; _ } -> parallel | Scalar -> false
  in
  if (not outer_parallel) && widest < min 2 maxd then
    reject
      "unprofitable: widest permutable band is %d loop(s), want %d, and the \
       outermost loop is not parallel"
      widest (min 2 maxd);
  let levels = List.rev !all_rows in
  let nlevels = List.length levels in
  let rows =
    Array.init nstmts (fun id ->
        Array.of_list (List.map (fun lv -> lv.(id)) levels))
  in
  { program = p; deps; nlevels; kinds; rows; satisfied_at }

(** Structural views for the property tests. *)
module For_tests = struct
  (* The iterator each loop level of statement [id] pivots on, in level
     order: a (partial) permutation of the statement's dimensions. *)
  let permutation (t : transform) id =
    let s = List.nth t.program.Ir.stmts id in
    let m = Ir.depth s in
    List.filter_map
      (fun l ->
        match t.kinds.(l) with
        | Loop _ ->
            let row = t.rows.(id).(l) in
            let pivot = ref None in
            for j = 0 to m - 1 do
              if row.(j) <> 0 then pivot := Some j
            done;
            !pivot
        | Scalar -> None)
      (Putil.range t.nlevels)

  (* Fusion partition: statements grouped by the constant vector their
     scalar (distribution) levels assign them.  Sorted for determinism. *)
  let partition (t : transform) =
    let key id =
      List.filter_map
        (fun l ->
          match t.kinds.(l) with
          | Scalar ->
              let row = t.rows.(id).(l) in
              Some row.(Array.length row - 1)
          | Loop _ -> None)
        (Putil.range t.nlevels)
    in
    let groups = Hashtbl.create 8 in
    List.iter
      (fun (s : Ir.stmt) ->
        let k = key s.Ir.id in
        let prev = try Hashtbl.find groups k with Not_found -> [] in
        Hashtbl.replace groups k (s.Ir.id :: prev))
      t.program.Ir.stmts;
    List.sort compare
      (Hashtbl.fold (fun _ ids acc -> List.rev ids :: acc) groups [])
end
