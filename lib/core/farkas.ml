(** Application of the affine form of the Farkas lemma (§3.2 of the paper).

    Given a dependence polyhedron [P] over variables [x] and an affine form
    [δ(x)] whose coefficients are themselves affine expressions in the ILP
    decision variables (the unknown transformation coefficients, plus [u], [w]),
    the requirement  [∀ x ∈ P. δ(x) >= 0]  is equivalent (for non-empty [P]) to

      δ(x) ≡ λ₀ + Σₖ λₖ·Pₖ(x),   λ₀, λₖ >= 0 (λ free for equality faces)

    Equating the coefficient of every [x]-variable and the constant yields
    equalities linking the ILP variables and the multipliers; eliminating the
    multipliers by Gaussian/Fourier–Motzkin elimination leaves a constraint
    system purely in the ILP variables. *)

(** An affine form over a dependence polyhedron's variables whose coefficients
    are affine in the ILP variables: entry [j] (0..nvars) is a row of width
    [nilp + 1] giving the coefficient of dependence variable [j] (the last
    entry is the form's constant term). *)
type symbolic_form = int array array

(* Eliminating the multipliers is Fourier–Motzkin, whose row count can grow
   quadratically per eliminated variable.  [Polyhedra.eliminate]'s generic
   cap (200k rows) is far too lax here: a system that legitimately needs
   thousands of intermediate rows per step across dozens of multipliers
   takes minutes while staying under it.  Every system arising from the
   paper's kernels stays well below the cap below; anything that exceeds it
   (certain adversarial random programs) is better treated as a solver
   budget failure, which the degradation ladder turns into a fallback. *)
let max_constrs = 2_000

(** [constraints ~nilp ~form ~poly] returns the Fourier–Motzkin-eliminated
    system over the [nilp] ILP variables equivalent to
    [∀ x ∈ poly. form(x) >= 0].
    @raise Failure if elimination detects an inconsistency (empty [poly]).
    @raise Diag.Budget_exceeded on row explosion during elimination. *)
let constraints ~nilp ~(form : symbolic_form) ~(poly : Polyhedra.t) =
  let nx = poly.Polyhedra.nvars in
  if Array.length form <> nx + 1 then invalid_arg "Farkas.constraints: form width";
  let faces = Array.of_list poly.Polyhedra.cs in
  let nfaces = Array.length faces in
  (* variable layout: [ilp vars (nilp); lambda_0; lambda_1..lambda_nfaces] *)
  let nlam = 1 + nfaces in
  let nv = nilp + nlam in
  let cs = ref [] in
  (* coefficient of dependence variable j:  form[j]·(ilp,1) - Σ λₖ aₖⱼ = 0 *)
  for j = 0 to nx - 1 do
    let row = Vec.zero (nv + 1) in
    Array.iteri (fun v c -> row.(if v = nilp then nv else v) <- Bigint.of_int c) form.(j);
    for k = 0 to nfaces - 1 do
      row.(nilp + 1 + k) <- Bigint.neg faces.(k).Polyhedra.coefs.(j)
    done;
    cs := Polyhedra.eq row :: !cs
  done;
  (* constant term:  form[nx]·(ilp,1) - λ₀ - Σ λₖ bₖ = 0 *)
  let row = Vec.zero (nv + 1) in
  Array.iteri (fun v c -> row.(if v = nilp then nv else v) <- Bigint.of_int c) form.(nx);
  row.(nilp) <- Bigint.minus_one;
  for k = 0 to nfaces - 1 do
    row.(nilp + 1 + k) <- Bigint.neg faces.(k).Polyhedra.coefs.(nx)
  done;
  cs := Polyhedra.eq row :: !cs;
  (* multiplier signs: λ₀ >= 0 and λₖ >= 0 for inequality faces *)
  let lam_ge k =
    let row = Vec.zero (nv + 1) in
    row.(nilp + k) <- Bigint.one;
    Polyhedra.ge row
  in
  cs := lam_ge 0 :: !cs;
  for k = 0 to nfaces - 1 do
    if faces.(k).Polyhedra.kind = Polyhedra.Ge then cs := lam_ge (1 + k) :: !cs
  done;
  let sys = Polyhedra.of_constrs nv !cs in
  match
    Polyhedra.eliminate_many ~max_constrs sys
      (List.map (fun k -> nilp + k) (Putil.range nlam))
  with
  | None -> failwith "Farkas.constraints: multiplier elimination found the system empty"
  | Some sys ->
      let sys = Polyhedra.drop_vars sys ~at:nilp ~count:nlam in
      (match Polyhedra.simplify ~integer:true sys with
      | Some s -> s
      | None ->
          (* contradictory constraints on the ILP variables: represent as an
             explicitly false system *)
          Polyhedra.of_constrs nilp
            [ Polyhedra.ge (Vec.of_int_list (List.init (nilp + 1) (fun j -> if j = nilp then -1 else 0))) ])
