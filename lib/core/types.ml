(** Shared types of the transformation framework. *)

(** The nature of one level (row) of the computed transformation. *)
type level_kind =
  | Loop of { band : int; parallel : bool }
      (** a genuine hyperplane; [band] groups consecutive permutable levels,
          [parallel] means the level satisfies no live dependence *)
  | Scalar
      (** a static dimension introduced by cutting the DDG between strongly
          connected components (loop distribution / partial fusion) *)

(** A computed statement-wise affine transformation.  Every statement has the
    same number of rows ([nlevels]); each row of statement [S] has width
    [depth S + 1] (iterator coefficients then the constant). *)
type transform = {
  program : Ir.program;
  deps : Deps.t list;
  nlevels : int;
  kinds : level_kind array;
  rows : int array array array;
      (** indexed by position of the statement in [program.stmts], then level *)
  satisfied_at : (int, int) Hashtbl.t;
      (** dep id -> level at which it is (strictly) satisfied *)
}

(** A target-space program description consumed by the code generator: per
    statement, an extended domain (tile-space supernodes prepended to the
    original iterators) and scattering rows over the extended iterators. *)
type tstmt = {
  stmt : Ir.stmt;
  ext_iters : string array;
  ext_domain : Polyhedra.t;  (** over [ext_iters @ params] *)
  trows : int array array;  (** [nlevels] rows, width [|ext_iters| + 1] *)
}

type parallelism = Seq | Par

type target = {
  tprogram : Ir.program;
  tnlevels : int;
  tkinds : level_kind array;
  tpar : parallelism array;  (** per level, for OpenMP marking *)
  tvec : bool array;
      (** per level: vectorization forced with an ignore-dependence pragma
          (the §5.4 post-pass) *)
  tstmts : tstmt list;  (** aligned with [tprogram.stmts] *)
}

let level_kind_name = function
  | Loop { band; parallel } ->
      Printf.sprintf "loop(band %d%s)" band (if parallel then ", parallel" else "")
  | Scalar -> "scalar"

let is_scalar = function Scalar -> true | Loop _ -> false
let is_parallel_loop = function Loop { parallel; _ } -> parallel | Scalar -> false

(** [transform_row t s ~level] — the row of statement [s] at [level] (width
    [depth s + 1]).  Statement ids index [t.rows] (the search requires them to
    be sequential positions in [t.program.stmts]).
    @raise Invalid_argument on an out-of-range statement or level. *)
let transform_row (t : transform) (s : Ir.stmt) ~level =
  if s.Ir.id < 0 || s.Ir.id >= Array.length t.rows then
    invalid_arg "Types.transform_row: statement id out of range";
  if level < 0 || level >= t.nlevels then
    invalid_arg "Types.transform_row: level out of range";
  t.rows.(s.Ir.id).(level)

(** [satisfaction_level t d] — the level at which the transform claims
    dependence [d] is strongly (single-level) satisfied, if recorded. *)
let satisfaction_level (t : transform) (d : Deps.t) =
  Hashtbl.find_opt t.satisfied_at d.Deps.id
