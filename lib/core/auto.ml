(** The Pluto automatic transformation algorithm (§3 of the paper).

    Iteratively finds statement-wise affine hyperplanes by solving, at each
    level, the ILP

      lexmin (u, w, ..., c_S's, ...)

    subject to (per dependence edge) the tiling legality constraints (2) and
    the communication-volume bounding constraints (4), both turned into
    constraints purely over the transformation coefficients via the affine
    Farkas lemma, plus per-statement linear-independence constraints (eq. 6)
    and the non-trivial-solution constraint Σ cᵢ >= 1 (§4.2).

    When no hyperplane exists, the DDG restricted to unsatisfied dependences
    is cut between strongly connected components (adding a scalar dimension:
    loop distribution) or, failing that, satisfied dependences are dismissed
    and a new band of permutable loops is started. *)

open Types

type config = {
  coeff_bound : int;  (** upper bound for iterator coefficients (default 4) *)
  shift_bound : int;  (** upper bound for the constant coefficient c₀ *)
  u_bound : int;  (** upper bound for each component of [u] *)
  w_bound : int;  (** upper bound for [w] *)
  ctx : int;  (** parameter value for satisfaction tests *)
  input_deps : bool;  (** include read-read dependences in the bounding *)
  use_cost_bound : bool;
      (** apply the communication-volume bounding objective (4); disabling it
          leaves a legality-only search (an ablation of the paper's central
          design choice) *)
  budget : Milp.budget;
      (** resource budget for each hyperplane-search ILP; exhaustion is
          treated as "no hyperplane at this level" and the search degrades
          (cut / dismiss / [No_transform]) instead of running unboundedly *)
  search_time_limit_s : float option;
      (** CPU-time deadline for the whole search; when it passes, the next
          level raises [Diag.Budget_exceeded] (the per-ILP [budget] bounds
          single calls, but a search makes many of them) *)
}

let default_config =
  {
    coeff_bound = 4;
    shift_bound = 10;
    u_bound = 20;
    w_bound = 1000;
    ctx = 100;
    input_deps = true;
    use_cost_bound = true;
    budget = Milp.default_budget;
    search_time_limit_s = None;
  }

(* ------------------------- per-dependence caches ------------------------- *)

type dep_state = {
  dep : Deps.t;
  legality : Polyhedra.t option;  (* Farkas-eliminated, over the ILP vars *)
  bounding : Polyhedra.t;  (* v(p) - δ >= 0 (and + for input deps) *)
  mutable satisfied : int option;  (* level *)
  mutable dismissed : bool;  (* dropped when a previous band completed *)
}

(* ILP variable layout: the legality bound (u, w) at columns 0..np, a second
   bound (u', w') for input-dependence distances at columns np+1..2np+1 (a
   locality tie-breaker minimized after (u, w); see DESIGN.md), then per
   statement the iterator coefficients and the constant. *)
type layout = {
  nilp : int;
  np : int;  (* u at 0..np-1, w at np; u' at np+1..2np, w' at 2np+1 *)
  stmt_off : int array;  (* per statement id: first iterator coefficient *)
  stmt_depth : int array;
}

let make_layout (p : Ir.program) =
  let np = Ir.nparams p in
  let n = List.length p.Ir.stmts in
  let stmt_off = Array.make n 0 in
  let stmt_depth = Array.make n 0 in
  let off = ref (2 * (np + 1)) in
  List.iter
    (fun s ->
      let id = s.Ir.id in
      stmt_off.(id) <- !off;
      stmt_depth.(id) <- Ir.depth s;
      off := !off + Ir.depth s + 1)
    p.Ir.stmts;
  { nilp = !off; np; stmt_off; stmt_depth }

(* The symbolic affine form δ(s,t) = φ_dst(t) - φ_src(s) over a dependence's
   variables; coefficients are rows over the ILP variables. *)
let delta_form lay (d : Deps.t) : Farkas.symbolic_form =
  let ms = Ir.depth d.Deps.src and mt = Ir.depth d.Deps.dst in
  let np = lay.np in
  let width = ms + mt + np + 1 in
  let form = Array.init width (fun _ -> Array.make (lay.nilp + 1) 0) in
  let off_s = lay.stmt_off.(d.Deps.src.Ir.id) in
  let off_t = lay.stmt_off.(d.Deps.dst.Ir.id) in
  for j = 0 to ms - 1 do
    form.(j).(off_s + j) <- form.(j).(off_s + j) - 1
  done;
  for j = 0 to mt - 1 do
    form.(ms + j).(off_t + j) <- form.(ms + j).(off_t + j) + 1
  done;
  (* parameters carry no transformation coefficients (eq. 1) *)
  form.(width - 1).(off_t + mt) <- form.(width - 1).(off_t + mt) + 1;
  form.(width - 1).(off_s + ms) <- form.(width - 1).(off_s + ms) - 1;
  form

(* v(p) ± δ as a symbolic form: v(p) = u·p + w places u on the dependence
   polyhedron's parameter columns and w on the constant.  [which] selects the
   primary bound (legality dependences) or the secondary one (input
   dependences). *)
let bound_form lay (d : Deps.t) ~sign ~which : Farkas.symbolic_form =
  let ms = Ir.depth d.Deps.src and mt = Ir.depth d.Deps.dst in
  let np = lay.np in
  let base = match which with `Primary -> 0 | `Secondary -> np + 1 in
  let width = ms + mt + np + 1 in
  let delta = delta_form lay d in
  let form =
    Array.mapi (fun _ row -> Array.map (fun c -> sign * c) row) delta
  in
  for j = 0 to np - 1 do
    form.(ms + mt + j).(base + j) <- form.(ms + mt + j).(base + j) + 1
  done;
  form.(width - 1).(base + np) <- form.(width - 1).(base + np) + 1;
  form

let dep_state lay (d : Deps.t) =
  (* Marked reduction edges are dropped from the legality system — the order
     in which an associative/commutative update's instances combine is
     immaterial up to floating-point reassociation — but stay in the bounding
     objective so their communication/reuse volume is still priced. *)
  let legality =
    if Deps.is_hard d then
      Some (Farkas.constraints ~nilp:lay.nilp ~form:(delta_form lay d) ~poly:d.Deps.poly)
    else None
  in
  let bound which sign =
    Farkas.constraints ~nilp:lay.nilp
      ~form:(bound_form lay d ~sign ~which)
      ~poly:d.Deps.poly
  in
  let bounding =
    if Deps.is_hard d then bound `Primary (-1)
    else if Deps.is_legality d then
      (* a relaxed reduction edge no longer has a guaranteed δ sign, so it is
         bounded from both sides by the shared primary bound *)
      Polyhedra.meet (bound `Primary (-1)) (bound `Primary 1)
    else
      (* Input dependences are bounded from both sides (§4.1) by the shared
         bound (u, w) exactly as in the paper, and additionally by the
         secondary bound (u', w'), which is minimized after (u, w) and breaks
         ties in favour of smaller reuse distances (the refinement that makes
         the MVT fusion of §7 deterministic; see DESIGN.md). *)
      Polyhedra.meet
        (Polyhedra.meet (bound `Primary (-1)) (bound `Primary 1))
        (Polyhedra.meet (bound `Secondary (-1)) (bound `Secondary 1))
  in
  { dep = d; legality; bounding; satisfied = None; dismissed = false }

(* --------------------- concrete satisfaction checks ---------------------- *)

(* Fix the trailing [np] parameter columns of a dependence polyhedron. *)
let fix_params ~np ~ctx (poly : Polyhedra.t) =
  let nv = poly.Polyhedra.nvars in
  let fix =
    List.map
      (fun j ->
        let r = Vec.zero (nv + 1) in
        r.(nv - np + j) <- Bigint.one;
        r.(nv) <- Bigint.of_int (-ctx);
        Polyhedra.eq r)
      (Putil.range np)
  in
  Polyhedra.meet poly (Polyhedra.of_constrs nv fix)

let nonempty_int ~np ~ctx poly =
  (* On budget exhaustion answer "nonempty": every caller uses emptiness to
     justify an optimization (satisfaction, parallelism, dismissal), so the
     conservative answer only costs precision, never correctness. *)
  try
    let sys = fix_params ~np ~ctx poly in
    (* all variables integral (iteration counters), so integer-tightened
       canonical emptiness and the memoized feasibility test are sound *)
    if Polyhedra.is_empty_cached ~integer:true sys then false
    else Option.is_some (Milp.feasible_cached sys)
  with Diag.Budget_exceeded _ -> true

(* δ >= 1 everywhere on the dependence polyhedron (with params = ctx)? *)
let delta_always_ge1 ~np ~ctx (d : Deps.t) (delta : Vec.t) =
  let nv = d.Deps.poly.Polyhedra.nvars in
  let le0 = Vec.neg delta in
  (* δ <= 0  ==  -δ >= 0 *)
  let bad = Polyhedra.add d.Deps.poly (Polyhedra.ge le0) in
  ignore nv;
  not (nonempty_int ~np ~ctx bad)

(* Does δ take a non-zero value anywhere on the polyhedron? *)
let delta_has_component ~np ~ctx (d : Deps.t) (delta : Vec.t) =
  let width = Array.length delta in
  let plus =
    (* δ >= 1 *)
    let r = Vec.copy delta in
    r.(width - 1) <- Bigint.sub r.(width - 1) Bigint.one;
    Polyhedra.add d.Deps.poly (Polyhedra.ge r)
  in
  let minus =
    (* δ <= -1 *)
    let r = Vec.neg delta in
    r.(width - 1) <- Bigint.sub r.(width - 1) Bigint.one;
    Polyhedra.add d.Deps.poly (Polyhedra.ge r)
  in
  nonempty_int ~np ~ctx plus || nonempty_int ~np ~ctx minus

(* ------------------------------ main search ------------------------------ *)

exception No_transform of string

let bounds_constraints cfg lay =
  let n = lay.nilp in
  let ub j b =
    let r = Vec.zero (n + 1) in
    r.(j) <- Bigint.minus_one;
    r.(n) <- Bigint.of_int b;
    Polyhedra.ge r
  in
  let cs = ref [] in
  for j = 0 to lay.np - 1 do
    cs := ub j cfg.u_bound :: ub (lay.np + 1 + j) cfg.u_bound :: !cs
  done;
  cs := ub lay.np cfg.w_bound :: ub ((2 * lay.np) + 1) cfg.w_bound :: !cs;
  Array.iteri
    (fun id off ->
      for j = 0 to lay.stmt_depth.(id) - 1 do
        cs := ub (off + j) cfg.coeff_bound :: !cs
      done;
      cs := ub (off + lay.stmt_depth.(id)) cfg.shift_bound :: !cs)
    lay.stmt_off;
  Polyhedra.of_constrs n !cs

(* Linear independence (eq. 6): for each statement with previously found
   rows H, require every row r of the integer orthogonal complement to give
   r·c >= 0, and their sum >= 1.  For statements with no rows yet this
   degenerates to Σ cᵢ >= 1 over e_i, i.e. the trivial-solution avoidance.
   Statements already at full rank get no constraint (their row may be
   anything, including zero). *)
let independence_constraints lay (hmats : int array list array) =
  let n = lay.nilp in
  let cs = ref [] in
  Array.iteri
    (fun id rows ->
      let m = lay.stmt_depth.(id) in
      if m > 0 then begin
        let h =
          Mat.of_int_rows
            (Array.of_list (List.map (fun r -> Array.sub r 0 m) rows))
        in
        let ortho =
          if rows = [] then
            List.map
              (fun i -> Vec.init m (fun j -> if i = j then Bigint.one else Bigint.zero))
              (Putil.range m)
          else if Mat.rank h = m then []
          else Mat.orthogonal_complement h
        in
        if ortho <> [] then begin
          let off = lay.stmt_off.(id) in
          let sum = Vec.zero (n + 1) in
          List.iter
            (fun (row : Vec.t) ->
              let r = Vec.zero (n + 1) in
              for j = 0 to m - 1 do
                r.(off + j) <- row.(j);
                sum.(off + j) <- Bigint.add sum.(off + j) row.(j)
              done;
              cs := Polyhedra.ge r :: !cs)
            ortho;
          sum.(n) <- Bigint.minus_one;
          cs := Polyhedra.ge sum :: !cs
        end
      end)
    hmats;
  Polyhedra.of_constrs n !cs

let lexmin_priority lay =
  (* u, w first; then per statement the iterator coefficients innermost-first
     (preferring hyperplanes over outer iterators), constant last *)
  let order = ref [] in
  Array.iteri
    (fun id off ->
      let m = lay.stmt_depth.(id) in
      let stmt_order = List.rev (List.init m (fun j -> off + j)) @ [ off + m ] in
      order := !order @ stmt_order)
    lay.stmt_off;
  List.init (2 * (lay.np + 1)) (fun j -> j) @ !order

(* Extract per-statement rows (iterator coefficients + constant) from an ILP
   solution. *)
let rows_of_solution lay (x : Bigint.t array) =
  Array.mapi
    (fun id off ->
      let m = lay.stmt_depth.(id) in
      Array.init (m + 1) (fun j -> Bigint.to_int x.(off + j)))
    lay.stmt_off

let find_hyperplane cfg lay (states : dep_state list) hmats =
  let base = bounds_constraints cfg lay in
  let sys =
    List.fold_left
      (fun sys st ->
        if st.dismissed then sys
        else begin
          let sys =
            match st.legality with
            | Some l -> Polyhedra.meet sys l
            | None -> sys
          in
          if cfg.use_cost_bound && st.satisfied = None then
            Polyhedra.meet sys st.bounding
          else sys
        end)
      base states
  in
  let sys = Polyhedra.meet sys (independence_constraints lay hmats) in
  (* the per-dependence systems overlap heavily; dedup before the ILP *)
  let sys =
    match Polyhedra.simplify ~integer:true sys with
    | Some s -> s
    | None -> sys (* contradictory: let the ILP report infeasible *)
  in
  match Milp.lexmin_order ~nonneg:true ~budget:cfg.budget sys (lexmin_priority lay) with
  | None -> None
  | Some x -> Some (rows_of_solution lay x)

(* Number of linearly independent rows found so far for statement [id]. *)
let stmt_rank lay hmats id =
  let m = lay.stmt_depth.(id) in
  if m = 0 then 0
  else
    let rows = hmats.(id) in
    if rows = [] then 0
    else
      Mat.rank
        (Mat.of_int_rows (Array.of_list (List.map (fun r -> Array.sub r 0 m) rows)))

let transform ?(config = default_config) (p : Ir.program) (deps : Deps.t list) =
  let deps =
    if config.input_deps then deps
    else List.filter Deps.is_legality deps
  in
  let lay = make_layout p in
  let nstmts = List.length p.Ir.stmts in
  List.iteri
    (fun i s ->
      if s.Ir.id <> i then invalid_arg "Auto.transform: statement ids not sequential")
    p.Ir.stmts;
  let states = List.map (dep_state lay) deps in
  let hmats : int array list array = Array.make nstmts [] in
  let all_rows : int array array list ref = ref [] in
  let kinds = ref [] in
  let satisfied_at = Hashtbl.create 16 in
  let band = ref 0 in
  let level = ref 0 in
  let np = lay.np and ctx = config.ctx in
  let full_rank () =
    List.for_all (fun s -> stmt_rank lay hmats s.Ir.id >= Ir.depth s) p.Ir.stmts
  in
  let live_legality () =
    List.filter
      (fun st -> Deps.is_hard st.dep && st.satisfied = None)
      states
  in
  let mark_satisfaction rows =
    (* concrete δ per dependence; record first level at which min δ >= 1 *)
    List.iter
      (fun st ->
        if Deps.is_hard st.dep && st.satisfied = None then begin
          let d = st.dep in
          let row_s = rows.(d.Deps.src.Ir.id) in
          let row_t = rows.(d.Deps.dst.Ir.id) in
          let delta = Deps.satisfaction_row p d row_s row_t in
          if delta_always_ge1 ~np ~ctx d delta then begin
            st.satisfied <- Some !level;
            Hashtbl.replace satisfied_at d.Deps.id !level
          end
        end)
      states
  in
  let level_parallel rows =
    (* the level is parallel iff no live hard dependence has a non-zero
       component along it (marked reduction edges never serialize a loop) *)
    List.for_all
      (fun st ->
        (not (Deps.is_hard st.dep))
        || st.dismissed
        || (match st.satisfied with Some l when l < !level -> true | _ -> false)
        ||
        let d = st.dep in
        let delta =
          Deps.satisfaction_row p d rows.(d.Deps.src.Ir.id) rows.(d.Deps.dst.Ir.id)
        in
        not (delta_has_component ~np ~ctx d delta))
      states
  in
  let add_scalar_cut comp =
    let rows =
      Array.init nstmts (fun id ->
          let m = lay.stmt_depth.(id) in
          Array.init (m + 1) (fun j -> if j = m then comp.(id) else 0))
    in
    all_rows := rows :: !all_rows;
    kinds := Scalar :: !kinds;
    (* mark cross-component dependences satisfied *)
    List.iter
      (fun st ->
        if Deps.is_hard st.dep && st.satisfied = None then begin
          let cs = comp.(st.dep.Deps.src.Ir.id)
          and cd = comp.(st.dep.Deps.dst.Ir.id) in
          if cd > cs then begin
            st.satisfied <- Some !level;
            Hashtbl.replace satisfied_at st.dep.Deps.id !level
          end
        end)
      states;
    incr level;
    incr band
    (* a scalar dimension ends the current permutable band *)
  in
  (* Does the dependence still have a pair at distance zero on ALL levels
     found so far?  (If not, every pair already has a strictly positive
     leading component: the dependence is weakly satisfied.) *)
  let weakly_unordered st =
    let d = st.dep in
    let current_rows = List.rev !all_rows in
    let zero_eqs =
      List.map
        (fun lv ->
          let delta =
            Deps.satisfaction_row p d lv.(d.Deps.src.Ir.id) lv.(d.Deps.dst.Ir.id)
          in
          Polyhedra.eq delta)
        current_rows
    in
    let sys =
      Polyhedra.meet d.Deps.poly
        (Polyhedra.of_constrs d.Deps.poly.Polyhedra.nvars zero_eqs)
    in
    nonempty_int ~np ~ctx sys
  in
  let stuck_reason = ref "" in
  let budget_note = ref None in
  let deadline =
    Option.map (fun dt -> Sys.time () +. dt) config.search_time_limit_s
  in
  let check_deadline () =
    match deadline with
    | Some d when Sys.time () > d ->
        raise
          (Diag.Budget_exceeded
             (Printf.sprintf "transformation search exceeded %gs (level %d)"
                (Option.get config.search_time_limit_s)
                !level))
    | _ -> ()
  in
  (* Budget exhaustion in the per-level ILP is "no hyperplane found at this
     level": the search falls through to its cut/dismiss machinery and, if
     that cannot make progress either, reports [No_transform] — which the
     driver's degradation ladder turns into a warning, not a crash. *)
  let find_hyperplane_bounded () =
    check_deadline ();
    try find_hyperplane config lay states hmats
    with Diag.Budget_exceeded msg ->
      budget_note := Some msg;
      None
  in
  let progress = ref true in
  while
    !progress
    && ((not (full_rank ())) || live_legality () <> [])
    && !level < 2 * (Putil.list_max (List.map (fun s -> Ir.depth s) p.Ir.stmts) + nstmts + 2)
  do
    match find_hyperplane_bounded () with
    | Some rows when Array.exists (fun (r : int array) ->
          Array.exists (fun c -> c <> 0) r) rows ->
        (* accept; a statement at full rank may legitimately get a zero row *)
        all_rows := rows :: !all_rows;
        Array.iteri
          (fun id r ->
            if stmt_rank lay hmats id < lay.stmt_depth.(id) then
              hmats.(id) <- hmats.(id) @ [ r ])
          rows;
        mark_satisfaction rows;
        let parallel = level_parallel rows in
        kinds := Loop { band = !band; parallel } :: !kinds;
        incr level
    | Some _ | None -> (
        (* cut between SCCs of the unsatisfied-dependence graph, if useful *)
        let live = live_legality () in
        let edges =
          List.map (fun st -> (st.dep.Deps.src.Ir.id, st.dep.Deps.dst.Ir.id)) live
        in
        let comp, ncomp = Ddg.sccs ~nstmts edges in
        let cross =
          List.exists
            (fun st ->
              comp.(st.dep.Deps.src.Ir.id) <> comp.(st.dep.Deps.dst.Ir.id))
            live
        in
        if ncomp > 1 && cross then add_scalar_cut comp
        else begin
          (* start a new band: dismiss satisfied dependences *)
          let dismissed_any = ref false in
          List.iter
            (fun st ->
              if (not st.dismissed) && st.satisfied <> None then begin
                st.dismissed <- true;
                dismissed_any := true
              end)
            states;
          if not !dismissed_any then begin
            (* Weak-satisfaction fallback: a live dependence whose pairs all
               have a strictly positive component at some previous level is
               already correctly ordered by the prefix (δ >= 0 held at every
               level it lived through), even though no single level
               dominates it; such dependences can never be strongly
               satisfied under non-negative coefficients (e.g. permuted
               self-dependences), so dismiss them to unblock the search. *)
            List.iter
              (fun st ->
                if
                  (not st.dismissed) && st.satisfied = None
                  && Deps.is_hard st.dep
                  && not (weakly_unordered st)
                then begin
                  st.dismissed <- true;
                  (* weakly satisfied: ordered by the whole prefix; not
                     recorded in [satisfied_at], which lists only strong
                     (single-level) satisfaction *)
                  st.satisfied <- Some (max 0 (!level - 1));
                  dismissed_any := true
                end)
              states
          end;
          if !dismissed_any then incr band
          else begin
            progress := false;
            stuck_reason :=
              Printf.sprintf
                "no hyperplane, no useful cut, nothing to dismiss (level %d, %d live deps)%s"
                !level (List.length live)
                (match !budget_note with
                | Some b -> "; solver budget exhausted: " ^ b
                | None -> "")
          end
        end)
  done;
  if (not (full_rank ())) && !progress = false then
    raise (No_transform !stuck_reason);
  (* Live dependences at this point have δ >= 0 at every level (they were
     never dismissed).  Pairs with a strictly positive component at some
     level are correctly ordered; only pairs with δ = 0 at ALL levels still
     need ordering — by a trailing scalar dimension reflecting a topological
     order of the statements they relate. *)
  let residual = List.filter weakly_unordered (live_legality ()) in
  if residual <> [] then begin
    let edges =
      List.map
        (fun st -> (st.dep.Deps.src.Ir.id, st.dep.Deps.dst.Ir.id))
        residual
    in
    let comp, ncomp = Ddg.sccs ~nstmts edges in
    if ncomp > 1 then add_scalar_cut comp
    else if nstmts > 1 then
      raise (No_transform "cyclic unsatisfied dependences at full rank")
  end;
  let kinds = Array.of_list (List.rev !kinds) in
  let levels = List.rev !all_rows in
  let nlevels = List.length levels in
  let rows =
    Array.init nstmts (fun id ->
        Array.of_list (List.map (fun lv -> lv.(id)) levels))
  in
  ignore !band;
  { program = p; deps; nlevels; kinds; rows; satisfied_at }

(* ------------------------------- printing ------------------------------- *)

let pp_transform fmt (t : transform) =
  Format.fprintf fmt "@[<v>transform: %d levels@," t.nlevels;
  Array.iteri
    (fun l k -> Format.fprintf fmt "  level %d: %s@," l (level_kind_name k))
    t.kinds;
  List.iter
    (fun s ->
      let names =
        Array.of_list (s.Ir.iters @ [ "1" ])
      in
      ignore names;
      Format.fprintf fmt "  %s:@," s.Ir.name;
      Array.iteri
        (fun l row ->
          let iter_names = Array.of_list s.Ir.iters in
          Format.fprintf fmt "    c%d = %a@," (l + 1)
            (Ir.pp_affine_row iter_names) row)
        t.rows.(s.Ir.id))
    t.program.Ir.stmts;
  Format.fprintf fmt "@]"

(* ---------------- annotation of externally supplied transforms ----------- *)

(** [annotate p deps ~rows ~scalar] rebuilds satisfaction bookkeeping and
    parallelism flags for a transformation supplied from outside (the
    identity transformation, or a baseline scheme such as Lim/Lam affine
    partitioning or a Feautrier schedule).  [rows.(stmt_id)] are the
    statement's scattering rows (width depth+1); [scalar.(l)] marks static
    levels.  Band structure: consecutive non-scalar levels form one band per
    maximal run (callers can re-band afterwards if they know better). *)
let annotate ?(config = default_config) (p : Ir.program) (deps : Deps.t list)
    ~(rows : int array array array) ~(scalar : bool array) : transform =
  let nlevels = Array.length scalar in
  let np = Ir.nparams p and ctx = config.ctx in
  let legality = List.filter Deps.is_hard deps in
  let satisfied_at = Hashtbl.create 16 in
  let live = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace live d.Deps.id d) legality;
  let kinds = Array.make nlevels Scalar in
  let band = ref 0 in
  let prev_scalar = ref false in
  for l = 0 to nlevels - 1 do
    if scalar.(l) then begin
      (* scalar level: satisfies deps whose constant difference is >= 1 *)
      Hashtbl.iter
        (fun id d ->
          let rs = rows.(d.Deps.src.Ir.id).(l) in
          let rt = rows.(d.Deps.dst.Ir.id).(l) in
          let cs = rs.(Array.length rs - 1) and ct = rt.(Array.length rt - 1) in
          if ct > cs then begin
            Hashtbl.replace satisfied_at id l;
            Hashtbl.remove live id
          end)
        (Hashtbl.copy live);
      kinds.(l) <- Scalar;
      prev_scalar := true
    end
    else begin
      if !prev_scalar then incr band;
      prev_scalar := false;
      let newly = ref [] in
      Hashtbl.iter
        (fun id d ->
          let delta =
            Deps.satisfaction_row p d
              rows.(d.Deps.src.Ir.id).(l)
              rows.(d.Deps.dst.Ir.id).(l)
          in
          if delta_always_ge1 ~np ~ctx d delta then newly := (id, d) :: !newly)
        live;
      List.iter
        (fun (id, _) ->
          Hashtbl.replace satisfied_at id l;
          Hashtbl.remove live id)
        !newly;
      (* parallel iff no dependence live at entry to this level (including
         those satisfied exactly here) has a component along it *)
      let parallel =
        !newly = []
        && Hashtbl.fold
             (fun _ d acc ->
               acc
               &&
               let delta =
                 Deps.satisfaction_row p d
                   rows.(d.Deps.src.Ir.id).(l)
                   rows.(d.Deps.dst.Ir.id).(l)
               in
               not (delta_has_component ~np ~ctx d delta))
             live true
      in
      kinds.(l) <- Loop { band = !band; parallel }
    end
  done;
  {
    program = p;
    deps;
    nlevels;
    kinds;
    rows;
    satisfied_at;
  }

(** The identity (original-order) transformation: levels alternate the static
    position and the loop iterators, i.e. the classic 2d+1 scattering.  Used
    as the oracle order and as the "native compiler" baseline. *)
let identity_transform ?config (p : Ir.program) (deps : Deps.t list) : transform =
  let maxd = List.fold_left (fun a s -> max a (Ir.depth s)) 0 p.Ir.stmts in
  let nlevels = (2 * maxd) + 1 in
  let scalar = Array.init nlevels (fun l -> l mod 2 = 0) in
  let rows =
    Array.of_list
      (List.map
         (fun s ->
           let m = Ir.depth s in
           Array.init nlevels (fun l ->
               let row = Array.make (m + 1) 0 in
               if l mod 2 = 0 then begin
                 let k = l / 2 in
                 if k <= m then row.(m) <- s.Ir.static.(k)
               end
               else begin
                 let k = l / 2 in
                 if k < m then row.(k) <- 1
               end;
               row))
         p.Ir.stmts)
  in
  annotate ?config p deps ~rows ~scalar

(** Internal entry points exposed for profiling/tests. *)
module For_tests = struct
  type nonrec dep_state = dep_state

  let dep_states p ds =
    let lay = make_layout p in
    List.map (dep_state lay) ds
end
