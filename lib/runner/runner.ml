type result = {
  wall_seconds : float;
  checksums : (string * string) list;
}

let cc_default = "gcc"

let available () = Sys.command "which gcc > /dev/null 2> /dev/null" = 0

let with_temp_dir f = Pool.with_temp_dir ~prefix:"pluto_native" f

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* First lines of a captured stderr file, bounded so a chatty binary cannot
   blow up the failure message. *)
let stderr_excerpt path =
  match read_lines path with
  | [] | (exception Sys_error _) -> "(stderr empty)"
  | lines ->
      let lines, truncated =
        if List.length lines > 25 then (List.filteri (fun i _ -> i < 25) lines, true)
        else (lines, false)
      in
      String.concat "\n" (lines @ if truncated then [ "... (truncated)" ] else [])

let timeout_available =
  lazy (Sys.command "which timeout > /dev/null 2> /dev/null" = 0)

let run ?(cc = cc_default) ?(cflags = [ "-O2" ]) ?(openmp = true) ?timeout_s
    code ~params =
  if not (available ()) then None
  else
    with_temp_dir (fun dir ->
        let src = Filename.concat dir "gen.c" in
        let exe = Filename.concat dir "gen" in
        let out = Filename.concat dir "out" in
        (* fault site: the generated source never reaches the disk *)
        Fault.sys_error "runner.write_src";
        let oc = open_out src in
        let fmt = Format.formatter_of_out_channel oc in
        Codegen.print_c ~instrument:true fmt code;
        Format.pp_print_flush fmt ();
        close_out oc;
        let defines =
          String.concat " "
            (List.map (fun (k, v) -> Printf.sprintf "-D%s=%d" k v) params)
        in
        let cmd =
          Printf.sprintf "%s %s %s %s -o %s %s 2> %s/cc.err" cc
            (String.concat " " cflags)
            (if openmp then "-fopenmp" else "")
            defines exe src dir
        in
        let cc_rc = if Fault.fire "runner.cc.fail" then 127 else Sys.command cmd in
        if cc_rc <> 0 then
          failwith
            (Printf.sprintf "Runner: C compilation failed:\n%s"
               (stderr_excerpt (dir ^ "/cc.err")));
        let run_prefix =
          match timeout_s with
          | Some t when Lazy.force timeout_available ->
              Printf.sprintf "timeout %g " t
          | _ -> ""
        in
        let rc =
          if Fault.fire "runner.run.fail" then 1
          else
            Sys.command
              (Printf.sprintf "%s%s > %s 2> %s/run.err" run_prefix exe out dir)
        in
        if rc = 124 && run_prefix <> "" then
          failwith
            (Printf.sprintf "Runner: generated binary timed out after %gs"
               (Option.get timeout_s));
        if rc <> 0 then
          failwith
            (Printf.sprintf
               "Runner: generated binary failed (exit code %d):\n%s" rc
               (stderr_excerpt (dir ^ "/run.err")));
        let lines = read_lines out in
        let wall = ref nan and sums = ref [] in
        List.iter
          (fun line ->
            match String.split_on_char ' ' (String.trim line) with
            | [ "time"; v ] -> wall := float_of_string v
            | [ "checksum"; name; v ] -> sums := (name, v) :: !sums
            | _ -> ())
          lines;
        Some { wall_seconds = !wall; checksums = List.rev !sums })

let validate ?timeout_s a b ~params =
  match (run ?timeout_s a ~params, run ?timeout_s b ~params) with
  | Some ra, Some rb ->
      Some
        (List.length ra.checksums = List.length rb.checksums
        && List.for_all2
             (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && String.equal v1 v2)
             ra.checksums rb.checksums)
  | _ -> None
