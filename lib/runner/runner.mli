(** Native execution backend: compile the generated C with a real C compiler
    and run it on the host.

    This complements the deterministic simulator ({!Machine}) with the real
    thing where a toolchain is available: the instrumented driver emitted by
    [Codegen.print_c ~instrument:true] initializes arrays deterministically,
    times the nest and prints position-weighted per-array checksums, so two
    transformed variants of the same program can be cross-validated on real
    hardware (bitwise-equal checksums) and timed.

    Note: the build container for this repository has a single CPU core, so
    native OpenMP runs cannot demonstrate parallel speedups — that is what
    the simulator is for (DESIGN.md §1); native runs validate correctness
    and sequential locality. *)

type result = {
  wall_seconds : float;
  checksums : (string * string) list;  (** array name -> printed checksum *)
}

(** [available ()] — is a C compiler usable on this host? *)
val available : unit -> bool

(** [run ?cc ?cflags ?openmp ?timeout_s code ~params] writes the instrumented
    C, builds and runs it with each parameter bound via [-D].  Returns [None]
    when no compiler is available; raises [Failure] on compile or run errors
    — the message includes a bounded excerpt of the captured stderr.  With
    [timeout_s] the binary is run under coreutils [timeout] (when present)
    and a run exceeding the limit raises [Failure] mentioning the timeout
    instead of hanging the caller. *)
val run :
  ?cc:string ->
  ?cflags:string list ->
  ?openmp:bool ->
  ?timeout_s:float ->
  Codegen.t ->
  params:(string * int) list ->
  result option

(** [validate ?timeout_s a b ~params] runs two variants and checks their
    checksums are identical (same program semantics on real hardware).
    [None] if no compiler. *)
val validate :
  ?timeout_s:float ->
  Codegen.t ->
  Codegen.t ->
  params:(string * int) list ->
  bool option
