(* See stats.mli.  Plain global hashtables; no locking (the compiler is
   single-threaded per process, and the tuner's forked workers each get their
   own copy-on-write tables). *)

let counters_tbl : (string, int) Hashtbl.t = Hashtbl.create 32
let timers_tbl : (string, float * int) Hashtbl.t = Hashtbl.create 16

let reset () =
  Hashtbl.reset counters_tbl;
  Hashtbl.reset timers_tbl

let add k n =
  match Hashtbl.find_opt counters_tbl k with
  | Some v -> Hashtbl.replace counters_tbl k (v + n)
  | None -> Hashtbl.replace counters_tbl k n

let incr k = add k 1
let counter k = Option.value ~default:0 (Hashtbl.find_opt counters_tbl k)

let add_time k dt =
  match Hashtbl.find_opt timers_tbl k with
  | Some (t, n) -> Hashtbl.replace timers_tbl k (t +. dt, n + 1)
  | None -> Hashtbl.replace timers_tbl k (dt, 1)

let time k f =
  let t0 = Sys.time () in
  Fun.protect ~finally:(fun () -> add_time k (Sys.time () -. t0)) f

let counters () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters_tbl []
  |> List.sort compare

(* A snapshot is plain data (no closures), so it survives Marshal across the
   fork boundary: workers reset, do their task, snapshot, and ship the
   snapshot up the result pipe for the parent to merge. *)
type snapshot = {
  snap_counters : (string * int) list;
  snap_timers : (string * float * int) list;
}

let snapshot () =
  {
    snap_counters =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters_tbl [];
    snap_timers =
      Hashtbl.fold (fun k (t, n) acc -> (k, t, n) :: acc) timers_tbl [];
  }

let merge s =
  List.iter (fun (k, v) -> add k v) s.snap_counters;
  List.iter
    (fun (k, t, n) ->
      match Hashtbl.find_opt timers_tbl k with
      | Some (t0, n0) -> Hashtbl.replace timers_tbl k (t0 +. t, n0 + n)
      | None -> Hashtbl.replace timers_tbl k (t, n))
    s.snap_timers

let snapshot_counter s k =
  match List.assoc_opt k s.snap_counters with Some v -> v | None -> 0

let snapshot_counters s = List.sort compare s.snap_counters

let timers () =
  Hashtbl.fold (fun k (t, n) acc -> (k, t, n) :: acc) timers_tbl []
  |> List.sort compare

(* Hand-rolled JSON: keys are our own identifiers (no exotic characters),
   but escape anyway so the output is always well-formed. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json () =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"counters\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "%s: %d" (json_string k) v))
    (counters ());
  Buffer.add_string b "}, \"timers\": {";
  List.iteri
    (fun i (k, t, n) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "%s: {\"seconds\": %.6f, \"calls\": %d}"
           (json_string k) t n))
    (timers ());
  Buffer.add_string b "}}";
  Buffer.contents b
