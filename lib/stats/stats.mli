(** Global pass/solver counters and timers — cheap observability for the
    whole pipeline.

    Layers bump named counters ({!incr}, {!add}) and wrap phases in {!time};
    the CLI renders everything as JSON ([plutocc --stats]) and the autotuner
    folds the numbers into its search report.  Counters are process-global
    and monotonic between {!reset}s; all operations are O(1) hashtable
    updates, so leaving the hooks enabled costs nothing measurable next to
    the ILP solves they count.

    Established keys (grep for callers before renaming):
    - ["milp.solves"], ["milp.bb_nodes"] — ILP calls / branch-and-bound nodes;
    - ["milp.pivots"] — simplex pivots (primal and dual);
    - ["milp.cold_builds"] — simplex dictionaries built from scratch;
    - ["milp.warm_starts"] — branch-and-bound nodes and lexmin coordinates
      served by re-optimizing an inherited dictionary;
    - ["milp.dual_stalls"] — warm dictionaries abandoned after the
      dual-simplex pivot cap (fell back to a cold solve);
    - ["milp.feasible_cache_hits"] / ["milp.feasible_cache_misses"] — memoized
      integer-feasibility probes;
    - ["milp.lp_cache_hits"] / ["milp.lp_cache_misses"] — memoized rational
      LP calls;
    - ["milp.cache_evictions"] — entries LRU-evicted from the in-memory
      LP/feasibility caches past the {!Milp.set_cache_budget} entry budget;
    - ["poly.empty_cache_hits"] / ["poly.empty_cache_misses"] — memoized
      emptiness tests on canonicalized systems;
    - ["poly.cache_evictions"] — the same eviction counter for the
      emptiness cache ({!Polyhedra.set_cache_budget});
    - ["fm.eliminations"], ["fm.rows_eliminated"] — Fourier–Motzkin steps and
      the rows they removed;
    - ["machine.simulations"], ["machine.l1_misses"], ["machine.l2_misses"],
      ["machine.mem_accesses"] — performance-model cache events;
    - ["tune.evaluated"], ["tune.cache_hits"], ["tune.pruned"] — autotuner;
    - ["pool.tasks"], ["pool.spawned"], ["pool.crashes"], ["pool.retries"],
      ["pool.timeouts"], ["pool.backoff_waits"], ["pool.eintr_retries"] —
      the shared fork worker pool ([lib/pool]; spawned counts forked
      workers only, so it is the one family of counters that legitimately
      differs between [--jobs 1] and [--jobs N]; backoff_waits counts
      retries that waited out an exponential-backoff delay, eintr_retries
      counts interrupted pipe reads that were resumed);
    - ["store.hits"] / ["store.misses"] / ["store.writes"] /
      ["store.evictions"] — the persistent on-disk solver store
      ([--cache-dir]; an eviction is a corrupt or version-skewed entry
      deleted and recomputed);
    - ["store.write_failures"] — publishes abandoned because an I/O step
      failed (the tmp file is cleaned up and the result simply not cached);
    - ["store.lru_evictions"] — entries removed to fit the [--cache-size]
      byte budget; ["store.gc_orphans"] — files collected by {!Store.gc}
      (orphaned tmps from crashed writers, stale lock and legacy files);
    - ["fastpath.attempts"] / ["fastpath.accepts"] / ["fastpath.rejects"] —
      the fast fusion/dimension-matching scheduling rung ([--fast-schedule],
      the default): attempts counts entries into the rung, accepts counts
      translation-validated schedules actually used, rejects counts clean
      fall-throughs to the exact ILP (matcher give-up, unprofitable band
      shape, validation failure, or crash — every reject is also a
      ["fastpath-rejected"] warning);
    - ["fastpath.ilp_avoided"] — a lower-bound estimate of the ILP solves
      an accept saved: one hyperplane-lexmin solve per loop level of the
      accepted schedule (the exact search solves at least that many);
    - ["fault.injected"] and per-site ["fault.<site>"] — faults fired by
      the deterministic injection harness ([lib/fault], [PLUTO_FAULT_*]);
      always 0 unless a fault config is installed;
    - ["server.connections"] / ["server.requests"] — the compile daemon
      ([plutod], [lib/server]): accepted client connections and protocol
      lines received (every op, well-formed or not);
    - ["server.compiles"] — compile jobs actually dispatched onto a forked
      worker (a request answered from a cache, the store, or an in-flight
      duplicate does not count);
    - ["server.dedup_coalesced"] — requests that joined an identical
      in-flight compile instead of starting their own (N clients sending
      the same program+options while it compiles → 1 compile, N−1
      coalesced);
    - ["server.result_cache_hits"] / ["server.result_cache_misses"] — the
      daemon's in-memory LRU of finished compile results, keyed by the
      request digest; misses then consult the persistent store
      (["server.result_store_hits"] when that saves the compile);
    - ["server.cache_absorbed"] — in-memory solver-cache entries journaled
      by workers and replayed into the daemon's hot tables
      ({!Milp.absorb_cache_journal}, {!Polyhedra.absorb_cache_journal});
    - ["server.failures"] — compile requests answered with status
      ["error"] (including ["server.deadline_expired"], requests whose
      worker was killed at the per-request deadline);
    - ["server.busy_rejections"] — requests (or whole connections, over
      [--max-connections]) answered with the structured ["server-busy"]
      entry at admission: pipeline window full ([--max-pipeline]) or
      job queue full ([--max-queue]); clients fall back to local
      compilation ({!Client.is_busy});
    - ["server.bad_requests"] — protocol lines answered with the
      structured ["bad-request"] entry (unparseable JSON, unknown op,
      missing source, or a request line over [--max-request-bytes] —
      the last also closes the connection);
    - ["server.slow_reader_stalls"] — connections taken out of the read
      set because their unread responses exceeded [--max-output-bytes]
      (re-admitted once the client drains; counts stall transitions,
      not polls);
    - ["server.cache_evicted"] — solver-cache entries evicted while
      absorbing worker journals under [--solver-cache-entries] (the
      absorption-side aggregate of ["milp.cache_evictions"] +
      ["poly.cache_evictions"]);
    - ["server.jobs_abandoned"] — queued compile jobs dropped unstarted
      because every waiting client had already disconnected;
    - ["server.crashes"] — unexpected event-loop exceptions caught by
      the daemon's last-resort guard (the offending connection is
      closed, the daemon survives; 0 in every healthy run — the load
      suite enforces it);
    - timers ["pass.deps"], ["pass.transform"], ["pass.codegen"]. *)

(** Forget all counters and timers (tests and the tuner's workers use this to
    scope measurements). *)
val reset : unit -> unit

(** [incr k] — add 1 to counter [k] (created at 0 on first use). *)
val incr : string -> unit

(** [add k n] — add [n] to counter [k]. *)
val add : string -> int -> unit

(** [time k f] — run [f ()], adding its wall-clock-ish duration
    ([Sys.time], CPU seconds — no Unix dependency) to timer [k] and bumping
    its call count.  Exceptions propagate; the time still gets recorded. *)
val time : string -> (unit -> 'a) -> 'a

val counter : string -> int

(** All counters, sorted by name. *)
val counters : unit -> (string * int) list

(** {2 Cross-process aggregation}

    A {!snapshot} is plain marshalable data.  The worker-pool protocol is:
    the forked worker calls {!reset} first (dropping the counters inherited
    from the parent's address space), runs its task, ships [snapshot ()]
    with the result, and the parent {!merge}s it — so [--stats] totals are
    identical whether a task ran in-process or on a forked worker. *)

type snapshot

(** Capture every counter and timer as a marshalable value. *)
val snapshot : unit -> snapshot

(** Add a snapshot's counters and timers into the live tables. *)
val merge : snapshot -> unit

(** Read one counter out of a snapshot (0 when absent). *)
val snapshot_counter : snapshot -> string -> int

(** All counters of a snapshot, sorted by name (the daemon uses this to
    embed a worker's per-request delta in its response). *)
val snapshot_counters : snapshot -> (string * int) list

(** All timers, sorted by name: (name, total seconds, calls). *)
val timers : unit -> (string * float * int) list

(** Everything as one JSON object:
    [{"counters": {...}, "timers": {"k": {"seconds": s, "calls": n}}}]. *)
val to_json : unit -> string
