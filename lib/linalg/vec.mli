(** Dense vectors of big integers — constraint rows and transformation
    coefficients throughout the polyhedral layers. *)

type t = Bigint.t array

val make : int -> Bigint.t -> t
val zero : int -> t
val init : int -> (int -> Bigint.t) -> t
val of_int_array : int array -> t
val of_int_list : int list -> t

(** @raise Failure if an entry does not fit a native int. *)
val to_int_array : t -> int array

val copy : t -> t
val length : t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : Bigint.t -> t -> t

(** [dot a b] — inner product.
    @raise Invalid_argument on length mismatch. *)
val dot : t -> t -> Bigint.t

(** [content t] — the gcd of all entries (non-negative; 0 for the zero
    vector). *)
val content : t -> Bigint.t

(** [normalize t] divides through by the content, making the vector
    primitive; the zero vector is returned unchanged. *)
val normalize : t -> t

(** Total order: by length, then lexicographically entry-wise.  Used to sort
    constraint rows into canonical form. *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
