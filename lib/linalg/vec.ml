(** Dense vectors of big integers. *)

type t = Bigint.t array

let make n v : t = Array.make n v
let zero n : t = Array.make n Bigint.zero
let init = Array.init
let of_int_array a : t = Array.map Bigint.of_int a
let of_int_list l : t = of_int_array (Array.of_list l)
let to_int_array (t : t) = Array.map Bigint.to_int t
let copy : t -> t = Array.copy
let length : t -> int = Array.length
let equal (a : t) (b : t) = Array.length a = Array.length b && Putil.array_for_all2 Bigint.equal a b
let is_zero (t : t) = Array.for_all Bigint.is_zero t
let neg (t : t) : t = Array.map Bigint.neg t
let add (a : t) (b : t) : t = Array.map2 Bigint.add a b
let sub (a : t) (b : t) : t = Array.map2 Bigint.sub a b
let scale k (t : t) : t = Array.map (Bigint.mul k) t

let dot (a : t) (b : t) =
  if Array.length a <> Array.length b then invalid_arg "Vec.dot";
  let acc = ref Bigint.zero in
  Array.iteri (fun i ai -> acc := Bigint.add !acc (Bigint.mul ai b.(i))) a;
  !acc

(** Greatest common divisor of all entries (non-negative; 0 for zero vector). *)
let content (t : t) = Array.fold_left Bigint.gcd Bigint.zero t

(** Divide through by the content, making the vector primitive.  The zero
    vector is returned unchanged. *)
let normalize (t : t) : t =
  let g = content t in
  if Bigint.is_zero g || Bigint.is_one g then t
  else Array.map (fun x -> Bigint.div x g) t

(* Lexicographic entry-wise order; shorter vectors sort first.  Gives
   constraint rows a stable total order for canonicalization. *)
let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go j =
      if j >= la then 0
      else
        let c = Bigint.compare a.(j) b.(j) in
        if c <> 0 then c else go (j + 1)
    in
    go 0

let pp fmt (t : t) =
  Format.fprintf fmt "[%a]" (Putil.pp_list "; " Bigint.pp) (Array.to_list t)

let to_string t = Putil.string_of_format pp t
