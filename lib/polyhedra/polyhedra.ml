type kind = Eq | Ge

type constr = { kind : kind; coefs : Vec.t }

type t = { nvars : int; cs : constr list }

let check_len nvars (v : Vec.t) =
  if Vec.length v <> nvars + 1 then
    invalid_arg
      (Printf.sprintf "Polyhedra: constraint width %d, expected %d"
         (Vec.length v) (nvars + 1))

let ge coefs = { kind = Ge; coefs }
let eq coefs = { kind = Eq; coefs }
let ge_ints l = ge (Vec.of_int_list l)
let eq_ints l = eq (Vec.of_int_list l)
let universe nvars = { nvars; cs = [] }

let of_constrs nvars cs =
  List.iter (fun c -> check_len nvars c.coefs) cs;
  { nvars; cs }

let add t c =
  check_len t.nvars c.coefs;
  { t with cs = c :: t.cs }

let meet a b =
  if a.nvars <> b.nvars then invalid_arg "Polyhedra.meet: dimension mismatch";
  { a with cs = a.cs @ b.cs }

let insert_vars t ~at ~count =
  if at < 0 || at > t.nvars || count < 0 then invalid_arg "Polyhedra.insert_vars";
  let widen c =
    let coefs =
      Array.init
        (t.nvars + count + 1)
        (fun j ->
          if j < at then c.coefs.(j)
          else if j < at + count then Bigint.zero
          else c.coefs.(j - count))
    in
    { c with coefs }
  in
  { nvars = t.nvars + count; cs = List.map widen t.cs }

let drop_vars t ~at ~count =
  if at < 0 || at + count > t.nvars || count < 0 then invalid_arg "Polyhedra.drop_vars";
  let narrow c =
    for j = at to at + count - 1 do
      if not (Bigint.is_zero c.coefs.(j)) then
        invalid_arg "Polyhedra.drop_vars: variable still constrained"
    done;
    let coefs =
      Array.init
        (t.nvars - count + 1)
        (fun j -> if j < at then c.coefs.(j) else c.coefs.(j + count))
    in
    { c with coefs }
  in
  { nvars = t.nvars - count; cs = List.map narrow t.cs }

let rename t perm =
  if Array.length perm <> t.nvars then invalid_arg "Polyhedra.rename";
  let permute c =
    let coefs =
      Array.init (t.nvars + 1) (fun j ->
          if j = t.nvars then c.coefs.(t.nvars) else c.coefs.(perm.(j)))
    in
    { c with coefs }
  in
  { t with cs = List.map permute t.cs }

let involves c v = not (Bigint.is_zero c.coefs.(v))

let constr_value c p =
  let n = Array.length c.coefs - 1 in
  if Array.length p <> n then invalid_arg "Polyhedra.constr_value";
  let acc = ref c.coefs.(n) in
  for j = 0 to n - 1 do
    acc := Bigint.add !acc (Bigint.mul c.coefs.(j) p.(j))
  done;
  !acc

let sat_point t p =
  List.for_all
    (fun c ->
      let v = constr_value c p in
      match c.kind with Eq -> Bigint.is_zero v | Ge -> Bigint.sign v >= 0)
    t.cs

let equal_constr a b = a.kind = b.kind && Vec.equal a.coefs b.coefs

(* A constraint whose variable part is all-zero is trivially decidable. *)
let var_part_zero c =
  let n = Array.length c.coefs - 1 in
  let rec loop j = j >= n || (Bigint.is_zero c.coefs.(j) && loop (j + 1)) in
  loop 0

let normalize_constr ~integer c =
  if var_part_zero c then begin
    let k = c.coefs.(Array.length c.coefs - 1) in
    let sat =
      match c.kind with Eq -> Bigint.is_zero k | Ge -> Bigint.sign k >= 0
    in
    if sat then Ok None else Error ()
  end
  else begin
    let n = Array.length c.coefs - 1 in
    (* content of the variable part only *)
    let g = ref Bigint.zero in
    for j = 0 to n - 1 do
      g := Bigint.gcd !g c.coefs.(j)
    done;
    let g = !g in
    if Bigint.is_one g then Ok (Some c)
    else
      match c.kind with
      | Eq ->
          if Bigint.is_zero (Bigint.rem c.coefs.(n) g) then
            Ok (Some { c with coefs = Array.map (fun x -> Bigint.div x g) c.coefs })
          else if integer then
            (* g divides every variable term but not the constant, so the
               left-hand side is ≡ k (mod g) with k ≠ 0 at every integer
               point: the equality — and the whole system — is unsatisfiable.
               (Over the rationals the row is still fine, hence the gate.) *)
            Error ()
          else Ok (Some { c with coefs = Vec.normalize c.coefs })
      | Ge ->
          if integer then
            Ok
              (Some
                 { c with
                   coefs =
                     Array.mapi
                       (fun j x ->
                         if j = n then Bigint.fdiv x g else Bigint.div x g)
                       c.coefs
                 })
          else Ok (Some { c with coefs = Vec.normalize c.coefs })
  end

exception Empty

let simplify ?(integer = false) t =
  try
    let cs =
      List.filter_map
        (fun c ->
          match normalize_constr ~integer c with
          | Ok r -> r
          | Error () -> raise Empty)
        t.cs
    in
    (* Dedup; for inequalities with identical variable parts keep the tightest
       constant (largest lower bound means smallest constant ... for
       row·x + k >= 0 the tightest is the smallest k).  One hash pass keyed by
       the variable part (full row for equalities) instead of the old
       quadratic pairwise scan — this runs after every Fourier–Motzkin step,
       so projection chains no longer re-derive dominated rows. *)
    let n = t.nvars in
    let key c =
      let b = Buffer.create 32 in
      Buffer.add_char b (match c.kind with Eq -> 'e' | Ge -> 'g');
      let upto = match c.kind with Eq -> n | Ge -> n - 1 in
      for j = 0 to upto do
        Buffer.add_string b (Bigint.to_string c.coefs.(j));
        Buffer.add_char b ','
      done;
      Buffer.contents b
    in
    let items : (string, (int * constr) ref) Hashtbl.t = Hashtbl.create 64 in
    let keys = ref [] in
    List.iteri
      (fun i c ->
        let k = key c in
        match Hashtbl.find_opt items k with
        | None ->
            Hashtbl.add items k (ref (i, c));
            keys := k :: !keys
        | Some r ->
            (* same variable part: an equality duplicate is dropped, an
               inequality survives as the strictly tighter of the two (the
               tighter row keeps its own position) *)
            let _, kept = !r in
            if c.kind = Ge && Bigint.compare c.coefs.(n) kept.coefs.(n) < 0
            then r := (i, c))
      cs;
    let survivors = List.rev_map (fun k -> !(Hashtbl.find items k)) !keys in
    let survivors =
      List.sort (fun (i, _) (j, _) -> Stdlib.compare i j) survivors
    in
    Some { t with cs = List.map snd survivors }
  with Empty -> None

(* ---------------------------- canonical form ---------------------------- *)

(* Equalities sort before inequalities; within a kind, rows are ordered by
   their (normalized) coefficient vectors. *)
let compare_constr a b =
  match (a.kind, b.kind) with
  | Eq, Ge -> -1
  | Ge, Eq -> 1
  | Eq, Eq | Ge, Ge -> Vec.compare a.coefs b.coefs

(* An equality row is sign-ambiguous (c = 0 iff -c = 0); fix the sign so the
   first non-zero variable coefficient is positive. *)
let sign_fix_eq c =
  match c.kind with
  | Ge -> c
  | Eq ->
      let n = Array.length c.coefs - 1 in
      let rec first j =
        if j >= n then Bigint.sign c.coefs.(n)
        else
          let s = Bigint.sign c.coefs.(j) in
          if s <> 0 then s else first (j + 1)
      in
      if first 0 < 0 then { c with coefs = Vec.neg c.coefs } else c

let canon ?(integer = false) t =
  match simplify ~integer t with
  | None -> None
  | Some s ->
      let cs = List.map sign_fix_eq s.cs in
      Some { s with cs = List.sort_uniq compare_constr cs }

let digest t =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int t.nvars);
  Buffer.add_char b '|';
  List.iter
    (fun c ->
      Buffer.add_char b (match c.kind with Eq -> 'e' | Ge -> 'g');
      Array.iter
        (fun x ->
          Buffer.add_string b (Bigint.to_string x);
          Buffer.add_char b ',')
        c.coefs)
    t.cs;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Substitute variable [v] away using equality [e] (with nonzero coef on v)
   in constraint [c]: scale so the v-coefficients cancel, keeping the
   inequality direction (multiply c by |a_e| and e by ∓a_c appropriately). *)
let subst_eq e v c =
  let ae = e.coefs.(v) and ac = c.coefs.(v) in
  if Bigint.is_zero ac then c
  else begin
    (* c' = |ae| * c - (ac * sign(ae)/1) * e  gives coefficient
       |ae|*ac - ac*sign(ae)*ae = ac*(|ae| - sign(ae)*ae) = 0 on v. *)
    let s = Bigint.of_int (Bigint.sign ae) in
    let c_scaled = Vec.scale (Bigint.abs ae) c.coefs in
    let e_scaled = Vec.scale (Bigint.mul s ac) e.coefs in
    { c with coefs = Vec.sub c_scaled e_scaled }
  end

(* Fourier-Motzkin can square the constraint count at every elimination; the
   guard bounds the system size so a pathological input degrades (via
   [Diag.Budget_exceeded], caught at layer boundaries) instead of exhausting
   memory. *)
let default_max_constrs = 200_000

let eliminate ?(max_constrs = default_max_constrs) t v =
  if v < 0 || v >= t.nvars then invalid_arg "Polyhedra.eliminate";
  Stats.incr "fm.eliminations";
  (* Prefer an equality pivot: exact and avoids the quadratic FM blowup. *)
  match List.find_opt (fun c -> c.kind = Eq && involves c v) t.cs with
  | Some e ->
      Stats.incr "fm.rows_eliminated";
      let cs = List.filter (fun c -> c != e) t.cs in
      let cs = List.map (subst_eq e v) cs in
      simplify { t with cs }
  | None ->
      let pos, neg, rest =
        List.fold_left
          (fun (pos, neg, rest) c ->
            let s = Bigint.sign c.coefs.(v) in
            if s > 0 then (c :: pos, neg, rest)
            else if s < 0 then (pos, c :: neg, rest)
            else (pos, neg, c :: rest))
          ([], [], []) t.cs
      in
      let npos = List.length pos and nneg = List.length neg in
      Stats.add "fm.rows_eliminated" (npos + nneg);
      if npos * nneg + List.length rest > max_constrs then
        raise
          (Diag.Budget_exceeded
             (Printf.sprintf
                "Polyhedra.eliminate: Fourier-Motzkin row explosion (%d x %d \
                 products + %d rows exceeds the %d-constraint budget)"
                npos nneg (List.length rest) max_constrs));
      let combos =
        List.concat_map
          (fun p ->
            List.map
              (fun n ->
                (* p: a*v + f >= 0 (a>0);  n: -b*v + g >= 0 (b>0)
                   =>  b*f + a*g >= 0 *)
                let a = p.coefs.(v) and b = Bigint.neg n.coefs.(v) in
                ge (Vec.add (Vec.scale b p.coefs) (Vec.scale a n.coefs)))
              neg)
          pos
      in
      simplify { t with cs = rest @ combos }

let eliminate_many ?max_constrs t vars =
  List.fold_left
    (fun acc v -> match acc with None -> None | Some t -> eliminate ?max_constrs t v)
    (Some t) vars

let is_empty_rational t =
  match eliminate_many t (Putil.range t.nvars) with
  | None -> true
  | Some t' -> (
      (* all columns zero: constraints are constant; simplify decides *)
      match simplify t' with None -> true | Some _ -> false)

(* Memoized rational emptiness, keyed by the digest of the canonical form so
   syntactic permutations and rescalings of the same system share one entry.
   The dependence tester and the verifier probe thousands of near-identical
   systems; this cache answers the repeats without re-running elimination.
   When the persistent {!Store} is enabled (plutocc --cache-dir), an
   in-memory miss additionally consults the on-disk store before falling
   back to elimination, so repeated compilations across processes — batch
   workers, CI reruns — amortize the work too. *)
let empty_cache : (string, bool * int ref) Hashtbl.t = Hashtbl.create 1024

let empty_cache_enabled = ref true
let set_empty_cache b = empty_cache_enabled := b
let clear_caches () = Hashtbl.reset empty_cache

(* Entry budget + LRU eviction, mirroring {!Milp}: entries carry a recency
   tick; when an insert pushes the table past the budget the oldest entries
   are trimmed to a slack below it (amortizing the O(n log n) scan) and
   "poly.cache_evictions" counts the drops.  Daemons size this with
   --solver-cache-entries; the default preserves the historical 100k
   threshold without the old whole-table reset. *)
let cache_budget = ref 100_000
let set_cache_budget n = cache_budget := max 16 n
let cache_tick = ref 0

let next_tick () =
  incr cache_tick;
  !cache_tick

let trim_cache () =
  let b = !cache_budget in
  if Hashtbl.length empty_cache <= b then 0
  else begin
    let evicted =
      Putil.Lru.trim empty_cache ~budget:(b - (b / 8))
        ~tick:(fun (_, t) -> !t)
    in
    Stats.add "poly.cache_evictions" evicted;
    evicted
  end

let cache_entry_count () = Hashtbl.length empty_cache

(* Journal of freshly added entries for daemon workers — see the matching
   API in {!Milp}: the worker ships the delta back and the parent absorbs
   it, keeping the emptiness cache hot across forks. *)
type cache_journal = (string * bool) list

let cache_journal_on = ref false
let empty_journal : cache_journal ref = ref []

let set_cache_journal on =
  cache_journal_on := on;
  empty_journal := []

let take_cache_journal () =
  let j = !empty_journal in
  empty_journal := [];
  j

let cache_journal_length = List.length

let absorb_cache_journal j =
  List.iter
    (fun (k, e) ->
      if not (Hashtbl.mem empty_cache k) then
        Hashtbl.add empty_cache k (e, ref (next_tick ())))
    j;
  trim_cache ()

let store_kind = "poly-empty"

let is_empty_cached ?(integer = false) t =
  match canon ~integer t with
  | None -> true (* canonicalization already proved the system empty *)
  | Some c ->
      if not !empty_cache_enabled then is_empty_rational c
      else begin
        let k =
          (if integer then "i:" else "q:") ^ string_of_int c.nvars ^ digest c
        in
        match Hashtbl.find_opt empty_cache k with
        | Some (e, tick) ->
            Stats.incr "poly.empty_cache_hits";
            tick := next_tick ();
            e
        | None ->
            Stats.incr "poly.empty_cache_misses";
            let e =
              match (Store.read ~kind:store_kind ~key:k : bool option) with
              | Some e -> e
              | None ->
                  let e = is_empty_rational c in
                  Store.write ~kind:store_kind ~key:k e;
                  e
            in
            Hashtbl.replace empty_cache k (e, ref (next_tick ()));
            ignore (trim_cache ());
            if !cache_journal_on then empty_journal := (k, e) :: !empty_journal;
            e
      end

let bounds_on t v =
  List.fold_left
    (fun (lower, upper, rest) c ->
      let s = Bigint.sign c.coefs.(v) in
      match (c.kind, s) with
      | _, 0 -> (lower, upper, c :: rest)
      | Ge, s when s > 0 -> (c :: lower, upper, rest)
      | Ge, _ -> (lower, c :: upper, rest)
      | Eq, _ ->
          (* an equality bounds from both sides *)
          let as_ge = { kind = Ge; coefs = c.coefs } in
          let as_le = { kind = Ge; coefs = Vec.neg c.coefs } in
          if s > 0 then (as_ge :: lower, as_le :: upper, rest)
          else (as_le :: lower, as_ge :: upper, rest))
    ([], [], []) t.cs

let default_names n = Array.init n (fun i -> Printf.sprintf "x%d" i)

let pp_constr ?names fmt c =
  let n = Array.length c.coefs - 1 in
  let names = match names with Some a -> a | None -> default_names n in
  let first = ref true in
  for j = 0 to n - 1 do
    let a = c.coefs.(j) in
    if not (Bigint.is_zero a) then begin
      let s = Bigint.sign a in
      let a_abs = Bigint.abs a in
      if !first then begin
        if s < 0 then Format.pp_print_string fmt "-";
        first := false
      end
      else Format.pp_print_string fmt (if s < 0 then " - " else " + ");
      if not (Bigint.is_one a_abs) then Format.fprintf fmt "%a*" Bigint.pp a_abs;
      Format.pp_print_string fmt names.(j)
    end
  done;
  let k = c.coefs.(n) in
  if !first then Format.fprintf fmt "%a" Bigint.pp k
  else if Bigint.sign k > 0 then Format.fprintf fmt " + %a" Bigint.pp k
  else if Bigint.sign k < 0 then Format.fprintf fmt " - %a" Bigint.pp (Bigint.abs k);
  Format.pp_print_string fmt (match c.kind with Eq -> " = 0" | Ge -> " >= 0")

let pp ?names fmt t =
  Format.fprintf fmt "@[<v>{ nvars = %d@," t.nvars;
  List.iter (fun c -> Format.fprintf fmt "  %a@," (pp_constr ?names) c) t.cs;
  Format.fprintf fmt "}@]"
