type kind = Eq | Ge

type constr = { kind : kind; coefs : Vec.t }

type t = { nvars : int; cs : constr list }

let check_len nvars (v : Vec.t) =
  if Vec.length v <> nvars + 1 then
    invalid_arg
      (Printf.sprintf "Polyhedra: constraint width %d, expected %d"
         (Vec.length v) (nvars + 1))

let ge coefs = { kind = Ge; coefs }
let eq coefs = { kind = Eq; coefs }
let ge_ints l = ge (Vec.of_int_list l)
let eq_ints l = eq (Vec.of_int_list l)
let universe nvars = { nvars; cs = [] }

let of_constrs nvars cs =
  List.iter (fun c -> check_len nvars c.coefs) cs;
  { nvars; cs }

let add t c =
  check_len t.nvars c.coefs;
  { t with cs = c :: t.cs }

let meet a b =
  if a.nvars <> b.nvars then invalid_arg "Polyhedra.meet: dimension mismatch";
  { a with cs = a.cs @ b.cs }

let insert_vars t ~at ~count =
  if at < 0 || at > t.nvars || count < 0 then invalid_arg "Polyhedra.insert_vars";
  let widen c =
    let coefs =
      Array.init
        (t.nvars + count + 1)
        (fun j ->
          if j < at then c.coefs.(j)
          else if j < at + count then Bigint.zero
          else c.coefs.(j - count))
    in
    { c with coefs }
  in
  { nvars = t.nvars + count; cs = List.map widen t.cs }

let drop_vars t ~at ~count =
  if at < 0 || at + count > t.nvars || count < 0 then invalid_arg "Polyhedra.drop_vars";
  let narrow c =
    for j = at to at + count - 1 do
      if not (Bigint.is_zero c.coefs.(j)) then
        invalid_arg "Polyhedra.drop_vars: variable still constrained"
    done;
    let coefs =
      Array.init
        (t.nvars - count + 1)
        (fun j -> if j < at then c.coefs.(j) else c.coefs.(j + count))
    in
    { c with coefs }
  in
  { nvars = t.nvars - count; cs = List.map narrow t.cs }

let rename t perm =
  if Array.length perm <> t.nvars then invalid_arg "Polyhedra.rename";
  let permute c =
    let coefs =
      Array.init (t.nvars + 1) (fun j ->
          if j = t.nvars then c.coefs.(t.nvars) else c.coefs.(perm.(j)))
    in
    { c with coefs }
  in
  { t with cs = List.map permute t.cs }

let involves c v = not (Bigint.is_zero c.coefs.(v))

let constr_value c p =
  let n = Array.length c.coefs - 1 in
  if Array.length p <> n then invalid_arg "Polyhedra.constr_value";
  let acc = ref c.coefs.(n) in
  for j = 0 to n - 1 do
    acc := Bigint.add !acc (Bigint.mul c.coefs.(j) p.(j))
  done;
  !acc

let sat_point t p =
  List.for_all
    (fun c ->
      let v = constr_value c p in
      match c.kind with Eq -> Bigint.is_zero v | Ge -> Bigint.sign v >= 0)
    t.cs

let equal_constr a b = a.kind = b.kind && Vec.equal a.coefs b.coefs

(* A constraint whose variable part is all-zero is trivially decidable. *)
let var_part_zero c =
  let n = Array.length c.coefs - 1 in
  let rec loop j = j >= n || (Bigint.is_zero c.coefs.(j) && loop (j + 1)) in
  loop 0

let normalize_constr ~integer c =
  if var_part_zero c then begin
    let k = c.coefs.(Array.length c.coefs - 1) in
    let sat =
      match c.kind with Eq -> Bigint.is_zero k | Ge -> Bigint.sign k >= 0
    in
    if sat then Ok None else Error ()
  end
  else begin
    let n = Array.length c.coefs - 1 in
    (* content of the variable part only *)
    let g = ref Bigint.zero in
    for j = 0 to n - 1 do
      g := Bigint.gcd !g c.coefs.(j)
    done;
    let g = !g in
    let c' =
      if Bigint.is_one g then c
      else
        match c.kind with
        | Eq ->
            if not (Bigint.is_zero (Bigint.rem c.coefs.(n) g)) then
              (* equality has no rational solution scaled this way only when
                 the full row content differs; dividing the full row keeps
                 rational semantics *)
              { c with coefs = Vec.normalize c.coefs }
            else
              { c with coefs = Array.map (fun x -> Bigint.div x g) c.coefs }
        | Ge ->
            if integer then
              { c with
                coefs =
                  Array.mapi
                    (fun j x ->
                      if j = n then Bigint.fdiv x g else Bigint.div x g)
                    c.coefs
              }
            else { c with coefs = Vec.normalize c.coefs }
    in
    Ok (Some c')
  end

exception Empty

let simplify ?(integer = false) t =
  try
    let cs =
      List.filter_map
        (fun c ->
          match normalize_constr ~integer c with
          | Ok r -> r
          | Error () -> raise Empty)
        t.cs
    in
    (* Dedup; for inequalities with identical variable parts keep the tightest
       constant (largest lower bound means smallest constant ... for
       row·x + k >= 0 the tightest is the smallest k). *)
    let keep = ref [] in
    let dominated c by =
      c.kind = Ge && by.kind = Ge
      && (let n = Array.length c.coefs - 1 in
          let rec same j = j >= n || (Bigint.equal c.coefs.(j) by.coefs.(j) && same (j + 1)) in
          same 0)
      && Bigint.compare by.coefs.(Array.length by.coefs - 1)
           c.coefs.(Array.length c.coefs - 1)
         <= 0
    in
    List.iter
      (fun c ->
        if not (List.exists (fun k -> equal_constr k c || dominated c k) !keep)
        then keep := c :: List.filter (fun k -> not (dominated k c)) !keep)
      cs;
    Some { t with cs = List.rev !keep }
  with Empty -> None

(* Substitute variable [v] away using equality [e] (with nonzero coef on v)
   in constraint [c]: scale so the v-coefficients cancel, keeping the
   inequality direction (multiply c by |a_e| and e by ∓a_c appropriately). *)
let subst_eq e v c =
  let ae = e.coefs.(v) and ac = c.coefs.(v) in
  if Bigint.is_zero ac then c
  else begin
    (* c' = |ae| * c - (ac * sign(ae)/1) * e  gives coefficient
       |ae|*ac - ac*sign(ae)*ae = ac*(|ae| - sign(ae)*ae) = 0 on v. *)
    let s = Bigint.of_int (Bigint.sign ae) in
    let c_scaled = Vec.scale (Bigint.abs ae) c.coefs in
    let e_scaled = Vec.scale (Bigint.mul s ac) e.coefs in
    { c with coefs = Vec.sub c_scaled e_scaled }
  end

(* Fourier-Motzkin can square the constraint count at every elimination; the
   guard bounds the system size so a pathological input degrades (via
   [Diag.Budget_exceeded], caught at layer boundaries) instead of exhausting
   memory. *)
let default_max_constrs = 200_000

let eliminate ?(max_constrs = default_max_constrs) t v =
  if v < 0 || v >= t.nvars then invalid_arg "Polyhedra.eliminate";
  Stats.incr "fm.eliminations";
  (* Prefer an equality pivot: exact and avoids the quadratic FM blowup. *)
  match List.find_opt (fun c -> c.kind = Eq && involves c v) t.cs with
  | Some e ->
      Stats.incr "fm.rows_eliminated";
      let cs = List.filter (fun c -> c != e) t.cs in
      let cs = List.map (subst_eq e v) cs in
      simplify { t with cs }
  | None ->
      let pos, neg, rest =
        List.fold_left
          (fun (pos, neg, rest) c ->
            let s = Bigint.sign c.coefs.(v) in
            if s > 0 then (c :: pos, neg, rest)
            else if s < 0 then (pos, c :: neg, rest)
            else (pos, neg, c :: rest))
          ([], [], []) t.cs
      in
      let npos = List.length pos and nneg = List.length neg in
      Stats.add "fm.rows_eliminated" (npos + nneg);
      if npos * nneg + List.length rest > max_constrs then
        raise
          (Diag.Budget_exceeded
             (Printf.sprintf
                "Polyhedra.eliminate: Fourier-Motzkin row explosion (%d x %d \
                 products + %d rows exceeds the %d-constraint budget)"
                npos nneg (List.length rest) max_constrs));
      let combos =
        List.concat_map
          (fun p ->
            List.map
              (fun n ->
                (* p: a*v + f >= 0 (a>0);  n: -b*v + g >= 0 (b>0)
                   =>  b*f + a*g >= 0 *)
                let a = p.coefs.(v) and b = Bigint.neg n.coefs.(v) in
                ge (Vec.add (Vec.scale b p.coefs) (Vec.scale a n.coefs)))
              neg)
          pos
      in
      simplify { t with cs = rest @ combos }

let eliminate_many ?max_constrs t vars =
  List.fold_left
    (fun acc v -> match acc with None -> None | Some t -> eliminate ?max_constrs t v)
    (Some t) vars

let is_empty_rational t =
  match eliminate_many t (Putil.range t.nvars) with
  | None -> true
  | Some t' -> (
      (* all columns zero: constraints are constant; simplify decides *)
      match simplify t' with None -> true | Some _ -> false)

let bounds_on t v =
  List.fold_left
    (fun (lower, upper, rest) c ->
      let s = Bigint.sign c.coefs.(v) in
      match (c.kind, s) with
      | _, 0 -> (lower, upper, c :: rest)
      | Ge, s when s > 0 -> (c :: lower, upper, rest)
      | Ge, _ -> (lower, c :: upper, rest)
      | Eq, _ ->
          (* an equality bounds from both sides *)
          let as_ge = { kind = Ge; coefs = c.coefs } in
          let as_le = { kind = Ge; coefs = Vec.neg c.coefs } in
          if s > 0 then (as_ge :: lower, as_le :: upper, rest)
          else (as_le :: lower, as_ge :: upper, rest))
    ([], [], []) t.cs

let default_names n = Array.init n (fun i -> Printf.sprintf "x%d" i)

let pp_constr ?names fmt c =
  let n = Array.length c.coefs - 1 in
  let names = match names with Some a -> a | None -> default_names n in
  let first = ref true in
  for j = 0 to n - 1 do
    let a = c.coefs.(j) in
    if not (Bigint.is_zero a) then begin
      let s = Bigint.sign a in
      let a_abs = Bigint.abs a in
      if !first then begin
        if s < 0 then Format.pp_print_string fmt "-";
        first := false
      end
      else Format.pp_print_string fmt (if s < 0 then " - " else " + ");
      if not (Bigint.is_one a_abs) then Format.fprintf fmt "%a*" Bigint.pp a_abs;
      Format.pp_print_string fmt names.(j)
    end
  done;
  let k = c.coefs.(n) in
  if !first then Format.fprintf fmt "%a" Bigint.pp k
  else if Bigint.sign k > 0 then Format.fprintf fmt " + %a" Bigint.pp k
  else if Bigint.sign k < 0 then Format.fprintf fmt " - %a" Bigint.pp (Bigint.abs k);
  Format.pp_print_string fmt (match c.kind with Eq -> " = 0" | Ge -> " >= 0")

let pp ?names fmt t =
  Format.fprintf fmt "@[<v>{ nvars = %d@," t.nvars;
  List.iter (fun c -> Format.fprintf fmt "  %a@," (pp_constr ?names) c) t.cs;
  Format.fprintf fmt "}@]"
