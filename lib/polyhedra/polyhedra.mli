(** Constraint-representation polyhedra with exact arithmetic.

    This is the repository's PolyLib substitute.  A system is a conjunction of
    affine equalities and inequalities over [nvars] variables; each constraint
    stores [nvars + 1] big-integer coefficients, the last one being the
    constant term.  A constraint [{kind = Ge; coefs}] means
    [coefs·(x, 1) >= 0]; [Eq] means [= 0].

    Projection is Fourier–Motzkin elimination over the rationals, which is the
    correct semantics for both of its uses here: eliminating (rational) Farkas
    multipliers and computing loop bounds (where the [floord]/[ceild] in
    generated code performs the integer rounding). *)

type kind = Eq | Ge

type constr = { kind : kind; coefs : Vec.t }

type t = { nvars : int; cs : constr list }

(** {1 Constructors} *)

val ge : Vec.t -> constr
val eq : Vec.t -> constr

(** [ge_ints l] / [eq_ints l] build a constraint from native-int coefficients
    (constant last). *)
val ge_ints : int list -> constr

val eq_ints : int list -> constr

(** [universe n] is the unconstrained system over [n] variables. *)
val universe : int -> t

val of_constrs : int -> constr list -> t

(** [add t c] conjoins one constraint. *)
val add : t -> constr -> t

(** [meet a b] conjoins two systems over the same variable count. *)
val meet : t -> t -> t

(** {1 Structural operations} *)

(** [insert_vars t ~at ~count] inserts [count] fresh unconstrained variables
    before position [at], shifting later columns. *)
val insert_vars : t -> at:int -> count:int -> t

(** [drop_vars t ~at ~count] removes columns; all removed columns must have
    zero coefficients in every constraint.
    @raise Invalid_argument otherwise. *)
val drop_vars : t -> at:int -> count:int -> t

(** [rename t perm] permutes columns: new column [i] takes old column
    [perm.(i)] (the constant column is fixed). *)
val rename : t -> int array -> t

(** {1 Normalization} *)

(** [normalize_constr ~integer c] divides by the content; with [integer:true],
    inequality constants are additionally tightened by flooring (valid when
    all variables are integral).  Returns [None] if the constraint is
    trivially true, [Some (Error ())] if trivially false. *)
val normalize_constr : integer:bool -> constr -> (constr option, unit) result

(** [simplify ?integer t] normalizes all constraints, removes syntactic
    duplicates and dominated inequalities.  Returns [None] if a constraint is
    trivially false. *)
val simplify : ?integer:bool -> t -> t option

(** {1 Projection and emptiness} *)

(** Default Fourier–Motzkin size budget (constraints) for {!eliminate}. *)
val default_max_constrs : int

(** [eliminate ?max_constrs t v] projects out variable [v] (rational
    Fourier–Motzkin for inequalities, exact substitution for equalities).
    The variable count is unchanged; column [v] becomes all-zero.  Returns
    [None] if the projection is discovered empty.
    @raise Diag.Budget_exceeded if the elimination would produce more than
    [max_constrs] constraints (row explosion guard). *)
val eliminate : ?max_constrs:int -> t -> int -> t option

(** [eliminate_many ?max_constrs t vars] projects out several variables.
    @raise Diag.Budget_exceeded on row explosion, like {!eliminate}. *)
val eliminate_many : ?max_constrs:int -> t -> int list -> t option

(** [is_empty_rational t] tests rational emptiness by full elimination.
    Rational emptiness implies integer emptiness; the converse is checked by
    the ILP layer where needed. *)
val is_empty_rational : t -> bool

(** {1 Queries} *)

(** [bounds_on t v] partitions the inequalities by their sign on variable [v]:
    [(lower, upper, rest)] where [lower] are constraints with positive
    coefficient on [v] (giving lower bounds), [upper] negative. Equalities
    involving [v] appear in both lists (as the two implied inequalities). *)
val bounds_on : t -> int -> constr list * constr list * constr list

(** [involves c v] is true iff constraint [c] has a non-zero coefficient on
    variable [v]. *)
val involves : constr -> int -> bool

(** [sat_point t p] checks an integer point [p] (length [nvars]) against all
    constraints — used heavily by property tests. *)
val sat_point : t -> Bigint.t array -> bool

(** [constr_value c p] evaluates [coefs·(p, 1)]. *)
val constr_value : constr -> Bigint.t array -> Bigint.t

val equal_constr : constr -> constr -> bool

(** {1 Printing} *)

(** [pp ?names] prints the system with the given variable names (defaults to
    [x0, x1, ...]). *)
val pp : ?names:string array -> Format.formatter -> t -> unit

val pp_constr : ?names:string array -> Format.formatter -> constr -> unit
