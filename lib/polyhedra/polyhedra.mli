(** Constraint-representation polyhedra with exact arithmetic.

    This is the repository's PolyLib substitute.  A system is a conjunction of
    affine equalities and inequalities over [nvars] variables; each constraint
    stores [nvars + 1] big-integer coefficients, the last one being the
    constant term.  A constraint [{kind = Ge; coefs}] means
    [coefs·(x, 1) >= 0]; [Eq] means [= 0].

    Projection is Fourier–Motzkin elimination over the rationals, which is the
    correct semantics for both of its uses here: eliminating (rational) Farkas
    multipliers and computing loop bounds (where the [floord]/[ceild] in
    generated code performs the integer rounding). *)

type kind = Eq | Ge

type constr = { kind : kind; coefs : Vec.t }

type t = { nvars : int; cs : constr list }

(** {1 Constructors} *)

val ge : Vec.t -> constr
val eq : Vec.t -> constr

(** [ge_ints l] / [eq_ints l] build a constraint from native-int coefficients
    (constant last). *)
val ge_ints : int list -> constr

val eq_ints : int list -> constr

(** [universe n] is the unconstrained system over [n] variables. *)
val universe : int -> t

val of_constrs : int -> constr list -> t

(** [add t c] conjoins one constraint. *)
val add : t -> constr -> t

(** [meet a b] conjoins two systems over the same variable count. *)
val meet : t -> t -> t

(** {1 Structural operations} *)

(** [insert_vars t ~at ~count] inserts [count] fresh unconstrained variables
    before position [at], shifting later columns. *)
val insert_vars : t -> at:int -> count:int -> t

(** [drop_vars t ~at ~count] removes columns; all removed columns must have
    zero coefficients in every constraint.
    @raise Invalid_argument otherwise. *)
val drop_vars : t -> at:int -> count:int -> t

(** [rename t perm] permutes columns: new column [i] takes old column
    [perm.(i)] (the constant column is fixed). *)
val rename : t -> int array -> t

(** {1 Normalization} *)

(** [normalize_constr ~integer c] divides by the content; with [integer:true],
    inequality constants are additionally tightened by flooring and an
    equality whose variable-part gcd does not divide its constant is reported
    as unsatisfiable (both valid only when all variables are integral).
    Returns [Ok None] if the constraint is trivially true, [Error ()] if it is
    unsatisfiable (proving the enclosing system empty). *)
val normalize_constr : integer:bool -> constr -> (constr option, unit) result

(** [simplify ?integer t] normalizes all constraints, removes syntactic
    duplicates and dominated inequalities.  Returns [None] if a constraint is
    trivially false. *)
val simplify : ?integer:bool -> t -> t option

(** [canon ?integer t] is {!simplify} followed by a canonical ordering: the
    sign of each equality is fixed, rows are sorted (equalities first) and
    exact duplicates removed.  Two systems describing the same constraint set
    up to permutation, duplication and scaling canonicalize identically. *)
val canon : ?integer:bool -> t -> t option

(** [digest t] is a stable hex digest of the constraint set as stored.
    Meaningful as an identity key after {!canon}. *)
val digest : t -> string

(** Total order on constraints used by {!canon}: equalities before
    inequalities, then coefficient-lexicographic. *)
val compare_constr : constr -> constr -> int

(** {1 Projection and emptiness} *)

(** Default Fourier–Motzkin size budget (constraints) for {!eliminate}. *)
val default_max_constrs : int

(** [eliminate ?max_constrs t v] projects out variable [v] (rational
    Fourier–Motzkin for inequalities, exact substitution for equalities).
    The variable count is unchanged; column [v] becomes all-zero.  Returns
    [None] if the projection is discovered empty.
    @raise Diag.Budget_exceeded if the elimination would produce more than
    [max_constrs] constraints (row explosion guard). *)
val eliminate : ?max_constrs:int -> t -> int -> t option

(** [eliminate_many ?max_constrs t vars] projects out several variables.
    @raise Diag.Budget_exceeded on row explosion, like {!eliminate}. *)
val eliminate_many : ?max_constrs:int -> t -> int list -> t option

(** [is_empty_rational t] tests rational emptiness by full elimination.
    Rational emptiness implies integer emptiness; the converse is checked by
    the ILP layer where needed. *)
val is_empty_rational : t -> bool

(** [is_empty_cached ?integer t] is {!is_empty_rational} on the {!canon}-ical
    form of [t], memoized globally by digest (counters
    [poly.empty_cache_hits]/[poly.empty_cache_misses]).  With [integer:true]
    the canonical form uses integer tightening, so the test may prove empty
    systems that still have rational points — only sound when every variable
    of [t] ranges over the integers.

    When the persistent {!Store} is enabled ([Store.set_dir]; the CLI's
    [--cache-dir]), an in-memory miss consults the on-disk store before
    re-running elimination and persists fresh answers, so the cache survives
    across processes (batch workers, repeated [plutocc] runs). *)
val is_empty_cached : ?integer:bool -> t -> bool

(** [set_empty_cache false] disables the memoized emptiness cache (used by
    benchmarks to measure the cold path); [true] re-enables it. *)
val set_empty_cache : bool -> unit

(** Drop all memoized emptiness results. *)
val clear_caches : unit -> unit

(** [set_cache_budget n] caps the emptiness cache at [n] entries (clamped
    to at least 16; default 100_000), evicting least-recently-used entries
    past the budget (counter [poly.cache_evictions]) — same contract as
    {!Milp.set_cache_budget}. *)
val set_cache_budget : int -> unit

(** Live entries in the emptiness cache. *)
val cache_entry_count : unit -> int

(** {2 Cache journaling} — same contract as the matching {!Milp} API: with
    journaling on, freshly computed emptiness answers are also recorded in a
    journal that a forked worker can take and ship to its parent, which
    replays it with {!absorb_cache_journal} to keep the cache hot across
    forks (the compile daemon's warm path). *)

type cache_journal

val set_cache_journal : bool -> unit
val take_cache_journal : unit -> cache_journal
val cache_journal_length : cache_journal -> int

(** Replays the journal, then LRU-trims to the configured budget; returns
    the number of entries evicted by that trim. *)
val absorb_cache_journal : cache_journal -> int

(** {1 Queries} *)

(** [bounds_on t v] partitions the inequalities by their sign on variable [v]:
    [(lower, upper, rest)] where [lower] are constraints with positive
    coefficient on [v] (giving lower bounds), [upper] negative. Equalities
    involving [v] appear in both lists (as the two implied inequalities). *)
val bounds_on : t -> int -> constr list * constr list * constr list

(** [involves c v] is true iff constraint [c] has a non-zero coefficient on
    variable [v]. *)
val involves : constr -> int -> bool

(** [sat_point t p] checks an integer point [p] (length [nvars]) against all
    constraints — used heavily by property tests. *)
val sat_point : t -> Bigint.t array -> bool

(** [constr_value c p] evaluates [coefs·(p, 1)]. *)
val constr_value : constr -> Bigint.t array -> Bigint.t

val equal_constr : constr -> constr -> bool

(** {1 Printing} *)

(** [pp ?names] prints the system with the given variable names (defaults to
    [x0, x1, ...]). *)
val pp : ?names:string array -> Format.formatter -> t -> unit

val pp_constr : ?names:string array -> Format.formatter -> constr -> unit
