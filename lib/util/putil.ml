(** Small shared helpers used across the Pluto libraries. *)

(** [gcd_int a b] is the non-negative greatest common divisor of [a] and [b].
    [gcd_int 0 0 = 0]. *)
let rec gcd_int a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd_int b (a mod b)

(** [lcm_int a b] is the non-negative least common multiple. *)
let lcm_int a b = if a = 0 || b = 0 then 0 else abs (a * b) / gcd_int a b

(** [range n] is [[0; 1; ...; n-1]]. *)
let range n = List.init n (fun i -> i)

(** [sum_by f l] sums [f x] over the elements of [l]. *)
let sum_by f l = List.fold_left (fun acc x -> acc + f x) 0 l

(** [list_max l] is the maximum element of a non-empty integer list. *)
let list_max = function
  | [] -> invalid_arg "Putil.list_max: empty list"
  | x :: rest -> List.fold_left max x rest

(** [take n l] is the first [n] elements of [l] (or all of [l] if shorter). *)
let rec take n l =
  match (n, l) with
  | 0, _ | _, [] -> []
  | n, x :: rest -> x :: take (n - 1) rest

(** [drop n l] is [l] without its first [n] elements. *)
let rec drop n l =
  match (n, l) with
  | 0, l -> l
  | _, [] -> []
  | n, _ :: rest -> drop (n - 1) rest

(** [concat_map_i f l] maps [f i x] over [l] with indices and concatenates. *)
let concat_map_i f l = List.concat (List.mapi f l)

(** [array_for_all2 p a b] checks [p a.(i) b.(i)] for all indices; the arrays
    must have equal length. *)
let array_for_all2 p a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Putil.array_for_all2";
  let rec loop i = i >= n || (p a.(i) b.(i) && loop (i + 1)) in
  loop 0

(** [pp_list sep pp] formats a list with separator [sep], interpreted as a
    format string so break hints like ["@,"] work. *)
let pp_list sep pp fmt l =
  let sep_fmt = Scanf.format_from_string sep "" in
  Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt sep_fmt) pp fmt l

(** [string_of_format f] renders a formatter-based printer to a string. *)
let string_of_format pp x = Format.asprintf "%a" pp x

(** Fixed-point iteration: applies [step] until it returns [None], threading
    the state; returns the final state. *)
let rec fixpoint step state =
  match step state with None -> state | Some state' -> fixpoint step state'

(* Shared LRU-trimming step for the budgeted in-memory caches (Milp's
   lp/feasibility tables, Polyhedra's emptiness table): values carry a
   recency tick, and trimming removes the smallest ticks first.  One full
   scan + sort per call; callers amortize by trimming a slack below their
   budget so the next trim is many inserts away. *)
module Lru = struct
  let trim (tbl : ('k, 'v) Hashtbl.t) ~budget ~(tick : 'v -> int) =
    let n = Hashtbl.length tbl in
    let budget = max 0 budget in
    if n <= budget then 0
    else begin
      let entries = Array.make n (None, 0) in
      let i = ref 0 in
      Hashtbl.iter
        (fun k v ->
          entries.(!i) <- (Some k, tick v);
          incr i)
        tbl;
      Array.sort (fun (_, a) (_, b) -> compare a b) entries;
      let drop = n - budget in
      for j = 0 to drop - 1 do
        match fst entries.(j) with
        | Some k -> Hashtbl.remove tbl k
        | None -> ()
      done;
      drop
    end
end

(** A counter-based fresh-name generator. *)
(* The single source of deterministic randomness for the whole repository:
   the fuzz suites, the differential tester and the autotuner's search order
   all derive their [Random.State.t] from here, so one environment variable
   (PLUTO_FUZZ_SEED) reproduces any randomized run exactly.  Nothing in the
   libraries may call [Random.self_init]. *)
module Seed = struct
  let default = 20080613 (* PLDI'08 *)

  let of_env ?(var = "PLUTO_FUZZ_SEED") ~default () =
    match Sys.getenv_opt var with
    | None | Some "" -> default
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> n
        | None -> failwith (Printf.sprintf "%s=%S is not an integer" var s))

  let state seed = Random.State.make [| seed |]
end

module Fresh = struct
  type t = { prefix : string; mutable next : int }

  let create prefix = { prefix; next = 0 }

  let next t =
    let name = Printf.sprintf "%s%d" t.prefix t.next in
    t.next <- t.next + 1;
    name
end
