(** Small shared helpers used across the Pluto libraries. *)

(** Non-negative gcd; [gcd_int 0 0 = 0]. *)
val gcd_int : int -> int -> int

val lcm_int : int -> int -> int

(** [range n] is [[0; 1; ...; n-1]]. *)
val range : int -> int list

val sum_by : ('a -> int) -> 'a list -> int

(** @raise Invalid_argument on the empty list. *)
val list_max : int list -> int

val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list
val concat_map_i : (int -> 'a -> 'b list) -> 'a list -> 'b list

(** @raise Invalid_argument on length mismatch. *)
val array_for_all2 : ('a -> 'b -> bool) -> 'a array -> 'b array -> bool

(** [pp_list sep pp] formats a list with separator [sep]; [sep] is
    interpreted as a format string, so break hints like ["@,"] work.
    @raise Scanf.Scan_failure if [sep] contains formatting directives. *)
val pp_list :
  string -> (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a list -> unit

val string_of_format : (Format.formatter -> 'a -> unit) -> 'a -> string

(** [fixpoint step x] applies [step] until it returns [None]. *)
val fixpoint : ('a -> 'a option) -> 'a -> 'a

(** The single source of deterministic randomness: every randomized component
    (fuzz suites, differential tester, autotuner search order) derives its
    [Random.State.t] from one seed resolved here, so [PLUTO_FUZZ_SEED]
    reproduces any run exactly.  No library calls [Random.self_init]. *)
module Seed : sig
  (** 20080613 (PLDI'08) — the pinned default. *)
  val default : int

  (** [of_env ?var ~default ()] — the seed from [var] (default
      ["PLUTO_FUZZ_SEED"]), or [default] when unset/empty.
      @raise Failure when the variable is set but not an integer. *)
  val of_env : ?var:string -> default:int -> unit -> int

  (** A fresh state from a seed. *)
  val state : int -> Random.State.t
end

(** One shared primitive behind every budgeted in-memory cache: hashtables
    whose values carry a recency tick, trimmed oldest-first. *)
module Lru : sig
  (** [trim tbl ~budget ~tick] removes the entries with the smallest
      [tick v] until [Hashtbl.length tbl <= budget]; returns how many were
      removed.  O(n log n) in the table size — callers trim to a slack
      below their trigger threshold so the cost amortizes across inserts. *)
  val trim : ('k, 'v) Hashtbl.t -> budget:int -> tick:('v -> int) -> int
end

module Fresh : sig
  type t

  val create : string -> t
  val next : t -> string
end
