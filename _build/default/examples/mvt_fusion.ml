(* MVT: why input (read-after-read) dependences matter (paper 4.1 and the
   Figure 12 discussion).  With RAR dependences in the cost function the two
   matrix-vector products fuse with the second one permuted ("ij with ji"),
   making the reuse distance on A zero; without them the tool keeps the
   original loop orders and the reuse on A is lost.

   Run with:  dune exec examples/mvt_fusion.exe *)

let () =
  let program = Kernels.program Kernels.mvt in
  print_endline "== MVT: x1 = x1 + A y1 ; x2 = x2 + A' y2 ==";
  print_endline Kernels.mvt.Kernels.source;
  let with_rar = Driver.compile program in
  let without_rar =
    Driver.compile
      ~options:
        {
          Driver.default_options with
          Driver.auto =
            { Pluto.Auto.default_config with Pluto.Auto.input_deps = false };
        }
      program
  in
  Format.printf "-- with input dependences (paper) --@.%a@."
    Pluto.Auto.pp_transform with_rar.Driver.transform;
  Format.printf "-- without input dependences --@.%a@." Pluto.Auto.pp_transform
    without_rar.Driver.transform;
  let unfused = Baselines.mvt_unfused_parallel program in
  let fuse_ij = Baselines.mvt_fuse_ij_ij program in
  let params = [| 600 |] in
  Printf.printf "simulated GFLOPS at N=600 on 4 cores:\n";
  List.iter
    (fun (name, (r : Driver.result)) ->
      let g =
        (Machine.simulate Machine.default_machine r.Driver.code ~params)
          .Machine.gflops
      in
      Printf.printf "  %-34s %8.3f\n" name g)
    [
      ("original", Baselines.original program);
      ("sync-free parallel, no fusion", unfused);
      ("fused ij with ij (no reuse on A)", fuse_ij);
      ("pluto: fused ij with ji + pipeline", with_rar);
    ]
