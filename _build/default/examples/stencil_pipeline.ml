(* Stencil pipelines: the workloads the paper's introduction motivates.
   Shows how time skewing makes time tiling legal on the imperfectly nested
   1-d Jacobi, and how the tile-space wavefront (Algorithm 2) turns the
   skewed band into coarse-grained parallelism.

   Run with:  dune exec examples/stencil_pipeline.exe *)

let () =
  let k = Kernels.jacobi_1d in
  let program = Kernels.program k in
  print_endline "== 1-d Jacobi (imperfectly nested) ==";
  print_endline k.Kernels.source;
  let deps = Deps.compute program in
  Printf.printf "dependences (%d):\n" (List.length deps);
  List.iter (fun d -> Format.printf "  %a@." Deps.pp d) deps;
  let tr = Pluto.Auto.transform program deps in
  Format.printf "@.%a@." Pluto.Auto.pp_transform tr;
  print_endline
    "The skew c2 = 2t+i (factor two!) is what makes rectangular tiling of\n\
     the memory-efficient imperfectly nested form legal — the perfectly\n\
     nested version would only need a skew of one (paper, 5.2).";
  (* compare: no tiling / tiling / tiling + wavefront, on 1 and 4 cores *)
  let build options = Driver.compile_with_transform ~options program deps tr in
  let cases =
    [
      ("original order", Baselines.original program);
      ( "pluto untiled",
        build { Driver.default_options with Driver.tile = false } );
      ( "pluto tiled, sequential",
        build { Driver.default_options with Driver.parallelize = false } );
      ("pluto tiled + wavefront", build Driver.default_options);
    ]
  in
  let params = Kernels.params_vector program [ ("T", 128); ("N", 8000) ] in
  Printf.printf "\nsimulated GFLOPS at N=8000, T=128:\n";
  Printf.printf "%-28s %10s %10s\n" "" "1 core" "4 cores";
  List.iter
    (fun (name, r) ->
      let g c =
        (Machine.simulate
           { Machine.default_machine with Machine.ncores = c }
           r.Driver.code ~params)
          .Machine.gflops
      in
      Printf.printf "%-28s %10.3f %10.3f\n" name (g 1) (g 4))
    cases;
  print_endline
    "\nNote how the untiled (or inner-parallel) versions barely speed up —\n\
     the paper's point that one level of coarse-grained parallelism plus\n\
     locality is what matters on multicores."
