(* Model-driven empirical search over tile sizes — the use case of the
   paper's introduction ("enables the easy use of powerful empirical/
   iterative optimization"): the transformation is computed once; tile sizes
   are then explored empirically on the simulated machine.

   Run with:  dune exec examples/explore_options.exe *)

let () =
  let program = Kernels.program Kernels.seidel in
  print_endline "== empirical tile-size search on 3-d Gauss-Seidel ==";
  let deps = Deps.compute program in
  let tr = Pluto.Auto.transform program deps in
  Format.printf "%a@." Pluto.Auto.pp_transform tr;
  let params = Kernels.params_vector program [ ("T", 32); ("N", 120) ] in
  let candidates = [ 4; 8; 16; 32; 64 ] in
  Printf.printf "tile size  GFLOPS (4 cores)  L1 misses  L2 misses\n";
  let best = ref (0, neg_infinity) in
  List.iter
    (fun tau ->
      let r =
        Driver.compile_with_transform
          ~options:{ Driver.default_options with Driver.tile_size = Some tau }
          program deps tr
      in
      let res = Machine.simulate Machine.default_machine r.Driver.code ~params in
      if res.Machine.gflops > snd !best then best := (tau, res.Machine.gflops);
      Printf.printf "%9d  %16.3f  %9d  %9d\n" tau res.Machine.gflops
        res.Machine.l1_misses res.Machine.l2_misses)
    candidates;
  let tau, g = !best in
  Printf.printf "\nbest tile size: %d (%.3f GFLOPS)\n" tau g;
  (* compare with the rough model the paper uses ("set automatically using a
     very rough model") *)
  let model =
    Pluto.Tiling.default_tile_size ~band_width:3 ~cache_elems:(8 * 1024)
      ~narrays:(List.length program.Ir.arrays)
  in
  Printf.printf "rough-model choice: %d\n" model
