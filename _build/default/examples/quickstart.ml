(* Quickstart: take a C-subset loop nest, run the full Pluto pipeline, print
   the transformation and the generated OpenMP C, verify semantic
   equivalence, and simulate the speedup.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
double A[N][N], B[N][N], C[N][N];
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    for (k = 0; k < N; k++)
      C[i][j] = C[i][j] + A[i][k] * B[k][j];
|}

let () =
  print_endline "== quickstart: matrix-matrix multiplication ==";
  (* 1. parse the kernel *)
  let program = Frontend.parse_program ~name:"matmul" source in
  (* 2. full pipeline: dependences -> hyperplanes -> tiling -> OpenMP code *)
  let r = Driver.compile program in
  Printf.printf "\n-- dependences: %d edges --\n" (List.length r.Driver.deps);
  Format.printf "\n-- transformation --@.%a@." Pluto.Auto.pp_transform
    r.Driver.transform;
  Format.printf "-- generated OpenMP C --@.";
  Codegen.print_c Format.std_formatter r.Driver.code;
  (* 3. the transformed program computes the same thing *)
  let params = [| 20 |] in
  Printf.printf "\nsemantic equivalence at N=20: %b\n"
    (Machine.equivalent program r.Driver.code ~params);
  (* 4. simulated performance, original vs transformed *)
  let orig = Baselines.original program in
  let params = [| 140 |] in
  let sim code cores =
    Machine.simulate
      { Machine.default_machine with Machine.ncores = cores }
      code ~params
  in
  let t_orig = sim orig.Driver.code 1 in
  let t_seq = sim r.Driver.code 1 in
  let t_par = sim r.Driver.code 4 in
  Format.printf "\n-- simulated performance at N=140 --@.";
  Format.printf "original, 1 core   : %a@." Machine.pp_result t_orig;
  Format.printf "pluto, 1 core      : %a@." Machine.pp_result t_seq;
  Format.printf "pluto, 4 cores     : %a@." Machine.pp_result t_par;
  Format.printf "locality speedup %.2fx; total speedup on 4 cores %.2fx@."
    (t_orig.Machine.cycles /. t_seq.Machine.cycles)
    (t_orig.Machine.cycles /. t_par.Machine.cycles)
