(* LU decomposition: a non-stencil kernel with two statements of different
   dimensionalities.  The lower-dimensional statement is naturally sunk into
   a 3-d fully permutable band (paper 5.2 / Figure 2), giving 3-d tiles and
   two degrees of pipelined parallelism.

   Run with:  dune exec examples/lu_factorization.exe *)

let () =
  let program = Kernels.program Kernels.lu in
  print_endline "== LU decomposition (no pivoting) ==";
  print_endline Kernels.lu.Kernels.source;
  let deps = Deps.compute program in
  let tr = Pluto.Auto.transform program deps in
  Format.printf "%a@." Pluto.Auto.pp_transform tr;
  let bands = Pluto.Tiling.bands_of tr in
  List.iter
    (fun b ->
      Printf.printf "permutable band: levels %d..%d\n" b.Pluto.Tiling.b_start
        (b.Pluto.Tiling.b_start + b.Pluto.Tiling.b_len - 1))
    bands;
  (* 3-d tiles, like the Figure 2 specification *)
  let bands_sizes =
    List.map (fun b -> (b, Array.make b.Pluto.Tiling.b_len 32)) bands
  in
  let tgt = Pluto.Tiling.tile tr ~bands_sizes in
  let levels =
    Pluto.Tiling.target_band_levels tr ~bands_sizes (List.hd bands)
  in
  (* one and two degrees of pipelined parallelism (Algorithm 2) *)
  List.iter
    (fun m ->
      let tgtw = Pluto.Tiling.wavefront tgt ~levels ~degrees:m in
      let code = Codegen.generate tgtw in
      let ok =
        Machine.equivalent program code ~params:[| 24 |]
      in
      let r =
        Machine.simulate Machine.default_machine code ~params:[| 150 |]
      in
      Format.printf "%d-d pipelined parallel: equivalence %b; %a@." m ok
        Machine.pp_result r)
    [ 1; 2 ];
  print_endline "\ngenerated code with one degree of pipelined parallelism:";
  let tgtw = Pluto.Tiling.wavefront tgt ~levels ~degrees:1 in
  Codegen.print_loop_nest Format.std_formatter (Codegen.generate tgtw)
