(* Native execution: compile the generated OpenMP C with the host's real C
   compiler, run it, and cross-validate the transformed program against the
   original on real hardware (bitwise-identical array checksums).

   The build host here has a single CPU core, so native runs demonstrate
   correctness and sequential behaviour only; parallel-scaling experiments
   live in the simulator (see DESIGN.md and bench/main.exe).

   Run with:  dune exec examples/native_validation.exe *)

let () =
  if not (Runner.available ()) then
    print_endline "no C compiler on this host — nothing to do"
  else begin
    print_endline "== native (gcc) cross-validation ==";
    List.iter
      (fun (k, params) ->
        let p = Kernels.program k in
        let orig = Driver.compile_original p in
        let pluto = Driver.compile p in
        (match Runner.validate orig.Driver.code pluto.Driver.code ~params with
        | Some ok ->
            Printf.printf "%-16s checksums %s\n%!" k.Kernels.name
              (if ok then "IDENTICAL" else "DIFFER (bug!)")
        | None -> ());
        match
          ( Runner.run orig.Driver.code ~params,
            Runner.run pluto.Driver.code ~params )
        with
        | Some a, Some b ->
            Printf.printf "%-16s native wall time: orig %.4fs, pluto %.4fs\n%!"
              "" a.Runner.wall_seconds b.Runner.wall_seconds
        | _ -> ())
      [
        (Kernels.jacobi_1d, [ ("T", 100); ("N", 2000) ]);
        (Kernels.lu, [ ("N", 200) ]);
        (Kernels.seidel, [ ("T", 30); ("N", 200) ]);
      ]
  end
