examples/mvt_fusion.ml: Baselines Driver Format Kernels List Machine Pluto Printf
