examples/quickstart.ml: Baselines Codegen Driver Format Frontend List Machine Pluto Printf
