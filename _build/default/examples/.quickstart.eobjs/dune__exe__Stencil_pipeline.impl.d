examples/stencil_pipeline.ml: Baselines Deps Driver Format Kernels List Machine Pluto Printf
