examples/native_validation.mli:
