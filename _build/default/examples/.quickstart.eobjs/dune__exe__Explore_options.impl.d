examples/explore_options.ml: Deps Driver Format Ir Kernels List Machine Pluto Printf
