examples/lu_factorization.ml: Array Codegen Deps Format Kernels List Machine Pluto Printf
