examples/explore_options.mli:
