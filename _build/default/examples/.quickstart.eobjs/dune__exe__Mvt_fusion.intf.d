examples/mvt_fusion.mli:
