examples/native_validation.ml: Driver Kernels List Printf Runner
