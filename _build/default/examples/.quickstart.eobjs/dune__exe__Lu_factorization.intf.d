examples/lu_factorization.mli:
