examples/quickstart.mli:
