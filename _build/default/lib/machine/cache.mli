(** Set-associative LRU cache simulation.

    Models the private L1s and pair-shared L2s of the simulated multicore
    (see DESIGN.md: a Core 2 Quad Q6600 scaled down so cache effects appear
    at simulable problem sizes).  Addresses are byte addresses; state is
    [sets x assoc] lines with LRU stamps. *)

type config = { size_bytes : int; line_bytes : int; assoc : int }

type t

val create : config -> t
val reset : t -> unit

(** [access t addr] touches the line containing byte [addr]; returns [true]
    on hit, and updates LRU/miss state. *)
val access : t -> int -> bool

val hits : t -> int
val misses : t -> int
