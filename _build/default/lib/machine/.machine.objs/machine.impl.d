lib/machine/machine.ml: Array Bigint Cache Codegen Float Format Hashtbl Ir List Pluto Polyhedra Printf Vec
