lib/machine/cache.mli:
