lib/machine/machine.mli: Cache Codegen Format Ir
