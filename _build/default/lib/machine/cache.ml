(** Set-associative LRU cache simulation.

    Addresses are in bytes; a cache holds [sets * assoc] lines of
    [line_bytes].  LRU ranks are stored per way as a monotonically increasing
    stamp; on the small associativities modelled here a linear scan is fast.
    Used to model private L1s and (pair-)shared L2s of the simulated
    multicore. *)

type config = { size_bytes : int; line_bytes : int; assoc : int }

type t = {
  cfg : config;
  nsets : int;
  tags : int array;  (* nsets * assoc; -1 = invalid *)
  stamps : int array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create cfg =
  let nsets = max 1 (cfg.size_bytes / (cfg.line_bytes * cfg.assoc)) in
  {
    cfg;
    nsets;
    tags = Array.make (nsets * cfg.assoc) (-1);
    stamps = Array.make (nsets * cfg.assoc) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0

(** [access t addr] touches the line containing byte address [addr];
    returns [true] on hit. *)
let access t addr =
  let line = addr / t.cfg.line_bytes in
  let set = line mod t.nsets in
  let base = set * t.cfg.assoc in
  t.clock <- t.clock + 1;
  let rec find w =
    if w >= t.cfg.assoc then None
    else if t.tags.(base + w) = line then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
      t.stamps.(base + w) <- t.clock;
      t.hits <- t.hits + 1;
      true
  | None ->
      (* evict LRU way *)
      let victim = ref 0 in
      for w = 1 to t.cfg.assoc - 1 do
        if t.stamps.(base + w) < t.stamps.(base + !victim) then victim := w
      done;
      t.tags.(base + !victim) <- line;
      t.stamps.(base + !victim) <- t.clock;
      t.misses <- t.misses + 1;
      false

let hits t = t.hits
let misses t = t.misses
