(** Exact linear and integer linear programming.

    This module replaces PipLib in the original Pluto tool-chain.  It provides
    an exact rational primal simplex (two-phase, Bland's anti-cycling rule), a
    branch-and-bound integer solver on top of it, and the lexicographic
    minimization used to pick transformation coefficients (eq. (5) of the
    paper).

    Variables are free by default; with [~nonneg:true] they are constrained to
    be non-negative (Pluto's coefficient search uses this, per §4.2 of the
    paper).  Branch-and-bound terminates only on polyhedra whose integer
    optimum is attained in a bounded region; callers are expected to supply
    bounding constraints (the Pluto search bounds coefficients, the dependence
    tester fixes structure parameters). *)

(** Result of rational linear programming. *)
type lp_result =
  | Lp_optimal of Q.t * Q.t array  (** optimal value and a minimizing point *)
  | Lp_infeasible
  | Lp_unbounded

(** [lp ?nonneg sys obj] minimizes [obj·x] over the rational points of [sys].
    [obj] has length [sys.nvars]. *)
val lp : ?nonneg:bool -> Polyhedra.t -> Q.t array -> lp_result

(** Result of integer linear programming. *)
type ilp_result =
  | Ilp_optimal of Bigint.t * Bigint.t array
  | Ilp_infeasible
  | Ilp_unbounded

exception Node_limit_exceeded

(** [ilp ?nonneg ?node_limit sys obj] minimizes the integer objective [obj·x]
    over the integer points of [sys].
    @raise Node_limit_exceeded when the branch-and-bound tree exceeds
    [node_limit] (default 200_000) nodes. *)
val ilp : ?nonneg:bool -> ?node_limit:int -> Polyhedra.t -> Vec.t -> ilp_result

(** [feasible ?nonneg sys] decides whether [sys] contains an integer point and
    returns a witness. *)
val feasible : ?nonneg:bool -> ?node_limit:int -> Polyhedra.t -> Bigint.t array option

(** [lexmin ?nonneg sys] is the lexicographically smallest integer point of
    [sys] (minimizing variable 0 first, then variable 1, ...), or [None] if
    empty.
    @raise Failure if some coordinate is unbounded below. *)
val lexmin : ?nonneg:bool -> ?node_limit:int -> Polyhedra.t -> Bigint.t array option

(** [lexmin_order ?nonneg sys order] generalizes {!lexmin} to an explicit
    priority order over a subset of the variables; variables not listed are
    left unoptimized (any feasible value). *)
val lexmin_order :
  ?nonneg:bool -> ?node_limit:int -> Polyhedra.t -> int list -> Bigint.t array option
