(** End-to-end driver: the programmatic equivalent of running the [plutocc]
    tool.  Wires together dependence analysis, the transformation search,
    tiling, parallelization and code generation with the policy described in
    the paper (§5–§6):

    - find hyperplanes (Auto.transform);
    - tile every permutable band of width >= [min_band_tile] (Algorithm 1),
      with tile sizes from the rough cache model unless given;
    - if the outermost tile loop is parallel, mark it for OpenMP; otherwise
      extract [wavefront] degrees of pipelined parallelism (Algorithm 2);
    - optionally move an intra-tile parallel loop innermost (§5.4) for
      vectorization. *)

type options = {
  tile : bool;
  tile_size : int option;  (** uniform tile size; [None] = rough model *)
  parallelize : bool;
  wavefront : int;  (** degrees of pipelined parallelism to extract *)
  intra_reorder : bool;  (** §5.4 post-pass *)
  min_band_tile : int;  (** minimum band width worth tiling *)
  auto : Pluto.Auto.config;
  context_min : int;
}

val default_options : options

(** Options matching the paper's main experiments: tile + parallelize with
    one degree of pipelined parallelism, intra-tile reordering on. *)
val paper_options : options

type result = {
  program : Ir.program;
  deps : Deps.t list;
  transform : Pluto.Types.transform;
  target : Pluto.Types.target;
  code : Codegen.t;
}

(** [compile ?options program] runs the full pipeline.
    @raise Pluto.Auto.No_transform if the search fails. *)
val compile : ?options:options -> Ir.program -> result

(** [compile_source ?options ?name src] parses first. *)
val compile_source : ?options:options -> ?name:string -> string -> result

(** [compile_with_transform ?options program deps transform] skips the search
    and applies tiling/parallelization/codegen to an externally supplied
    transformation (used by the baseline schemes). *)
val compile_with_transform :
  ?options:options -> Ir.program -> Deps.t list -> Pluto.Types.transform -> result

(** The identity (original program order) pipeline — the "native compiler"
    baseline; no tiling or parallelization. *)
val compile_original : ?options:options -> Ir.program -> result
