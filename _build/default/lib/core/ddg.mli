(** Strongly connected components of the data dependence graph, used to cut
    the transformed space between components when no further common
    hyperplane exists (loop distribution / partial fusion, §3 of the
    paper). *)

(** [sccs ~nstmts edges] computes the SCCs of the directed graph over ids
    [0..nstmts-1].  Returns [(comp, ncomp)] where [comp.(v)] is the
    component of [v], components numbered in topological order: every edge
    goes from a lower-or-equal to a higher-or-equal component. *)
val sccs : nstmts:int -> (int * int) list -> int array * int
