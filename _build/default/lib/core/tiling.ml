(** Tiling of permutable bands under statement-wise transformations
    (Algorithm 1 of the paper), wavefront extraction of pipelined parallelism
    (Algorithm 2), and construction of the code-generator-facing target.

    Tiling a band of width [k] adds, per statement, [k] supernode iterators
    [zT] with the Ancourt–Irigoin-style shape constraints

      τ_j·zT_j <= φ_j(i) + c0_j <= τ_j·zT_j + τ_j - 1

    and prepends the scattering rows [φT_j = zT_j] directly above the band.
    Theorem 1 of the paper guarantees all dependences remain forward in the
    supernode dimensions, so the tile-space band is itself permutable; the
    wavefront transformation φT¹ ← φT¹ + ... + φT^{m+1} then exposes [m]
    degrees of coarse-grained (pipelined) parallelism. *)

open Types

(** A maximal run of [Loop] levels sharing a band id: [(start, len, parallel_levels)]. *)
type band = { b_start : int; b_len : int }

let bands_of (t : transform) =
  let bands = ref [] in
  let cur = ref None in
  Array.iteri
    (fun l k ->
      match (k, !cur) with
      | Loop { band = b; _ }, Some (b', start) when b = b' -> ignore (start, l)
      | Loop { band = b; _ }, Some (b', start) when b <> b' ->
          bands := { b_start = start; b_len = l - start } :: !bands;
          cur := Some (b, l)
      | Loop { band = b; _ }, None -> cur := Some (b, l)
      | Scalar, Some (_, start) ->
          bands := { b_start = start; b_len = l - start } :: !bands;
          cur := None
      | Scalar, None -> ()
      | Loop _, Some _ -> assert false)
    t.kinds;
  (match !cur with
  | Some (_, start) ->
      bands := { b_start = start; b_len = Array.length t.kinds - start } :: !bands
  | None -> ());
  List.rev !bands

(** [level_is_parallel t l] — reads the flag recorded by the search. *)
let level_is_parallel (t : transform) l =
  match t.kinds.(l) with Loop { parallel; _ } -> parallel | Scalar -> false

(* --------------------------- target construction ------------------------- *)

let untiled_target (t : transform) : target =
  let tstmts =
    List.map
      (fun s ->
        let m = Ir.depth s in
        {
          stmt = s;
          ext_iters = Array.of_list s.Ir.iters;
          ext_domain = s.Ir.domain;
          trows =
            Array.map Array.copy t.rows.(s.Ir.id)
            |> Array.map (fun r ->
                   if Array.length r <> m + 1 then
                     invalid_arg "Tiling.untiled_target: row width"
                   else r);
        })
      t.program.Ir.stmts
  in
  let tpar =
    Array.mapi
      (fun _l k ->
        match k with
        | Loop { parallel = true; _ } -> Par
        | Loop _ | Scalar -> Seq)
      t.kinds
  in
  {
    tprogram = t.program;
    tnlevels = t.nlevels;
    tkinds = Array.copy t.kinds;
    tpar;
    tvec = Array.make t.nlevels false;
    tstmts;
  }

(** Multi-level tiling (Algorithm 1, applied once per requested level —
    "Tiling multiple times", 5.2 of the paper): [bands_sizes] maps each band
    to a list of per-level size vectors, outermost first (e.g. L2 tiles then
    L1 tiles).  Every size vector must have the band's width. *)
let tile_levels (t : transform)
    ~(bands_sizes : (band * int array list) list) : target =
  List.iter
    (fun (b, size_list) ->
      if size_list = [] then invalid_arg "Tiling.tile_levels: no sizes";
      List.iter
        (fun sizes ->
          if Array.length sizes <> b.b_len then
            invalid_arg "Tiling.tile_levels: size vector does not match band width")
        size_list)
    bands_sizes;
  let tiled_at l =
    List.find_opt (fun (b, _) -> b.b_start = l) bands_sizes
  in
  (* global supernode layout: for each band (in order), for each tiling
     level q (outermost first), for each band level j: one supernode *)
  let super_index = Hashtbl.create 16 in
  let n_super = ref 0 in
  List.iter
    (fun (b, size_list) ->
      List.iteri
        (fun q _ ->
          for j = 0 to b.b_len - 1 do
            Hashtbl.replace super_index (b.b_start, q, j) !n_super;
            incr n_super
          done)
        size_list)
    bands_sizes;
  let n_super = !n_super in
  let np = Ir.nparams t.program in
  let tstmts =
    List.map
      (fun s ->
        let m = Ir.depth s in
        let rows = t.rows.(s.Ir.id) in
        let ext_n = n_super + m in
        let ext_iters =
          Array.append
            (Array.init n_super (fun i -> Printf.sprintf "zT%d" i))
            (Array.of_list s.Ir.iters)
        in
        (* widen original domain: insert n_super leading columns *)
        let ext_domain = Polyhedra.insert_vars s.Ir.domain ~at:0 ~count:n_super in
        (* tile shape constraints per band, per tiling level *)
        let shape =
          List.concat_map
            (fun (b, size_list) ->
              Putil.concat_map_i
                (fun q sizes ->
                  List.concat_map
                    (fun j ->
                      let l = b.b_start + j in
                      let tau = sizes.(j) in
                      let z = Hashtbl.find super_index (b.b_start, q, j) in
                      let row = rows.(l) in
                      (* phi(i) + c0 - tau*z >= 0 *)
                      let lo = Vec.zero (ext_n + np + 1) in
                      for qq = 0 to m - 1 do
                        lo.(n_super + qq) <- Bigint.of_int row.(qq)
                      done;
                      lo.(ext_n + np) <- Bigint.of_int row.(m);
                      lo.(z) <- Bigint.of_int (-tau);
                      (* tau*z + tau - 1 - phi(i) - c0 >= 0 *)
                      let hi = Vec.neg lo in
                      hi.(ext_n + np) <-
                        Bigint.add hi.(ext_n + np) (Bigint.of_int (tau - 1));
                      [ Polyhedra.ge lo; Polyhedra.ge hi ])
                    (Putil.range b.b_len))
                size_list)
            bands_sizes
        in
        let ext_domain =
          Polyhedra.meet ext_domain (Polyhedra.of_constrs (ext_n + np) shape)
        in
        let widen_row (r : int array) =
          Array.init (ext_n + 1) (fun q ->
              if q < n_super then 0
              else if q < ext_n then r.(q - n_super)
              else r.(m))
        in
        let super_row z =
          Array.init (ext_n + 1) (fun q -> if q = z then 1 else 0)
        in
        let trows = ref [] in
        Array.iteri
          (fun l _k ->
            (match tiled_at l with
            | Some (b, size_list) ->
                List.iteri
                  (fun q _ ->
                    for j = 0 to b.b_len - 1 do
                      trows :=
                        super_row (Hashtbl.find super_index (b.b_start, q, j))
                        :: !trows
                    done)
                  size_list
            | None -> ());
            trows := widen_row rows.(l) :: !trows)
          t.kinds;
        {
          stmt = s;
          ext_iters;
          ext_domain;
          trows = Array.of_list (List.rev !trows);
        })
      t.program.Ir.stmts
  in
  (* level kinds / parallelism in target order *)
  let tkinds = ref [] and tpar = ref [] in
  Array.iteri
    (fun l k ->
      (match tiled_at l with
      | Some (b, size_list) ->
          List.iteri
            (fun q _ ->
              for j = 0 to b.b_len - 1 do
                let pl = level_is_parallel t (b.b_start + j) in
                tkinds :=
                  Loop { band = 1000 + (10 * b.b_start) + q; parallel = pl }
                  :: !tkinds;
                tpar := Seq :: !tpar
              done)
            size_list
      | None -> ());
      tkinds := k :: !tkinds;
      tpar :=
        (match k with
        | Loop { parallel = true; _ } -> Par
        | Loop _ | Scalar -> Seq)
        :: !tpar)
    t.kinds;
  {
    tprogram = t.program;
    tnlevels = List.length !tkinds;
    tkinds = Array.of_list (List.rev !tkinds);
    tpar = Array.of_list (List.rev !tpar);
    tvec = Array.make (List.length !tkinds) false;
    tstmts;
  }

(** Single-level tiling (the common case). *)
let tile (t : transform) ~(bands_sizes : (band * int array) list) : target =
  tile_levels t
    ~bands_sizes:(List.map (fun (b, sizes) -> (b, [ sizes ])) bands_sizes)

(** Offsets of a tiled band's outermost supernode levels in the target level
    order ([nlevels_of] gives each band's tiling-level count; defaults 1). *)
let target_band_levels_multi (t : transform)
    ~(bands_sizes : (band * int array list) list) (b : band) =
  let supers_before =
    Putil.sum_by
      (fun ((b' : band), size_list) ->
        if b'.b_start < b.b_start then List.length size_list * b'.b_len else 0)
      bands_sizes
  in
  ignore t;
  List.init b.b_len (fun j -> supers_before + b.b_start + j)

(** Offsets of a (single-level-)tiled band's supernode levels. *)
let target_band_levels (t : transform)
    ~(bands_sizes : (band * int array) list) (b : band) =
  target_band_levels_multi t
    ~bands_sizes:(List.map (fun (b, sizes) -> (b, [ sizes ])) bands_sizes)
    b

(** Algorithm 2: wavefront the [m+1] leading supernode levels of a tiled band
    (given by their target-level indices [levels]).  The first level becomes
    the sum of the first [m+1]; levels 2..m+1 are marked [Par]. *)
let wavefront (tgt : target) ~(levels : int list) ~(degrees : int) =
  match levels with
  | [] -> tgt
  | first :: _ ->
      let m = min degrees (List.length levels - 1) in
      if m <= 0 then
        (* nothing to pipeline: if the first level is already parallel it can
           be marked Par directly *)
        tgt
      else begin
        let summed = Putil.take (m + 1) levels in
        let tstmts =
          List.map
            (fun ts ->
              let trows = Array.map Array.copy ts.trows in
              let width = Array.length ts.ext_iters + 1 in
              let sum = Array.make width 0 in
              List.iter
                (fun l ->
                  Array.iteri (fun q v -> sum.(q) <- sum.(q) + v) trows.(l))
                summed;
              trows.(first) <- sum;
              { ts with trows })
            tgt.tstmts
        in
        let tpar = Array.copy tgt.tpar in
        List.iteri
          (fun i l -> if i > 0 then tpar.(l) <- Par)
          summed;
        tpar.(first) <- Seq;
        { tgt with tstmts; tpar }
      end

(** Mark outer-parallel loop levels [Par] for OpenMP (used when no wavefront
    is applied): the outermost [max_degrees] parallel [Loop] levels. *)
let mark_outer_parallel (tgt : target) ~(max_degrees : int) =
  let tpar = Array.copy tgt.tpar in
  let marked = ref 0 in
  Array.iteri
    (fun l k ->
      match k with
      | Loop { parallel = true; _ } when !marked < max_degrees ->
          tpar.(l) <- Par;
          incr marked
      | _ -> ())
    tgt.tkinds;
  { tgt with tpar }

(** §5.4 intra-tile reordering: within the intra-tile rows of each tiled
    band, move a parallel level innermost (for vectorization by the native
    compiler / the simulator's vectorization model).  [intra_levels] are the
    target level indices of the band's point loops. *)
let move_parallel_innermost (tgt : target) ~(intra_levels : int list) =
  (* among parallel point loops prefer the innermost one: in the common
     row-major kernels it is the one with unit-stride accesses, which is what
     the vectorizer wants *)
  match
    List.fold_left
      (fun acc l ->
        match tgt.tkinds.(l) with
        | Loop { parallel = true; _ } -> Some l
        | _ -> acc)
      None intra_levels
  with
  | None -> tgt
  | Some lpar ->
      let last = Putil.list_max intra_levels in
      if lpar = last then tgt
      else begin
        (* rotate levels lpar..last left by one *)
        let perm = Array.init tgt.tnlevels (fun l -> l) in
        for l = lpar to last - 1 do
          perm.(l) <- l + 1
        done;
        perm.(last) <- lpar;
        let permute a = Array.init (Array.length a) (fun l -> a.(perm.(l))) in
        {
          tgt with
          tkinds = permute tgt.tkinds;
          tpar = permute tgt.tpar;
          tvec = permute tgt.tvec;
          tstmts =
            List.map (fun ts -> { ts with trows = permute ts.trows }) tgt.tstmts;
        }
      end

(** A rough tile-size model in the spirit of §7: equal sizes such that a
    tile's data footprint is a fraction of the cache.  [cache_elems] is the
    cache capacity in array elements. *)
let default_tile_size ~band_width ~cache_elems ~narrays =
  if band_width <= 0 then 32
  else begin
    let per_array = float_of_int cache_elems /. float_of_int (max 1 narrays) in
    let tau =
      int_of_float (Float.round (per_array ** (1.0 /. float_of_int band_width)))
    in
    max 4 (min 32 tau)
  end

(** §5.4, second half: when no point loop of the band is parallel, move the
    level with the best spatial locality (the one stepping the statements'
    fastest-varying array dimension) innermost and mark it for forced
    vectorization — the generated C carries an ignore-dependence pragma, as
    the paper's tool does.  Legal because the band is fully permutable. *)
let force_vectorize_innermost (tgt : target) ~(intra_levels : int list) =
  match intra_levels with
  | [] -> tgt
  | _ ->
      (* spatial score of a level: statements whose scattering row at that
         level uses their innermost original iterator *)
      let score l =
        Putil.sum_by
          (fun ts ->
            let m = Ir.depth ts.stmt in
            let ext_n = Array.length ts.ext_iters in
            if m > 0 && ts.trows.(l).(ext_n - 1) <> 0 then 1 else 0)
          tgt.tstmts
      in
      let best =
        List.fold_left
          (fun acc l ->
            match acc with
            | None -> Some l
            | Some b -> if score l >= score b then Some l else acc)
          None intra_levels
      in
      (match best with
      | None -> tgt
      | Some lbest when score lbest = 0 -> tgt
      | Some lbest ->
          let last = Putil.list_max intra_levels in
          let perm = Array.init tgt.tnlevels (fun l -> l) in
          for l = lbest to last - 1 do
            perm.(l) <- l + 1
          done;
          perm.(last) <- lbest;
          let permute a = Array.init (Array.length a) (fun l -> a.(perm.(l))) in
          let tvec = permute tgt.tvec in
          tvec.(last) <- true;
          {
            tgt with
            tkinds = permute tgt.tkinds;
            tpar = permute tgt.tpar;
            tvec;
            tstmts =
              List.map (fun ts -> { ts with trows = permute ts.trows }) tgt.tstmts;
          })
