lib/core/ddg.ml: Array List
