lib/core/types.ml: Deps Hashtbl Ir Polyhedra Printf
