lib/core/tiling.mli: Types
