lib/core/tiling.ml: Array Bigint Float Hashtbl Ir List Polyhedra Printf Putil Types Vec
