lib/core/auto.mli: Deps Format Ir Types
