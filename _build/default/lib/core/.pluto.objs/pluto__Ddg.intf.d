lib/core/ddg.mli:
