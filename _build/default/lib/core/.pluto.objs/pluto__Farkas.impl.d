lib/core/farkas.ml: Array Bigint List Polyhedra Putil Vec
