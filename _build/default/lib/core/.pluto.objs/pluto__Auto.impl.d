lib/core/auto.ml: Array Bigint Ddg Deps Farkas Format Hashtbl Ir List Mat Milp Option Polyhedra Printf Putil Types Vec
