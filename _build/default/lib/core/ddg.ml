(** Strongly connected components of the data dependence graph, used to cut
    the transformed space between components when no further common
    hyperplane exists (loop distribution / partial fusion). *)

(** [sccs ~nstmts edges] computes SCCs of the directed graph over statement
    ids [0..nstmts-1] with edge list [(src, dst)].  Returns an array mapping
    each statement id to its component index, with components numbered in
    topological order (every edge goes from a lower or equal component to a
    higher or equal one). *)
let sccs ~nstmts (edges : (int * int) list) =
  let adj = Array.make nstmts [] in
  List.iter
    (fun (s, d) -> if s <> d then adj.(s) <- d :: adj.(s))
    edges;
  (* Tarjan's algorithm *)
  let index = Array.make nstmts (-1) in
  let lowlink = Array.make nstmts 0 in
  let on_stack = Array.make nstmts false in
  let stack = ref [] in
  let counter = ref 0 in
  let comp = Array.make nstmts (-1) in
  let ncomp = ref 0 in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop () =
        match !stack with
        | [] -> assert false
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp.(w) <- !ncomp;
            if w <> v then pop ()
      in
      pop ();
      incr ncomp
    end
  in
  for v = 0 to nstmts - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (* Tarjan numbers components in reverse topological order; flip, then
     renumber in a stable topological order. *)
  let n = !ncomp in
  let topo = Array.map (fun c -> n - 1 - c) comp in
  (topo, n)
