(** Tiling of permutable bands under statement-wise transformations
    (Algorithm 1 of the paper), wavefront extraction of pipelined parallelism
    (Algorithm 2), the §5.4 intra-tile reordering post-pass, and construction
    of the code-generator-facing target.

    Tiling a band of width [k] adds, per statement, [k] supernode iterators
    [zT_j] constrained Ancourt–Irigoin-style,

      τ_j·zT_j <= φ_j(i) + c0_j <= τ_j·zT_j + τ_j − 1,

    and prepends the scattering rows [φT_j = zT_j] directly above the band.
    By Theorem 1 of the paper the supernode dimensions inherit all forward
    dependences, so the tile-space band is itself permutable and the
    wavefront φT¹ ← φT¹ + ... + φT^{m+1} legally exposes [m] degrees of
    coarse-grained pipelined parallelism. *)

(** A maximal run of consecutive [Loop] levels sharing a band id. *)
type band = { b_start : int; b_len : int }

(** [bands_of t] — the permutable bands of a transformation, in level order. *)
val bands_of : Types.transform -> band list

val level_is_parallel : Types.transform -> int -> bool

(** [untiled_target t] — the target with original domains and the
    transformation rows as scattering (no supernodes). *)
val untiled_target : Types.transform -> Types.target

(** [tile t ~bands_sizes] applies Algorithm 1 to every listed band
    ([(band, per-level tile sizes)]); other bands stay untiled.
    @raise Invalid_argument if a size vector does not match its band width. *)
val tile : Types.transform -> bands_sizes:(band * int array) list -> Types.target

(** [target_band_levels t ~bands_sizes b] — the target-level indices of band
    [b]'s supernode (tile-space) loops after tiling. *)
val target_band_levels :
  Types.transform -> bands_sizes:(band * int array) list -> band -> int list

(** [wavefront tgt ~levels ~degrees] applies Algorithm 2 to the tile-space
    levels [levels]: the first becomes the sum of the first [degrees+1]
    (a legal schedule of tiles, unimodular in tile space), and levels
    2..degrees+1 are marked parallel. *)
val wavefront : Types.target -> levels:int list -> degrees:int -> Types.target

(** [mark_outer_parallel tgt ~max_degrees] marks up to [max_degrees]
    outermost synchronization-free loop levels for OpenMP. *)
val mark_outer_parallel : Types.target -> max_degrees:int -> Types.target

(** §5.4: within a band's point loops, move a parallel level innermost (the
    innermost parallel one, which has unit strides in the common row-major
    kernels) so the vectorizer can use it.  Tile shapes and the tile-space
    schedule are unchanged. *)
val move_parallel_innermost : Types.target -> intra_levels:int list -> Types.target

(** The rough tile-size model of §7: equal sizes such that a tile's data
    footprint is a fraction of the cache ([cache_elems] array elements),
    clamped to [4, 32]. *)
val default_tile_size : band_width:int -> cache_elems:int -> narrays:int -> int

(** Multi-level tiling ("Tiling multiple times", §5.2): each band maps to a
    list of size vectors, outermost (e.g. L2) first.  The same hyperplanes
    tile every level; legality is guaranteed by Theorem 1 at each level. *)
val tile_levels :
  Types.transform -> bands_sizes:(band * int array list) list -> Types.target

(** [target_band_levels_multi] — like {!target_band_levels} for multi-level
    tiling; returns the OUTERMOST tiling group's level indices (the ones the
    wavefront applies to). *)
val target_band_levels_multi :
  Types.transform -> bands_sizes:(band * int array list) list -> band -> int list

(** §5.4, second half: when no point loop of a band is parallel, move the
    band's best-spatial-locality level innermost and mark it ([tvec]) for
    forced vectorization with an ignore-dependence pragma, as the paper's
    tool does.  Tile shapes and the tile-space schedule are unchanged. *)
val force_vectorize_innermost : Types.target -> intra_levels:int list -> Types.target
