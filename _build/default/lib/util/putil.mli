(** Small shared helpers used across the Pluto libraries. *)

(** Non-negative gcd; [gcd_int 0 0 = 0]. *)
val gcd_int : int -> int -> int

val lcm_int : int -> int -> int

(** [range n] is [[0; 1; ...; n-1]]. *)
val range : int -> int list

val sum_by : ('a -> int) -> 'a list -> int

(** @raise Invalid_argument on the empty list. *)
val list_max : int list -> int

val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list
val concat_map_i : (int -> 'a -> 'b list) -> 'a list -> 'b list

(** @raise Invalid_argument on length mismatch. *)
val array_for_all2 : ('a -> 'b -> bool) -> 'a array -> 'b array -> bool

(** [pp_list sep pp] formats a list with separator [sep]; [sep] is
    interpreted as a format string, so break hints like ["@,"] work.
    @raise Scanf.Scan_failure if [sep] contains formatting directives. *)
val pp_list :
  string -> (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a list -> unit

val string_of_format : (Format.formatter -> 'a -> unit) -> 'a -> string

(** [fixpoint step x] applies [step] until it returns [None]. *)
val fixpoint : ('a -> 'a option) -> 'a -> 'a

module Fresh : sig
  type t

  val create : string -> t
  val next : t -> string
end
