(** Arbitrary-precision signed integers.

    This module is the repository's substitute for GMP: exact, overflow-free
    integer arithmetic used by the linear-algebra, polyhedral and ILP layers.
    Values are immutable. Magnitudes are stored little-endian in base [2^30].

    Division conventions: {!divmod} truncates toward zero (like OCaml's [/]
    and [mod]); {!fdiv}/{!fmod} round toward negative infinity; {!cdiv} rounds
    toward positive infinity. The latter two implement the [floord]/[ceild]
    operators of generated polyhedral code. *)

type t

val zero : t
val one : t
val minus_one : t

(** [of_int n] converts a native integer exactly. *)
val of_int : int -> t

(** [to_int t] converts back to a native integer.
    @raise Failure if the value does not fit. *)
val to_int : t -> int

(** [to_int_opt t] is [Some n] iff the value fits in a native [int]. *)
val to_int_opt : t -> int option

val of_string : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [sign t] is [-1], [0] or [1]. *)
val sign : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val is_zero : t -> bool
val is_one : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [q] truncated toward zero and
    [sign r = sign a] (or [r = 0]).
    @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

(** Truncating division, [fst (divmod a b)]. *)
val div : t -> t -> t

(** Truncating remainder, [snd (divmod a b)]. *)
val rem : t -> t -> t

(** Floor division: largest [q] with [q*b <= a] (for [b > 0]). *)
val fdiv : t -> t -> t

(** Floor remainder: [a - b * fdiv a b]; non-negative when [b > 0]. *)
val fmod : t -> t -> t

(** Ceiling division: smallest [q] with [q*b >= a] (for [b > 0]). *)
val cdiv : t -> t -> t

(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)
val gcd : t -> t -> t

(** [lcm a b] is the non-negative least common multiple. *)
val lcm : t -> t -> t

val min : t -> t -> t
val max : t -> t -> t

(** [mul_int t n] multiplies by a native integer. *)
val mul_int : t -> int -> t

(** [add_int t n] adds a native integer. *)
val add_int : t -> int -> t

(** [pow t n] raises to a non-negative native power.
    @raise Invalid_argument on negative exponent. *)
val pow : t -> int -> t

(** Infix and comparison operators, intended for local [open Bigint.Ops]. *)
module Ops : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
  val ( ! ) : int -> t
end
