(* Arbitrary-precision signed integers: sign-and-magnitude, magnitudes stored
   little-endian in base 2^30.  Invariant: [mag] has no trailing zero limb and
   [sign = 0] iff [mag] is empty.  Limb products fit in OCaml's 63-bit native
   int (30 + 30 bits plus carries), so no wider arithmetic is needed. *)

type t = { sign : int; mag : int array }

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

(* ---------- magnitude helpers (arrays of limbs, little-endian) ---------- *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_cmp a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec loop i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else loop (i - 1)
    in
    loop (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + Stdlib.max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  mag_normalize r

(* precondition: a >= b *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          let v = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- v land base_mask;
          carry := v lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let v = r.(!k) + !carry in
          r.(!k) <- v land base_mask;
          carry := v lsr base_bits;
          incr k
        done
      end
    done;
    mag_normalize r
  end

(* Short division by a single positive limb; returns (quotient, remainder). *)
let mag_divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_normalize q, !r)

(* Binary long division for multi-limb divisors: scan the dividend's bits
   from most to least significant, maintaining remainder [r] < divisor. *)
let mag_divmod a b =
  let c = mag_cmp a b in
  if c < 0 then ([||], a)
  else if Array.length b = 1 then begin
    let q, r = mag_divmod_limb a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    let la = Array.length a in
    let nbits = la * base_bits in
    let q = Array.make la 0 in
    (* remainder scratch: at most length of b + 1 limbs *)
    let lr = Array.length b + 1 in
    let r = Array.make lr 0 in
    let rlen = ref 0 in
    (* r := 2*r + bit, in place *)
    let shift_in bit =
      let carry = ref bit in
      for i = 0 to !rlen - 1 do
        let v = (r.(i) lsl 1) lor !carry in
        r.(i) <- v land base_mask;
        carry := v lsr base_bits
      done;
      if !carry <> 0 then begin
        r.(!rlen) <- !carry;
        incr rlen
      end
    in
    let r_ge_b () =
      let lb = Array.length b in
      if !rlen <> lb then !rlen > lb
      else
        let rec loop i =
          if i < 0 then true
          else if r.(i) <> b.(i) then r.(i) > b.(i)
          else loop (i - 1)
        in
        loop (lb - 1)
    in
    let r_sub_b () =
      let lb = Array.length b in
      let borrow = ref 0 in
      for i = 0 to !rlen - 1 do
        let d = r.(i) - (if i < lb then b.(i) else 0) - !borrow in
        if d < 0 then begin
          r.(i) <- d + base;
          borrow := 1
        end
        else begin
          r.(i) <- d;
          borrow := 0
        end
      done;
      while !rlen > 0 && r.(!rlen - 1) = 0 do
        decr rlen
      done
    in
    for bit = nbits - 1 downto 0 do
      let limb = bit / base_bits and off = bit mod base_bits in
      shift_in ((a.(limb) lsr off) land 1);
      if r_ge_b () then begin
        r_sub_b ();
        q.(limb) <- q.(limb) lor (1 lsl off)
      end
    done;
    (mag_normalize q, mag_normalize (Array.sub r 0 !rlen))
  end

(* ------------------------------ public API ------------------------------ *)

let zero = { sign = 0; mag = [||] }
let one = { sign = 1; mag = [| 1 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

let make sign mag = if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* Careful with min_int: abs min_int overflows, so peel limbs using
       arithmetic that stays within the negative range. *)
    if n = Stdlib.min_int then begin
      let rec limbs v acc =
        if v = 0 then List.rev acc
        else limbs (-((-v) lsr base_bits)) ((-v land base_mask) :: acc)
      in
      make sign (Array.of_list (limbs n []))
    end
    else begin
      let v = ref (abs n) in
      let acc = ref [] in
      while !v <> 0 do
        acc := (!v land base_mask) :: !acc;
        v := !v lsr base_bits
      done;
      make sign (Array.of_list (List.rev !acc))
    end
  end

let to_int_opt t =
  let n = Array.length t.mag in
  if n = 0 then Some 0
  else if n > 3 then None
  else begin
    (* max_int has 62 bits = 2 limbs + 2 bits *)
    let rec value i acc =
      if i < 0 then Some acc
      else if acc > (Stdlib.max_int - t.mag.(i)) lsr base_bits then None
      else value (i - 1) ((acc lsl base_bits) lor t.mag.(i))
    in
    match value (n - 1) 0 with
    | None -> None
    | Some v -> Some (if t.sign < 0 then -v else v)
  end

let to_int t =
  match to_int_opt t with
  | Some v -> v
  | None -> failwith "Bigint.to_int: value does not fit in a native int"

let sign t = t.sign
let is_zero t = t.sign = 0
let is_one t = t.sign = 1 && Array.length t.mag = 1 && t.mag.(0) = 1

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_cmp a.mag b.mag
  else mag_cmp b.mag a.mag

let equal a b = compare a b = 0

let hash t = Hashtbl.hash (t.sign, t.mag)

let neg t = make (-t.sign) t.mag
let abs t = make (Stdlib.abs t.sign) t.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else begin
    let c = mag_cmp a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (mag_sub a.mag b.mag)
    else make b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mag_mul a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = mag_divmod a.mag b.mag in
    (make (a.sign * b.sign) qm, make a.sign rm)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let fdiv a b =
  let q, r = divmod a b in
  if r.sign <> 0 && r.sign <> b.sign then sub q one else q

let fmod a b =
  let r = rem a b in
  if r.sign <> 0 && r.sign <> b.sign then add r b else r

let cdiv a b =
  let q, r = divmod a b in
  if r.sign <> 0 && r.sign = b.sign then add q one else q

let rec gcd a b = if b.sign = 0 then abs a else gcd b (rem a b)

let lcm a b =
  if a.sign = 0 || b.sign = 0 then zero else abs (div (mul a b) (gcd a b))

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let mul_int t n = mul t (of_int n)
let add_int t n = add t (of_int n)

let pow t n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1)
    else go acc (mul b b) (n lsr 1)
  in
  go one t n

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let chunks = ref [] in
    let m = ref t.mag in
    while Array.length !m > 0 do
      let q, r = mag_divmod_limb !m 1_000_000_000 in
      chunks := r :: !chunks;
      m := q
    done;
    let buf = Buffer.create 16 in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
    | [] -> assert false
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if negative then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Ops = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
  let ( ! ) = of_int
end
