(** Front-end: a lexer, recursive-descent parser and polyhedral extractor for
    the static-control C subset Pluto accepts.

    Accepted input (the LooPo-scanner substitute):

    {v
    double a[N][N], b[N];        // array declarations; extents affine in params
    for (t = 0; t < T; t++) {    // step-1 counted loops, affine bounds
      for (i = 2; i <= N - 2; i++)
        b[i] = 0.333 * (a[i-1][0] + a[i][0]);
      for (j = 2; j < N - 1; j++)
        a[j][0] = b[j];
    }
    v}

    - loop bounds and array subscripts must be affine in surrounding
      iterators and parameters;
    - any identifier that is not a declared array and not a loop iterator is
      a program parameter;
    - [#] preprocessor lines and comments are ignored;
    - assignments are floating-point expressions over array accesses.

    Errors are reported with line/column positions. *)

exception Parse_error of string

(** [parse_program ~name src] parses and extracts the polyhedral IR.
    @raise Parse_error on syntax or non-affine constructs. *)
val parse_program : ?name:string -> string -> Ir.program
