exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* --------------------------------- lexer --------------------------------- *)

type token =
  | Tid of string
  | Tint of int
  | Tfloat of float
  | Tfor
  | Tdouble
  | Tfloatkw
  | Tint_kw
  | Tlparen
  | Trparen
  | Tlbrack
  | Trbrack
  | Tlbrace
  | Trbrace
  | Tsemi
  | Tcomma
  | Tassign
  | Tpluseq
  | Tminuseq
  | Tstareq
  | Tplus
  | Tminus
  | Tstar
  | Tslash
  | Tlt
  | Tle
  | Tgt
  | Tge
  | Tinc
  | Teof

let token_name = function
  | Tid s -> Printf.sprintf "identifier %S" s
  | Tint n -> Printf.sprintf "integer %d" n
  | Tfloat f -> Printf.sprintf "float %g" f
  | Tfor -> "'for'"
  | Tdouble -> "'double'"
  | Tfloatkw -> "'float'"
  | Tint_kw -> "'int'"
  | Tlparen -> "'('"
  | Trparen -> "')'"
  | Tlbrack -> "'['"
  | Trbrack -> "']'"
  | Tlbrace -> "'{'"
  | Trbrace -> "'}'"
  | Tsemi -> "';'"
  | Tcomma -> "','"
  | Tassign -> "'='"
  | Tpluseq -> "'+='"
  | Tminuseq -> "'-='"
  | Tstareq -> "'*='"
  | Tplus -> "'+'"
  | Tminus -> "'-'"
  | Tstar -> "'*'"
  | Tslash -> "'/'"
  | Tlt -> "'<'"
  | Tle -> "'<='"
  | Tgt -> "'>'"
  | Tge -> "'>='"
  | Tinc -> "'++'"
  | Teof -> "end of input"

type ptok = { tok : token; line : int; col : int }

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let i = ref 0 in
  let emit tok col = toks := { tok; line = !line; col } :: !toks in
  let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_id c = is_id_start c || (c >= '0' && c <= '9') in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = src.[!i] in
    let col = !i - !bol + 1 in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      (* preprocessor line: skip to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let finished = ref false in
      while not !finished do
        if !i + 1 >= n then fail "line %d: unterminated comment" !line;
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          i := !i + 2;
          finished := true
        end
        else begin
          if src.[!i] = '\n' then begin
            incr line;
            bol := !i + 1
          end;
          incr i
        end
      done
    end
    else if is_id_start c then begin
      let start = !i in
      while !i < n && is_id src.[!i] do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      let tok =
        match s with
        | "for" -> Tfor
        | "double" -> Tdouble
        | "float" -> Tfloatkw
        | "int" -> Tint_kw
        | _ -> Tid s
      in
      emit tok col
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && (src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = 'E') then begin
        if src.[!i] = '.' then begin
          incr i;
          while !i < n && is_digit src.[!i] do
            incr i
          done
        end;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do
            incr i
          done
        end;
        emit (Tfloat (float_of_string (String.sub src start (!i - start)))) col
      end
      else emit (Tint (int_of_string (String.sub src start (!i - start)))) col
    end
    else begin
      let two t =
        emit t col;
        i := !i + 2
      in
      let one t =
        emit t col;
        incr i
      in
      match c with
      | '+' when !i + 1 < n && src.[!i + 1] = '+' -> two Tinc
      | '+' when !i + 1 < n && src.[!i + 1] = '=' -> two Tpluseq
      | '-' when !i + 1 < n && src.[!i + 1] = '=' -> two Tminuseq
      | '*' when !i + 1 < n && src.[!i + 1] = '=' -> two Tstareq
      | '<' when !i + 1 < n && src.[!i + 1] = '=' -> two Tle
      | '>' when !i + 1 < n && src.[!i + 1] = '=' -> two Tge
      | '(' -> one Tlparen
      | ')' -> one Trparen
      | '[' -> one Tlbrack
      | ']' -> one Trbrack
      | '{' -> one Tlbrace
      | '}' -> one Trbrace
      | ';' -> one Tsemi
      | ',' -> one Tcomma
      | '=' -> one Tassign
      | '+' -> one Tplus
      | '-' -> one Tminus
      | '*' -> one Tstar
      | '/' -> one Tslash
      | '<' -> one Tlt
      | '>' -> one Tgt
      | _ -> fail "line %d, col %d: unexpected character %C" !line col c
    end
  done;
  emit Teof (n - !bol + 1);
  Array.of_list (List.rev !toks)

(* ------------------------------ syntax tree ------------------------------ *)

type sexpr =
  | S_int of int
  | S_float of float
  | S_id of string
  | S_idx of string * sexpr list
  | S_neg of sexpr
  | S_bin of Ir.binop * sexpr * sexpr

type sitem =
  | S_assign of (string * sexpr list) * sexpr
  | S_for of string * sexpr * [ `Lt | `Le ] * sexpr * sitem list

type decl = { dname : string; dexts : sexpr list }

(* --------------------------------- parser -------------------------------- *)

type parser_state = { toks : ptok array; mutable pos : int }

let peek ps = ps.toks.(ps.pos).tok

let advance ps = ps.pos <- ps.pos + 1

let err_here ps what =
  let p = ps.toks.(ps.pos) in
  fail "line %d, col %d: expected %s, found %s" p.line p.col what
    (token_name p.tok)

let expect ps tok what =
  if peek ps = tok then advance ps else err_here ps what

let expect_id ps what =
  match peek ps with
  | Tid s ->
      advance ps;
      s
  | _ -> err_here ps what

let rec parse_expr ps = parse_additive ps

and parse_additive ps =
  let lhs = ref (parse_multiplicative ps) in
  let continue_ = ref true in
  while !continue_ do
    match peek ps with
    | Tplus ->
        advance ps;
        lhs := S_bin (Ir.Add, !lhs, parse_multiplicative ps)
    | Tminus ->
        advance ps;
        lhs := S_bin (Ir.Sub, !lhs, parse_multiplicative ps)
    | _ -> continue_ := false
  done;
  !lhs

and parse_multiplicative ps =
  let lhs = ref (parse_unary ps) in
  let continue_ = ref true in
  while !continue_ do
    match peek ps with
    | Tstar ->
        advance ps;
        lhs := S_bin (Ir.Mul, !lhs, parse_unary ps)
    | Tslash ->
        advance ps;
        lhs := S_bin (Ir.Div, !lhs, parse_unary ps)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary ps =
  match peek ps with
  | Tminus ->
      advance ps;
      S_neg (parse_unary ps)
  | Tplus ->
      advance ps;
      parse_unary ps
  | _ -> parse_primary ps

and parse_primary ps =
  match peek ps with
  | Tint n ->
      advance ps;
      S_int n
  | Tfloat f ->
      advance ps;
      S_float f
  | Tlparen ->
      advance ps;
      let e = parse_expr ps in
      expect ps Trparen "')'";
      e
  | Tid name ->
      advance ps;
      let subs = ref [] in
      while peek ps = Tlbrack do
        advance ps;
        let e = parse_expr ps in
        expect ps Trbrack "']'";
        subs := e :: !subs
      done;
      if !subs = [] then S_id name else S_idx (name, List.rev !subs)
  | _ -> err_here ps "expression"

let rec parse_item ps =
  match peek ps with
  | Tfor ->
      advance ps;
      expect ps Tlparen "'('";
      let it = expect_id ps "loop iterator" in
      expect ps Tassign "'='";
      let lb = parse_expr ps in
      expect ps Tsemi "';'";
      let it2 = expect_id ps "loop iterator in condition" in
      if not (String.equal it it2) then
        fail "loop condition tests %s, expected %s" it2 it;
      let cmp =
        match peek ps with
        | Tlt ->
            advance ps;
            `Lt
        | Tle ->
            advance ps;
            `Le
        | _ -> err_here ps "'<' or '<='"
      in
      let ub = parse_expr ps in
      expect ps Tsemi "';'";
      let it3 = expect_id ps "loop iterator in increment" in
      if not (String.equal it it3) then
        fail "loop increments %s, expected %s" it3 it;
      expect ps Tinc "'++'";
      expect ps Trparen "')'";
      let body =
        if peek ps = Tlbrace then begin
          advance ps;
          let items = ref [] in
          while peek ps <> Trbrace do
            items := parse_item ps :: !items
          done;
          advance ps;
          List.rev !items
        end
        else [ parse_item ps ]
      in
      S_for (it, lb, cmp, ub, body)
  | Tid _ -> (
      let e = parse_primary ps in
      let target =
        match e with
        | S_idx (name, subs) -> Some (name, subs)
        | S_id name -> Some (name, [])
        | _ -> None
      in
      let compound op =
        match target with
        | Some lhs ->
            advance ps;
            let rhs = parse_expr ps in
            expect ps Tsemi "';'";
            let name, subs = lhs in
            let lhs_expr =
              if subs = [] then S_id name else S_idx (name, subs)
            in
            S_assign (lhs, S_bin (op, lhs_expr, rhs))
        | None -> err_here ps "assignment target"
      in
      match (target, peek ps) with
      | Some lhs, Tassign ->
          advance ps;
          let rhs = parse_expr ps in
          expect ps Tsemi "';'";
          S_assign (lhs, rhs)
      | _, Tpluseq -> compound Ir.Add
      | _, Tminuseq -> compound Ir.Sub
      | _, Tstareq -> compound Ir.Mul
      | _ -> err_here ps "'=' (assignment)")
  | _ -> err_here ps "statement or loop"

let parse_decls ps =
  let decls = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match peek ps with
    | Tdouble | Tfloatkw | Tint_kw ->
        advance ps;
        let again = ref true in
        while !again do
          let name = expect_id ps "declared name" in
          let exts = ref [] in
          while peek ps = Tlbrack do
            advance ps;
            let e = parse_expr ps in
            expect ps Trbrack "']'";
            exts := e :: !exts
          done;
          decls := { dname = name; dexts = List.rev !exts } :: !decls;
          match peek ps with
          | Tcomma -> advance ps
          | Tsemi ->
              advance ps;
              again := false
          | _ -> err_here ps "',' or ';'"
        done
    | _ -> continue_ := false
  done;
  List.rev !decls

let parse_toplevel ps =
  let decls = parse_decls ps in
  let items = ref [] in
  while peek ps <> Teof do
    items := parse_item ps :: !items
  done;
  (decls, List.rev !items)

(* --------------------------- semantic analysis --------------------------- *)

(* Collect loop iterator names (anywhere) so that remaining free identifiers
   are recognized as parameters. *)
let rec collect_iters items acc =
  List.fold_left
    (fun acc item ->
      match item with
      | S_assign _ -> acc
      | S_for (it, _, _, _, body) ->
          collect_iters body (if List.mem it acc then acc else it :: acc))
    acc items

let rec collect_ids_expr e acc =
  match e with
  | S_int _ | S_float _ -> acc
  | S_id s -> if List.mem s acc then acc else s :: acc
  | S_idx (_, subs) -> List.fold_left (fun acc e -> collect_ids_expr e acc) acc subs
  | S_neg e -> collect_ids_expr e acc
  | S_bin (_, a, b) -> collect_ids_expr b (collect_ids_expr a acc)

let rec collect_param_candidates items acc =
  List.fold_left
    (fun acc item ->
      match item with
      | S_assign ((_, subs), rhs) ->
          let acc = List.fold_left (fun acc e -> collect_ids_expr e acc) acc subs in
          collect_ids_expr rhs acc
      | S_for (_, lb, _, ub, body) ->
          collect_param_candidates body
            (collect_ids_expr ub (collect_ids_expr lb acc)))
    acc items

(* Affine linearization of a source expression over (iters @ params @ [1]).
   Fails on products of variables, division, floats. *)
let affine_of_expr ~iters ~params ~context e =
  let ni = List.length iters and np = List.length params in
  let width = ni + np + 1 in
  let index_of name =
    let rec find i = function
      | [] -> None
      | x :: _ when String.equal x name -> Some i
      | _ :: rest -> find (i + 1) rest
    in
    match find 0 iters with
    | Some i -> Some i
    | None -> (
        match find 0 params with Some i -> Some (ni + i) | None -> None)
  in
  let rec go e =
    match e with
    | S_int n ->
        let r = Array.make width 0 in
        r.(width - 1) <- n;
        r
    | S_float _ -> fail "%s: floating-point value in affine position" context
    | S_id name -> (
        match index_of name with
        | Some i ->
            let r = Array.make width 0 in
            r.(i) <- 1;
            r
        | None -> fail "%s: unknown identifier %s" context name)
    | S_idx (a, _) -> fail "%s: array access %s[...] is not affine" context a
    | S_neg e -> Array.map (fun x -> -x) (go e)
    | S_bin (Ir.Add, a, b) -> Array.map2 ( + ) (go a) (go b)
    | S_bin (Ir.Sub, a, b) -> Array.map2 ( - ) (go a) (go b)
    | S_bin (Ir.Mul, a, b) -> (
        let const_of r =
          let nonconst = Array.exists (fun x -> x <> 0) (Array.sub r 0 (width - 1)) in
          if nonconst then None else Some r.(width - 1)
        in
        let ra = go a and rb = go b in
        match (const_of ra, const_of rb) with
        | Some k, _ -> Array.map (fun x -> k * x) rb
        | _, Some k -> Array.map (fun x -> k * x) ra
        | None, None -> fail "%s: product of variables is not affine" context)
    | S_bin (Ir.Div, _, _) -> fail "%s: division is not affine" context
  in
  go e

(* If the source carries "#pragma scop" ... "#pragma endscop" markers, only
   the declarations (kept from anywhere before the region) and the marked
   region are considered, like the paper's tool. *)
let restrict_to_scop src =
  let find sub =
    let n = String.length src and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub src i m = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  match (find "#pragma scop", find "#pragma endscop") with
  | Some a, Some b when a < b ->
      let decls = String.sub src 0 a in
      (* keep only declaration-looking lines from the prefix *)
      let decl_lines =
        String.split_on_char '\n' decls
        |> List.filter (fun l ->
               let l = String.trim l in
               String.length l > 6
               && (String.sub l 0 6 = "double"
                  || String.sub l 0 5 = "float"))
      in
      String.concat "\n" decl_lines ^ "\n"
      ^ String.sub src a (b - a)
  | _ -> src

let parse_program ?(name = "<input>") src =
  let src = restrict_to_scop src in
  let ps = { toks = tokenize src; pos = 0 } in
  let decls, items =
    try parse_toplevel ps
    with Parse_error msg -> fail "%s: %s" name msg
  in
  let arrays = List.map (fun d -> d.dname) decls in
  let iters = List.rev (collect_iters items []) in
  let candidates = List.rev (collect_param_candidates items []) in
  let params =
    List.filter
      (fun id -> not (List.mem id arrays) && not (List.mem id iters))
      candidates
  in
  (* also allow parameters appearing only in array extents *)
  let params =
    List.fold_left
      (fun params d ->
        List.fold_left
          (fun params e ->
            List.fold_left
              (fun params id ->
                if
                  List.mem id params || List.mem id arrays || List.mem id iters
                then params
                else params @ [ id ])
              params (collect_ids_expr e []))
          params d.dexts)
      params decls
  in
  let np = List.length params in
  let array_infos =
    List.map
      (fun d ->
        let extents =
          List.map
            (fun e ->
              affine_of_expr ~iters:[] ~params
                ~context:(Printf.sprintf "extent of %s" d.dname)
                e)
            d.dexts
        in
        { Ir.aname = d.dname; extents = Array.of_list extents })
      decls
  in
  let dims_of a =
    match List.find_opt (fun d -> String.equal d.Ir.aname a) array_infos with
    | Some d -> Array.length d.Ir.extents
    | None -> fail "use of undeclared array %s" a
  in
  (* widen an affine row over (k iters + params + 1) to (m iters + ...) *)
  let widen_row ~from_iters ~to_iters row =
    let k = from_iters and m = to_iters in
    Array.init
      (m + np + 1)
      (fun j -> if j < k then row.(j) else if j < m then 0 else row.(j - m + k))
  in
  let stmts = ref [] in
  let next_id = ref 0 in
  let mk_access ~iters (a, subs) =
    let expected = dims_of a in
    if List.length subs <> expected then
      fail "array %s used with %d subscripts, declared with %d" a
        (List.length subs) expected;
    let map =
      List.map
        (fun e ->
          affine_of_expr ~iters ~params
            ~context:(Printf.sprintf "subscript of %s" a)
            e)
        subs
    in
    { Ir.arr = a; map = Array.of_list map }
  in
  let rec expr_of ~iters e =
    match e with
    | S_int n -> Ir.Const (float_of_int n)
    | S_float f -> Ir.Const f
    | S_id s -> (
        if List.mem s arrays then Ir.Load (mk_access ~iters (s, []))
        else
          match List.find_index (String.equal s) iters with
          | Some i -> Ir.Iter i
          | None ->
              fail "identifier %s in statement body is neither an array nor an iterator" s)
    | S_idx (a, subs) -> Ir.Load (mk_access ~iters (a, subs))
    | S_neg e -> Ir.Unop (`Neg, expr_of ~iters e)
    | S_bin (op, a, b) -> Ir.Binop (op, expr_of ~iters a, expr_of ~iters b)
  in
  (* walk the loop tree collecting constraints; [bounds] are (lb_row, ub_row)
     pairs over (depth-so-far iters + params + 1) *)
  let rec walk items ~iters ~constrs ~prefix =
    List.iteri
      (fun idx item ->
        match item with
        | S_assign (lhs, rhs) ->
            let m = List.length iters in
            let nvars = m + np in
            let cs =
              List.map
                (fun (row, from_iters) ->
                  Polyhedra.ge
                    (Ir.row_to_vec (widen_row ~from_iters ~to_iters:m row)))
                constrs
            in
            let domain = Polyhedra.of_constrs nvars cs in
            let static = Array.of_list (List.rev (idx :: prefix)) in
            let lhs_acc = mk_access ~iters lhs in
            let rhs_ir = expr_of ~iters rhs in
            let id = !next_id in
            incr next_id;
            let iter_names = Array.of_list iters in
            let param_names = Array.of_list params in
            let text =
              Format.asprintf "%s%a = %a;" lhs_acc.Ir.arr
                (fun fmt rows ->
                  Array.iter
                    (fun row ->
                      Format.fprintf fmt "[%a]"
                        (Ir.pp_affine_row (Array.append iter_names param_names))
                        row)
                    rows)
                lhs_acc.Ir.map
                (Ir.pp_expr iter_names param_names)
                rhs_ir
            in
            let s =
              Ir.mk_stmt ~id
                ~name:(Printf.sprintf "S%d" (id + 1))
                ~iters ~nparams:np ~domain ~static ~lhs:lhs_acc ~rhs:rhs_ir
                ~text
            in
            stmts := s :: !stmts
        | S_for (it, lb, cmp, ub, body) ->
            if List.mem it iters then fail "iterator %s shadows an outer loop" it;
            let iters' = iters @ [ it ] in
            let k = List.length iters' in
            let lb_row =
              affine_of_expr ~iters ~params
                ~context:(Printf.sprintf "lower bound of %s" it)
                lb
            in
            let ub_row =
              affine_of_expr ~iters ~params
                ~context:(Printf.sprintf "upper bound of %s" it)
                ub
            in
            let width = k + np + 1 in
            (* it - lb >= 0 *)
            let lo = Array.make width 0 in
            Array.iteri
              (fun j v ->
                let j' = if j < k - 1 then j else j + 1 in
                lo.(j') <- -v)
              lb_row;
            lo.(k - 1) <- lo.(k - 1) + 1;
            (* ub - it >= 0 (with <: ub - 1 - it >= 0) *)
            let hi = Array.make width 0 in
            Array.iteri
              (fun j v ->
                let j' = if j < k - 1 then j else j + 1 in
                hi.(j') <- v)
              ub_row;
            hi.(k - 1) <- hi.(k - 1) - 1;
            if cmp = `Lt then hi.(width - 1) <- hi.(width - 1) - 1;
            walk body ~iters:iters'
              ~constrs:(constrs @ [ (lo, k); (hi, k) ])
              ~prefix:(idx :: prefix))
      items
  in
  walk items ~iters:[] ~constrs:[] ~prefix:[];
  { Ir.params; arrays = array_infos; stmts = List.rev !stmts }
