(* Normalized rationals: den > 0, gcd (num, den) = 1. *)

type t = { num : Bigint.t; den : Bigint.t }

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let minus_one = { num = Bigint.minus_one; den = Bigint.one }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then zero
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den)
    in
    let g = Bigint.gcd num den in
    if Bigint.is_one g then { num; den }
    else { num = Bigint.div num g; den = Bigint.div den g }
  end

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints num den = make (Bigint.of_int num) (Bigint.of_int den)
let num t = t.num
let den t = t.den
let is_integer t = Bigint.is_one t.den

let to_bigint_exn t =
  if is_integer t then t.num else failwith "Q.to_bigint_exn: not an integer"

let floor t = Bigint.fdiv t.num t.den
let ceil t = Bigint.cdiv t.num t.den
let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den, dens > 0 *)
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let neg t = { t with num = Bigint.neg t.num }
let abs t = { t with num = Bigint.abs t.num }

let inv t =
  if is_zero t then raise Division_by_zero
  else if Bigint.sign t.num > 0 then { num = t.den; den = t.num }
  else { num = Bigint.neg t.den; den = Bigint.neg t.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)
let div a b = mul a (inv b)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)

let to_float t =
  (* Exact enough for reporting: fall back to string parsing for huge values. *)
  match (Bigint.to_int_opt t.num, Bigint.to_int_opt t.den) with
  | Some n, Some d -> float_of_int n /. float_of_int d
  | _ -> float_of_string (Bigint.to_string t.num) /. float_of_string (Bigint.to_string t.den)

module Ops = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
