lib/linalg/mat.ml: Array Bigint Format List Putil Q Vec
