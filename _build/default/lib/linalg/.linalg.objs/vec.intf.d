lib/linalg/vec.mli: Bigint Format
