lib/linalg/q.mli: Bigint Format
