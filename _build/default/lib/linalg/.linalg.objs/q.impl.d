lib/linalg/q.ml: Bigint Format
