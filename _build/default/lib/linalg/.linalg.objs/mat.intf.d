lib/linalg/mat.mli: Bigint Format Q Vec
