(** Exact rational numbers over {!Bigint}.

    Values are kept normalized: the denominator is positive and the numerator
    and denominator are coprime. Used by the simplex solver and by exact
    Gaussian elimination. *)

type t = private { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t
val minus_one : t

(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

val of_bigint : Bigint.t -> t
val of_int : int -> t

(** [of_ints num den] is [num/den] from native integers. *)
val of_ints : int -> int -> t

val num : t -> Bigint.t
val den : t -> Bigint.t

(** [to_bigint_exn t] converts an integral rational.
    @raise Failure if the denominator is not 1. *)
val to_bigint_exn : t -> Bigint.t

(** [is_integer t] is true iff the denominator is 1. *)
val is_integer : t -> bool

(** [floor t] / [ceil t]: integral bounds as big integers. *)
val floor : t -> Bigint.t

val ceil : t -> Bigint.t

val sign : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val neg : t -> t
val abs : t -> t
val inv : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero on zero divisor. *)
val div : t -> t -> t

val min : t -> t -> t
val max : t -> t -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [to_float t] is an approximate float value (for reporting only). *)
val to_float : t -> float

module Ops : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
