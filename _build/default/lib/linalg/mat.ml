type t = Q.t array array

let rows (m : t) = Array.length m
let cols (m : t) = if Array.length m = 0 then 0 else Array.length m.(0)
let make r c v : t = Array.init r (fun _ -> Array.make c v)
let init r c f : t = Array.init r (fun i -> Array.init c (fun j -> f i j))

let identity n : t =
  init n n (fun i j -> if i = j then Q.one else Q.zero)

let of_int_rows rws : t = Array.map (Array.map Q.of_int) rws
let of_bigint_rows rws : t = Array.map (Array.map Q.of_bigint) rws
let copy (m : t) : t = Array.map Array.copy m
let transpose (m : t) : t = init (cols m) (rows m) (fun i j -> m.(j).(i))

let mul (a : t) (b : t) : t =
  let n = cols a in
  if n <> rows b then invalid_arg "Mat.mul: dimension mismatch";
  init (rows a) (cols b) (fun i j ->
      let acc = ref Q.zero in
      for k = 0 to n - 1 do
        acc := Q.add !acc (Q.mul a.(i).(k) b.(k).(j))
      done;
      !acc)

let mul_vec (a : t) (x : Q.t array) =
  if cols a <> Array.length x then invalid_arg "Mat.mul_vec";
  Array.map
    (fun row ->
      let acc = ref Q.zero in
      Array.iteri (fun j v -> acc := Q.add !acc (Q.mul v x.(j))) row;
      !acc)
    a

let equal (a : t) (b : t) =
  rows a = rows b && cols a = cols b
  && Putil.array_for_all2 (fun ra rb -> Putil.array_for_all2 Q.equal ra rb) a b

(* In-place reduced row echelon form; returns pivot columns in order. *)
let rref_in_place (m : t) =
  let nr = rows m and nc = cols m in
  let pivots = ref [] in
  let r = ref 0 in
  let c = ref 0 in
  while !r < nr && !c < nc do
    (* find a pivot row *)
    let piv = ref (-1) in
    (try
       for i = !r to nr - 1 do
         if not (Q.is_zero m.(i).(!c)) then begin
           piv := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !piv < 0 then incr c
    else begin
      let tmp = m.(!r) in
      m.(!r) <- m.(!piv);
      m.(!piv) <- tmp;
      let inv = Q.inv m.(!r).(!c) in
      m.(!r) <- Array.map (Q.mul inv) m.(!r);
      for i = 0 to nr - 1 do
        if i <> !r && not (Q.is_zero m.(i).(!c)) then begin
          let f = m.(i).(!c) in
          m.(i) <- Array.mapi (fun j v -> Q.sub v (Q.mul f m.(!r).(j))) m.(i)
        end
      done;
      pivots := !c :: !pivots;
      incr r;
      incr c
    end
  done;
  List.rev !pivots

let rref (m : t) =
  let m' = copy m in
  let pivots = rref_in_place m' in
  (m', pivots)

let rank (m : t) = List.length (snd (rref m))

let inverse (m : t) =
  let n = rows m in
  if n <> cols m then invalid_arg "Mat.inverse: not square";
  (* augment with identity, reduce, read off the right half *)
  let aug = init n (2 * n) (fun i j -> if j < n then m.(i).(j) else if j - n = i then Q.one else Q.zero) in
  let pivots = rref_in_place aug in
  if List.length pivots <> n || List.exists (fun p -> p >= n) pivots then None
  else Some (init n n (fun i j -> aug.(i).(j + n)))

let solve (a : t) (b : Q.t array) =
  let nr = rows a and nc = cols a in
  if Array.length b <> nr then invalid_arg "Mat.solve";
  let aug = init nr (nc + 1) (fun i j -> if j < nc then a.(i).(j) else b.(i)) in
  let pivots = rref_in_place aug in
  if List.exists (fun p -> p = nc) pivots then None (* row [0 .. 0 | 1] *)
  else begin
    let x = Array.make nc Q.zero in
    List.iteri (fun r p -> x.(p) <- aug.(r).(nc)) pivots;
    Some x
  end

let nullspace (m : t) =
  let nc = cols m in
  let r, pivots = rref m in
  let is_pivot = Array.make nc false in
  List.iter (fun p -> is_pivot.(p) <- true) pivots;
  let pivot_rows = Array.of_list pivots in
  let basis = ref [] in
  for free = nc - 1 downto 0 do
    if not is_pivot.(free) then begin
      let v = Array.make nc Q.zero in
      v.(free) <- Q.one;
      Array.iteri (fun row p -> v.(p) <- Q.neg r.(row).(free)) pivot_rows;
      basis := v :: !basis
    end
  done;
  !basis

let row_to_bigint (row : Q.t array) : Vec.t =
  let l = Array.fold_left (fun acc q -> Bigint.lcm acc (Q.den q)) Bigint.one row in
  Vec.normalize (Array.map (fun q -> Bigint.div (Bigint.mul (Q.num q) l) (Q.den q)) row)

let orthogonal_complement (h : t) =
  let n = cols h in
  if rows h = 0 then
    (* no rows yet: the complement is the whole space *)
    Array.to_list (Array.init n (fun i -> Array.init n (fun j -> if i = j then Q.one else Q.zero)))
    |> List.map row_to_bigint
  else begin
    let ht = transpose h in
    let hht = mul h ht in
    match inverse hht with
    | None -> invalid_arg "Mat.orthogonal_complement: rows not independent"
    | Some inv ->
        let proj = mul (mul ht inv) h in
        let comp = init n n (fun i j -> Q.sub (if i = j then Q.one else Q.zero) proj.(i).(j)) in
        (* canonicalize: primitive rows with positive leading sign, deduped —
           the projector contains r and -r pairs, which would otherwise force
           r·c = 0 in the non-negative independence constraints of eq. (6) *)
        let canonical (v : Vec.t) =
          match Array.find_opt (fun x -> not (Bigint.is_zero x)) v with
          | Some lead when Bigint.sign lead < 0 -> Vec.neg v
          | _ -> v
        in
        Array.to_list comp
        |> List.map row_to_bigint
        |> List.filter (fun v -> not (Vec.is_zero v))
        |> List.map canonical
        |> List.fold_left
             (fun acc v ->
               if List.exists (Vec.equal v) acc then acc else acc @ [ v ])
             []
  end

let determinant (m : t) =
  let n = rows m in
  if n <> cols m then invalid_arg "Mat.determinant: not square";
  let a = copy m in
  let det = ref Q.one in
  (try
     for c = 0 to n - 1 do
       let piv = ref (-1) in
       (try
          for i = c to n - 1 do
            if not (Q.is_zero a.(i).(c)) then begin
              piv := i;
              raise Exit
            end
          done
        with Exit -> ());
       if !piv < 0 then begin
         det := Q.zero;
         raise Exit
       end;
       if !piv <> c then begin
         let tmp = a.(c) in
         a.(c) <- a.(!piv);
         a.(!piv) <- tmp;
         det := Q.neg !det
       end;
       det := Q.mul !det a.(c).(c);
       let inv = Q.inv a.(c).(c) in
       for i = c + 1 to n - 1 do
         if not (Q.is_zero a.(i).(c)) then begin
           let f = Q.mul a.(i).(c) inv in
           a.(i) <- Array.mapi (fun j v -> Q.sub v (Q.mul f a.(c).(j))) a.(i)
         end
       done
     done
   with Exit -> ());
  !det

let is_unimodular (m : t) =
  let d = determinant m in
  Q.equal d Q.one || Q.equal d Q.minus_one

let pp fmt (m : t) =
  Format.fprintf fmt "@[<v>%a@]"
    (Putil.pp_list "@,"
       (fun fmt row ->
         Format.fprintf fmt "[%a]" (Putil.pp_list " " Q.pp) (Array.to_list row)))
    (Array.to_list m)
