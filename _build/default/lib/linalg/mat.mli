(** Exact rational matrices with Gaussian elimination.

    The workhorse of the transformation framework: rank and linear-independence
    tests on hyperplane matrices, nullspaces, inverses, and the orthogonal
    sub-space computation of eq. (6) of the paper,
    H⊥ = I − Hᵀ(HHᵀ)⁻¹H. *)

type t = Q.t array array

val rows : t -> int
val cols : t -> int
val make : int -> int -> Q.t -> t
val init : int -> int -> (int -> int -> Q.t) -> t
val identity : int -> t

(** [of_int_rows rows] builds a matrix from native-integer rows. *)
val of_int_rows : int array array -> t

(** [of_bigint_rows rows] builds a matrix from big-integer rows. *)
val of_bigint_rows : Bigint.t array array -> t

val copy : t -> t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> Q.t array -> Q.t array
val equal : t -> t -> bool

(** [rank m] is the rank of [m]. *)
val rank : t -> int

(** [rref m] is [(r, pivots)]: the reduced row-echelon form of [m] and the
    pivot column of each of the first [rank] rows. *)
val rref : t -> t * int list

(** [inverse m] is the inverse of a square matrix, or [None] if singular. *)
val inverse : t -> t option

(** [solve a b] is some [x] with [a·x = b], or [None] if inconsistent. *)
val solve : t -> Q.t array -> Q.t array option

(** [nullspace m] is a basis of the right null space [{x | m·x = 0}]. *)
val nullspace : t -> Q.t array list

(** [row_to_bigint r] scales a rational row to a primitive big-integer row
    (multiply by the lcm of denominators, divide by the gcd). *)
val row_to_bigint : Q.t array -> Vec.t

(** [orthogonal_complement h] implements eq. (6): the non-zero rows of
    I − Hᵀ(HHᵀ)⁻¹H, scaled to primitive integer rows.  [h]'s rows must be
    linearly independent.  The result spans the orthogonal complement of the
    row space of [h]; an empty list means [h] already has full column rank. *)
val orthogonal_complement : t -> Vec.t list

(** [is_unimodular m] checks a square integer matrix has determinant ±1. *)
val is_unimodular : t -> bool

(** [determinant m] of a square matrix. *)
val determinant : t -> Q.t

val pp : Format.formatter -> t -> unit
