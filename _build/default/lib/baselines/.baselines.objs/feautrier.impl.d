lib/baselines/feautrier.ml: Array Bigint Deps Driver Ir List Mat Milp Pluto Polyhedra Putil Vec
