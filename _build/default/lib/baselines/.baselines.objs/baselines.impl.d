lib/baselines/baselines.ml: Array Codegen Deps Driver Ir List Pluto Printf String
