(** Comparison schemes of the paper's evaluation (§7).

    The paper compares Pluto against (1) the native production compiler
    (icc -fast, auto-vectorizing, no auto-parallelization of these kernels),
    (2) Lim/Lam-style affine partitioning ("max degree parallelism, no cost
    function"), and (3) scheduling-based approaches (Feautrier schedules with
    Griebl's forward-communication-only time tiling).  As in the paper —
    where no runnable implementation of (2)/(3) was available — the baseline
    transformations are the ones those algorithms are documented to produce,
    forced through the same tiling and code-generation pipeline, so every
    scheme benefits equally from the code generator (§7, "Comparison with
    previous approaches").

    All helpers return a {!Driver.result}, so results are directly comparable
    in the simulator. *)

let seq_options =
  {
    Driver.default_options with
    Driver.tile = false;
    parallelize = false;
    intra_reorder = false;
  }

(** The native-compiler model: original program order, sequential; the
    simulator's vectorization model plays the role of icc's auto-vectorizer. *)
let original (p : Ir.program) : Driver.result = Driver.compile_original p

(** Inner parallelism only (what production auto-parallelizers and
    scheduling without time tiling achieve): original order, the outermost
    loop level that carries no dependence is marked for OpenMP.  For the
    stencil kernels this parallelizes the space loop inside the sequential
    time loop — one parallel region (and barrier) per time step. *)
let inner_parallel (p : Ir.program) : Driver.result =
  let r = Driver.compile_original p in
  let tgt = r.Driver.target in
  let tpar = Array.copy tgt.Pluto.Types.tpar in
  let marked = ref false in
  Array.iteri
    (fun l k ->
      match k with
      | Pluto.Types.Loop { parallel = true; _ } when not !marked ->
          tpar.(l) <- Pluto.Types.Par;
          marked := true
      | _ -> ())
    tgt.Pluto.Types.tkinds;
  let target = { tgt with Pluto.Types.tpar } in
  let code = Codegen.generate target in
  { r with Driver.target; code }

(** [with_rows ?options p ~rows ~scalar] forces an externally specified
    transformation through the shared pipeline.  [rows.(stmt_id)] has one row
    (width depth+1) per level; [scalar] marks static levels. *)
let with_rows ?options (p : Ir.program) ~rows ~scalar : Driver.result =
  let deps = Deps.compute p in
  let tr = Pluto.Auto.annotate p deps ~rows ~scalar in
  Driver.compile_with_transform ?options p deps tr

let check_shape (p : Ir.program) ~name ~depths =
  let actual = List.map Ir.depth p.Ir.stmts in
  if actual <> depths then
    invalid_arg
      (Printf.sprintf "Baselines.%s: expected statement depths [%s], got [%s]"
         name
         (String.concat ";" (List.map string_of_int depths))
         (String.concat ";" (List.map string_of_int actual)))

(** Lim/Lam affine partitioning on the 1-d Jacobi kernel: the maximally
    independent time partitions (2,-1), (3,-1) quoted in §7 of the paper
    (Algorithm A of Lim/Lam), with the shifts required for legality of the
    second statement; tiled and wavefronted like any permutable band. *)
let jacobi_affine_partition ?options (p : Ir.program) : Driver.result =
  check_shape p ~name:"jacobi_affine_partition" ~depths:[ 2; 2 ];
  let rows =
    [|
      (* S1 (t,i) *)
      [| [| 2; -1; 0 |]; [| 3; -1; 0 |]; [| 0; 0; 0 |] |];
      (* S2 (t,j) *)
      [| [| 2; -1; 1 |]; [| 3; -1; 1 |]; [| 0; 0; 1 |] |];
    |]
  in
  with_rows ?options p ~rows ~scalar:[| false; false; true |]

(** Scheduling-based time tiling on 1-d Jacobi (Feautrier schedule + Griebl's
    FCO allocation, §7): schedule θ = 2t for S1 and 2t+1 for S2, allocation
    2t+i (2t+j+1 for S2).  The non-unimodular schedule produces the modulo
    guards responsible for the "code complexity" the paper reports. *)
let jacobi_scheduling_fco ?options (p : Ir.program) : Driver.result =
  check_shape p ~name:"jacobi_scheduling_fco" ~depths:[ 2; 2 ];
  let rows =
    [|
      (* S1 (t,i): θ = 2t, allocation 2t+i *)
      [| [| 2; 0; 0 |]; [| 2; 1; 0 |]; [| 0; 0; 0 |] |];
      (* S2 (t,j): θ = 2t+1, allocation 2t+j+1 *)
      [| [| 2; 0; 1 |]; [| 2; 1; 1 |]; [| 0; 0; 1 |] |];
    |]
  in
  with_rows ?options p ~rows ~scalar:[| false; false; true |]

(** Scheduling-based LU: the minimum-latency schedule θ = 2k / 2k+1 as the
    outer sequential loop, remaining dimensions space-parallel (no time
    tiling — the paper's scheduling baseline for LU performs poorly because
    of the code complexity of the non-unimodular schedule). *)
let lu_scheduling (p : Ir.program) : Driver.result =
  check_shape p ~name:"lu_scheduling" ~depths:[ 2; 3 ];
  let rows =
    [|
      (* S1 (k,j): θ = 2k; space j *)
      [| [| 2; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 0 |] |];
      (* S2 (k,i,j): θ = 2k+1; space i, j *)
      [| [| 2; 0; 0; 1 |]; [| 0; 1; 0; 0 |]; [| 0; 0; 1; 0 |] |];
    |]
  in
  let r =
    with_rows ~options:seq_options p ~rows ~scalar:[| false; false; false |]
  in
  (* parallelize the space level below the schedule *)
  let tgt = r.Driver.target in
  let tpar = Array.copy tgt.Pluto.Types.tpar in
  tpar.(1) <- Pluto.Types.Par;
  let target = { tgt with Pluto.Types.tpar } in
  let code = Codegen.generate target in
  { r with Driver.target; code }

(** MVT fused "ij with ij" (§7, Figure 12): both matrix-vector products run
    with the same loop order and are fused; no reuse on [A] is exploited.
    Legal because the only inter-statement dependence is the input (RAR)
    dependence on [A]. *)
let mvt_fuse_ij_ij ?options (p : Ir.program) : Driver.result =
  check_shape p ~name:"mvt_fuse_ij_ij" ~depths:[ 2; 2 ];
  let rows =
    [|
      [| [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 0 |] |];
      [| [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] |];
    |]
  in
  with_rows ?options p ~rows ~scalar:[| false; false; true |]

(** MVT with synchronization-free parallelism extracted from each product
    separately, barrier in between (what approaches without input
    dependences obtain, §7): loops distributed, each outer loop parallel. *)
let mvt_unfused_parallel (p : Ir.program) : Driver.result =
  check_shape p ~name:"mvt_unfused_parallel" ~depths:[ 2; 2 ];
  let rows =
    [|
      [| [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 0; 1; 0 |] |];
      (* second product: outer parallel loop is k (x2[k]); A accessed
         column-wise *)
      [| [| 0; 0; 1 |]; [| 1; 0; 0 |]; [| 0; 1; 0 |] |];
    |]
  in
  let r =
    with_rows ~options:seq_options p ~rows ~scalar:[| true; false; false |]
  in
  let tgt = r.Driver.target in
  let tpar = Array.copy tgt.Pluto.Types.tpar in
  tpar.(1) <- Pluto.Types.Par;
  let target = { tgt with Pluto.Types.tpar } in
  let code = Codegen.generate target in
  { r with Driver.target; code }
