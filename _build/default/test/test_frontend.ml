(* Lexer/parser/polyhedral extraction. *)

let parse = Frontend.parse_program ~name:"<test>"

let test_jacobi_shape () =
  let p = parse Kernels.jacobi_1d.Kernels.source in
  Alcotest.(check int) "2 statements" 2 (List.length p.Ir.stmts);
  Alcotest.(check (list string)) "params" [ "T"; "N" ] p.Ir.params;
  let s1 = List.nth p.Ir.stmts 0 and s2 = List.nth p.Ir.stmts 1 in
  Alcotest.(check int) "depth S1" 2 (Ir.depth s1);
  Alcotest.(check (list string)) "iters S1" [ "t"; "i" ] s1.Ir.iters;
  Alcotest.(check int) "common loops" 1 (Ir.common_loops s1 s2);
  Alcotest.(check bool) "S1 before S2" true (Ir.precedes_at s1 s2 1);
  Alcotest.(check int) "S1 reads" 3 (List.length (Ir.reads_of_expr s1.Ir.rhs));
  Alcotest.(check int) "S1 flops" 3 (Ir.flops_of_expr s1.Ir.rhs)

let test_domain_constraints () =
  let p = parse "double a[N];\nfor (i = 2; i < N - 1; i++) a[i] = 1.0;" in
  let s = List.hd p.Ir.stmts in
  (* i >= 2 and i <= N-2 *)
  Alcotest.(check int) "2 constraints" 2 (List.length s.Ir.domain.Polyhedra.cs);
  let sat i n =
    Polyhedra.sat_point s.Ir.domain (Array.map Bigint.of_int [| i; n |])
  in
  Alcotest.(check bool) "i=2,N=10" true (sat 2 10);
  Alcotest.(check bool) "i=8,N=10" true (sat 8 10);
  Alcotest.(check bool) "i=9,N=10" false (sat 9 10);
  Alcotest.(check bool) "i=1,N=10" false (sat 1 10)

let test_le_bound () =
  let p = parse "double a[N];\nfor (i = 0; i <= N; i++) a[i] = 1.0;" in
  let s = List.hd p.Ir.stmts in
  let sat i n = Polyhedra.sat_point s.Ir.domain (Array.map Bigint.of_int [| i; n |]) in
  Alcotest.(check bool) "i=N" true (sat 10 10);
  Alcotest.(check bool) "i=N+1" false (sat 11 10)

let test_access_matrix () =
  let p = parse "double A[N][N];\nfor (i = 0; i < N; i++) for (j = 0; j < N; j++) A[2*i + j - 1][j] = 1.0;" in
  let s = List.hd p.Ir.stmts in
  Alcotest.(check (list (list int))) "lhs map"
    [ [ 2; 1; 0; -1 ]; [ 0; 1; 0; 0 ] ]
    (Array.to_list (Array.map Array.to_list s.Ir.lhs.Ir.map))

let test_statics () =
  let p =
    parse
      {|
double a[N], b[N], c[N];
for (i = 0; i < N; i++) a[i] = 1.0;
for (i = 0; i < N; i++) {
  b[i] = a[i];
  c[i] = a[i];
}
|}
  in
  let statics =
    List.map (fun s -> Array.to_list s.Ir.static) p.Ir.stmts
  in
  Alcotest.(check (list (list int))) "2d+1 statics"
    [ [ 0; 0 ]; [ 1; 0 ]; [ 1; 1 ] ]
    statics

let test_iter_in_body () =
  let p = parse "double a[N];\nfor (i = 0; i < N; i++) a[i] = 0.5 * i;" in
  let s = List.hd p.Ir.stmts in
  match s.Ir.rhs with
  | Ir.Binop (Ir.Mul, Ir.Const _, Ir.Iter 0) -> ()
  | _ -> Alcotest.fail "expected 0.5 * i body"

let expect_error src frag =
  match parse src with
  | exception Frontend.Parse_error msg ->
      if
        not
          (Astring.String.is_infix ~affix:frag msg
           || String.length frag = 0)
      then
        Alcotest.fail (Printf.sprintf "error %S does not mention %S" msg frag)
  | _ -> Alcotest.fail "expected a parse error"

let test_errors () =
  expect_error "double a[N];\nfor (i = 0; i < N; i++) a[i*i] = 1.0;" "not affine";
  expect_error "double a[N];\nfor (i = 0; i < N; i++) b[i] = 1.0;" "undeclared";
  expect_error "double a[N];\nfor (i = 0; i < N; j++) a[i] = 1.0;" "";
  expect_error "double a[N];\nfor (i = 0; i < N; i++) a[i] = q;" "";
  expect_error "double a[N][N];\nfor (i = 0; i < N; i++) a[i] = 1.0;" "subscripts";
  expect_error "double a[N];\nfor (i = 0; i < N; i++) for (i = 0; i < N; i++) a[i] = 1.0;" "shadows"

let test_comments_and_pragmas () =
  let p =
    parse
      "// line comment\n#pragma scop\ndouble a[N]; /* block\ncomment */\nfor (i = 0; i < N; i++) a[i] = 1.0; // done\n#pragma endscop\n"
  in
  Alcotest.(check int) "1 statement" 1 (List.length p.Ir.stmts)

let test_all_kernels_parse () =
  List.iter
    (fun k ->
      let p = Kernels.program k in
      Alcotest.(check bool)
        (k.Kernels.name ^ " nonempty")
        true
        (List.length p.Ir.stmts > 0))
    Kernels.all

let test_param_collection_extents_only () =
  (* a parameter used only in an extent still becomes a parameter *)
  let p = parse "double a[M][N];\nfor (i = 0; i < N; i++) a[0][i] = 1.0;" in
  Alcotest.(check bool) "M collected" true (List.mem "M" p.Ir.params)

let test_compound_assignment () =
  let p =
    parse "double a[N], b[N];\nfor (i = 0; i < N; i++) { a[i] += b[i]; b[i] *= 2.0; a[i] -= 1.0; }"
  in
  Alcotest.(check int) "3 statements" 3 (List.length p.Ir.stmts);
  let s1 = List.nth p.Ir.stmts 0 in
  (* a[i] += b[i]  ==  a[i] = a[i] + b[i]: two reads (a and b) *)
  Alcotest.(check int) "reads" 2 (List.length (Ir.reads_of_expr s1.Ir.rhs));
  (match s1.Ir.rhs with
  | Ir.Binop (Ir.Add, Ir.Load l, Ir.Load r) ->
      Alcotest.(check string) "lhs reload" "a" l.Ir.arr;
      Alcotest.(check string) "rhs" "b" r.Ir.arr
  | _ -> Alcotest.fail "expected a + b body");
  let s2 = List.nth p.Ir.stmts 1 in
  match s2.Ir.rhs with
  | Ir.Binop (Ir.Mul, Ir.Load _, Ir.Const _) -> ()
  | _ -> Alcotest.fail "expected b * 2 body"

let test_scop_region () =
  let p =
    parse
      "double junk;\ndouble a[N];\nint unrelated_stuff_that_would_not_parse ???;\n#pragma scop\nfor (i = 0; i < N; i++) a[i] = 1.0;\n#pragma endscop\nmore junk here ???"
  in
  Alcotest.(check int) "1 statement" 1 (List.length p.Ir.stmts)

let test_compound_pipeline () =
  (* polybench-style += goes through the whole pipeline *)
  let src =
    "double A[N][N], x[N], y[N];\nfor (i = 0; i < N; i++)\n  for (j = 0; j < N; j++)\n    y[i] += A[i][j] * x[j];"
  in
  let p = parse src in
  let r = Driver.compile p in
  Alcotest.(check bool) "equivalent" true
    (Machine.equivalent p r.Driver.code ~params:[| 18 |])

let suite =
  ( "frontend",
    [
      Alcotest.test_case "jacobi shape" `Quick test_jacobi_shape;
      Alcotest.test_case "domain constraints" `Quick test_domain_constraints;
      Alcotest.test_case "<= bound" `Quick test_le_bound;
      Alcotest.test_case "access matrices" `Quick test_access_matrix;
      Alcotest.test_case "2d+1 statics" `Quick test_statics;
      Alcotest.test_case "iterator in body" `Quick test_iter_in_body;
      Alcotest.test_case "error reporting" `Quick test_errors;
      Alcotest.test_case "comments/pragmas" `Quick test_comments_and_pragmas;
      Alcotest.test_case "all kernels parse" `Quick test_all_kernels_parse;
      Alcotest.test_case "params from extents" `Quick test_param_collection_extents_only;
      Alcotest.test_case "compound assignment" `Quick test_compound_assignment;
      Alcotest.test_case "#pragma scop region" `Quick test_scop_region;
      Alcotest.test_case "compound through pipeline" `Quick test_compound_pipeline;
    ] )

