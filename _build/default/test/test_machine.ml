(* Cache simulator and performance model sanity. *)

let cfg = { Cache.size_bytes = 1024; line_bytes = 64; assoc = 2 }

let test_cache_basic () =
  let c = Cache.create cfg in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit same line" true (Cache.access c 8);
  Alcotest.(check bool) "hit again" true (Cache.access c 63);
  Alcotest.(check bool) "next line misses" false (Cache.access c 64);
  Alcotest.(check int) "counts" 2 (Cache.hits c);
  Alcotest.(check int) "counts" 2 (Cache.misses c)

let test_cache_lru_eviction () =
  (* 1024B / 64B / 2-way = 8 sets; addresses mapping to set 0:
     lines 0, 8, 16 (bytes 0, 512, 1024) *)
  let c = Cache.create cfg in
  ignore (Cache.access c 0);
  ignore (Cache.access c 512);
  (* both ways of set 0 full; touching 0 makes 512 the LRU *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 1024);
  (* evicts 512 *)
  Alcotest.(check bool) "0 still resident" true (Cache.access c 0);
  Alcotest.(check bool) "512 evicted" false (Cache.access c 512)

let test_cache_sequential_vs_strided () =
  (* sequential scan: 1 miss per 8 doubles; stride-8 scan: every access misses *)
  let c1 = Cache.create cfg in
  for i = 0 to 1023 do
    ignore (Cache.access c1 (i * 8))
  done;
  Alcotest.(check int) "sequential misses" 128 (Cache.misses c1);
  let c2 = Cache.create cfg in
  for i = 0 to 1023 do
    ignore (Cache.access c2 (i * 64))
  done;
  Alcotest.(check int) "strided misses" 1024 (Cache.misses c2)

let test_memory_layout () =
  let p =
    Frontend.parse_program ~name:"m"
      "double A[N][M], v[N];\nfor (i = 0; i < N; i++) v[i] = A[i][0];"
  in
  let mem = Machine.alloc_memory p ~params:[| 4; 6 |] in
  (* extents get +2 margin: A is (4+2)*(6+2), v is 4+2 *)
  Alcotest.(check int) "total size" ((6 * 8) + 6)
    (Array.length (Machine.memory_data mem))

let test_init_deterministic () =
  let p = Frontend.parse_program ~name:"m" "double v[N];\nfor (i = 0; i < N; i++) v[i] = 1.0;" in
  let m1 = Machine.alloc_memory p ~params:[| 8 |] in
  let m2 = Machine.alloc_memory p ~params:[| 8 |] in
  Machine.init_memory m1;
  Machine.init_memory m2;
  Alcotest.(check bool) "same contents" true
    (Machine.memory_data m1 = Machine.memory_data m2);
  Alcotest.(check bool) "not all zero" true
    (Array.exists (fun x -> x <> 0.0) (Machine.memory_data m1))

let test_simulation_counts () =
  (* matmul N=20: N^3 instances, 2 flops each *)
  let r = Fixtures.compiled Kernels.matmul in
  let res =
    Machine.simulate Machine.default_machine r.Driver.code ~params:[| 20 |]
  in
  Alcotest.(check int) "instances" 8000 res.Machine.instances;
  Alcotest.(check int) "flops" 16000 res.Machine.total_flops;
  Alcotest.(check bool) "positive time" true (res.Machine.cycles > 0.0)

let test_parallel_speedup_monotone () =
  (* more cores should not slow the simulated wavefront code down *)
  let r = Fixtures.compiled Kernels.seidel in
  let params = [| 12; 40 |] in
  let time n =
    (Machine.simulate { Machine.default_machine with Machine.ncores = n }
       r.Driver.code ~params)
      .Machine.cycles
  in
  let t1 = time 1 and t4 = time 4 in
  Alcotest.(check bool)
    (Printf.sprintf "t4 (%.0f) <= t1 (%.0f)" t4 t1)
    true (t4 <= t1)

let test_locality_speedup_at_scale () =
  (* at cache-stressing sizes the tiled jacobi must beat the original
     sequentially (the Fig. 6 locality effect) *)
  let k = Kernels.jacobi_1d in
  let p, _ = Fixtures.program_and_deps k in
  let orig = Baselines.original p in
  let tiled = Fixtures.compiled k in
  let params = Kernels.params_vector p [ ("T", 64); ("N", 4000) ] in
  let mc = { Machine.default_machine with Machine.ncores = 1 } in
  let t0 = (Machine.simulate mc orig.Driver.code ~params).Machine.cycles in
  let t1 = (Machine.simulate mc tiled.Driver.code ~params).Machine.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "tiled %.2e < orig %.2e" t1 t0)
    true (t1 < t0)

let test_out_of_bounds_detected () =
  (* an access past the declared extent must be caught, not silently read *)
  let p =
    Frontend.parse_program ~name:"oob"
      "double v[N];\nfor (i = 0; i < N + 4; i++) v[i] = 1.0;"
  in
  let r = Driver.compile_original p in
  let mem = Machine.alloc_memory p ~params:[| 6 |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Machine.interpret r.Driver.code ~params:[| 6 |] ~mem);
       false
     with Failure _ -> true)

let suite =
  ( "machine",
    [
      Alcotest.test_case "cache basics" `Quick test_cache_basic;
      Alcotest.test_case "cache LRU" `Quick test_cache_lru_eviction;
      Alcotest.test_case "cache stride sensitivity" `Quick test_cache_sequential_vs_strided;
      Alcotest.test_case "memory layout" `Quick test_memory_layout;
      Alcotest.test_case "deterministic init" `Quick test_init_deterministic;
      Alcotest.test_case "simulation counts" `Quick test_simulation_counts;
      Alcotest.test_case "parallel monotone" `Quick test_parallel_speedup_monotone;
      Alcotest.test_case "locality speedup (Fig 6)" `Quick test_locality_speedup_at_scale;
      Alcotest.test_case "out-of-bounds detection" `Quick test_out_of_bounds_detected;
    ] )
