(* The transformation search: paper-exact transformations, legality
   invariants, band structure, Farkas machinery. *)

open Pluto.Types

let check_rows name expected actual =
  Alcotest.(check (list (list int))) name expected actual

(* -- paper fixtures ------------------------------------------------------- *)

let test_jacobi_matches_paper () =
  (* Figure 3: c1 = t for both; c2 = 2t+i for S1 and 2t+j+1 for S2 *)
  let t = Fixtures.transform Kernels.jacobi_1d in
  check_rows "S1" [ [ 1; 0; 0 ]; [ 2; 1; 0 ]; [ 0; 0; 0 ] ] (Fixtures.rows_of t 0);
  check_rows "S2" [ [ 1; 0; 0 ]; [ 2; 1; 1 ]; [ 0; 0; 1 ] ] (Fixtures.rows_of t 1);
  (match t.kinds with
  | [| Loop { band = b1; _ }; Loop { band = b2; _ }; Scalar |] ->
      Alcotest.(check int) "one band" b1 b2
  | _ -> Alcotest.fail "expected Loop,Loop,Scalar")

let test_lu_matches_paper () =
  (* 5.2: S1: (k, j, k);  S2: (k, j, i) — all in one tilable band *)
  let t = Fixtures.transform Kernels.lu in
  check_rows "S1" [ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 1; 0; 0 ] ] (Fixtures.rows_of t 0);
  check_rows "S2" [ [ 1; 0; 0; 0 ]; [ 0; 0; 1; 0 ]; [ 0; 1; 0; 0 ] ] (Fixtures.rows_of t 1);
  let bands = Pluto.Tiling.bands_of t in
  Alcotest.(check int) "single band" 1 (List.length bands);
  Alcotest.(check int) "band width 3" 3 (List.hd bands).Pluto.Tiling.b_len

let test_mvt_matches_paper () =
  (* 7/Figure 12: fuse ij with ji — the second MV runs permuted so the RAR
     distance on A is 0 on both hyperplanes; no sync-free parallelism left *)
  let t = Fixtures.transform Kernels.mvt in
  check_rows "S1" [ [ 1; 0; 0 ]; [ 0; 1; 0 ] ] (Fixtures.rows_of t 0);
  check_rows "S2 (permuted)" [ [ 0; 1; 0 ]; [ 1; 0; 0 ] ] (Fixtures.rows_of t 1);
  Array.iter
    (function
      | Loop { parallel; _ } ->
          Alcotest.(check bool) "pipelined, not sync-free" false parallel
      | Scalar -> ())
    t.kinds

let test_seidel_matches_paper () =
  (* 7: "skews the two space dimensions by a factor of one and two ..."
     our cost function finds the minimal legal skew (1,1) for the 5-point
     stencil variant: (t, t+i, t+j), all three dimensions tilable *)
  let t = Fixtures.transform Kernels.seidel in
  check_rows "S1" [ [ 1; 0; 0; 0 ]; [ 1; 1; 0; 0 ]; [ 1; 0; 1; 0 ] ] (Fixtures.rows_of t 0);
  let bands = Pluto.Tiling.bands_of t in
  Alcotest.(check int) "one band of 3" 3 (List.hd bands).Pluto.Tiling.b_len

let test_fdtd_band () =
  (* 7: three tiling hyperplanes, all in one band (shifting+fusion+skewing) *)
  let t = Fixtures.transform Kernels.fdtd_2d in
  Alcotest.(check int) "3 levels" 3 t.nlevels;
  let bands = Pluto.Tiling.bands_of t in
  Alcotest.(check int) "one band" 1 (List.length bands);
  Alcotest.(check int) "width 3" 3 (List.hd bands).Pluto.Tiling.b_len;
  (* the 2-d statement is sunk into the 3-d band; S4 is shifted *)
  let s4 = Fixtures.rows_of t 3 in
  Alcotest.(check (list int)) "S4 c2 shifted" [ 1; 0; 1; 1 ] (List.nth s4 1)

let test_matmul_identityish () =
  (* matmul: i and j parallel hyperplanes outer, k (the reduction) inner *)
  let t = Fixtures.transform Kernels.matmul in
  check_rows "S1" [ [ 1; 0; 0; 0 ]; [ 0; 1; 0; 0 ]; [ 0; 0; 1; 0 ] ] (Fixtures.rows_of t 0);
  (match t.kinds.(0) with
  | Loop { parallel = true; _ } -> ()
  | _ -> Alcotest.fail "outer loop should be parallel");
  match t.kinds.(2) with
  | Loop { parallel = false; _ } -> ()
  | _ -> Alcotest.fail "reduction loop must be sequential"

let test_2mm_distribution () =
  (* two dependent matrix products: a scalar cut must separate them *)
  let t = Fixtures.transform Kernels.mm2 in
  Alcotest.(check bool) "has scalar level" true
    (Array.exists (fun k -> k = Scalar) t.kinds);
  (* the cut orders S1 before S2 *)
  let l =
    match Array.find_index (fun k -> k = Scalar) t.kinds with
    | Some l -> l
    | None -> assert false
  in
  let v i = List.nth (List.nth (Fixtures.rows_of t i) l) (Ir.depth (List.nth t.program.Ir.stmts i)) in
  Alcotest.(check bool) "S1 before S2" true (v 0 < v 1)

(* -- invariants on every kernel ------------------------------------------ *)

(* legality: for every legality dependence and every level up to its
   satisfaction level, δ >= 0 everywhere; at the satisfaction level δ >= 1 *)
let check_transform_legality (k : Kernels.t) () =
  let p, _ = Fixtures.program_and_deps k in
  let t = Fixtures.transform k in
  let np = Ir.nparams p in
  let nv d = d.Deps.poly.Polyhedra.nvars in
  List.iter
    (fun d ->
      if Deps.is_legality d then begin
        let sat = Hashtbl.find_opt t.satisfied_at d.Deps.id in
        let upto = match sat with Some l -> l | None -> t.nlevels - 1 in
        for l = 0 to upto do
          let delta =
            Deps.satisfaction_row p d
              t.rows.(d.Deps.src.Ir.id).(l)
              t.rows.(d.Deps.dst.Ir.id).(l)
          in
          (* check: no point with δ <= -1, params fixed at 50 *)
          let width = nv d + 1 in
          let bad = Vec.neg delta in
          bad.(width - 1) <- Bigint.sub bad.(width - 1) Bigint.one;
          let sys = Polyhedra.add d.Deps.poly (Polyhedra.ge bad) in
          let fix =
            Polyhedra.of_constrs (nv d)
              (List.map
                 (fun j ->
                   let r = Vec.zero width in
                   r.(nv d - np + j) <- Bigint.one;
                   r.(width - 1) <- Bigint.of_int (-50);
                   Polyhedra.eq r)
                 (Putil.range np))
          in
          match Milp.feasible (Polyhedra.meet sys fix) with
          | Some _ ->
              Alcotest.fail
                (Printf.sprintf "%s: dep %d has negative component at level %d"
                   k.Kernels.name d.Deps.id l)
          | None -> ()
        done;
        match sat with
        | None -> ()
        | Some l ->
            let delta =
              Deps.satisfaction_row p d
                t.rows.(d.Deps.src.Ir.id).(l)
                t.rows.(d.Deps.dst.Ir.id).(l)
            in
            (* recorded satisfaction level really satisfies: no δ <= 0 point *)
            let width = nv d + 1 in
            let bad = Vec.neg delta in
            let sys = Polyhedra.add d.Deps.poly (Polyhedra.ge bad) in
            let fix =
              Polyhedra.of_constrs (nv d)
                (List.map
                   (fun j ->
                     let r = Vec.zero width in
                     r.(nv d - np + j) <- Bigint.one;
                     r.(width - 1) <- Bigint.of_int (-50);
                     Polyhedra.eq r)
                   (Putil.range np))
            in
            (match Milp.feasible (Polyhedra.meet sys fix) with
            | Some _ ->
                Alcotest.fail
                  (Printf.sprintf "%s: dep %d not satisfied at recorded level %d"
                     k.Kernels.name d.Deps.id l)
            | None -> ())
      end)
    t.deps

(* every statement reaches full row rank *)
let check_full_rank (k : Kernels.t) () =
  let t = Fixtures.transform k in
  List.iter
    (fun s ->
      let m = Ir.depth s in
      if m > 0 then begin
        let rows =
          Array.map (fun r -> Array.sub r 0 m) t.rows.(s.Ir.id)
        in
        Alcotest.(check int)
          (Printf.sprintf "%s rank" s.Ir.name)
          m
          (Mat.rank (Mat.of_int_rows rows))
      end)
    t.program.Ir.stmts

(* all statements have the same number of rows = nlevels *)
let check_homogeneous (k : Kernels.t) () =
  let t = Fixtures.transform k in
  Array.iter
    (fun rows -> Alcotest.(check int) "levels" t.nlevels (Array.length rows))
    t.rows;
  Alcotest.(check int) "kinds" t.nlevels (Array.length t.kinds)

(* -- Farkas machinery ----------------------------------------------------- *)

let test_farkas_simple () =
  (* ∀ x in [0, N-1] : c*x + d >= 0 with ILP vars (c, d) and N a parameter.
     Farkas must yield constraints equivalent to c >= 0 ∧ d >= 0 (for the
     parametric family N >= 1). *)
  let poly =
    (* vars: x, N; constraints x >= 0, N-1-x >= 0, N >= 1 *)
    Polyhedra.of_constrs 2
      [
        Polyhedra.ge_ints [ 1; 0; 0 ];
        Polyhedra.ge_ints [ -1; 1; -1 ];
        Polyhedra.ge_ints [ 0; 1; -1 ];
      ]
  in
  (* form over (x, N, 1): row of (c,d) coefficients *)
  let form = [| [| 1; 0; 0 |]; [| 0; 0; 0 |]; [| 0; 1; 0 |] |] in
  let sys = Pluto.Farkas.constraints ~nilp:2 ~form ~poly in
  (* c=1,d=0 ok; c=-1,d=5 not (x can exceed 5 when N large) *)
  let sat c d = Polyhedra.sat_point sys (Array.map Bigint.of_int [| c; d |]) in
  Alcotest.(check bool) "c=1,d=0" true (sat 1 0);
  Alcotest.(check bool) "c=0,d=0" true (sat 0 0);
  Alcotest.(check bool) "c=-1,d=5" false (sat (-1) 5);
  Alcotest.(check bool) "c=0,d=-1" false (sat 0 (-1))

let test_sccs () =
  (* 0 -> 1 -> 2 -> 1, 3 isolated: comps {0} {1,2} {3}, topo: 0 before 1,2 *)
  let comp, n = Pluto.Ddg.sccs ~nstmts:4 [ (0, 1); (1, 2); (2, 1) ] in
  Alcotest.(check int) "3 comps" 3 n;
  Alcotest.(check int) "1 and 2 together" comp.(1) comp.(2);
  Alcotest.(check bool) "topological" true (comp.(0) < comp.(1))

let test_wavefront_sums_rows () =
  let t = Fixtures.transform Kernels.seidel in
  let bands = Pluto.Tiling.bands_of t in
  let bands_sizes = List.map (fun b -> (b, Array.make b.Pluto.Tiling.b_len 8)) bands in
  let tgt = Pluto.Tiling.tile t ~bands_sizes in
  let levels = Pluto.Tiling.target_band_levels t ~bands_sizes (List.hd bands) in
  let tgtw = Pluto.Tiling.wavefront tgt ~levels ~degrees:2 in
  let ts = List.hd tgtw.tstmts in
  let first = List.hd levels in
  (* first tile row = sum of original first three tile rows = zT0+zT1+zT2 *)
  Alcotest.(check (list int)) "wavefront row"
    [ 1; 1; 1; 0; 0; 0; 0 ]
    (Array.to_list ts.trows.(first));
  (* two parallel marks *)
  let pars = Array.to_list tgtw.tpar |> List.filter (fun p -> p = Par) in
  Alcotest.(check int) "2 parallel levels" 2 (List.length pars)

let test_tile_size_model () =
  Alcotest.(check bool) "within range" true
    (let t = Pluto.Tiling.default_tile_size ~band_width:2 ~cache_elems:1024 ~narrays:2 in
     t >= 4 && t <= 64);
  Alcotest.(check int) "floor at 4" 4
    (Pluto.Tiling.default_tile_size ~band_width:3 ~cache_elems:8 ~narrays:4);
  Alcotest.(check int) "cap at 32" 32
    (Pluto.Tiling.default_tile_size ~band_width:1 ~cache_elems:100000000 ~narrays:1)

(* tiling semantics: supernode constraints mean zT_j = floord(phi_j(i)+c0, tau)
   at every domain point — checked by sampling *)
let test_tile_floord_semantics () =
  let t = Fixtures.transform Kernels.jacobi_1d in
  let bands = Pluto.Tiling.bands_of t in
  let b = List.hd bands in
  let tau = 8 in
  let bands_sizes = [ (b, Array.make b.Pluto.Tiling.b_len tau) ] in
  let tgt = Pluto.Tiling.tile t ~bands_sizes in
  let params = [| 5; 20 |] in
  List.iter
    (fun ts ->
      let s = ts.stmt in
      let m = Ir.depth s in
      let n_super = Array.length ts.ext_iters - m in
      List.iter
        (fun iters ->
          (* compute the forced supernode values and check they satisfy the
             extended domain *)
          let supers =
            Array.init n_super (fun z ->
                let l = b.Pluto.Tiling.b_start + z in
                let row = t.rows.(s.Ir.id).(l) in
                let phi =
                  Array.to_list iters
                  |> List.mapi (fun j v -> row.(j) * v)
                  |> List.fold_left ( + ) row.(m)
                in
                if phi >= 0 then phi / tau else -(((-phi) + tau - 1) / tau))
          in
          let point =
            Array.append (Array.map Bigint.of_int supers)
              (Array.append (Array.map Bigint.of_int iters)
                 (Array.map Bigint.of_int params))
          in
          if not (Polyhedra.sat_point ts.ext_domain point) then
            Alcotest.fail "floord supernode not in extended domain";
          (* and any OTHER supernode value must violate it *)
          let wrong = Array.copy point in
          wrong.(0) <- Bigint.add wrong.(0) Bigint.one;
          if Polyhedra.sat_point ts.ext_domain wrong then
            Alcotest.fail "supernode value not unique")
        (Machine.For_tests.enumerate_domain s ~params:[| 5; 20 |]))
    tgt.tstmts

let extra_suite =
  [ Alcotest.test_case "tile = floord semantics" `Quick test_tile_floord_semantics ]

let suite =
  let per_kernel name f =
    List.map
      (fun k -> Alcotest.test_case (name ^ " " ^ k.Kernels.name) `Quick (f k))
      [
        Kernels.jacobi_1d;
        Kernels.lu;
        Kernels.mvt;
        Kernels.seidel;
        Kernels.matmul;
        Kernels.trmm;
        Kernels.mm2;
      ]
  in
  ( "pluto",
    [
      Alcotest.test_case "jacobi = paper Fig 3" `Quick test_jacobi_matches_paper;
      Alcotest.test_case "LU = paper 5.2" `Quick test_lu_matches_paper;
      Alcotest.test_case "MVT fusion = paper Fig 12" `Quick test_mvt_matches_paper;
      Alcotest.test_case "Seidel skew" `Quick test_seidel_matches_paper;
      Alcotest.test_case "FDTD band" `Quick test_fdtd_band;
      Alcotest.test_case "matmul" `Quick test_matmul_identityish;
      Alcotest.test_case "2mm distribution" `Quick test_2mm_distribution;
      Alcotest.test_case "Farkas lemma" `Quick test_farkas_simple;
      Alcotest.test_case "SCCs" `Quick test_sccs;
      Alcotest.test_case "wavefront (Algorithm 2)" `Quick test_wavefront_sums_rows;
      Alcotest.test_case "tile size model" `Quick test_tile_size_model;
    ]
    @ per_kernel "legality" check_transform_legality
    @ per_kernel "full rank" check_full_rank
    @ per_kernel "homogeneous" check_homogeneous
    @ extra_suite )

