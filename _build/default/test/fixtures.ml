(* Shared, memoized pipeline results so the expensive transform runs once per
   kernel across test files. *)

let dep_cache : (string, Ir.program * Deps.t list) Hashtbl.t = Hashtbl.create 8

let program_and_deps (k : Kernels.t) =
  match Hashtbl.find_opt dep_cache k.Kernels.name with
  | Some r -> r
  | None ->
      let p = Kernels.program k in
      let ds = Deps.compute p in
      Hashtbl.replace dep_cache k.Kernels.name (p, ds);
      (p, ds)

let tr_cache : (string, Pluto.Types.transform) Hashtbl.t = Hashtbl.create 8

let transform (k : Kernels.t) =
  match Hashtbl.find_opt tr_cache k.Kernels.name with
  | Some t -> t
  | None ->
      let p, ds = program_and_deps k in
      let t = Pluto.Auto.transform p ds in
      Hashtbl.replace tr_cache k.Kernels.name t;
      (t : Pluto.Types.transform)

let compiled_cache : (string, Driver.result) Hashtbl.t = Hashtbl.create 8

(* full paper pipeline (tile + wavefront + intra reorder) *)
let compiled (k : Kernels.t) =
  match Hashtbl.find_opt compiled_cache k.Kernels.name with
  | Some r -> r
  | None ->
      let p, ds = program_and_deps k in
      let t = transform k in
      let r = Driver.compile_with_transform p ds t in
      Hashtbl.replace compiled_cache k.Kernels.name r;
      r

let check_params (k : Kernels.t) =
  let p, _ = program_and_deps k in
  Kernels.params_vector p k.Kernels.check_params

(* rows of statement [i] of a transform, as int lists, for readable asserts *)
let rows_of (t : Pluto.Types.transform) i =
  Array.to_list (Array.map Array.to_list t.Pluto.Types.rows.(i))
