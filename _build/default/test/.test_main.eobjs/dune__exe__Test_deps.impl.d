test/test_deps.ml: Alcotest Array Bigint Deps Fixtures Ir Kernels List Milp Polyhedra Printf Putil String Vec
