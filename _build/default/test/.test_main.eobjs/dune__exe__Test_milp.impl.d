test/test_milp.ml: Alcotest Array Bigint List Milp Polyhedra Putil Q QCheck QCheck_alcotest Vec
