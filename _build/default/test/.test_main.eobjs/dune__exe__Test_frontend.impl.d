test/test_frontend.ml: Alcotest Array Astring Bigint Driver Frontend Ir Kernels List Machine Polyhedra Printf String
