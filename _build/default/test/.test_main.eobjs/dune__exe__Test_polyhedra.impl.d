test/test_polyhedra.ml: Alcotest Array Bigint List Polyhedra Printf Putil QCheck QCheck_alcotest
