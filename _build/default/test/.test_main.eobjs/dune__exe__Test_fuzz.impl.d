test/test_fuzz.ml: Driver Frontend Ir List Machine Printf Putil QCheck QCheck_alcotest String
