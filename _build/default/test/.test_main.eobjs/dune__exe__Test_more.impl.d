test/test_more.ml: Alcotest Array Bigint Cache Codegen Driver Fixtures Kernels List Machine Milp Pluto Polyhedra Putil Q QCheck QCheck_alcotest Vec
