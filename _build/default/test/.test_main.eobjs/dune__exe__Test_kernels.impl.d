test/test_kernels.ml: Alcotest Array Bigint Driver Fixtures Ir Kernels List Machine Pluto Polyhedra
