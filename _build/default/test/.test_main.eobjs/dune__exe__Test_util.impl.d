test/test_util.ml: Alcotest Array Bigint Ir Putil Vec
