test/test_edge.ml: Alcotest Array Deps Driver Frontend Ir Kernels List Machine Pluto
