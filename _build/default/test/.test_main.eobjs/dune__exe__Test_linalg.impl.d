test/test_linalg.ml: Alcotest Array Bigint List Mat Printf Putil Q QCheck QCheck_alcotest Vec
