test/test_endtoend.ml: Alcotest Baselines Driver Fixtures Kernels List Machine Printf
