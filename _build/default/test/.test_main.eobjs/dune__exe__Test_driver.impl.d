test/test_driver.ml: Alcotest Array Codegen Driver Fixtures Ir Kernels List Machine Pluto
