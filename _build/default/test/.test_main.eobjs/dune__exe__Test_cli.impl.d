test/test_cli.ml: Alcotest Astring Driver Filename Kernels List Printf Runner Sys Unix
