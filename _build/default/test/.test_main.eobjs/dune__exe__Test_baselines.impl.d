test/test_baselines.ml: Alcotest Array Baselines Deps Driver Feautrier Fixtures Hashtbl Kernels List Machine Mat Pluto Printf Putil
