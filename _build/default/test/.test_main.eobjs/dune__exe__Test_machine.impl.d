test/test_machine.ml: Alcotest Array Baselines Cache Driver Fixtures Frontend Kernels Machine Printf
