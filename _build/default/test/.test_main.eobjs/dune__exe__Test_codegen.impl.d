test/test_codegen.ml: Alcotest Array Astring Baselines Codegen Driver Filename Fixtures Frontend Ir Kernels List Machine Pluto Printf Putil Sys Unix
