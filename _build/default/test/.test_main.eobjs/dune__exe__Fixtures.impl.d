test/fixtures.ml: Array Deps Driver Hashtbl Ir Kernels Pluto
