test/test_pluto.ml: Alcotest Array Bigint Deps Fixtures Hashtbl Ir Kernels List Machine Mat Milp Pluto Polyhedra Printf Putil Vec
