(* End-to-end semantic equivalence: original program vs generated code, over
   the full option matrix — the strongest correctness check in the suite. *)

let opt ~tile ~par ~wavefront ~intra =
  {
    Driver.default_options with
    Driver.tile;
    parallelize = par;
    wavefront;
    intra_reorder = intra;
    tile_size = Some 8 (* small tiles exercise boundary code at test sizes *);
  }

let option_matrix =
  [
    ("untiled-seq", opt ~tile:false ~par:false ~wavefront:0 ~intra:false);
    ("untiled-par", opt ~tile:false ~par:true ~wavefront:0 ~intra:false);
    ("tiled-seq", opt ~tile:true ~par:false ~wavefront:0 ~intra:false);
    ("tiled-wave1", opt ~tile:true ~par:true ~wavefront:1 ~intra:false);
    ("tiled-wave2", opt ~tile:true ~par:true ~wavefront:2 ~intra:false);
    ("paper", Driver.{ default_options with tile_size = Some 8 });
  ]

let check_kernel_options (k : Kernels.t) (oname, options) () =
  let p, ds = Fixtures.program_and_deps k in
  let t = Fixtures.transform k in
  let r = Driver.compile_with_transform ~options p ds t in
  let params = Fixtures.check_params k in
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s forward" k.Kernels.name oname)
    true
    (Machine.equivalent p r.Driver.code ~params);
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s reverse-parallel" k.Kernels.name oname)
    true
    (Machine.equivalent ~par_reverse:true p r.Driver.code ~params)

(* equivalence at several parameter points, including degenerate sizes *)
let check_kernel_sizes (k : Kernels.t) () =
  let p, ds = Fixtures.program_and_deps k in
  let t = Fixtures.transform k in
  let r = Driver.compile_with_transform ~options:(opt ~tile:true ~par:true ~wavefront:1 ~intra:true) p ds t in
  List.iter
    (fun factor ->
      let assoc =
        List.map
          (fun (name, v) -> (name, max 3 (v * factor / 100)))
          k.Kernels.check_params
      in
      let params = Kernels.params_vector p assoc in
      Alcotest.(check bool)
        (Printf.sprintf "%s at %d%%" k.Kernels.name factor)
        true
        (Machine.equivalent p r.Driver.code ~params))
    [ 40; 70; 130 ]

let check_baseline name make (k : Kernels.t) () =
  let p, _ = Fixtures.program_and_deps k in
  let r = make p in
  let params = Fixtures.check_params k in
  Alcotest.(check bool) (name ^ " forward") true
    (Machine.equivalent p r.Driver.code ~params);
  Alcotest.(check bool) (name ^ " reverse") true
    (Machine.equivalent ~par_reverse:true p r.Driver.code ~params)

let fast_kernels =
  [ Kernels.jacobi_1d; Kernels.lu; Kernels.mvt; Kernels.seidel; Kernels.matmul ]

let slow_kernels =
  [ Kernels.fdtd_2d; Kernels.jacobi_2d; Kernels.gemver; Kernels.trmm; Kernels.mm2 ]

let suite =
  let opts_tests speed ks =
    List.concat_map
      (fun k ->
        List.map
          (fun (oname, _ as o) ->
            Alcotest.test_case
              (Printf.sprintf "%s %s" k.Kernels.name oname)
              speed
              (check_kernel_options k o))
          option_matrix)
      ks
  in
  ( "end-to-end",
    opts_tests `Quick fast_kernels
    @ opts_tests `Slow slow_kernels
    @ List.map
        (fun k ->
          Alcotest.test_case ("sizes " ^ k.Kernels.name) `Quick
            (check_kernel_sizes k))
        fast_kernels
    @ [
        Alcotest.test_case "baseline jacobi affine-partition" `Quick
          (check_baseline "affine-partition" Baselines.jacobi_affine_partition
             Kernels.jacobi_1d);
        Alcotest.test_case "baseline jacobi scheduling-fco" `Quick
          (check_baseline "scheduling-fco" Baselines.jacobi_scheduling_fco
             Kernels.jacobi_1d);
        Alcotest.test_case "baseline lu scheduling" `Quick
          (check_baseline "lu-scheduling" Baselines.lu_scheduling Kernels.lu);
        Alcotest.test_case "baseline mvt fuse-ij-ij" `Quick
          (check_baseline "mvt-ij-ij" Baselines.mvt_fuse_ij_ij Kernels.mvt);
        Alcotest.test_case "baseline mvt unfused-parallel" `Quick
          (check_baseline "mvt-unfused" Baselines.mvt_unfused_parallel
             Kernels.mvt);
        Alcotest.test_case "baseline inner-parallel jacobi" `Quick
          (check_baseline "inner-par" Baselines.inner_parallel Kernels.jacobi_1d);
        Alcotest.test_case "baseline inner-parallel lu" `Quick
          (check_baseline "inner-par" Baselines.inner_parallel Kernels.lu);
      ] )
