(* Edge cases through the whole pipeline: scalars (0-dim arrays),
   reductions, dependence-free programs, single statements, deep nests. *)

let compile_and_check ?options src params_assoc =
  let p = Frontend.parse_program ~name:"<edge>" src in
  let r = Driver.compile ?options p in
  let params = Kernels.params_vector p params_assoc in
  Alcotest.(check bool) "equivalent" true (Machine.equivalent p r.Driver.code ~params);
  Alcotest.(check bool) "reverse-parallel" true
    (Machine.equivalent ~par_reverse:true p r.Driver.code ~params);
  (p, r)

let test_scalar_reduction () =
  (* a 0-dimensional array: sequentializing flow/anti/output deps on s *)
  let src = "double s, a[N];\nfor (i = 0; i < N; i++) s = s + a[i];" in
  let p, r = compile_and_check src [ ("N", 30) ] in
  ignore p;
  (* the reduction loop must not be marked parallel *)
  Alcotest.(check bool) "sequential" true
    (Array.for_all (fun x -> x = Pluto.Types.Seq) r.Driver.target.Pluto.Types.tpar)

let test_dependence_free () =
  let src = "double a[N][N];\nfor (i = 0; i < N; i++) for (j = 0; j < N; j++) a[i][j] = 1.0;" in
  let p, r = compile_and_check src [ ("N", 20) ] in
  let ds = Deps.compute p in
  Alcotest.(check int) "no deps" 0 (List.length ds);
  (* fully parallel: some level is marked Par *)
  Alcotest.(check bool) "parallelized" true
    (Array.exists (fun x -> x = Pluto.Types.Par) r.Driver.target.Pluto.Types.tpar)

let test_single_1d_statement () =
  let src = "double a[N];\nfor (i = 1; i < N; i++) a[i] = a[i-1] + 1.0;" in
  let _, r = compile_and_check src [ ("N", 40) ] in
  (* recurrence: sequential, single loop level *)
  Alcotest.(check bool) "sequential" true
    (Array.for_all (fun x -> x = Pluto.Types.Seq) r.Driver.target.Pluto.Types.tpar)

let test_deep_band () =
  (* a 4-deep single-statement time stencil: 4-wide permutable band *)
  let src =
    "double a[N][N][N];\n\
     for (t = 0; t < T; t++)\n\
    \  for (i = 1; i < N - 1; i++)\n\
    \    for (j = 1; j < N - 1; j++)\n\
    \      for (k = 1; k < N - 1; k++)\n\
    \        a[i][j][k] = 0.1 * (a[i-1][j][k] + a[i][j-1][k] + a[i][j][k-1] + a[i+1][j][k]);"
  in
  let p, r = compile_and_check src [ ("T", 3); ("N", 8) ] in
  ignore p;
  let t = r.Driver.transform in
  Alcotest.(check int) "4 levels" 4 t.Pluto.Types.nlevels;
  let bands = Pluto.Tiling.bands_of t in
  Alcotest.(check int) "one band of 4" 4 (List.hd bands).Pluto.Tiling.b_len

let test_negative_shift_needed_is_rejected_gracefully () =
  (* a[i] = a[i+1]: anti dependence in the reversed direction; with only
     non-negative coefficients the loop still works (identity is legal:
     reads of a[i+1] happen before the write of a[i+1]) *)
  let src = "double a[N];\nfor (i = 0; i < N - 1; i++) a[i] = a[i+1];" in
  ignore (compile_and_check src [ ("N", 25) ])

let test_two_parameter_bounds () =
  let src =
    "double A[M][N];\nfor (i = 0; i < M; i++) for (j = i; j < N; j++) A[i][j] = 2.0;"
  in
  ignore (compile_and_check src [ ("M", 9); ("N", 14) ])

let test_constant_bounds_no_params () =
  (* a program with no parameters at all *)
  let src = "double a[32];\nfor (i = 0; i < 32; i++) a[i] = 1.0;" in
  let p = Frontend.parse_program ~name:"<noparam>" src in
  Alcotest.(check int) "no params" 0 (List.length p.Ir.params);
  let r = Driver.compile p in
  Alcotest.(check bool) "equivalent" true
    (Machine.equivalent p r.Driver.code ~params:[||])

let test_statement_outside_loops () =
  (* depth-0 statement mixed with a loop *)
  let src = "double s, a[N];\ns = 0.0;\nfor (i = 0; i < N; i++) a[i] = s + 1.0;" in
  ignore (compile_and_check src [ ("N", 15) ])

let suite =
  ( "edge-cases",
    [
      Alcotest.test_case "scalar reduction" `Quick test_scalar_reduction;
      Alcotest.test_case "dependence-free" `Quick test_dependence_free;
      Alcotest.test_case "1-d recurrence" `Quick test_single_1d_statement;
      Alcotest.test_case "4-deep band" `Quick test_deep_band;
      Alcotest.test_case "reversed-direction anti dep" `Quick
        test_negative_shift_needed_is_rejected_gracefully;
      Alcotest.test_case "two parameters" `Quick test_two_parameter_bounds;
      Alcotest.test_case "no parameters" `Quick test_constant_bounds_no_params;
      Alcotest.test_case "depth-0 statement" `Quick test_statement_outside_loops;
    ] )
