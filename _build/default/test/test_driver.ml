(* Driver pipeline policy: option handling, tiling decisions, parallel
   marking, multi-level tiling. *)

open Pluto.Types

let opt = Driver.default_options

let test_no_tile_means_no_supernodes () =
  let k = Kernels.matmul in
  let p, ds = Fixtures.program_and_deps k in
  let t = Fixtures.transform k in
  let r =
    Driver.compile_with_transform ~options:{ opt with Driver.tile = false } p ds t
  in
  List.iter
    (fun ts ->
      Alcotest.(check int) "ext = original iters"
        (Ir.depth ts.stmt)
        (Array.length ts.ext_iters))
    r.Driver.target.tstmts

let test_tile_adds_supernodes () =
  let k = Kernels.matmul in
  let r = Fixtures.compiled k in
  List.iter
    (fun ts ->
      Alcotest.(check int) "3 supernodes + 3 iters" 6 (Array.length ts.ext_iters))
    r.Driver.target.tstmts

let test_min_band_tile () =
  (* with min_band_tile > band width nothing is tiled *)
  let k = Kernels.matmul in
  let p, ds = Fixtures.program_and_deps k in
  let t = Fixtures.transform k in
  let r =
    Driver.compile_with_transform
      ~options:{ opt with Driver.min_band_tile = 10 }
      p ds t
  in
  Alcotest.(check int) "no extra levels" t.nlevels r.Driver.target.tnlevels

let test_parallelize_false_all_seq () =
  let k = Kernels.jacobi_1d in
  let p, ds = Fixtures.program_and_deps k in
  let t = Fixtures.transform k in
  let r =
    Driver.compile_with_transform
      ~options:{ opt with Driver.parallelize = false }
      p ds t
  in
  Alcotest.(check bool) "no Par levels" true
    (Array.for_all (fun x -> x = Seq) r.Driver.target.tpar)

let test_wavefront_marks_par () =
  let k = Kernels.jacobi_1d in
  let r = Fixtures.compiled k in
  let pars =
    Array.to_list r.Driver.target.tpar |> List.filter (fun x -> x = Par)
  in
  Alcotest.(check int) "exactly 1 Par level (wavefront=1)" 1 (List.length pars)

let test_outer_parallel_direct_mark () =
  (* matmul's outer tile loop is parallel: no wavefront needed, the first
     tile loop is marked directly *)
  let k = Kernels.matmul in
  let r = Fixtures.compiled k in
  Alcotest.(check bool) "level 0 Par" true (r.Driver.target.tpar.(0) = Par);
  (* and its scattering row is still the plain supernode (no skew) *)
  let ts = List.hd r.Driver.target.tstmts in
  Alcotest.(check (list int)) "row = zT0"
    [ 1; 0; 0; 0; 0; 0; 0 ]
    (Array.to_list ts.trows.(0))

let test_wavefront_skews_tile_space () =
  (* jacobi's outer tile loop is NOT parallel: Algorithm 2 applies, the first
     tile row becomes zT0 + zT1 *)
  let k = Kernels.jacobi_1d in
  let r = Fixtures.compiled k in
  let ts = List.hd r.Driver.target.tstmts in
  Alcotest.(check (list int)) "row = zT0+zT1"
    [ 1; 1; 0; 0; 0 ]
    (Array.to_list ts.trows.(0))

let test_compile_original_identity () =
  let k = Kernels.jacobi_1d in
  let p, _ = Fixtures.program_and_deps k in
  let r = Driver.compile_original p in
  Alcotest.(check bool) "sequential" true
    (Array.for_all (fun x -> x = Seq) r.Driver.target.tpar);
  let params = Fixtures.check_params k in
  Alcotest.(check bool) "equivalent" true
    (Machine.equivalent p r.Driver.code ~params)

let test_two_level_tiling_equivalence () =
  let k = Kernels.jacobi_1d in
  let p, _ = Fixtures.program_and_deps k in
  let t = Fixtures.transform k in
  let b = List.hd (Pluto.Tiling.bands_of t) in
  let bands_sizes =
    [ (b, [ Array.make b.Pluto.Tiling.b_len 16; Array.make b.Pluto.Tiling.b_len 4 ]) ]
  in
  let tgt = Pluto.Tiling.tile_levels t ~bands_sizes in
  let levels = Pluto.Tiling.target_band_levels_multi t ~bands_sizes b in
  let tgt = Pluto.Tiling.wavefront tgt ~levels ~degrees:1 in
  let cg = Codegen.generate tgt in
  let params = Fixtures.check_params k in
  Alcotest.(check bool) "2-level equivalent" true (Machine.equivalent p cg ~params);
  Alcotest.(check bool) "2-level reverse" true
    (Machine.equivalent ~par_reverse:true p cg ~params);
  (* both tiling levels appear: 2 bands * 2 levels of supernodes + 2 + scalar *)
  Alcotest.(check int) "level count" 7 tgt.tnlevels

let test_no_cost_bound_still_legal () =
  (* the legality-only ablation must still produce correct code *)
  let k = Kernels.mvt in
  let p, _ = Fixtures.program_and_deps k in
  let options =
    {
      opt with
      Driver.auto =
        { Pluto.Auto.default_config with Pluto.Auto.use_cost_bound = false };
    }
  in
  let r = Driver.compile ~options p in
  let params = Fixtures.check_params k in
  Alcotest.(check bool) "equivalent" true (Machine.equivalent p r.Driver.code ~params)

let suite =
  ( "driver",
    [
      Alcotest.test_case "no-tile keeps domains" `Quick test_no_tile_means_no_supernodes;
      Alcotest.test_case "tile adds supernodes" `Quick test_tile_adds_supernodes;
      Alcotest.test_case "min_band_tile" `Quick test_min_band_tile;
      Alcotest.test_case "parallelize=false" `Quick test_parallelize_false_all_seq;
      Alcotest.test_case "wavefront Par count" `Quick test_wavefront_marks_par;
      Alcotest.test_case "outer-parallel direct mark" `Quick test_outer_parallel_direct_mark;
      Alcotest.test_case "wavefront skews tiles" `Quick test_wavefront_skews_tile_space;
      Alcotest.test_case "compile_original" `Quick test_compile_original_identity;
      Alcotest.test_case "two-level tiling" `Quick test_two_level_tiling_equivalence;
      Alcotest.test_case "no-cost-bound ablation legal" `Quick test_no_cost_bound_still_legal;
    ] )
