(* Putil and Vec helpers. *)

let test_gcd_lcm () =
  Alcotest.(check int) "gcd" 6 (Putil.gcd_int 12 (-18));
  Alcotest.(check int) "gcd 0 0" 0 (Putil.gcd_int 0 0);
  Alcotest.(check int) "lcm" 36 (Putil.lcm_int 12 18);
  Alcotest.(check int) "lcm 0" 0 (Putil.lcm_int 0 5)

let test_lists () =
  Alcotest.(check (list int)) "range" [ 0; 1; 2 ] (Putil.range 3);
  Alcotest.(check (list int)) "range 0" [] (Putil.range 0);
  Alcotest.(check int) "sum_by" 6 (Putil.sum_by (fun x -> x) [ 1; 2; 3 ]);
  Alcotest.(check int) "list_max" 7 (Putil.list_max [ 3; 7; 1 ]);
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Putil.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take long" [ 1; 2; 3 ] (Putil.take 9 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Putil.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop long" [] (Putil.drop 9 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "concat_map_i" [ 0; 10; 1; 20 ]
    (Putil.concat_map_i (fun i x -> [ i; x ]) [ 10; 20 ])

let test_fixpoint () =
  Alcotest.(check int) "count down" 0
    (Putil.fixpoint (fun x -> if x > 0 then Some (x - 1) else None) 5)

let test_fresh () =
  let f = Putil.Fresh.create "z" in
  Alcotest.(check string) "z0" "z0" (Putil.Fresh.next f);
  Alcotest.(check string) "z1" "z1" (Putil.Fresh.next f)

let test_vec () =
  let v = Vec.of_int_list [ 6; -9; 3 ] in
  Alcotest.(check int) "content" 3 (Bigint.to_int (Vec.content v));
  Alcotest.(check (list int)) "normalize" [ 2; -3; 1 ]
    (Array.to_list (Vec.to_int_array (Vec.normalize v)));
  Alcotest.(check int) "dot" 5
    (Bigint.to_int (Vec.dot (Vec.of_int_list [ 1; 2 ]) (Vec.of_int_list [ 1; 2 ])));
  Alcotest.(check bool) "zero" true (Vec.is_zero (Vec.zero 4));
  Alcotest.(check bool) "normalize zero" true
    (Vec.is_zero (Vec.normalize (Vec.zero 3)));
  Alcotest.(check (list int)) "add/sub/neg" [ 0; 0 ]
    (Array.to_list
       (Vec.to_int_array
          (Vec.sub (Vec.add (Vec.of_int_list [ 1; 2 ]) (Vec.of_int_list [ 3; 4 ]))
             (Vec.of_int_list [ 4; 6 ]))))

let test_pp_affine_row () =
  let names = [| "i"; "j"; "N" |] in
  let pp row = Putil.string_of_format (Ir.pp_affine_row names) (Array.of_list row) in
  Alcotest.(check string) "mixed" "2*i - j + N - 1" (pp [ 2; -1; 1; -1 ]);
  Alcotest.(check string) "const only" "7" (pp [ 0; 0; 0; 7 ]);
  Alcotest.(check string) "zero" "0" (pp [ 0; 0; 0; 0 ]);
  Alcotest.(check string) "leading neg" "-i + 2" (pp [ -1; 0; 0; 2 ])

let suite =
  ( "util",
    [
      Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
      Alcotest.test_case "list helpers" `Quick test_lists;
      Alcotest.test_case "fixpoint" `Quick test_fixpoint;
      Alcotest.test_case "fresh names" `Quick test_fresh;
      Alcotest.test_case "vectors" `Quick test_vec;
      Alcotest.test_case "affine row printing" `Quick test_pp_affine_row;
    ] )
