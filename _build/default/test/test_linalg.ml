(* Rationals and exact matrix algebra. *)

let q = Q.of_ints

let test_q_normalization () =
  Alcotest.(check string) "6/4" "3/2" (Q.to_string (q 6 4));
  Alcotest.(check string) "-6/4" "-3/2" (Q.to_string (q (-6) 4));
  Alcotest.(check string) "6/-4" "-3/2" (Q.to_string (q 6 (-4)));
  Alcotest.(check string) "0/7" "0" (Q.to_string (q 0 7));
  Alcotest.(check bool) "int" true (Q.is_integer (q 8 4))

let test_q_arith () =
  Alcotest.(check bool) "1/2+1/3" true (Q.equal (Q.add (q 1 2) (q 1 3)) (q 5 6));
  Alcotest.(check bool) "1/2*2/3" true (Q.equal (Q.mul (q 1 2) (q 2 3)) (q 1 3));
  Alcotest.(check bool) "div" true (Q.equal (Q.div (q 1 2) (q 3 4)) (q 2 3));
  Alcotest.(check bool) "inv" true (Q.equal (Q.inv (q (-2) 3)) (q (-3) 2));
  Alcotest.(check int) "floor -7/2" (-4) (Bigint.to_int (Q.floor (q (-7) 2)));
  Alcotest.(check int) "ceil -7/2" (-3) (Bigint.to_int (Q.ceil (q (-7) 2)))

let test_q_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Q.compare (q 1 3) (q 1 2) < 0);
  Alcotest.(check bool) "-1/3 > -1/2" true (Q.compare (q (-1) 3) (q (-1) 2) > 0)

let mat rows = Mat.of_int_rows (Array.of_list (List.map Array.of_list rows))

let test_rank () =
  Alcotest.(check int) "identity" 3 (Mat.rank (Mat.identity 3));
  Alcotest.(check int) "dependent rows" 2
    (Mat.rank (mat [ [ 1; 2; 3 ]; [ 2; 4; 6 ]; [ 0; 1; 1 ] ]));
  Alcotest.(check int) "zero" 0 (Mat.rank (mat [ [ 0; 0 ]; [ 0; 0 ] ]))

let test_inverse () =
  let m = mat [ [ 2; 1 ]; [ 1; 1 ] ] in
  (match Mat.inverse m with
  | None -> Alcotest.fail "invertible matrix reported singular"
  | Some inv ->
      Alcotest.(check bool) "m * m^-1 = I" true (Mat.equal (Mat.mul m inv) (Mat.identity 2)));
  match Mat.inverse (mat [ [ 1; 2 ]; [ 2; 4 ] ]) with
  | None -> ()
  | Some _ -> Alcotest.fail "singular matrix inverted"

let test_solve () =
  let a = mat [ [ 2; 1 ]; [ 1; -1 ] ] in
  (match Mat.solve a [| Q.of_int 5; Q.of_int 1 |] with
  | None -> Alcotest.fail "solvable system reported inconsistent"
  | Some x ->
      Alcotest.(check bool) "x = (2,1)" true
        (Q.equal x.(0) (Q.of_int 2) && Q.equal x.(1) (Q.of_int 1)));
  (* inconsistent *)
  match Mat.solve (mat [ [ 1; 1 ]; [ 1; 1 ] ]) [| Q.of_int 1; Q.of_int 2 |] with
  | None -> ()
  | Some _ -> Alcotest.fail "inconsistent system solved"

let test_nullspace () =
  let m = mat [ [ 1; 2; 3 ] ] in
  let basis = Mat.nullspace m in
  Alcotest.(check int) "dim" 2 (List.length basis);
  List.iter
    (fun v ->
      let prod = Mat.mul_vec m v in
      Alcotest.(check bool) "in nullspace" true (Array.for_all Q.is_zero prod))
    basis

let test_determinant () =
  Alcotest.(check bool) "det [[2,1],[1,1]] = 1" true
    (Q.equal (Mat.determinant (mat [ [ 2; 1 ]; [ 1; 1 ] ])) Q.one);
  Alcotest.(check bool) "det singular = 0" true
    (Q.is_zero (Mat.determinant (mat [ [ 1; 2 ]; [ 2; 4 ] ])));
  Alcotest.(check bool) "unimodular skew" true
    (Mat.is_unimodular (mat [ [ 1; 0 ]; [ 2; 1 ] ]))

let test_orthogonal_complement () =
  (* paper eq. (6): rows found so far H = [1 0]; complement spans (0,1) *)
  let h = mat [ [ 1; 0 ] ] in
  (match Mat.orthogonal_complement h with
  | [ v ] ->
      Alcotest.(check int) "v = (0,±1)" 0 (Bigint.to_int v.(0));
      Alcotest.(check int) "v = (0,±1)" 1 (abs (Bigint.to_int v.(1)))
  | l -> Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length l)));
  (* full-rank H: empty complement *)
  Alcotest.(check int) "full rank" 0
    (List.length (Mat.orthogonal_complement (mat [ [ 1; 0 ]; [ 2; 1 ] ])));
  (* H = [1 1]: every complement row is non-zero and orthogonal to (1,1)
     (the projector I - HᵀH/2 has two such rows, ±(1,-1)) *)
  let rows = Mat.orthogonal_complement (mat [ [ 1; 1 ] ]) in
  Alcotest.(check bool) "non-empty" true (rows <> []);
  List.iter
    (fun (v : Vec.t) ->
      Alcotest.(check int) "orthogonal" 0
        (Bigint.to_int (Bigint.add v.(0) v.(1)));
      Alcotest.(check bool) "non-zero" true (not (Vec.is_zero v)))
    rows

let test_row_to_bigint () =
  let row = [| Q.of_ints 1 2; Q.of_ints 1 3; Q.of_int 1 |] in
  let v = Mat.row_to_bigint row in
  Alcotest.(check (list int)) "scaled" [ 3; 2; 6 ]
    (Array.to_list (Array.map Bigint.to_int v))

(* properties *)

let arb_small_mat n =
  QCheck.make
    ~print:(fun m -> Putil.string_of_format Mat.pp m)
    QCheck.Gen.(
      let* entries = array_repeat (n * n) (int_range (-4) 4) in
      return (Mat.init n n (fun i j -> Q.of_int entries.((i * n) + j))))

let prop_inverse =
  QCheck.Test.make ~name:"inverse correct when it exists" ~count:200
    (arb_small_mat 3) (fun m ->
      match Mat.inverse m with
      | None -> Q.is_zero (Mat.determinant m)
      | Some inv -> Mat.equal (Mat.mul m inv) (Mat.identity 3))

let prop_nullspace_dim =
  QCheck.Test.make ~name:"rank-nullity" ~count:200 (arb_small_mat 3) (fun m ->
      Mat.rank m + List.length (Mat.nullspace m) = 3)

let prop_ortho_complement =
  QCheck.Test.make ~name:"orthogonal complement is orthogonal" ~count:200
    (arb_small_mat 2) (fun m ->
      QCheck.assume (Mat.rank m = 2);
      (* take first row only to keep rows independent *)
      let h = Mat.init 1 2 (fun _ j -> m.(0).(j)) in
      QCheck.assume (not (Array.for_all Q.is_zero h.(0)));
      List.for_all
        (fun (v : Vec.t) ->
          let dot = ref Q.zero in
          Array.iteri
            (fun j hv -> dot := Q.add !dot (Q.mul hv (Q.of_bigint v.(j))))
            h.(0);
          Q.is_zero !dot)
        (Mat.orthogonal_complement h))

let suite =
  ( "linalg",
    [
      Alcotest.test_case "Q normalization" `Quick test_q_normalization;
      Alcotest.test_case "Q arithmetic" `Quick test_q_arith;
      Alcotest.test_case "Q compare" `Quick test_q_compare;
      Alcotest.test_case "rank" `Quick test_rank;
      Alcotest.test_case "inverse" `Quick test_inverse;
      Alcotest.test_case "solve" `Quick test_solve;
      Alcotest.test_case "nullspace" `Quick test_nullspace;
      Alcotest.test_case "determinant/unimodular" `Quick test_determinant;
      Alcotest.test_case "orthogonal complement (eq. 6)" `Quick test_orthogonal_complement;
      Alcotest.test_case "row_to_bigint" `Quick test_row_to_bigint;
      QCheck_alcotest.to_alcotest prop_inverse;
      QCheck_alcotest.to_alcotest prop_nullspace_dim;
      QCheck_alcotest.to_alcotest prop_ortho_complement;
    ] )
