(* Structure of the baseline schemes (their equivalence is covered in
   test_endtoend). *)

open Pluto.Types

let test_inner_parallel_marks_one_level () =
  let p = Kernels.program Kernels.jacobi_1d in
  let r = Baselines.inner_parallel p in
  let pars =
    Array.to_list r.Driver.target.tpar |> List.filter (fun x -> x = Par)
  in
  Alcotest.(check int) "one Par level" 1 (List.length pars);
  (* it is the space loop, below the sequential time loop *)
  let rec first_par l =
    if r.Driver.target.tpar.(l) = Par then l else first_par (l + 1)
  in
  Alcotest.(check bool) "below the outermost loop" true (first_par 0 > 1)

let test_original_no_parallel () =
  let p = Kernels.program Kernels.seidel in
  let r = Baselines.original p in
  Alcotest.(check bool) "all Seq" true
    (Array.for_all (fun x -> x = Seq) r.Driver.target.tpar)

let test_affine_partition_rows () =
  let p = Kernels.program Kernels.jacobi_1d in
  let r = Baselines.jacobi_affine_partition p in
  let t = r.Driver.transform in
  Alcotest.(check (list (list int))) "S1 = (2t-i, 3t-i)"
    [ [ 2; -1; 0 ]; [ 3; -1; 0 ]; [ 0; 0; 0 ] ]
    (Fixtures.rows_of t 0);
  Alcotest.(check (list (list int))) "S2 shifted by 1"
    [ [ 2; -1; 1 ]; [ 3; -1; 1 ]; [ 0; 0; 1 ] ]
    (Fixtures.rows_of t 1)

let test_scheduling_rows_are_nonunimodular () =
  let p = Kernels.program Kernels.jacobi_1d in
  let r = Baselines.jacobi_scheduling_fco p in
  let t = r.Driver.transform in
  (* θ = 2t: determinant of the 2x2 linear part is 2, not ±1 *)
  let rows = Fixtures.rows_of t 0 in
  let m =
    Mat.of_int_rows
      [| Array.of_list (List.map (fun r -> List.nth r 0) (Putil.take 2 rows));
         Array.of_list (List.map (fun r -> List.nth r 1) (Putil.take 2 rows)) |]
  in
  Alcotest.(check bool) "non-unimodular" false (Mat.is_unimodular m)

let test_annotate_satisfaction () =
  (* the identity transform satisfies every legality dependence *)
  let k = Kernels.jacobi_1d in
  let p, ds = Fixtures.program_and_deps k in
  let t = Pluto.Auto.identity_transform p ds in
  List.iter
    (fun d ->
      if Deps.is_legality d then
        Alcotest.(check bool)
          (Printf.sprintf "dep %d satisfied" d.Deps.id)
          true
          (Hashtbl.mem t.satisfied_at d.Deps.id))
    ds

let test_annotate_parallel_flags () =
  (* matmul identity: levels are [scalar; i; scalar; j; scalar; k; scalar];
     i and j parallel, k sequential *)
  let k = Kernels.matmul in
  let p, ds = Fixtures.program_and_deps k in
  let t = Pluto.Auto.identity_transform p ds in
  let loops =
    Array.to_list t.kinds
    |> List.filter_map (function
         | Loop { parallel; _ } -> Some parallel
         | Scalar -> None)
  in
  Alcotest.(check (list bool)) "i,j parallel; k not" [ true; true; false ] loops

let test_mvt_baselines_differ () =
  let p = Kernels.program Kernels.mvt in
  let a = Baselines.mvt_fuse_ij_ij p in
  let b = Baselines.mvt_unfused_parallel p in
  (* ij-ij keeps both statements in the same loops at level 0; unfused puts a
     scalar split first *)
  Alcotest.(check bool) "ij-ij level 0 is a loop" true
    (match a.Driver.transform.kinds.(0) with Loop _ -> true | Scalar -> false);
  Alcotest.(check bool) "unfused level 0 is scalar" true
    (b.Driver.transform.kinds.(0) = Scalar)

let test_check_shape_guard () =
  (* feeding the wrong kernel raises instead of producing wrong code *)
  let p = Kernels.program Kernels.matmul in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Baselines.jacobi_affine_partition p);
       false
     with Invalid_argument _ -> true)

(* ---- the automatic Feautrier + FCO scheduler (lib/baselines/feautrier) --- *)

let test_feautrier_jacobi_schedule () =
  (* the paper quotes Griebl's baseline for 1-d Jacobi: schedule 2t for S1,
     2t+1 for S2, FCO allocation 2t+i — the automatic scheduler finds it *)
  let p = Kernels.program Kernels.jacobi_1d in
  let r = Feautrier.compile p in
  let t = r.Driver.transform in
  Alcotest.(check (list (list int))) "S1 = (2t, 2t+i)"
    [ [ 2; 0; 0 ]; [ 2; 1; 0 ] ]
    (Fixtures.rows_of t 0);
  Alcotest.(check (list (list int))) "S2 = (2t+1, 2t+j+1)"
    [ [ 2; 0; 1 ]; [ 2; 1; 1 ] ]
    (Fixtures.rows_of t 1)

let test_feautrier_equivalence () =
  List.iter
    (fun k ->
      let p = Kernels.program k in
      let r = Feautrier.compile p in
      let params = Kernels.params_vector p k.Kernels.check_params in
      Alcotest.(check bool)
        (k.Kernels.name ^ " equivalent")
        true
        (Machine.equivalent p r.Driver.code ~params);
      Alcotest.(check bool)
        (k.Kernels.name ^ " reverse")
        true
        (Machine.equivalent ~par_reverse:true p r.Driver.code ~params))
    [ Kernels.jacobi_1d; Kernels.lu; Kernels.seidel; Kernels.matmul; Kernels.mvt ]

let test_feautrier_strong_satisfaction () =
  (* every legality dependence is strongly satisfied by some schedule level *)
  let p = Kernels.program Kernels.seidel in
  let deps = Deps.compute ~input_deps:false p in
  let tr, fco = Feautrier.scheduling_transform p deps in
  Alcotest.(check bool) "FCO completion" true fco;
  List.iter
    (fun d ->
      if Deps.is_legality d then
        Alcotest.(check bool)
          (Printf.sprintf "dep %d satisfied" d.Deps.id)
          true
          (Hashtbl.mem tr.Pluto.Types.satisfied_at d.Deps.id))
    deps

let feautrier_suite =
  [
    Alcotest.test_case "feautrier jacobi = paper quote" `Quick
      test_feautrier_jacobi_schedule;
    Alcotest.test_case "feautrier equivalence" `Quick test_feautrier_equivalence;
    Alcotest.test_case "feautrier strong satisfaction" `Quick
      test_feautrier_strong_satisfaction;
  ]

let suite =
  ( "baselines",
    [
      Alcotest.test_case "inner-parallel marks one level" `Quick
        test_inner_parallel_marks_one_level;
      Alcotest.test_case "original sequential" `Quick test_original_no_parallel;
      Alcotest.test_case "affine partition rows (paper)" `Quick
        test_affine_partition_rows;
      Alcotest.test_case "scheduling non-unimodular" `Quick
        test_scheduling_rows_are_nonunimodular;
      Alcotest.test_case "identity satisfies deps" `Quick test_annotate_satisfaction;
      Alcotest.test_case "identity parallel flags" `Quick test_annotate_parallel_flags;
      Alcotest.test_case "mvt baseline structure" `Quick test_mvt_baselines_differ;
      Alcotest.test_case "kernel shape guard" `Quick test_check_shape_guard;
    ]
    @ feautrier_suite )

