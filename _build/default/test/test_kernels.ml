(* The kernel collection: all must parse, transform and keep their documented
   shapes; params_vector handles orders and errors. *)

let test_catalog () =
  Alcotest.(check bool) "13+ kernels" true (List.length Kernels.all >= 13);
  (* names unique *)
  let names = List.map (fun k -> k.Kernels.name) Kernels.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_find () =
  Alcotest.(check string) "find lu" "lu" (Kernels.find "lu").Kernels.name;
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Kernels.find "nope");
       false
     with Invalid_argument _ -> true)

let test_params_vector () =
  let p = Kernels.program Kernels.jacobi_1d in
  Alcotest.(check (list int)) "ordered T,N" [ 3; 9 ]
    (Array.to_list (Kernels.params_vector p [ ("N", 9); ("T", 3) ]));
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Kernels.params_vector p [ ("N", 9) ]);
       false
     with Invalid_argument _ -> true)

let test_every_kernel_transforms () =
  (* the three new kernels go through the full pipeline too (the paper
     kernels are covered by test_endtoend) *)
  List.iter
    (fun k ->
      let p, ds = Fixtures.program_and_deps k in
      let t = Fixtures.transform k in
      Alcotest.(check bool)
        (k.Kernels.name ^ " has levels")
        true (t.Pluto.Types.nlevels > 0);
      let r = Driver.compile_with_transform p ds t in
      let params = Fixtures.check_params k in
      Alcotest.(check bool)
        (k.Kernels.name ^ " equivalent")
        true
        (Machine.equivalent p r.Driver.code ~params);
      Alcotest.(check bool)
        (k.Kernels.name ^ " reverse-parallel")
        true
        (Machine.equivalent ~par_reverse:true p r.Driver.code ~params))
    [ Kernels.syrk; Kernels.doitgen; Kernels.gesummv ]

let test_doitgen_structure () =
  (* two statements of depth 4 and 3 under shared r,q loops *)
  let p = Kernels.program Kernels.doitgen in
  let depths = List.map Ir.depth p.Ir.stmts in
  Alcotest.(check (list int)) "depths" [ 4; 3 ] depths;
  let s1 = List.nth p.Ir.stmts 0 and s2 = List.nth p.Ir.stmts 1 in
  Alcotest.(check int) "share r,q" 2 (Ir.common_loops s1 s2)

let test_syrk_triangular_domain () =
  let p = Kernels.program Kernels.syrk in
  let s = List.hd p.Ir.stmts in
  (* j <= i is part of the domain *)
  let sat i j = Polyhedra.sat_point s.Ir.domain (Array.map Bigint.of_int [| i; j; 0; 8; 5 |]) in
  Alcotest.(check bool) "j = i ok" true (sat 3 3);
  Alcotest.(check bool) "j > i out" false (sat 3 4)

let suite =
  ( "kernels",
    [
      Alcotest.test_case "catalog" `Quick test_catalog;
      Alcotest.test_case "find" `Quick test_find;
      Alcotest.test_case "params_vector" `Quick test_params_vector;
      Alcotest.test_case "new kernels end-to-end" `Quick test_every_kernel_transforms;
      Alcotest.test_case "doitgen structure" `Quick test_doitgen_structure;
      Alcotest.test_case "syrk triangular domain" `Quick test_syrk_triangular_domain;
    ] )
