(* Additional coverage: cache model vs a naive reference implementation,
   less-traveled APIs, and guard rails. *)

(* reference LRU cache: association list per set, most recent first *)
module Ref_cache = struct
  type t = {
    line_bytes : int;
    nsets : int;
    assoc : int;
    sets : int list array;
    mutable misses : int;
  }

  let create (cfg : Cache.config) =
    let nsets = max 1 (cfg.size_bytes / (cfg.line_bytes * cfg.assoc)) in
    {
      line_bytes = cfg.line_bytes;
      nsets;
      assoc = cfg.assoc;
      sets = Array.make nsets [];
      misses = 0;
    }

  let access t addr =
    let line = addr / t.line_bytes in
    let set = line mod t.nsets in
    let contents = t.sets.(set) in
    if List.mem line contents then begin
      t.sets.(set) <- line :: List.filter (fun l -> l <> line) contents;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      t.sets.(set) <- Putil.take t.assoc (line :: contents);
      false
    end
end

let prop_cache_matches_reference =
  QCheck.Test.make ~name:"cache = reference LRU" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 400) (int_bound 4095))
    (fun addrs ->
      let cfg = { Cache.size_bytes = 512; line_bytes = 64; assoc = 2 } in
      let c = Cache.create cfg in
      let r = Ref_cache.create cfg in
      List.for_all (fun a -> Cache.access c a = Ref_cache.access r a) addrs
      && Cache.misses c = r.Ref_cache.misses)

let test_cache_reset () =
  let c = Cache.create { Cache.size_bytes = 512; line_bytes = 64; assoc = 2 } in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  Cache.reset c;
  Alcotest.(check int) "hits reset" 0 (Cache.hits c);
  Alcotest.(check bool) "cold again" false (Cache.access c 0)

let test_polyhedra_rename () =
  (* x0 <= 3 with columns swapped becomes x1 <= 3 *)
  let sys = Polyhedra.of_constrs 2 [ Polyhedra.ge_ints [ -1; 0; 3 ] ] in
  let swapped = Polyhedra.rename sys [| 1; 0 |] in
  let pt a b = Array.map Bigint.of_int [| a; b |] in
  Alcotest.(check bool) "x1 constrained" false (Polyhedra.sat_point swapped (pt 0 5));
  Alcotest.(check bool) "x0 free" true (Polyhedra.sat_point swapped (pt 99 1))

let test_milp_node_limit () =
  (* a system forcing branching with a tiny node budget must raise *)
  let n = 6 in
  let cs =
    (* sum 2*x_i = 7: every LP vertex fractional, integer infeasible *)
    Polyhedra.eq_ints (List.init (n + 1) (fun j -> if j = n then -7 else 2))
    :: List.concat_map
         (fun j ->
           [
             Polyhedra.ge_ints (List.init (n + 1) (fun q -> if q = j then 1 else 0));
             Polyhedra.ge_ints
               (List.init (n + 1) (fun q -> if q = j then -1 else if q = n then 5 else 0));
           ])
         (Putil.range n)
  in
  let sys = Polyhedra.of_constrs n cs in
  (match
     Milp.ilp
       ~budget:{ Milp.max_nodes = 1; time_limit_s = None }
       sys (Vec.zero n)
   with
  | exception Diag.Budget_exceeded _ -> ()
  | _ -> Alcotest.fail "expected node limit");
  (* with a sane budget it terminates with infeasible *)
  match Milp.ilp sys (Vec.zero n) with
  | Milp.Ilp_infeasible -> ()
  | _ -> Alcotest.fail "2*sum = 7 should be integer-infeasible"

let test_bigint_edges () =
  Alcotest.(check string) "min_int magnitude" (string_of_int min_int)
    (Bigint.to_string (Bigint.of_int min_int));
  Alcotest.(check bool) "min/max" true
    (Bigint.equal
       (Bigint.min (Bigint.of_int 3) (Bigint.of_int (-7)))
       (Bigint.of_int (-7)));
  Alcotest.(check bool) "to_int_opt overflow" true
    (Bigint.to_int_opt (Bigint.pow (Bigint.of_int 10) 30) = None);
  Alcotest.(check bool) "hash equal values" true
    (Bigint.hash (Bigint.of_int 42) = Bigint.hash (Bigint.of_string "42"))

let test_q_to_float () =
  Alcotest.(check (float 1e-12)) "1/4" 0.25 (Q.to_float (Q.of_ints 1 4));
  Alcotest.(check (float 1e6)) "huge"
    1e30
    (Q.to_float (Q.of_bigint (Bigint.pow (Bigint.of_int 10) 30)))

let test_wavefront_degrees_clamped () =
  (* asking for more degrees than the band has is clamped, not an error *)
  let t = Fixtures.transform Kernels.jacobi_1d in
  let b = List.hd (Pluto.Tiling.bands_of t) in
  let bands_sizes = [ (b, Array.make b.Pluto.Tiling.b_len 8) ] in
  let tgt = Pluto.Tiling.tile t ~bands_sizes in
  let levels = Pluto.Tiling.target_band_levels t ~bands_sizes b in
  let tgtw = Pluto.Tiling.wavefront tgt ~levels ~degrees:99 in
  let pars =
    Array.to_list tgtw.Pluto.Types.tpar
    |> List.filter (fun x -> x = Pluto.Types.Par)
  in
  Alcotest.(check int) "clamped to band width - 1" 1 (List.length pars)

let test_mark_outer_parallel_degrees () =
  let t = Fixtures.transform Kernels.matmul in
  let tgt = Pluto.Tiling.untiled_target t in
  let cleared =
    { tgt with Pluto.Types.tpar = Array.map (fun _ -> Pluto.Types.Seq) tgt.Pluto.Types.tpar }
  in
  let one = Pluto.Tiling.mark_outer_parallel cleared ~max_degrees:1 in
  let two = Pluto.Tiling.mark_outer_parallel cleared ~max_degrees:2 in
  let count tgt =
    Array.to_list tgt.Pluto.Types.tpar
    |> List.filter (fun x -> x = Pluto.Types.Par)
    |> List.length
  in
  Alcotest.(check int) "one" 1 (count one);
  Alcotest.(check int) "two" 2 (count two)

let test_codegen_size_positive () =
  List.iter
    (fun k ->
      let r = Fixtures.compiled k in
      Alcotest.(check bool)
        (k.Kernels.name ^ " nonempty AST")
        true
        (Codegen.size r.Driver.code > 0))
    [ Kernels.jacobi_1d; Kernels.lu ]

let test_simulate_deterministic () =
  let r = Fixtures.compiled Kernels.mvt in
  let go () = Machine.simulate Machine.default_machine r.Driver.code ~params:[| 150 |] in
  let a = go () and b = go () in
  Alcotest.(check bool) "bit-identical results" true (a = b)

let suite =
  ( "more",
    [
      QCheck_alcotest.to_alcotest prop_cache_matches_reference;
      Alcotest.test_case "cache reset" `Quick test_cache_reset;
      Alcotest.test_case "polyhedra rename" `Quick test_polyhedra_rename;
      Alcotest.test_case "milp node limit" `Quick test_milp_node_limit;
      Alcotest.test_case "bigint edges" `Quick test_bigint_edges;
      Alcotest.test_case "Q.to_float" `Quick test_q_to_float;
      Alcotest.test_case "wavefront degree clamp" `Quick test_wavefront_degrees_clamped;
      Alcotest.test_case "mark_outer_parallel degrees" `Quick test_mark_outer_parallel_degrees;
      Alcotest.test_case "codegen size" `Quick test_codegen_size_positive;
      Alcotest.test_case "simulator determinism" `Quick test_simulate_deterministic;
    ] )
