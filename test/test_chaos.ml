(* The chaos differential suite: batch compiles of the example corpus under
   hundreds of seeded fault schedules (lib/fault), asserting the robustness
   invariant end-to-end:

     every run either produces output bit-identical to the fault-free run,
     or fails with a structured Diag diagnostic — never a crash, a hang, a
     silently wrong answer, or a cache over its byte budget.

   Faults cover the whole I/O infrastructure: failed/partial/crashed store
   publishes, ENOSPC, rename and fsync failures, corrupt store bytes on
   read, SIGKILLed pool workers, truncated pipe payloads, EINTR storms on
   the parent's pipe reads.  Because solver-store entries are pure
   functions of their keys and the store detects every injected corruption,
   no infrastructure fault can change generated code — it can only cost
   retries and recomputation.

   PLUTO_CHAOS_N overrides the number of schedules (default 200);
   PLUTO_CHAOS_SECONDS switches to a wall-clock budget instead (the CI
   chaos-smoke job runs with PLUTO_CHAOS_SECONDS=60);
   PLUTO_CHAOS_SEED offsets every schedule's seed;
   PLUTO_CHAOS_DUMP_DIR collects failing schedules as reproducer dumps. *)

let getenv_pos = Fixtures.getenv_pos
let n_schedules = Option.value (getenv_pos "PLUTO_CHAOS_N") ~default:200
let seconds = getenv_pos "PLUTO_CHAOS_SECONDS"
let base_seed = Option.value (getenv_pos "PLUTO_CHAOS_SEED") ~default:20080613
let dump_dir = Sys.getenv_opt "PLUTO_CHAOS_DUMP_DIR"
let counter_of = Fixtures.counter_of
let write_file = Fixtures.write_file
let make_inputs = Fixtures.make_inputs

let rec walk dir f =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun name ->
        let p = Filename.concat dir name in
        if Sys.is_directory p then walk p f else f p)
      (Sys.readdir dir)

let tmp_files dir =
  let acc = ref [] in
  walk dir (fun p -> if Filename.check_suffix p ".tmp" then acc := p :: !acc);
  !acc

let codes = Fixtures.codes

(* ----------------------------- fault schedules ---------------------------- *)

type schedule = {
  s_id : int;
  s_config : Fault.config;
  s_jobs : int;
  s_budget : int option;
}

(* Deterministic schedule family: rotate rates, subsystem restrictions,
   pinpoint fail-at shots, jobs counts and byte budgets so the suite sweeps
   rate-driven storms as well as surgical single-fault runs. *)
let schedule_of i =
  let rates = [| 0.01; 0.03; 0.08; 0.15 |] in
  let onlys =
    [|
      [];
      [ "store.write" ];
      [ "store.read" ];
      [ "pool." ];
      [ "store." ];
    |]
  in
  let fail_at =
    if i mod 7 = 3 then
      [
        ("store.write.rename", [ 1; 4 ]);
        ("store.write.crash", [ 2 ]);
        ("pool.worker.kill", [ 1 ]);
      ]
    else []
  in
  {
    s_id = i;
    s_config =
      {
        Fault.seed = base_seed + i;
        Fault.rate = rates.(i mod Array.length rates);
        Fault.only = onlys.(i mod Array.length onlys);
        Fault.fail_at = fail_at;
      };
    s_jobs = (if i mod 2 = 0 then 2 else 1);
    s_budget = (if i mod 3 = 0 then Some 16384 else None);
  }

let describe s =
  Printf.sprintf "schedule %d: jobs=%d budget=%s %s" s.s_id s.s_jobs
    (match s.s_budget with None -> "none" | Some b -> string_of_int b)
    (Fault.describe s.s_config)

let dump_schedule s (m : Batch.manifest option) msg =
  match dump_dir with
  | None -> ()
  | Some d ->
      (try Sys.mkdir d 0o755 with Sys_error _ -> ());
      write_file
        (Filename.concat d (Printf.sprintf "chaos-%04d.txt" s.s_id))
        (Printf.sprintf "%s\nviolation: %s\n\n%s\n" (describe s) msg
           (match m with
           | Some m -> Batch.manifest_to_json m
           | None -> "(no manifest: Batch.run raised)"))

let fail_schedule s m msg =
  dump_schedule s m msg;
  Alcotest.failf "%s — %s" (describe s) msg

(* Check the chaos invariant for one faulted manifest against the
   fault-free reference codes. *)
let check_invariant s reference (m : Batch.manifest) =
  List.iter2
    (fun ref_code (e : Batch.entry) ->
      match e.Batch.e_status with
      | Batch.Success ->
          if e.Batch.e_code <> ref_code then
            fail_schedule s (Some m)
              (Printf.sprintf "output of %s differs from the fault-free run"
                 e.Batch.e_file)
      | Batch.Failed ->
          if not (Diag.has_errors e.Batch.e_diags) then
            fail_schedule s (Some m)
              (Printf.sprintf "%s failed without a structured error diagnostic"
                 e.Batch.e_file)
      | Batch.Degraded ->
          (* infrastructure faults must never change scheduling decisions *)
          fail_schedule s (Some m)
            (Printf.sprintf "%s degraded under infrastructure faults"
               e.Batch.e_file))
    reference m.Batch.m_entries

(* ------------------------------- the suite -------------------------------- *)

let test_chaos_invariant () =
  Pool.with_temp_dir ~prefix:"chaos" (fun dir ->
      let files = make_inputs dir in
      Fun.protect
        ~finally:(fun () ->
          Fault.install None;
          Store.set_budget None;
          Store.set_dir None)
        (fun () ->
          (* fault-free reference, on its own cache dir *)
          Fault.install None;
          let reference =
            codes
              (Batch.run ~jobs:2
                 ~cache_dir:(Filename.concat dir "ref-cache")
                 files)
          in
          if List.exists (fun c -> c = None) reference then
            Alcotest.fail "reference run did not compile the corpus";
          (* one shared cache dir across all schedules: later runs exercise
             the read/corruption/eviction paths on real warm entries *)
          let cache = Filename.concat dir "cache" in
          let t0 = Unix.gettimeofday () in
          let keep i =
            match seconds with
            | Some s -> Unix.gettimeofday () -. t0 < float_of_int s
            | None -> i <= n_schedules
          in
          let ran = ref 0 in
          let injected0 = counter_of "fault.injected" in
          let i = ref 1 in
          while keep !i do
            let s = schedule_of !i in
            Fault.install (Some s.s_config);
            (match
               Batch.run ~jobs:s.s_jobs ~cache_dir:cache ?cache_size:s.s_budget
                 files
             with
            | m -> (
                Fault.install None;
                check_invariant s reference m;
                (* the store may never finish a run over its budget *)
                match s.s_budget with
                | Some b ->
                    let u = Store.usage_bytes () in
                    if u > b then
                      fail_schedule s (Some m)
                        (Printf.sprintf "store footprint %dB exceeds budget %dB"
                           u b)
                | None -> ())
            | exception e ->
                Fault.install None;
                fail_schedule s None
                  ("Batch.run raised instead of reporting: "
                 ^ Printexc.to_string e));
            incr ran;
            incr i
          done;
          (* the harness must actually have injected faults, or the suite
             proves nothing *)
          let injected = counter_of "fault.injected" - injected0 in
          Alcotest.(check bool)
            (Printf.sprintf "faults injected across %d schedules (%d)" !ran
               injected)
            true
            (injected > !ran);
          (* self-healing: collect every orphan, then a clean warm rerun *)
          Store.set_dir (Some cache);
          Store.gc ~max_tmp_age_s:0.0 ();
          Alcotest.(check (list string))
            "no orphan tmps after gc" [] (tmp_files cache);
          let final = Batch.run ~jobs:2 ~cache_dir:cache files in
          Alcotest.(check bool)
            "fault-free rerun on the survivor cache is bit-identical" true
            (codes final = reference)))

(* Acceptance scenario: a run whose workers get SIGKILLed and whose store
   publishes crash mid-write still leaves a cache from which a warm rerun
   is bit-identical with strictly fewer solves. *)
let test_sigkill_warm_rerun () =
  Pool.with_temp_dir ~prefix:"chaos" (fun dir ->
      let files = make_inputs dir in
      Fun.protect
        ~finally:(fun () ->
          Fault.install None;
          Store.set_budget None;
          Store.set_dir None)
        (fun () ->
          (* fault-free cold run: reference codes and solve count *)
          Stats.reset ();
          let ref_m =
            Batch.run ~jobs:1 ~cache_dir:(Filename.concat dir "ref-cache") files
          in
          let cold_solves = counter_of "milp.solves" in
          Alcotest.(check bool) "reference compiles" true
            (List.for_all
               (fun (e : Batch.entry) -> e.Batch.e_status = Batch.Success)
               ref_m.Batch.m_entries);
          (* chaotic cold run: kill the first worker, crash some publishes *)
          let cache = Filename.concat dir "cache" in
          Fault.install
            (Some
               {
                 Fault.seed = base_seed;
                 Fault.rate = 0.0;
                 Fault.only = [];
                 Fault.fail_at =
                   [
                     ("pool.worker.kill", [ 1 ]);
                     ("store.write.crash", [ 3; 8 ]);
                   ];
               });
          let chaotic = Batch.run ~jobs:2 ~cache_dir:cache files in
          Fault.install None;
          (* the killed worker was retried on a fresh one: same outputs *)
          Alcotest.(check bool)
            "chaotic run still bit-identical" true
            (codes chaotic = codes ref_m);
          Alcotest.(check bool)
            "a crashed worker attempt was retried" true
            (List.exists
               (fun (e : Batch.entry) -> e.Batch.e_retried)
               chaotic.Batch.m_entries);
          (* crashed publishes left orphans; gc heals the cache *)
          Store.set_dir (Some cache);
          Alcotest.(check bool)
            "crashed publishes left orphan tmps" true
            (tmp_files cache <> []);
          Store.gc ~max_tmp_age_s:0.0 ();
          Alcotest.(check (list string))
            "healed: no orphans" [] (tmp_files cache);
          (* warm rerun: bit-identical, strictly fewer solves *)
          Stats.reset ();
          let warm = Batch.run ~jobs:1 ~cache_dir:cache files in
          let warm_solves = counter_of "milp.solves" in
          Alcotest.(check bool)
            "warm rerun bit-identical" true
            (codes warm = codes ref_m);
          Alcotest.(check bool)
            (Printf.sprintf "strictly fewer solves warm (%d) than cold (%d)"
               warm_solves cold_solves)
            true
            (warm_solves < cold_solves)))

let suite =
  ( "chaos",
    [
      Alcotest.test_case "invariant over seeded fault schedules" `Slow
        test_chaos_invariant;
      Fixtures.stats_case "sigkill mid-write, then warm rerun" `Quick
        test_sigkill_warm_rerun;
    ] )
