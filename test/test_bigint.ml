(* Unit and property tests for the arbitrary-precision integers. *)

let bi = Bigint.of_int
let s = Bigint.to_string

let check_str name expected actual = Alcotest.(check string) name expected actual
let check_int name expected actual = Alcotest.(check int) name expected actual

let test_of_to_int () =
  List.iter
    (fun n -> check_int (string_of_int n) n (Bigint.to_int (bi n)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; (1 lsl 30) + 17; -((1 lsl 45) + 3); max_int; 1 - max_int ]

let test_string_roundtrip () =
  List.iter
    (fun str -> check_str str str (s (Bigint.of_string str)))
    [
      "0";
      "1";
      "-1";
      "999999999";
      "1000000000";
      "123456789012345678901234567890";
      "-987654321987654321987654321";
    ]

let test_add_sub () =
  let a = Bigint.of_string "123456789012345678901234567890" in
  let b = Bigint.of_string "-98765432109876543210" in
  check_str "a+b" "123456788913580246791358024680" (s (Bigint.add a b));
  check_str "a-b" "123456789111111111011111111100" (s (Bigint.sub a b));
  check_str "b-a" "-123456789111111111011111111100" (s (Bigint.sub b a));
  check_str "a-a" "0" (s (Bigint.sub a a))

let test_mul () =
  let a = Bigint.of_string "123456789012345678901234567890" in
  let b = Bigint.of_string "-98765432109876543210" in
  check_str "a*b" "-12193263113702179522496570642237463801111263526900"
    (s (Bigint.mul a b));
  check_str "a*0" "0" (s (Bigint.mul a Bigint.zero));
  check_str "a*1" (s a) (s (Bigint.mul a Bigint.one))

let test_divmod_matches_native () =
  for x = -60 to 60 do
    for y = -60 to 60 do
      if y <> 0 then begin
        let q, r = Bigint.divmod (bi x) (bi y) in
        check_int (Printf.sprintf "%d/%d" x y) (x / y) (Bigint.to_int q);
        check_int (Printf.sprintf "%d mod %d" x y) (x mod y) (Bigint.to_int r)
      end
    done
  done

let test_fdiv_cdiv () =
  (* floor/ceil division across sign combinations *)
  let cases =
    [ (7, 2, 3, 4); (-7, 2, -4, -3); (7, -2, -4, -3); (-7, -2, 3, 4); (6, 3, 2, 2) ]
  in
  List.iter
    (fun (a, b, f, c) ->
      check_int (Printf.sprintf "fdiv %d %d" a b) f (Bigint.to_int (Bigint.fdiv (bi a) (bi b)));
      check_int (Printf.sprintf "cdiv %d %d" a b) c (Bigint.to_int (Bigint.cdiv (bi a) (bi b))))
    cases

let test_fmod_nonneg () =
  for a = -20 to 20 do
    for b = 1 to 7 do
      let r = Bigint.to_int (Bigint.fmod (bi a) (bi b)) in
      Alcotest.(check bool)
        (Printf.sprintf "fmod %d %d in range" a b)
        true
        (r >= 0 && r < b);
      check_int "fmod consistency" a ((Bigint.to_int (Bigint.fdiv (bi a) (bi b)) * b) + r)
    done
  done

let test_gcd_lcm () =
  check_int "gcd 462 1071" 21 (Bigint.to_int (Bigint.gcd (bi 462) (bi (-1071))));
  check_int "gcd 0 5" 5 (Bigint.to_int (Bigint.gcd Bigint.zero (bi 5)));
  check_int "gcd 0 0" 0 (Bigint.to_int (Bigint.gcd Bigint.zero Bigint.zero));
  check_int "lcm 4 6" 12 (Bigint.to_int (Bigint.lcm (bi 4) (bi 6)));
  check_int "lcm 0 6" 0 (Bigint.to_int (Bigint.lcm Bigint.zero (bi 6)))

let test_compare () =
  Alcotest.(check bool) "lt" true (Bigint.compare (bi (-5)) (bi 3) < 0);
  Alcotest.(check bool) "big vs small" true
    (Bigint.compare (Bigint.of_string "10000000000000000000000") (bi max_int) > 0);
  Alcotest.(check bool) "neg big" true
    (Bigint.compare (Bigint.of_string "-10000000000000000000000") (bi min_int) < 0)

let test_pow () =
  check_str "2^100" "1267650600228229401496703205376" (s (Bigint.pow (bi 2) 100));
  check_str "x^0" "1" (s (Bigint.pow (bi 12345) 0));
  check_str "(-3)^3" "-27" (s (Bigint.pow (bi (-3)) 3))

(* ------------------------------- properties ------------------------------- *)

let arb_big =
  (* random signed decimal strings up to 40 digits *)
  QCheck.make
    ~print:Bigint.to_string
    QCheck.Gen.(
      let* ndig = int_range 1 40 in
      let* digits =
        list_repeat ndig (map Char.chr (int_range (Char.code '0') (Char.code '9')))
      in
      let* neg = bool in
      let str = String.of_seq (List.to_seq digits) in
      let v = Bigint.of_string str in
      return (if neg then Bigint.neg v else v))

let prop_ring =
  QCheck.Test.make ~name:"add/mul ring laws" ~count:300
    (QCheck.triple arb_big arb_big arb_big)
    (fun (a, b, c) ->
      let open Bigint in
      equal (add a b) (add b a)
      && equal (mul a b) (mul b a)
      && equal (add (add a b) c) (add a (add b c))
      && equal (mul (mul a b) c) (mul a (mul b c))
      && equal (mul a (add b c)) (add (mul a b) (mul a c)))

let prop_divmod =
  QCheck.Test.make ~name:"divmod invariants" ~count:500
    (QCheck.pair arb_big arb_big)
    (fun (a, b) ->
      QCheck.assume (not (Bigint.is_zero b));
      let q, r = Bigint.divmod a b in
      Bigint.equal a (Bigint.add (Bigint.mul q b) r)
      && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0
      && (Bigint.is_zero r || Bigint.sign r = Bigint.sign a))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrip" ~count:300 arb_big (fun a ->
      Bigint.equal a (Bigint.of_string (Bigint.to_string a)))

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:300
    (QCheck.pair arb_big arb_big)
    (fun (a, b) ->
      let g = Bigint.gcd a b in
      if Bigint.is_zero g then Bigint.is_zero a && Bigint.is_zero b
      else
        Bigint.is_zero (Bigint.rem a g)
        && Bigint.is_zero (Bigint.rem b g)
        && Bigint.sign g > 0)

(* Values hugging the base-2^30 digit boundaries — ±(2^30)^k ± small — where
   carry propagation, borrow chains and limb normalization bugs live.  The
   generic [arb_big] almost never lands on them. *)
let arb_boundary =
  QCheck.make ~print:Bigint.to_string
    QCheck.Gen.(
      let* k = int_range 0 4 in
      let* off = int_range (-3) 3 in
      let* neg = bool in
      let v =
        Bigint.add
          (Bigint.pow (Bigint.of_int (1 lsl 30)) k)
          (Bigint.of_int off)
      in
      return (if neg then Bigint.neg v else v))

let prop_boundary_string_roundtrip =
  QCheck.Test.make ~name:"boundary: string roundtrip" ~count:200 arb_boundary
    (fun a -> Bigint.equal a (Bigint.of_string (Bigint.to_string a)))

let prop_boundary_mul_div_cancel =
  QCheck.Test.make ~name:"boundary: (a*b)/b = a" ~count:300
    (QCheck.pair arb_boundary arb_boundary)
    (fun (a, b) ->
      QCheck.assume (not (Bigint.is_zero b));
      let p = Bigint.mul a b in
      Bigint.equal (Bigint.div p b) a && Bigint.is_zero (Bigint.rem p b))

let prop_boundary_add_sub_carry =
  QCheck.Test.make ~name:"boundary: add/sub carry chains" ~count:300
    (QCheck.pair arb_boundary arb_boundary)
    (fun (a, b) ->
      let open Bigint in
      equal (sub (add a b) b) a
      && equal (add (sub a b) b) a
      && equal (neg (sub a b)) (sub b a)
      && compare (abs (add a b)) (add (abs a) (abs b)) <= 0)

(* All four division conventions on all four sign combinations: truncation
   toward zero (divmod), floor (fdiv/fmod), ceiling (cdiv). *)
let prop_boundary_division_signs =
  QCheck.Test.make ~name:"boundary: division sign conventions" ~count:400
    (QCheck.pair arb_boundary arb_boundary)
    (fun (a, b) ->
      QCheck.assume (not (Bigint.is_zero b));
      let open Bigint in
      let q, r = divmod a b in
      let fq = fdiv a b and fr = fmod a b in
      let cq = cdiv a b in
      (* truncated: a = q*b + r, |r| < |b|, r carries a's sign *)
      equal a (add (mul q b) r)
      && compare (abs r) (abs b) < 0
      && (is_zero r || sign r = sign a)
      (* floor: a = fq*b + fr, fr in [0, |b|) when b > 0, (−|b|, 0] when
         b < 0, i.e. fr carries b's sign *)
      && equal a (add (mul fq b) fr)
      && compare (abs fr) (abs b) < 0
      && (is_zero fr || sign fr = sign b)
      (* ceiling vs floor: cdiv = fdiv iff exact, else fdiv + 1 *)
      && equal cq
           (if is_zero fr then fq else add fq one)
      (* truncation lies between floor and ceiling *)
      && compare fq q <= 0 && compare q cq <= 0)

let prop_boundary_gcd =
  QCheck.Test.make ~name:"boundary: gcd invariants" ~count:300
    (QCheck.pair arb_boundary arb_boundary)
    (fun (a, b) ->
      let open Bigint in
      let g = gcd a b in
      equal g (gcd b a)
      && equal g (gcd (abs a) (abs b))
      && equal (gcd a zero) (abs a)
      &&
      if is_zero g then is_zero a && is_zero b
      else
        is_zero (rem a g) && is_zero (rem b g)
        && sign g > 0
        (* any common divisor d divides g: check with d = gcd(a,b) scaled
           components a/g, b/g being coprime *)
        && equal (gcd (div a g) (div b g)) one)

let prop_fdiv_cdiv_bounds =
  QCheck.Test.make ~name:"fdiv/cdiv tight" ~count:300
    (QCheck.pair arb_big arb_big)
    (fun (a, b) ->
      QCheck.assume (Bigint.sign b > 0);
      let f = Bigint.fdiv a b and c = Bigint.cdiv a b in
      (* f*b <= a < (f+1)*b  and  (c-1)*b < a <= c*b *)
      Bigint.compare (Bigint.mul f b) a <= 0
      && Bigint.compare a (Bigint.mul (Bigint.add f Bigint.one) b) < 0
      && Bigint.compare a (Bigint.mul c b) <= 0
      && Bigint.compare (Bigint.mul (Bigint.sub c Bigint.one) b) a < 0)

let suite =
  ( "bigint",
    [
      Alcotest.test_case "of_int/to_int" `Quick test_of_to_int;
      Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
      Alcotest.test_case "add/sub" `Quick test_add_sub;
      Alcotest.test_case "mul" `Quick test_mul;
      Alcotest.test_case "divmod vs native" `Quick test_divmod_matches_native;
      Alcotest.test_case "fdiv/cdiv" `Quick test_fdiv_cdiv;
      Alcotest.test_case "fmod non-negative" `Quick test_fmod_nonneg;
      Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
      Alcotest.test_case "compare" `Quick test_compare;
      Alcotest.test_case "pow" `Quick test_pow;
      QCheck_alcotest.to_alcotest prop_ring;
      QCheck_alcotest.to_alcotest prop_divmod;
      QCheck_alcotest.to_alcotest prop_string_roundtrip;
      QCheck_alcotest.to_alcotest prop_gcd_divides;
      QCheck_alcotest.to_alcotest prop_fdiv_cdiv_bounds;
      QCheck_alcotest.to_alcotest prop_boundary_string_roundtrip;
      QCheck_alcotest.to_alcotest prop_boundary_mul_div_cancel;
      QCheck_alcotest.to_alcotest prop_boundary_add_sub_carry;
      QCheck_alcotest.to_alcotest prop_boundary_division_signs;
      QCheck_alcotest.to_alcotest prop_boundary_gcd;
    ] )
