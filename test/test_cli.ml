(* The plutocc command-line tool, driven end to end as a subprocess. *)

let plutocc = "../bin/plutocc.exe"

let available () = Sys.file_exists plutocc

let with_source f =
  Pool.with_temp_dir ~prefix:"plutocc" (fun dir ->
      let src = Filename.concat dir "k.c" in
      let oc = open_out src in
      output_string oc Kernels.jacobi_1d.Kernels.source;
      close_out oc;
      f dir src)

let run cmd = Sys.command (cmd ^ " > /dev/null 2> /dev/null")

let test_basic_compile () =
  if available () then
    with_source (fun dir src ->
        let out = Filename.concat dir "out.c" in
        Alcotest.(check int) "exit 0" 0
          (run (Printf.sprintf "%s %s -o %s" plutocc src out));
        let ic = open_in out in
        let content = really_input_string ic (in_channel_length ic) in
        close_in ic;
        List.iter
          (fun frag ->
            Alcotest.(check bool) ("contains " ^ frag) true
              (Astring.String.is_infix ~affix:frag content))
          [ "#pragma omp parallel for"; "#define S1"; "floord" ])

let test_check_flag () =
  if available () then
    with_source (fun _dir src ->
        Alcotest.(check int) "check passes" 0
          (run (Printf.sprintf "%s %s --check --params T=6,N=24" plutocc src)))

let test_simulate_flag () =
  if available () then
    with_source (fun _dir src ->
        Alcotest.(check int) "simulate runs" 0
          (run
             (Printf.sprintf "%s %s --simulate --params T=16,N=500 --cores 2"
                plutocc src)))

let test_option_flags () =
  if available () then
    with_source (fun dir src ->
        List.iter
          (fun flags ->
            Alcotest.(check int) ("flags: " ^ flags) 0
              (run
                 (Printf.sprintf "%s %s %s -o %s/o.c --check --params T=5,N=20"
                    plutocc src flags dir)))
          [
            "--no-tile";
            "--tile-size 8";
            "--no-parallel";
            "--wavefront 2";
            "--no-intra-reorder";
            "--no-rar";
            "--show-transform --show-deps";
          ])

let test_tune_flag () =
  if available () then
    with_source (fun dir src ->
        let report = Filename.concat dir "report.json" in
        let cache = Filename.concat dir "cache" in
        let cmd =
          Printf.sprintf
            "PLUTO_FUZZ_SEED=5 PLUTO_TUNE_CACHE=%s %s %s --tune \
             --tune-budget 6 --jobs 2 --tune-report %s --stats -o %s/out.c"
            cache plutocc src report dir
        in
        Alcotest.(check int) "tune exits 0" 0 (run cmd);
        let ic = open_in report in
        let content = really_input_string ic (in_channel_length ic) in
        close_in ic;
        List.iter
          (fun frag ->
            Alcotest.(check bool) ("report contains " ^ frag) true
              (Astring.String.is_infix ~affix:frag content))
          [ "\"best\":"; "\"outcomes\":"; "\"seed\": 5"; "\"evaluated\": 6" ];
        (* warm rerun: everything comes from the cache *)
        Alcotest.(check int) "warm tune exits 0" 0 (run cmd);
        let ic = open_in report in
        let content = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Alcotest.(check bool) "warm rerun evaluates nothing" true
          (Astring.String.is_infix ~affix:"\"evaluated\": 0" content))

let test_parse_error_exit_code () =
  if available () then
    with_source (fun dir _src ->
        let bad = Filename.concat dir "bad.c" in
        let oc = open_out bad in
        output_string oc "double a[N];\nfor (i = 0; i < N; i++) a[i*i] = 1.0;";
        close_out oc;
        Alcotest.(check bool) "nonzero exit" true
          (run (Printf.sprintf "%s %s" plutocc bad) <> 0))

let cli_cases =
  [
    Alcotest.test_case "basic compile" `Quick test_basic_compile;
    Alcotest.test_case "--check" `Quick test_check_flag;
    Alcotest.test_case "--simulate" `Quick test_simulate_flag;
    Alcotest.test_case "option flags" `Quick test_option_flags;
    Alcotest.test_case "--tune end to end" `Quick test_tune_flag;
    Alcotest.test_case "parse error exit" `Quick test_parse_error_exit_code;
  ]

(* ------------------------- native execution backend ----------------------- *)

let native_validate (k : Kernels.t) params () =
  if Runner.available () then begin
    let p = Kernels.program k in
    let orig = Driver.compile_original p in
    let pluto = Driver.compile p in
    match Runner.validate orig.Driver.code pluto.Driver.code ~params with
    | Some ok ->
        Alcotest.(check bool) (k.Kernels.name ^ " native checksums agree") true ok
    | None -> ()
  end

let test_runner_result_fields () =
  if Runner.available () then begin
    let p = Kernels.program Kernels.matmul in
    let r = Driver.compile p in
    match Runner.run r.Driver.code ~params:[ ("N", 40) ] with
    | None -> ()
    | Some res ->
        Alcotest.(check bool) "time parsed" true (res.Runner.wall_seconds >= 0.0);
        Alcotest.(check int) "3 array checksums" 3 (List.length res.Runner.checksums)
  end

let native_suite =
  [
    Alcotest.test_case "native validate jacobi" `Quick
      (native_validate Kernels.jacobi_1d [ ("T", 20); ("N", 300) ]);
    Alcotest.test_case "native validate lu" `Quick
      (native_validate Kernels.lu [ ("N", 80) ]);
    Alcotest.test_case "native validate fdtd" `Quick
      (native_validate Kernels.fdtd_2d [ ("tmax", 8); ("nx", 40); ("ny", 40) ]);
    Alcotest.test_case "runner result fields" `Quick test_runner_result_fields;
  ]

let suite = ("plutocc-cli", cli_cases @ native_suite)
