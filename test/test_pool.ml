(* The shared fork worker pool: crash isolation, retry, timeout, stats
   merging, and determinism of results across jobs counts. *)

let counter_of name = match List.assoc_opt name (Stats.counters ()) with
  | Some v -> v
  | None -> 0

let values outcomes =
  List.map
    (fun (o : _ Pool.outcome) ->
      match o.Pool.value with Ok v -> Ok v | Error d -> Error d.Diag.code)
    outcomes

(* Forked and sequential runs agree, in input order. *)
let test_map_matches_sequential () =
  let tasks = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let f x = x * x in
  let seq = Pool.map ~jobs:1 ~f tasks in
  let par = Pool.map ~jobs:3 ~f tasks in
  Alcotest.(check (list int))
    "sequential values"
    (List.map (fun x -> x * x) tasks)
    (List.map (fun (o : _ Pool.outcome) -> Result.get_ok o.Pool.value) seq);
  Alcotest.(check bool) "forked = sequential" true (values seq = values par)

(* A deterministically raising task is a structured per-task error — the
   other tasks and the parent are unaffected, and it is not retried. *)
let test_worker_exception () =
  let f x = if x = 2 then failwith "boom" else x + 10 in
  List.iter
    (fun jobs ->
      let out = Pool.map ~jobs ~f [ 1; 2; 3 ] in
      match values out with
      | [ Ok 11; Error "worker-exception"; Ok 13 ] ->
          Alcotest.(check bool)
            "exception not retried" false
            (List.exists (fun (o : _ Pool.outcome) -> o.Pool.retried) out)
      | _ -> Alcotest.failf "unexpected outcomes (jobs=%d)" jobs)
    [ 1; 2 ]

(* A worker that dies without writing a payload is retried once on a fresh
   worker; a marker file makes the second attempt succeed. *)
let test_crash_retry () =
  Pool.with_temp_dir ~prefix:"pool_test" (fun dir ->
      let marker = Filename.concat dir "attempted" in
      let f x =
        if x = 0 && not (Sys.file_exists marker) then begin
          close_out (open_out marker);
          Unix._exit 3 (* die before the payload is written *)
        end;
        x + 1
      in
      let retries_before = counter_of "pool.retries" in
      let out = Pool.map ~jobs:2 ~f [ 0; 5 ] in
      Alcotest.(check bool)
        "both tasks succeed" true
        (values out = [ Ok 1; Ok 6 ]);
      Alcotest.(check bool)
        "crashed task marked retried" true
        ((List.hd out).Pool.retried);
      Alcotest.(check bool)
        "retry counted" true
        (counter_of "pool.retries" > retries_before))

(* A worker that always dies exhausts its retries and yields the structured
   crash diagnostic — never a parent exception. *)
let test_crash_exhausted () =
  let f x = if x = 0 then Unix._exit 7 else x in
  let out = Pool.map ~jobs:2 ~f [ 0; 1 ] in
  Alcotest.(check bool)
    "crash surfaces as diagnostic" true
    (values out = [ Error "worker-crashed"; Ok 1 ])

(* The per-task SIGALRM budget turns a hung task into a pool-timeout
   diagnostic, in both forked and sequential modes. *)
let test_timeout () =
  let f x = if x = 0 then (Unix.sleepf 10.0; x) else x in
  List.iter
    (fun jobs ->
      let out = Pool.map ~jobs ~task_timeout_s:1.0 ~f [ 0; 3 ] in
      Alcotest.(check bool)
        (Printf.sprintf "timeout structured (jobs=%d)" jobs)
        true
        (values out = [ Error "pool-timeout"; Ok 3 ]))
    [ 1; 2 ]

(* Worker counters ship back with the payload and merge into the parent, so
   totals are identical however the work was scheduled. *)
let test_stats_merge () =
  let key = "test.pool_counter" in
  let f x =
    Stats.add key x;
    x
  in
  let before = counter_of key in
  ignore (Pool.map ~jobs:2 ~f [ 1; 2; 3; 4 ]);
  let after_forked = counter_of key in
  Alcotest.(check int) "forked counters merged" (before + 10) after_forked;
  ignore (Pool.map ~jobs:1 ~f [ 1; 2; 3; 4 ]);
  Alcotest.(check int)
    "sequential accounting matches" (after_forked + 10) (counter_of key)

(* mkdtemp discipline: directories are created atomically, are distinct, and
   are removed by with_temp_dir. *)
let test_temp_dirs () =
  let d1 = Pool.fresh_temp_dir ~prefix:"pool_test" () in
  let d2 = Pool.fresh_temp_dir ~prefix:"pool_test" () in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s %s" (Filename.quote d1) (Filename.quote d2))))
    (fun () ->
      Alcotest.(check bool) "distinct" true (d1 <> d2);
      Alcotest.(check bool) "both exist" true
        (Sys.is_directory d1 && Sys.is_directory d2));
  let remembered = ref "" in
  Pool.with_temp_dir ~prefix:"pool_test" (fun dir ->
      remembered := dir;
      Alcotest.(check bool) "exists inside" true (Sys.is_directory dir));
  Alcotest.(check bool) "removed after" false (Sys.file_exists !remembered)

(* Fault-injected worker SIGKILL and truncated result payloads are both
   "worker died without a payload": retried on a fresh worker (whose fault
   draw advances past the schedule) and bit-identical to the clean run. *)
let test_injected_kill_and_truncation () =
  List.iter
    (fun site ->
      Fun.protect
        ~finally:(fun () -> Fault.install None)
        (fun () ->
          Fault.install
            (Some { Fault.none with Fault.fail_at = [ (site, [ 1 ]) ] });
          let out = Pool.map ~jobs:2 ~f:(fun x -> x * 2) [ 3; 4 ] in
          Alcotest.(check bool)
            (site ^ ": results intact") true
            (values out = [ Ok 6; Ok 8 ]);
          Alcotest.(check bool)
            (site ^ ": first task retried") true
            ((List.hd out).Pool.retried)))
    [ "pool.worker.kill"; "pool.payload.truncate" ]

(* An EINTR storm on the parent's pipe reads never turns into a lost result:
   every interrupted read is retried and counted. *)
let test_eintr_storm () =
  Fun.protect
    ~finally:(fun () -> Fault.install None)
    (fun () ->
      Fault.install
        (Some
           {
             Fault.none with
             Fault.seed = 7;
             Fault.rate = 0.9;
             Fault.only = [ "pool.read" ];
           });
      let before = counter_of "pool.eintr_retries" in
      let out = Pool.map ~jobs:2 ~f:(fun x -> x + 100) [ 1; 2; 3; 4 ] in
      Alcotest.(check bool)
        "all results survive the storm" true
        (values out = [ Ok 101; Ok 102; Ok 103; Ok 104 ]);
      Alcotest.(check bool)
        "interrupted reads counted" true
        (counter_of "pool.eintr_retries" > before))

(* A worker that always dies stops being retried once the backoff deadline
   is exhausted, yielding the dedicated structured diagnostic. *)
let test_retry_deadline () =
  let f x = if x = 0 then Unix._exit 7 else x in
  let t0 = Unix.gettimeofday () in
  let out =
    Pool.map ~jobs:2 ~retries:50 ~retry_backoff_s:0.2 ~retry_deadline_s:0.3 ~f
      [ 0; 1 ]
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    "deadline surfaces as pool-deadline" true
    (values out = [ Error "pool-deadline"; Ok 1 ]);
  Alcotest.(check bool)
    (Printf.sprintf "gave up near the deadline (%.2fs)" elapsed)
    true (elapsed < 5.0);
  Alcotest.(check bool)
    "backoff waits counted" true
    (counter_of "pool.backoff_waits" > 0)

let suite =
  ( "pool",
    [
      Alcotest.test_case "forked = sequential" `Quick test_map_matches_sequential;
      Alcotest.test_case "task exception is structured" `Quick
        test_worker_exception;
      Alcotest.test_case "crashed worker retried" `Quick test_crash_retry;
      Alcotest.test_case "crash after retries is structured" `Quick
        test_crash_exhausted;
      Alcotest.test_case "task timeout is structured" `Quick test_timeout;
      Alcotest.test_case "worker stats merge into parent" `Quick
        test_stats_merge;
      Alcotest.test_case "temp dirs are atomic and cleaned" `Quick
        test_temp_dirs;
      Alcotest.test_case "injected kill and truncation retried" `Quick
        test_injected_kill_and_truncation;
      Alcotest.test_case "eintr storm loses nothing" `Quick test_eintr_storm;
      Alcotest.test_case "retry deadline is structured" `Quick
        test_retry_deadline;
    ] )
