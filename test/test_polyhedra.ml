(* Constraint systems and Fourier-Motzkin projection. *)

let box2 lo hi =
  (* lo <= x,y <= hi *)
  Polyhedra.of_constrs 2
    [
      Polyhedra.ge_ints [ 1; 0; -lo ];
      Polyhedra.ge_ints [ -1; 0; hi ];
      Polyhedra.ge_ints [ 0; 1; -lo ];
      Polyhedra.ge_ints [ 0; -1; hi ];
    ]

let pt l = Array.of_list (List.map Bigint.of_int l)

let test_sat_point () =
  let sys = box2 0 5 in
  Alcotest.(check bool) "inside" true (Polyhedra.sat_point sys (pt [ 2; 3 ]));
  Alcotest.(check bool) "boundary" true (Polyhedra.sat_point sys (pt [ 0; 5 ]));
  Alcotest.(check bool) "outside" false (Polyhedra.sat_point sys (pt [ 6; 0 ]));
  let with_eq = Polyhedra.add sys (Polyhedra.eq_ints [ 1; -1; 0 ]) in
  Alcotest.(check bool) "on diagonal" true (Polyhedra.sat_point with_eq (pt [ 3; 3 ]));
  Alcotest.(check bool) "off diagonal" false (Polyhedra.sat_point with_eq (pt [ 3; 2 ]))

let test_simplify_dedup () =
  let sys =
    Polyhedra.of_constrs 1
      [
        Polyhedra.ge_ints [ 1; 0 ];
        Polyhedra.ge_ints [ 1; 0 ];
        Polyhedra.ge_ints [ 1; 5 ] (* weaker: x >= -5 *);
        Polyhedra.ge_ints [ 2; 1 ] (* x >= -1/2, weaker than x >= 0 *);
      ]
  in
  match Polyhedra.simplify ~integer:true sys with
  | None -> Alcotest.fail "non-empty system simplified to empty"
  | Some s ->
      Alcotest.(check int) "one constraint left" 1 (List.length s.Polyhedra.cs)

let test_simplify_contradiction () =
  let sys =
    Polyhedra.of_constrs 1
      [ Polyhedra.ge_ints [ 1; -5 ]; Polyhedra.ge_ints [ -1; 3 ] ]
  in
  (* x >= 5 and x <= 3: constraints are not syntactically trivial, so
     simplify alone cannot decide, but elimination can *)
  Alcotest.(check bool) "empty by elimination" true (Polyhedra.is_empty_rational sys);
  let trivially_false = Polyhedra.of_constrs 1 [ Polyhedra.ge_ints [ 0; -1 ] ] in
  Alcotest.(check bool) "trivially false" true
    (Polyhedra.simplify trivially_false = None)

let test_integer_tightening () =
  (* 2x >= 1 tightens to x >= 1 *)
  let sys = Polyhedra.of_constrs 1 [ Polyhedra.ge_ints [ 2; -1 ] ] in
  match Polyhedra.simplify ~integer:true sys with
  | Some { Polyhedra.cs = [ c ]; _ } ->
      Alcotest.(check int) "coef" 1 (Bigint.to_int c.Polyhedra.coefs.(0));
      Alcotest.(check int) "const" (-1) (Bigint.to_int c.Polyhedra.coefs.(1))
  | _ -> Alcotest.fail "unexpected simplification"

let test_eliminate_triangle () =
  (* 0 <= x <= y <= 10; eliminating y gives 0 <= x <= 10 *)
  let sys =
    Polyhedra.of_constrs 2
      [
        Polyhedra.ge_ints [ 1; 0; 0 ];
        Polyhedra.ge_ints [ -1; 1; 0 ];
        Polyhedra.ge_ints [ 0; -1; 10 ];
      ]
  in
  match Polyhedra.eliminate sys 1 with
  | None -> Alcotest.fail "projection empty"
  | Some proj ->
      List.iter
        (fun x ->
          Alcotest.(check bool)
            (Printf.sprintf "x=%d" x)
            (x >= 0 && x <= 10)
            (Polyhedra.sat_point proj (pt [ x; 0 ])))
        [ -1; 0; 5; 10; 11 ]

let test_eliminate_equality () =
  (* x = 2y and 1 <= y <= 3; eliminating y: x in {2..6} rationally x in [2,6] *)
  let sys =
    Polyhedra.of_constrs 2
      [
        Polyhedra.eq_ints [ 1; -2; 0 ];
        Polyhedra.ge_ints [ 0; 1; -1 ];
        Polyhedra.ge_ints [ 0; -1; 3 ];
      ]
  in
  match Polyhedra.eliminate sys 1 with
  | None -> Alcotest.fail "projection empty"
  | Some proj ->
      Alcotest.(check bool) "x=2 in" true (Polyhedra.sat_point proj (pt [ 2; 0 ]));
      Alcotest.(check bool) "x=6 in" true (Polyhedra.sat_point proj (pt [ 6; 0 ]));
      Alcotest.(check bool) "x=1 out" false (Polyhedra.sat_point proj (pt [ 1; 0 ]));
      Alcotest.(check bool) "x=7 out" false (Polyhedra.sat_point proj (pt [ 7; 0 ]))

let test_insert_drop_vars () =
  let sys = box2 0 5 in
  let wide = Polyhedra.insert_vars sys ~at:1 ~count:2 in
  Alcotest.(check int) "nvars" 4 wide.Polyhedra.nvars;
  Alcotest.(check bool) "sat with padding" true
    (Polyhedra.sat_point wide (pt [ 2; 99; -7; 3 ]));
  let back = Polyhedra.drop_vars wide ~at:1 ~count:2 in
  Alcotest.(check bool) "roundtrip" true (Polyhedra.sat_point back (pt [ 2; 3 ]));
  Alcotest.check_raises "drop constrained var"
    (Invalid_argument "Polyhedra.drop_vars: variable still constrained")
    (fun () -> ignore (Polyhedra.drop_vars sys ~at:0 ~count:1))

let test_bounds_on () =
  let sys = box2 0 5 in
  let lower, upper, rest = Polyhedra.bounds_on sys 0 in
  Alcotest.(check int) "lower" 1 (List.length lower);
  Alcotest.(check int) "upper" 1 (List.length upper);
  Alcotest.(check int) "rest" 2 (List.length rest);
  (* equality contributes to both sides *)
  let sys_eq = Polyhedra.of_constrs 1 [ Polyhedra.eq_ints [ 1; -4 ] ] in
  let lower, upper, _ = Polyhedra.bounds_on sys_eq 0 in
  Alcotest.(check int) "eq lower" 1 (List.length lower);
  Alcotest.(check int) "eq upper" 1 (List.length upper)

(* --------- property: FM projection = shadow of the integer point set ------ *)

let arb_sys =
  (* random systems over 3 vars with small coefficients, boxed to [-6,6] *)
  QCheck.make
    ~print:(fun sys -> Putil.string_of_format (Polyhedra.pp ?names:None) sys)
    QCheck.Gen.(
      let* ncons = int_range 1 5 in
      let* rows =
        list_repeat ncons
          (let* coefs = list_repeat 4 (int_range (-3) 3) in
           let* iseq = int_range 0 7 in
           return (coefs, iseq = 0))
      in
      let box =
        List.concat_map
          (fun j ->
            let lo = List.init 4 (fun q -> if q = j then 1 else if q = 3 then 6 else 0) in
            let hi = List.init 4 (fun q -> if q = j then -1 else if q = 3 then 6 else 0) in
            [ Polyhedra.ge_ints lo; Polyhedra.ge_ints hi ])
          [ 0; 1; 2 ]
      in
      let cs =
        List.map
          (fun (coefs, iseq) ->
            if iseq then Polyhedra.eq_ints coefs else Polyhedra.ge_ints coefs)
          rows
      in
      return (Polyhedra.of_constrs 3 (box @ cs)))

let prop_projection_sound =
  (* every integer point of the original has its shadow in the projection *)
  QCheck.Test.make ~name:"FM projection soundness" ~count:100 arb_sys (fun sys ->
      match Polyhedra.eliminate sys 2 with
      | None ->
          (* projection empty: no integer points may exist *)
          let ok = ref true in
          for x = -6 to 6 do
            for y = -6 to 6 do
              for z = -6 to 6 do
                if Polyhedra.sat_point sys (pt [ x; y; z ]) then ok := false
              done
            done
          done;
          !ok
      | Some proj ->
          let ok = ref true in
          for x = -6 to 6 do
            for y = -6 to 6 do
              for z = -6 to 6 do
                if
                  Polyhedra.sat_point sys (pt [ x; y; z ])
                  && not (Polyhedra.sat_point proj (pt [ x; y; 0 ]))
                then ok := false
              done
            done
          done;
          !ok)

let prop_projection_rationally_tight =
  (* every integer point of the projection has a RATIONAL preimage: check via
     emptiness of the slice rather than integer search *)
  QCheck.Test.make ~name:"FM projection completeness (rational)" ~count:100
    arb_sys (fun sys ->
      match Polyhedra.eliminate sys 2 with
      | None -> true
      | Some proj ->
          let ok = ref true in
          for x = -6 to 6 do
            for y = -6 to 6 do
              if Polyhedra.sat_point proj (pt [ x; y; 0 ]) then begin
                (* slice original at x,y: must be rationally non-empty *)
                let slice =
                  Polyhedra.of_constrs 3
                    [
                      Polyhedra.eq_ints [ 1; 0; 0; -x ];
                      Polyhedra.eq_ints [ 0; 1; 0; -y ];
                    ]
                in
                if Polyhedra.is_empty_rational (Polyhedra.meet sys slice) then
                  ok := false
              end
            done
          done;
          !ok)

let prop_simplify_preserves =
  QCheck.Test.make ~name:"simplify preserves integer points" ~count:100 arb_sys
    (fun sys ->
      let simplified = Polyhedra.simplify ~integer:true sys in
      let ok = ref true in
      for x = -6 to 6 do
        for y = -6 to 6 do
          for z = -6 to 6 do
            let inside = Polyhedra.sat_point sys (pt [ x; y; z ]) in
            let inside' =
              match simplified with
              | None -> false
              | Some s -> Polyhedra.sat_point s (pt [ x; y; z ])
            in
            if inside <> inside' then ok := false
          done
        done
      done;
      !ok)

let test_integer_eq_parity () =
  (* 2x - 2y = 1 has rational solutions but no integer ones: with
     [~integer:true] normalization must prove the system empty (the old code
     kept the row, and the contradiction survived all the way to the ILP) *)
  let sys =
    Polyhedra.of_constrs 2 [ Polyhedra.eq_ints [ 2; -2; -1 ] ]
  in
  (match Polyhedra.simplify ~integer:true sys with
  | None -> ()
  | Some _ -> Alcotest.fail "integer-infeasible equality not detected");
  (* over the rationals the row is satisfiable and must be kept *)
  (match Polyhedra.simplify sys with
  | Some s ->
      Alcotest.(check int) "rational keeps the row" 1
        (List.length s.Polyhedra.cs)
  | None -> Alcotest.fail "rationally satisfiable system reported empty");
  match Polyhedra.canon ~integer:true sys with
  | None -> ()
  | Some _ -> Alcotest.fail "canon missed the parity contradiction"

let test_canon_digest_stable () =
  (* permuted, duplicated and rescaled presentations of the same constraint
     set canonicalize to the same digest *)
  let c1 = Polyhedra.ge_ints [ 1; 0; 0 ] in
  let c2 = Polyhedra.ge_ints [ 0; 1; 3 ] in
  let e = Polyhedra.eq_ints [ 1; -1; 0 ] in
  let e_flipped = Polyhedra.eq_ints [ -1; 1; 0 ] in
  let c2_scaled = Polyhedra.ge_ints [ 0; 4; 12 ] in
  let a = Polyhedra.of_constrs 2 [ c1; c2; e ] in
  let b = Polyhedra.of_constrs 2 [ e_flipped; c2_scaled; c1; c2; c1 ] in
  let dg t =
    match Polyhedra.canon t with
    | None -> Alcotest.fail "unexpected empty"
    | Some c -> Polyhedra.digest c
  in
  Alcotest.(check string) "same canonical digest" (dg a) (dg b);
  let different = Polyhedra.of_constrs 2 [ c1; c2 ] in
  Alcotest.(check bool) "different set, different digest" false
    (String.equal (dg a) (dg different))

let test_empty_cache_agrees () =
  Polyhedra.clear_caches ();
  Stats.reset ();
  let sys =
    Polyhedra.of_constrs 2
      [
        Polyhedra.ge_ints [ 1; 0; 0 ];
        Polyhedra.ge_ints [ 0; 1; 0 ];
        Polyhedra.ge_ints [ -1; -1; -1 ] (* x + y <= -1: empty with x,y>=0 *);
      ]
  in
  Alcotest.(check bool) "empty (cold)" true (Polyhedra.is_empty_rational sys);
  Alcotest.(check bool) "empty (cached, miss)" true
    (Polyhedra.is_empty_cached sys);
  Alcotest.(check bool) "empty (cached, hit)" true
    (Polyhedra.is_empty_cached sys);
  Alcotest.(check bool) "cache hit recorded" true
    (Stats.counter "poly.empty_cache_hits" >= 1);
  let nonempty = box2 0 5 in
  Alcotest.(check bool) "nonempty (cached)" false
    (Polyhedra.is_empty_cached nonempty);
  Alcotest.(check bool) "nonempty agrees with cold" false
    (Polyhedra.is_empty_rational nonempty)

let suite =
  ( "polyhedra",
    [
      Alcotest.test_case "sat_point" `Quick test_sat_point;
      Alcotest.test_case "simplify dedup/domination" `Quick test_simplify_dedup;
      Alcotest.test_case "contradictions" `Quick test_simplify_contradiction;
      Alcotest.test_case "integer tightening" `Quick test_integer_tightening;
      Alcotest.test_case "eliminate (triangle)" `Quick test_eliminate_triangle;
      Alcotest.test_case "eliminate (equality pivot)" `Quick test_eliminate_equality;
      Alcotest.test_case "insert/drop vars" `Quick test_insert_drop_vars;
      Alcotest.test_case "bounds_on" `Quick test_bounds_on;
      Alcotest.test_case "integer equality parity" `Quick test_integer_eq_parity;
      Alcotest.test_case "canonical digest stability" `Quick test_canon_digest_stable;
      Alcotest.test_case "emptiness cache" `Quick test_empty_cache_agrees;
      QCheck_alcotest.to_alcotest prop_projection_sound;
      QCheck_alcotest.to_alcotest prop_projection_rationally_tight;
      QCheck_alcotest.to_alcotest prop_simplify_preserves;
    ] )
