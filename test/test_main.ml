let () =
  Alcotest.run "pluto-reproduction"
    [
      Test_bigint.suite;
      Test_linalg.suite;
      Test_polyhedra.suite;
      Test_milp.suite;
      Test_solver_substrate.suite;
      Test_frontend.suite;
      Test_deps.suite;
      Test_pluto.suite;
      Test_codegen.suite;
      Test_machine.suite;
      Test_driver.suite;
      Test_baselines.suite;
      Test_util.suite;
      Test_kernels.suite;
      Test_cli.suite;
      Test_edge.suite;
      Test_more.suite;
      Test_fuzz.suite;
      Test_robustness.suite;
      Test_endtoend.suite;
      Test_verify.suite;
      Test_differential.suite;
      Test_tune.suite;
    ]
