(* The sharded self-healing solver store: layout, crash-safe publish with
   tmp cleanup on every failure path, orphan GC, checksummed entries, LRU
   eviction under a byte budget, and N concurrent writer processes
   hammering one cache directory. *)

let counter_of name =
  match List.assoc_opt name (Stats.counters ()) with Some v -> v | None -> 0

(* Run [f] against a fresh store directory, always unconfiguring the
   process-global store and fault state afterwards. *)
let with_store f =
  Pool.with_temp_dir ~prefix:"store_test" (fun tmp ->
      let dir = Filename.concat tmp "cache" in
      Fun.protect
        ~finally:(fun () ->
          Fault.install None;
          Store.set_budget None;
          Store.set_dir None)
        (fun () ->
          Store.set_dir (Some dir);
          f dir))

let rec walk dir f =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun name ->
        let p = Filename.concat dir name in
        if Sys.is_directory p then walk p f else f p)
      (Sys.readdir dir)

let files_with_suffix dir suffix =
  let acc = ref [] in
  walk dir (fun p -> if Filename.check_suffix p suffix then acc := p :: !acc);
  !acc

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

(* Entries land in two-hex-digit shard subdirectories and round-trip. *)
let test_sharded_layout () =
  with_store (fun dir ->
      for i = 1 to 32 do
        Store.write ~kind:"t" ~key:(string_of_int i) (i * i)
      done;
      for i = 1 to 32 do
        Alcotest.(check (option int))
          "round-trip" (Some (i * i))
          (Store.read ~kind:"t" ~key:(string_of_int i))
      done;
      let entries = files_with_suffix dir ".store" in
      Alcotest.(check int) "one file per entry" 32 (List.length entries);
      List.iter
        (fun p ->
          let shard = Filename.basename (Filename.dirname p) in
          Alcotest.(check bool)
            ("shard dir is 2 hex digits: " ^ shard)
            true
            (String.length shard = 2 && String.for_all is_hex shard))
        entries)

(* A failed publish (injected rename failure) leaves no tmp file behind and
   counts store.write_failures — the satellite fix for the .tmp leak. *)
let test_write_failure_cleans_tmp () =
  with_store (fun dir ->
      Stats.reset ();
      Fault.install
        (Some { Fault.none with Fault.fail_at = [ ("store.write.rename", [ 1 ]) ] });
      Store.write ~kind:"t" ~key:"a" 1;
      Fault.install None;
      Alcotest.(check int) "write failure counted" 1
        (counter_of "store.write_failures");
      Alcotest.(check (list string))
        "no tmp left behind" [] (files_with_suffix dir ".tmp");
      Alcotest.(check (option int)) "entry not published" None
        (Store.read ~kind:"t" ~key:"a");
      (* same story for ENOSPC at open, partial write, and fsync failure *)
      List.iter
        (fun site ->
          Fault.install (Some { Fault.none with Fault.fail_at = [ (site, [ 1 ]) ] });
          Store.write ~kind:"t" ~key:site 2;
          Fault.install None;
          Alcotest.(check (list string))
            ("no tmp after " ^ site)
            [] (files_with_suffix dir ".tmp"))
        [ "store.write.open"; "store.write.partial"; "store.write.fsync" ])

(* A writer SIGKILLed mid-publish (simulated) leaves an orphan tmp that the
   GC collects; the entry itself was never visible. *)
let test_crash_orphan_gc () =
  with_store (fun dir ->
      Stats.reset ();
      Fault.install
        (Some { Fault.none with Fault.fail_at = [ ("store.write.crash", [ 1 ]) ] });
      Store.write ~kind:"t" ~key:"a" 1;
      Fault.install None;
      Alcotest.(check int) "one orphan tmp" 1
        (List.length (files_with_suffix dir ".tmp"));
      (* a young orphan survives the default-age GC (it might be live) *)
      Store.gc ();
      Alcotest.(check int) "young tmp kept" 1
        (List.length (files_with_suffix dir ".tmp"));
      Store.gc ~max_tmp_age_s:0.0 ();
      Alcotest.(check (list string))
        "orphan collected" [] (files_with_suffix dir ".tmp");
      Alcotest.(check bool) "gc counted" true (counter_of "store.gc_orphans" > 0);
      Alcotest.(check (option int)) "entry never visible" None
        (Store.read ~kind:"t" ~key:"a"))

(* Startup GC removes legacy pre-shard flat entries and orphaned touch
   files. *)
let test_startup_gc_legacy () =
  with_store (fun dir ->
      Store.write ~kind:"t" ~key:"keep" 7;
      let flat = Filename.concat dir "legacy-0123456789abcdef.store" in
      let oc = open_out_bin flat in
      output_string oc "old flat entry";
      close_out oc;
      let orphan_touch = Filename.concat dir "aa" in
      (try Sys.mkdir orphan_touch 0o755 with Sys_error _ -> ());
      let t = Filename.concat orphan_touch "gone-ffff.store.touch" in
      close_out (open_out_bin t);
      (* re-point the store at the same directory: set_dir runs the GC *)
      Store.set_dir (Some dir);
      Alcotest.(check bool) "flat entry removed" false (Sys.file_exists flat);
      Alcotest.(check bool) "orphan touch removed" false (Sys.file_exists t);
      Alcotest.(check (option int))
        "real entry survives" (Some 7)
        (Store.read ~kind:"t" ~key:"keep"))

(* A flipped byte anywhere in an entry — including inside the marshaled
   value, where Marshal itself might not notice — fails the checksum and
   reads as an eviction + miss. *)
let test_checksum_catches_corruption () =
  with_store (fun dir ->
      Store.write ~kind:"t" ~key:"a" 123456789;
      match files_with_suffix dir ".store" with
      | [ file ] ->
          let ic = open_in_bin file in
          let raw = really_input_string ic (in_channel_length ic) in
          close_in ic;
          (* flip one byte near the end: inside the marshaled value *)
          let b = Bytes.of_string raw in
          let i = Bytes.length b - 3 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
          let oc = open_out_bin file in
          output_bytes oc b;
          close_out oc;
          Stats.reset ();
          Alcotest.(check (option int))
            "corrupt entry is a miss" None
            (Store.read ~kind:"t" ~key:"a");
          Alcotest.(check int) "evicted" 1 (counter_of "store.evictions");
          Alcotest.(check bool) "file dropped" false (Sys.file_exists file)
      | l -> Alcotest.failf "expected one entry file, got %d" (List.length l))

(* LRU eviction under a byte budget: recently-touched entries survive,
   cold ones go, and the footprint ends under budget. *)
let test_lru_eviction () =
  with_store (fun _dir ->
      let blob tag = String.concat "-" (List.init 200 (fun i -> tag ^ string_of_int i)) in
      Store.write ~kind:"t" ~key:"old" (blob "old");
      Unix.sleepf 0.02;
      Store.write ~kind:"t" ~key:"new" (blob "new");
      Unix.sleepf 0.02;
      (* touch "old": a hit refreshes its recency past "new"'s *)
      Alcotest.(check bool)
        "old readable" true
        (Store.read ~kind:"t" ~key:"old" = Some (blob "old"));
      let one_entry = Store.usage_bytes () / 2 in
      Stats.reset ();
      Store.set_budget (Some (one_entry + one_entry / 2));
      Store.evict_to_budget ();
      Alcotest.(check bool) "under budget" true
        (Store.usage_bytes () <= one_entry + one_entry / 2);
      Alcotest.(check bool) "eviction counted" true
        (counter_of "store.lru_evictions" > 0);
      Alcotest.(check bool)
        "recently-used survives" true
        (Store.read ~kind:"t" ~key:"old" = Some (blob "old"));
      Alcotest.(check (option string))
        "cold entry evicted" None
        (Store.read ~kind:"t" ~key:"new"))

(* Satellite: N forked writer processes hammering one cache directory with
   overlapping keys.  No corrupt reads (every read returns the write for
   that key or a miss), no orphans after GC, and the merged hit/miss
   counters sum to exactly the reads issued. *)
let test_concurrent_writers () =
  with_store (fun dir ->
      Stats.reset ();
      let nworkers = 4 and rounds = 120 and keyspace = 40 in
      let value_of key = key ^ "|" ^ key in
      let worker w =
        (* workers share the parent's store configuration via fork *)
        for i = 0 to rounds - 1 do
          let key = Printf.sprintf "k%d" ((i + (w * 7)) mod keyspace) in
          Store.write ~kind:"cw" ~key (value_of key);
          Stats.incr "test.store_reads";
          match Store.read ~kind:"cw" ~key with
          | None -> () (* a racing eviction is a miss, never a wrong value *)
          | Some v ->
              if not (String.equal v (value_of key)) then
                failwith ("corrupt read for " ^ key)
        done;
        w
      in
      let out = Pool.map ~jobs:nworkers ~f:worker (List.init nworkers Fun.id) in
      List.iter
        (fun (o : _ Pool.outcome) ->
          match o.Pool.value with
          | Ok _ -> ()
          | Error d -> Alcotest.failf "worker failed: %s" d.Diag.message)
        out;
      (* merged counters sum consistently: every read is a hit or a miss *)
      let reads = counter_of "test.store_reads" in
      Alcotest.(check int) "reads issued" (nworkers * rounds) reads;
      Alcotest.(check int)
        "hits + misses = reads" reads
        (counter_of "store.hits" + counter_of "store.misses");
      Alcotest.(check bool) "writes happened" true (counter_of "store.writes" > 0);
      (* every key is readable with the correct value from the parent *)
      for i = 0 to keyspace - 1 do
        let key = Printf.sprintf "k%d" i in
        match Store.read ~kind:"cw" ~key with
        | Some v -> Alcotest.(check string) ("value of " ^ key) (value_of key) v
        | None -> Alcotest.failf "key %s missing after all writers finished" key
      done;
      Store.gc ~max_tmp_age_s:0.0 ();
      Alcotest.(check (list string))
        "no orphans after GC" [] (files_with_suffix dir ".tmp"))

(* PLUTO_FAULT_* environment round-trip. *)
let test_fault_env () =
  let clear () =
    List.iter
      (fun v -> Unix.putenv v "")
      [ "PLUTO_FAULT_SEED"; "PLUTO_FAULT_RATE"; "PLUTO_FAULT_ONLY"; "PLUTO_FAULT_AT" ]
  in
  Fun.protect
    ~finally:(fun () ->
      clear ();
      Fault.install None)
    (fun () ->
      clear ();
      Alcotest.(check bool) "unset env = disabled" true (Fault.of_env () = None);
      Unix.putenv "PLUTO_FAULT_SEED" "42";
      Unix.putenv "PLUTO_FAULT_ONLY" "store.write,pool.";
      Unix.putenv "PLUTO_FAULT_AT" "store.write.rename@3,store.write.rename@5";
      match Fault.of_env () with
      | None -> Alcotest.fail "env not parsed"
      | Some c ->
          Alcotest.(check int) "seed" 42 c.Fault.seed;
          Alcotest.(check (list string))
            "only" [ "store.write"; "pool." ] c.Fault.only;
          Alcotest.(check bool)
            "fail_at" true
            (c.Fault.fail_at = [ ("store.write.rename", [ 3; 5 ]) ]);
          (* deterministic: the 3rd and 5th calls fire, no others *)
          Fault.install (Some c);
          let fired =
            List.init 6 (fun _ -> Fault.fire "store.write.rename")
          in
          Alcotest.(check (list bool))
            "exact schedule"
            [ false; false; true; false; true; false ]
            fired;
          Alcotest.(check bool)
            "filtered site never fires" false
            (Fault.fire "store.read.open"))

let suite =
  ( "store",
    [
      Alcotest.test_case "sharded layout round-trips" `Quick test_sharded_layout;
      Alcotest.test_case "failed publish cleans its tmp" `Quick
        test_write_failure_cleans_tmp;
      Alcotest.test_case "crash orphan collected by gc" `Quick
        test_crash_orphan_gc;
      Alcotest.test_case "startup gc removes legacy files" `Quick
        test_startup_gc_legacy;
      Alcotest.test_case "checksum catches silent corruption" `Quick
        test_checksum_catches_corruption;
      Alcotest.test_case "lru eviction respects budget and recency" `Quick
        test_lru_eviction;
      Alcotest.test_case "concurrent writers share one store" `Quick
        test_concurrent_writers;
      Alcotest.test_case "fault env knobs parse" `Quick test_fault_env;
    ] )
