(* The autotuner (lib/tune): candidate space and footprint pruning,
   determinism under a pinned seed, the persistent evaluation cache, the fork
   worker pool, and the tuned-beats-baseline property the subsystem exists
   for. *)

let mc = Machine.default_machine

(* small, fast searches: all program parameters default to 64 *)
let search ?cache_dir ?(jobs = 1) ?(budget = 6) ?(seed = 7) p =
  Tune.search ~jobs ~budget ~candidate_time_s:30.0 ?cache_dir ~seed p

let outcome_sig (o : Tune.outcome) =
  ( Tune.candidate_to_string o.Tune.o_cand,
    o.Tune.o_cycles,
    o.Tune.o_degraded,
    o.Tune.o_failed )

let report_sig (r : Tune.report) = List.map outcome_sig r.Tune.r_outcomes

let with_temp_dir f = Pool.with_temp_dir ~prefix:"tune" f

(* ----------------------------- candidate space ---------------------------- *)

let test_footprint () =
  (* 2 arrays, 2-deep band, 32x32 tiles: 2 * 32*32 * 8 bytes *)
  Alcotest.(check int)
    "uniform footprint" (2 * 32 * 32 * 8)
    (Tune.footprint_bytes ~narrays:2 ~band_width:2 [| 32 |]);
  (* rectangular: last size repeats for deeper levels *)
  Alcotest.(check int)
    "rect footprint" (3 * 8 * 32 * 32 * 8)
    (Tune.footprint_bytes ~narrays:3 ~band_width:3 [| 8; 32 |]);
  Alcotest.(check int) "no band" 0
    (Tune.footprint_bytes ~narrays:2 ~band_width:0 [| 32 |])

let test_prunes () =
  (* 64x64 tiles over 2 arrays = 64 KB > the 16 KB modeled L2 *)
  Alcotest.(check bool) "64x64 pruned" true
    (Tune.prunes ~machine:mc ~narrays:2 ~band_width:2
       { Tune.default_candidate with Tune.c_sizes = Some [| 64 |] });
  Alcotest.(check bool) "8x8 kept" false
    (Tune.prunes ~machine:mc ~narrays:2 ~band_width:2
       { Tune.default_candidate with Tune.c_sizes = Some [| 8 |] });
  (* model-chosen sizes and untiled candidates are never pruned *)
  Alcotest.(check bool) "model sizes kept" false
    (Tune.prunes ~machine:mc ~narrays:8 ~band_width:3 Tune.default_candidate);
  Alcotest.(check bool) "untiled kept" false
    (Tune.prunes ~machine:mc ~narrays:8 ~band_width:3
       { Tune.default_candidate with Tune.c_tile = false })

let test_enumerate_anchors () =
  (* narrays/band deep enough that T=64 is over budget: the anchors must
     survive anyway (they are the report's baselines), and pruned candidates
     must be gone *)
  let cands, npruned = Tune.For_tests.enumerate ~machine:mc ~narrays:3 ~band_width:3 in
  Alcotest.(check bool) "some pruned" true (npruned > 0);
  (match cands with
  | c0 :: c1 :: _ ->
      Alcotest.(check string) "anchor 0 is default"
        (Tune.candidate_to_string Tune.default_candidate)
        (Tune.candidate_to_string c0);
      Alcotest.(check string) "anchor 1 is T=64"
        (Tune.candidate_to_string Tune.t64_candidate)
        (Tune.candidate_to_string c1)
  | _ -> Alcotest.fail "fewer than two candidates");
  List.iteri
    (fun i c ->
      if i >= 2 then
        Alcotest.(check bool)
          ("survivor not prunable: " ^ Tune.candidate_to_string c)
          false
          (Tune.prunes ~machine:mc ~narrays:3 ~band_width:3 c))
    cands

let test_cache_key_distinguishes () =
  let key = Tune.For_tests.cache_key ~machine:mc ~options:Driver.default_options in
  let k0 = key ~program_repr:"P" ~params:[ ("N", 64) ] Tune.default_candidate in
  Alcotest.(check string) "stable" k0
    (key ~program_repr:"P" ~params:[ ("N", 64) ] Tune.default_candidate);
  Alcotest.(check bool) "candidate changes key" true
    (k0 <> key ~program_repr:"P" ~params:[ ("N", 64) ] Tune.t64_candidate);
  Alcotest.(check bool) "params change key" true
    (k0 <> key ~program_repr:"P" ~params:[ ("N", 128) ] Tune.default_candidate);
  Alcotest.(check bool) "program changes key" true
    (k0 <> key ~program_repr:"Q" ~params:[ ("N", 64) ] Tune.default_candidate)

(* ------------------------------ determinism ------------------------------- *)

let test_deterministic_search () =
  let p = Kernels.program Kernels.jacobi_1d in
  let r1, _ = search ~seed:11 p in
  let r2, _ = search ~seed:11 p in
  Alcotest.(check int) "same count"
    (List.length r1.Tune.r_outcomes)
    (List.length r2.Tune.r_outcomes);
  Alcotest.(check bool) "identical outcomes" true (report_sig r1 = report_sig r2)

let test_pool_matches_sequential () =
  (* the fork pool must not change results, only wall time *)
  let p = Kernels.program Kernels.jacobi_1d in
  let seq, _ = search ~jobs:1 ~seed:13 p in
  let par, _ = search ~jobs:3 ~seed:13 p in
  Alcotest.(check bool) "pool = sequential" true (report_sig seq = report_sig par)

(* ------------------------------- the cache -------------------------------- *)

let test_cache_warm_rerun () =
  with_temp_dir (fun dir ->
      let p = Kernels.program Kernels.jacobi_1d in
      let cold, _ = search ~cache_dir:dir ~seed:17 p in
      Alcotest.(check bool) "cold run evaluates" true (cold.Tune.r_evaluated > 0);
      Alcotest.(check int) "cold run has no hits" 0 cold.Tune.r_cache_hits;
      let warm, _ = search ~cache_dir:dir ~seed:17 p in
      Alcotest.(check int) "warm run evaluates nothing" 0 warm.Tune.r_evaluated;
      Alcotest.(check int) "warm run all hits"
        (List.length warm.Tune.r_outcomes)
        warm.Tune.r_cache_hits;
      Alcotest.(check bool) "warm costs identical" true
        (report_sig cold = report_sig warm);
      Alcotest.(check bool) "warm outcomes marked from_cache" true
        (List.for_all (fun o -> o.Tune.o_from_cache) warm.Tune.r_outcomes))

let test_cache_corruption_is_miss () =
  with_temp_dir (fun dir ->
      let p = Kernels.program Kernels.jacobi_1d in
      let _ = search ~cache_dir:dir ~seed:19 p in
      (* truncate every cache entry: the next run must silently re-evaluate *)
      Array.iter
        (fun f ->
          let oc = open_out (Filename.concat dir f) in
          output_string oc "garbage\n";
          close_out oc)
        (Sys.readdir dir);
      let again, _ = search ~cache_dir:dir ~seed:19 p in
      Alcotest.(check int) "corrupt cache gives no hits" 0
        again.Tune.r_cache_hits;
      Alcotest.(check bool) "still evaluates" true (again.Tune.r_evaluated > 0))

(* ------------------------- tuned beats baselines -------------------------- *)

(* The reason the subsystem exists: the best verified candidate is never
   worse than the default configuration or the hardcoded T=64, because both
   are always in the evaluated set. *)
let check_tuned_wins k =
  let p = Kernels.program k in
  let report, best = search ~budget:10 ~seed:23 p in
  match (report.Tune.r_best, best) with
  | Some o, Some r ->
      Alcotest.(check bool) "best not failed" true (o.Tune.o_failed = None);
      Alcotest.(check bool) "tuned <= default" true
        (o.Tune.o_cycles <= report.Tune.r_default_cycles);
      Alcotest.(check bool) "tuned <= T64" true
        (o.Tune.o_cycles <= report.Tune.r_t64_cycles);
      (* the returned artifact is real generated code for this program *)
      Alcotest.(check bool) "artifact verifies" true
        (Verify.ok (Driver.verify r))
  | _ -> Alcotest.fail "no verified candidate found"

let test_tuned_wins_jacobi () = check_tuned_wins Kernels.jacobi_1d
let test_tuned_wins_matmul () = check_tuned_wins Kernels.matmul

(* ------------------------ unroll-jam + stats ride-alongs ------------------ *)

let test_unroll_jam_annotation () =
  let p = Kernels.program Kernels.matmul in
  let plain = Driver.compile p in
  let r =
    Driver.compile
      ~options:{ Driver.default_options with Driver.unroll_jam = 4 }
      p
  in
  let levels = Codegen.unrolled_levels r.Driver.code in
  Alcotest.(check bool) "some level annotated" true (levels <> []);
  (* annotation only: the generated loops are semantically unchanged *)
  Alcotest.(check bool) "equivalent to original" true
    (Machine.equivalent p r.Driver.code ~params:[| 14 |]);
  (* the simulator prices it: cost differs from the unannotated code *)
  let c1 = (Machine.simulate mc plain.Driver.code ~params:[| 64 |]).Machine.cycles in
  let c4 = (Machine.simulate mc r.Driver.code ~params:[| 64 |]).Machine.cycles in
  Alcotest.(check bool) "unroll changes modeled cost" true (c1 <> c4);
  (* and the C printer emits the pragma *)
  let c_text = Putil.string_of_format Codegen.print_c r.Driver.code in
  Alcotest.(check bool) "pragma in output" true
    (Astring.String.is_infix ~affix:"#pragma unroll(4)" c_text)

(* Runs under Fixtures.stats_case: the counters start from zero regardless
   of which suites ran earlier in the process. *)
let test_stats_counters () =
  let p = Kernels.program Kernels.jacobi_1d in
  ignore (Driver.compile p);
  Alcotest.(check bool) "ilp solves counted" true (Stats.counter "milp.solves" > 0);
  Alcotest.(check bool) "fm eliminations counted" true
    (Stats.counter "fm.eliminations" > 0);
  ignore (Machine.simulate mc (Driver.compile p).Driver.code ~params:[| 8; 24 |]);
  Alcotest.(check bool) "simulations counted" true
    (Stats.counter "machine.simulations" > 0);
  let j = Stats.to_json () in
  Alcotest.(check bool) "json mentions timers" true
    (Astring.String.is_infix ~affix:"pass.transform" j)

let suite =
  ( "tune",
    [
      Alcotest.test_case "footprint arithmetic" `Quick test_footprint;
      Alcotest.test_case "pruning predicate" `Quick test_prunes;
      Alcotest.test_case "enumerate keeps anchors" `Quick test_enumerate_anchors;
      Alcotest.test_case "cache key" `Quick test_cache_key_distinguishes;
      Alcotest.test_case "deterministic under seed" `Slow test_deterministic_search;
      Alcotest.test_case "fork pool = sequential" `Slow test_pool_matches_sequential;
      Alcotest.test_case "warm cache skips evaluation" `Slow test_cache_warm_rerun;
      Alcotest.test_case "corrupt cache = miss" `Slow test_cache_corruption_is_miss;
      Alcotest.test_case "tuned beats baselines (jacobi)" `Slow test_tuned_wins_jacobi;
      Alcotest.test_case "tuned beats baselines (matmul)" `Slow test_tuned_wins_matmul;
      Alcotest.test_case "unroll-jam annotation" `Quick test_unroll_jam_annotation;
      Fixtures.stats_case "stats counters" `Quick test_stats_counters;
    ] )
