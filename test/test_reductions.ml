(* Reduction-aware compilation (--reductions): detection of associative
   self-updates, marking of their self-dependences, relaxed scheduling,
   OpenMP clause lowering, the reduction-aware validator, and
   tolerance-based equivalence.  With the flag off nothing may change. *)

let red_options =
  { Driver.paper_options with Driver.reductions = true }

let stmt_of src =
  let p = Frontend.parse_program ~name:"<red>" src in
  List.hd p.Ir.stmts

(* ------------------------------- detection ------------------------------- *)

let test_detection () =
  let check name src expected =
    let got =
      match Ir.reduction_of_stmt (stmt_of src) with
      | Some r -> Some (r.Ir.red_op, r.Ir.red_acc.Ir.arr)
      | None -> None
    in
    Alcotest.(check (option (pair (of_pp Fmt.nop) string))) name expected got
  in
  check "sum into a cell"
    "double a[N], s[2];\nfor (i = 0; i < N; i++)\n  s[0] = s[0] + a[i];\n"
    (Some (Ir.Add, "s"));
  check "product, accumulator on the right"
    "double a[N], s[2];\nfor (i = 0; i < N; i++)\n  s[0] = a[i] * s[0];\n"
    (Some (Ir.Mul, "s"));
  check "repeated subtraction (acc on the left)"
    "double a[N], x[N];\nfor (i = 0; i < N; i++)\n  x[0] = x[0] - a[i];\n"
    (Some (Ir.Sub, "x"));
  check "subtraction from the right is not commutative"
    "double a[N], x[N];\nfor (i = 0; i < N; i++)\n  x[0] = a[i] - x[0];\n"
    None;
  check "division has no OpenMP reduction"
    "double a[N], x[N];\nfor (i = 0; i < N; i++)\n  x[0] = x[0] / a[i];\n"
    None;
  check "accumulator also read inside the combined term"
    "double a[N], s[2];\nfor (i = 0; i < N; i++)\n  s[0] = s[0] + a[i] * s[0];\n"
    None;
  check "plain copy is no reduction"
    "double a[N], b[N];\nfor (i = 0; i < N; i++)\n  a[i] = b[i];\n"
    None;
  (* the paper kernels: matmul's C[i][j] update is a reduction over k *)
  let m = List.hd (Kernels.program Kernels.matmul).Ir.stmts in
  (match Ir.reduction_of_stmt m with
  | Some r ->
      Alcotest.(check string) "matmul accumulator" "C" r.Ir.red_acc.Ir.arr
  | None -> Alcotest.fail "matmul update not detected")

(* -------------------------------- marking -------------------------------- *)

let test_marking () =
  let _, ds = Fixtures.program_and_deps_reductions Kernels.dot in
  let legality = List.filter Deps.is_legality ds in
  Alcotest.(check bool) "dot has legality self-dependences" true
    (legality <> []);
  List.iter
    (fun d ->
      Alcotest.(check bool) "every dot legality edge is marked" true
        d.Deps.reduction;
      Alcotest.(check bool) "marked edges are not hard" false (Deps.is_hard d))
    legality;
  (* input (read-read) edges never get marked *)
  List.iter
    (fun d ->
      if d.Deps.kind = Deps.Input then
        Alcotest.(check bool) "input edges unmarked" false d.Deps.reduction)
    ds;
  (* without the flag, nothing is marked and is_hard = is_legality *)
  let _, ds0 = Fixtures.program_and_deps Kernels.dot in
  List.iter
    (fun d ->
      Alcotest.(check bool) "flag off: unmarked" false d.Deps.reduction;
      Alcotest.(check bool) "flag off: is_hard = is_legality"
        (Deps.is_legality d) (Deps.is_hard d))
    ds0

let test_marking_lu_alias_analysis () =
  (* lu's a[i][j] -= a[i][k] * a[k][j]: the accumulator self-edges are
     markable only because the polyhedral alias check proves the other reads
     of [a] never touch the accumulator cell (the domain has j > k, i > k) *)
  let _, ds = Fixtures.program_and_deps_reductions Kernels.lu in
  let marked = List.filter (fun d -> d.Deps.reduction) ds in
  Alcotest.(check bool) "lu has marked reduction edges" true (marked <> []);
  List.iter
    (fun d ->
      Alcotest.(check bool) "marked edges are self edges" true
        (d.Deps.src.Ir.id = d.Deps.dst.Ir.id);
      Alcotest.(check string) "marked edges are on the accumulator" "a"
        d.Deps.src_acc.Ir.arr;
      Alcotest.(check bool) "both endpoints are the accumulator access" true
        (Ir.same_access d.Deps.src_acc d.Deps.dst_acc))
    marked;
  (* cross-access and cross-statement edges on [a] stay hard *)
  Alcotest.(check bool) "cross-statement edges stay hard" true
    (List.exists
       (fun d ->
         d.Deps.src.Ir.id <> d.Deps.dst.Ir.id && Deps.is_hard d
         && String.equal d.Deps.src_acc.Ir.arr "a")
       ds)

let test_scan_is_not_marked () =
  (* x[0] += x[i] with i from 0: the combined term may read the accumulator
     cell itself (at i = 0), so the relaxation would be unsound — the
     polyhedral alias check must refuse to mark any edge.  (With i from 1
     the same program is a genuine reduction and does get marked: the reads
     provably never touch x[0].) *)
  let p =
    Frontend.parse_program ~name:"<scan>"
      "double x[N];\nfor (i = 0; i < N; i++)\n  x[0] = x[0] + x[i];\n"
  in
  let ds = Deps.compute ~reductions:true p in
  List.iter
    (fun d ->
      Alcotest.(check bool) "no edge of the aliased scan is marked" false
        d.Deps.reduction)
    ds

(* --------------------------- scheduling + lowering ------------------------ *)

let rec parallel_levels = function
  | Codegen.For { level; parallel; body; _ } ->
      (if parallel then [ level ] else [])
      @ List.concat_map parallel_levels body
  | Codegen.Leaf _ -> []

let parallel_levels_of (cg : Codegen.t) =
  List.sort_uniq compare (List.concat_map parallel_levels cg.Codegen.body)

let clauses_of (cg : Codegen.t) =
  List.sort_uniq compare
    (List.concat (Array.to_list cg.Codegen.reductions))

let test_dot_parallelizes () =
  let p = Kernels.program Kernels.dot in
  let off = Driver.compile ~options:Driver.paper_options p in
  Alcotest.(check (list int)) "flag off: dot fully serial" []
    (parallel_levels_of off.Driver.code);
  let on = Driver.compile ~options:red_options p in
  Alcotest.(check bool) "flag on: dot has a parallel loop" true
    (parallel_levels_of on.Driver.code <> []);
  Alcotest.(check (list (pair string string)))
    "the parallel loop carries reduction(+:s)"
    [ ("+", "s") ]
    (clauses_of on.Driver.code)

let test_histogram_outer_parallel () =
  (* the relaxed ILP schedule keeps the bins dimension outermost and
     parallel; each parallel iteration then owns disjoint accumulator cells
     h[j], so the carrying test proves no clause is needed — attaching one
     anyway would privatize h for nothing.  (The fast scheduling path keeps
     the scan outermost instead and must emit reduction(+:h); the CI smoke
     job pins that behaviour on the CLI default path.) *)
  let p = Kernels.program Kernels.histogram in
  let on = Driver.compile ~options:red_options p in
  Alcotest.(check bool) "outermost loop is parallel" true
    (List.mem 0 (parallel_levels_of on.Driver.code));
  Alcotest.(check (list (pair string string)))
    "parallel bins need no reduction clause" []
    (clauses_of on.Driver.code)

let test_mvt_clause_precision () =
  (* mvt with reductions: the outer parallel loop carries S2's accumulation
     (x2) but iterates S1's accumulator cells (x1) — exactly one clause *)
  let p = Kernels.program Kernels.mvt in
  let on = Driver.compile ~options:red_options p in
  Alcotest.(check bool) "outermost loop is parallel" true
    (List.mem 0 (parallel_levels_of on.Driver.code));
  Alcotest.(check (list (pair string string)))
    "only the carried accumulator gets a clause"
    [ ("+", "x2") ]
    (clauses_of on.Driver.code)

let test_flag_off_bit_identical () =
  (* a kernel with no reductions compiles to the same code either way, and
     even for reduction kernels the flag-off pipeline is untouched *)
  List.iter
    (fun k ->
      let p = Kernels.program k in
      let off = Driver.compile ~options:Driver.paper_options p in
      let off2 = Driver.compile ~options:Driver.paper_options p in
      Alcotest.(check string)
        (k.Kernels.name ^ ": flag-off output deterministic")
        (Putil.string_of_format Codegen.print_loop_nest off.Driver.code)
        (Putil.string_of_format Codegen.print_loop_nest off2.Driver.code);
      let on =
        Driver.compile
          ~options:{ Driver.paper_options with Driver.reductions = true }
          p
      in
      if k.Kernels.name = "jacobi-1d-imper" then
        (* no reduction statements: the flag must be a no-op *)
        Alcotest.(check string) "jacobi: flag is a no-op"
          (Putil.string_of_format Codegen.print_loop_nest off.Driver.code)
          (Putil.string_of_format Codegen.print_loop_nest on.Driver.code))
    [ Kernels.jacobi_1d; Kernels.dot ]

(* ------------------------------- validation ------------------------------ *)

let test_validator_accepts_relaxed_schedules () =
  List.iter
    (fun k ->
      let p = Kernels.program k in
      let r = Driver.compile ~options:red_options p in
      let report = Driver.verify r in
      Alcotest.(check bool)
        (k.Kernels.name ^ ": reduction-aware validation passes")
        true (Verify.ok report))
    [ Kernels.dot; Kernels.histogram; Kernels.mvt; Kernels.lu ]

let test_validator_rejects_forged_marks () =
  (* forge a reduction mark on a dependence that is not a reduction: the
     independent mark check must fail with code "reduction" *)
  let p, ds = Fixtures.program_and_deps Kernels.jacobi_1d in
  let forged =
    List.map
      (fun d ->
        if d.Deps.kind = Deps.Flow && d.Deps.src.Ir.id <> d.Deps.dst.Ir.id
        then { d with Deps.reduction = true }
        else d)
      ds
  in
  let t = Fixtures.transform Kernels.jacobi_1d in
  let report = Verify.validate_transform p forged t in
  Alcotest.(check bool) "forged mark rejected" false (Verify.ok report);
  Alcotest.(check bool) "failure carries the reduction code" true
    (List.exists
       (fun f -> String.equal f.Verify.f_code "reduction")
       report.Verify.failures)

(* ---------------------------- execution semantics ------------------------- *)

let test_tolerance_equivalence () =
  List.iter
    (fun k ->
      let p = Kernels.program k in
      let r = Driver.compile ~options:red_options p in
      let params = Kernels.params_vector p k.Kernels.check_params in
      (* adversarial order: reversing the parallel loops reassociates the
         accumulation, so bit-exactness is not owed — tolerance is *)
      Alcotest.(check bool)
        (k.Kernels.name ^ ": equivalent modulo reassociation")
        true
        (Machine.equivalent ~par_reverse:true
           ~tolerance:Machine.reduction_tolerance p r.Driver.code ~params);
      (* in-order execution of the same code stays bit-exact *)
      Alcotest.(check bool)
        (k.Kernels.name ^ ": in-order execution bit-exact")
        true
        (Machine.equivalent p r.Driver.code ~params))
    [ Kernels.dot; Kernels.histogram; Kernels.mvt ]

let suite =
  ( "reductions",
    [
      Alcotest.test_case "self-update detection" `Quick test_detection;
      Alcotest.test_case "dependence marking" `Quick test_marking;
      Alcotest.test_case "lu alias analysis" `Quick
        test_marking_lu_alias_analysis;
      Alcotest.test_case "aliased scan is never marked" `Quick
        test_scan_is_not_marked;
      Alcotest.test_case "dot parallelizes with a clause" `Quick
        test_dot_parallelizes;
      Alcotest.test_case "histogram outer parallel" `Quick
        test_histogram_outer_parallel;
      Alcotest.test_case "mvt clause precision" `Quick
        test_mvt_clause_precision;
      Alcotest.test_case "flag off is bit-identical" `Quick
        test_flag_off_bit_identical;
      Alcotest.test_case "validator accepts relaxed schedules" `Quick
        test_validator_accepts_relaxed_schedules;
      Alcotest.test_case "validator rejects forged marks" `Quick
        test_validator_rejects_forged_marks;
      Alcotest.test_case "tolerance equivalence" `Quick
        test_tolerance_equivalence;
    ] )
