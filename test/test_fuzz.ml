(* Pipeline fuzzing: random affine programs (generated as source text, so
   the front-end is fuzzed too) are pushed through dependence analysis, the
   hyperplane search, tiling, wavefronting and code generation, and the
   result is checked for semantic equivalence against the original execution
   order — forwards and with parallel loops reversed.

   Compilation goes through [Driver.compile_robust]: identity is always a
   legal transformation for these programs, so the degradation ladder must
   always emit code, even when the hyperplane search itself gives up. *)

let gen_program : string QCheck.Gen.t =
  let open QCheck.Gen in
  (* iterators come from a fixed pool so sibling loops get distinct names *)
  let idx_expr ~iters =
    (* affine index built from one iterator (or a constant) plus ±1 *)
    let* kind = int_range 0 5 in
    let* off = int_range (-1) 1 in
    match (kind, iters) with
    | 0, _ | _, [] ->
        let* k = int_range 1 3 in
        return (string_of_int k)
    | _, _ ->
        let* it = oneofl iters in
        return
          (if off = 0 then it
           else if off > 0 then Printf.sprintf "%s + %d" it off
           else Printf.sprintf "%s - %d" it (-off))
  in
  let access ~iters =
    let* arr = oneofl [ `A; `B ] in
    match arr with
    | `A ->
        let* i1 = idx_expr ~iters in
        let* i2 = idx_expr ~iters in
        return (Printf.sprintf "A[%s][%s]" i1 i2)
    | `B ->
        let* i = idx_expr ~iters in
        return (Printf.sprintf "b[%s]" i)
  in
  let stmt ~iters =
    let* lhs = access ~iters in
    let* n = int_range 1 2 in
    let* loads = list_repeat n (access ~iters) in
    let* c = int_range 1 9 in
    return
      (Printf.sprintf "%s = %s + 0.%d;" lhs
         (String.concat " + " loads)
         c)
  in
  let loop name body =
    Printf.sprintf "for (%s = 1; %s < N - 1; %s++) {\n%s\n}" name name name
      (String.concat "\n" body)
  in
  let nest names =
    match names with
    | [ i ] ->
        let* s1 = stmt ~iters:[ i ] in
        let* two = bool in
        if two then
          let* s2 = stmt ~iters:[ i ] in
          return (loop i [ s1; s2 ])
        else return (loop i [ s1 ])
    | [ i; j ] ->
        let* s1 = stmt ~iters:[ i; j ] in
        let* two = bool in
        let* inner =
          if two then
            let* s2 = stmt ~iters:[ i; j ] in
            return [ s1; s2 ]
          else return [ s1 ]
        in
        return (loop i [ loop j inner ])
    | _ -> assert false
  in
  let* n_items = int_range 1 2 in
  let pools = [ [ "i"; "j" ]; [ "p"; "q" ] ] in
  let* items =
    flatten_l
      (List.init n_items (fun k ->
           let pool = List.nth pools k in
           let* depth2 = bool in
           nest (if depth2 then pool else [ List.hd pool ])))
  in
  return ("double A[N][N], b[N];\n" ^ String.concat "\n" items)

let arb_program = QCheck.make ~print:(fun s -> s) gen_program

let options =
  { Driver.default_options with Driver.tile_size = Some 4 }

(* On failure, persist the offending program so it outlives the test run
   (QCheck's printed counterexample is also the source, but a file is easier
   to feed straight back to plutocc). *)
let dumping name f src =
  match f src with
  | true -> true
  | false ->
      ignore (Fixtures.dump_reproducer ~name src);
      false
  | exception e ->
      ignore (Fixtures.dump_reproducer ~name src);
      raise e

let prop_pipeline_equivalence =
  QCheck.Test.make ~name:"random program: full pipeline is semantics-preserving"
    ~count:15 arb_program
    (dumping "fuzz-pipeline" (fun src ->
         match Driver.compile_source_robust ~options ~name:"<fuzz>" src with
         | Error ds ->
             QCheck.Test.fail_reportf "robust compile failed: %s"
               (Format.asprintf "%a" (Diag.pp_all ?src:None) ds)
         | Ok (r, _) ->
             let p = r.Driver.program in
             let params = [| 10 |] in
             Machine.equivalent p r.Driver.code ~params
             && Machine.equivalent ~par_reverse:true p r.Driver.code ~params))

let prop_coverage =
  QCheck.Test.make ~name:"random program: codegen visits the exact domain"
    ~count:8 arb_program
    (dumping "fuzz-coverage" (fun src ->
         match Driver.compile_source_robust ~options ~name:"<fuzz>" src with
         | Error ds ->
             QCheck.Test.fail_reportf "robust compile failed: %s"
               (Format.asprintf "%a" (Diag.pp_all ?src:None) ds)
         | Ok (r, _) ->
         let p = r.Driver.program in
         let params = [| 9 |] in
         let mem = Machine.alloc_memory p ~params in
         Machine.init_memory mem;
         let executed = Machine.interpret r.Driver.code ~params ~mem in
         let expected =
           Putil.sum_by
             (fun s ->
               List.length (Machine.For_tests.enumerate_domain s ~params))
             p.Ir.stmts
         in
         executed = expected))

(* The QCheck properties draw from the same pinned, overridable seed as the
   differential suite, so runs are reproducible by construction. *)
let suite =
  ( "fuzz",
    let rand =
      Fixtures.announce_seed ();
      Gen.state_of_seed Fixtures.fuzz_seed
    in
    [
      QCheck_alcotest.to_alcotest ~rand prop_pipeline_equivalence;
      QCheck_alcotest.to_alcotest ~rand prop_coverage;
    ] )
