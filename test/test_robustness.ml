(* Never-crash compilation: structured diagnostics, resource budgets and the
   graceful-degradation ladder.

   - the frontend reports every error (with positions) instead of dying on
     the first;
   - the solvers raise [Diag.Budget_exceeded] instead of running forever;
   - [Driver.compile_robust] walks auto -> Feautrier -> identity, recording
     each degradation as a warning, and never raises;
   - whatever rung emitted code is semantically equivalent to the original
     execution order. *)

let multi_error_source =
  "double a[N];\n\
   for (i = 0; i < N; i++) a[i*i] = 1.0;\n\
   for (k = 0; k < N; j++) {\n\
  \  c[k] = a[k] + q[2];\n\
   }\n"

let test_frontend_reports_all_errors () =
  match Frontend.parse_program_diag ~name:"bad.c" multi_error_source with
  | Ok _ -> Alcotest.fail "expected parse errors"
  | Error ds ->
      Alcotest.(check bool) "several errors reported" true (List.length ds >= 3);
      Alcotest.(check bool) "all are errors" true (List.for_all Diag.is_error ds);
      Alcotest.(check bool) "non-affine subscript reported" true
        (Diag.has_code ds "non-affine");
      Alcotest.(check bool) "bad increment reported" true
        (Diag.has_code ds "parse");
      Alcotest.(check bool) "undeclared array reported" true
        (Diag.has_code ds "unknown-array");
      (* positions: sorted by source position, first error on line 2 *)
      let first = List.hd ds in
      match first.Diag.span with
      | None -> Alcotest.fail "first error has no span"
      | Some sp ->
          Alcotest.(check string) "file" "bad.c" sp.Diag.file;
          Alcotest.(check int) "line" 2 sp.Diag.line

let test_frontend_unclosed_brace () =
  let src = "double a[N];\nfor (i = 0; i < N; i++) {\n  a[i] = 1.0;\n" in
  match Frontend.parse_program_diag src with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error ds ->
      Alcotest.(check bool) "unclosed brace reported" true
        (List.exists
           (fun d ->
             Astring.String.is_infix ~affix:"unclosed '{'" d.Diag.message)
           ds)

let test_frontend_never_raises_parse_diag () =
  (* parse_program_diag must return, never raise, on arbitrary junk *)
  let junk =
    [
      "";
      "}{";
      "for";
      "for (i = 0; i <";
      "double;";
      "double a[);\nfor (i = 0; i < N; i++) a[i] = 1.0;";
      "@ # $ %\x00\xff";
      "for (i = 0; i < N; i++) a[i] = 99999999999999999999999999;";
      "/* never closed";
      "double a[N];\nfor (i = 0; i < N; i++) for (i = 0; i < N; i++) a[i] = 1.0;";
    ]
  in
  List.iter
    (fun src ->
      match Frontend.parse_program_diag src with
      | Ok _ | Error _ -> ()
      | exception e ->
          Alcotest.failf "parse_program_diag raised %s on %S"
            (Printexc.to_string e) src)
    junk

(* ------------------------------ budgets ---------------------------------- *)

(* 2 * sum xi = 7 over a box: integer-infeasible, needs branching. *)
let branching_system n =
  let cs =
    Polyhedra.eq_ints (List.init (n + 1) (fun j -> if j = n then -7 else 2))
    :: List.concat_map
         (fun j ->
           [
             Polyhedra.ge_ints (List.init (n + 1) (fun q -> if q = j then 1 else 0));
             Polyhedra.ge_ints
               (List.init (n + 1) (fun q ->
                    if q = j then -1 else if q = n then 5 else 0));
           ])
         (Putil.range n)
  in
  Polyhedra.of_constrs n cs

let test_milp_time_budget () =
  let n = 6 in
  let sys = branching_system n in
  match
    Milp.ilp
      ~budget:{ Milp.max_nodes = max_int; time_limit_s = Some 0.0 }
      sys (Vec.zero n)
  with
  | exception Diag.Budget_exceeded msg ->
      Alcotest.(check bool) "message names the time budget" true
        (Astring.String.is_infix ~affix:"time budget" msg)
  | _ -> Alcotest.fail "expected Budget_exceeded from the 0s deadline"

let test_fm_row_explosion_guard () =
  (* 8 lower and 8 upper bounds on x in terms of y: eliminating x would
     build 64 product rows, over the budget of 10. *)
  let cs =
    List.concat_map
      (fun k ->
        [
          Polyhedra.ge_ints [ 1; k; k ] (* x >= -k*y - k *);
          Polyhedra.ge_ints [ -1; k; 10 + k ] (* x <= k*y + 10 + k *);
        ])
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let p = Polyhedra.of_constrs 2 cs in
  (match Polyhedra.eliminate ~max_constrs:10 p 0 with
  | exception Diag.Budget_exceeded msg ->
      Alcotest.(check bool) "message names Fourier-Motzkin" true
        (Astring.String.is_infix ~affix:"Fourier-Motzkin" msg)
  | _ -> Alcotest.fail "expected Budget_exceeded from the FM guard");
  (* an ample budget eliminates fine *)
  match Polyhedra.eliminate p 0 with
  | Some _ -> ()
  | None -> Alcotest.fail "elimination of a satisfiable system"
  | exception Diag.Budget_exceeded _ ->
      Alcotest.fail "default budget should be ample here"

(* ------------------------- degradation ladder ---------------------------- *)

let check_equiv (r : Driver.result) =
  let params =
    Array.make (List.length r.Driver.program.Ir.params) 6
  in
  Alcotest.(check bool) "degraded output equivalent to original" true
    (Machine.equivalent r.Driver.program r.Driver.code ~params)

let test_ladder_no_degradation_on_success () =
  let p = Kernels.program Kernels.jacobi_1d in
  match Driver.compile_robust p with
  | Ok (_, ds) ->
      (* the fast scheduling rung always leaves a note (accepted) or a
         warning (rejected, fell through to the exact ILP) — neither is a
         degradation; anything else on a clean compile is *)
      Alcotest.(check bool) "no errors" false (Diag.has_errors ds);
      Alcotest.(check bool) "not degraded" false (Driver.degraded ds);
      List.iter
        (fun d ->
          Alcotest.(check bool)
            ("only fastpath diagnostics on a clean compile: " ^ d.Diag.code)
            true
            (Astring.String.is_prefix ~affix:"fastpath-" d.Diag.code))
        ds
  | Error _ -> Alcotest.fail "jacobi-1d must compile"

(* coeff_bound = 0 leaves no nonzero hyperplane: the Pluto search fails but
   the Feautrier rung (its own coefficient bounds) still succeeds. *)
let crippled_search_options =
  {
    Driver.default_options with
    Driver.auto = { Pluto.Auto.default_config with Pluto.Auto.coeff_bound = 0 };
  }

let test_ladder_degrades_to_feautrier () =
  let p = Kernels.program Kernels.jacobi_1d in
  match Driver.compile_robust ~options:crippled_search_options p with
  | Error ds ->
      Alcotest.failf "ladder must emit code: %s"
        (Format.asprintf "%a" (Diag.pp_all ?src:None) ds)
  | Ok (r, ds) ->
      Alcotest.(check bool) "degraded" true (Driver.degraded ds);
      Alcotest.(check bool) "fell back to Feautrier" true
        (Diag.has_code ds "degraded-feautrier");
      Alcotest.(check bool) "did not fall through to identity" false
        (Diag.has_code ds "degraded-identity");
      Alcotest.(check bool) "degradations are warnings, not errors" false
        (Diag.has_errors ds);
      check_equiv r

(* A zero time budget starves every scheduling ILP — the deadline check
   fires on branch-and-bound entry — in both the Pluto search and the
   Feautrier scheduler (the budget is threaded to both rungs): only the
   solver-free identity rung is left. *)
let starved_options =
  {
    Driver.default_options with
    Driver.auto =
      {
        Pluto.Auto.default_config with
        Pluto.Auto.budget = { Milp.max_nodes = max_int; time_limit_s = Some 0.0 };
      };
  }

let test_ladder_degrades_to_identity () =
  let p = Kernels.program Kernels.jacobi_1d in
  match Driver.compile_robust ~options:starved_options p with
  | Error ds ->
      Alcotest.failf "identity rung needs no solver, must succeed: %s"
        (Format.asprintf "%a" (Diag.pp_all ?src:None) ds)
  | Ok (r, ds) ->
      Alcotest.(check bool) "degraded to identity" true
        (Diag.has_code ds "degraded-identity");
      check_equiv r

let test_strict_disables_ladder () =
  let p = Kernels.program Kernels.jacobi_1d in
  match Driver.compile_robust ~options:crippled_search_options ~strict:true p with
  | Ok _ -> Alcotest.fail "--strict must not fall back"
  | Error ds ->
      Alcotest.(check bool) "hard error" true (Diag.has_errors ds)

(* --------------------------- crash freedom ------------------------------- *)

(* Mutate a valid kernel source and require that the robust pipeline either
   rejects the input with diagnostics or emits code — never raises — and
   that emitted code stays semantically equivalent to whatever program the
   mutant parsed to. *)
let test_crash_freedom_fuzz () =
  let rng = Random.State.make [| 0x9e3779b9; 42 |] in
  let base = Kernels.jacobi_1d.Kernels.source in
  let charset = "(){}[];=+-*/<> \nforNTijk0123456789abq." in
  let mutate src =
    let b = Buffer.create (String.length src) in
    Buffer.add_string b src;
    let s = Buffer.contents b in
    let n = String.length s in
    match Random.State.int rng 4 with
    | 0 when n > 1 ->
        (* delete a random slice *)
        let i = Random.State.int rng n in
        let len = 1 + Random.State.int rng (min 5 (n - i)) in
        String.sub s 0 i ^ String.sub s (i + len) (n - i - len)
    | 1 ->
        (* insert a random character *)
        let i = Random.State.int rng (n + 1) in
        let c = charset.[Random.State.int rng (String.length charset)] in
        String.sub s 0 i ^ String.make 1 c ^ String.sub s i (n - i)
    | 2 when n > 1 ->
        (* truncate *)
        String.sub s 0 (Random.State.int rng n)
    | _ when n > 8 ->
        (* duplicate a chunk *)
        let i = Random.State.int rng (n - 4) in
        let len = 1 + Random.State.int rng (min 8 (n - i - 1)) in
        let chunk = String.sub s i len in
        String.sub s 0 i ^ chunk ^ chunk ^ String.sub s i (n - i)
    | _ -> s
  in
  for trial = 1 to 60 do
    let src = ref base in
    let nmut = 1 + Random.State.int rng 6 in
    for _ = 1 to nmut do
      src := mutate !src
    done;
    match Driver.compile_source_robust ~name:"fuzz.c" !src with
    | Error ds ->
        Alcotest.(check bool)
          (Printf.sprintf "trial %d: rejection carries errors" trial)
          true (Diag.has_errors ds)
    | Ok (r, _) -> check_equiv r
    | exception e ->
        Alcotest.failf "trial %d: compile_source_robust raised %s on %S" trial
          (Printexc.to_string e) !src
  done

let test_lexmin_unbounded_is_structured () =
  (* an unbounded lexmin coordinate used to escape as a raw [Failure],
     blowing through the never-crash contract; it must now surface as a
     structured [Diag.Diagnostic] so [Driver]'s attempt wrapper can absorb
     it into the degradation ladder *)
  let sys = Polyhedra.of_constrs 1 [ Polyhedra.ge_ints [ -1; 0 ] ] in
  List.iter
    (fun warm ->
      match Milp.lexmin ~warm sys with
      | exception Diag.Diagnostic d ->
          Alcotest.(check string) "code" "unbounded" d.Diag.code;
          Alcotest.(check bool) "is an error" true (Diag.is_error d)
      | exception Failure msg ->
          Alcotest.failf "raw Failure escaped (warm=%b): %s" warm msg
      | exception e ->
          Alcotest.failf "unexpected exception (warm=%b): %s" warm
            (Printexc.to_string e)
      | _ -> Alcotest.fail "expected the unbounded diagnostic")
    [ true; false ];
  (* and the driver's exception wall converts it into a per-rung diagnostic
     rather than letting it propagate *)
  match
    Driver.attempt ~what:"probe" (fun () -> ignore (Milp.lexmin sys))
  with
  | Ok () -> Alcotest.fail "expected an error result"
  | Error d -> Alcotest.(check string) "driver code" "unbounded" d.Diag.code

let suite =
  ( "robustness",
    [
      Alcotest.test_case "frontend reports all errors" `Quick
        test_frontend_reports_all_errors;
      Alcotest.test_case "frontend unclosed brace" `Quick
        test_frontend_unclosed_brace;
      Alcotest.test_case "frontend never raises (diag API)" `Quick
        test_frontend_never_raises_parse_diag;
      Alcotest.test_case "milp time budget" `Quick test_milp_time_budget;
      Alcotest.test_case "fourier-motzkin row guard" `Quick
        test_fm_row_explosion_guard;
      Alcotest.test_case "ladder: clean compile, no degradation" `Quick
        test_ladder_no_degradation_on_success;
      Alcotest.test_case "ladder: degrade to feautrier" `Quick
        test_ladder_degrades_to_feautrier;
      Alcotest.test_case "ladder: degrade to identity" `Quick
        test_ladder_degrades_to_identity;
      Alcotest.test_case "ladder: --strict" `Quick test_strict_disables_ladder;
      Alcotest.test_case "lexmin unbounded is structured" `Quick
        test_lexmin_unbounded_is_structured;
      Alcotest.test_case "crash-freedom fuzz" `Slow test_crash_freedom_fuzz;
    ] )
