(* Translation validation: the independent checker of lib/verify must confirm
   legality + domain coverage for every seed kernel under the full paper
   pipeline, and must reject deliberately broken schedules. *)

let validate_kernel (k : Kernels.t) () =
  let r = Fixtures.compiled k in
  let params = Fixtures.check_params k in
  let rep =
    Verify.validate ~params r.Driver.program r.Driver.deps r.Driver.transform
      r.Driver.code
  in
  if not (Verify.ok rep) then
    Alcotest.failf "%s: %s" k.Kernels.name
      (Format.asprintf "%a" Verify.pp_report rep);
  Alcotest.(check bool)
    (k.Kernels.name ^ ": discharged at least one obligation")
    true
    (rep.Verify.legality_obligations > 0 || List.length r.Driver.deps = 0);
  Alcotest.(check bool)
    (k.Kernels.name ^ ": checked at least one instance")
    true
    (rep.Verify.instances_checked > 0)

(* The identity schedule (original order) must also validate: it satisfies
   every dependence by construction. *)
let validate_identity (k : Kernels.t) () =
  let r = Driver.compile_original (Kernels.program k) in
  let params = Fixtures.check_params k in
  let rep =
    Verify.validate ~params r.Driver.program r.Driver.deps r.Driver.transform
      r.Driver.code
  in
  if not (Verify.ok rep) then
    Alcotest.failf "%s identity: %s" k.Kernels.name
      (Format.asprintf "%a" Verify.pp_report rep)

(* ------------------------- broken-schedule rejection ---------------------- *)

let test_broken_schedule_rejected () =
  let k = Kernels.jacobi_1d in
  let p, deps = Fixtures.program_and_deps k in
  let t = Fixtures.transform k in
  match Verify.For_tests.reverse_first_loop t with
  | None -> Alcotest.fail "jacobi transform has no loop level"
  | Some broken ->
      let rep = Verify.validate_transform p deps broken in
      Alcotest.(check bool) "broken schedule rejected" false (Verify.ok rep);
      Alcotest.(check bool) "a legality violation is reported" true
        (List.exists
           (fun f ->
             f.Verify.f_code = "legality" || f.Verify.f_code = "satisfaction")
           rep.Verify.failures)

(* A schedule that maps two dependent instances to the same time vector must
   be caught by the ordering (lex-strictness) obligation: collapse jacobi's
   statements to a single constant level. *)
let test_unordered_schedule_rejected () =
  let k = Kernels.jacobi_1d in
  let p, deps = Fixtures.program_and_deps k in
  let t = Fixtures.transform k in
  let zero_rows =
    Array.map
      (fun (stmt_rows : int array array) ->
        Array.map (fun row -> Array.map (fun _ -> 0) row) stmt_rows)
      t.Pluto.Types.rows
  in
  let broken = { t with Pluto.Types.rows = zero_rows } in
  let rep = Verify.validate_transform p deps broken in
  Alcotest.(check bool) "constant schedule rejected" false (Verify.ok rep)

(* Coverage: a target whose scattering skips instances must be rejected.  We
   fake it by shrinking a statement's extended domain before codegen. *)
let test_coverage_mismatch_rejected () =
  let k = Kernels.matmul in
  let p, deps = Fixtures.program_and_deps k in
  let t = Pluto.Auto.identity_transform p deps in
  let tgt = Pluto.Tiling.untiled_target t in
  let clipped =
    match tgt.Pluto.Types.tstmts with
    | ts :: rest ->
        (* first extended iterator <= 1: drops most iterations of S1 *)
        let nv = ts.Pluto.Types.ext_domain.Polyhedra.nvars in
        let clip = Vec.zero (nv + 1) in
        clip.(0) <- Bigint.minus_one;
        clip.(nv) <- Bigint.one;
        let ext_domain =
          Polyhedra.add ts.Pluto.Types.ext_domain (Polyhedra.ge clip)
        in
        { tgt with Pluto.Types.tstmts = { ts with Pluto.Types.ext_domain } :: rest }
    | [] -> Alcotest.fail "no statements"
  in
  let cg = Codegen.generate clipped in
  let params = Fixtures.check_params k in
  let rep = Verify.validate_coverage ~params p cg in
  Alcotest.(check bool) "clipped scan rejected" false (Verify.ok rep);
  Alcotest.(check bool) "failure is a coverage failure" true
    (List.exists (fun f -> f.Verify.f_code = "coverage") rep.Verify.failures)

(* -------------------------- driver + CLI integration ---------------------- *)

let test_driver_verify () =
  let r = Fixtures.compiled Kernels.jacobi_1d in
  let rep = Driver.verify ~params:(Fixtures.check_params Kernels.jacobi_1d) r in
  Alcotest.(check bool) "driver verify passes" true (Verify.ok rep)

let plutocc = "../bin/plutocc.exe"

let run_cli args =
  Sys.command (Printf.sprintf "%s %s > /dev/null 2> /dev/null" plutocc args)

let with_kernel_file (k : Kernels.t) f =
  let path = Filename.temp_file "verify" ".c" in
  let oc = open_out path in
  output_string oc k.Kernels.source;
  close_out oc;
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_cli_verify_ok () =
  if Sys.file_exists plutocc then
    with_kernel_file Kernels.jacobi_1d (fun path ->
        Alcotest.(check int) "--verify exits 0" 0
          (run_cli (Printf.sprintf "%s --verify --params T=5,N=14" path)))

let test_cli_verify_broken_schedule () =
  if Sys.file_exists plutocc then
    with_kernel_file Kernels.jacobi_1d (fun path ->
        let rc =
          run_cli
            (Printf.sprintf "%s --verify --break-schedule --params T=5,N=14"
               path)
        in
        Alcotest.(check bool) "--verify rejects a broken schedule (exit <> 0)"
          true (rc <> 0);
        (* without --verify the broken schedule sails through: that is the
           point of having a validator *)
        let rc_noverify =
          run_cli (Printf.sprintf "%s --break-schedule" path)
        in
        Alcotest.(check int) "--break-schedule alone still emits code" 0
          rc_noverify)

let suite =
  ( "verify",
    List.map
      (fun (k : Kernels.t) ->
        Alcotest.test_case ("validate " ^ k.Kernels.name) `Quick
          (validate_kernel k))
      Kernels.all
    @ [
        Alcotest.test_case "validate identity jacobi" `Quick
          (validate_identity Kernels.jacobi_1d);
        Alcotest.test_case "validate identity lu" `Quick
          (validate_identity Kernels.lu);
        Alcotest.test_case "broken schedule rejected" `Quick
          test_broken_schedule_rejected;
        Alcotest.test_case "unordered schedule rejected" `Quick
          test_unordered_schedule_rejected;
        Alcotest.test_case "coverage mismatch rejected" `Quick
          test_coverage_mismatch_rejected;
        Alcotest.test_case "Driver.verify" `Quick test_driver_verify;
        Alcotest.test_case "plutocc --verify ok" `Quick test_cli_verify_ok;
        Alcotest.test_case "plutocc --verify broken" `Quick
          test_cli_verify_broken_schedule;
      ] )
