(* Shared, memoized pipeline results so the expensive transform runs once per
   kernel across test files. *)

let dep_cache : (string, Ir.program * Deps.t list) Hashtbl.t = Hashtbl.create 8

let program_and_deps (k : Kernels.t) =
  match Hashtbl.find_opt dep_cache k.Kernels.name with
  | Some r -> r
  | None ->
      let p = Kernels.program k in
      let ds = Deps.compute p in
      Hashtbl.replace dep_cache k.Kernels.name (p, ds);
      (p, ds)

(* Same, but with reduction detection enabled (the --reductions pipeline). *)
let red_dep_cache : (string, Ir.program * Deps.t list) Hashtbl.t =
  Hashtbl.create 8

let program_and_deps_reductions (k : Kernels.t) =
  match Hashtbl.find_opt red_dep_cache k.Kernels.name with
  | Some r -> r
  | None ->
      let p = Kernels.program k in
      let ds = Deps.compute ~reductions:true p in
      Hashtbl.replace red_dep_cache k.Kernels.name (p, ds);
      (p, ds)

let tr_cache : (string, Pluto.Types.transform) Hashtbl.t = Hashtbl.create 8

let transform (k : Kernels.t) =
  match Hashtbl.find_opt tr_cache k.Kernels.name with
  | Some t -> t
  | None ->
      let p, ds = program_and_deps k in
      let t = Pluto.Auto.transform p ds in
      Hashtbl.replace tr_cache k.Kernels.name t;
      (t : Pluto.Types.transform)

let compiled_cache : (string, Driver.result) Hashtbl.t = Hashtbl.create 8

(* full paper pipeline (tile + wavefront + intra reorder) *)
let compiled (k : Kernels.t) =
  match Hashtbl.find_opt compiled_cache k.Kernels.name with
  | Some r -> r
  | None ->
      let p, ds = program_and_deps k in
      let t = transform k in
      let r = Driver.compile_with_transform p ds t in
      Hashtbl.replace compiled_cache k.Kernels.name r;
      r

let check_params (k : Kernels.t) =
  let p, _ = program_and_deps k in
  Kernels.params_vector p k.Kernels.check_params

(* rows of statement [i] of a transform, as int lists, for readable asserts *)
let rows_of (t : Pluto.Types.transform) i =
  Array.to_list (Array.map Array.to_list t.Pluto.Types.rows.(i))

(* ----------------------- corpus / harness helpers ------------------------- *)

(* Shared by the batch/chaos/differential/fastpath suites so the kernel
   corpus iteration logic lives in exactly one place. *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Two real kernels with different scheduling shapes written as .c inputs
   under [dir]: matmul takes the fast scheduling path, jacobi-1d rejects it
   and exercises the full ILP. *)
let make_inputs dir =
  let j = Filename.concat dir "jacobi.c" in
  let m = Filename.concat dir "matmul.c" in
  write_file j Kernels.jacobi_1d.Kernels.source;
  write_file m Kernels.matmul.Kernels.source;
  [ j; m ]

let counter_of name =
  match List.assoc_opt name (Stats.counters ()) with Some v -> v | None -> 0

let codes (m : Batch.manifest) =
  List.map (fun (e : Batch.entry) -> e.Batch.e_code) m.Batch.m_entries

let statuses (m : Batch.manifest) =
  List.map (fun (e : Batch.entry) -> e.Batch.e_status) m.Batch.m_entries

(* Positive-integer test knob from the environment; a malformed value is a
   hard error so a typo cannot silently run the default workload. *)
let getenv_pos name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> Some n
      | _ ->
          Printf.eprintf "%s=%S is not a positive integer\n%!" name s;
          exit 2)

(* Alcotest case whose body starts from freshly reset global counters, so
   counter assertions cannot pass or fail depending on which suites ran
   before them in the same process. *)
let stats_case name speed f =
  Alcotest.test_case name speed (fun () ->
      Stats.reset ();
      f ())

(* ----------------------- fuzzing / reproducer support --------------------- *)

(* The randomized suites (test_fuzz, test_differential) draw from a seed that
   is printed on startup and overridable via PLUTO_FUZZ_SEED, so any failure
   is replayed exactly by re-running with that seed.  The seed is resolved by
   the shared Putil.Seed source — the same one the autotuner's search order
   uses — so a single variable reproduces every randomized component. *)
let fuzz_seed =
  try Putil.Seed.of_env ~default:Putil.Seed.default ()
  with Failure msg ->
    Printf.eprintf "%s\n%!" msg;
    exit 2

let announce_seed =
  let done_ = ref false in
  fun () ->
    if not !done_ then begin
      done_ := true;
      Printf.eprintf
        "fuzz seed: %d (set PLUTO_FUZZ_SEED to override and reproduce)\n%!"
        fuzz_seed
    end

(* Write a failing input program to PLUTO_FUZZ_DUMP_DIR (or the system temp
   dir) and return the path, so the reproducer survives the test run. *)
let dump_reproducer ~name src =
  let dir =
    match Sys.getenv_opt "PLUTO_FUZZ_DUMP_DIR" with
    | Some d when String.trim d <> "" ->
        (try
           if not (Sys.file_exists d) then Unix.mkdir d 0o755
         with Unix.Unix_error _ -> ());
        d
    | _ -> Filename.get_temp_dir_name ()
  in
  let path = Filename.concat dir (name ^ ".c") in
  (try
     let oc = open_out path in
     output_string oc src;
     close_out oc;
     Printf.eprintf "reproducer written to %s\n%!" path
   with Sys_error msg ->
     Printf.eprintf "could not write reproducer %s: %s\n%!" path msg);
  path
