(* Code generation: coverage (every instance exactly once), ordering
   (scattering lexicographic order respected), guards, C printing. *)

open Pluto.Types

(* Instrumented interpretation: collect the multiset of executed instances
   and the order of their scattering vectors. *)
let collect_instances (cg : Codegen.t) ~params =
  let np = Array.length params in
  let env = Array.make (cg.Codegen.nlevels + np) 0 in
  Array.blit params 0 env cg.Codegen.nlevels np;
  let stmts = Array.of_list cg.Codegen.target.tstmts in
  let out = ref [] in
  let rec exec (node : Codegen.ast) =
    match node with
    | Codegen.For { level; lb; ub; body; _ } ->
        let eval e =
          (* reuse the machine evaluator through a tiny adapter *)
          Machine.For_tests.eval_iexpr e env
        in
        for v = eval lb to eval ub do
          env.(level) <- v;
          List.iter exec body
        done
    | Codegen.Leaf { stmt_idx; guards; args } ->
        if List.for_all (fun g -> Machine.For_tests.guard_holds g env) guards
        then begin
          let ts = stmts.(stmt_idx) in
          let m = Ir.depth ts.stmt in
          let iters = Machine.For_tests.leaf_iters cg args env m in
          let scatter = Array.sub env 0 cg.Codegen.nlevels in
          out := (ts.stmt.Ir.id, Array.copy iters, Array.copy scatter) :: !out
        end
  in
  List.iter exec cg.Codegen.body;
  List.rev !out

let sorted_instances l =
  List.sort compare (List.map (fun (id, iters, _) -> (id, Array.to_list iters)) l)

let domain_instances (p : Ir.program) ~params =
  List.concat_map
    (fun s ->
      List.map
        (fun it -> (s.Ir.id, Array.to_list it))
        (Machine.For_tests.enumerate_domain s ~params))
    p.Ir.stmts
  |> List.sort compare

(* every domain point visited exactly once *)
let check_coverage (k : Kernels.t) () =
  let p, _ = Fixtures.program_and_deps k in
  let r = Fixtures.compiled k in
  let params = Fixtures.check_params k in
  let visited = sorted_instances (collect_instances r.Driver.code ~params) in
  let expected = domain_instances p ~params in
  Alcotest.(check int)
    (k.Kernels.name ^ " instance count")
    (List.length expected) (List.length visited);
  if visited <> expected then
    Alcotest.fail (k.Kernels.name ^ ": visited set differs from domain")

(* execution order respects the scattering lexicographic order *)
let check_scatter_order (k : Kernels.t) () =
  let r = Fixtures.compiled k in
  let params = Fixtures.check_params k in
  let insts = collect_instances r.Driver.code ~params in
  let rec monotone = function
    | (_, _, s1) :: ((_, _, s2) :: _ as rest) ->
        if compare s1 s2 > 0 then false else monotone rest
    | _ -> true
  in
  Alcotest.(check bool) (k.Kernels.name ^ " lex order") true (monotone insts)

(* scattering values must equal T(x) at every visited instance *)
let check_scatter_consistent (k : Kernels.t) () =
  let r = Fixtures.compiled k in
  let params = Fixtures.check_params k in
  let tstmts = Array.of_list r.Driver.target.tstmts in
  List.iter
    (fun (id, iters, scatter) ->
      let ts = tstmts.(id) in
      (* only the original-iterator part is returned; supernode values are
         checked implicitly through the scattering rows over original dims *)
      let ext_n = Array.length ts.ext_iters in
      let m = Array.length iters in
      Array.iteri
        (fun l row ->
          (* rows that involve supernodes cannot be checked from iters alone *)
          let uses_super =
            Array.exists (fun q -> q <> 0) (Array.sub row 0 (ext_n - m))
          in
          if not uses_super then begin
            let v = ref row.(ext_n) in
            for j = 0 to m - 1 do
              v := !v + (row.(ext_n - m + j) * iters.(j))
            done;
            if !v <> scatter.(l) then
              Alcotest.fail
                (Printf.sprintf "%s S%d level %d: scatter %d <> T(x) %d"
                   k.Kernels.name (id + 1) l scatter.(l) !v)
          end)
        ts.trows)
    (collect_instances r.Driver.code ~params)

let test_c_output_structure () =
  let r = Fixtures.compiled Kernels.jacobi_1d in
  let c = Putil.string_of_format Codegen.print_c r.Driver.code in
  List.iter
    (fun frag ->
      if not (Astring.String.is_infix ~affix:frag c) then
        Alcotest.fail ("generated C lacks " ^ frag))
    [
      "#define floord";
      "#define ceild";
      "#pragma omp parallel for";
      "#define S1(t,i)";
      "#define S2(t,j)";
      "int main()";
      "double a[N + 2];";
      "double b[N + 2];";
    ]

let test_c_output_compiles_with_gcc () =
  (* the container ships gcc: generated code must be real, compilable C *)
  match Sys.command "which gcc > /dev/null 2>&1" with
  | 0 ->
      let r = Fixtures.compiled Kernels.lu in
      let c = Putil.string_of_format Codegen.print_c r.Driver.code in
      let dir = Filename.temp_file "pluto" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      let src = Filename.concat dir "lu.c" in
      let oc = open_out src in
      output_string oc c;
      close_out oc;
      let cmd =
        Printf.sprintf "gcc -fopenmp -O1 -DN=60 -o %s %s 2> %s/err"
          (Filename.concat dir "lu") src dir
      in
      Alcotest.(check int) "gcc exit code" 0 (Sys.command cmd);
      Alcotest.(check int) "runs" 0 (Sys.command (Filename.concat dir "lu"))
  | _ -> ()

let test_min_max_floord_printing () =
  let names = [| "c1"; "N" |] in
  let e =
    Codegen.Emax
      [
        Codegen.Ceild (Codegen.Affine [| 2; 1; -3 |], 2);
        Codegen.Affine [| 0; 0; 0 |];
      ]
  in
  Alcotest.(check string) "printed" "max(ceild(2*c1 + N - 3,2),0)"
    (Putil.string_of_format (fun fmt -> Codegen.For_tests.pp_iexpr names fmt) e)

let test_empty_statement_dropped () =
  (* a statement with an empty domain (lb > ub for all params >= 1) must not
     break codegen *)
  let p =
    Frontend.parse_program ~name:"empty"
      "double a[N];\nfor (i = 5; i < 4; i++) a[i] = 1.0;\nfor (i = 0; i < N; i++) a[i] = 2.0;"
  in
  let r = Driver.compile_original p in
  let params = [| 10 |] in
  Alcotest.(check bool) "equivalent" true (Machine.equivalent p r.Driver.code ~params)

let test_mod_guards_for_nonunimodular () =
  (* scheduling-based jacobi uses θ = 2t: strides appear as Mod0 guards *)
  let p = Kernels.program Kernels.jacobi_1d in
  let r = Baselines.jacobi_scheduling_fco p in
  let rec has_mod = function
    | Codegen.For { body; _ } -> List.exists has_mod body
    | Codegen.Leaf { guards; _ } ->
        List.exists (function Codegen.Mod0 _ -> true | Codegen.Ge0 _ -> false) guards
  in
  Alcotest.(check bool) "mod guards present" true
    (List.exists has_mod r.Driver.code.Codegen.body)

(* Bound-pruning LP probes route through the memoized (and, with a cache
   dir, persistent) Milp.lp: the pruned ASTs must be identical whether the
   answers come from the solver, the in-memory cache, or the on-disk store. *)
let test_prune_lp_cache_transparent () =
  let render k = Putil.string_of_format Codegen.print_c (Driver.compile (Kernels.program k)).Driver.code in
  let k = Kernels.jacobi_1d in
  let reference =
    Fun.protect
      ~finally:(fun () -> Milp.set_warm true)
      (fun () ->
        Milp.set_warm false;
        Milp.clear_caches ();
        Polyhedra.clear_caches ();
        render k)
  in
  Pool.with_temp_dir ~prefix:"codegen_store" (fun dir ->
      Fun.protect
        ~finally:(fun () -> Store.set_dir None)
        (fun () ->
          Store.set_dir (Some dir);
          Milp.clear_caches ();
          Polyhedra.clear_caches ();
          let populate = render k in
          Alcotest.(check string) "cached = uncached" reference populate;
          (* memoized answers now on disk; a fresh in-memory state must
             reproduce the AST from the store alone *)
          Milp.clear_caches ();
          Polyhedra.clear_caches ();
          let from_store = render k in
          Alcotest.(check string) "store-backed = uncached" reference
            from_store))

let kernels_under_test =
  [ Kernels.jacobi_1d; Kernels.lu; Kernels.mvt; Kernels.seidel; Kernels.matmul; Kernels.mm2 ]

let suite =
  let per_kernel name f =
    List.map
      (fun k -> Alcotest.test_case (name ^ " " ^ k.Kernels.name) `Quick (f k))
      kernels_under_test
  in
  ( "codegen",
    per_kernel "coverage" check_coverage
    @ per_kernel "lex order" check_scatter_order
    @ per_kernel "scatter consistency" check_scatter_consistent
    @ [
        Alcotest.test_case "C output structure" `Quick test_c_output_structure;
        Alcotest.test_case "C compiles with gcc" `Quick test_c_output_compiles_with_gcc;
        Alcotest.test_case "expression printing" `Quick test_min_max_floord_printing;
        Alcotest.test_case "empty statement" `Quick test_empty_statement_dropped;
        Alcotest.test_case "stride/mod guards" `Quick test_mod_guards_for_nonunimodular;
        Alcotest.test_case "prune_lp cache-transparent" `Quick
          test_prune_lp_cache_transparent;
      ] )
