(* Dependence analysis: kinds, levels, counts, and witness points. *)

let count pred ds = List.length (List.filter pred ds)

let test_matmul_deps () =
  let p, ds = Fixtures.program_and_deps Kernels.matmul in
  ignore p;
  (* C[i][j]: flow, anti, output all carried at loop 3 (k) *)
  let carried_at l d = d.Deps.level = Some l in
  Alcotest.(check bool) "has flow at k" true
    (List.exists (fun d -> d.Deps.kind = Deps.Flow && carried_at 2 d) ds);
  Alcotest.(check bool) "has output at k" true
    (List.exists (fun d -> d.Deps.kind = Deps.Output && carried_at 2 d) ds);
  Alcotest.(check bool) "no flow at i or j" true
    (not
       (List.exists
          (fun d -> d.Deps.kind = Deps.Flow && (carried_at 0 d || carried_at 1 d))
          ds))

let test_jacobi_deps () =
  let _, ds = Fixtures.program_and_deps Kernels.jacobi_1d in
  (* S1 -> S2 flow on b, loop-independent *)
  Alcotest.(check bool) "flow b loop-independent" true
    (List.exists
       (fun d ->
         d.Deps.kind = Deps.Flow && d.Deps.level = None
         && String.equal d.Deps.src_acc.Ir.arr "b"
         && d.Deps.src.Ir.id = 0 && d.Deps.dst.Ir.id = 1)
       ds);
  (* S2 -> S1 flow on a carried at t: three of them (i-1, i, i+1) *)
  Alcotest.(check int) "3 flows S2->S1 at t" 3
    (count
       (fun d ->
         d.Deps.kind = Deps.Flow && d.Deps.level = Some 0
         && d.Deps.src.Ir.id = 1 && d.Deps.dst.Ir.id = 0)
       ds);
  (* jacobi has no inter-statement read-read pair on the same array, so no
     input dependences remain after the cross-statement restriction *)
  Alcotest.(check int) "no input deps" 0
    (count (fun d -> d.Deps.kind = Deps.Input) ds)

let test_no_input_flag () =
  let p = Kernels.program Kernels.jacobi_1d in
  let ds = Deps.compute ~input_deps:false p in
  Alcotest.(check int) "no RAR" 0 (count (fun d -> d.Deps.kind = Deps.Input) ds)

let test_mvt_input_dep () =
  let _, ds = Fixtures.program_and_deps Kernels.mvt in
  (* the only inter-statement dependence is the RAR on A (paper 7) *)
  let inter = List.filter (fun d -> d.Deps.src.Ir.id <> d.Deps.dst.Ir.id) ds in
  Alcotest.(check bool) "inter-statement deps exist" true (inter <> []);
  Alcotest.(check bool) "all inter-statement deps are input on A" true
    (List.for_all
       (fun d ->
         d.Deps.kind = Deps.Input && String.equal d.Deps.src_acc.Ir.arr "A")
       inter)

let test_dep_polyhedron_has_witness () =
  (* every reported dependence has an integer witness satisfying domains,
     access equality and ordering *)
  let _, ds = Fixtures.program_and_deps Kernels.lu in
  List.iter
    (fun d ->
      let np = 1 in
      let nv = d.Deps.poly.Polyhedra.nvars in
      let fix =
        Polyhedra.of_constrs nv
          [
            (let r = Vec.zero (nv + 1) in
             r.(nv - np) <- Bigint.one;
             r.(nv) <- Bigint.of_int (-30);
             Polyhedra.eq r);
          ]
      in
      match Milp.feasible (Polyhedra.meet d.Deps.poly fix) with
      | Some w ->
          let ms = Ir.depth d.Deps.src in
          let mt = Ir.depth d.Deps.dst in
          let iters_s = Array.map Bigint.to_int (Array.sub w 0 ms) in
          let iters_t = Array.map Bigint.to_int (Array.sub w ms mt) in
          let params = [| 30 |] in
          (* access functions agree at the witness *)
          Array.iteri
            (fun dim row_s ->
              let row_t = d.Deps.dst_acc.Ir.map.(dim) in
              Alcotest.(check int)
                (Printf.sprintf "access dim %d agrees" dim)
                (Ir.access_row_value row_s iters_s params)
                (Ir.access_row_value row_t iters_t params))
            d.Deps.src_acc.Ir.map
      | None ->
          Alcotest.fail
            (Putil.string_of_format Deps.pp d ^ ": no witness at N=30"))
    ds

let test_ordering_strictness () =
  (* no dependence may relate an instance to itself *)
  List.iter
    (fun k ->
      let _, ds = Fixtures.program_and_deps k in
      List.iter
        (fun d ->
          if d.Deps.src.Ir.id = d.Deps.dst.Ir.id then begin
            (* carried dependence: enforce s <> t via the witness *)
            match d.Deps.level with
            | None ->
                Alcotest.fail "self loop-independent dependence reported"
            | Some l ->
                let nv = d.Deps.poly.Polyhedra.nvars in
                let ms = Ir.depth d.Deps.src in
                (* constraint at level l is strict: s_l < t_l in the poly;
                   verify sat_point rejects s = t *)
                let np = 1 + 0 in
                ignore (nv, ms, np, l)
          end)
        ds)
    [ Kernels.matmul; Kernels.seidel ]

let test_seidel_dep_structure () =
  let _, ds = Fixtures.program_and_deps Kernels.seidel in
  (* Gauss-Seidel: flow deps carried at t (from a[i+1][j], a[i][j+1] written
     in previous sweep) and at i/j (from a[i-1][j], a[i][j-1]) *)
  let legality = List.filter Deps.is_legality ds in
  Alcotest.(check bool) "carried at t" true
    (List.exists (fun d -> d.Deps.level = Some 0) legality);
  Alcotest.(check bool) "carried at i" true
    (List.exists (fun d -> d.Deps.level = Some 1) legality);
  Alcotest.(check bool) "carried at j" true
    (List.exists (fun d -> d.Deps.level = Some 2) legality)

let test_satisfaction_row () =
  let p, ds = Fixtures.program_and_deps Kernels.jacobi_1d in
  let d = List.find (fun d -> Deps.is_legality d) ds in
  let ms = Ir.depth d.Deps.src and mt = Ir.depth d.Deps.dst in
  let row_s = Array.make (ms + 1) 0 and row_t = Array.make (mt + 1) 0 in
  row_s.(0) <- 1;
  row_t.(0) <- 1;
  row_t.(mt) <- 5;
  let delta = Deps.satisfaction_row p d row_s row_t in
  (* delta = (t_dst + 5) - t_src: check coefficients *)
  Alcotest.(check int) "src coef" (-1) (Bigint.to_int delta.(0));
  Alcotest.(check int) "dst coef" 1 (Bigint.to_int delta.(ms));
  Alcotest.(check int) "const" 5 (Bigint.to_int delta.(Array.length delta - 1))

let test_parity_no_spurious_dep () =
  (* a[2i] = a[2i+1]: every write/read candidate pair needs 2s ≡ 2t+1 (mod 2),
     which integer normalization now refutes outright.  Before the
     normalize_constr fix the parity-contradicted equality survived into the
     rational phase, every such system reached branch-and-bound, and a
     starved ILP budget turned the Budget_exceeded into a conservative —
     spurious — dependence.  Assert both the answer (no dependences) and the
     mechanism (the ILP layer is never consulted). *)
  let p =
    Frontend.parse_program ~name:"<parity>"
      "double a[M];\nfor (i = 0; i < N; i++)\n  a[2*i] = a[2*i + 1];\n"
  in
  Polyhedra.clear_caches ();
  Milp.clear_caches ();
  Stats.reset ();
  let ds = Deps.compute p in
  Alcotest.(check int) "no dependences" 0 (List.length ds);
  Alcotest.(check int) "no ILP solves needed" 0 (Stats.counter "milp.solves");
  Alcotest.(check int) "no B&B nodes" 0 (Stats.counter "milp.bb_nodes")

let test_param_subscript_casts_no_vote () =
  (* a[i] vs a[i + N]: the anti dependence (read a[s+N] at s, write a[t] at
     t = s + N) relates iterations a parameter apart.  A matched-dims vote
     (s_dim, t_dim) asserts the subscript pins s = t — false here.  The old
     unit_iter_dim looked only at iterator columns, saw a lone unit
     coefficient on each side, and voted anyway; rows with nonzero parameter
     coefficients must cast no vote. *)
  let p =
    Frontend.parse_program ~name:"<shift>"
      "double a[K];\nfor (i = 0; i < 2 * N; i++)\n  a[i] = a[i + N] * 2.0;\n"
  in
  let ds = Deps.compute p in
  let anti = List.filter (fun d -> d.Deps.kind = Deps.Anti) ds in
  Alcotest.(check bool) "the shifted anti dependence exists" true (anti <> []);
  List.iter
    (fun d ->
      Alcotest.(check (list (pair int int)))
        "no vote from a parameter-shifted subscript" [] (Deps.matched_dims d))
    anti;
  (* positive control: a parameter-free unit subscript still votes *)
  let _, ds = Fixtures.program_and_deps Kernels.matmul in
  let self_c =
    List.find
      (fun d ->
        d.Deps.kind = Deps.Flow && String.equal d.Deps.src_acc.Ir.arr "C")
      ds
  in
  Alcotest.(check bool) "C[i][j] self dependence still votes" true
    (Deps.matched_dims self_c <> [])

let suite =
  ( "deps",
    [
      Alcotest.test_case "matmul kinds/levels" `Quick test_matmul_deps;
      Alcotest.test_case "jacobi structure" `Quick test_jacobi_deps;
      Alcotest.test_case "input_deps flag" `Quick test_no_input_flag;
      Alcotest.test_case "mvt RAR on A" `Quick test_mvt_input_dep;
      Alcotest.test_case "witness points" `Quick test_dep_polyhedron_has_witness;
      Alcotest.test_case "ordering strictness" `Quick test_ordering_strictness;
      Alcotest.test_case "seidel structure" `Quick test_seidel_dep_structure;
      Alcotest.test_case "satisfaction row" `Quick test_satisfaction_row;
      Alcotest.test_case "parity access needs no ILP" `Quick
        test_parity_no_spurious_dep;
      Alcotest.test_case "parameter subscripts cast no vote" `Quick
        test_param_subscript_casts_no_vote;
    ] )
