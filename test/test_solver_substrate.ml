(* Solver-substrate properties: the incremental (warm-started) solver paths
   and the canonical emptiness cache must agree with the cold reference.

   Random systems are drawn from the shared fuzz seed ([Gen.seed_of_env], so
   PLUTO_FUZZ_SEED reproduces a failure), each over 3 variables inside a
   [-5,5] box with a handful of random rows — the same shape the dependence
   tester produces, small enough to brute-force mentally but rich enough to
   hit degenerate optima, parity-infeasible equalities and empty systems. *)

let nvars = 3

let rand_system rng =
  let ri lo hi = lo + Random.State.int rng (hi - lo + 1) in
  let box =
    List.concat_map
      (fun j ->
        [
          Polyhedra.ge_ints
            (List.init (nvars + 1) (fun q ->
                 if q = j then 1 else if q = nvars then 5 else 0));
          Polyhedra.ge_ints
            (List.init (nvars + 1) (fun q ->
                 if q = j then -1 else if q = nvars then 5 else 0));
        ])
      (Putil.range nvars)
  in
  let ncons = ri 1 5 in
  let rows =
    List.init ncons (fun _ ->
        let coefs = Vec.init (nvars + 1) (fun _ -> Bigint.of_int (ri (-4) 4)) in
        if ri 0 7 = 0 then Polyhedra.eq coefs else Polyhedra.ge coefs)
  in
  Polyhedra.of_constrs nvars (box @ rows)

let rand_objective rng =
  let ri lo hi = lo + Random.State.int rng (hi - lo + 1) in
  Vec.init nvars (fun _ -> Bigint.of_int (ri (-3) 3))

let iterations = 200

let with_rng f =
  let rng = Gen.state_of_seed (Gen.seed_of_env ()) in
  for i = 1 to iterations do
    f i rng
  done

(* rational emptiness must agree with ILP-based emptiness in the only
   directions that are sound: rationally empty => no integer point, and an
   integer witness => rationally non-empty (and actually inside) *)
let test_emptiness_agreement () =
  with_rng (fun i rng ->
      let sys = rand_system rng in
      let rat_empty = Polyhedra.is_empty_rational sys in
      let cached_empty = Polyhedra.is_empty_cached sys in
      Alcotest.(check bool)
        (Printf.sprintf "cached = cold rational emptiness (#%d)" i)
        rat_empty cached_empty;
      match Milp.feasible ~warm:false sys with
      | None -> ()
      | Some w ->
          Alcotest.(check bool)
            (Printf.sprintf "witness inside (#%d)" i)
            true (Polyhedra.sat_point sys w);
          Alcotest.(check bool)
            (Printf.sprintf "integer witness refutes rational emptiness (#%d)" i)
            false rat_empty)

(* the integer-tightened cached test may prove MORE systems empty than the
   rational one, but never a system holding an integer point; and whenever it
   says non-empty the ILP must agree with the plain path *)
let test_integer_emptiness_sound () =
  with_rng (fun i rng ->
      let sys = rand_system rng in
      let int_empty = Polyhedra.is_empty_cached ~integer:true sys in
      let witness = Milp.feasible ~warm:false sys in
      if int_empty then
        Alcotest.(check bool)
          (Printf.sprintf "integer-tightened emptiness is sound (#%d)" i)
          true (witness = None);
      match Milp.feasible_cached sys with
      | None ->
          Alcotest.(check bool)
            (Printf.sprintf "feasible_cached agrees on emptiness (#%d)" i)
            true (witness = None)
      | Some w ->
          Alcotest.(check bool)
            (Printf.sprintf "feasible_cached witness inside (#%d)" i)
            true (Polyhedra.sat_point sys w);
          Alcotest.(check bool)
            (Printf.sprintf "feasible_cached agrees on non-emptiness (#%d)" i)
            true (witness <> None))

(* warm-started branch-and-bound returns the same optimum as the cold path,
   and its witness lies in the same optimal class (inside the system,
   achieving the same value) *)
let test_warm_ilp_matches_cold () =
  with_rng (fun i rng ->
      let sys = rand_system rng in
      let obj = rand_objective rng in
      let cold = Milp.ilp ~warm:false sys obj in
      let warm = Milp.ilp ~warm:true sys obj in
      match (cold, warm) with
      | Milp.Ilp_infeasible, Milp.Ilp_infeasible -> ()
      | Milp.Ilp_optimal (vc, _), Milp.Ilp_optimal (vw, xw) ->
          Alcotest.(check string)
            (Printf.sprintf "same optimum (#%d)" i)
            (Bigint.to_string vc) (Bigint.to_string vw);
          Alcotest.(check bool)
            (Printf.sprintf "warm witness inside (#%d)" i)
            true (Polyhedra.sat_point sys xw);
          Alcotest.(check string)
            (Printf.sprintf "warm witness achieves the optimum (#%d)" i)
            (Bigint.to_string vc)
            (Bigint.to_string (Vec.dot obj xw))
      | _ ->
          Alcotest.failf "warm/cold disagree on feasibility (#%d): %s vs %s" i
            (match cold with
            | Milp.Ilp_optimal _ -> "optimal"
            | Milp.Ilp_infeasible -> "infeasible"
            | Milp.Ilp_unbounded -> "unbounded")
            (match warm with
            | Milp.Ilp_optimal _ -> "optimal"
            | Milp.Ilp_infeasible -> "infeasible"
            | Milp.Ilp_unbounded -> "unbounded"))

(* a full-order lexmin pins every coordinate, so the answer is unique: warm
   and cold must return bit-identical vectors *)
let test_warm_lexmin_matches_cold () =
  with_rng (fun i rng ->
      let sys = rand_system rng in
      let cold = Milp.lexmin ~warm:false sys in
      let warm = Milp.lexmin ~warm:true sys in
      match (cold, warm) with
      | None, None -> ()
      | Some xc, Some xw ->
          Alcotest.(check (list string))
            (Printf.sprintf "identical lexmin (#%d)" i)
            (Array.to_list (Array.map Bigint.to_string xc))
            (Array.to_list (Array.map Bigint.to_string xw))
      | _ -> Alcotest.failf "warm/cold disagree on lexmin feasibility (#%d)" i)

(* end to end: the whole compiler must emit byte-identical code with the
   incremental solver on and off, and the warm path must actually avoid cold
   dictionary builds *)
let test_compile_identical_and_cheaper () =
  let p = Kernels.program Kernels.matmul in
  let render r = Putil.string_of_format Codegen.print_c r.Driver.code in
  let run () =
    Polyhedra.clear_caches ();
    Milp.clear_caches ();
    Stats.reset ();
    let code = render (Driver.compile p) in
    (code, Stats.counter "milp.cold_builds", Stats.counter "milp.warm_starts")
  in
  let warm_code, warm_builds, warm_hits = run () in
  Milp.set_warm false;
  Polyhedra.set_empty_cache false;
  let cold_code, cold_builds, cold_run_hits =
    Fun.protect
      ~finally:(fun () ->
        Milp.set_warm true;
        Polyhedra.set_empty_cache true)
      run
  in
  Alcotest.(check string) "byte-identical generated code" cold_code warm_code;
  Alcotest.(check bool)
    (Printf.sprintf "fewer cold builds (%d warm vs %d cold)" warm_builds
       cold_builds)
    true
    (warm_builds < cold_builds);
  Alcotest.(check bool) "warm run used warm starts" true (warm_hits > 0);
  Alcotest.(check int) "cold run never warm-starts" 0 cold_run_hits

(* LRU budgets: the in-memory solver caches stay under their entry budget
   through a stream of distinct probes, entries that were evicted recompute
   to the same answers, and journal absorption reports how much it evicted. *)
let test_cache_budgets () =
  Milp.clear_caches ();
  Polyhedra.clear_caches ();
  Fun.protect
    ~finally:(fun () ->
      Milp.set_cache_budget 100_000;
      Polyhedra.set_cache_budget 100_000;
      Milp.set_cache_journal false;
      Milp.clear_caches ();
      Polyhedra.clear_caches ())
    (fun () ->
      Milp.set_cache_budget 16;
      Polyhedra.set_cache_budget 16;
      let rng = Gen.state_of_seed (Gen.seed_of_env ()) in
      let systems = List.init 120 (fun _ -> rand_system rng) in
      (* feasibility + emptiness are deterministic semantics; witnesses can
         legitimately differ between warm and cold runs, so compare only
         the answers *)
      let probe sys =
        (Milp.feasible_cached sys <> None, Polyhedra.is_empty_cached sys)
      in
      let first = List.map probe systems in
      Alcotest.(check bool)
        (Printf.sprintf "milp caches bounded by the budget (%d entries)"
           (Milp.cache_entry_count ()))
        true
        (Milp.cache_entry_count () <= 32 (* 16 per table, two tables *));
      Alcotest.(check bool)
        (Printf.sprintf "emptiness cache bounded by the budget (%d entries)"
           (Polyhedra.cache_entry_count ()))
        true
        (Polyhedra.cache_entry_count () <= 16);
      Alcotest.(check bool) "evictions were counted" true
        (Stats.counter "milp.cache_evictions" > 0
        && Stats.counter "poly.cache_evictions" > 0);
      let second = List.map probe systems in
      Alcotest.(check bool)
        "evicted entries recompute to the same answers" true (first = second);
      (* a journal bigger than the budget is absorbed, trimmed, and the
         eviction count reported to the caller *)
      Milp.set_cache_journal true;
      Milp.clear_caches ();
      List.iter (fun sys -> ignore (Milp.feasible_cached sys)) systems;
      let journal = Milp.take_cache_journal () in
      Milp.set_cache_journal false;
      Milp.clear_caches ();
      let evicted = Milp.absorb_cache_journal journal in
      Alcotest.(check bool) "oversized journal reports evictions" true
        (evicted > 0);
      Alcotest.(check bool) "absorbed tables stay under budget" true
        (Milp.cache_entry_count () <= 32))

let suite =
  ( "solver-substrate",
    [
      Alcotest.test_case "rational emptiness vs ILP" `Quick
        test_emptiness_agreement;
      Alcotest.test_case "integer-tightened emptiness sound" `Quick
        test_integer_emptiness_sound;
      Alcotest.test_case "warm B&B = cold B&B" `Quick test_warm_ilp_matches_cold;
      Alcotest.test_case "warm lexmin = cold lexmin" `Quick
        test_warm_lexmin_matches_cold;
      Alcotest.test_case "compile identical, fewer cold builds" `Quick
        test_compile_identical_and_cheaper;
      Alcotest.test_case "cache budgets bound and evict" `Quick
        test_cache_budgets;
    ] )
