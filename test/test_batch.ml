(* Batch compilation over the worker pool: end-to-end manifests, crash/parse
   isolation, the persistent solver store (warm reruns: identical output,
   strictly fewer solves; corruption = miss), and jobs-independence of the
   solver counters. *)

let write_file = Fixtures.write_file
let make_inputs = Fixtures.make_inputs
let codes = Fixtures.codes
let statuses = Fixtures.statuses

(* run_batch with per-run counters: reset, run, return (manifest, counters
   with the pool's own bookkeeping filtered out). *)
let run_counted ?cache_dir ?out_dir ~jobs files =
  Stats.reset ();
  let m = Batch.run ~jobs ?cache_dir ?out_dir files in
  let cs =
    List.filter
      (fun (k, _) -> not (Astring.String.is_prefix ~affix:"pool." k))
      (Stats.counters ())
  in
  Store.set_dir None;
  (m, List.sort compare cs)

let test_end_to_end () =
  Pool.with_temp_dir ~prefix:"batch_test" (fun dir ->
      let files = make_inputs dir in
      let out_dir = Filename.concat dir "out" in
      let m, _ = run_counted ~out_dir ~jobs:2 files in
      Alcotest.(check int) "one entry per file" 2
        (List.length m.Batch.m_entries);
      Alcotest.(check bool) "all succeed" true
        (List.for_all (fun s -> s = Batch.Success) (statuses m));
      Alcotest.(check int) "exit code 0" 0 (Batch.exit_code m);
      (* jacobi rejects the fast scheduling path (profitability) and lands
         on the exact ILP; matmul's schedule comes from the fast rung *)
      List.iter2
        (fun rung (e : Batch.entry) ->
          (match e.Batch.e_output with
          | None -> Alcotest.fail "output not written"
          | Some p ->
              Alcotest.(check bool) ("written: " ^ p) true (Sys.file_exists p));
          Alcotest.(check string) ("rung of " ^ e.Batch.e_file) rung
            e.Batch.e_rung)
        [ "auto"; "fast" ] m.Batch.m_entries;
      let json = Batch.manifest_to_json m in
      List.iter
        (fun frag ->
          Alcotest.(check bool) ("manifest has " ^ frag) true
            (Astring.String.is_infix ~affix:frag json))
        [ "\"entries\""; "\"status\": \"ok\""; "\"stats\""; "jacobi.c" ])

(* One unparseable file costs exactly its own entry. *)
let test_bad_file_isolated () =
  Pool.with_temp_dir ~prefix:"batch_test" (fun dir ->
      let bad = Filename.concat dir "bad.c" in
      write_file bad "this is not a loop nest @@;";
      let good = Filename.concat dir "good.c" in
      write_file good Kernels.jacobi_1d.Kernels.source;
      let missing = Filename.concat dir "absent.c" in
      let m, _ = run_counted ~jobs:2 [ bad; good; missing ] in
      (match statuses m with
      | [ Batch.Failed; Batch.Success; Batch.Failed ] -> ()
      | _ -> Alcotest.fail "expected failed/ok/failed");
      let bad_entry = List.hd m.Batch.m_entries in
      Alcotest.(check bool) "bad file has diagnostics" true
        (bad_entry.Batch.e_diags <> []);
      Alcotest.(check int) "exit code 1" 1 (Batch.exit_code m))

(* Warm --cache-dir rerun: bit-identical generated code, strictly fewer ILP
   solves, and actual store hits. *)
let test_warm_rerun () =
  Pool.with_temp_dir ~prefix:"batch_test" (fun dir ->
      let files = make_inputs dir in
      let cache_dir = Filename.concat dir "cache" in
      let cold_m, cold_c = run_counted ~cache_dir ~jobs:1 files in
      let warm_m, warm_c = run_counted ~cache_dir ~jobs:1 files in
      Alcotest.(check bool) "bit-identical code" true
        (codes cold_m = codes warm_m);
      let get cs k = match List.assoc_opt k cs with Some v -> v | None -> 0 in
      Alcotest.(check bool)
        (Printf.sprintf "fewer solves warm (%d) than cold (%d)"
           (get warm_c "milp.solves") (get cold_c "milp.solves"))
        true
        (get warm_c "milp.solves" < get cold_c "milp.solves");
      Alcotest.(check bool) "cold run wrote the store" true
        (get cold_c "store.writes" > 0);
      Alcotest.(check bool) "warm run hit the store" true
        (get warm_c "store.hits" > 0);
      Alcotest.(check int) "cold run had no hits" 0 (get cold_c "store.hits"))

(* A corrupted store entry is an eviction and a recompute, never an error or
   a wrong answer. *)
let test_corrupt_store_entry () =
  Pool.with_temp_dir ~prefix:"batch_test" (fun dir ->
      let files = make_inputs dir in
      let cache_dir = Filename.concat dir "cache" in
      let cold_m, _ = run_counted ~cache_dir ~jobs:1 files in
      (* entries live in 2-hex-digit shard subdirectories *)
      let rec smash dir =
        Array.iter
          (fun name ->
            let p = Filename.concat dir name in
            if Sys.is_directory p then smash p
            else if Filename.check_suffix p ".store" then write_file p "garbage")
          (Sys.readdir dir)
      in
      smash cache_dir;
      let again_m, again_c = run_counted ~cache_dir ~jobs:1 files in
      Alcotest.(check bool) "identical code after corruption" true
        (codes cold_m = codes again_m);
      Alcotest.(check bool) "all succeed" true
        (List.for_all (fun s -> s = Batch.Success) (statuses again_m));
      Alcotest.(check bool) "corrupt entries evicted" true
        (match List.assoc_opt "store.evictions" again_c with
        | Some n -> n > 0
        | None -> false))

(* Solver counters and generated code do not depend on --jobs: every file
   starts from empty in-memory caches in both modes. *)
let test_jobs_independence () =
  Pool.with_temp_dir ~prefix:"batch_test" (fun dir ->
      let files = make_inputs dir in
      let m1, c1 = run_counted ~jobs:1 files in
      let m4, c4 = run_counted ~jobs:4 files in
      Alcotest.(check bool) "identical code" true (codes m1 = codes m4);
      Alcotest.(check bool) "identical solver counters" true (c1 = c4))

let suite =
  ( "batch",
    [
      Fixtures.stats_case "end to end with manifest" `Quick test_end_to_end;
      Fixtures.stats_case "bad file is isolated" `Quick test_bad_file_isolated;
      Fixtures.stats_case "warm cache rerun" `Quick test_warm_rerun;
      Fixtures.stats_case "corrupt store entry is a miss" `Quick
        test_corrupt_store_entry;
      Fixtures.stats_case "jobs-independent counters" `Quick
        test_jobs_independence;
    ] )
